/**
 * @file
 * Pluggable per-round noise channels (NISQ failure modes beyond the
 * paper's two i.i.d. data channels; cf. Brandhofer et al., "NISQ
 * Computers — How They Fail"). Each data channel samples i.i.d. per
 * data qubit per round; the measurement channel flips measured syndrome
 * bits with rate q. The depolarizing and dephasing channels reproduce
 * the exact per-qubit draw sequence of the legacy `DepolarizingModel`
 * and `DephasingModel`, so composing either one alone with q = 0 is
 * bit-identical to the pre-subsystem code.
 */

#ifndef NISQPP_NOISE_CHANNELS_HH
#define NISQPP_NOISE_CHANNELS_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/packed_bits.hh"
#include "common/rng.hh"
#include "surface/error_state.hh"

namespace nisqpp {

class Syndrome;

/** One composable per-round data-qubit error channel. */
class NoiseChannel
{
  public:
    virtual ~NoiseChannel() = default;

    /** Multiply one round of fresh errors into @p state. */
    virtual void sampleInto(Rng &rng, ErrorState &state) const = 0;

    /** Per-qubit per-round event rate parameter p. */
    virtual double rate() const = 0;

    virtual std::string name() const = 0;

    /** Whether the channel can set X error components. */
    virtual bool producesX() const = 0;
};

/** Pauli X, Y, Z each with probability p/3 per data qubit. */
class DepolarizingChannel : public NoiseChannel
{
  public:
    explicit DepolarizingChannel(double p);

    void sampleInto(Rng &rng, ErrorState &state) const override;
    double rate() const override { return p_; }
    std::string name() const override { return "depolarizing"; }
    bool producesX() const override { return true; }

  private:
    double p_;
    std::uint64_t thresh_; ///< Rng::threshold(p), hot-loop coin
};

/** Pauli Z with probability p per data qubit (the paper's headline). */
class DephasingChannel : public NoiseChannel
{
  public:
    explicit DephasingChannel(double p);

    void sampleInto(Rng &rng, ErrorState &state) const override;
    double rate() const override { return p_; }
    std::string name() const override { return "dephasing"; }
    bool producesX() const override { return false; }

  private:
    double p_;
    std::uint64_t thresh_; ///< Rng::threshold(p), hot-loop coin
};

/**
 * Biased Pauli channel with bias eta = pZ / (pX + pY): an error occurs
 * with probability p per qubit; it is Z with probability eta/(1+eta),
 * otherwise X or Y with equal probability. eta -> infinity recovers
 * pure dephasing; eta = 1/2 recovers the depolarizing split.
 */
class BiasedEtaChannel : public NoiseChannel
{
  public:
    BiasedEtaChannel(double p, double eta);

    void sampleInto(Rng &rng, ErrorState &state) const override;
    double rate() const override { return p_; }
    double eta() const { return eta_; }
    std::string name() const override;
    bool producesX() const override { return true; }

  private:
    double p_;
    double eta_;
    std::uint64_t thresh_; ///< Rng::threshold(p), hot-loop coin
};

/**
 * Erasure-marking channel: with probability p a data qubit is erased —
 * replaced by a uniformly random Pauli from {I, X, Y, Z} — and its
 * location is flagged in a per-round mark plane that erasure-aware
 * decoders can consume. Marks accumulate across sampleInto calls until
 * clearMarks(); the mark buffer is per-channel-instance state, so one
 * instance must not be shared across threads (every engine shard
 * builds its own model).
 */
class ErasureChannel : public NoiseChannel
{
  public:
    explicit ErasureChannel(double p);

    void sampleInto(Rng &rng, ErrorState &state) const override;
    double rate() const override { return p_; }
    std::string name() const override { return "erasure"; }
    bool producesX() const override { return true; }

    /** Marked locations since the last clearMarks (empty before use). */
    const PackedBits &marks() const { return marks_; }
    void clearMarks() const { marks_.clear(); }

  private:
    double p_;
    std::uint64_t thresh_; ///< Rng::threshold(p), hot-loop coin
    mutable PackedBits marks_;
};

/**
 * Measurement-flip channel: each measured syndrome bit flips
 * independently with probability q per round (faulty readout). q = 0
 * draws nothing, keeping perfect-measurement streams bit-identical.
 */
class MeasurementFlipChannel
{
  public:
    explicit MeasurementFlipChannel(double q);

    /** Corrupt one measured round in place. */
    void corrupt(Rng &rng, Syndrome &syndrome) const;

    double rate() const { return q_; }

  private:
    double q_;
    std::uint64_t thresh_; ///< Rng::threshold(q), hot-loop coin
};

} // namespace nisqpp

#endif // NISQPP_NOISE_CHANNELS_HH
