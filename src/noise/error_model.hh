/**
 * @file
 * Abstract interface of the noise layer (moved here from
 * `surface/error_model.hh` when the closed channel pair became the
 * pluggable `src/noise/` subsystem). An error model injects fresh data
 * errors each round and — new with faulty-measurement support — may
 * corrupt the measured syndrome with readout flips of rate q. Perfect
 * measurement is the default: `flipMeasurements` is a no-op drawing
 * zero random numbers, so models with q = 0 leave every existing RNG
 * stream byte-identical.
 */

#ifndef NISQPP_NOISE_ERROR_MODEL_HH
#define NISQPP_NOISE_ERROR_MODEL_HH

#include <string>

#include "common/rng.hh"
#include "surface/error_state.hh"

namespace nisqpp {

class Syndrome;

/** Interface for per-cycle error injection + measurement corruption. */
class ErrorModel
{
  public:
    virtual ~ErrorModel() = default;

    /** Multiply freshly sampled data errors into @p state. */
    virtual void sample(Rng &rng, ErrorState &state) const = 0;

    /** Physical error rate parameter p. */
    virtual double physicalRate() const = 0;

    virtual std::string name() const = 0;

    /** Measurement (readout) flip rate q; 0 = perfect measurement. */
    virtual double measurementFlipRate() const { return 0.0; }

    /**
     * Flip each measured syndrome bit of @p syndrome independently
     * with probability q. The base implementation is a no-op that
     * draws nothing from @p rng, so perfect-measurement models keep
     * their draw sequences bit-identical to the pre-subsystem code.
     */
    virtual void
    flipMeasurements(Rng &rng, Syndrome &syndrome) const
    {
        (void)rng;
        (void)syndrome;
    }

    /**
     * Whether the channel can produce X error components (callers use
     * this to decide if an X-family decoder is required).
     */
    virtual bool producesX() const { return false; }
};

} // namespace nisqpp

#endif // NISQPP_NOISE_ERROR_MODEL_HH
