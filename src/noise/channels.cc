#include "noise/channels.hh"

#include "common/logging.hh"
#include "common/table.hh"
#include "surface/syndrome.hh"

namespace nisqpp {

DepolarizingChannel::DepolarizingChannel(double p)
    : p_(p), thresh_(Rng::threshold(p))
{
    require(p >= 0.0 && p <= 1.0, "DepolarizingChannel: p out of [0,1]");
}

void
DepolarizingChannel::sampleInto(Rng &rng, ErrorState &state) const
{
    const int n = state.lattice().numData();
    if (p_ <= 0.0)
        return; // bernoulli(p <= 0) consumes no draw; neither may we
    for (int q = 0; q < n; ++q) {
        if (p_ < 1.0 && !rng.coin(thresh_))
            continue;
        switch (rng.uniformInt(3)) {
          case 0: state.inject(q, Pauli::X); break;
          case 1: state.inject(q, Pauli::Y); break;
          default: state.inject(q, Pauli::Z); break;
        }
    }
}

DephasingChannel::DephasingChannel(double p)
    : p_(p), thresh_(Rng::threshold(p))
{
    require(p >= 0.0 && p <= 1.0, "DephasingChannel: p out of [0,1]");
}

void
DephasingChannel::sampleInto(Rng &rng, ErrorState &state) const
{
    const int n = state.lattice().numData();
    if (p_ <= 0.0)
        return; // bernoulli(p <= 0) consumes no draw; neither may we
    if (p_ >= 1.0) {
        for (int q = 0; q < n; ++q)
            state.inject(q, Pauli::Z);
        return;
    }
    for (int q = 0; q < n; ++q)
        if (rng.coin(thresh_))
            state.inject(q, Pauli::Z);
}

BiasedEtaChannel::BiasedEtaChannel(double p, double eta)
    : p_(p), eta_(eta), thresh_(Rng::threshold(p))
{
    require(p >= 0.0 && p <= 1.0, "BiasedEtaChannel: p out of [0,1]");
    require(eta > 0.0, "BiasedEtaChannel: eta must be positive");
}

std::string
BiasedEtaChannel::name() const
{
    return "biased(eta=" + TablePrinter::num(eta_, 3) + ")";
}

void
BiasedEtaChannel::sampleInto(Rng &rng, ErrorState &state) const
{
    const int n = state.lattice().numData();
    const double z_share = eta_ / (1.0 + eta_);
    if (p_ <= 0.0)
        return; // bernoulli(p <= 0) consumes no draw; neither may we
    for (int q = 0; q < n; ++q) {
        if (p_ < 1.0 && !rng.coin(thresh_))
            continue;
        if (rng.bernoulli(z_share))
            state.inject(q, Pauli::Z);
        else
            state.inject(q, rng.uniformInt(2) == 0 ? Pauli::X
                                                   : Pauli::Y);
    }
}

ErasureChannel::ErasureChannel(double p)
    : p_(p), thresh_(Rng::threshold(p))
{
    require(p >= 0.0 && p <= 1.0, "ErasureChannel: p out of [0,1]");
}

void
ErasureChannel::sampleInto(Rng &rng, ErrorState &state) const
{
    const int n = state.lattice().numData();
    if (marks_.size() != static_cast<std::size_t>(n))
        marks_.resize(n);
    if (p_ <= 0.0)
        return; // bernoulli(p <= 0) consumes no draw; neither may we
    for (int q = 0; q < n; ++q) {
        if (p_ < 1.0 && !rng.coin(thresh_))
            continue;
        marks_.set(q, true);
        switch (rng.uniformInt(4)) {
          case 0: break; // erased into I: marked, no Pauli kick
          case 1: state.inject(q, Pauli::X); break;
          case 2: state.inject(q, Pauli::Y); break;
          default: state.inject(q, Pauli::Z); break;
        }
    }
}

MeasurementFlipChannel::MeasurementFlipChannel(double q)
    : q_(q), thresh_(Rng::threshold(q))
{
    require(q >= 0.0 && q <= 1.0,
            "MeasurementFlipChannel: q out of [0,1]");
}

void
MeasurementFlipChannel::corrupt(Rng &rng, Syndrome &syndrome) const
{
    if (q_ <= 0.0)
        return;
    const int n = syndrome.size();
    if (q_ >= 1.0) { // bernoulli(q >= 1) consumes no draw
        for (int a = 0; a < n; ++a)
            syndrome.flip(a);
        return;
    }
    for (int a = 0; a < n; ++a)
        if (rng.coin(thresh_))
            syndrome.flip(a);
}

} // namespace nisqpp
