/**
 * @file
 * Composite noise model: an ordered list of per-round data-qubit
 * channels plus a measurement-flip channel of rate q, implementing the
 * `ErrorModel` interface every layer above consumes. A `NoiseSpec`
 * value describes a model shape (channel kind, bias, q) without the
 * physical rate p, so the experiment engine can carry noise
 * configuration through `CellSpec`/`SweepConfig` by value and
 * instantiate per-shard models deterministically.
 */

#ifndef NISQPP_NOISE_NOISE_MODEL_HH
#define NISQPP_NOISE_NOISE_MODEL_HH

#include <memory>
#include <string>
#include <vector>

#include "noise/channels.hh"
#include "noise/error_model.hh"

namespace nisqpp {

/** Named channel kinds of the pluggable subsystem. */
enum class NoiseKind : unsigned char
{
    Dephasing,    ///< Z with probability p (the paper's headline)
    Depolarizing, ///< X, Y, Z each with probability p/3
    Biased,       ///< bias-eta Pauli channel
    Erasure,      ///< erasure-marking channel
};

/**
 * Value-type description of a noise model, minus the physical rate p
 * (the sweep axis). Defaults reproduce the legacy configuration:
 * pure dephasing with perfect measurement.
 */
struct NoiseSpec
{
    NoiseKind kind = NoiseKind::Dephasing;
    double eta = 10.0;  ///< bias, used by NoiseKind::Biased only
    double q = 0.0;     ///< measurement flip rate; 0 = perfect readout

    /**
     * Value-chained measurement noise, so the flip rate is always
     * named at the call site: NoiseSpec::dephasing().withQ(0.02)
     * (the factories deliberately take no bare rate argument — the
     * physical rate p is the sweep axis, supplied at model
     * instantiation).
     */
    NoiseSpec
    withQ(double flipRate) const
    {
        NoiseSpec out = *this;
        out.q = flipRate;
        return out;
    }

    static NoiseSpec dephasing();
    static NoiseSpec depolarizing();
    static NoiseSpec biased(double eta);
    static NoiseSpec erasure();
};

/** Display name of a channel kind ("dephasing", "biased", ...). */
std::string noiseKindName(NoiseKind kind);

/** All channel kinds, in presentation order (noise_zoo iterates it). */
const std::vector<NoiseKind> &noiseKindRegistry();

/** Composite data channels + measurement flips behind ErrorModel. */
class NoiseModel : public ErrorModel
{
  public:
    /** Empty model; add() channels before sampling. */
    NoiseModel() = default;

    NoiseModel(NoiseModel &&) = default;
    NoiseModel &operator=(NoiseModel &&) = default;

    /** Append a data channel; sampling runs channels in add order. */
    NoiseModel &add(std::unique_ptr<NoiseChannel> channel);

    /** Set the measurement flip rate q (0 disables readout noise). */
    NoiseModel &withMeasurementFlips(double q);

    /** @name ErrorModel @{ */
    void sample(Rng &rng, ErrorState &state) const override;
    double physicalRate() const override;
    std::string name() const override;
    double measurementFlipRate() const override { return q_.rate(); }
    void flipMeasurements(Rng &rng, Syndrome &syndrome) const override;
    bool producesX() const override;
    /** @} */

    std::size_t numChannels() const { return channels_.size(); }
    const NoiseChannel &channel(std::size_t i) const;

    /** @name Named factories @{ */
    static NoiseModel depolarizing(double p, double q = 0.0);
    static NoiseModel dephasing(double p, double q = 0.0);
    static NoiseModel biased(double p, double eta, double q = 0.0);
    static NoiseModel erasure(double p, double q = 0.0);
    /** @} */

    /** Instantiate @p spec at physical rate @p p. */
    static NoiseModel fromSpec(const NoiseSpec &spec, double p);

  private:
    std::vector<std::unique_ptr<NoiseChannel>> channels_;
    MeasurementFlipChannel q_{0.0};
};

/** Heap form of fromSpec (engine shards own their model). */
std::unique_ptr<NoiseModel> makeNoiseModel(const NoiseSpec &spec,
                                           double p);

} // namespace nisqpp

#endif // NISQPP_NOISE_NOISE_MODEL_HH
