#include "noise/noise_model.hh"

#include "common/logging.hh"
#include "common/table.hh"
#include "surface/syndrome.hh"

namespace nisqpp {

NoiseSpec
NoiseSpec::dephasing()
{
    return {NoiseKind::Dephasing, 10.0, 0.0};
}

NoiseSpec
NoiseSpec::depolarizing()
{
    return {NoiseKind::Depolarizing, 10.0, 0.0};
}

NoiseSpec
NoiseSpec::biased(double eta)
{
    return {NoiseKind::Biased, eta, 0.0};
}

NoiseSpec
NoiseSpec::erasure()
{
    return {NoiseKind::Erasure, 10.0, 0.0};
}

std::string
noiseKindName(NoiseKind kind)
{
    switch (kind) {
      case NoiseKind::Dephasing: return "dephasing";
      case NoiseKind::Depolarizing: return "depolarizing";
      case NoiseKind::Biased: return "biased";
      case NoiseKind::Erasure: return "erasure";
    }
    panic("noiseKindName: unknown kind");
}

const std::vector<NoiseKind> &
noiseKindRegistry()
{
    static const std::vector<NoiseKind> kinds{
        NoiseKind::Dephasing, NoiseKind::Depolarizing,
        NoiseKind::Biased, NoiseKind::Erasure};
    return kinds;
}

NoiseModel &
NoiseModel::add(std::unique_ptr<NoiseChannel> channel)
{
    require(channel != nullptr, "NoiseModel: null channel");
    channels_.push_back(std::move(channel));
    return *this;
}

NoiseModel &
NoiseModel::withMeasurementFlips(double q)
{
    q_ = MeasurementFlipChannel(q);
    return *this;
}

void
NoiseModel::sample(Rng &rng, ErrorState &state) const
{
    for (const auto &channel : channels_)
        channel->sampleInto(rng, state);
}

double
NoiseModel::physicalRate() const
{
    double total = 0.0;
    for (const auto &channel : channels_)
        total += channel->rate();
    return total;
}

std::string
NoiseModel::name() const
{
    std::string out;
    for (const auto &channel : channels_) {
        if (!out.empty())
            out += "+";
        out += channel->name();
    }
    if (out.empty())
        out = "empty";
    if (q_.rate() > 0.0)
        out += "+meas(q=" + TablePrinter::num(q_.rate(), 4) + ")";
    return out;
}

void
NoiseModel::flipMeasurements(Rng &rng, Syndrome &syndrome) const
{
    q_.corrupt(rng, syndrome);
}

bool
NoiseModel::producesX() const
{
    for (const auto &channel : channels_)
        if (channel->producesX())
            return true;
    return false;
}

const NoiseChannel &
NoiseModel::channel(std::size_t i) const
{
    require(i < channels_.size(), "NoiseModel: channel out of range");
    return *channels_[i];
}

NoiseModel
NoiseModel::depolarizing(double p, double q)
{
    NoiseModel model;
    model.add(std::make_unique<DepolarizingChannel>(p))
        .withMeasurementFlips(q);
    return model;
}

NoiseModel
NoiseModel::dephasing(double p, double q)
{
    NoiseModel model;
    model.add(std::make_unique<DephasingChannel>(p))
        .withMeasurementFlips(q);
    return model;
}

NoiseModel
NoiseModel::biased(double p, double eta, double q)
{
    NoiseModel model;
    model.add(std::make_unique<BiasedEtaChannel>(p, eta))
        .withMeasurementFlips(q);
    return model;
}

NoiseModel
NoiseModel::erasure(double p, double q)
{
    NoiseModel model;
    model.add(std::make_unique<ErasureChannel>(p))
        .withMeasurementFlips(q);
    return model;
}

NoiseModel
NoiseModel::fromSpec(const NoiseSpec &spec, double p)
{
    switch (spec.kind) {
      case NoiseKind::Dephasing: return dephasing(p, spec.q);
      case NoiseKind::Depolarizing: return depolarizing(p, spec.q);
      case NoiseKind::Biased: return biased(p, spec.eta, spec.q);
      case NoiseKind::Erasure: return erasure(p, spec.q);
    }
    panic("NoiseModel::fromSpec: unknown kind");
}

std::unique_ptr<NoiseModel>
makeNoiseModel(const NoiseSpec &spec, double p)
{
    return std::make_unique<NoiseModel>(NoiseModel::fromSpec(spec, p));
}

} // namespace nisqpp
