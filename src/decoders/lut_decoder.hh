/**
 * @file
 * Exhaustive lookup-table decoder for small lattices. For every possible
 * syndrome it precomputes a minimum-weight correction by brute force over
 * all error patterns, which upper-bounds the accuracy of any trained
 * inference decoder on the same inputs. It stands in for the neural
 * network decoder baseline [6] whose artifacts are not public (see
 * DESIGN.md, substitutions).
 */

#ifndef NISQPP_DECODERS_LUT_DECODER_HH
#define NISQPP_DECODERS_LUT_DECODER_HH

#include <cstdint>

#include "decoders/decoder.hh"

namespace nisqpp {

/**
 * Table-driven minimum-weight decoder. Construction cost is
 * O(2^numData); usable up to d = 3 (8192 patterns) and kept assertive
 * beyond that.
 */
class LutDecoder : public Decoder
{
  public:
    LutDecoder(const SurfaceLattice &lattice, ErrorType type);

    Correction decode(const Syndrome &syndrome) override;
    void decode(const Syndrome &syndrome, TrialWorkspace &ws) override;

    std::string name() const override { return "lut"; }

    /** Number of syndrome entries in the table. */
    std::size_t tableSize() const { return table_.size(); }

  private:
    std::uint32_t syndromeKey(const Syndrome &syndrome) const;

    std::vector<std::uint32_t> table_; ///< syndrome key -> data bitmask
};

} // namespace nisqpp

#endif // NISQPP_DECODERS_LUT_DECODER_HH
