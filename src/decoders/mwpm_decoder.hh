/**
 * @file
 * Exact minimum-weight perfect matching decoder (the paper's primary
 * software baseline, Section IV). Builds the standard syndrome graph:
 * one node per hot ancilla plus one virtual boundary node per hot
 * ancilla, boundary-boundary edges free, and solves it exactly with the
 * blossom matcher.
 */

#ifndef NISQPP_DECODERS_MWPM_DECODER_HH
#define NISQPP_DECODERS_MWPM_DECODER_HH

#include <cstdint>

#include "decoders/decoder.hh"
#include "decoders/matching_graph.hh"

namespace nisqpp {

/** Exact MWPM decoder. */
class MwpmDecoder : public Decoder
{
  public:
    MwpmDecoder(const SurfaceLattice &lattice, ErrorType type)
        : Decoder(lattice, type)
    {}

    Correction decode(const Syndrome &syndrome) override;
    void decode(const Syndrome &syndrome, TrialWorkspace &ws) override;

    /**
     * Spacetime MWPM over a faulty-measurement window: exact blossom
     * matching on the detection events with time-like edge weights
     * (MatchingGraph::buildWindow). Time-like legs flip no data
     * qubits — they re-interpret measurement flips — so the committed
     * correction is the XOR of the spatial chain segments only.
     */
    void decodeWindow(const SyndromeWindow &window,
                      TrialWorkspace &ws) override;
    bool windowAware() const override { return true; }

    /** A perfect matching's chains reproduce the syndrome exactly. */
    bool correctionClearsSyndrome() const override { return true; }

    std::string name() const override { return "mwpm"; }

    /** The pairing decisions of the last decode (for inspection). */
    const std::vector<MatchPair> &lastMatching() const { return pairs_; }

    /**
     * Emit `decoder.mwpm.*` work counters accumulated since
     * construction: decode counts, blossom augmenting paths, matched
     * pairs and emitted correction length.
     */
    void exportMetrics(obs::MetricSet &out) const override;

  private:
    /**
     * Shared matcher body: solve ws.graph (already built, space-only
     * or spacetime) with the blossom matcher and emit pairs_ +
     * ws.correction. Space-only graphs never pair two nodes of the
     * same ancilla, so the pure-time-like skip is a no-op there.
     */
    void matchBuiltGraph(TrialWorkspace &ws);

    std::vector<MatchPair> pairs_;

    /** Deterministic work counters (see exportMetrics). @{ */
    std::uint64_t decodes_ = 0;
    std::uint64_t windowDecodes_ = 0;
    std::uint64_t augmentationsTotal_ = 0;
    std::uint64_t pairsTotal_ = 0;
    std::uint64_t correctionFlipsTotal_ = 0;
    /** @} */
};

} // namespace nisqpp

#endif // NISQPP_DECODERS_MWPM_DECODER_HH
