/**
 * @file
 * Exact minimum-weight perfect matching decoder (the paper's primary
 * software baseline, Section IV). Builds the standard syndrome graph:
 * one node per hot ancilla plus one virtual boundary node per hot
 * ancilla, boundary-boundary edges free, and solves it exactly with the
 * blossom matcher.
 */

#ifndef NISQPP_DECODERS_MWPM_DECODER_HH
#define NISQPP_DECODERS_MWPM_DECODER_HH

#include "decoders/decoder.hh"
#include "decoders/matching_graph.hh"

namespace nisqpp {

/** Exact MWPM decoder. */
class MwpmDecoder : public Decoder
{
  public:
    MwpmDecoder(const SurfaceLattice &lattice, ErrorType type)
        : Decoder(lattice, type)
    {}

    Correction decode(const Syndrome &syndrome) override;
    void decode(const Syndrome &syndrome, TrialWorkspace &ws) override;

    std::string name() const override { return "mwpm"; }

    /** The pairing decisions of the last decode (for inspection). */
    const std::vector<MatchPair> &lastMatching() const { return pairs_; }

  private:
    std::vector<MatchPair> pairs_;
};

} // namespace nisqpp

#endif // NISQPP_DECODERS_MWPM_DECODER_HH
