#include "decoders/union_find_decoder.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"

namespace nisqpp {

UnionFindDecoder::UnionFindDecoder(const SurfaceLattice &lattice,
                                   ErrorType type)
    : Decoder(lattice, type)
{
    const int na = lattice.numAncilla(type);
    numAncillaVertices_ = na;
    numVertices_ = na;
    incident_.resize(na);

    // Ancilla-ancilla edges: one per interior data qubit (it has exactly
    // two detecting ancillas); ancilla-boundary edges: one per boundary
    // data qubit, with a private virtual boundary vertex.
    for (int d = 0; d < lattice.numData(); ++d) {
        const auto &ancs = lattice.dataAncillaNeighbors(type, d);
        if (ancs.size() == 2) {
            const int id = static_cast<int>(edges_.size());
            edges_.push_back({ancs[0], ancs[1], d});
            incident_[ancs[0]].push_back(id);
            incident_[ancs[1]].push_back(id);
        } else if (ancs.size() == 1) {
            const int bv = numVertices_++;
            incident_.emplace_back();
            const int id = static_cast<int>(edges_.size());
            edges_.push_back({ancs[0], bv, d});
            incident_[ancs[0]].push_back(id);
            incident_[bv].push_back(id);
        } else {
            panic("UnionFindDecoder: data qubit with no detecting "
                  "ancilla");
        }
    }
}

int
UnionFindDecoder::find(int v)
{
    while (parent_[v] != v) {
        parent_[v] = parent_[parent_[v]];
        v = parent_[v];
    }
    return v;
}

void
UnionFindDecoder::unite(int a, int b)
{
    a = find(a);
    b = find(b);
    if (a == b)
        return;
    if (rank_[a] < rank_[b])
        std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b])
        ++rank_[a];
    parity_[a] ^= parity_[b];
    boundary_[a] |= boundary_[b];
}

Correction
UnionFindDecoder::decode(const Syndrome &syndrome)
{
    Correction corr;
    lastRounds_ = 0;
    if (syndrome.weight() == 0)
        return corr;

    parent_.resize(numVertices_);
    rank_.assign(numVertices_, 0);
    parity_.assign(numVertices_, 0);
    boundary_.assign(numVertices_, 0);
    for (int v = 0; v < numVertices_; ++v)
        parent_[v] = v;
    for (int v = numAncillaVertices_; v < numVertices_; ++v)
        boundary_[v] = 1;
    for (int a = 0; a < numAncillaVertices_; ++a)
        parity_[a] = syndrome.hot(a);

    // Cluster growth: odd non-boundary clusters add half-edge support to
    // all edges on their border each round; edges with full support merge
    // their endpoints.
    std::vector<char> support(edges_.size(), 0);
    auto clusterActive = [&](int v) {
        const int r = find(v);
        return parity_[r] && !boundary_[r];
    };

    for (;;) {
        bool any_active = false;
        std::vector<int> grown;
        for (std::size_t e = 0; e < edges_.size(); ++e) {
            if (support[e] >= 2)
                continue;
            const bool a_act = clusterActive(edges_[e].u);
            const bool b_act = clusterActive(edges_[e].v);
            const int inc = (a_act ? 1 : 0) + (b_act ? 1 : 0);
            if (inc == 0)
                continue;
            any_active = true;
            support[e] = static_cast<char>(
                std::min(2, support[e] + inc));
            if (support[e] >= 2)
                grown.push_back(static_cast<int>(e));
        }
        if (!any_active)
            break;
        ++lastRounds_;
        for (int e : grown)
            unite(edges_[e].u, edges_[e].v);
        require(lastRounds_ <= 4 * lattice().gridSize() + 8,
                "UnionFindDecoder: growth failed to converge");
    }

    // Peeling on the erasure (fully grown edges): build a BFS forest per
    // cluster rooted at a boundary vertex when available, then peel from
    // the leaves inward, flipping tree edges below hot vertices.
    std::vector<char> hot(numVertices_, 0);
    for (int a = 0; a < numAncillaVertices_; ++a)
        hot[a] = syndrome.hot(a);

    std::vector<int> parent_edge(numVertices_, -1);
    std::vector<int> bfs_order;
    std::vector<char> visited(numVertices_, 0);
    bfs_order.reserve(numVertices_);

    auto bfsFrom = [&](int root) {
        std::queue<int> q;
        q.push(root);
        visited[root] = 1;
        while (!q.empty()) {
            const int v = q.front();
            q.pop();
            bfs_order.push_back(v);
            for (int e : incident_[v]) {
                if (support[e] < 2)
                    continue;
                const int w = edges_[e].u == v ? edges_[e].v
                                               : edges_[e].u;
                if (visited[w])
                    continue;
                visited[w] = 1;
                parent_edge[w] = e;
                q.push(w);
            }
        }
    };

    // Boundary roots first so leftover parity drains into boundaries.
    for (int v = numAncillaVertices_; v < numVertices_; ++v)
        if (!visited[v])
            bfsFrom(v);
    for (int v = 0; v < numAncillaVertices_; ++v)
        if (!visited[v])
            bfsFrom(v);

    for (std::size_t i = bfs_order.size(); i-- > 0;) {
        const int v = bfs_order[i];
        if (!hot[v] || parent_edge[v] < 0)
            continue;
        const GraphEdge &e = edges_[parent_edge[v]];
        const int p = e.u == v ? e.v : e.u;
        corr.dataFlips.push_back(e.dataIdx);
        hot[v] = 0;
        hot[p] ^= 1;
    }

    // Boundary vertices absorb anything left; every interior vertex must
    // have drained (non-roots by the peel, interior roots because their
    // cluster parity is even by the growth exit condition).
    for (int v = 0; v < numAncillaVertices_; ++v)
        require(!hot[v],
                "UnionFindDecoder: peeling left a hot interior vertex");
    return corr;
}

} // namespace nisqpp
