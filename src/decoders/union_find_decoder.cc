#include "decoders/union_find_decoder.hh"

#include <algorithm>

#include "common/logging.hh"
#include "decoders/workspace.hh"
#include "obs/metrics.hh"

namespace nisqpp {

void
UnionFindDecoder::appendSpatialEdges(const SurfaceLattice &lattice,
                                     ErrorType type, int base,
                                     Graph &graph)
{
    // Ancilla-ancilla edges: one per interior data qubit (it has exactly
    // two detecting ancillas); ancilla-boundary edges: one per boundary
    // data qubit, with a private virtual boundary vertex.
    for (int d = 0; d < lattice.numData(); ++d) {
        const auto &ancs = lattice.dataAncillaNeighbors(type, d);
        if (ancs.size() == 2) {
            const int id = static_cast<int>(graph.edges.size());
            graph.edges.push_back({base + ancs[0], base + ancs[1], d});
            graph.incident[base + ancs[0]].push_back(id);
            graph.incident[base + ancs[1]].push_back(id);
        } else if (ancs.size() == 1) {
            const int bv = graph.numVertices++;
            graph.incident.emplace_back();
            const int id = static_cast<int>(graph.edges.size());
            graph.edges.push_back({base + ancs[0], bv, d});
            graph.incident[base + ancs[0]].push_back(id);
            graph.incident[bv].push_back(id);
        } else {
            panic("UnionFindDecoder: data qubit with no detecting "
                  "ancilla");
        }
    }
}

UnionFindDecoder::UnionFindDecoder(const SurfaceLattice &lattice,
                                   ErrorType type)
    : Decoder(lattice, type)
{
    const int na = lattice.numAncilla(type);
    graph_.numAncillaVertices = na;
    graph_.numVertices = na;
    graph_.incident.resize(na);
    appendSpatialEdges(lattice, type, 0, graph_);
}

const UnionFindDecoder::Graph &
UnionFindDecoder::windowGraph(int rounds)
{
    if (windowGraphRounds_ == rounds)
        return windowGraph_;

    // Spacetime layout: vertex (t, a) = t * na + a for the real
    // ancilla slots of all rounds, virtual boundary vertices after.
    const SurfaceLattice &lat = lattice();
    const int na = lat.numAncilla(type());
    Graph g;
    g.numAncillaVertices = rounds * na;
    g.numVertices = rounds * na;
    g.incident.assign(g.numVertices, {});

    for (int t = 0; t < rounds; ++t) {
        const int base = t * na;
        // Spatial edges of round t (the 2D construction, offset).
        appendSpatialEdges(lat, type(), base, g);
        // Time-like edges to round t+1: a measurement flip at (t, a)
        // fires events in rounds t and t+1; the edge carries no data
        // qubit.
        if (t + 1 < rounds)
            for (int a = 0; a < na; ++a) {
                const int id = static_cast<int>(g.edges.size());
                g.edges.push_back({base + a, base + na + a, -1});
                g.incident[base + a].push_back(id);
                g.incident[base + na + a].push_back(id);
            }
    }

    windowGraph_ = std::move(g);
    windowGraphRounds_ = rounds;
    return windowGraph_;
}

Correction
UnionFindDecoder::decode(const Syndrome &syndrome)
{
    // Legacy allocation-per-call entry point; the engine loop passes a
    // persistent per-thread workspace instead.
    TrialWorkspace ws;
    decode(syndrome, ws);
    return std::move(ws.correction);
}

void
UnionFindDecoder::noteDecode(const TrialWorkspace &ws)
{
    ++decodes_;
    growthRoundsTotal_ += static_cast<std::uint64_t>(lastRounds_);
    roundsHist_.add(static_cast<std::size_t>(lastRounds_));
    peelFlipsTotal_ += ws.correction.dataFlips.size();
}

void
UnionFindDecoder::exportMetrics(obs::MetricSet &out) const
{
    if (decodes_ == 0)
        return;
    out.add("decoder.uf.decodes", decodes_);
    out.add("decoder.uf.window_decodes", windowDecodes_);
    out.add("decoder.uf.growth_rounds", growthRoundsTotal_);
    out.add("decoder.uf.peel_flips", peelFlipsTotal_);
    out.mergeHistogram("decoder.uf.growth_rounds", roundsHist_,
                       growthRoundsTotal_);
}

void
UnionFindDecoder::decode(const Syndrome &syndrome, TrialWorkspace &ws)
{
    ws.correction.clear();
    lastRounds_ = 0;
    if (syndrome.weight() == 0) {
        noteDecode(ws);
        return;
    }
    ws.ufSeeds.clear();
    syndrome.forEachHot(
        [&ws](int a) { ws.ufSeeds.push_back(a); });
    decodeOnGraph(graph_, ws.ufSeeds, 4 * lattice().gridSize() + 8, ws);
    noteDecode(ws);
}

void
UnionFindDecoder::decodeWindow(const SyndromeWindow &window,
                               TrialWorkspace &ws)
{
    ws.correction.clear();
    lastRounds_ = 0;
    ++windowDecodes_;
    if (window.eventWeight() == 0) {
        noteDecode(ws);
        return;
    }
    const int na = window.numAncilla();
    ws.ufSeeds.clear();
    window.forEachEvent([&ws, na](int t, int a) {
        ws.ufSeeds.push_back(t * na + a);
    });
    decodeOnGraph(windowGraph(window.rounds()), ws.ufSeeds,
                  4 * (lattice().gridSize() + window.rounds()) + 8, ws);
    noteDecode(ws);
}

void
UnionFindDecoder::decodeOnGraph(const Graph &graph,
                                const std::vector<int> &seeds,
                                int growthBound, TrialWorkspace &ws)
{
    const auto &edges = graph.edges;
    const auto &incident = graph.incident;
    const int numAncillaVertices = graph.numAncillaVertices;
    const int numVertices = graph.numVertices;

    auto &parent = ws.ufParent;
    auto &rank = ws.ufRank;
    auto &parity = ws.ufParity;
    auto &boundary = ws.ufBoundary;
    parent.resize(numVertices);
    rank.assign(numVertices, 0);
    parity.assign(numVertices, 0);
    boundary.assign(numVertices, 0);
    for (int v = 0; v < numVertices; ++v)
        parent[v] = v;
    for (int v = numAncillaVertices; v < numVertices; ++v)
        boundary[v] = 1;
    for (int s : seeds)
        parity[s] = 1;

    auto find = [&parent](int v) {
        while (parent[v] != v) {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        return v;
    };
    auto unite = [&](int a, int b) {
        a = find(a);
        b = find(b);
        if (a == b)
            return;
        if (rank[a] < rank[b])
            std::swap(a, b);
        parent[b] = a;
        if (rank[a] == rank[b])
            ++rank[a];
        parity[a] ^= parity[b];
        boundary[a] |= boundary[b];
    };

    // Cluster growth: odd non-boundary clusters add half-edge support to
    // all edges on their border each round; edges with full support merge
    // their endpoints. Only cluster members can sit on an active border,
    // and every member is a hot seed or an endpoint of a previously
    // grown edge — so each round scans just that candidate frontier
    // instead of the whole graph. Support increments, growth rounds and
    // the final erasure are identical to the full-graph scan (each
    // active endpoint contributes one half edge either way); the
    // retained reference decoder in the tests pins this bit for bit.
    auto &support = ws.ufSupport;
    auto &candidates = ws.ufCandidates;
    auto &stamp = ws.ufStamp;
    auto &grown = ws.ufGrown;
    support.assign(edges.size(), 0);
    stamp.assign(numVertices, 0);
    candidates.assign(seeds.begin(), seeds.end());

    for (;;) {
        bool any_active = false;
        grown.clear();
        const int round_stamp = lastRounds_ + 1;
        for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
            const int v = candidates[ci];
            if (stamp[v] == round_stamp)
                continue;
            stamp[v] = round_stamp;
            const int r = find(v);
            if (!parity[r] || boundary[r])
                continue;
            for (int e : incident[v]) {
                if (support[e] >= 2)
                    continue;
                any_active = true;
                if (++support[e] >= 2)
                    grown.push_back(e);
            }
        }
        if (!any_active)
            break;
        ++lastRounds_;
        for (int e : grown) {
            unite(edges[e].u, edges[e].v);
            candidates.push_back(edges[e].u);
            candidates.push_back(edges[e].v);
        }
        require(lastRounds_ <= growthBound,
                "UnionFindDecoder: growth failed to converge");
    }

    // Peeling on the erasure (fully grown edges): build a BFS forest per
    // cluster rooted at a boundary vertex when available, then peel from
    // the leaves inward, flipping tree edges below hot vertices.
    //
    // Only erasure vertices matter here, and after the growth loop the
    // candidate list contains exactly the hot seeds plus every grown
    // edge's endpoints — i.e. the whole erasure (every hot vertex ends
    // incident to a full edge). Deduplicate and sort it so the forest
    // roots are chosen in the same ascending boundary-then-ancilla
    // order as a whole-graph scan would.
    auto &hot = ws.ufHot;
    hot.assign(numVertices, 0);
    for (int s : seeds)
        hot[s] = 1;

    auto &parent_edge = ws.ufParentEdge;
    auto &bfs_order = ws.ufBfsOrder;
    auto &visited = ws.ufVisited;
    auto &queue = ws.ufQueue;
    parent_edge.assign(numVertices, -1);
    bfs_order.clear();
    visited.assign(numVertices, 0);

    auto &erasure = ws.ufGrown; // growth loop is done with it
    erasure.clear();
    for (int v : candidates)
        if (stamp[v] != -1) {
            stamp[v] = -1;
            erasure.push_back(v);
        }
    std::sort(erasure.begin(), erasure.end());

    auto bfsFrom = [&](int root) {
        queue.clear();
        std::size_t head = 0;
        queue.push_back(root);
        visited[root] = 1;
        while (head < queue.size()) {
            const int v = queue[head++];
            bfs_order.push_back(v);
            for (int e : incident[v]) {
                if (support[e] < 2)
                    continue;
                const int w = edges[e].u == v ? edges[e].v
                                              : edges[e].u;
                if (visited[w])
                    continue;
                visited[w] = 1;
                parent_edge[w] = e;
                queue.push_back(w);
            }
        }
    };

    // Boundary roots first so leftover parity drains into boundaries.
    for (int v : erasure)
        if (v >= numAncillaVertices && !visited[v])
            bfsFrom(v);
    for (int v : erasure)
        if (v < numAncillaVertices && !visited[v])
            bfsFrom(v);

    for (std::size_t i = bfs_order.size(); i-- > 0;) {
        const int v = bfs_order[i];
        if (!hot[v] || parent_edge[v] < 0)
            continue;
        const GraphEdge &e = edges[parent_edge[v]];
        const int p = e.u == v ? e.v : e.u;
        // Time-like tree edges (dataIdx < 0) re-interpret measurement
        // flips: parity still moves to the parent, no data flip.
        if (e.dataIdx >= 0)
            ws.correction.dataFlips.push_back(e.dataIdx);
        hot[v] = 0;
        hot[p] ^= 1;
    }

    // Boundary vertices absorb anything left; every interior vertex must
    // have drained (non-roots by the peel, interior roots because their
    // cluster parity is even by the growth exit condition).
    for (int v = 0; v < numAncillaVertices; ++v)
        require(!hot[v],
                "UnionFindDecoder: peeling left a hot interior vertex");
}

} // namespace nisqpp
