#include "decoders/union_find_decoder.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/logging.hh"
#include "decoders/workspace.hh"
#include "obs/metrics.hh"


namespace nisqpp {

namespace {

/** Path-halving find on one lane's parent slice. */
inline int
findRoot(int *parent, int v)
{
    while (parent[v] != v) {
        parent[v] = parent[parent[v]];
        v = parent[v];
    }
    return v;
}

} // namespace

void
UnionFindDecoder::appendSpatialEdges(const SurfaceLattice &lattice,
                                     ErrorType type, int base,
                                     Graph &graph)
{
    // Ancilla-ancilla edges: one per interior data qubit (it has exactly
    // two detecting ancillas); ancilla-boundary edges: one per boundary
    // data qubit, with a private virtual boundary vertex.
    for (int d = 0; d < lattice.numData(); ++d) {
        const auto &ancs = lattice.dataAncillaNeighbors(type, d);
        if (ancs.size() == 2) {
            const int id = static_cast<int>(graph.edges.size());
            graph.edges.push_back({base + ancs[0], base + ancs[1], d});
            graph.incident[base + ancs[0]].push_back(id);
            graph.incident[base + ancs[1]].push_back(id);
        } else if (ancs.size() == 1) {
            const int bv = graph.numVertices++;
            graph.incident.emplace_back();
            const int id = static_cast<int>(graph.edges.size());
            graph.edges.push_back({base + ancs[0], bv, d});
            graph.incident[base + ancs[0]].push_back(id);
            graph.incident[bv].push_back(id);
        } else {
            panic("UnionFindDecoder: data qubit with no detecting "
                  "ancilla");
        }
    }
}

UnionFindDecoder::UnionFindDecoder(const SurfaceLattice &lattice,
                                   ErrorType type)
    : Decoder(lattice, type), width_(simd::activeWidth())
{
    const int na = lattice.numAncilla(type);
    graph_.numAncillaVertices = na;
    graph_.numVertices = na;
    graph_.incident.resize(na);
    appendSpatialEdges(lattice, type, 0, graph_);
}

const UnionFindDecoder::Graph &
UnionFindDecoder::windowGraph(int rounds)
{
    if (windowGraphRounds_ == rounds)
        return windowGraph_;

    // Spacetime layout: vertex (t, a) = t * na + a for the real
    // ancilla slots of all rounds, virtual boundary vertices after.
    const SurfaceLattice &lat = lattice();
    const int na = lat.numAncilla(type());
    Graph g;
    g.numAncillaVertices = rounds * na;
    g.numVertices = rounds * na;
    g.incident.assign(g.numVertices, {});

    for (int t = 0; t < rounds; ++t) {
        const int base = t * na;
        // Spatial edges of round t (the 2D construction, offset).
        appendSpatialEdges(lat, type(), base, g);
        // Time-like edges to round t+1: a measurement flip at (t, a)
        // fires events in rounds t and t+1; the edge carries no data
        // qubit.
        if (t + 1 < rounds)
            for (int a = 0; a < na; ++a) {
                const int id = static_cast<int>(g.edges.size());
                g.edges.push_back({base + a, base + na + a, -1});
                g.incident[base + a].push_back(id);
                g.incident[base + na + a].push_back(id);
            }
    }

    windowGraph_ = std::move(g);
    windowGraphRounds_ = rounds;
    return windowGraph_;
}

Correction
UnionFindDecoder::decode(const Syndrome &syndrome)
{
    // Legacy allocation-per-call entry point; the engine loop passes a
    // persistent per-thread workspace instead.
    TrialWorkspace ws;
    decode(syndrome, ws);
    return std::move(ws.correction);
}

void
UnionFindDecoder::noteDecode(const Correction &corr)
{
    ++decodes_;
    growthRoundsTotal_ += static_cast<std::uint64_t>(lastRounds_);
    roundsHist_.add(static_cast<std::size_t>(lastRounds_));
    peelFlipsTotal_ += corr.dataFlips.size();
}

void
UnionFindDecoder::exportMetrics(obs::MetricSet &out) const
{
    if (decodes_ == 0)
        return;
    out.add("decoder.uf.decodes", decodes_);
    out.add("decoder.uf.window_decodes", windowDecodes_);
    out.add("decoder.uf.growth_rounds", growthRoundsTotal_);
    out.add("decoder.uf.peel_flips", peelFlipsTotal_);
    out.mergeHistogram("decoder.uf.growth_rounds", roundsHist_,
                       growthRoundsTotal_);
}

void
UnionFindDecoder::decode(const Syndrome &syndrome, TrialWorkspace &ws)
{
    ws.correction.clear();
    lastRounds_ = 0;
    if (syndrome.weight() == 0) {
        noteDecode(ws.correction);
        return;
    }
    ws.ufSeeds.clear();
    syndrome.forEachHot(
        [&ws](int a) { ws.ufSeeds.push_back(a); });
    decodeOnGraph(graph_, ws.ufSeeds, 4 * lattice().gridSize() + 8, ws);
    noteDecode(ws.correction);
}

void
UnionFindDecoder::decodeWindow(const SyndromeWindow &window,
                               TrialWorkspace &ws)
{
    ws.correction.clear();
    lastRounds_ = 0;
    ++windowDecodes_;
    if (window.eventWeight() == 0) {
        noteDecode(ws.correction);
        return;
    }
    const int na = window.numAncilla();
    ws.ufSeeds.clear();
    window.forEachEvent([&ws, na](int t, int a) {
        ws.ufSeeds.push_back(t * na + a);
    });
    decodeOnGraph(windowGraph(window.rounds()), ws.ufSeeds,
                  4 * (lattice().gridSize() + window.rounds()) + 8, ws);
    noteDecode(ws.correction);
}

void
UnionFindDecoder::decodeBatch(const Syndrome *const *syndromes,
                              std::size_t count, TrialWorkspace &ws)
{
    if (count == 0)
        return;
    if (ws.laneCorrections.size() < count)
        ws.laneCorrections.resize(count);
    for (std::size_t i = 0; i < count; ++i)
        ws.laneCorrections[i].clear();
    switch (width_) {
      case simd::Width::Scalar:
        runBatch(engine64_, syndromes, count, ws);
        break;
      case simd::Width::V256:
        runBatch(engine256_, syndromes, count, ws);
        break;
      case simd::Width::V512:
        runBatch(engine512_, syndromes, count, ws);
        break;
    }
}

void
UnionFindDecoder::decodeWindowBatch(const SyndromeWindow *const *windows,
                                    std::size_t count,
                                    TrialWorkspace &ws)
{
    if (count == 0)
        return;
    // The lane-packed engine shares one spacetime graph per chunk;
    // mixed round counts (no caller produces them today) take the
    // scalar fallback rather than juggling graphs mid-chunk.
    for (std::size_t i = 1; i < count; ++i)
        if (windows[i]->rounds() != windows[0]->rounds()) {
            Decoder::decodeWindowBatch(windows, count, ws);
            return;
        }
    if (ws.laneCorrections.size() < count)
        ws.laneCorrections.resize(count);
    for (std::size_t i = 0; i < count; ++i)
        ws.laneCorrections[i].clear();
    switch (width_) {
      case simd::Width::Scalar:
        runWindowBatch(engine64_, windows, count, ws);
        break;
      case simd::Width::V256:
        runWindowBatch(engine256_, windows, count, ws);
        break;
      case simd::Width::V512:
        runWindowBatch(engine512_, windows, count, ws);
        break;
    }
}

template <typename W>
void
UnionFindDecoder::runBatch(BatchEngine<W> &e,
                           const Syndrome *const *syndromes,
                           std::size_t count, TrialWorkspace &ws)
{
    const int growthBound = 4 * lattice().gridSize() + 8;
    for (std::size_t base = 0; base < count;
         base += static_cast<std::size_t>(e.kLanes)) {
        const std::size_t lanes =
            std::min(static_cast<std::size_t>(e.kLanes), count - base);
        ensureEngine(e, graph_, 0, lanes);
        for (std::size_t l = 0; l < lanes; ++l) {
            auto &cand = e.candidates[l];
            cand.clear();
            syndromes[base + l]->forEachHot(
                [&cand](int a) { cand.push_back(a); });
        }
        runChunk(graph_, growthBound, e, base, lanes, ws);
    }
}

template <typename W>
void
UnionFindDecoder::runWindowBatch(BatchEngine<W> &e,
                                 const SyndromeWindow *const *windows,
                                 std::size_t count, TrialWorkspace &ws)
{
    const int rounds = windows[0]->rounds();
    const int na = windows[0]->numAncilla();
    const Graph &graph = windowGraph(rounds);
    const int growthBound = 4 * (lattice().gridSize() + rounds) + 8;
    windowDecodes_ += count;
    for (std::size_t base = 0; base < count;
         base += static_cast<std::size_t>(e.kLanes)) {
        const std::size_t lanes =
            std::min(static_cast<std::size_t>(e.kLanes), count - base);
        ensureEngine(e, graph, rounds, lanes);
        for (std::size_t l = 0; l < lanes; ++l) {
            auto &cand = e.candidates[l];
            cand.clear();
            windows[base + l]->forEachEvent([&cand, na](int t, int a) {
                cand.push_back(t * na + a);
            });
        }
        runChunk(graph, growthBound, e, base, lanes, ws);
    }
}

template <typename W>
void
UnionFindDecoder::ensureEngine(BatchEngine<W> &e, const Graph &graph,
                               int graphRounds, std::size_t lanes)
{
    const int numVertices = graph.numVertices;
    const int numEdges = static_cast<int>(graph.edges.size());
    if (e.graphKey != &graph || e.graphRounds != graphRounds ||
        e.numVertices != numVertices || e.numEdges != numEdges) {
        e.graphKey = &graph;
        e.graphRounds = graphRounds;
        e.numVertices = numVertices;
        e.numEdges = numEdges;
        e.act.assign(numVertices, W{});
        e.actMark.assign(numVertices, 0);
        e.touched.clear();
        e.edgeMark.assign(numEdges, 0);
        e.dirtyEdges.clear();
        e.planeMark.assign(numEdges, 0);
        e.planeDirty.clear();
        // The planes are rewound from planeDirty at the end of every
        // chunk, so this full clear happens once per graph, not once
        // per chunk.
        e.s1.assign(numEdges, W{});
        e.s2.assign(numEdges, W{});
        e.hot.assign(numVertices, 0);
        e.visited.assign(numVertices, 0);
        e.parentEdge.assign(numVertices, -1);
        e.eraseWords = (numVertices + 63) / 64;
        e.iotaTemplate.resize(numVertices);
        for (int v = 0; v < numVertices; ++v)
            e.iotaTemplate[v] = v;
        e.metaTemplate.assign(numVertices, 0);
        std::fill(e.metaTemplate.begin() + graph.numAncillaVertices,
                  e.metaTemplate.end(), 2);
        e.erasure.reserve(numVertices);
        e.bfsOrder.reserve(numVertices);
        e.grownMark.assign(numEdges, 0);
        // Flatten the incident lists once per graph (CSR) so the
        // gather and peel BFS read one contiguous array instead of
        // chasing a vector per vertex.
        e.incOff.resize(numVertices + 1);
        e.incOff[0] = 0;
        for (int v = 0; v < numVertices; ++v)
            e.incOff[v + 1] =
                e.incOff[v] + static_cast<int>(graph.incident[v].size());
        e.incEdges.resize(e.incOff[numVertices]);
        for (int v = 0; v < numVertices; ++v)
            std::copy(graph.incident[v].begin(), graph.incident[v].end(),
                      e.incEdges.begin() + e.incOff[v]);
        e.lanesReady = 0;
        e.candidates.resize(e.kLanes);
        e.grown.resize(e.kLanes);
        e.grownDone.assign(e.kLanes, 0);
        e.roots.resize(e.kLanes);
        e.rounds.assign(e.kLanes, 0);
        e.finished.assign(e.kLanes, 0);
    }
    if (static_cast<int>(lanes) > e.lanesReady) {
        const std::size_t slots =
            lanes * static_cast<std::size_t>(numVertices);
        e.parent.resize(slots);
        e.meta.resize(slots);
        e.memberNext.resize(slots);
        e.memberTail.resize(slots);
        e.laneErasure.assign(
            lanes * static_cast<std::size_t>(e.eraseWords), 0);
        // Establish the between-trials invariant for the new lanes
        // (bulk template copies: decoders are shard-private, so this
        // runs once per shard and must stay cheap); runChunk's
        // touched-only cleanup maintains the invariant from here on.
        for (int l = e.lanesReady; l < static_cast<int>(lanes); ++l) {
            const std::size_t off =
                static_cast<std::size_t>(l) * numVertices;
            std::memcpy(e.parent.data() + off, e.iotaTemplate.data(),
                        numVertices * sizeof(int));
            std::memcpy(e.memberTail.data() + off,
                        e.iotaTemplate.data(),
                        numVertices * sizeof(int));
            std::memcpy(e.meta.data() + off, e.metaTemplate.data(),
                        numVertices);
            std::memset(e.memberNext.data() + off, 0xff,
                        numVertices * sizeof(int));
            e.candidates[l].reserve(48);
            e.grown[l].reserve(32);
            e.roots[l].reserve(48);
        }
        e.lanesReady = static_cast<int>(lanes);
    }
}

template <typename W>
void
UnionFindDecoder::runChunk(const Graph &graph, int growthBound,
                           BatchEngine<W> &e, std::size_t base,
                           std::size_t lanes, TrialWorkspace &ws)
{
    const auto &edges = graph.edges;
    const int *incOff = e.incOff.data();
    const int *incEdges = e.incEdges.data();
    const int numAncillaVertices = graph.numAncillaVertices;
    const std::size_t V = static_cast<std::size_t>(e.numVertices);

    // Seed parities and per-lane live root lists; weight-0 lanes
    // finish before the first round. meta bit0 = parity, bit1 =
    // boundary contact, bit2 = listed in e.roots[l], bits 3+ = rank.
    bool anyLive = false;
    for (std::size_t l = 0; l < lanes; ++l) {
        e.rounds[l] = 0;
        const auto &cand = e.candidates[l];
        e.finished[l] = cand.empty() ? 1 : 0;
        if (cand.empty())
            continue;
        anyLive = true;
        unsigned char *metaL = e.meta.data() + l * V;
        std::uint64_t *ebL = e.laneErasure.data() + l * e.eraseWords;
        for (int s : cand) {
            metaL[s] = 5; // parity set, listed; seeds are ancillas
            ebL[s >> 6] |= std::uint64_t{1} << (s & 63);
        }
        e.roots[l].assign(cand.begin(), cand.end());
    }

    // Cluster growth, lane-parallel. Each round: (a) every live lane
    // walks its live roots — clusters splice member lists on union, so
    // the odd non-boundary clusters' members are enumerated directly,
    // with no per-round candidate re-scan and no root lookups — and
    // marks those vertices in the shared `act` plane; (b) ONE
    // word-parallel sweep over the edges incident to this round's
    // active vertices (no other edge's support can change) saturates
    // support for all lanes at once — new1 = s1 | act, new2 =
    // s2 | (s1 & act) | (act_u & act_v) reproduces the scalar
    // half-edge increments including both-endpoint same-round
    // completion and saturation at 2; (c) lanes whose planes changed
    // (delta) count a growth round and union their newly grown edges
    // in ascending edge order — the cluster partition, parities,
    // boundary flags and support are union-order-independent, so the
    // divergence from the scalar decoder's grown order is
    // unobservable.
    //
    // Rank-based union can hand the merged cluster to a previously
    // virgin (unlisted, rank-0) vertex when both sides have rank 0, so
    // each union appends the winner to the lane's root list if its
    // meta listed bit is clear; merged-away roots are compacted out
    // lazily.
    while (anyLive) {
        for (std::size_t l = 0; l < lanes; ++l) {
            if (e.finished[l])
                continue;
            const int el = static_cast<int>(l) / 64;
            const std::uint64_t bit = std::uint64_t{1} << (l % 64);
            const int *parentL = e.parent.data() + l * V;
            const unsigned char *metaL = e.meta.data() + l * V;
            const int *memberNextL = e.memberNext.data() + l * V;
            auto &roots = e.roots[l];
            std::size_t keep = 0;
            for (int r : roots) {
                if (parentL[r] != r)
                    continue; // merged away: drop from the list
                roots[keep++] = r;
                if ((metaL[r] & 3) != 1)
                    continue; // even or boundary-tied: not growing
                for (int v = r; v >= 0; v = memberNextL[v]) {
                    if (!e.actMark[v]) {
                        e.actMark[v] = 1;
                        e.touched.push_back(v);
                    }
                    simd::orElem(e.act[v], el, bit);
                }
            }
            roots.resize(keep);
        }

        W deltaAny{};
        if (!e.touched.empty()) {
            // Gather the edges bordering any active vertex; only they
            // can change support this round. Sorting the shared list
            // once makes every lane's grown list land pre-sorted in
            // the ascending edge order the equivalence argument is
            // stated for (cheaper than a per-lane sort).
            for (int v : e.touched)
                for (int k = incOff[v]; k < incOff[v + 1]; ++k) {
                    const int ed = incEdges[k];
                    if (!e.edgeMark[ed]) {
                        e.edgeMark[ed] = 1;
                        e.dirtyEdges.push_back(ed);
                    }
                }
            std::sort(e.dirtyEdges.begin(), e.dirtyEdges.end());
            for (int ed : e.dirtyEdges) {
                e.edgeMark[ed] = 0;
                const W au = e.act[edges[ed].u];
                const W av = e.act[edges[ed].v];
                const W a = au | av; // nonzero: ed borders a touched v
                const W s1v = e.s1[ed];
                const W s2v = e.s2[ed];
                const W n1 = s1v | a;
                const W n2 = s2v | (s1v & a) | (au & av);
                const W grownNew = n2 & ~s2v;
                deltaAny |= (n1 ^ s1v) | grownNew;
                e.s1[ed] = n1;
                e.s2[ed] = n2;
                if (!e.planeMark[ed]) {
                    e.planeMark[ed] = 1;
                    e.planeDirty.push_back(ed);
                }
                if (simd::anyW(grownNew))
                    for (int el = 0; el < simd::elementsOf<W>(); ++el) {
                        std::uint64_t bits = simd::elemOf(grownNew, el);
                        while (bits) {
                            const int b = std::countr_zero(bits);
                            bits &= bits - 1;
                            e.grown[el * 64 + b].push_back(ed);
                        }
                    }
            }
            e.dirtyEdges.clear();
            for (int v : e.touched) {
                e.act[v] = W{};
                e.actMark[v] = 0;
            }
            e.touched.clear();
        }

        anyLive = false;
        for (std::size_t l = 0; l < lanes; ++l) {
            if (e.finished[l])
                continue;
            const int el = static_cast<int>(l) / 64;
            const std::uint64_t bit = std::uint64_t{1} << (l % 64);
            if (!(simd::elemOf(deltaAny, el) & bit)) {
                // No support change anywhere: the lane's clusters are
                // all even or boundary-tied (scalar's !any_active).
                e.finished[l] = 1;
                continue;
            }
            ++e.rounds[l];
            require(e.rounds[l] <= growthBound,
                    "UnionFindDecoder: growth failed to converge");
            int *parentL = e.parent.data() + l * V;
            unsigned char *metaL = e.meta.data() + l * V;
            int *memberNextL = e.memberNext.data() + l * V;
            int *memberTailL = e.memberTail.data() + l * V;
            std::uint64_t *ebL =
                e.laneErasure.data() + l * e.eraseWords;
            auto &grown = e.grown[l];
            // The unapplied suffix is this round's grown edges, in
            // ascending edge order (the shared dirty-edge sweep
            // order); the applied prefix stays accumulated for the
            // peel's forest adjacency.
            for (std::size_t gi = static_cast<std::size_t>(
                     e.grownDone[l]);
                 gi < grown.size(); ++gi) {
                const int ed = grown[gi];
                const int eu = edges[ed].u;
                const int ev = edges[ed].v;
                ebL[eu >> 6] |= std::uint64_t{1} << (eu & 63);
                ebL[ev >> 6] |= std::uint64_t{1} << (ev & 63);
                int a = findRoot(parentL, eu);
                int b = findRoot(parentL, ev);
                if (a == b)
                    continue;
                unsigned char ma = metaL[a], mb = metaL[b];
                if ((ma >> 3) < (mb >> 3)) {
                    std::swap(a, b);
                    std::swap(ma, mb);
                }
                parentL[b] = a;
                // XOR parities (bit0), OR boundary (bit1), keep a's
                // listed bit and rank; equal ranks bump a's.
                unsigned char merged = (ma ^ (mb & 1)) | (mb & 2);
                if ((ma >> 3) == (mb >> 3))
                    merged += 8;
                // Splice b's member list onto a's (b's list starts
                // at b itself — every root heads its own list).
                memberNextL[memberTailL[a]] = b;
                memberTailL[a] = memberTailL[b];
                if (!(merged & 4)) {
                    merged |= 4;
                    e.roots[l].push_back(a);
                }
                metaL[a] = merged;
            }
            e.grownDone[l] = static_cast<int>(grown.size());
            anyLive = true;
        }
    }

    // Peel each lane with the scalar decoder's exact forest walk,
    // reading support from the s2 bit-plane, then restore the lane's
    // union-find slice by rewinding only the erasure vertices — the
    // complete set of state a trial dirtied (the erasure bitset
    // collects every seed and every grown edge endpoint). The peel
    // scratch is shared across lanes: hot/visited never leave the
    // erasure, and parentEdge is only ever read for BFS-reached
    // vertices (the BFS stamps its root with -1), so the per-lane
    // reset walks just the erasure, and the arrays stay resident in
    // L1.
    for (std::size_t l = 0; l < lanes; ++l) {
        Correction &out = ws.laneCorrections[base + l];
        auto &cand = e.candidates[l];
        int *parentL = e.parent.data() + l * V;
        unsigned char *metaL = e.meta.data() + l * V;
        int *memberNextL = e.memberNext.data() + l * V;
        int *memberTailL = e.memberTail.data() + l * V;
        char *hot = e.hot.data();
        char *visited = e.visited.data();
        int *parentEdge = e.parentEdge.data();

        for (int s : cand)
            hot[s] = 1;

        // Scan (and rezero) the lane's erasure bitset: bit order IS
        // ascending vertex order, so forest roots are chosen in the
        // same order as the scalar decoder's whole-graph scan with no
        // dedup pass or sort.
        auto &erasure = e.erasure;
        erasure.clear();
        std::uint64_t *ebL = e.laneErasure.data() + l * e.eraseWords;
        for (int w = 0; w < e.eraseWords; ++w) {
            std::uint64_t bits = ebL[w];
            ebL[w] = 0;
            while (bits) {
                erasure.push_back(w * 64 + std::countr_zero(bits));
                bits &= bits - 1;
            }
        }

        // Mark the lane's grown (s2) edge set in the shared E-byte
        // array — order is irrelevant for marking, so the accumulated
        // grown list needs no sort. The BFS walks the CSR incident
        // lists testing this byte instead of extracting lane bits
        // from the 64-byte-strided s2 plane, so its edge-membership
        // reads stay within a few hot L1 lines.
        auto &grown = e.grown[l];
        char *grownMark = e.grownMark.data();
        for (const int ed : grown)
            grownMark[ed] = 1;

        // The FIFO queue IS the visit order, so one vector serves as
        // both; `head` persists across roots (each BFS drains fully
        // before the next root is seeded).
        auto &bfsOrder = e.bfsOrder;
        bfsOrder.clear();
        std::size_t head = 0;
        auto bfsFrom = [&](int root) {
            bfsOrder.push_back(root);
            visited[root] = 1;
            parentEdge[root] = -1;
            while (head < bfsOrder.size()) {
                const int v = bfsOrder[head++];
                for (int k = incOff[v]; k < incOff[v + 1]; ++k) {
                    const int ed = incEdges[k];
                    if (!grownMark[ed])
                        continue;
                    const int w = edges[ed].u == v ? edges[ed].v
                                                   : edges[ed].u;
                    if (visited[w])
                        continue;
                    visited[w] = 1;
                    parentEdge[w] = ed;
                    bfsOrder.push_back(w);
                }
            }
        };

        // Boundary roots first so leftover parity drains into
        // boundaries.
        for (int v : erasure)
            if (v >= numAncillaVertices && !visited[v])
                bfsFrom(v);
        for (int v : erasure)
            if (v < numAncillaVertices && !visited[v])
                bfsFrom(v);

        for (std::size_t i = bfsOrder.size(); i-- > 0;) {
            const int v = bfsOrder[i];
            if (!hot[v] || parentEdge[v] < 0)
                continue;
            const GraphEdge &ed = edges[parentEdge[v]];
            const int p = ed.u == v ? ed.v : ed.u;
            // Time-like tree edges (dataIdx < 0) re-interpret
            // measurement flips: parity still moves to the parent, no
            // data flip.
            if (ed.dataIdx >= 0)
                out.dataFlips.push_back(ed.dataIdx);
            hot[v] = 0;
            hot[p] ^= 1;
        }

        // One pass over the erasure: check that every interior vertex
        // drained (boundary vertices absorb anything left; hot never
        // leaves the erasure, so this is equivalent to the scalar
        // whole-graph check), then restore the lane's invariant and
        // clear the shared scratch for the next lane. Member-list
        // splices only ever touch cluster members, every member is in
        // the erasure, and the BFS never leaves it (s2 edges connect
        // grown-edge endpoints, all of which are candidates).
        for (int v : erasure) {
            require(v >= numAncillaVertices || !hot[v],
                    "UnionFindDecoder: peeling left a hot interior "
                    "vertex");
            parentL[v] = v;
            metaL[v] = v >= numAncillaVertices ? 2 : 0;
            memberNextL[v] = -1;
            memberTailL[v] = v;
            hot[v] = 0;
            visited[v] = 0;
        }

        // Clear the lane's edge marks and reset its grown
        // accumulator.
        for (const int ed : grown)
            grownMark[ed] = 0;
        grown.clear();
        e.grownDone[l] = 0;

        lastRounds_ = e.rounds[l];
        noteDecode(out);
    }

    // Rewind the shared planes (after every lane's peel — the peel
    // reads s2) so the next chunk starts from all-zero without an
    // O(E)-word clear.
    for (int ed : e.planeDirty) {
        e.s1[ed] = W{};
        e.s2[ed] = W{};
        e.planeMark[ed] = 0;
    }
    e.planeDirty.clear();
}

void
UnionFindDecoder::decodeOnGraph(const Graph &graph,
                                const std::vector<int> &seeds,
                                int growthBound, TrialWorkspace &ws)
{
    const auto &edges = graph.edges;
    const auto &incident = graph.incident;
    const int numAncillaVertices = graph.numAncillaVertices;
    const int numVertices = graph.numVertices;

    auto &parent = ws.ufParent;
    auto &rank = ws.ufRank;
    auto &parity = ws.ufParity;
    auto &boundary = ws.ufBoundary;
    parent.resize(numVertices);
    rank.assign(numVertices, 0);
    parity.assign(numVertices, 0);
    boundary.assign(numVertices, 0);
    for (int v = 0; v < numVertices; ++v)
        parent[v] = v;
    for (int v = numAncillaVertices; v < numVertices; ++v)
        boundary[v] = 1;
    for (int s : seeds)
        parity[s] = 1;

    auto find = [&parent](int v) {
        while (parent[v] != v) {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        return v;
    };
    auto unite = [&](int a, int b) {
        a = find(a);
        b = find(b);
        if (a == b)
            return;
        if (rank[a] < rank[b])
            std::swap(a, b);
        parent[b] = a;
        if (rank[a] == rank[b])
            ++rank[a];
        parity[a] ^= parity[b];
        boundary[a] |= boundary[b];
    };

    // Cluster growth: odd non-boundary clusters add half-edge support to
    // all edges on their border each round; edges with full support merge
    // their endpoints. Only cluster members can sit on an active border,
    // and every member is a hot seed or an endpoint of a previously
    // grown edge — so each round scans just that candidate frontier
    // instead of the whole graph. Support increments, growth rounds and
    // the final erasure are identical to the full-graph scan (each
    // active endpoint contributes one half edge either way); the
    // retained reference decoder in the tests pins this bit for bit.
    auto &support = ws.ufSupport;
    auto &candidates = ws.ufCandidates;
    auto &stamp = ws.ufStamp;
    auto &grown = ws.ufGrown;
    support.assign(edges.size(), 0);
    stamp.assign(numVertices, 0);
    candidates.assign(seeds.begin(), seeds.end());

    for (;;) {
        bool any_active = false;
        grown.clear();
        const int round_stamp = lastRounds_ + 1;
        for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
            const int v = candidates[ci];
            if (stamp[v] == round_stamp)
                continue;
            stamp[v] = round_stamp;
            const int r = find(v);
            if (!parity[r] || boundary[r])
                continue;
            for (int e : incident[v]) {
                if (support[e] >= 2)
                    continue;
                any_active = true;
                if (++support[e] >= 2)
                    grown.push_back(e);
            }
        }
        if (!any_active)
            break;
        ++lastRounds_;
        for (int e : grown) {
            unite(edges[e].u, edges[e].v);
            candidates.push_back(edges[e].u);
            candidates.push_back(edges[e].v);
        }
        require(lastRounds_ <= growthBound,
                "UnionFindDecoder: growth failed to converge");
    }

    // Peeling on the erasure (fully grown edges): build a BFS forest per
    // cluster rooted at a boundary vertex when available, then peel from
    // the leaves inward, flipping tree edges below hot vertices.
    //
    // Only erasure vertices matter here, and after the growth loop the
    // candidate list contains exactly the hot seeds plus every grown
    // edge's endpoints — i.e. the whole erasure (every hot vertex ends
    // incident to a full edge). Deduplicate and sort it so the forest
    // roots are chosen in the same ascending boundary-then-ancilla
    // order as a whole-graph scan would.
    auto &hot = ws.ufHot;
    hot.assign(numVertices, 0);
    for (int s : seeds)
        hot[s] = 1;

    auto &parent_edge = ws.ufParentEdge;
    auto &bfs_order = ws.ufBfsOrder;
    auto &visited = ws.ufVisited;
    auto &queue = ws.ufQueue;
    parent_edge.assign(numVertices, -1);
    bfs_order.clear();
    visited.assign(numVertices, 0);

    auto &erasure = ws.ufGrown; // growth loop is done with it
    erasure.clear();
    for (int v : candidates)
        if (stamp[v] != -1) {
            stamp[v] = -1;
            erasure.push_back(v);
        }
    std::sort(erasure.begin(), erasure.end());

    auto bfsFrom = [&](int root) {
        queue.clear();
        std::size_t head = 0;
        queue.push_back(root);
        visited[root] = 1;
        while (head < queue.size()) {
            const int v = queue[head++];
            bfs_order.push_back(v);
            for (int e : incident[v]) {
                if (support[e] < 2)
                    continue;
                const int w = edges[e].u == v ? edges[e].v
                                              : edges[e].u;
                if (visited[w])
                    continue;
                visited[w] = 1;
                parent_edge[w] = e;
                queue.push_back(w);
            }
        }
    };

    // Boundary roots first so leftover parity drains into boundaries.
    for (int v : erasure)
        if (v >= numAncillaVertices && !visited[v])
            bfsFrom(v);
    for (int v : erasure)
        if (v < numAncillaVertices && !visited[v])
            bfsFrom(v);

    for (std::size_t i = bfs_order.size(); i-- > 0;) {
        const int v = bfs_order[i];
        if (!hot[v] || parent_edge[v] < 0)
            continue;
        const GraphEdge &e = edges[parent_edge[v]];
        const int p = e.u == v ? e.v : e.u;
        // Time-like tree edges (dataIdx < 0) re-interpret measurement
        // flips: parity still moves to the parent, no data flip.
        if (e.dataIdx >= 0)
            ws.correction.dataFlips.push_back(e.dataIdx);
        hot[v] = 0;
        hot[p] ^= 1;
    }

    // Boundary vertices absorb anything left; every interior vertex must
    // have drained (non-roots by the peel, interior roots because their
    // cluster parity is even by the growth exit condition).
    for (int v = 0; v < numAncillaVertices; ++v)
        require(!hot[v],
                "UnionFindDecoder: peeling left a hot interior vertex");
}

} // namespace nisqpp
