/**
 * @file
 * Exact minimum-weight perfect matching on dense general graphs via the
 * primal-dual blossom algorithm, O(n^3). This is the engine behind the
 * MWPM baseline decoder (paper Section IV, [16], [17], [21]).
 *
 * The solver internally runs *maximum*-weight matching on transformed
 * weights 2*(C - w) with C > max(w); on a complete even-order graph the
 * maximum-weight matching under strictly positive weights is perfect, so
 * the transform yields the minimum-weight perfect matching. Weights are
 * doubled to keep all dual variables integral.
 */

#ifndef NISQPP_DECODERS_BLOSSOM_HH
#define NISQPP_DECODERS_BLOSSOM_HH

#include <cstdint>
#include <vector>

namespace nisqpp {

/**
 * Dense blossom matcher. Build with the number of vertices, set weights,
 * then solve. Vertex indices are 0-based externally. A matcher is
 * reusable: reset(n) rebinds it to a new instance size, reusing the
 * internal arrays whenever they are already large enough (the trial
 * workspace keeps one matcher alive across all decodes of a thread).
 */
class BlossomMatcher
{
  public:
    /** Edge weights are long integers; "absent" edges use kAbsent. */
    static constexpr long kAbsent = -1;

    /** Empty matcher; reset() before use. */
    BlossomMatcher() = default;

    /** @param n Number of vertices (must be even for a perfect matching). */
    explicit BlossomMatcher(int n);

    /**
     * Rebind to @p n vertices with all edges absent, growing the
     * internal arrays only when @p n exceeds every previous size.
     */
    void reset(int n);

    /** Set the weight of undirected edge (u, v); kAbsent removes it. */
    void setWeight(int u, int v, long w);

    /**
     * Solve for the minimum-weight perfect matching.
     *
     * @param[out] mate mate[v] = partner of v.
     * @return Total weight of the matching.
     * @pre A perfect matching exists (the decoding construction always
     *      builds complete graphs). Panics otherwise.
     */
    long solve(std::vector<int> &mate);

    /** Augmenting-path count of the most recent solve (telemetry). */
    std::int64_t lastAugmentations() const { return lastAugments_; }

  private:
    struct Edge
    {
        int u = 0;
        int v = 0;
        long w = 0;
    };

    long eDelta(const Edge &e) const;
    void updateSlack(int u, int x);
    void setSlack(int x);
    void qPush(int x);
    void setSt(int x, int b);
    int getPr(int b, int xr);
    void setMatch(int u, int v);
    void augment(int u, int v);
    int getLca(int u, int v);
    void addBlossom(int u, int lca, int v);
    void expandBlossom(int b);
    bool onFoundEdge(const Edge &e);
    bool matchingPhase();

    int n_ = 0;      ///< real vertices (1-based internally)
    int nx_ = 0;     ///< current id bound including blossoms
    int cap_ = 0;    ///< maximum vertex id (n + n/2 + 1)
    int alloc_ = -1; ///< largest cap_ the arrays were ever sized for
    std::vector<std::vector<Edge>> g_;
    std::vector<long> lab_;
    std::vector<int> match_, slack_, st_, pa_, s_;
    // 64-bit visit stamps: one matcher now lives in a per-thread
    // workspace for the whole run, and getLca() bumps the stamp on
    // every call — a 32-bit counter could wrap after hours of decodes
    // and alias a stale entry.
    std::vector<std::int64_t> vis_;
    std::vector<std::vector<int>> flowerFrom_;
    std::vector<std::vector<int>> flower_;
    std::vector<int> queue_;
    std::size_t qHead_ = 0;
    std::int64_t visitStamp_ = 0;
    std::int64_t augments_ = 0;     ///< lifetime augment() count
    std::int64_t lastAugments_ = 0; ///< augments of the last solve()
    std::vector<std::vector<long>> userWeight_;
};

/**
 * Convenience wrapper: minimum-weight perfect matching of a complete
 * graph given by a dense weight matrix (weights[i][j], kAbsent allowed).
 *
 * @return mate array; mate[i] = partner of i.
 */
std::vector<int> minWeightPerfectMatching(
    const std::vector<std::vector<long>> &weights);

} // namespace nisqpp

#endif // NISQPP_DECODERS_BLOSSOM_HH
