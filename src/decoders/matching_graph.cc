#include "decoders/matching_graph.hh"

#include "common/logging.hh"

namespace nisqpp {

MatchingGraph::MatchingGraph(const SurfaceLattice &lattice, ErrorType type,
                             const Syndrome &syndrome)
    : lattice_(&lattice), type_(type), nodes_(syndrome.hotList())
{
    require(syndrome.type() == type, "MatchingGraph: type mismatch");
    boundaryDist_.reserve(nodes_.size());
    for (int a : nodes_)
        boundaryDist_.push_back(lattice.ancillaBoundaryDistance(type, a));
}

int
MatchingGraph::pairWeight(int i, int j) const
{
    return lattice_->ancillaGraphDistance(type_, nodes_.at(i),
                                          nodes_.at(j));
}

int
MatchingGraph::boundaryWeight(int i) const
{
    return boundaryDist_.at(i);
}

long
MatchingGraph::totalWeight(const std::vector<MatchPair> &pairs) const
{
    long total = 0;
    for (const auto &p : pairs) {
        // Translate ancilla ids back to node slots for weight lookup.
        int ia = -1, ib = -1;
        for (int i = 0; i < numNodes(); ++i) {
            if (nodes_[i] == p.a)
                ia = i;
            if (!p.toBoundary && nodes_[i] == p.b)
                ib = i;
        }
        require(ia >= 0, "totalWeight: unknown ancilla in pair");
        if (p.toBoundary) {
            total += boundaryWeight(ia);
        } else {
            require(ib >= 0, "totalWeight: unknown partner in pair");
            total += pairWeight(ia, ib);
        }
    }
    return total;
}

} // namespace nisqpp
