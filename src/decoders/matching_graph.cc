#include "decoders/matching_graph.hh"

#include "common/logging.hh"

namespace nisqpp {

MatchingGraph::MatchingGraph(const SurfaceLattice &lattice, ErrorType type,
                             const Syndrome &syndrome)
{
    build(lattice, type, syndrome);
}

void
MatchingGraph::build(const SurfaceLattice &lattice, ErrorType type,
                     const Syndrome &syndrome)
{
    require(syndrome.type() == type, "MatchingGraph: type mismatch");
    lattice_ = &lattice;
    type_ = type;
    syndrome.hotListInto(nodes_);
    times_.clear();
    boundaryDist_.clear();
    boundaryDist_.reserve(nodes_.size());
    for (int a : nodes_)
        boundaryDist_.push_back(lattice.ancillaBoundaryDistance(type, a));
}

void
MatchingGraph::buildWindow(const SurfaceLattice &lattice, ErrorType type,
                           const SyndromeWindow &window)
{
    require(window.type() == type, "MatchingGraph: type mismatch");
    lattice_ = &lattice;
    type_ = type;
    nodes_.clear();
    times_.clear();
    boundaryDist_.clear();
    window.forEachEvent([this](int t, int a) {
        nodes_.push_back(a);
        times_.push_back(t);
    });
    boundaryDist_.reserve(nodes_.size());
    for (int a : nodes_)
        boundaryDist_.push_back(lattice.ancillaBoundaryDistance(type, a));
}

long
MatchingGraph::totalWeight(const std::vector<MatchPair> &pairs) const
{
    long total = 0;
    for (const auto &p : pairs) {
        // Translate ancilla ids back to node slots for weight lookup.
        int ia = -1, ib = -1;
        for (int i = 0; i < numNodes(); ++i) {
            if (nodes_[i] == p.a)
                ia = i;
            if (!p.toBoundary && nodes_[i] == p.b)
                ib = i;
        }
        require(ia >= 0, "totalWeight: unknown ancilla in pair");
        if (p.toBoundary) {
            total += boundaryWeight(ia);
        } else {
            require(ib >= 0, "totalWeight: unknown partner in pair");
            total += pairWeight(ia, ib);
        }
    }
    return total;
}

} // namespace nisqpp
