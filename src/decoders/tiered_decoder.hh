/**
 * @file
 * Tiered decoder: the SFQ mesh decodes every syndrome (scalar, batch
 * lane, or spacetime window) and its answer is committed provisionally;
 * a confidence score derived from the mesh's own telemetry (cycles,
 * resets, cap/quiescence exits, unresolved hot count — see
 * core/confidence.hh) escalates low-confidence decodes to an exact
 * software backend, and when the exact decoder disagrees the
 * difference is emitted as a Pauli-frame repair. This is the paper's
 * thesis run online: the mesh buys its speed on the easy (overwhelming
 * majority of) windows, the exact decoder backstops the hard tail, and
 * the escalation rate is the price actually paid.
 *
 * The final correction a tiered decode reports is always the
 * *post-repair* one (the exact decoder's answer when escalated, the
 * mesh's otherwise), so corrections — and therefore PL aggregates —
 * remain bit-identical between scalar, batched and streamed execution
 * exactly like every other decoder; the provisional-commit-then-repair
 * sequence is replayed by the streaming pipeline from tieredStats().
 */

#ifndef NISQPP_DECODERS_TIERED_DECODER_HH
#define NISQPP_DECODERS_TIERED_DECODER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "core/confidence.hh"
#include "core/mesh_decoder.hh"
#include "decoders/decoder.hh"

namespace nisqpp {

class TieredDecoder : public Decoder
{
  public:
    /** Confidence histogram resolution: bins of 1/64. */
    static constexpr std::size_t kConfidenceBins = 64;

    /**
     * @param mesh      First-tier mesh decoder (owned).
     * @param exact     Escalation backend (owned; union-find or MWPM).
     * @param threshold Decodes with confidence < threshold escalate.
     *                  0 never escalates (pure-mesh with tiered
     *                  bookkeeping); anything > 1 always escalates.
     */
    TieredDecoder(const SurfaceLattice &lattice, ErrorType type,
                  std::unique_ptr<MeshDecoder> mesh,
                  std::unique_ptr<Decoder> exact, double threshold);

    Correction decode(const Syndrome &syndrome) override;
    void decode(const Syndrome &syndrome, TrialWorkspace &ws) override;

    /**
     * Lane-packed first tier: the mesh decodes all @p count syndromes
     * through its batch substrate, then each low-confidence lane is
     * escalated scalar through the exact backend. Per-lane corrections
     * and telemetry are bit-identical to scalar tiered decodes of the
     * same syndromes.
     */
    void decodeBatch(const Syndrome *const *syndromes, std::size_t count,
                     TrialWorkspace &ws) override;

    /**
     * Windowed first tier: the mesh's decodeWindow (round-majority
     * reduction) decodes the window, its inner decode's telemetry is
     * scored, and low confidence escalates to the exact backend's true
     * spacetime decodeWindow.
     */
    void decodeWindow(const SyndromeWindow &window,
                      TrialWorkspace &ws) override;

    /** True spacetime escalation is available iff the backend has it. */
    bool windowAware() const override { return exact_->windowAware(); }

    const MeshDecodeStats *
    meshStats(std::size_t lane = 0) const override
    {
        return mesh_->meshStats(lane);
    }

    const TieredDecodeStats *
    tieredStats(std::size_t lane = 0) const override
    {
        return lane < stats_.size() ? &stats_[lane] : nullptr;
    }

    /**
     * Emit `decoder.tiered.*` counters accumulated since construction
     * (decodes, escalations, repairs, repair flip total, the
     * 64-bin confidence histogram) plus both children's own counters.
     */
    void exportMetrics(obs::MetricSet &out) const override;

    std::string name() const override;

    double threshold() const { return threshold_; }

    /** The first-tier mesh (tests tighten its limits to force escalation). */
    MeshDecoder &mesh() { return *mesh_; }

    /** The escalation backend. */
    Decoder &exact() { return *exact_; }

  private:
    /**
     * Score lane @p lane's mesh telemetry into @p ts and, below the
     * threshold, run the exact backend on @p syndrome and swap its
     * correction into @p out (which holds the mesh's provisional
     * answer on entry, the final answer on exit).
     */
    void escalateIfNeeded(const Syndrome &syndrome, TrialWorkspace &ws,
                          Correction &out, const MeshDecodeStats &mesh,
                          TieredDecodeStats &ts);

    /** Score + count one decode; true when it must escalate. */
    bool scoreDecode(const MeshDecodeStats &mesh, TieredDecodeStats &ts);

    /** Note the repair (counters + ts) for a finished escalation. */
    void finishEscalation(TieredDecodeStats &ts);

    std::unique_ptr<MeshDecoder> mesh_;
    std::unique_ptr<Decoder> exact_;
    double threshold_;

    /** Per-lane telemetry of the most recent decode. */
    std::vector<TieredDecodeStats> stats_{1};

    /** Provisional-mesh / exact flip scratch (reused, no alloc). @{ */
    Correction provisional_;
    std::vector<int> diffScratch_;
    /** @} */

    /** Deterministic work counters (see exportMetrics). @{ */
    std::uint64_t decodes_ = 0;
    std::uint64_t windowDecodes_ = 0;
    std::uint64_t escalations_ = 0;
    std::uint64_t repairs_ = 0;
    std::uint64_t repairFlipsTotal_ = 0;
    Histogram confidenceHist_{kConfidenceBins - 1};
    std::uint64_t confidenceBinSum_ = 0;
    /** @} */
};

} // namespace nisqpp

#endif // NISQPP_DECODERS_TIERED_DECODER_HH
