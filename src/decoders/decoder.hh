/**
 * @file
 * Common decoder interface. A decoder maps an error syndrome for one
 * error type to a correction: the set of data qubits whose corresponding
 * Pauli component should be flipped (paper Section II-C1).
 */

#ifndef NISQPP_DECODERS_DECODER_HH
#define NISQPP_DECODERS_DECODER_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/confidence.hh"
#include "core/mesh_stats.hh"
#include "surface/error_state.hh"
#include "surface/lattice.hh"
#include "surface/syndrome.hh"
#include "surface/syndrome_window.hh"

namespace nisqpp {

namespace obs {
class MetricSet;
}

class TrialWorkspace;

/** A decoder's output: data-qubit flips of the decoded error type. */
struct Correction
{
    std::vector<int> dataFlips; ///< compact data indices, XOR semantics

    /** Drop the flips but keep the buffer's capacity (reuse). */
    void clear() { dataFlips.clear(); }

    /** Apply onto an error state (composition = residual computation). */
    void
    applyTo(ErrorState &state, ErrorType type) const
    {
        for (int d : dataFlips)
            state.flip(type, d);
    }
};

/**
 * Abstract decoder bound to one lattice and one error type. Decoders are
 * stateful only in reusable scratch buffers; decode() is deterministic.
 */
class Decoder
{
  public:
    Decoder(const SurfaceLattice &lattice, ErrorType type)
        : lattice_(&lattice), type_(type)
    {}

    virtual ~Decoder() = default;

    const SurfaceLattice &lattice() const { return *lattice_; }
    ErrorType type() const { return type_; }

    /** Decode @p syndrome into a correction. */
    virtual Correction decode(const Syndrome &syndrome) = 0;

    /**
     * Workspace-aware overload: decode @p syndrome into
     * @p ws.correction, borrowing every scratch buffer from @p ws so
     * repeated decodes allocate nothing. Produces exactly the same
     * correction as decode(syndrome); the default implementation
     * forwards there for decoders without a tuned hot path.
     */
    virtual void decode(const Syndrome &syndrome, TrialWorkspace &ws);

    /**
     * Decode @p count independent syndromes into
     * ws.laneCorrections[0..count), each entry exactly what
     * decode(*syndromes[i], ws) would produce. The base implementation
     * is a scalar fallback loop (software decoders have no batch
     * substrate to win from); MeshDecoder overrides it with the
     * lane-packed path that steps several trials per 64-bit word.
     */
    virtual void decodeBatch(const Syndrome *const *syndromes,
                             std::size_t count, TrialWorkspace &ws);

    /**
     * Decode a multi-round measurement window into ws.correction: the
     * net data flips to commit at the window boundary. The default
     * implementation reduces the window by round-majority voting and
     * feeds the result to decode() — correct when measurement noise is
     * rare relative to the window length. Window-aware decoders (MWPM,
     * union-find) override this with true spacetime matching over the
     * detection events and report windowAware() = true.
     */
    virtual void decodeWindow(const SyndromeWindow &window,
                              TrialWorkspace &ws);

    /**
     * Decode @p count independent windows into
     * ws.laneCorrections[0..count), each entry exactly what
     * decodeWindow(*windows[i], ws) would produce (scalar loop; no
     * decoder has a lane-packed window substrate yet).
     */
    virtual void decodeWindowBatch(const SyndromeWindow *const *windows,
                                   std::size_t count,
                                   TrialWorkspace &ws);

    /**
     * Whether decodeWindow runs true spacetime decoding rather than
     * the round-majority fallback.
     */
    virtual bool windowAware() const { return false; }

    /**
     * Whether applying this decoder's correction is guaranteed to
     * clear the decoded syndrome exactly (re-extracting after the
     * commit yields zero). True for the exact matchers — MWPM and
     * greedy always produce complete matchings — and for union-find,
     * whose peel drains every interior vertex by construction. False
     * by default: the mesh is approximate (cycle caps and quiescence
     * exits can strand hot modules), and the streaming pipeline's
     * batched consumer relies on this property to difference
     * consecutive syndromes, so it must never be claimed loosely.
     */
    virtual bool correctionClearsSyndrome() const { return false; }

    /**
     * Mesh telemetry of lane @p lane of the most recent decode (a
     * scalar decode fills lane 0 only). Null for decoders without mesh
     * telemetry and for lanes past the last decode's batch size —
     * callers probe this instead of dynamic_casting to MeshDecoder.
     */
    virtual const MeshDecodeStats *
    meshStats(std::size_t lane = 0) const
    {
        (void)lane;
        return nullptr;
    }

    /**
     * Tiered telemetry of lane @p lane of the most recent decode:
     * confidence, escalation and frame-repair outcome. Null for
     * decoders without a tiered path and for lanes past the last
     * decode's batch size — the streaming pipeline probes this to
     * charge escalation latency and count repairs without knowing the
     * concrete decoder type.
     */
    virtual const TieredDecodeStats *
    tieredStats(std::size_t lane = 0) const
    {
        (void)lane;
        return nullptr;
    }

    virtual std::string name() const = 0;

    /**
     * Export the deterministic work counters accumulated since
     * construction into @p out under this decoder's `decoder.<kind>.*`
     * namespace (UF growth rounds and peel lengths, blossom
     * augmentations, mesh cycle/cap/quiescence counts). Counters only
     * depend on the decoded syndromes, never on the host, so exported
     * sets merge deterministically across shards. Default: no-op for
     * decoders without instrumentation.
     */
    virtual void
    exportMetrics(obs::MetricSet &out) const
    {
        (void)out;
    }

  private:
    const SurfaceLattice *lattice_;
    ErrorType type_;
    /** Majority-vote scratch of the fallback decodeWindow (lazy). */
    std::unique_ptr<Syndrome> windowScratch_;
};

} // namespace nisqpp

#endif // NISQPP_DECODERS_DECODER_HH
