#include "decoders/lut_decoder.hh"

#include <bit>

#include "common/logging.hh"
#include "decoders/workspace.hh"

namespace nisqpp {

LutDecoder::LutDecoder(const SurfaceLattice &lattice, ErrorType type)
    : Decoder(lattice, type)
{
    const int nd = lattice.numData();
    const int na = lattice.numAncilla(type);
    require(nd <= 20, "LutDecoder: lattice too large for brute force");
    require(na <= 24, "LutDecoder: syndrome space too large");

    table_.assign(std::size_t{1} << na, UINT32_MAX);
    std::vector<int> best_weight(std::size_t{1} << na, nd + 1);

    // Enumerate every error pattern; record the lightest pattern that
    // produces each syndrome. Identical-weight ties resolve to the
    // lowest bitmask for determinism.
    for (std::uint32_t pattern = 0;
         pattern < (std::uint32_t{1} << nd); ++pattern) {
        std::uint32_t key = 0;
        for (int a = 0; a < na; ++a) {
            char parity = 0;
            for (int d : lattice.ancillaDataNeighbors(type, a))
                parity ^= static_cast<char>((pattern >> d) & 1u);
            key |= static_cast<std::uint32_t>(parity) << a;
        }
        const int w = std::popcount(pattern);
        if (w < best_weight[key]) {
            best_weight[key] = w;
            table_[key] = pattern;
        }
    }
    for (auto entry : table_)
        require(entry != UINT32_MAX,
                "LutDecoder: unreachable syndrome (geometry bug)");
}

std::uint32_t
LutDecoder::syndromeKey(const Syndrome &syndrome) const
{
    std::uint32_t key = 0;
    for (int a = 0; a < syndrome.size(); ++a)
        key |= static_cast<std::uint32_t>(syndrome.hot(a) ? 1u : 0u) << a;
    return key;
}

Correction
LutDecoder::decode(const Syndrome &syndrome)
{
    TrialWorkspace ws;
    decode(syndrome, ws);
    return std::move(ws.correction);
}

void
LutDecoder::decode(const Syndrome &syndrome, TrialWorkspace &ws)
{
    ws.correction.clear();
    const std::uint32_t pattern = table_.at(syndromeKey(syndrome));
    for (int d = 0; d < lattice().numData(); ++d)
        if ((pattern >> d) & 1u)
            ws.correction.dataFlips.push_back(d);
}

} // namespace nisqpp
