#include "decoders/mwpm_decoder.hh"

#include "common/logging.hh"
#include "decoders/path.hh"
#include "decoders/workspace.hh"
#include "obs/metrics.hh"

namespace nisqpp {

void
MwpmDecoder::exportMetrics(obs::MetricSet &out) const
{
    if (decodes_ == 0)
        return;
    out.add("decoder.mwpm.decodes", decodes_);
    out.add("decoder.mwpm.window_decodes", windowDecodes_);
    out.add("decoder.mwpm.augmentations", augmentationsTotal_);
    out.add("decoder.mwpm.pairs", pairsTotal_);
    out.add("decoder.mwpm.correction_flips", correctionFlipsTotal_);
}

Correction
MwpmDecoder::decode(const Syndrome &syndrome)
{
    // Legacy allocation-per-call entry point; the engine loop passes a
    // persistent per-thread workspace instead.
    TrialWorkspace ws;
    decode(syndrome, ws);
    return std::move(ws.correction);
}

void
MwpmDecoder::decode(const Syndrome &syndrome, TrialWorkspace &ws)
{
    pairs_.clear();
    ws.correction.clear();
    ++decodes_;
    ws.graph.build(lattice(), type(), syndrome);
    matchBuiltGraph(ws);
}

void
MwpmDecoder::decodeWindow(const SyndromeWindow &window,
                          TrialWorkspace &ws)
{
    pairs_.clear();
    ws.correction.clear();
    ++decodes_;
    ++windowDecodes_;
    ws.graph.buildWindow(lattice(), type(), window);
    matchBuiltGraph(ws);
}

void
MwpmDecoder::matchBuiltGraph(TrialWorkspace &ws)
{
    const MatchingGraph &graph = ws.graph;
    const int k = graph.numNodes();
    if (k == 0)
        return;

    // Nodes 0..k-1 are defects (hot ancillas, or detection events on
    // spacetime builds); k..2k-1 their private boundary nodes, with
    // free boundary-boundary edges. pairWeight carries the time-like
    // |dt| term on spacetime builds.
    BlossomMatcher &matcher = ws.matcher;
    matcher.reset(2 * k);
    for (int i = 0; i < k; ++i) {
        for (int j = i + 1; j < k; ++j)
            matcher.setWeight(i, j, graph.pairWeight(i, j));
        matcher.setWeight(i, k + i, graph.boundaryWeight(i));
        for (int j = i + 1; j < k; ++j)
            matcher.setWeight(k + i, k + j, 0);
    }
    matcher.solve(ws.mate);
    augmentationsTotal_ +=
        static_cast<std::uint64_t>(matcher.lastAugmentations());

    for (int i = 0; i < k; ++i) {
        const int m = ws.mate[i];
        require(m >= 0, "MwpmDecoder: unmatched node");
        if (m == k + i) {
            pairs_.push_back({graph.ancillaOf(i), -1, true});
            appendChainToBoundary(lattice(), type(), graph.ancillaOf(i),
                                  ws.correction.dataFlips);
        } else if (m < k && m > i) {
            pairs_.push_back({graph.ancillaOf(i), graph.ancillaOf(m),
                              false});
            // A pure time-like pairing (same ancilla, different
            // rounds) is a measurement error: no data flips.
            if (graph.ancillaOf(i) != graph.ancillaOf(m))
                appendChainBetweenAncillas(lattice(), type(),
                                           graph.ancillaOf(i),
                                           graph.ancillaOf(m),
                                           ws.correction.dataFlips);
        }
    }
    pairsTotal_ += pairs_.size();
    correctionFlipsTotal_ += ws.correction.dataFlips.size();
}

} // namespace nisqpp
