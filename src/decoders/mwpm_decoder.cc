#include "decoders/mwpm_decoder.hh"

#include "common/logging.hh"
#include "decoders/blossom.hh"
#include "decoders/path.hh"

namespace nisqpp {

Correction
MwpmDecoder::decode(const Syndrome &syndrome)
{
    pairs_.clear();
    Correction corr;
    const MatchingGraph graph(lattice(), type(), syndrome);
    const int k = graph.numNodes();
    if (k == 0)
        return corr;

    // Nodes 0..k-1 are syndromes; k..2k-1 their private boundary nodes.
    BlossomMatcher matcher(2 * k);
    for (int i = 0; i < k; ++i) {
        for (int j = i + 1; j < k; ++j)
            matcher.setWeight(i, j, graph.pairWeight(i, j));
        matcher.setWeight(i, k + i, graph.boundaryWeight(i));
        for (int j = i + 1; j < k; ++j)
            matcher.setWeight(k + i, k + j, 0);
    }
    std::vector<int> mate;
    matcher.solve(mate);

    for (int i = 0; i < k; ++i) {
        const int m = mate[i];
        require(m >= 0, "MwpmDecoder: unmatched node");
        if (m == k + i) {
            pairs_.push_back({graph.ancillaOf(i), -1, true});
            const auto leg =
                chainToBoundary(lattice(), type(), graph.ancillaOf(i));
            corr.dataFlips.insert(corr.dataFlips.end(), leg.begin(),
                                  leg.end());
        } else if (m < k && m > i) {
            pairs_.push_back({graph.ancillaOf(i), graph.ancillaOf(m),
                              false});
            const auto leg = chainBetweenAncillas(
                lattice(), type(), graph.ancillaOf(i), graph.ancillaOf(m));
            corr.dataFlips.insert(corr.dataFlips.end(), leg.begin(),
                                  leg.end());
        }
    }
    return corr;
}

} // namespace nisqpp
