/**
 * @file
 * Correction-chain construction shared by the matching-based decoders:
 * the data qubits along an L-shaped lattice path between two paired
 * ancillas (horizontal leg first, then vertical), or the straight path
 * from an ancilla to its nearest valid boundary. By construction such a
 * chain flips exactly the two endpoint ancillas (interior ancillas are
 * crossed twice), mirroring how the mesh decoder's pair signals trace
 * chains (paper Fig. 7).
 */

#ifndef NISQPP_DECODERS_PATH_HH
#define NISQPP_DECODERS_PATH_HH

#include <vector>

#include "surface/lattice.hh"

namespace nisqpp {

/**
 * Data qubits (compact indices) forming a minimal chain between two
 * ancillas of the family detecting @p type errors.
 */
std::vector<int> chainBetweenAncillas(const SurfaceLattice &lattice,
                                      ErrorType type, int a, int b);

/**
 * Data qubits forming the minimal chain from ancilla @p a to its nearest
 * valid boundary (west/east for Z errors, north/south for X errors).
 */
std::vector<int> chainToBoundary(const SurfaceLattice &lattice,
                                 ErrorType type, int a);

/**
 * Allocation-free variants: append the chain's data qubits to @p out
 * (typically a workspace correction buffer) in the same order as the
 * returning forms. @{
 */
void appendChainBetweenAncillas(const SurfaceLattice &lattice,
                                ErrorType type, int a, int b,
                                std::vector<int> &out);
void appendChainToBoundary(const SurfaceLattice &lattice, ErrorType type,
                           int a, std::vector<int> &out);
/** @} */

} // namespace nisqpp

#endif // NISQPP_DECODERS_PATH_HH
