/**
 * @file
 * Per-thread trial workspace: every scratch buffer a decoder needs
 * during one decode, owned by the Monte Carlo driver and reused across
 * the thousands of trials in an engine shard. The engine keeps one
 * workspace per worker thread; decoders borrow from it through the
 * workspace-aware `Decoder::decode` overload, so steady-state decoding
 * performs no heap allocation at all (buffers grow to the high-water
 * mark of the hardest syndrome and stay there).
 *
 * Buffers are grouped by consumer but deliberately shared across
 * decoder *instances* (the Z and X decoders of a depolarizing run, or
 * different distances in one sweep): every user assign()s or clear()s
 * what it borrows before reading it.
 */

#ifndef NISQPP_DECODERS_WORKSPACE_HH
#define NISQPP_DECODERS_WORKSPACE_HH

#include <vector>

#include "decoders/blossom.hh"
#include "decoders/decoder.hh"
#include "decoders/matching_graph.hh"

namespace nisqpp {

/** One weighted candidate edge of the greedy matcher. */
struct WeightedEdge
{
    int w;
    int i;
    int j; ///< -1 encodes the boundary edge of node i
};

/** Reusable scratch for one thread's decode loop. */
class TrialWorkspace
{
  public:
    /** The decoder's output buffer (cleared, not shrunk, per decode). */
    Correction correction;

    /**
     * Per-lane output buffers of Decoder::decodeBatch: entry i holds
     * the correction of syndrome i of the last batch. Sized to the
     * batch high-water mark; capacities are kept across batches.
     */
    std::vector<Correction> laneCorrections;

    /** @name Matching-based decoders (MWPM, greedy) @{ */
    MatchingGraph graph;           ///< rebuilt per decode, capacity kept
    BlossomMatcher matcher;        ///< reset per decode, arrays kept
    std::vector<int> mate;         ///< blossom output
    std::vector<WeightedEdge> greedyEdges;
    std::vector<char> matched;
    /** @} */

    /** @name Union-Find decoder @{ */
    std::vector<int> ufSeeds; ///< hot vertex ids (2D or spacetime)
    std::vector<int> ufParent;
    std::vector<int> ufRank;
    std::vector<char> ufParity;
    std::vector<char> ufBoundary;
    std::vector<char> ufSupport;
    std::vector<int> ufCandidates; ///< cluster-member frontier vertices
    std::vector<int> ufStamp;      ///< per-round vertex dedup stamps
    std::vector<int> ufGrown;
    std::vector<char> ufHot;
    std::vector<int> ufParentEdge;
    std::vector<int> ufBfsOrder;
    std::vector<char> ufVisited;
    std::vector<int> ufQueue; ///< BFS FIFO (head index, no pops)
    /** @} */
};

} // namespace nisqpp

#endif // NISQPP_DECODERS_WORKSPACE_HH
