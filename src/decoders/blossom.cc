#include "decoders/blossom.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace nisqpp {

namespace {
constexpr long kInf = std::numeric_limits<long>::max() / 4;
} // namespace

BlossomMatcher::BlossomMatcher(int n)
{
    reset(n);
}

void
BlossomMatcher::reset(int n)
{
    require(n >= 0, "BlossomMatcher: negative size");
    n_ = n;
    nx_ = n;
    cap_ = n + n / 2 + 2;

    if (cap_ > alloc_) {
        // Grow everything to the new high-water mark. The Edge matrix
        // is seeded with {u, v, 0} exactly once per growth: solve()
        // refills the real-vertex block and addBlossom() rewrites any
        // blossom-row entry before reading it, so stale values from
        // earlier instances are never observed.
        g_.assign(cap_ + 1, std::vector<Edge>(cap_ + 1));
        for (int u = 0; u <= cap_; ++u)
            for (int v = 0; v <= cap_; ++v)
                g_[u][v] = Edge{u, v, 0};
        lab_.assign(cap_ + 1, 0);
        match_.assign(cap_ + 1, 0);
        slack_.assign(cap_ + 1, 0);
        st_.assign(cap_ + 1, 0);
        pa_.assign(cap_ + 1, 0);
        s_.assign(cap_ + 1, -1);
        vis_.assign(cap_ + 1, 0);
        flowerFrom_.assign(cap_ + 1, std::vector<int>(n_ + 1, 0));
        flower_.assign(cap_ + 1, {});
        visitStamp_ = 0;
        alloc_ = cap_;
    } else {
        // Arrays are big enough; only widen the flowerFrom_ rows when a
        // larger real-vertex count needs them.
        for (auto &row : flowerFrom_)
            if (static_cast<int>(row.size()) < n_ + 1)
                row.assign(n_ + 1, 0);
    }

    // User weights start absent for every instance.
    userWeight_.resize(n_);
    for (auto &row : userWeight_)
        row.assign(n_, kAbsent);
}

void
BlossomMatcher::setWeight(int u, int v, long w)
{
    require(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v,
            "BlossomMatcher::setWeight: bad edge");
    require(w == kAbsent || w >= 0,
            "BlossomMatcher::setWeight: negative weight");
    userWeight_[u][v] = w;
    userWeight_[v][u] = w;
}

long
BlossomMatcher::eDelta(const Edge &e) const
{
    return lab_[e.u] + lab_[e.v] - g_[e.u][e.v].w * 2;
}

void
BlossomMatcher::updateSlack(int u, int x)
{
    if (!slack_[x] || eDelta(g_[u][x]) < eDelta(g_[slack_[x]][x]))
        slack_[x] = u;
}

void
BlossomMatcher::setSlack(int x)
{
    slack_[x] = 0;
    for (int u = 1; u <= n_; ++u)
        if (g_[u][x].w > 0 && st_[u] != x && s_[st_[u]] == 0)
            updateSlack(u, x);
}

void
BlossomMatcher::qPush(int x)
{
    if (x <= n_) {
        queue_.push_back(x);
    } else {
        for (int f : flower_[x])
            qPush(f);
    }
}

void
BlossomMatcher::setSt(int x, int b)
{
    st_[x] = b;
    if (x > n_)
        for (int f : flower_[x])
            setSt(f, b);
}

int
BlossomMatcher::getPr(int b, int xr)
{
    auto it = std::find(flower_[b].begin(), flower_[b].end(), xr);
    require(it != flower_[b].end(), "getPr: xr not in blossom");
    int pr = static_cast<int>(it - flower_[b].begin());
    if (pr % 2 == 1) {
        std::reverse(flower_[b].begin() + 1, flower_[b].end());
        return static_cast<int>(flower_[b].size()) - pr;
    }
    return pr;
}

void
BlossomMatcher::setMatch(int u, int v)
{
    match_[u] = g_[u][v].v;
    if (u > n_) {
        const Edge e = g_[u][v];
        const int xr = flowerFrom_[u][e.u];
        const int pr = getPr(u, xr);
        for (int i = 0; i < pr; ++i)
            setMatch(flower_[u][i], flower_[u][i ^ 1]);
        setMatch(xr, v);
        std::rotate(flower_[u].begin(), flower_[u].begin() + pr,
                    flower_[u].end());
    }
}

void
BlossomMatcher::augment(int u, int v)
{
    ++augments_;
    for (;;) {
        const int xnv = st_[match_[u]];
        setMatch(u, v);
        if (!xnv)
            return;
        setMatch(xnv, st_[pa_[xnv]]);
        u = st_[pa_[xnv]];
        v = xnv;
    }
}

int
BlossomMatcher::getLca(int u, int v)
{
    for (++visitStamp_; u || v; std::swap(u, v)) {
        if (u == 0)
            continue;
        if (vis_[u] == visitStamp_)
            return u;
        vis_[u] = visitStamp_;
        u = st_[match_[u]];
        if (u)
            u = st_[pa_[u]];
    }
    return 0;
}

void
BlossomMatcher::addBlossom(int u, int lca, int v)
{
    int b = n_ + 1;
    while (b <= nx_ && st_[b])
        ++b;
    if (b > nx_)
        ++nx_;
    require(nx_ <= cap_, "addBlossom: blossom capacity exceeded");

    lab_[b] = 0;
    s_[b] = 0;
    match_[b] = match_[lca];
    flower_[b].clear();
    flower_[b].push_back(lca);
    for (int x = u, y; x != lca; x = st_[pa_[y]]) {
        flower_[b].push_back(x);
        y = st_[match_[x]];
        flower_[b].push_back(y);
        qPush(y);
    }
    std::reverse(flower_[b].begin() + 1, flower_[b].end());
    for (int x = v, y; x != lca; x = st_[pa_[y]]) {
        flower_[b].push_back(x);
        y = st_[match_[x]];
        flower_[b].push_back(y);
        qPush(y);
    }
    setSt(b, b);
    for (int x = 1; x <= nx_; ++x)
        g_[b][x].w = g_[x][b].w = 0;
    for (int x = 1; x <= n_; ++x)
        flowerFrom_[b][x] = 0;
    for (int xs : flower_[b]) {
        for (int x = 1; x <= nx_; ++x) {
            if (g_[b][x].w == 0 || eDelta(g_[xs][x]) < eDelta(g_[b][x])) {
                g_[b][x] = g_[xs][x];
                g_[x][b] = g_[x][xs];
            }
        }
        for (int x = 1; x <= n_; ++x)
            if (flowerFrom_[xs][x])
                flowerFrom_[b][x] = xs;
    }
    setSlack(b);
}

void
BlossomMatcher::expandBlossom(int b)
{
    for (int f : flower_[b])
        setSt(f, f);
    const int xr = flowerFrom_[b][g_[b][pa_[b]].u];
    const int pr = getPr(b, xr);
    for (int i = 0; i < pr; i += 2) {
        const int xs = flower_[b][i];
        const int xns = flower_[b][i + 1];
        pa_[xs] = g_[xns][xs].u;
        s_[xs] = 1;
        s_[xns] = 0;
        slack_[xs] = 0;
        setSlack(xns);
        qPush(xns);
    }
    s_[xr] = 1;
    pa_[xr] = pa_[b];
    for (std::size_t i = pr + 1; i < flower_[b].size(); ++i) {
        const int xs = flower_[b][i];
        s_[xs] = -1;
        setSlack(xs);
    }
    st_[b] = 0;
}

bool
BlossomMatcher::onFoundEdge(const Edge &e)
{
    const int u = st_[e.u];
    const int v = st_[e.v];
    if (s_[v] == -1) {
        pa_[v] = e.u;
        s_[v] = 1;
        const int nu = st_[match_[v]];
        slack_[v] = slack_[nu] = 0;
        s_[nu] = 0;
        qPush(nu);
    } else if (s_[v] == 0) {
        const int lca = getLca(u, v);
        if (!lca) {
            augment(u, v);
            augment(v, u);
            return true;
        }
        addBlossom(u, lca, v);
    }
    return false;
}

bool
BlossomMatcher::matchingPhase()
{
    std::fill(s_.begin() + 1, s_.begin() + nx_ + 1, -1);
    std::fill(slack_.begin() + 1, slack_.begin() + nx_ + 1, 0);
    queue_.clear();
    qHead_ = 0;
    for (int x = 1; x <= nx_; ++x) {
        if (st_[x] == x && !match_[x]) {
            pa_[x] = 0;
            s_[x] = 0;
            qPush(x);
        }
    }
    if (queue_.empty())
        return false;

    for (;;) {
        while (qHead_ < queue_.size()) {
            const int u = queue_[qHead_++];
            if (s_[st_[u]] == 1)
                continue;
            for (int v = 1; v <= n_; ++v) {
                if (g_[u][v].w > 0 && st_[u] != st_[v]) {
                    if (eDelta(g_[u][v]) == 0) {
                        if (onFoundEdge(g_[u][v]))
                            return true;
                    } else {
                        updateSlack(u, st_[v]);
                    }
                }
            }
        }
        long d = kInf;
        for (int b = n_ + 1; b <= nx_; ++b)
            if (st_[b] == b && s_[b] == 1)
                d = std::min(d, lab_[b] / 2);
        for (int x = 1; x <= nx_; ++x) {
            if (st_[x] == x && slack_[x]) {
                if (s_[x] == -1)
                    d = std::min(d, eDelta(g_[slack_[x]][x]));
                else if (s_[x] == 0)
                    d = std::min(d, eDelta(g_[slack_[x]][x]) / 2);
            }
        }
        for (int u = 1; u <= n_; ++u) {
            if (s_[st_[u]] == 0) {
                if (lab_[u] <= d)
                    return false;
                lab_[u] -= d;
            } else if (s_[st_[u]] == 1) {
                lab_[u] += d;
            }
        }
        for (int b = n_ + 1; b <= nx_; ++b) {
            if (st_[b] == b) {
                if (s_[b] == 0)
                    lab_[b] += d * 2;
                else if (s_[b] == 1)
                    lab_[b] -= d * 2;
            }
        }
        qHead_ = 0;
        queue_.clear();
        for (int x = 1; x <= nx_; ++x) {
            if (st_[x] == x && slack_[x] && st_[slack_[x]] != x &&
                eDelta(g_[slack_[x]][x]) == 0) {
                if (onFoundEdge(g_[slack_[x]][x]))
                    return true;
            }
        }
        for (int b = n_ + 1; b <= nx_; ++b)
            if (st_[b] == b && s_[b] == 1 && lab_[b] == 0)
                expandBlossom(b);
    }
}

long
BlossomMatcher::solve(std::vector<int> &mate)
{
    require(n_ % 2 == 0, "BlossomMatcher::solve: odd vertex count");
    mate.assign(n_, -1);
    lastAugments_ = 0;
    if (n_ == 0)
        return 0;
    const std::int64_t augmentsBefore = augments_;

    // Transform to maximum-weight matching: w' = 2 * (C - w). C must be
    // large enough that any larger-cardinality matching outweighs any
    // smaller one (C > (n/2) * max_w), so the maximum-weight matching is
    // forced to be perfect whenever one exists — also on sparse graphs.
    long max_w = 0;
    for (int u = 0; u < n_; ++u)
        for (int v = 0; v < n_; ++v)
            if (userWeight_[u][v] != kAbsent)
                max_w = std::max(max_w, userWeight_[u][v]);
    const long c = (max_w + 1) * (n_ / 2 + 1);

    nx_ = n_;
    std::fill(match_.begin(), match_.end(), 0);
    for (int u = 0; u <= cap_; ++u) {
        st_[u] = u;
        flower_[u].clear();
    }
    long w_transformed_max = 0;
    for (int u = 1; u <= n_; ++u) {
        for (int v = 1; v <= n_; ++v) {
            flowerFrom_[u][v] = (u == v ? u : 0);
            const long uw = userWeight_[u - 1][v - 1];
            const long w = (u != v && uw != kAbsent) ? 2 * (c - uw) : 0;
            g_[u][v] = Edge{u, v, w};
            w_transformed_max = std::max(w_transformed_max, w);
        }
    }
    for (int u = 1; u <= n_; ++u)
        lab_[u] = w_transformed_max;

    int n_matches = 0;
    while (matchingPhase())
        ++n_matches;
    require(n_matches * 2 == n_,
            "BlossomMatcher: no perfect matching exists");
    lastAugments_ = augments_ - augmentsBefore;

    long total = 0;
    for (int u = 1; u <= n_; ++u) {
        require(match_[u] != 0, "BlossomMatcher: unmatched vertex");
        mate[u - 1] = match_[u] - 1;
        if (match_[u] < u) {
            const long uw = userWeight_[u - 1][match_[u] - 1];
            require(uw != kAbsent, "BlossomMatcher: matched absent edge");
            total += uw;
        }
    }
    return total;
}

std::vector<int>
minWeightPerfectMatching(const std::vector<std::vector<long>> &weights)
{
    const int n = static_cast<int>(weights.size());
    BlossomMatcher matcher(n);
    for (int u = 0; u < n; ++u) {
        require(static_cast<int>(weights[u].size()) == n,
                "minWeightPerfectMatching: non-square matrix");
        for (int v = u + 1; v < n; ++v)
            matcher.setWeight(u, v, weights[u][v]);
    }
    std::vector<int> mate;
    matcher.solve(mate);
    return mate;
}

} // namespace nisqpp
