#include "decoders/greedy_decoder.hh"

#include <algorithm>
#include <tuple>

#include "decoders/path.hh"

namespace nisqpp {

Correction
GreedyDecoder::decode(const Syndrome &syndrome)
{
    pairs_.clear();
    Correction corr;
    const MatchingGraph graph(lattice(), type(), syndrome);
    const int k = graph.numNodes();
    if (k == 0)
        return corr;

    struct Candidate
    {
        int w;
        int i;
        int j; ///< -1 encodes the boundary edge of node i
    };
    std::vector<Candidate> edges;
    edges.reserve(static_cast<std::size_t>(k) * (k + 1) / 2);
    for (int i = 0; i < k; ++i) {
        for (int j = i + 1; j < k; ++j)
            edges.push_back({graph.pairWeight(i, j), i, j});
        edges.push_back({graph.boundaryWeight(i), i, -1});
    }
    // Ascending distance = descending likelihood; deterministic
    // tie-breaking by node indices (boundary edges lose ties so that
    // syndrome-syndrome pairings are preferred at equal length).
    auto key = [k](const Candidate &c) {
        return std::tuple<int, int, int>(c.w, c.i, c.j == -1 ? k : c.j);
    };
    std::sort(edges.begin(), edges.end(),
              [&key](const Candidate &a, const Candidate &b) {
                  return key(a) < key(b);
              });

    std::vector<char> matched(k, 0);
    for (const auto &e : edges) {
        if (matched[e.i])
            continue;
        if (e.j == -1) {
            matched[e.i] = 1;
            pairs_.push_back({graph.ancillaOf(e.i), -1, true});
            const auto leg =
                chainToBoundary(lattice(), type(), graph.ancillaOf(e.i));
            corr.dataFlips.insert(corr.dataFlips.end(), leg.begin(),
                                  leg.end());
        } else if (!matched[e.j]) {
            matched[e.i] = matched[e.j] = 1;
            pairs_.push_back({graph.ancillaOf(e.i), graph.ancillaOf(e.j),
                              false});
            const auto leg = chainBetweenAncillas(
                lattice(), type(), graph.ancillaOf(e.i),
                graph.ancillaOf(e.j));
            corr.dataFlips.insert(corr.dataFlips.end(), leg.begin(),
                                  leg.end());
        }
    }
    return corr;
}

} // namespace nisqpp
