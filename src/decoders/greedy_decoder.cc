#include "decoders/greedy_decoder.hh"

#include <algorithm>
#include <tuple>

#include "decoders/path.hh"
#include "decoders/workspace.hh"

namespace nisqpp {

Correction
GreedyDecoder::decode(const Syndrome &syndrome)
{
    // Legacy allocation-per-call entry point; the engine loop passes a
    // persistent per-thread workspace instead.
    TrialWorkspace ws;
    decode(syndrome, ws);
    return std::move(ws.correction);
}

void
GreedyDecoder::decode(const Syndrome &syndrome, TrialWorkspace &ws)
{
    decodeInto(syndrome, ws, ws.correction);
}

void
GreedyDecoder::decodeBatch(const Syndrome *const *syndromes,
                           std::size_t count, TrialWorkspace &ws)
{
    if (ws.laneCorrections.size() < count)
        ws.laneCorrections.resize(count);
    for (std::size_t i = 0; i < count; ++i)
        decodeInto(*syndromes[i], ws, ws.laneCorrections[i]);
}

void
GreedyDecoder::decodeInto(const Syndrome &syndrome, TrialWorkspace &ws,
                          Correction &out)
{
    pairs_.clear();
    out.clear();
    ws.graph.build(lattice(), type(), syndrome);
    const MatchingGraph &graph = ws.graph;
    const int k = graph.numNodes();
    if (k == 0)
        return;

    std::vector<WeightedEdge> &edges = ws.greedyEdges;
    edges.clear();
    edges.reserve(static_cast<std::size_t>(k) * (k + 1) / 2);
    for (int i = 0; i < k; ++i) {
        for (int j = i + 1; j < k; ++j)
            edges.push_back({graph.pairWeight(i, j), i, j});
        edges.push_back({graph.boundaryWeight(i), i, -1});
    }
    // Ascending distance = descending likelihood; deterministic
    // tie-breaking by node indices (boundary edges lose ties so that
    // syndrome-syndrome pairings are preferred at equal length).
    auto key = [k](const WeightedEdge &c) {
        return std::tuple<int, int, int>(c.w, c.i, c.j == -1 ? k : c.j);
    };
    std::sort(edges.begin(), edges.end(),
              [&key](const WeightedEdge &a, const WeightedEdge &b) {
                  return key(a) < key(b);
              });

    std::vector<char> &matched = ws.matched;
    matched.assign(k, 0);
    for (const auto &e : edges) {
        if (matched[e.i])
            continue;
        if (e.j == -1) {
            matched[e.i] = 1;
            pairs_.push_back({graph.ancillaOf(e.i), -1, true});
            appendChainToBoundary(lattice(), type(),
                                  graph.ancillaOf(e.i),
                                  out.dataFlips);
        } else if (!matched[e.j]) {
            matched[e.i] = matched[e.j] = 1;
            pairs_.push_back({graph.ancillaOf(e.i), graph.ancillaOf(e.j),
                              false});
            appendChainBetweenAncillas(lattice(), type(),
                                       graph.ancillaOf(e.i),
                                       graph.ancillaOf(e.j),
                                       out.dataFlips);
        }
    }
}

} // namespace nisqpp
