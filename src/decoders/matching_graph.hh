/**
 * @file
 * The syndrome matching graph of paper Section V-A: a complete graph on
 * the hot ancillas, edge weights equal to the minimal number of data
 * errors connecting them, plus one virtual boundary node per hot ancilla
 * (boundary-boundary edges are free). Shared by the MWPM and greedy
 * software decoders.
 *
 * For faulty-measurement decoding, buildWindow() materializes the
 * *spacetime* variant instead: nodes are the detection events (t, a) of
 * a SyndromeWindow and pair weights gain a time-like component |dt|
 * (one measurement flip bridges one round), while boundary legs remain
 * purely spatial — event chains can only terminate on lattice
 * boundaries because the window closes with a perfect commit round.
 */

#ifndef NISQPP_DECODERS_MATCHING_GRAPH_HH
#define NISQPP_DECODERS_MATCHING_GRAPH_HH

#include <vector>

#include "surface/lattice.hh"
#include "surface/syndrome.hh"
#include "surface/syndrome_window.hh"

namespace nisqpp {

/** One pairing decision produced by a matching decoder. */
struct MatchPair
{
    int a;          ///< compact ancilla index
    int b;          ///< partner ancilla index; ignored when toBoundary
    bool toBoundary;///< whether @p a pairs with its nearest boundary
};

/**
 * Materialized matching instance for one syndrome. Reusable: a
 * default-constructed graph lives in the trial workspace and build()
 * refills it per decode without shedding buffer capacity.
 */
class MatchingGraph
{
  public:
    /** Empty graph; build() before use. */
    MatchingGraph() = default;

    MatchingGraph(const SurfaceLattice &lattice, ErrorType type,
                  const Syndrome &syndrome);

    /** (Re)materialize for @p syndrome, reusing internal buffers. */
    void build(const SurfaceLattice &lattice, ErrorType type,
               const Syndrome &syndrome);

    /**
     * (Re)materialize the spacetime graph on the detection events of
     * @p window, reusing internal buffers. Nodes carry a round index
     * (nodeTime) and pairWeight adds the time-like |dt| term.
     */
    void buildWindow(const SurfaceLattice &lattice, ErrorType type,
                     const SyndromeWindow &window);

    int numNodes() const { return static_cast<int>(nodes_.size()); }

    /** Round index of node @p i; -1 on space-only builds. */
    int
    nodeTime(int i) const
    {
        NISQPP_DCHECK(i >= 0 && i < numNodes(),
                      "MatchingGraph::nodeTime: node out of range");
        return times_.empty() ? -1 : times_[i];
    }

    /** Compact ancilla index of node @p i (hot path, DCHECKed). */
    int
    ancillaOf(int i) const
    {
        NISQPP_DCHECK(i >= 0 && i < numNodes(),
                      "MatchingGraph::ancillaOf: node out of range");
        return nodes_[i];
    }

    /**
     * Chain length between nodes i and j: data errors on the spatial
     * leg plus, on spacetime builds, measurement flips on the
     * time-like leg (|dt| rounds).
     */
    int
    pairWeight(int i, int j) const
    {
        NISQPP_DCHECK(i >= 0 && i < numNodes() && j >= 0 &&
                          j < numNodes(),
                      "MatchingGraph::pairWeight: node out of range");
        int w = lattice_->ancillaGraphDistance(type_, nodes_[i],
                                               nodes_[j]);
        if (!times_.empty()) {
            const int dt = times_[i] - times_[j];
            w += dt < 0 ? -dt : dt;
        }
        return w;
    }

    /** Chain length from node @p i to its nearest valid boundary. */
    int
    boundaryWeight(int i) const
    {
        NISQPP_DCHECK(i >= 0 && i < numNodes(),
                      "MatchingGraph::boundaryWeight: node out of range");
        return boundaryDist_[i];
    }

    /** Total weight of a matching (pairs + boundary legs). */
    long totalWeight(const std::vector<MatchPair> &pairs) const;

  private:
    const SurfaceLattice *lattice_ = nullptr;
    ErrorType type_ = ErrorType::Z;
    std::vector<int> nodes_;
    std::vector<int> times_; ///< node round indices; empty = space-only
    std::vector<int> boundaryDist_;
};

} // namespace nisqpp

#endif // NISQPP_DECODERS_MATCHING_GRAPH_HH
