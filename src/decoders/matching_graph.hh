/**
 * @file
 * The syndrome matching graph of paper Section V-A: a complete graph on
 * the hot ancillas, edge weights equal to the minimal number of data
 * errors connecting them, plus one virtual boundary node per hot ancilla
 * (boundary-boundary edges are free). Shared by the MWPM and greedy
 * software decoders.
 */

#ifndef NISQPP_DECODERS_MATCHING_GRAPH_HH
#define NISQPP_DECODERS_MATCHING_GRAPH_HH

#include <vector>

#include "surface/lattice.hh"
#include "surface/syndrome.hh"

namespace nisqpp {

/** One pairing decision produced by a matching decoder. */
struct MatchPair
{
    int a;          ///< compact ancilla index
    int b;          ///< partner ancilla index; ignored when toBoundary
    bool toBoundary;///< whether @p a pairs with its nearest boundary
};

/**
 * Materialized matching instance for one syndrome. Reusable: a
 * default-constructed graph lives in the trial workspace and build()
 * refills it per decode without shedding buffer capacity.
 */
class MatchingGraph
{
  public:
    /** Empty graph; build() before use. */
    MatchingGraph() = default;

    MatchingGraph(const SurfaceLattice &lattice, ErrorType type,
                  const Syndrome &syndrome);

    /** (Re)materialize for @p syndrome, reusing internal buffers. */
    void build(const SurfaceLattice &lattice, ErrorType type,
               const Syndrome &syndrome);

    int numNodes() const { return static_cast<int>(nodes_.size()); }

    /** Compact ancilla index of node @p i (hot path, DCHECKed). */
    int
    ancillaOf(int i) const
    {
        NISQPP_DCHECK(i >= 0 && i < numNodes(),
                      "MatchingGraph::ancillaOf: node out of range");
        return nodes_[i];
    }

    /** Chain length (number of data errors) between nodes i and j. */
    int
    pairWeight(int i, int j) const
    {
        NISQPP_DCHECK(i >= 0 && i < numNodes() && j >= 0 &&
                          j < numNodes(),
                      "MatchingGraph::pairWeight: node out of range");
        return lattice_->ancillaGraphDistance(type_, nodes_[i],
                                              nodes_[j]);
    }

    /** Chain length from node @p i to its nearest valid boundary. */
    int
    boundaryWeight(int i) const
    {
        NISQPP_DCHECK(i >= 0 && i < numNodes(),
                      "MatchingGraph::boundaryWeight: node out of range");
        return boundaryDist_[i];
    }

    /** Total weight of a matching (pairs + boundary legs). */
    long totalWeight(const std::vector<MatchPair> &pairs) const;

  private:
    const SurfaceLattice *lattice_ = nullptr;
    ErrorType type_ = ErrorType::Z;
    std::vector<int> nodes_;
    std::vector<int> boundaryDist_;
};

} // namespace nisqpp

#endif // NISQPP_DECODERS_MATCHING_GRAPH_HH
