#include "decoders/tiered_decoder.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "decoders/workspace.hh"
#include "obs/metrics.hh"

namespace nisqpp {

namespace {

/**
 * Sort a flip list and cancel duplicate entries mod 2 in place (a
 * qubit flipped twice is not flipped). Both the mesh and the software
 * decoders emit each qubit at most once in practice, but the repair
 * diff must hold under XOR semantics regardless.
 */
void
canonicalize(std::vector<int> &flips)
{
    std::sort(flips.begin(), flips.end());
    std::size_t out = 0;
    for (std::size_t i = 0; i < flips.size();) {
        std::size_t j = i;
        while (j < flips.size() && flips[j] == flips[i])
            ++j;
        if ((j - i) & 1)
            flips[out++] = flips[i];
        i = j;
    }
    flips.resize(out);
}

/** Symmetric difference of two canonicalized (sorted, unique) lists. */
void
symmetricDifference(const std::vector<int> &a, const std::vector<int> &b,
                    std::vector<int> &out)
{
    out.clear();
    std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                  std::back_inserter(out));
}

} // namespace

TieredDecoder::TieredDecoder(const SurfaceLattice &lattice,
                             ErrorType type,
                             std::unique_ptr<MeshDecoder> mesh,
                             std::unique_ptr<Decoder> exact,
                             double threshold)
    : Decoder(lattice, type), mesh_(std::move(mesh)),
      exact_(std::move(exact)), threshold_(threshold)
{
    require(mesh_ != nullptr && exact_ != nullptr,
            "TieredDecoder: both tiers are required");
    require(&mesh_->lattice() == &lattice &&
                &exact_->lattice() == &lattice,
            "TieredDecoder: tiers must share the decoder's lattice");
    require(mesh_->type() == type && exact_->type() == type,
            "TieredDecoder: tiers must decode the same error family");
}

bool
TieredDecoder::scoreDecode(const MeshDecodeStats &mesh,
                           TieredDecodeStats &ts)
{
    ts.reset();
    const MeshConfidence conf{mesh_->quiescenceWindow()};
    ts.confidence = conf.score(mesh);
    ++decodes_;
    const auto bin = static_cast<std::size_t>(
        std::min(ts.confidence, 1.0) * (kConfidenceBins - 1));
    confidenceHist_.add(bin);
    confidenceBinSum_ += bin;
    return ts.confidence < threshold_;
}

void
TieredDecoder::finishEscalation(TieredDecodeStats &ts)
{
    ++escalations_;
    ts.escalated = true;
    if (!ts.repairFlips.empty()) {
        ts.repaired = true;
        ++repairs_;
        repairFlipsTotal_ += ts.repairFlips.size();
    }
}

void
TieredDecoder::escalateIfNeeded(const Syndrome &syndrome,
                                TrialWorkspace &ws, Correction &out,
                                const MeshDecodeStats &mesh,
                                TieredDecodeStats &ts)
{
    if (!scoreDecode(mesh, ts))
        return;
    // Park the mesh's provisional answer, let the exact tier decode
    // into ws.correction, and diff the two into the frame repair.
    std::swap(provisional_.dataFlips, out.dataFlips);
    exact_->decode(syndrome, ws);
    if (&out != &ws.correction)
        std::swap(out.dataFlips, ws.correction.dataFlips);
    canonicalize(provisional_.dataFlips);
    diffScratch_ = out.dataFlips;
    canonicalize(diffScratch_);
    symmetricDifference(provisional_.dataFlips, diffScratch_,
                        ts.repairFlips);
    finishEscalation(ts);
}

Correction
TieredDecoder::decode(const Syndrome &syndrome)
{
    TrialWorkspace ws;
    decode(syndrome, ws);
    return ws.correction;
}

void
TieredDecoder::decode(const Syndrome &syndrome, TrialWorkspace &ws)
{
    stats_.resize(1);
    mesh_->decode(syndrome, ws);
    escalateIfNeeded(syndrome, ws, ws.correction, mesh_->lastStats(),
                     stats_[0]);
}

void
TieredDecoder::decodeBatch(const Syndrome *const *syndromes,
                           std::size_t count, TrialWorkspace &ws)
{
    if (count == 0)
        return;
    stats_.resize(count);
    mesh_->decodeBatch(syndromes, count, ws);
    // Escalations run scalar after the lane-packed first tier, in lane
    // order, so counters and corrections match a scalar tiered loop
    // over the same syndromes bit for bit.
    for (std::size_t i = 0; i < count; ++i)
        escalateIfNeeded(*syndromes[i], ws, ws.laneCorrections[i],
                         *mesh_->meshStats(i), stats_[i]);
}

void
TieredDecoder::decodeWindow(const SyndromeWindow &window,
                            TrialWorkspace &ws)
{
    stats_.resize(1);
    TieredDecodeStats &ts = stats_[0];
    // First tier: the mesh's round-majority window reduction; its
    // inner scalar decode leaves the telemetry we score.
    mesh_->decodeWindow(window, ws);
    ++windowDecodes_;
    if (!scoreDecode(mesh_->lastStats(), ts))
        return;
    std::swap(provisional_.dataFlips, ws.correction.dataFlips);
    exact_->decodeWindow(window, ws);
    canonicalize(provisional_.dataFlips);
    diffScratch_ = ws.correction.dataFlips;
    canonicalize(diffScratch_);
    symmetricDifference(provisional_.dataFlips, diffScratch_,
                        ts.repairFlips);
    finishEscalation(ts);
}

void
TieredDecoder::exportMetrics(obs::MetricSet &out) const
{
    if (decodes_ != 0) {
        out.add("decoder.tiered.decodes", decodes_);
        out.add("decoder.tiered.window_decodes", windowDecodes_);
        out.add("decoder.tiered.escalations", escalations_);
        out.add("decoder.tiered.repairs", repairs_);
        out.add("decoder.tiered.repair_flips", repairFlipsTotal_);
        out.mergeHistogram("decoder.tiered.confidence_q64",
                           confidenceHist_, confidenceBinSum_);
    }
    mesh_->exportMetrics(out);
    exact_->exportMetrics(out);
}

std::string
TieredDecoder::name() const
{
    char thr[32];
    std::snprintf(thr, sizeof thr, "%.2f", threshold_);
    return "tiered[" + mesh_->name() + "->" + exact_->name() + "@" +
           thr + "]";
}

} // namespace nisqpp
