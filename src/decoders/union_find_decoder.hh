/**
 * @file
 * Union-Find decoder (Delfosse & Nickerson [9], one of the paper's
 * approximate-baseline comparisons in Fig. 11). Odd clusters grow by
 * half-edges on the ancilla graph, merge through a union-find structure
 * tracking parity and boundary contact, and the final erasure is peeled
 * to a correction.
 *
 * The growth/peel core is graph-agnostic: the space-only decode runs it
 * on the 2D ancilla graph, and decodeWindow runs the identical
 * algorithm on the (rounds x ancilla) spacetime graph whose time-like
 * edges carry no data qubit — they absorb measurement flips — so the
 * peeled correction is the XOR of the spatial edges only.
 *
 * decodeBatch()/decodeWindowBatch() run a *lane-packed* variant of the
 * same algorithm: K independent syndromes share one pass over the
 * graph, with per-edge support counters held as two bit-planes (bit l
 * of word e = lane l's support >= 1 / == 2) in the runtime-dispatched
 * simd.hh lane word. Each growth round walks every live lane's odd
 * non-boundary clusters through per-root member lists (spliced O(1) on
 * union, so no per-round re-scan or root lookup is ever needed), marks
 * active vertices in a shared activity plane, then performs ONE
 * word-parallel sweep that saturates support for all lanes at once —
 * over only the edges incident to this round's active vertices, since
 * no other edge's support can change. Per-lane union-find state lives
 * in lane-major arrays that are initialized once per graph and
 * restored via touched-only cleanup after each peel (the erasure
 * vertices are exactly the state a trial dirtied), and the shared
 * bit-planes are rewound edge-by-edge at chunk end from a dirty-edge
 * list, so the per-trial cost is O(cluster) instead of the scalar
 * path's O(V + E) clears. Grown edges are applied in ascending edge
 * order; the cluster partition, parities, boundary flags, support
 * values, sorted erasure and peel forest are all
 * union-order-independent, so every lane's correction, growth-round
 * count and exported counter is bit-identical to a scalar decode of
 * the same syndrome.
 */

#ifndef NISQPP_DECODERS_UNION_FIND_DECODER_HH
#define NISQPP_DECODERS_UNION_FIND_DECODER_HH

#include <cstdint>

#include "common/simd.hh"
#include "common/stats.hh"
#include "decoders/decoder.hh"

namespace nisqpp {

/** Almost-linear-time union-find decoder. */
class UnionFindDecoder : public Decoder
{
  public:
    UnionFindDecoder(const SurfaceLattice &lattice, ErrorType type);

    Correction decode(const Syndrome &syndrome) override;
    void decode(const Syndrome &syndrome, TrialWorkspace &ws) override;

    /**
     * Lane-packed batch decode: up to 8 * sizeof(lane word) syndromes
     * grow their clusters together through shared bit-plane edge
     * sweeps. Corrections land in ws.laneCorrections[0..count), each
     * bit-identical to decode(*syndromes[i], ws); the accumulated
     * decoder.uf.* counters are identical too.
     */
    void decodeBatch(const Syndrome *const *syndromes, std::size_t count,
                     TrialWorkspace &ws) override;

    /**
     * Spacetime union-find over a faulty-measurement window: the same
     * growth + peel on the detection-event graph with unit time-like
     * edges between (t, a) and (t+1, a).
     */
    void decodeWindow(const SyndromeWindow &window,
                      TrialWorkspace &ws) override;

    /**
     * Lane-packed windowed batch (same engine on the spacetime graph).
     * Windows of mixed round counts fall back to the scalar loop.
     */
    void decodeWindowBatch(const SyndromeWindow *const *windows,
                           std::size_t count,
                           TrialWorkspace &ws) override;

    bool windowAware() const override { return true; }

    /** A peeled correction reproduces its syndrome exactly. */
    bool correctionClearsSyndrome() const override { return true; }

    std::string name() const override { return "union-find"; }

    /** Growth rounds used by the last decode (telemetry). */
    int lastGrowthRounds() const { return lastRounds_; }

    /** Lane word width the batch engine was latched to (telemetry). */
    simd::Width batchWidth() const { return width_; }

    /**
     * Emit `decoder.uf.*` work counters accumulated since
     * construction: decode counts, total growth rounds, total peeled
     * correction length, plus a growth-round histogram.
     */
    void exportMetrics(obs::MetricSet &out) const override;

  private:
    struct GraphEdge
    {
        int u;       ///< vertex index (ancilla or virtual boundary)
        int v;
        int dataIdx; ///< data qubit flipped by this edge; -1 time-like
    };

    /** One static decoding graph (2D, or spacetime per window size). */
    struct Graph
    {
        std::vector<GraphEdge> edges;
        std::vector<std::vector<int>> incident; ///< vertex -> edge ids
        int numAncillaVertices = 0; ///< real vertices; boundaries after
        int numVertices = 0;
    };

    /**
     * Lane-packed batch state for one lane word type. The shared
     * planes (s1/s2/act) carry one bit per lane; the union-find arrays
     * are lane-major (entry l * numVertices + v) and preserved across
     * chunks by the touched-only cleanup invariant: between trials
     * every lane's slice reads parent[v] == v, meta[v] == its static
     * value (the boundary bit for virtual vertices, zero otherwise),
     * memberNext[v] == -1 and memberTail[v] == v (each vertex is the
     * singleton member list of its own cluster), the shared s1/s2
     * planes are all-zero (rewound from planeDirty each chunk), and
     * the shared peel scratch is all-clear. Keeping the persistent
     * per-lane state down to 13 bytes per vertex — and the peel
     * scratch shared across lanes so it stays cache-hot — is what
     * makes the wide-lane engines win: the per-trial working set is
     * small enough to live in L1/L2 instead of streaming from memory.
     */
    template <typename W>
    struct BatchEngine
    {
        static constexpr int kLanes = static_cast<int>(8 * sizeof(W));

        /** Graph identity the arrays were initialized for. */
        const void *graphKey = nullptr;
        int graphRounds = -1;
        int numVertices = 0;
        int numEdges = 0;
        int lanesReady = 0; ///< lanes whose state obeys the invariant

        std::vector<W> s1;  ///< per edge: lane support >= 1
        std::vector<W> s2;  ///< per edge: lane support == 2 (grown)
        std::vector<W> act; ///< per vertex: lane active this round
        std::vector<char> actMark; ///< act[v] nonzero (cheap test)
        std::vector<int> touched;  ///< vertices with act bits set
        std::vector<char> edgeMark;   ///< edge in dirtyEdges (per round)
        std::vector<int> dirtyEdges;  ///< edges swept this round
        std::vector<char> planeMark;  ///< edge in planeDirty (per chunk)
        std::vector<int> planeDirty;  ///< edges with nonzero s1/s2 bits

        /**
         * @name Batch-private CSR of the graph's incident lists
         * (vertex v's edges are incEdges[incOff[v]..incOff[v+1])).
         * Replaces the vector-of-vectors double indirection on the
         * batch hot paths (gather + peel BFS) without touching the
         * scalar decoder's layout.
         * @{
         */
        std::vector<int> incOff;
        std::vector<int> incEdges;
        /** @} */

        /** @name Lane-major union-find state (13 B/vertex) @{ */
        std::vector<int> parent;
        /// bit0 parity, bit1 boundary contact, bit2 in the lane's
        /// root list, bits 3+ union rank (<= log2 V, fits easily)
        std::vector<unsigned char> meta;
        std::vector<int> memberNext; ///< cluster member list links (-1 end)
        std::vector<int> memberTail; ///< root -> last member of its list
        /** @} */

        /**
         * Per-lane erasure bitset (eraseWords words per lane): bit v
         * set iff vertex v is a seed or a grown-edge endpoint of the
         * lane's current trial. Scanned ascending (and rezeroed) by
         * the peel to enumerate the sorted erasure without a dedup
         * pass or sort; all-zero between trials.
         */
        std::vector<std::uint64_t> laneErasure;
        int eraseWords = 0; ///< (numVertices + 63) / 64

        /** @name Per-graph lane-init templates (memcpy'd per lane) @{ */
        std::vector<int> iotaTemplate;           ///< 0, 1, ..., V-1
        std::vector<unsigned char> metaTemplate; ///< static meta bytes
        /** @} */

        /** @name Per-lane frontier bookkeeping @{ */
        std::vector<std::vector<int>> candidates; ///< seeds per lane
        /**
         * Grown (support == 2) edges per lane, accumulated across the
         * trial's rounds: each round's unions process the suffix past
         * grownDone[l], and the full list — exactly the lane's s2
         * edge set — then feeds the peel's forest adjacency, so the
         * peel BFS never scans incident lists or bit-planes.
         */
        std::vector<std::vector<int>> grown;
        std::vector<int> grownDone; ///< per lane: unions applied so far
        std::vector<std::vector<int>> roots; ///< live cluster roots
        std::vector<int> rounds;
        std::vector<char> finished;
        /** @} */

        /**
         * @name Peel scratch, SHARED across lanes (V-sized, so it
         * stays L1-hot while peeling lane after lane). Each lane's
         * peel resets exactly what it set: hot/visited only inside
         * the erasure, parentEdge only for BFS-reached vertices
         * (roots get an explicit -1), so no bulk clears.
         * @{
         */
        std::vector<char> hot;
        std::vector<char> visited;
        std::vector<int> parentEdge;
        std::vector<int> erasure;
        std::vector<int> bfsOrder; ///< BFS queue == visit order (FIFO)
        /**
         * Byte-per-edge membership mark of the lane under peel
         * (grownMark[ed] != 0 iff ed is in the lane's grown / s2
         * set): the BFS walks the CSR incident lists and tests this
         * E-byte array — a few L1 lines — instead of extracting lane
         * bits from the 64-byte-strided s2 plane. All-zero between
         * lanes (reset from the lane's grown list).
         */
        std::vector<char> grownMark;
        /** @} */
    };

    /** Growth + peel on @p graph seeded at @p seeds (hot vertices). */
    void decodeOnGraph(const Graph &graph, const std::vector<int> &seeds,
                       int growthBound, TrialWorkspace &ws);

    /** (Re)initialize @p e for @p graph and at least @p lanes lanes. */
    template <typename W>
    void ensureEngine(BatchEngine<W> &e, const Graph &graph,
                      int graphRounds, std::size_t lanes);

    /**
     * Decode one chunk of @p lanes pre-seeded lanes (candidates[l] =
     * seeds of trial base + l) on @p graph, writing corrections into
     * ws.laneCorrections[base..base+lanes) and folding each lane into
     * the work counters in ascending lane order.
     */
    template <typename W>
    void runChunk(const Graph &graph, int growthBound, BatchEngine<W> &e,
                  std::size_t base, std::size_t lanes,
                  TrialWorkspace &ws);

    /** Chunked batch loops over the 2D / spacetime graphs. @{ */
    template <typename W>
    void runBatch(BatchEngine<W> &e, const Syndrome *const *syndromes,
                  std::size_t count, TrialWorkspace &ws);
    template <typename W>
    void runWindowBatch(BatchEngine<W> &e,
                        const SyndromeWindow *const *windows,
                        std::size_t count, TrialWorkspace &ws);
    /** @} */

    /**
     * Append one ancilla family's spatial edge set to @p graph with
     * real vertices offset by @p base: ancilla-ancilla edges for
     * interior data qubits, private-virtual-boundary edges for
     * boundary data qubits. Shared by the 2D graph (base 0) and each
     * round of the spacetime graph, so the two can never drift.
     */
    static void appendSpatialEdges(const SurfaceLattice &lattice,
                                   ErrorType type, int base,
                                   Graph &graph);

    /** Build (or reuse) the spacetime graph for @p rounds rounds. */
    const Graph &windowGraph(int rounds);

    /** Fold one finished decode (lastRounds_ set) into the counters. */
    void noteDecode(const Correction &corr);

    Graph graph_;       ///< 2D ancilla graph (built once)
    Graph windowGraph_; ///< spacetime graph cache
    int windowGraphRounds_ = 0;
    int lastRounds_ = 0;

    /** Dispatch width latched at construction (simd::activeWidth). */
    simd::Width width_;
    BatchEngine<simd::W64> engine64_;
    BatchEngine<simd::W256> engine256_;
    BatchEngine<simd::W512> engine512_;

    /** Deterministic work counters (see exportMetrics). @{ */
    std::uint64_t decodes_ = 0;
    std::uint64_t windowDecodes_ = 0;
    std::uint64_t growthRoundsTotal_ = 0;
    std::uint64_t peelFlipsTotal_ = 0;
    Histogram roundsHist_{63};
    /** @} */
};

} // namespace nisqpp

#endif // NISQPP_DECODERS_UNION_FIND_DECODER_HH
