/**
 * @file
 * Union-Find decoder (Delfosse & Nickerson [9], one of the paper's
 * approximate-baseline comparisons in Fig. 11). Odd clusters grow by
 * half-edges on the ancilla graph, merge through a union-find structure
 * tracking parity and boundary contact, and the final erasure is peeled
 * to a correction.
 */

#ifndef NISQPP_DECODERS_UNION_FIND_DECODER_HH
#define NISQPP_DECODERS_UNION_FIND_DECODER_HH

#include "decoders/decoder.hh"

namespace nisqpp {

/** Almost-linear-time union-find decoder. */
class UnionFindDecoder : public Decoder
{
  public:
    UnionFindDecoder(const SurfaceLattice &lattice, ErrorType type);

    Correction decode(const Syndrome &syndrome) override;
    void decode(const Syndrome &syndrome, TrialWorkspace &ws) override;

    std::string name() const override { return "union-find"; }

    /** Growth rounds used by the last decode (telemetry). */
    int lastGrowthRounds() const { return lastRounds_; }

  private:
    struct GraphEdge
    {
        int u;       ///< vertex index (ancilla or virtual boundary)
        int v;
        int dataIdx; ///< data qubit flipped by this edge
    };

    // Static decoding graph: ancilla vertices then virtual boundary
    // vertices (one per boundary-adjacent ancilla). All per-decode
    // state lives in the caller's TrialWorkspace.
    std::vector<GraphEdge> edges_;
    std::vector<std::vector<int>> incident_; ///< vertex -> edge ids
    int numAncillaVertices_ = 0;
    int numVertices_ = 0;
    int lastRounds_ = 0;
};

} // namespace nisqpp

#endif // NISQPP_DECODERS_UNION_FIND_DECODER_HH
