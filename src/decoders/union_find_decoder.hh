/**
 * @file
 * Union-Find decoder (Delfosse & Nickerson [9], one of the paper's
 * approximate-baseline comparisons in Fig. 11). Odd clusters grow by
 * half-edges on the ancilla graph, merge through a union-find structure
 * tracking parity and boundary contact, and the final erasure is peeled
 * to a correction.
 *
 * The growth/peel core is graph-agnostic: the space-only decode runs it
 * on the 2D ancilla graph, and decodeWindow runs the identical
 * algorithm on the (rounds x ancilla) spacetime graph whose time-like
 * edges carry no data qubit — they absorb measurement flips — so the
 * peeled correction is the XOR of the spatial edges only.
 */

#ifndef NISQPP_DECODERS_UNION_FIND_DECODER_HH
#define NISQPP_DECODERS_UNION_FIND_DECODER_HH

#include <cstdint>

#include "common/stats.hh"
#include "decoders/decoder.hh"

namespace nisqpp {

/** Almost-linear-time union-find decoder. */
class UnionFindDecoder : public Decoder
{
  public:
    UnionFindDecoder(const SurfaceLattice &lattice, ErrorType type);

    Correction decode(const Syndrome &syndrome) override;
    void decode(const Syndrome &syndrome, TrialWorkspace &ws) override;

    /**
     * Spacetime union-find over a faulty-measurement window: the same
     * growth + peel on the detection-event graph with unit time-like
     * edges between (t, a) and (t+1, a).
     */
    void decodeWindow(const SyndromeWindow &window,
                      TrialWorkspace &ws) override;
    bool windowAware() const override { return true; }

    std::string name() const override { return "union-find"; }

    /** Growth rounds used by the last decode (telemetry). */
    int lastGrowthRounds() const { return lastRounds_; }

    /**
     * Emit `decoder.uf.*` work counters accumulated since
     * construction: decode counts, total growth rounds, total peeled
     * correction length, plus a growth-round histogram.
     */
    void exportMetrics(obs::MetricSet &out) const override;

  private:
    struct GraphEdge
    {
        int u;       ///< vertex index (ancilla or virtual boundary)
        int v;
        int dataIdx; ///< data qubit flipped by this edge; -1 time-like
    };

    /** One static decoding graph (2D, or spacetime per window size). */
    struct Graph
    {
        std::vector<GraphEdge> edges;
        std::vector<std::vector<int>> incident; ///< vertex -> edge ids
        int numAncillaVertices = 0; ///< real vertices; boundaries after
        int numVertices = 0;
    };

    /** Growth + peel on @p graph seeded at @p seeds (hot vertices). */
    void decodeOnGraph(const Graph &graph, const std::vector<int> &seeds,
                       int growthBound, TrialWorkspace &ws);

    /**
     * Append one ancilla family's spatial edge set to @p graph with
     * real vertices offset by @p base: ancilla-ancilla edges for
     * interior data qubits, private-virtual-boundary edges for
     * boundary data qubits. Shared by the 2D graph (base 0) and each
     * round of the spacetime graph, so the two can never drift.
     */
    static void appendSpatialEdges(const SurfaceLattice &lattice,
                                   ErrorType type, int base,
                                   Graph &graph);

    /** Build (or reuse) the spacetime graph for @p rounds rounds. */
    const Graph &windowGraph(int rounds);

    /** Fold the just-finished decode into the work counters. */
    void noteDecode(const TrialWorkspace &ws);

    Graph graph_;       ///< 2D ancilla graph (built once)
    Graph windowGraph_; ///< spacetime graph cache
    int windowGraphRounds_ = 0;
    int lastRounds_ = 0;

    /** Deterministic work counters (see exportMetrics). @{ */
    std::uint64_t decodes_ = 0;
    std::uint64_t windowDecodes_ = 0;
    std::uint64_t growthRoundsTotal_ = 0;
    std::uint64_t peelFlipsTotal_ = 0;
    Histogram roundsHist_{63};
    /** @} */
};

} // namespace nisqpp

#endif // NISQPP_DECODERS_UNION_FIND_DECODER_HH
