/**
 * @file
 * The paper's software greedy matching (Section V-B): sort all candidate
 * pairings by ascending chain length (descending likelihood) and accept
 * each edge whose endpoints are still free. External boundary nodes are
 * modeled per ancilla. This is a 2-approximation of the optimal matching
 * [13] and is the algorithmic ideal the SFQ mesh approximates in time.
 */

#ifndef NISQPP_DECODERS_GREEDY_DECODER_HH
#define NISQPP_DECODERS_GREEDY_DECODER_HH

#include "decoders/decoder.hh"
#include "decoders/matching_graph.hh"

namespace nisqpp {

/** Greedy sorted-edge matching decoder. */
class GreedyDecoder : public Decoder
{
  public:
    GreedyDecoder(const SurfaceLattice &lattice, ErrorType type)
        : Decoder(lattice, type)
    {}

    Correction decode(const Syndrome &syndrome) override;
    void decode(const Syndrome &syndrome, TrialWorkspace &ws) override;

    std::string name() const override { return "greedy"; }

    /** Pairing decisions of the last decode. */
    const std::vector<MatchPair> &lastMatching() const { return pairs_; }

  private:
    std::vector<MatchPair> pairs_;
};

} // namespace nisqpp

#endif // NISQPP_DECODERS_GREEDY_DECODER_HH
