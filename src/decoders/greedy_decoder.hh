/**
 * @file
 * The paper's software greedy matching (Section V-B): sort all candidate
 * pairings by ascending chain length (descending likelihood) and accept
 * each edge whose endpoints are still free. External boundary nodes are
 * modeled per ancilla. This is a 2-approximation of the optimal matching
 * [13] and is the algorithmic ideal the SFQ mesh approximates in time.
 */

#ifndef NISQPP_DECODERS_GREEDY_DECODER_HH
#define NISQPP_DECODERS_GREEDY_DECODER_HH

#include "decoders/decoder.hh"
#include "decoders/matching_graph.hh"

namespace nisqpp {

/** Greedy sorted-edge matching decoder. */
class GreedyDecoder : public Decoder
{
  public:
    GreedyDecoder(const SurfaceLattice &lattice, ErrorType type)
        : Decoder(lattice, type)
    {}

    Correction decode(const Syndrome &syndrome) override;
    void decode(const Syndrome &syndrome, TrialWorkspace &ws) override;

    /**
     * Batch decode straight into the lane buffers: each trial's chains
     * are appended to ws.laneCorrections[i] directly instead of
     * detouring through ws.correction and swapping afterwards (the
     * base-class fallback), so the hot loop touches one buffer per
     * lane and every buffer keeps its high-water capacity.
     */
    void decodeBatch(const Syndrome *const *syndromes, std::size_t count,
                     TrialWorkspace &ws) override;

    /** Every node is matched (to a partner or its boundary). */
    bool correctionClearsSyndrome() const override { return true; }

    std::string name() const override { return "greedy"; }

    /** Pairing decisions of the last decode. */
    const std::vector<MatchPair> &lastMatching() const { return pairs_; }

  private:
    /** Shared matcher body writing chains into @p out. */
    void decodeInto(const Syndrome &syndrome, TrialWorkspace &ws,
                    Correction &out);

    std::vector<MatchPair> pairs_;
};

} // namespace nisqpp

#endif // NISQPP_DECODERS_GREEDY_DECODER_HH
