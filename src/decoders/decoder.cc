#include "decoders/decoder.hh"

#include "decoders/workspace.hh"

namespace nisqpp {

void
Decoder::decode(const Syndrome &syndrome, TrialWorkspace &ws)
{
    ws.correction = decode(syndrome);
}

} // namespace nisqpp
