#include "decoders/decoder.hh"

#include <utility>

#include "decoders/workspace.hh"

namespace nisqpp {

void
Decoder::decode(const Syndrome &syndrome, TrialWorkspace &ws)
{
    ws.correction = decode(syndrome);
}

void
Decoder::decodeWindow(const SyndromeWindow &window, TrialWorkspace &ws)
{
    // Lazily built once: the decoder's lattice and type are fixed, so
    // the scratch can never go stale (majorityVote still checks the
    // window against the scratch's family).
    if (!windowScratch_)
        windowScratch_ =
            std::make_unique<Syndrome>(*lattice_, type_);
    window.majorityVote(*windowScratch_);
    decode(*windowScratch_, ws);
}

void
Decoder::decodeWindowBatch(const SyndromeWindow *const *windows,
                           std::size_t count, TrialWorkspace &ws)
{
    if (ws.laneCorrections.size() < count)
        ws.laneCorrections.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        decodeWindow(*windows[i], ws);
        // Swap instead of copy: both buffers keep their high-water
        // capacity across batches (mirrors decodeBatch).
        std::swap(ws.correction.dataFlips,
                  ws.laneCorrections[i].dataFlips);
    }
}

void
Decoder::decodeBatch(const Syndrome *const *syndromes, std::size_t count,
                     TrialWorkspace &ws)
{
    if (ws.laneCorrections.size() < count)
        ws.laneCorrections.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        decode(*syndromes[i], ws);
        // Swap instead of copy: both buffers keep their high-water
        // capacity across the thousands of batches in a shard.
        std::swap(ws.correction.dataFlips,
                  ws.laneCorrections[i].dataFlips);
    }
}

} // namespace nisqpp
