#include "decoders/decoder.hh"

#include <utility>

#include "decoders/workspace.hh"

namespace nisqpp {

void
Decoder::decode(const Syndrome &syndrome, TrialWorkspace &ws)
{
    ws.correction = decode(syndrome);
}

void
Decoder::decodeBatch(const Syndrome *const *syndromes, std::size_t count,
                     TrialWorkspace &ws)
{
    if (ws.laneCorrections.size() < count)
        ws.laneCorrections.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        decode(*syndromes[i], ws);
        // Swap instead of copy: both buffers keep their high-water
        // capacity across the thousands of batches in a shard.
        std::swap(ws.correction.dataFlips,
                  ws.laneCorrections[i].dataFlips);
    }
}

} // namespace nisqpp
