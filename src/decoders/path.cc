#include "decoders/path.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace nisqpp {

namespace {

/** Append the data sites strictly between two columns on one row. */
void
appendHorizontalLeg(const SurfaceLattice &lat, int row, int c0, int c1,
                    std::vector<int> &out)
{
    const int lo = std::min(c0, c1);
    const int hi = std::max(c0, c1);
    for (int c = lo + 1; c < hi; c += 2)
        out.push_back(lat.dataIndex({row, c}));
}

/** Append the data sites strictly between two rows on one column. */
void
appendVerticalLeg(const SurfaceLattice &lat, int col, int r0, int r1,
                  std::vector<int> &out)
{
    const int lo = std::min(r0, r1);
    const int hi = std::max(r0, r1);
    for (int r = lo + 1; r < hi; r += 2)
        out.push_back(lat.dataIndex({r, col}));
}

} // namespace

std::vector<int>
chainBetweenAncillas(const SurfaceLattice &lattice, ErrorType type, int a,
                     int b)
{
    std::vector<int> chain;
    appendChainBetweenAncillas(lattice, type, a, b, chain);
    return chain;
}

std::vector<int>
chainToBoundary(const SurfaceLattice &lattice, ErrorType type, int a)
{
    std::vector<int> chain;
    appendChainToBoundary(lattice, type, a, chain);
    return chain;
}

void
appendChainBetweenAncillas(const SurfaceLattice &lattice, ErrorType type,
                           int a, int b, std::vector<int> &out)
{
    const Coord ca = lattice.ancillaCoord(type, a);
    const Coord cb = lattice.ancillaCoord(type, b);
    // Horizontal leg on a's row to b's column, then vertical leg on b's
    // column: the same L shape the mesh decoder's corner pairing traces.
    appendHorizontalLeg(lattice, ca.row, ca.col, cb.col, out);
    appendVerticalLeg(lattice, cb.col, ca.row, cb.row, out);
}

void
appendChainToBoundary(const SurfaceLattice &lattice, ErrorType type,
                      int a, std::vector<int> &out)
{
    const Coord ca = lattice.ancillaCoord(type, a);
    const int n = lattice.gridSize();
    if (type == ErrorType::Z) {
        // Chains terminate west/east.
        const int west = (ca.col + 1) / 2;
        const int east = (n - ca.col) / 2;
        if (west <= east)
            appendHorizontalLeg(lattice, ca.row, ca.col, -1, out);
        else
            appendHorizontalLeg(lattice, ca.row, ca.col, n, out);
    } else {
        const int north = (ca.row + 1) / 2;
        const int south = (n - ca.row) / 2;
        if (north <= south)
            appendVerticalLeg(lattice, ca.col, ca.row, -1, out);
        else
            appendVerticalLeg(lattice, ca.col, ca.row, n, out);
    }
}

} // namespace nisqpp
