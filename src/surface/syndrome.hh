/**
 * @file
 * Error syndromes (paper Section II-C1): the bit string of ancilla
 * measurement outcomes. Ancillas returning +1 ("hot syndromes") mark odd
 * error parity in their data-qubit sets. Extraction is available both as
 * direct stabilizer parity and through the full Fig. 3 stabilizer circuits
 * executed on the Pauli-frame simulator; the two agree by construction and
 * are cross-checked in tests.
 */

#ifndef NISQPP_SURFACE_SYNDROME_HH
#define NISQPP_SURFACE_SYNDROME_HH

#include <vector>

#include "surface/error_state.hh"
#include "surface/lattice.hh"

namespace nisqpp {

/** Syndrome bits for one ancilla family (the one detecting one type). */
class Syndrome
{
  public:
    Syndrome(const SurfaceLattice &lattice, ErrorType type);

    ErrorType type() const { return type_; }
    int size() const { return static_cast<int>(bits_.size()); }

    bool hot(int ancilla_idx) const { return bits_.at(ancilla_idx); }
    void set(int ancilla_idx, bool v) { bits_.at(ancilla_idx) = v; }
    void flip(int ancilla_idx) { bits_.at(ancilla_idx) ^= 1; }
    void clear();

    /** Number of hot (firing) ancillas. */
    int weight() const;

    /** Compact indices of hot ancillas, ascending. */
    std::vector<int> hotList() const;

    bool operator==(const Syndrome &o) const = default;

  private:
    ErrorType type_;
    std::vector<char> bits_;
};

/**
 * Direct syndrome extraction: parity of @p type error bits over each
 * detecting ancilla's data neighbors (perfect measurement).
 */
Syndrome extractSyndrome(const ErrorState &state, ErrorType type);

/**
 * Apply a correction chain expressed as data-qubit flips and verify the
 * syndrome it would clear. Helper shared by decoder tests.
 */
Syndrome syndromeOfFlips(const SurfaceLattice &lattice, ErrorType type,
                         const std::vector<int> &data_flips);

} // namespace nisqpp

#endif // NISQPP_SURFACE_SYNDROME_HH
