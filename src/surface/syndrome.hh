/**
 * @file
 * Error syndromes (paper Section II-C1): the bit string of ancilla
 * measurement outcomes, word-packed. Ancillas returning +1 ("hot
 * syndromes") mark odd error parity in their data-qubit sets. Extraction
 * is available both as direct stabilizer parity — AND + popcount against
 * the lattice's precomputed stabilizer masks — and through the full
 * Fig. 3 stabilizer circuits executed on the Pauli-frame simulator; the
 * two agree by construction and are cross-checked in tests, along with a
 * retained per-neighbor reference implementation.
 */

#ifndef NISQPP_SURFACE_SYNDROME_HH
#define NISQPP_SURFACE_SYNDROME_HH

#include <vector>

#include "common/packed_bits.hh"
#include "surface/error_state.hh"
#include "surface/lattice.hh"

namespace nisqpp {

/** Syndrome bits for one ancilla family (the one detecting one type). */
class Syndrome
{
  public:
    Syndrome(const SurfaceLattice &lattice, ErrorType type);

    ErrorType type() const { return type_; }
    int size() const { return static_cast<int>(bits_.size()); }

    /** Hot-path accessors: unchecked reads/writes, debug-asserted. */
    bool hot(int ancilla_idx) const { return bits_.get(ancilla_idx); }
    void set(int ancilla_idx, bool v) { bits_.set(ancilla_idx, v); }
    void flip(int ancilla_idx) { bits_.flip(ancilla_idx); }
    void clear() { bits_.clear(); }

    /** Number of hot (firing) ancillas. */
    int weight() const { return bits_.popcount(); }

    /** Compact indices of hot ancillas, ascending. */
    std::vector<int> hotList() const;

    /** Append hot ancilla indices to @p out (reuses its capacity). */
    void hotListInto(std::vector<int> &out) const;

    /** Invoke @p f(int ancilla_idx) on every hot ancilla, ascending. */
    template <typename F>
    void
    forEachHot(F &&f) const
    {
        bits_.forEachSet(f);
    }

    /** The word-packed outcome bits. */
    const PackedBits &bits() const { return bits_; }

    /** XOR an ancilla-space mask into the outcome bits (extraction). */
    void xorMask(const PackedBits &mask) { bits_.xorWith(mask); }

    bool operator==(const Syndrome &o) const = default;

  private:
    ErrorType type_;
    PackedBits bits_;
};

/**
 * Direct syndrome extraction: parity of @p type error bits over each
 * detecting ancilla's data neighbors (perfect measurement), computed
 * against the lattice's word-packed stabilizer masks.
 */
Syndrome extractSyndrome(const ErrorState &state, ErrorType type);

/**
 * Allocation-free variant: extract into @p out, which must belong to
 * the same lattice geometry and type (hot loops reuse one Syndrome).
 */
void extractSyndromeInto(const ErrorState &state, ErrorType type,
                         Syndrome &out);

/**
 * Whether any ancilla of the @p type-detecting family fires: equivalent
 * to extractSyndrome(state, type).weight() != 0 without materializing
 * the syndrome (early-exits on the first hot ancilla).
 */
bool syndromeNonzero(const ErrorState &state, ErrorType type);

/**
 * Retained reference implementation: per-ancilla neighbor-loop parity
 * over the error bits, exactly the pre-packed-substrate algorithm. The
 * equivalence property tests pin extractSyndrome() to this bit for bit;
 * it is not for hot paths.
 */
Syndrome extractSyndromeReference(const ErrorState &state, ErrorType type);

/**
 * Apply a correction chain expressed as data-qubit flips and verify the
 * syndrome it would clear. Helper shared by decoder tests.
 */
Syndrome syndromeOfFlips(const SurfaceLattice &lattice, ErrorType type,
                         const std::vector<int> &data_flips);

} // namespace nisqpp

#endif // NISQPP_SURFACE_SYNDROME_HH
