/**
 * @file
 * The stabilizer measurement circuits of paper Fig. 3, executed on the
 * Pauli-frame simulator. An X-stabilizer round applies H on the ancilla,
 * CNOTs from the ancilla onto its data neighbors, H, then measures; a
 * Z-stabilizer round applies CNOTs from the data neighbors into the
 * ancilla and measures. One full cycle measures every ancilla.
 */

#ifndef NISQPP_SURFACE_STABILIZER_CIRCUIT_HH
#define NISQPP_SURFACE_STABILIZER_CIRCUIT_HH

#include <cstddef>
#include <vector>

#include "pauli/pauli_frame.hh"
#include "surface/lattice.hh"
#include "surface/syndrome.hh"

namespace nisqpp {

/**
 * Executable schedule of one full stabilizer measurement cycle on a
 * lattice. Frame qubits are grid sites (data and ancilla alike).
 */
class StabilizerCircuit
{
  public:
    /** Elementary operations of the schedule. */
    enum class OpKind : unsigned char
    {
        H,       ///< Hadamard on `a`
        Cnot,    ///< CNOT with control `a`, target `b`
        Measure, ///< Z measurement of ancilla `a`, result index `b`
        Reset,   ///< ancilla re-initialization of `a`
    };

    struct Op
    {
        OpKind kind;
        int a;
        int b;
    };

    explicit StabilizerCircuit(const SurfaceLattice &lattice);

    const SurfaceLattice &lattice() const { return *lattice_; }

    /** The schedule for the ancilla family detecting @p type errors. */
    const std::vector<Op> &schedule(ErrorType type) const;

    /** Total elementary operations in one full cycle (both families). */
    std::size_t opCount() const;

    /**
     * Inject @p state's data errors into @p frame (frame must span
     * lattice().numSites() qubits).
     */
    void loadErrors(PauliFrame &frame, const ErrorState &state) const;

    /**
     * Run one measurement round of the family detecting @p type on
     * @p frame and return the resulting syndrome. Measurement outcomes
     * are reported as flips relative to the noiseless circuit, exactly
     * the detection events of Section II-C1.
     */
    Syndrome measure(PauliFrame &frame, ErrorType type) const;

    /**
     * Convenience: full extraction through the circuits for @p state.
     * Equivalent to direct parity extraction (verified in tests).
     */
    Syndrome extract(const ErrorState &state, ErrorType type) const;

  private:
    void buildSchedule(ErrorType type);

    const SurfaceLattice *lattice_;
    std::vector<Op> scheduleX_; ///< detects Z errors (X ancillas)
    std::vector<Op> scheduleZ_; ///< detects X errors (Z ancillas)
};

} // namespace nisqpp

#endif // NISQPP_SURFACE_STABILIZER_CIRCUIT_HH
