/**
 * @file
 * The stabilizer measurement circuits of paper Fig. 3, executed on the
 * Pauli-frame simulator. An X-stabilizer round applies H on the ancilla,
 * CNOTs from the ancilla onto its data neighbors, H, then measures; a
 * Z-stabilizer round applies CNOTs from the data neighbors into the
 * ancilla and measures. One full cycle measures every ancilla.
 *
 * Because every ancilla is re-initialized at the start of its block, a
 * full measurement round of one family reduces to a *measurement
 * gather*: each outcome is the parity of one frame plane over the
 * ancilla's data-neighbor sites, followed by clearing the family's
 * ancilla sites. measure() uses precomputed per-ancilla gather masks
 * (AND + popcount per outcome); measureViaSchedule() walks the gate
 * schedule op by op and is retained as the reference implementation the
 * equivalence tests pin measure() against.
 */

#ifndef NISQPP_SURFACE_STABILIZER_CIRCUIT_HH
#define NISQPP_SURFACE_STABILIZER_CIRCUIT_HH

#include <cstddef>
#include <vector>

#include "common/packed_bits.hh"
#include "pauli/pauli_frame.hh"
#include "surface/lattice.hh"
#include "surface/syndrome.hh"

namespace nisqpp {

/**
 * Executable schedule of one full stabilizer measurement cycle on a
 * lattice. Frame qubits are grid sites (data and ancilla alike).
 */
class StabilizerCircuit
{
  public:
    /** Elementary operations of the schedule. */
    enum class OpKind : unsigned char
    {
        H,       ///< Hadamard on `a`
        Cnot,    ///< CNOT with control `a`, target `b`
        Measure, ///< Z measurement of ancilla `a`, result index `b`
        Reset,   ///< ancilla re-initialization of `a`
    };

    struct Op
    {
        OpKind kind;
        int a;
        int b;
    };

    explicit StabilizerCircuit(const SurfaceLattice &lattice);

    const SurfaceLattice &lattice() const { return *lattice_; }

    /** The schedule for the ancilla family detecting @p type errors. */
    const std::vector<Op> &schedule(ErrorType type) const;

    /** Total elementary operations in one full cycle (both families). */
    std::size_t opCount() const;

    /**
     * Inject @p state's data errors into @p frame (frame must span
     * lattice().numSites() qubits).
     */
    void loadErrors(PauliFrame &frame, const ErrorState &state) const;

    /**
     * Run one measurement round of the family detecting @p type on
     * @p frame and return the resulting syndrome. Measurement outcomes
     * are reported as flips relative to the noiseless circuit, exactly
     * the detection events of Section II-C1. Uses the precomputed
     * gather masks; equivalent to measureViaSchedule() for any frame.
     */
    Syndrome measure(PauliFrame &frame, ErrorType type) const;

    /** Allocation-free variant of measure(), filling @p out. */
    void measureInto(PauliFrame &frame, ErrorType type,
                     Syndrome &out) const;

    /**
     * Reference implementation of measure(): execute the gate schedule
     * op by op on the Pauli-frame simulator. Retained for the
     * equivalence property tests and protocol-level debugging.
     */
    Syndrome measureViaSchedule(PauliFrame &frame, ErrorType type) const;

    /**
     * Convenience: full extraction through the circuits for @p state.
     * Equivalent to direct parity extraction (verified in tests).
     */
    Syndrome extract(const ErrorState &state, ErrorType type) const;

    /**
     * Allocation-free extraction into @p out, reusing an internal
     * scratch frame. Not thread-safe across concurrent callers on the
     * same StabilizerCircuit (each simulator owns its own instance).
     */
    void extractInto(const ErrorState &state, ErrorType type,
                     Syndrome &out);

  private:
    void buildSchedule(ErrorType type);

    const SurfaceLattice *lattice_;
    std::vector<Op> scheduleX_; ///< detects Z errors (X ancillas)
    std::vector<Op> scheduleZ_; ///< detects X errors (Z ancillas)

    // Measurement-gather tables, per detecting family: the site mask of
    // each ancilla's data neighbors, the family's ancilla-site mask
    // (cleared after the round) and the site id of each data qubit.
    std::vector<PackedBits> gather_[2];
    PackedBits ancillaSites_[2];
    std::vector<int> dataSite_;

    PauliFrame scratchFrame_; ///< reused by extractInto()

    static int typeSlot(ErrorType type)
    {
        return type == ErrorType::X ? 0 : 1;
    }
};

} // namespace nisqpp

#endif // NISQPP_SURFACE_STABILIZER_CIRCUIT_HH
