#include "surface/syndrome.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nisqpp {

Syndrome::Syndrome(const SurfaceLattice &lattice, ErrorType type)
    : type_(type), bits_(lattice.numAncilla(type), 0)
{
}

void
Syndrome::clear()
{
    std::fill(bits_.begin(), bits_.end(), 0);
}

int
Syndrome::weight() const
{
    int w = 0;
    for (char b : bits_)
        w += b;
    return w;
}

std::vector<int>
Syndrome::hotList() const
{
    std::vector<int> hot;
    for (std::size_t i = 0; i < bits_.size(); ++i)
        if (bits_[i])
            hot.push_back(static_cast<int>(i));
    return hot;
}

Syndrome
extractSyndrome(const ErrorState &state, ErrorType type)
{
    const SurfaceLattice &lat = state.lattice();
    Syndrome syn(lat, type);
    const auto &bits = state.bits(type);
    for (int a = 0; a < lat.numAncilla(type); ++a) {
        char parity = 0;
        for (int d : lat.ancillaDataNeighbors(type, a))
            parity ^= bits[d];
        syn.set(a, parity);
    }
    return syn;
}

Syndrome
syndromeOfFlips(const SurfaceLattice &lattice, ErrorType type,
                const std::vector<int> &data_flips)
{
    ErrorState state(lattice);
    for (int d : data_flips)
        state.flip(type, d);
    return extractSyndrome(state, type);
}

} // namespace nisqpp
