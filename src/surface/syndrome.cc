#include "surface/syndrome.hh"

#include "common/logging.hh"

namespace nisqpp {

Syndrome::Syndrome(const SurfaceLattice &lattice, ErrorType type)
    : type_(type), bits_(lattice.numAncilla(type))
{
}

std::vector<int>
Syndrome::hotList() const
{
    std::vector<int> hot;
    hotListInto(hot);
    return hot;
}

void
Syndrome::hotListInto(std::vector<int> &out) const
{
    out.clear();
    bits_.forEachSet([&out](int a) { out.push_back(a); });
}

Syndrome
extractSyndrome(const ErrorState &state, ErrorType type)
{
    Syndrome syn(state.lattice(), type);
    extractSyndromeInto(state, type, syn);
    return syn;
}

void
extractSyndromeInto(const ErrorState &state, ErrorType type, Syndrome &out)
{
    const SurfaceLattice &lat = state.lattice();
    NISQPP_DCHECK(out.type() == type && out.size() == lat.numAncilla(type),
                  "extractSyndromeInto: syndrome shape mismatch");
    // Transposed sparse extraction: each set error bit XORs its
    // detecting-ancilla incidence mask into the outcome words. For a
    // weight-w error this is O(w) word XORs; identical by linearity to
    // the per-ancilla stabilizer parities (extractSyndromeReference).
    out.clear();
    state.bits(type).forEachSet([&out, &lat, type](int d) {
        out.xorMask(lat.dataIncidenceMask(type, d));
    });
}

bool
syndromeNonzero(const ErrorState &state, ErrorType type)
{
    const SurfaceLattice &lat = state.lattice();
    const PackedBits &bits = state.bits(type);
    // Transposed accumulation on the stack: residual patterns are
    // sparse, so this XORs a handful of words. Falls back to the
    // per-ancilla scan for lattices beyond the fixed buffer (d > 16).
    constexpr std::size_t kMaxWords = 8;
    const std::size_t words =
        (static_cast<std::size_t>(lat.numAncilla(type)) +
         PackedBits::kWordBits - 1) /
        PackedBits::kWordBits;
    if (words <= kMaxWords) {
        std::uint64_t acc[kMaxWords] = {};
        bits.forEachSet([&](int d) {
            const std::uint64_t *mask =
                lat.dataIncidenceMask(type, d).words();
            for (std::size_t w = 0; w < words; ++w)
                acc[w] ^= mask[w];
        });
        for (std::size_t w = 0; w < words; ++w)
            if (acc[w])
                return true;
        return false;
    }
    for (int a = 0; a < lat.numAncilla(type); ++a)
        if (bits.parityAnd(lat.stabilizerMask(type, a)))
            return true;
    return false;
}

Syndrome
extractSyndromeReference(const ErrorState &state, ErrorType type)
{
    const SurfaceLattice &lat = state.lattice();
    Syndrome syn(lat, type);
    for (int a = 0; a < lat.numAncilla(type); ++a) {
        char parity = 0;
        for (int d : lat.ancillaDataNeighbors(type, a))
            parity ^= static_cast<char>(state.has(type, d));
        syn.set(a, parity);
    }
    return syn;
}

Syndrome
syndromeOfFlips(const SurfaceLattice &lattice, ErrorType type,
                const std::vector<int> &data_flips)
{
    ErrorState state(lattice);
    for (int d : data_flips)
        state.flip(type, d);
    return extractSyndrome(state, type);
}

} // namespace nisqpp
