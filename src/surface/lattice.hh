/**
 * @file
 * Geometry of the unrotated planar surface code used throughout the
 * repository (paper Fig. 2).
 *
 * A distance-d lattice lives on a (2d-1) x (2d-1) grid:
 *  - sites with r+c even are data qubits (d^2 + (d-1)^2 of them),
 *  - sites with even r and odd c are X ancillas (detect Z data errors),
 *  - sites with odd r and even c are Z ancillas (detect X data errors).
 *
 * Z-error chains terminate on the west/east lattice boundaries and a
 * horizontal crossing is a logical Z error; X-error chains terminate
 * north/south. At d=9 the grid holds 289 qubits, matching the paper.
 */

#ifndef NISQPP_SURFACE_LATTICE_HH
#define NISQPP_SURFACE_LATTICE_HH

#include <cstddef>
#include <vector>

#include "common/packed_bits.hh"

namespace nisqpp {

/** Role of a grid site. */
enum class SiteRole : unsigned char
{
    Data,     ///< data qubit (r+c even)
    AncillaX, ///< X-stabilizer ancilla (even r, odd c)
    AncillaZ, ///< Z-stabilizer ancilla (odd r, even c)
};

/**
 * The type of *data* error being detected/decoded. ErrorType::Z errors
 * are detected by X ancillas; ErrorType::X errors by Z ancillas. The
 * decoder runs symmetrically for both (paper Section VII).
 */
enum class ErrorType : unsigned char
{
    X,
    Z,
};

/** Grid coordinate. */
struct Coord
{
    int row;
    int col;

    bool operator==(const Coord &o) const = default;
};

/**
 * Immutable geometry of one distance-d planar surface code lattice,
 * with precomputed index maps and adjacency used by every decoder.
 */
class SurfaceLattice
{
  public:
    /** @param distance Code distance d >= 2. */
    explicit SurfaceLattice(int distance);

    int distance() const { return d_; }

    /** Grid side length, 2d - 1. */
    int gridSize() const { return n_; }

    /** Total number of grid sites (data + ancilla qubits). */
    int numSites() const { return n_ * n_; }

    int numData() const { return static_cast<int>(dataSites_.size()); }
    int numXAncilla() const { return static_cast<int>(xSites_.size()); }
    int numZAncilla() const { return static_cast<int>(zSites_.size()); }

    /** Number of ancillas detecting @p type errors (always d(d-1)). */
    int numAncilla(ErrorType type) const;

    /** Role of the site at @p rc. */
    SiteRole role(Coord rc) const;

    bool inBounds(Coord rc) const;

    /** Dense site id (row-major). */
    int siteIndex(Coord rc) const { return rc.row * n_ + rc.col; }
    Coord siteCoord(int site) const { return {site / n_, site % n_}; }

    /** Compact data index of a data site; panics on non-data sites. */
    int dataIndex(Coord rc) const;

    /** Coordinate of compact data index @p idx. */
    Coord dataCoord(int idx) const { return dataSites_.at(idx); }

    /**
     * Compact ancilla index (within the ancilla family that detects
     * @p type errors) of an ancilla site.
     */
    int ancillaIndex(ErrorType type, Coord rc) const;

    /** Coordinate of ancilla @p idx in the family detecting @p type. */
    Coord ancillaCoord(ErrorType type, int idx) const;

    /**
     * Data-qubit neighbors (compact data indices) stabilized by ancilla
     * @p idx of the family detecting @p type; 2..4 entries at boundaries.
     */
    const std::vector<int> &
    ancillaDataNeighbors(ErrorType type, int idx) const;

    /**
     * Ancilla neighbors (compact ancilla indices in the detecting family)
     * of data qubit @p data_idx for error type @p type. One entry means
     * this data qubit borders a valid boundary for that error type.
     */
    const std::vector<int> &
    dataAncillaNeighbors(ErrorType type, int data_idx) const;

    /**
     * Whether data qubit @p data_idx can terminate a @p type error chain
     * on a lattice boundary (i.e. it has a single detecting ancilla).
     */
    bool touchesBoundary(ErrorType type, int data_idx) const;

    /**
     * Graph distance between two ancillas of the same detecting family:
     * the minimal number of data-qubit errors connecting them
     * (half the Manhattan grid distance).
     */
    int ancillaGraphDistance(ErrorType type, int a, int b) const;

    /**
     * Minimal number of data-qubit errors connecting ancilla @p a to the
     * nearest valid boundary for @p type errors.
     */
    int ancillaBoundaryDistance(ErrorType type, int a) const;

    /**
     * Data qubits of the crossing logical operator that *detects* @p type
     * errors: for Z errors the logical X support (west column), for X
     * errors the logical Z support (north row). A residual @p type error
     * with trivial syndrome is a logical error iff its overlap with this
     * support is odd.
     */
    const std::vector<int> &logicalDetectorSupport(ErrorType type) const;

    /**
     * Data-qubit mask (numData() bits) of the stabilizer measured by
     * ancilla @p idx of the family detecting @p type: the word-packed
     * form of ancillaDataNeighbors(). Syndrome extraction is a single
     * AND + popcount-parity against a numData()-bit error plane.
     */
    const PackedBits &stabilizerMask(ErrorType type, int idx) const;

    /** Word-packed form of logicalDetectorSupport(). */
    const PackedBits &logicalSupportMask(ErrorType type) const;

    /**
     * Transposed incidence: the ancilla-index mask (numAncilla(type)
     * bits) of the detecting ancillas of data qubit @p data_idx.
     * Sparse syndrome extraction XORs one of these per set error bit.
     */
    const PackedBits &dataIncidenceMask(ErrorType type,
                                        int data_idx) const;

  private:
    int d_;
    int n_;
    std::vector<Coord> dataSites_;
    std::vector<Coord> xSites_;
    std::vector<Coord> zSites_;
    std::vector<int> dataIndexBySite_;
    std::vector<int> xIndexBySite_;
    std::vector<int> zIndexBySite_;
    // [0] = ErrorType::X family (Z ancillas), [1] = ErrorType::Z family.
    std::vector<std::vector<int>> ancillaData_[2];
    std::vector<std::vector<int>> dataAncilla_[2];
    std::vector<int> logicalSupport_[2];
    std::vector<PackedBits> stabilizerMask_[2];
    std::vector<PackedBits> dataIncidence_[2];
    PackedBits logicalMask_[2];

    static int typeSlot(ErrorType type) { return type == ErrorType::X ? 0 : 1; }
};

} // namespace nisqpp

#endif // NISQPP_SURFACE_LATTICE_HH
