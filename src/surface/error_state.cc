#include "surface/error_state.hh"

#include "common/logging.hh"

namespace nisqpp {

ErrorState::ErrorState(const SurfaceLattice &lattice)
    : lattice_(&lattice),
      x_(lattice.numData()),
      z_(lattice.numData())
{
}

void
ErrorState::clear()
{
    x_.clear();
    z_.clear();
}

void
ErrorState::compose(const ErrorState &other)
{
    require(other.lattice_->distance() == lattice_->distance(),
            "ErrorState::compose: lattice mismatch");
    x_.xorWith(other.x_);
    z_.xorWith(other.z_);
}

Pauli
ErrorState::at(int data_idx) const
{
    return fromXZ(x_.test(data_idx), z_.test(data_idx));
}

} // namespace nisqpp
