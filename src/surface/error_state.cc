#include "surface/error_state.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nisqpp {

ErrorState::ErrorState(const SurfaceLattice &lattice)
    : lattice_(&lattice),
      x_(lattice.numData(), 0),
      z_(lattice.numData(), 0)
{
}

void
ErrorState::clear()
{
    std::fill(x_.begin(), x_.end(), 0);
    std::fill(z_.begin(), z_.end(), 0);
}

void
ErrorState::inject(int data_idx, Pauli p)
{
    require(data_idx >= 0 && data_idx < lattice_->numData(),
            "ErrorState::inject: index out of range");
    x_[data_idx] ^= static_cast<char>(hasX(p));
    z_[data_idx] ^= static_cast<char>(hasZ(p));
}

void
ErrorState::flip(ErrorType type, int data_idx)
{
    require(data_idx >= 0 && data_idx < lattice_->numData(),
            "ErrorState::flip: index out of range");
    mut(type)[data_idx] ^= 1;
}

void
ErrorState::compose(const ErrorState &other)
{
    require(other.lattice_->distance() == lattice_->distance(),
            "ErrorState::compose: lattice mismatch");
    for (std::size_t i = 0; i < x_.size(); ++i) {
        x_[i] ^= other.x_[i];
        z_[i] ^= other.z_[i];
    }
}

Pauli
ErrorState::at(int data_idx) const
{
    return fromXZ(x_.at(data_idx), z_.at(data_idx));
}

bool
ErrorState::has(ErrorType type, int data_idx) const
{
    return bits(type).at(data_idx);
}

int
ErrorState::weight(ErrorType type) const
{
    const auto &v = bits(type);
    int w = 0;
    for (char b : v)
        w += b;
    return w;
}

int
ErrorState::weight() const
{
    int w = 0;
    for (std::size_t i = 0; i < x_.size(); ++i)
        w += (x_[i] | z_[i]);
    return w;
}

const std::vector<char> &
ErrorState::bits(ErrorType type) const
{
    return type == ErrorType::X ? x_ : z_;
}

} // namespace nisqpp
