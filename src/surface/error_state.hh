/**
 * @file
 * Pauli error configuration on the data qubits of one lattice, stored as
 * separate word-packed X and Z bit planes (a Y error sets both).
 * Corrections compose by XOR, matching Pauli group multiplication modulo
 * phase; on PackedBits that is a handful of 64-bit word XORs.
 */

#ifndef NISQPP_SURFACE_ERROR_STATE_HH
#define NISQPP_SURFACE_ERROR_STATE_HH

#include <cstddef>

#include "common/packed_bits.hh"
#include "pauli/pauli.hh"
#include "surface/lattice.hh"

namespace nisqpp {

/** X/Z error bit planes over the data qubits of a lattice. */
class ErrorState
{
  public:
    explicit ErrorState(const SurfaceLattice &lattice);

    const SurfaceLattice &lattice() const { return *lattice_; }

    /** Clear all error bits. */
    void clear();

    /** Multiply @p p onto data qubit @p data_idx (hot path, DCHECKed). */
    void
    inject(int data_idx, Pauli p)
    {
        NISQPP_DCHECK(data_idx >= 0 && data_idx < lattice_->numData(),
                      "ErrorState::inject: index out of range");
        if (hasX(p))
            x_.flip(data_idx);
        if (hasZ(p))
            z_.flip(data_idx);
    }

    /** Flip one component on one data qubit (hot path, DCHECKed). */
    void
    flip(ErrorType type, int data_idx)
    {
        NISQPP_DCHECK(data_idx >= 0 && data_idx < lattice_->numData(),
                      "ErrorState::flip: index out of range");
        mut(type).flip(data_idx);
    }

    /** XOR another error/correction pattern into this one. */
    void compose(const ErrorState &other);

    /** Current Pauli on data qubit @p data_idx (bounds-checked). */
    Pauli at(int data_idx) const;

    /** Whether @p data_idx carries a @p type component (hot, DCHECKed). */
    bool
    has(ErrorType type, int data_idx) const
    {
        return bits(type).get(data_idx);
    }

    /** Number of data qubits carrying a @p type component. */
    int weight(ErrorType type) const { return bits(type).popcount(); }

    /** Number of data qubits carrying any error. */
    int weight() const { return PackedBits::popcountOr(x_, z_); }

    /** The word-packed @p type error plane. */
    const PackedBits &
    bits(ErrorType type) const
    {
        return type == ErrorType::X ? x_ : z_;
    }

  private:
    const SurfaceLattice *lattice_;
    PackedBits x_;
    PackedBits z_;

    PackedBits &mut(ErrorType type)
    {
        return type == ErrorType::X ? x_ : z_;
    }
};

} // namespace nisqpp

#endif // NISQPP_SURFACE_ERROR_STATE_HH
