/**
 * @file
 * Pauli error configuration on the data qubits of one lattice, stored as
 * separate X and Z bit vectors (a Y error sets both). Corrections compose
 * by XOR, matching Pauli group multiplication modulo phase.
 */

#ifndef NISQPP_SURFACE_ERROR_STATE_HH
#define NISQPP_SURFACE_ERROR_STATE_HH

#include <cstddef>
#include <vector>

#include "pauli/pauli.hh"
#include "surface/lattice.hh"

namespace nisqpp {

/** X/Z error bits over the data qubits of a lattice. */
class ErrorState
{
  public:
    explicit ErrorState(const SurfaceLattice &lattice);

    const SurfaceLattice &lattice() const { return *lattice_; }

    /** Clear all error bits. */
    void clear();

    /** Multiply @p p onto data qubit @p data_idx. */
    void inject(int data_idx, Pauli p);

    /** Flip one component on one data qubit (a correction). */
    void flip(ErrorType type, int data_idx);

    /** XOR another error/correction pattern into this one. */
    void compose(const ErrorState &other);

    /** Current Pauli on data qubit @p data_idx. */
    Pauli at(int data_idx) const;

    /** Whether data qubit @p data_idx carries a @p type component. */
    bool has(ErrorType type, int data_idx) const;

    /** Number of data qubits carrying a @p type component. */
    int weight(ErrorType type) const;

    /** Number of data qubits carrying any error. */
    int weight() const;

    const std::vector<char> &bits(ErrorType type) const;

  private:
    const SurfaceLattice *lattice_;
    std::vector<char> x_;
    std::vector<char> z_;

    std::vector<char> &mut(ErrorType type)
    {
        return type == ErrorType::X ? x_ : z_;
    }
};

} // namespace nisqpp

#endif // NISQPP_SURFACE_ERROR_STATE_HH
