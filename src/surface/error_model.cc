#include "surface/error_model.hh"

#include "common/logging.hh"

namespace nisqpp {

DepolarizingModel::DepolarizingModel(double p)
    : p_(p)
{
    require(p >= 0.0 && p <= 1.0, "DepolarizingModel: p out of [0,1]");
}

void
DepolarizingModel::sample(Rng &rng, ErrorState &state) const
{
    const int n = state.lattice().numData();
    for (int q = 0; q < n; ++q) {
        if (!rng.bernoulli(p_))
            continue;
        switch (rng.uniformInt(3)) {
          case 0: state.inject(q, Pauli::X); break;
          case 1: state.inject(q, Pauli::Y); break;
          default: state.inject(q, Pauli::Z); break;
        }
    }
}

DephasingModel::DephasingModel(double p)
    : p_(p)
{
    require(p >= 0.0 && p <= 1.0, "DephasingModel: p out of [0,1]");
}

void
DephasingModel::sample(Rng &rng, ErrorState &state) const
{
    const int n = state.lattice().numData();
    for (int q = 0; q < n; ++q)
        if (rng.bernoulli(p_))
            state.inject(q, Pauli::Z);
}

} // namespace nisqpp
