#include "surface/logical.hh"

namespace nisqpp {

bool
crossingParity(const ErrorState &residual, ErrorType type)
{
    const SurfaceLattice &lat = residual.lattice();
    const auto &bits = residual.bits(type);
    char parity = 0;
    for (int d : lat.logicalDetectorSupport(type))
        parity ^= bits[d];
    return parity;
}

FailureReport
classifyResidual(const ErrorState &residual, ErrorType type)
{
    FailureReport report;
    report.syndromeNonzero =
        extractSyndrome(residual, type).weight() != 0;
    report.logicalFlip = crossingParity(residual, type);
    return report;
}

} // namespace nisqpp
