#include "surface/logical.hh"

namespace nisqpp {

bool
crossingParity(const ErrorState &residual, ErrorType type)
{
    const SurfaceLattice &lat = residual.lattice();
    return residual.bits(type).parityAnd(lat.logicalSupportMask(type));
}

FailureReport
classifyResidual(const ErrorState &residual, ErrorType type)
{
    FailureReport report;
    report.syndromeNonzero = syndromeNonzero(residual, type);
    report.logicalFlip = crossingParity(residual, type);
    return report;
}

} // namespace nisqpp
