#include "surface/syndrome_window.hh"

#include "common/logging.hh"

namespace nisqpp {

SyndromeWindow::SyndromeWindow(const SurfaceLattice &lattice,
                               ErrorType type, int rounds)
    : lattice_(&lattice), type_(type), rounds_(rounds),
      numAncilla_(lattice.numAncilla(type)),
      baseline_(static_cast<std::size_t>(numAncilla_))
{
    require(rounds >= 1, "SyndromeWindow: rounds must be >= 1");
    measured_.reserve(rounds);
    events_.reserve(rounds);
    for (int t = 0; t < rounds; ++t) {
        measured_.emplace_back(static_cast<std::size_t>(numAncilla_));
        events_.emplace_back(static_cast<std::size_t>(numAncilla_));
    }
}

void
SyndromeWindow::reset()
{
    recorded_ = 0;
    baseline_.clear();
    for (int t = 0; t < rounds_; ++t) {
        measured_[t].clear();
        events_[t].clear();
    }
}

void
SyndromeWindow::setBaseline(const Syndrome &reference)
{
    require(recorded_ == 0,
            "SyndromeWindow: baseline must precede the first round");
    require(reference.type() == type_ &&
                static_cast<int>(reference.bits().size()) == numAncilla_,
            "SyndromeWindow: baseline family mismatch");
    baseline_ = reference.bits();
}

void
SyndromeWindow::recordRound(int t, const Syndrome &measured)
{
    require(t == recorded_ && t < rounds_,
            "SyndromeWindow: rounds must be recorded 0..rounds-1 in "
            "order");
    require(measured.type() == type_ &&
                static_cast<int>(measured.bits().size()) == numAncilla_,
            "SyndromeWindow: round family mismatch");
    measured_[t] = measured.bits();
    events_[t] = measured.bits();
    events_[t].xorWith(t == 0 ? baseline_ : measured_[t - 1]);
    ++recorded_;
}

const PackedBits &
SyndromeWindow::measuredBits(int t) const
{
    require(t >= 0 && t < recorded_,
            "SyndromeWindow: round not recorded");
    return measured_[t];
}

const PackedBits &
SyndromeWindow::eventBits(int t) const
{
    require(t >= 0 && t < recorded_,
            "SyndromeWindow: round not recorded");
    return events_[t];
}

int
SyndromeWindow::eventWeight() const
{
    int weight = 0;
    for (int t = 0; t < recorded_; ++t)
        weight += events_[t].popcount();
    return weight;
}

void
SyndromeWindow::majorityVote(Syndrome &out) const
{
    require(out.type() == type_ && out.size() == numAncilla_,
            "SyndromeWindow: majority output family mismatch");
    require(recorded_ > 0, "SyndromeWindow: no rounds recorded");
    out.clear();
    for (int a = 0; a < numAncilla_; ++a) {
        int hot = 0;
        for (int t = 0; t < recorded_; ++t)
            hot += measured_[t].get(a);
        if (2 * hot > recorded_)
            out.set(a, true);
    }
}

} // namespace nisqpp
