#include "surface/lattice.hh"

#include <array>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace nisqpp {

SurfaceLattice::SurfaceLattice(int distance)
    : d_(distance), n_(2 * distance - 1)
{
    require(distance >= 2, "SurfaceLattice: distance must be >= 2");

    dataIndexBySite_.assign(numSites(), -1);
    xIndexBySite_.assign(numSites(), -1);
    zIndexBySite_.assign(numSites(), -1);

    for (int r = 0; r < n_; ++r) {
        for (int c = 0; c < n_; ++c) {
            const Coord rc{r, c};
            const int site = siteIndex(rc);
            if ((r + c) % 2 == 0) {
                dataIndexBySite_[site] = static_cast<int>(dataSites_.size());
                dataSites_.push_back(rc);
            } else if (r % 2 == 0) {
                xIndexBySite_[site] = static_cast<int>(xSites_.size());
                xSites_.push_back(rc);
            } else {
                zIndexBySite_[site] = static_cast<int>(zSites_.size());
                zSites_.push_back(rc);
            }
        }
    }

    static const std::array<Coord, 4> kOffsets =
        {{{-1, 0}, {0, 1}, {1, 0}, {0, -1}}};

    for (const ErrorType type : {ErrorType::X, ErrorType::Z}) {
        const int slot = typeSlot(type);
        const auto &sites = (type == ErrorType::Z) ? xSites_ : zSites_;
        ancillaData_[slot].resize(sites.size());
        dataAncilla_[slot].resize(dataSites_.size());
        for (std::size_t a = 0; a < sites.size(); ++a) {
            for (const auto &off : kOffsets) {
                const Coord nb{sites[a].row + off.row,
                               sites[a].col + off.col};
                if (!inBounds(nb))
                    continue;
                const int di = dataIndexBySite_[siteIndex(nb)];
                require(di >= 0, "ancilla neighbor is not a data qubit");
                ancillaData_[slot][a].push_back(di);
                dataAncilla_[slot][di].push_back(static_cast<int>(a));
            }
        }
    }

    // Crossing logical operators. Logical X runs north-south on the west
    // column (detects Z errors); logical Z runs west-east on the north
    // row (detects X errors).
    for (int r = 0; r < n_; r += 2)
        logicalSupport_[typeSlot(ErrorType::Z)]
            .push_back(dataIndexBySite_[siteIndex({r, 0})]);
    for (int c = 0; c < n_; c += 2)
        logicalSupport_[typeSlot(ErrorType::X)]
            .push_back(dataIndexBySite_[siteIndex({0, c})]);

    // Word-packed views of the adjacency and logical supports, so the
    // per-trial hot paths (syndrome extraction, crossing parity) run as
    // AND + popcount over a few words instead of per-neighbor loops.
    for (int slot = 0; slot < 2; ++slot) {
        stabilizerMask_[slot].resize(ancillaData_[slot].size());
        for (std::size_t a = 0; a < ancillaData_[slot].size(); ++a) {
            PackedBits &mask = stabilizerMask_[slot][a];
            mask.resize(dataSites_.size());
            for (int di : ancillaData_[slot][a])
                mask.set(di, true);
        }
        dataIncidence_[slot].resize(dataSites_.size());
        for (std::size_t di = 0; di < dataSites_.size(); ++di) {
            PackedBits &mask = dataIncidence_[slot][di];
            mask.resize(ancillaData_[slot].size());
            for (int a : dataAncilla_[slot][di])
                mask.set(a, true);
        }
        logicalMask_[slot].resize(dataSites_.size());
        for (int di : logicalSupport_[slot])
            logicalMask_[slot].set(di, true);
    }
}

int
SurfaceLattice::numAncilla(ErrorType type) const
{
    return type == ErrorType::Z ? numXAncilla() : numZAncilla();
}

SiteRole
SurfaceLattice::role(Coord rc) const
{
    require(inBounds(rc), "role: coordinate out of bounds");
    if ((rc.row + rc.col) % 2 == 0)
        return SiteRole::Data;
    return rc.row % 2 == 0 ? SiteRole::AncillaX : SiteRole::AncillaZ;
}

bool
SurfaceLattice::inBounds(Coord rc) const
{
    return rc.row >= 0 && rc.row < n_ && rc.col >= 0 && rc.col < n_;
}

int
SurfaceLattice::dataIndex(Coord rc) const
{
    require(inBounds(rc), "dataIndex: out of bounds");
    const int idx = dataIndexBySite_[siteIndex(rc)];
    require(idx >= 0, "dataIndex: site is not a data qubit");
    return idx;
}

int
SurfaceLattice::ancillaIndex(ErrorType type, Coord rc) const
{
    require(inBounds(rc), "ancillaIndex: out of bounds");
    const auto &map = (type == ErrorType::Z) ? xIndexBySite_ : zIndexBySite_;
    const int idx = map[siteIndex(rc)];
    require(idx >= 0, "ancillaIndex: site is not an ancilla of this family");
    return idx;
}

Coord
SurfaceLattice::ancillaCoord(ErrorType type, int idx) const
{
    const auto &sites = (type == ErrorType::Z) ? xSites_ : zSites_;
    return sites.at(idx);
}

const std::vector<int> &
SurfaceLattice::ancillaDataNeighbors(ErrorType type, int idx) const
{
    return ancillaData_[typeSlot(type)].at(idx);
}

const std::vector<int> &
SurfaceLattice::dataAncillaNeighbors(ErrorType type, int data_idx) const
{
    return dataAncilla_[typeSlot(type)].at(data_idx);
}

bool
SurfaceLattice::touchesBoundary(ErrorType type, int data_idx) const
{
    return dataAncillaNeighbors(type, data_idx).size() < 2;
}

int
SurfaceLattice::ancillaGraphDistance(ErrorType type, int a, int b) const
{
    const Coord ca = ancillaCoord(type, a);
    const Coord cb = ancillaCoord(type, b);
    const int manhattan =
        std::abs(ca.row - cb.row) + std::abs(ca.col - cb.col);
    // Ancillas of one family sit on a sublattice of even Manhattan
    // separation; each data-qubit error covers two grid hops.
    return manhattan / 2;
}

int
SurfaceLattice::ancillaBoundaryDistance(ErrorType type, int a) const
{
    const Coord ca = ancillaCoord(type, a);
    if (type == ErrorType::Z) {
        // X ancillas at odd columns; chains terminate west/east.
        const int west = (ca.col + 1) / 2;
        const int east = (n_ - ca.col) / 2;
        return std::min(west, east);
    }
    const int north = (ca.row + 1) / 2;
    const int south = (n_ - ca.row) / 2;
    return std::min(north, south);
}

const std::vector<int> &
SurfaceLattice::logicalDetectorSupport(ErrorType type) const
{
    return logicalSupport_[typeSlot(type)];
}

const PackedBits &
SurfaceLattice::stabilizerMask(ErrorType type, int idx) const
{
    NISQPP_DCHECK(
        idx >= 0 &&
            idx < static_cast<int>(stabilizerMask_[typeSlot(type)].size()),
        "stabilizerMask: ancilla index out of range");
    return stabilizerMask_[typeSlot(type)][idx];
}

const PackedBits &
SurfaceLattice::logicalSupportMask(ErrorType type) const
{
    return logicalMask_[typeSlot(type)];
}

const PackedBits &
SurfaceLattice::dataIncidenceMask(ErrorType type, int data_idx) const
{
    NISQPP_DCHECK(
        data_idx >= 0 &&
            data_idx <
                static_cast<int>(dataIncidence_[typeSlot(type)].size()),
        "dataIncidenceMask: data index out of range");
    return dataIncidence_[typeSlot(type)][data_idx];
}

} // namespace nisqpp
