/**
 * @file
 * Logical-failure classification (paper Section II-C2): after applying a
 * decoder's correction, the residual error either (a) still produces a
 * nonzero syndrome (the decoder failed to return to the code space — only
 * possible for the degraded design variants), or (b) is a product of
 * stabilizers times possibly a crossing logical operator. Case (b) with a
 * crossing chain is an undetectable logical error.
 */

#ifndef NISQPP_SURFACE_LOGICAL_HH
#define NISQPP_SURFACE_LOGICAL_HH

#include "surface/error_state.hh"
#include "surface/lattice.hh"
#include "surface/syndrome.hh"

namespace nisqpp {

/** Outcome of classifying the residual (error * correction) pattern. */
struct FailureReport
{
    bool syndromeNonzero; ///< residual still flips some ancilla
    bool logicalFlip;     ///< residual anticommutes with the crossed logical

    /** A round counts as failed under either condition. */
    bool failed() const { return syndromeNonzero || logicalFlip; }
};

/**
 * Classify a residual @p type error pattern.
 *
 * @param residual The post-correction error state.
 * @param type     Which error component to classify.
 */
FailureReport classifyResidual(const ErrorState &residual, ErrorType type);

/**
 * Parity of the overlap between the residual @p type error and the
 * crossing logical operator that detects it (odd parity = logical flip).
 * Only meaningful when the residual syndrome is zero; exposed separately
 * for tests.
 */
bool crossingParity(const ErrorState &residual, ErrorType type);

} // namespace nisqpp

#endif // NISQPP_SURFACE_LOGICAL_HH
