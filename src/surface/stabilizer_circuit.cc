#include "surface/stabilizer_circuit.hh"

#include "common/logging.hh"

namespace nisqpp {

StabilizerCircuit::StabilizerCircuit(const SurfaceLattice &lattice)
    : lattice_(&lattice),
      scratchFrame_(static_cast<std::size_t>(lattice.numSites()))
{
    buildSchedule(ErrorType::Z);
    buildSchedule(ErrorType::X);

    const std::size_t sites =
        static_cast<std::size_t>(lattice.numSites());
    dataSite_.reserve(lattice.numData());
    for (int d = 0; d < lattice.numData(); ++d)
        dataSite_.push_back(lattice.siteIndex(lattice.dataCoord(d)));

    for (const ErrorType type : {ErrorType::X, ErrorType::Z}) {
        const int slot = typeSlot(type);
        gather_[slot].resize(lattice.numAncilla(type));
        ancillaSites_[slot].resize(sites);
        for (int a = 0; a < lattice.numAncilla(type); ++a) {
            PackedBits &mask = gather_[slot][a];
            mask.resize(sites);
            for (int d : lattice.ancillaDataNeighbors(type, a))
                mask.set(dataSite_[d], true);
            ancillaSites_[slot].set(
                lattice.siteIndex(lattice.ancillaCoord(type, a)), true);
        }
    }
}

void
StabilizerCircuit::buildSchedule(ErrorType type)
{
    const SurfaceLattice &lat = *lattice_;
    auto &sched = (type == ErrorType::Z) ? scheduleX_ : scheduleZ_;
    sched.clear();

    for (int a = 0; a < lat.numAncilla(type); ++a) {
        const int anc_site = lat.siteIndex(lat.ancillaCoord(type, a));
        sched.push_back({OpKind::Reset, anc_site, 0});
        if (type == ErrorType::Z) {
            // X stabilizer: |0> -H-> |+>, CNOT(ancilla -> data)*, H, MZ.
            sched.push_back({OpKind::H, anc_site, 0});
            for (int d : lat.ancillaDataNeighbors(type, a)) {
                const int data_site = lat.siteIndex(lat.dataCoord(d));
                sched.push_back({OpKind::Cnot, anc_site, data_site});
            }
            sched.push_back({OpKind::H, anc_site, 0});
        } else {
            // Z stabilizer: CNOT(data -> ancilla)*, MZ.
            for (int d : lat.ancillaDataNeighbors(type, a)) {
                const int data_site = lat.siteIndex(lat.dataCoord(d));
                sched.push_back({OpKind::Cnot, data_site, anc_site});
            }
        }
        sched.push_back({OpKind::Measure, anc_site, a});
    }
}

const std::vector<StabilizerCircuit::Op> &
StabilizerCircuit::schedule(ErrorType type) const
{
    return type == ErrorType::Z ? scheduleX_ : scheduleZ_;
}

std::size_t
StabilizerCircuit::opCount() const
{
    return scheduleX_.size() + scheduleZ_.size();
}

void
StabilizerCircuit::loadErrors(PauliFrame &frame, const ErrorState &state)
    const
{
    const SurfaceLattice &lat = *lattice_;
    require(frame.numQubits() ==
                static_cast<std::size_t>(lat.numSites()),
            "loadErrors: frame size mismatch");
    state.bits(ErrorType::X).forEachSet([&](int d) {
        frame.inject(dataSite_[d], Pauli::X);
    });
    state.bits(ErrorType::Z).forEachSet([&](int d) {
        frame.inject(dataSite_[d], Pauli::Z);
    });
}

Syndrome
StabilizerCircuit::measure(PauliFrame &frame, ErrorType type) const
{
    Syndrome syn(*lattice_, type);
    measureInto(frame, type, syn);
    return syn;
}

void
StabilizerCircuit::measureInto(PauliFrame &frame, ErrorType type,
                               Syndrome &out) const
{
    // Each ancilla block starts with a Reset, so outcomes depend only
    // on the data sites: an X-stabilizer block accumulates its data
    // neighbors' Z components onto the ancilla (H-conjugated CNOTs), a
    // Z-stabilizer block their X components — one masked parity each.
    // The block then measures, leaving the ancilla frame cleared; data
    // frames are never modified (the ancilla's own components are zero
    // when the copy gates run). measureViaSchedule() is the op-by-op
    // reference for this reduction.
    NISQPP_DCHECK(out.type() == type &&
                      out.size() == lattice_->numAncilla(type),
                  "measureInto: syndrome shape mismatch");
    require(frame.numQubits() ==
                static_cast<std::size_t>(lattice_->numSites()),
            "measure: frame size mismatch");
    const int slot = typeSlot(type);
    const PackedBits &plane = (type == ErrorType::Z)
                                  ? frame.zPlane()
                                  : frame.xPlane();
    const int na = lattice_->numAncilla(type);
    for (int a = 0; a < na; ++a)
        out.set(a, plane.parityAnd(gather_[slot][a]));
    frame.clearMasked(ancillaSites_[slot]);
}

Syndrome
StabilizerCircuit::measureViaSchedule(PauliFrame &frame,
                                      ErrorType type) const
{
    Syndrome syn(*lattice_, type);
    for (const Op &op : schedule(type)) {
        switch (op.kind) {
          case OpKind::Reset:
            frame.reset(op.a);
            break;
          case OpKind::H:
            frame.applyH(op.a);
            break;
          case OpKind::Cnot:
            frame.applyCnot(op.a, op.b);
            break;
          case OpKind::Measure:
            syn.set(op.b, frame.measureZ(op.a));
            break;
        }
    }
    return syn;
}

Syndrome
StabilizerCircuit::extract(const ErrorState &state, ErrorType type) const
{
    PauliFrame frame(lattice_->numSites());
    loadErrors(frame, state);
    return measure(frame, type);
}

void
StabilizerCircuit::extractInto(const ErrorState &state, ErrorType type,
                               Syndrome &out)
{
    scratchFrame_.clear();
    loadErrors(scratchFrame_, state);
    measureInto(scratchFrame_, type, out);
}

} // namespace nisqpp
