#include "surface/stabilizer_circuit.hh"

#include "common/logging.hh"

namespace nisqpp {

StabilizerCircuit::StabilizerCircuit(const SurfaceLattice &lattice)
    : lattice_(&lattice)
{
    buildSchedule(ErrorType::Z);
    buildSchedule(ErrorType::X);
}

void
StabilizerCircuit::buildSchedule(ErrorType type)
{
    const SurfaceLattice &lat = *lattice_;
    auto &sched = (type == ErrorType::Z) ? scheduleX_ : scheduleZ_;
    sched.clear();

    for (int a = 0; a < lat.numAncilla(type); ++a) {
        const int anc_site = lat.siteIndex(lat.ancillaCoord(type, a));
        sched.push_back({OpKind::Reset, anc_site, 0});
        if (type == ErrorType::Z) {
            // X stabilizer: |0> -H-> |+>, CNOT(ancilla -> data)*, H, MZ.
            sched.push_back({OpKind::H, anc_site, 0});
            for (int d : lat.ancillaDataNeighbors(type, a)) {
                const int data_site = lat.siteIndex(lat.dataCoord(d));
                sched.push_back({OpKind::Cnot, anc_site, data_site});
            }
            sched.push_back({OpKind::H, anc_site, 0});
        } else {
            // Z stabilizer: CNOT(data -> ancilla)*, MZ.
            for (int d : lat.ancillaDataNeighbors(type, a)) {
                const int data_site = lat.siteIndex(lat.dataCoord(d));
                sched.push_back({OpKind::Cnot, data_site, anc_site});
            }
        }
        sched.push_back({OpKind::Measure, anc_site, a});
    }
}

const std::vector<StabilizerCircuit::Op> &
StabilizerCircuit::schedule(ErrorType type) const
{
    return type == ErrorType::Z ? scheduleX_ : scheduleZ_;
}

std::size_t
StabilizerCircuit::opCount() const
{
    return scheduleX_.size() + scheduleZ_.size();
}

void
StabilizerCircuit::loadErrors(PauliFrame &frame, const ErrorState &state)
    const
{
    const SurfaceLattice &lat = *lattice_;
    require(frame.numQubits() ==
                static_cast<std::size_t>(lat.numSites()),
            "loadErrors: frame size mismatch");
    for (int d = 0; d < lat.numData(); ++d) {
        const Pauli p = state.at(d);
        if (p != Pauli::I)
            frame.inject(lat.siteIndex(lat.dataCoord(d)), p);
    }
}

Syndrome
StabilizerCircuit::measure(PauliFrame &frame, ErrorType type) const
{
    Syndrome syn(*lattice_, type);
    for (const Op &op : schedule(type)) {
        switch (op.kind) {
          case OpKind::Reset:
            frame.reset(op.a);
            break;
          case OpKind::H:
            frame.applyH(op.a);
            break;
          case OpKind::Cnot:
            frame.applyCnot(op.a, op.b);
            break;
          case OpKind::Measure:
            syn.set(op.b, frame.measureZ(op.a));
            break;
        }
    }
    return syn;
}

Syndrome
StabilizerCircuit::extract(const ErrorState &state, ErrorType type) const
{
    PauliFrame frame(lattice_->numSites());
    loadErrors(frame, state);
    return measure(frame, type);
}

} // namespace nisqpp
