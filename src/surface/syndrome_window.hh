/**
 * @file
 * Multi-round syndrome window for faulty-measurement decoding. With
 * readout noise of rate q a single measured round no longer determines
 * the data error: decoders must consume a spacetime window of
 * consecutive rounds and treat *detection events* — the XOR of
 * consecutive measured rounds, word-packed on PackedBits — as the
 * matchable defects (a data error fires an event that persists until
 * re-measured; a measurement flip fires two events in consecutive
 * rounds at the same ancilla). The window protocol used throughout the
 * repository is w noisy rounds followed by one perfect commit round
 * (recordRound(w, ...) extracted without flips), so every event chain
 * terminates inside the window.
 */

#ifndef NISQPP_SURFACE_SYNDROME_WINDOW_HH
#define NISQPP_SURFACE_SYNDROME_WINDOW_HH

#include <vector>

#include "common/packed_bits.hh"
#include "surface/lattice.hh"
#include "surface/syndrome.hh"

namespace nisqpp {

/**
 * Word-packed measurement rounds + derived detection events of one
 * decode window for one ancilla family. Reusable: reset() clears the
 * rounds without shedding buffer capacity.
 */
class SyndromeWindow
{
  public:
    /**
     * @param lattice Lattice under test (shared, read-only).
     * @param type    Error family whose measurements are windowed.
     * @param rounds  Number of measurement rounds in the window
     *                (noisy rounds + the final commit round).
     */
    SyndromeWindow(const SurfaceLattice &lattice, ErrorType type,
                   int rounds);

    const SurfaceLattice &lattice() const { return *lattice_; }
    ErrorType type() const { return type_; }
    int rounds() const { return rounds_; }
    int numAncilla() const { return numAncilla_; }

    /** Clear every round and the baseline, keeping capacity. */
    void reset();

    /**
     * Reference frame of round 0's detection events: the perfect
     * syndrome of the state carried into this window (all-zero after
     * reset, matching a freshly cleared state).
     */
    void setBaseline(const Syndrome &reference);

    /**
     * Record measured round @p t (0-based, ascending). Detection
     * events of round t are derived immediately as measured[t] XOR
     * measured[t-1] (XOR the baseline for t = 0).
     */
    void recordRound(int t, const Syndrome &measured);

    /** Rounds recorded so far (recordRound must fill 0..rounds-1). */
    int recorded() const { return recorded_; }

    /** Measured outcome bits of round @p t. */
    const PackedBits &measuredBits(int t) const;

    /** Detection event bits of round @p t. */
    const PackedBits &eventBits(int t) const;

    bool event(int t, int a) const { return eventBits(t).get(a); }

    /** Total number of detection events in the window. */
    int eventWeight() const;

    /**
     * Invoke @p f(int t, int a) for every detection event, ascending
     * in t then a.
     */
    template <typename F>
    void
    forEachEvent(F &&f) const
    {
        for (int t = 0; t < recorded_; ++t)
            events_[t].forEachSet([&f, t](int a) { f(t, a); });
    }

    /**
     * Round-majority vote: set bit a of @p out when ancilla a measured
     * hot in more than half of the recorded rounds (ties vote cold).
     * The fallback reduction for decoders without a spacetime path.
     */
    void majorityVote(Syndrome &out) const;

  private:
    const SurfaceLattice *lattice_;
    ErrorType type_;
    int rounds_;
    int numAncilla_;
    int recorded_ = 0;
    PackedBits baseline_;
    std::vector<PackedBits> measured_;
    std::vector<PackedBits> events_;
};

} // namespace nisqpp

#endif // NISQPP_SURFACE_SYNDROME_WINDOW_HH
