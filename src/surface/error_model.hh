/**
 * @file
 * Stochastic error channels used by the Monte Carlo environment
 * (paper Section VII): the depolarizing channel (X, Y, Z each with
 * probability p/3) and the pure dephasing channel (Z with probability p),
 * sampled i.i.d. per data qubit each cycle.
 */

#ifndef NISQPP_SURFACE_ERROR_MODEL_HH
#define NISQPP_SURFACE_ERROR_MODEL_HH

#include <memory>
#include <string>

#include "common/rng.hh"
#include "surface/error_state.hh"

namespace nisqpp {

/** Interface for per-cycle data-qubit error injection. */
class ErrorModel
{
  public:
    virtual ~ErrorModel() = default;

    /** Multiply freshly sampled errors into @p state. */
    virtual void sample(Rng &rng, ErrorState &state) const = 0;

    /** Physical error rate parameter p. */
    virtual double physicalRate() const = 0;

    virtual std::string name() const = 0;
};

/** Pauli X, Y, Z each with probability p/3 per data qubit. */
class DepolarizingModel : public ErrorModel
{
  public:
    explicit DepolarizingModel(double p);

    void sample(Rng &rng, ErrorState &state) const override;
    double physicalRate() const override { return p_; }
    std::string name() const override { return "depolarizing"; }

  private:
    double p_;
};

/** Pauli Z with probability p per data qubit (paper's headline model). */
class DephasingModel : public ErrorModel
{
  public:
    explicit DephasingModel(double p);

    void sample(Rng &rng, ErrorState &state) const override;
    double physicalRate() const override { return p_; }
    std::string name() const override { return "dephasing"; }

  private:
    double p_;
};

} // namespace nisqpp

#endif // NISQPP_SURFACE_ERROR_MODEL_HH
