/**
 * @file
 * Compatibility shim over the pluggable noise subsystem: the abstract
 * `ErrorModel` interface now lives in `noise/error_model.hh` and the
 * concrete channels in `noise/channels.hh`. The two legacy model names
 * remain constructible here as perfect-measurement (q = 0) composites
 * whose per-qubit draw sequences are bit-identical to the original
 * closed classes, so every existing scenario golden is unchanged.
 */

#ifndef NISQPP_SURFACE_ERROR_MODEL_HH
#define NISQPP_SURFACE_ERROR_MODEL_HH

#include "noise/noise_model.hh"

namespace nisqpp {

/** Pauli X, Y, Z each with probability p/3 per data qubit. */
class DepolarizingModel : public NoiseModel
{
  public:
    explicit DepolarizingModel(double p)
        : NoiseModel(NoiseModel::depolarizing(p))
    {}
};

/** Pauli Z with probability p per data qubit (paper's headline model). */
class DephasingModel : public NoiseModel
{
  public:
    explicit DephasingModel(double p)
        : NoiseModel(NoiseModel::dephasing(p))
    {}
};

} // namespace nisqpp

#endif // NISQPP_SURFACE_ERROR_MODEL_HH
