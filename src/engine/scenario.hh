/**
 * @file
 * Named experiment scenarios: every paper figure/table the repository
 * reproduces is registered here by name, runnable through the parallel
 * engine with uniform flags. The nisqpp_run CLI dispatches any scenario
 * (`--scenario fig10_final --threads 4 --format csv`); each bench
 * binary is a thin wrapper pinned to one scenario name.
 */

#ifndef NISQPP_ENGINE_SCENARIO_HH
#define NISQPP_ENGINE_SCENARIO_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "engine/sweep.hh"
#include "faults/fault_plan.hh"
#include "obs/metrics.hh"

namespace nisqpp {

/** Rendering mode for scenario output. */
enum class OutputFormat
{
    Table, ///< aligned tables with narrative notes (default)
    Csv,   ///< tables as CSV, notes suppressed
    Json,  ///< one JSON document with every table, notes suppressed
};

/** Parsed command-line options shared by nisqpp_run and the benches. */
struct RunOptions
{
    int threads = 1;
    std::size_t shardTrials = 512;
    double trialsScale = 1.0;
    std::uint64_t seed = 0;
    bool seedSet = false; ///< --seed given: overrides scenario defaults
    OutputFormat format = OutputFormat::Table;
    /**
     * Rounds per decodeBatch group (--batch, NISQPP_BATCH): 1 decodes
     * scalar, larger values drive the mesh decoder's lane-packed batch
     * substrate. Aggregates are byte-identical either way.
     */
    std::size_t batchLanes = 1;
    /** --metrics-out FILE: write the machine-readable run report. */
    std::string metricsOut;
    /** --trace-out FILE: write a chrome://tracing event dump. */
    std::string traceOut;
    /** --checkpoint FILE: periodically persist the sweep ledger. */
    std::string checkpointPath;
    /** --resume FILE: restore a ledger (and keep checkpointing to it
     *  unless --checkpoint names a different file). */
    std::string resumePath;
    /** --checkpoint-interval N / NISQPP_CKPT_INTERVAL: shard
     *  completions between periodic writes. */
    std::size_t checkpointInterval = ckpt::kDefaultCheckpointInterval;
    bool checkpointIntervalSet = false; ///< flag given explicitly
    /**
     * --escalate-threshold X in [0, 1]: pin the tiered_decode
     * scenario to one confidence threshold instead of its default
     * sweep. Negative = not given.
     */
    double escalateThreshold = -1.0;
    /**
     * --fault-drop/--fault-corrupt/--fault-dup/--fault-delay/
     * --fault-stall/--fault-fail/--fault-seed (or the
     * NISQPP_STREAM_FAULTS env twin): pin the fault_sweep scenario to
     * one fault operating point instead of its default rate grid.
     * faultGiven marks that any of them was set.
     */
    faults::FaultSpec faultSpec;
    bool faultGiven = false;
    /**
     * --deadline-ns X > 0: pin fault_sweep's deadline policy to this
     * per-round decode budget. 0 = not given (scenario default).
     */
    double deadlineNs = 0.0;
};

/**
 * Everything a scenario needs: the engine, scaling/seed policy and the
 * format-aware output channel. Tables go through table() so one
 * scenario body serves all three formats.
 */
class ScenarioContext
{
  public:
    ScenarioContext(const RunOptions &options, std::ostream &os);

    /**
     * The sharded engine, constructed (with its thread pool) on first
     * use so analytic scenarios never spawn workers.
     */
    Engine &engine();
    OutputFormat format() const { return options_.format; }

    /** Scenario's master seed: --seed when given, else @p fallback. */
    std::uint64_t seed(std::uint64_t fallback) const;

    /** Apply --trials-scale and then NISQPP_TRIALS to a stop rule. */
    StopRule scaled(const StopRule &rule) const;

    /** --escalate-threshold when given, else negative. */
    double escalateThreshold() const
    {
        return options_.escalateThreshold;
    }

    /** --fault-* (or NISQPP_STREAM_FAULTS) spec when given, else null. */
    const faults::FaultSpec *
    faultOverride() const
    {
        return options_.faultGiven ? &options_.faultSpec : nullptr;
    }

    /** --deadline-ns when given, else 0 (use scenario defaults). */
    double deadlineNs() const { return options_.deadlineNs; }

    /** Narrative line; printed in table mode only. */
    void note(const std::string &line);

    /** Emit one titled table in the selected format. */
    void table(const std::string &id, const TablePrinter &table);

    /** Close the output document (JSON footer); called by the runner. */
    void finish();

    /**
     * Scenario-local metric sink: scenario bodies fold deterministic
     * counters here (streaming cells, analytic scenarios) alongside
     * whatever the engine accumulates through its sharded runs.
     */
    obs::MetricSet &metrics() { return metrics_; }

    /**
     * Full run-report metric set: the scenario-local sink merged with
     * the engine's deterministic totals, plus the masked sched.* pool
     * counters, ckpt.* checkpoint bookkeeping, and timing.* span
     * summaries (when collected). The non-masked section is a
     * function of (scenario, options, seed) only — never of the
     * thread count.
     */
    obs::MetricSet collectMetrics() const;

    /**
     * Arm checkpointing for the lazily-built engine: @p policy is
     * installed (and @p ledger applied, when non-null) the moment
     * engine() first constructs it. Called by runScenario before the
     * scenario body runs.
     */
    void setCheckpoint(const ckpt::CheckpointPolicy &policy,
                       std::unique_ptr<ckpt::CheckpointLedger> ledger);

  private:
    RunOptions options_;
    std::ostream &os_;
    std::unique_ptr<Engine> engine_; ///< lazily constructed
    obs::MetricSet metrics_;
    bool firstTable_ = true;
    ckpt::CheckpointPolicy ckptPolicy_{};
    std::unique_ptr<ckpt::CheckpointLedger> ckptLedger_;
};

/** One registered scenario. */
struct Scenario
{
    std::string name;
    std::string description;
    void (*run)(ScenarioContext &);
};

/** All scenarios, in presentation order. */
const std::vector<Scenario> &scenarioRegistry();

/** Look up a scenario by name; nullptr when unknown. */
const Scenario *findScenario(const std::string &name);

/** Run one scenario with the given options; returns an exit code. */
int runScenario(const std::string &name, const RunOptions &options,
                std::ostream &os);

/**
 * Entry point of a thin bench binary pinned to @p name: parses the
 * shared flags (everything but --scenario) and runs.
 */
int scenarioMain(const std::string &name, int argc, char **argv);

/** Entry point of the nisqpp_run binary. */
int nisqppRunMain(int argc, char **argv);

} // namespace nisqpp

#endif // NISQPP_ENGINE_SCENARIO_HH
