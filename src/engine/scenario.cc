#include "engine/scenario.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/logging.hh"
#include "common/simd.hh"
#include "engine/scenarios.hh"
#include "obs/report.hh"
#include "obs/trace.hh"

namespace nisqpp {

ScenarioContext::ScenarioContext(const RunOptions &options,
                                 std::ostream &os)
    : options_(options), os_(os)
{
    if (options_.format == OutputFormat::Json)
        os_ << "{\"tables\":[";
}

Engine &
ScenarioContext::engine()
{
    if (!engine_) {
        EngineOptions engineOptions;
        engineOptions.threads = options_.threads;
        engineOptions.shardTrials = options_.shardTrials;
        engineOptions.batchLanes = options_.batchLanes;
        engine_ = std::make_unique<Engine>(engineOptions);
        if (ckptPolicy_.enabled())
            engine_->setCheckpointPolicy(ckptPolicy_);
        if (ckptLedger_)
            engine_->resumeFrom(std::move(*ckptLedger_));
    }
    return *engine_;
}

void
ScenarioContext::setCheckpoint(
    const ckpt::CheckpointPolicy &policy,
    std::unique_ptr<ckpt::CheckpointLedger> ledger)
{
    ckptPolicy_ = policy;
    ckptLedger_ = std::move(ledger);
}

std::uint64_t
ScenarioContext::seed(std::uint64_t fallback) const
{
    return options_.seedSet ? options_.seed : fallback;
}

StopRule
ScenarioContext::scaled(const StopRule &rule) const
{
    return rule.scaled(options_.trialsScale).scaledByEnv();
}

void
ScenarioContext::note(const std::string &line)
{
    if (options_.format == OutputFormat::Table)
        os_ << line << '\n';
}

void
ScenarioContext::table(const std::string &id, const TablePrinter &table)
{
    switch (options_.format) {
      case OutputFormat::Table:
        table.print(os_);
        break;
      case OutputFormat::Csv:
        os_ << "# " << id << '\n';
        table.printCsv(os_);
        break;
      case OutputFormat::Json:
        if (!firstTable_)
            os_ << ',';
        firstTable_ = false;
        os_ << "{\"id\":\"" << id << "\",\"table\":";
        table.printJson(os_);
        os_ << '}';
        break;
    }
}

void
ScenarioContext::finish()
{
    if (options_.format == OutputFormat::Json)
        os_ << "]}\n";
}

obs::MetricSet
ScenarioContext::collectMetrics() const
{
    obs::MetricSet out = metrics_;
    if (engine_) {
        out.merge(engine_->metrics());
        engine_->runtimeMetricsInto(out);
        engine_->checkpointMetricsInto(out);
    }
    obs::stageTimingInto(out);
    return out;
}

const std::vector<Scenario> &
scenarioRegistry()
{
    using namespace scenarios;
    static const std::vector<Scenario> registry{
        {"fig01_sqv", "Fig. 1: SQV boost from approximate QEC",
         fig01Sqv},
        {"fig05_backlog",
         "Fig. 5: wall clock vs compute time under decode backlog",
         fig05Backlog},
        {"fig06_runtime",
         "Fig. 6: running time vs syndrome processing ratio f",
         fig06Runtime},
        {"fig10_variants",
         "Fig. 10 top row: incremental mesh design steps (MC sweep)",
         fig10Variants},
        {"fig10_final",
         "Fig. 10 (a)/(b): final design error scaling (MC sweep)",
         fig10Final},
        {"fig10_cycles",
         "Fig. 10 (c): cycles-to-solution densities (MC sweep)",
         fig10Cycles},
        {"fig11_distance",
         "Fig. 11: required code distance for 100 T gates",
         fig11Distance},
        {"table1_circuits", "Table I: benchmark characteristics",
         table1Circuits},
        {"table2_cells", "Table II: ERSFQ cell library", table2Cells},
        {"table3_synthesis", "Table III: SFQ synthesis results",
         table3Synthesis},
        {"table4_latency",
         "Table IV: decoder execution time statistics (MC sweep)",
         table4Latency},
        {"table5_fit",
         "Table V: scaling-model fit c2 per distance (MC sweep)",
         table5Fit},
        {"micro_decoders",
         "decoder throughput shoot-out through the sharded engine",
         microDecoders},
        {"micro_hotpath",
         "tracked per-trial hot-path benchmark (BENCH_hotpath.json)",
         microHotpath},
        {"streaming_backlog",
         "streaming decode pipeline: queue depth, latency percentiles "
         "and backlog growth per decoder x distance x cycle time",
         streamingBacklog},
        {"fig10_measurement",
         "PL vs p under faulty measurement (q = p): d-round windowed "
         "spacetime decoding for MWPM and union-find",
         fig10Measurement},
        {"noise_zoo",
         "every noise channel x every decoder at d = 5: PL grid plus "
         "each decoder's decodeWindow strategy",
         noiseZoo},
        {"tiered_decode",
         "tiered mesh-first decoding: confidence-threshold sweep "
         "mapping the accuracy vs latency vs escalation-rate frontier "
         "against pure-mesh and pure-software baselines",
         tieredDecode},
        {"fault_sweep",
         "fault-injected streaming decode: PL and latency vs fault "
         "rate for each recovery policy (retransmit, carry-forward, "
         "decode deadline, load shedding) against the fault-free "
         "baseline",
         faultSweep},
    };
    return registry;
}

const Scenario *
findScenario(const std::string &name)
{
    for (const Scenario &s : scenarioRegistry())
        if (s.name == name)
            return &s;
    return nullptr;
}

int
runScenario(const std::string &name, const RunOptions &options,
            std::ostream &os)
{
    const Scenario *scenario = findScenario(name);
    if (!scenario) {
        std::cerr << "unknown scenario '" << name
                  << "'; available scenarios:\n";
        for (const Scenario &s : scenarioRegistry())
            std::cerr << "  " << s.name << "\n";
        std::cerr << "(run 'nisqpp_run --list' for descriptions)\n";
        return 1;
    }
    // Open both sinks before any work runs: a bad path should fail
    // fast instead of discarding a long run's report at the end.
    std::ofstream metricsFile;
    if (!options.metricsOut.empty()) {
        metricsFile.open(options.metricsOut);
        if (!metricsFile) {
            std::cerr << "cannot open --metrics-out '"
                      << options.metricsOut << "' for writing\n";
            return 1;
        }
    }
    std::ofstream traceFile;
    if (!options.traceOut.empty()) {
        traceFile.open(options.traceOut);
        if (!traceFile) {
            std::cerr << "cannot open --trace-out '"
                      << options.traceOut << "' for writing\n";
            return 1;
        }
    }

    // Resume first: a bad or mismatched checkpoint must fail before
    // any simulation work starts.
    std::unique_ptr<ckpt::CheckpointLedger> ledger;
    if (!options.resumePath.empty()) {
        try {
            ledger = std::make_unique<ckpt::CheckpointLedger>(
                ckpt::loadCheckpoint(options.resumePath));
        } catch (const ckpt::CheckpointError &err) {
            std::cerr << "cannot resume: " << err.what() << "\n";
            return 1;
        }
        if (ledger->scope != name) {
            std::cerr << "cannot resume: checkpoint '"
                      << options.resumePath
                      << "' was written by scenario '" << ledger->scope
                      << "', not '" << name << "'\n";
            return 1;
        }
    }
    ckpt::CheckpointPolicy policy;
    if (!options.checkpointPath.empty() ||
        !options.resumePath.empty()) {
        policy.path = !options.checkpointPath.empty()
                          ? options.checkpointPath
                          : options.resumePath;
        policy.intervalShards = options.checkpointInterval;
        policy.scope = name;
        // SIGINT/SIGTERM now drain, persist a final checkpoint and
        // exit with kExitInterrupted instead of dropping the run.
        ckpt::installSignalHandlers();
    }

    const bool wantTiming =
        !options.metricsOut.empty() || !options.traceOut.empty();
    if (wantTiming) {
        obs::resetStageTimes();
        obs::setTimingCollection(true);
        obs::setTraceCapture(!options.traceOut.empty());
    }

    ScenarioContext ctx(options, os);
    if (policy.enabled() || ledger)
        ctx.setCheckpoint(policy, std::move(ledger));
    int rc = 0;
    try {
        scenario->run(ctx);
        ctx.finish();
    } catch (const ckpt::InterruptedError &err) {
        std::cerr << "\ninterrupted: checkpoint written to '"
                  << err.path() << "'; resume with --resume '"
                  << err.path() << "'\n";
        rc = ckpt::kExitInterrupted;
    } catch (const ckpt::CheckpointError &err) {
        std::cerr << err.what() << "\n";
        rc = 1;
    }

    if (wantTiming) {
        obs::setTimingCollection(false);
        obs::setTraceCapture(false);
        // Reports describe a completed run only; an interrupted or
        // failed run must not overwrite them with partial data.
        if (rc == 0 && metricsFile.is_open()) {
            obs::RunReportConfig cfg;
            cfg.scenario = name;
            cfg.threads = options.threads;
            cfg.shardTrials = options.shardTrials;
            cfg.trialsScale = options.trialsScale;
            cfg.seed = options.seed;
            cfg.seedSet = options.seedSet;
            cfg.batchLanes = options.batchLanes;
            if (!obs::writeRunReport(metricsFile, cfg,
                                     ctx.collectMetrics())) {
                std::cerr << "write failed: --metrics-out '"
                          << options.metricsOut << "'\n";
                return 1;
            }
        }
        if (rc == 0 && traceFile.is_open()) {
            if (!obs::writeChromeTrace(traceFile)) {
                std::cerr << "write failed: --trace-out '"
                          << options.traceOut << "'\n";
                return 1;
            }
        }
    }
    return rc;
}

namespace {

void
printUsage(std::ostream &os, const std::string &binary, bool withScenario)
{
    os << "usage: " << binary;
    if (withScenario)
        os << " [--scenario] NAME";
    os << " [--threads N] [--shard-trials N] [--trials-scale X]"
          " [--seed S] [--batch N] [--simd scalar|v256|v512]"
          " [--format table|csv|json]"
          " [--metrics-out FILE] [--trace-out FILE]"
          " [--checkpoint FILE] [--checkpoint-interval N]"
          " [--resume FILE] [--escalate-threshold X]"
          " [--fault-drop X] [--fault-corrupt X] [--fault-dup X]"
          " [--fault-delay X] [--fault-stall X] [--fault-fail X]"
          " [--fault-seed S] [--deadline-ns X]";
    if (withScenario)
        os << " [--list]";
    os << " [--help]\n";
    if (withScenario) {
        os << "\nscenarios:\n";
        for (const Scenario &s : scenarioRegistry())
            os << "  " << s.name << "  -  " << s.description << "\n";
    }
    os << "\n--metrics-out writes a versioned JSON run report "
          "(deterministic counters\nplus masked timing/scheduling "
          "summaries); --trace-out writes a\nchrome://tracing event "
          "dump of the instrumented stages.\n";
    os << "\nNISQPP_TRIALS (env) multiplies trial budgets on top of"
          " --trials-scale.\n";
    os << "--escalate-threshold X pins tiered_decode to one confidence"
          " threshold in [0, 1]\ninstead of its default sweep.\n";
    os << "--fault-drop/--fault-corrupt/--fault-dup/--fault-delay/"
          "--fault-stall/--fault-fail\n(fractions in [0, 1]) and"
          " --fault-seed S pin fault_sweep to one fault operating\n"
          "point instead of its default rate grid; --deadline-ns X > 0"
          " pins its per-round\ndecode deadline. NISQPP_STREAM_FAULTS"
          " (env) is the warn-and-ignore twin\n"
          "(drop=X,corrupt=X,dup=X,delay=X,stall=X,fail=X,seed=S,"
          "delay-cycles=N,\nstall-factor=X).\n";
    os << "NISQPP_BATCH (env) / --batch N group N rounds per decode"
          " batch (1 = scalar;\nlane-packed mesh decoding otherwise;"
          " aggregates are identical either way).\n";
    os << "NISQPP_SIMD (env) / --simd scalar|v256|v512 pin the"
          " lane-word width of the\nbatch substrates (default: widest"
          " the CPU supports); results are\nbit-identical at every"
          " width.\n";
    os << "\n--checkpoint FILE periodically persists the sweep's shard"
          " ledger (atomic\ntemp+fsync+rename writes; SIGINT/SIGTERM"
          " write a final checkpoint and exit " +
              std::to_string(ckpt::kExitInterrupted) +
          ").\n--resume FILE restores a ledger and continues at each"
          " cell's first incomplete\nshard — byte-identical to an"
          " uninterrupted run at any --threads.\n"
          "--checkpoint-interval N / NISQPP_CKPT_INTERVAL (env) set"
          " shard completions\nbetween periodic writes (default " +
              std::to_string(ckpt::kDefaultCheckpointInterval) +
          ").\n";
}

/** Parse one numeric flag value or die with a usage error. */
double
numericValue(const std::string &flag, const char *text)
{
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0')
        fatal(flag + ": expected a number, got '" + text + "'");
    return v;
}

struct ParsedArgs
{
    RunOptions options;
    std::string scenario;
    bool listOnly = false;
    bool helpOnly = false;
};

ParsedArgs
parseArgs(int argc, char **argv, bool scenarioFlagAllowed)
{
    ParsedArgs parsed;
    parsed.options.batchLanes = batchLanesFromEnv(1);
    // NISQPP_SIMD retargets the lane-packed decode substrates before
    // any decoder is built; like every env knob it warns and keeps the
    // CPUID default on an invalid value, while --simd below fails
    // hard. Read only here (the CLI path): in-process scenario runs —
    // the golden net in particular — never see the environment.
    simd::setActiveWidth(simd::widthFromEnv(simd::activeWidth()));
    parsed.options.checkpointInterval = ckpt::checkpointIntervalFromEnv(
        ckpt::kDefaultCheckpointInterval);
    // Env twin first so explicit --fault-* flags override it. Read
    // only here (the CLI path): in-process scenario runs — the golden
    // net in particular — never see the environment.
    if (faults::streamFaultsFromEnv(parsed.options.faultSpec))
        parsed.options.faultGiven = true;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal(arg + ": missing value");
            return argv[++i];
        };
        // Fraction-valued --fault-* flags share one parse contract.
        auto faultRate = [&](double &slot) {
            const double v = numericValue(arg, value());
            if (!(v >= 0.0) || v > 1.0)
                fatal(arg + ": expected a fraction in [0, 1]");
            slot = v;
            parsed.options.faultGiven = true;
        };
        if (arg == "--help" || arg == "-h") {
            parsed.helpOnly = true;
        } else if (arg == "--list" && scenarioFlagAllowed) {
            parsed.listOnly = true;
        } else if (arg == "--scenario" && scenarioFlagAllowed) {
            parsed.scenario = value();
        } else if (arg == "--threads") {
            const double v = numericValue(arg, value());
            // Range-check before casting: out-of-range float->int
            // conversion is undefined behavior.
            if (!(v >= 0) || v > 4096 || v != std::floor(v))
                fatal("--threads: expected an integer in [0, 4096]");
            parsed.options.threads = static_cast<int>(v);
        } else if (arg == "--shard-trials") {
            const double v = numericValue(arg, value());
            if (!(v >= 1) || v > 1e15 || v != std::floor(v))
                fatal("--shard-trials: expected an integer in "
                      "[1, 1e15]");
            parsed.options.shardTrials = static_cast<std::size_t>(v);
        } else if (arg == "--batch") {
            const double v = numericValue(arg, value());
            if (!(v >= 1) ||
                v > static_cast<double>(kMaxBatchLanes) ||
                v != std::floor(v))
                fatal("--batch: expected an integer in [1, " +
                      std::to_string(kMaxBatchLanes) + "]");
            parsed.options.batchLanes = static_cast<std::size_t>(v);
        } else if (arg == "--simd") {
            simd::Width width;
            if (!simd::parseWidth(value(), width))
                fatal("--simd: expected scalar, v256 or v512");
            simd::setActiveWidth(width);
        } else if (arg == "--escalate-threshold") {
            const double v = numericValue(arg, value());
            if (!(v >= 0.0) || v > 1.0)
                fatal("--escalate-threshold: expected a fraction in "
                      "[0, 1]");
            parsed.options.escalateThreshold = v;
        } else if (arg == "--fault-drop") {
            faultRate(parsed.options.faultSpec.dropRate);
        } else if (arg == "--fault-corrupt") {
            faultRate(parsed.options.faultSpec.corruptRate);
        } else if (arg == "--fault-dup") {
            faultRate(parsed.options.faultSpec.duplicateRate);
        } else if (arg == "--fault-delay") {
            faultRate(parsed.options.faultSpec.delayRate);
        } else if (arg == "--fault-stall") {
            faultRate(parsed.options.faultSpec.stallRate);
        } else if (arg == "--fault-fail") {
            faultRate(parsed.options.faultSpec.decodeFailRate);
        } else if (arg == "--fault-seed") {
            const char *text = value();
            char *end = nullptr;
            errno = 0;
            parsed.options.faultSpec.seed =
                std::strtoull(text, &end, 0);
            if (end == text || *end != '\0' || text[0] == '-' ||
                errno == ERANGE)
                fatal("--fault-seed: expected an unsigned 64-bit "
                      "integer, got '" + std::string(text) + "'");
            parsed.options.faultGiven = true;
        } else if (arg == "--deadline-ns") {
            const double v = numericValue(arg, value());
            if (!(v > 0) || v > 1e9)
                fatal("--deadline-ns: expected a positive number "
                      "<= 1e9");
            parsed.options.deadlineNs = v;
        } else if (arg == "--trials-scale") {
            const double v = numericValue(arg, value());
            if (!(v > 0) || v > kMaxTrialsMultiplier)
                fatal("--trials-scale: expected a positive number "
                      "<= 1e6");
            parsed.options.trialsScale = v;
        } else if (arg == "--seed") {
            const char *text = value();
            char *end = nullptr;
            errno = 0;
            parsed.options.seed = std::strtoull(text, &end, 0);
            // strtoull silently wraps negatives and saturates on
            // overflow; reject both so typo'd seeds never alias.
            if (end == text || *end != '\0' || text[0] == '-' ||
                errno == ERANGE)
                fatal("--seed: expected an unsigned 64-bit integer, "
                      "got '" + std::string(text) + "'");
            parsed.options.seedSet = true;
        } else if (arg == "--checkpoint") {
            parsed.options.checkpointPath = value();
            if (parsed.options.checkpointPath.empty())
                fatal("--checkpoint: expected a file path");
        } else if (arg == "--resume") {
            parsed.options.resumePath = value();
            if (parsed.options.resumePath.empty())
                fatal("--resume: expected a file path");
        } else if (arg == "--checkpoint-interval") {
            const double v = numericValue(arg, value());
            // Same contract as the NISQPP_CKPT_INTERVAL env twin, but
            // an explicit flag fails hard instead of warn-and-keep.
            if (!(v >= 1) ||
                v > static_cast<double>(ckpt::kMaxCheckpointInterval) ||
                v != std::floor(v))
                fatal("--checkpoint-interval: expected an integer in "
                      "[1, " +
                      std::to_string(ckpt::kMaxCheckpointInterval) +
                      "]");
            parsed.options.checkpointInterval =
                static_cast<std::size_t>(v);
            parsed.options.checkpointIntervalSet = true;
        } else if (arg == "--metrics-out") {
            parsed.options.metricsOut = value();
            if (parsed.options.metricsOut.empty())
                fatal("--metrics-out: expected a file path");
        } else if (arg == "--trace-out") {
            parsed.options.traceOut = value();
            if (parsed.options.traceOut.empty())
                fatal("--trace-out: expected a file path");
        } else if (arg == "--format") {
            const std::string text = value();
            if (text == "table")
                parsed.options.format = OutputFormat::Table;
            else if (text == "csv")
                parsed.options.format = OutputFormat::Csv;
            else if (text == "json")
                parsed.options.format = OutputFormat::Json;
            else
                fatal("--format: expected table, csv or json");
        } else if (scenarioFlagAllowed && !arg.empty() &&
                   arg[0] != '-' && parsed.scenario.empty()) {
            // Bare first operand: scenario name without --scenario.
            parsed.scenario = arg;
        } else {
            fatal("unknown argument '" + arg + "' (try --help)");
        }
    }
    if (parsed.options.checkpointIntervalSet &&
        parsed.options.checkpointPath.empty() &&
        parsed.options.resumePath.empty())
        fatal("--checkpoint-interval requires --checkpoint or "
              "--resume");
    return parsed;
}

} // namespace

int
scenarioMain(const std::string &name, int argc, char **argv)
{
    const ParsedArgs parsed = parseArgs(argc, argv, false);
    if (parsed.helpOnly) {
        printUsage(std::cout, argv[0], false);
        return 0;
    }
    return runScenario(name, parsed.options, std::cout);
}

int
nisqppRunMain(int argc, char **argv)
{
    const ParsedArgs parsed = parseArgs(argc, argv, true);
    if (parsed.helpOnly) {
        printUsage(std::cout, "nisqpp_run", true);
        return 0;
    }
    if (parsed.listOnly) {
        for (const Scenario &s : scenarioRegistry())
            std::cout << s.name << "  -  " << s.description << "\n";
        return 0;
    }
    if (parsed.scenario.empty()) {
        printUsage(std::cerr, "nisqpp_run", true);
        return 1;
    }
    return runScenario(parsed.scenario, parsed.options, std::cout);
}

} // namespace nisqpp
