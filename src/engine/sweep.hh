/**
 * @file
 * Parallel experiment engine: shards each (code distance, physical
 * rate) Monte Carlo grid cell into fixed-size trial shards, runs the
 * shards on a work-stealing thread pool, and merges shard results in
 * shard-index order. Because shard seeds derive only from the master
 * seed (via Rng::split child streams) and the merge order is fixed, an
 * N-thread run produces byte-identical aggregates to a 1-thread run.
 *
 * Shards are scheduled in waves (2x the worker count in flight per
 * cell) rather than enqueueing a cell's whole maxTrials budget up
 * front: each finished shard claims-and-submits its successor, so an
 * early-stopped cell never pays submit/queue churn for shards that
 * would only be skipped.
 *
 * Protocol note: each shard runs its own LifetimeSimulator from a
 * clean lattice state. In lifetime mode a cell is therefore sampled
 * as independent logical-memory *segments* of shardTrials rounds
 * rather than one continuous run — statistically equivalent in steady
 * state, but each segment carries a warmup transient of order d
 * rounds, so very small shardTrials slightly undercounts PL. Raise
 * EngineOptions::shardTrials (or use one shard: shardTrials >=
 * maxTrials) when segment boundaries matter.
 */

#ifndef NISQPP_ENGINE_SWEEP_HH
#define NISQPP_ENGINE_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "noise/noise_model.hh"
#include "sim/monte_carlo.hh"
#include "sim/threshold.hh"

namespace nisqpp {

class ThreadPool;

/** Builds a decoder for a lattice/type; lets sweeps construct per-d. */
using DecoderFactory = std::function<std::unique_ptr<Decoder>(
    const SurfaceLattice &, ErrorType)>;

/** Configuration of one logical-error-rate sweep. */
struct SweepConfig
{
    std::vector<int> distances{3, 5, 7, 9};
    std::vector<double> physicalRates;
    /**
     * Noise model shape (channel kind, bias, measurement flip rate q);
     * the physical rate p is the sweep axis. Defaults to pure
     * dephasing with perfect measurement (the paper's setup).
     */
    NoiseSpec noise{};
    /**
     * Noisy measurement rounds per decode window (plus one perfect
     * commit round); 0 = single-round decoding. Usually set alongside
     * noise.q > 0.
     */
    int windowRounds = 0;
    bool throughCircuits = false;
    bool lifetimeMode = false; ///< the paper's persistent-state protocol
    StopRule stopRule{};
    std::uint64_t seed = 0x5150f00dULL;

    /** Log-spaced physical error rates between @p lo and @p hi. */
    static std::vector<double> logSpaced(double lo, double hi, int count);
};

/** Results of one sweep: a curve per distance + per-point telemetry. */
struct SweepResult
{
    std::vector<ErrorRateCurve> curves;
    /** cellStats[di][pi] = full Monte Carlo result for that grid point. */
    std::vector<std::vector<MonteCarloResult>> cells;
};

/** Tuning knobs of the parallel engine. */
struct EngineOptions
{
    /** Worker threads; 0 selects hardware concurrency. */
    int threads = 1;

    /**
     * Trials per shard: the unit of parallelism AND of early-stop
     * granularity. Results are invariant under the thread count but
     * NOT under this value (it fixes the shard seed streams), so keep
     * it constant when comparing runs.
     */
    std::size_t shardTrials = 512;

    /**
     * Rounds grouped per Decoder::decodeBatch call in per-round
     * simulations (LifetimeSimulator::setBatchLanes): 1 = scalar
     * decoding, larger values feed the mesh decoder's lane-packed
     * substrate. Aggregates are byte-identical for every value (and
     * every thread count) at a fixed seed; only throughput changes.
     */
    std::size_t batchLanes = 1;
};

/**
 * Batch-lane count from the NISQPP_BATCH environment variable
 * (an integer round-group size, <= kMaxBatchLanes), or @p fallback
 * when unset. Malformed values warn and fall back.
 */
std::size_t batchLanesFromEnv(std::size_t fallback = 1);

/** Largest accepted round-group size (scratch-memory guard). */
inline constexpr std::size_t kMaxBatchLanes = 4096;

/** One Monte Carlo grid cell, fully specified for sharded execution. */
struct CellSpec
{
    const SurfaceLattice *lattice = nullptr;
    double physicalRate = 0.0;
    NoiseSpec noise{};    ///< channel kind + eta + measurement q
    int windowRounds = 0; ///< noisy rounds per decode window; 0 = off
    bool throughCircuits = false;
    bool lifetimeMode = false;
    StopRule rule{};          ///< already env/flag scaled by the caller
    std::uint64_t seed = 0;   ///< cell master seed
    const DecoderFactory *factory = nullptr;
    /** Rounds per decodeBatch group; 0 = the engine's default. */
    std::size_t batchLanes = 0;
};

/**
 * Sharded, deterministic Monte Carlo executor. One engine owns one
 * thread pool; runSweep/runCell may be called repeatedly but not
 * concurrently from multiple threads.
 */
class Engine
{
  public:
    explicit Engine(EngineOptions options = {});
    ~Engine();

    int threads() const;
    const EngineOptions &options() const { return options_; }

    /** Run one grid cell sharded across the pool; result finalized. */
    MonteCarloResult runCell(const CellSpec &spec);

    /**
     * Run a full (distance, physical-rate) grid for @p factory
     * decoders. Cell seeds are drawn from config.seed in fixed grid
     * order, so results depend only on the configuration, the master
     * seed and shardTrials — never on the thread count.
     */
    SweepResult runSweep(const SweepConfig &config,
                         const DecoderFactory &factory);

    /**
     * Run independent @p jobs across the pool and wait for all of
     * them. Used for grids whose cells are inherently sequential
     * inside (the streaming backlog trajectories): each job must be
     * deterministic and write only its own result slot, which makes
     * the aggregate independent of the thread count by construction.
     */
    void runJobs(std::vector<std::function<void()>> jobs);

    /**
     * Deterministic metrics of every cell collected so far: the merge
     * of each cell's ordered-prefix shard metrics (engine.* trial
     * counters plus exported decoder.* work counters), folded in
     * collect order. Independent of the thread count.
     */
    const obs::MetricSet &metrics() const { return totals_; }

    /**
     * Append the engine's host-dependent runtime counters to @p out:
     * `sched.pool.threads/tasks/steals` from the thread pool. Steal
     * counts are scheduling races at N > 1 threads, hence the masked
     * `sched.*` namespace (a 1-thread pool reports zero steals).
     */
    void runtimeMetricsInto(obs::MetricSet &out) const;

    /**
     * Enable periodic checkpointing: every runSweep/runCell call
     * becomes one ledger invocation, snapshotted to policy.path after
     * every policy.intervalShards shard completions (or
     * policy.intervalSeconds of wall time) and at each invocation
     * boundary. Set before the first runSweep/runCell.
     *
     * With a policy installed, SIGINT/SIGTERM (or requestInterrupt())
     * drains in-flight shards, writes a final checkpoint and throws
     * ckpt::InterruptedError from the interrupted runSweep/runCell.
     */
    void setCheckpointPolicy(const ckpt::CheckpointPolicy &policy);

    /**
     * Resume from a loaded ledger: each subsequent runSweep/runCell
     * validates its canonical config text against the matching
     * restored invocation (a mismatch — different grid, rates, seed,
     * shardTrials — is a hard ckpt::CheckpointError), restores every
     * cell's merged ordered prefix bit-exactly, and restarts at each
     * cell's first incomplete shard. Completed invocations are
     * restored without recomputation. Because restored accumulators
     * and shard seeds are exact, a resumed run is byte-identical to an
     * uninterrupted one at any thread count. Call before the first
     * runSweep/runCell; composes with setCheckpointPolicy.
     */
    void resumeFrom(ckpt::CheckpointLedger ledger);

    /**
     * Append checkpoint bookkeeping to @p out (all in the masked
     * `ckpt.*` namespace — how often a run was interrupted is host
     * history, not physics): ckpt.writes, ckpt.restored_cells,
     * ckpt.restored_shards, a ckpt.resumed flag gauge, and
     * ckpt.last_write_age_ms. No-op when checkpointing is off.
     */
    void checkpointMetricsInto(obs::MetricSet &out) const;

  private:
    struct CellRun; ///< in-flight ordered-merge state of one cell

    void prepareCell(const CellSpec &spec, CellRun &run);
    void schedulePumps(CellRun &run);
    void pumpCell(CellRun &run);
    MonteCarloResult collectCell(CellRun &run);

    /**
     * Run one prepared invocation (restore / schedule / drain /
     * checkpoint); throws ckpt::InterruptedError after persisting a
     * final checkpoint when an interrupt was requested.
     */
    void executeInvocation(std::vector<std::unique_ptr<CellRun>> &runs);
    void applyRestoredCell(CellRun &run, const ckpt::CellLedger &cell,
                           std::size_t invocation, std::size_t index);
    std::string describeInvocation(
        const std::vector<std::unique_ptr<CellRun>> &runs) const;
    ckpt::CellLedger snapshotCell(CellRun &run);
    ckpt::InvocationLedger snapshotActive(bool complete);
    void writeLedgerLocked(const ckpt::InvocationLedger &active);
    void maybeWriteCheckpoint();

    EngineOptions options_;
    std::unique_ptr<ThreadPool> pool_;
    obs::MetricSet totals_;

    /** Checkpoint state (inert unless a policy/ledger is installed). @{ */
    ckpt::CheckpointPolicy ckpt_{};
    bool checkpointEnabled_ = false;
    ckpt::CheckpointLedger restored_{};
    bool hasRestored_ = false;
    std::vector<ckpt::InvocationLedger> doneInvocations_;
    std::size_t invocationIndex_ = 0;
    std::vector<CellRun *> activeRuns_; ///< stable while pool is busy
    std::string activeConfig_;
    std::mutex ckptWriteMutex_;
    std::atomic<std::size_t> ckptSinceWrite_{0};
    std::atomic<std::int64_t> lastWriteNs_{0}; ///< steady-clock ns
    std::atomic<std::uint64_t> ckptWrites_{0};
    std::size_t restoredCells_ = 0;
    std::size_t restoredShards_ = 0;
    bool resumed_ = false;
    /** @} */
};

} // namespace nisqpp

#endif // NISQPP_ENGINE_SWEEP_HH
