/**
 * @file
 * Fault-injected streaming scenario: graceful degradation measured.
 * Every policy cell replays the *same* seeded fault plan and noise
 * stream at each fault rate, so differences between rows are pure
 * recovery policy: unprotected transport vs parity re-request vs
 * last-frame carry-forward, a tiered decoder racing a per-round
 * decode deadline, and backlog-triggered load shedding (drop-oldest /
 * XOR-merge) against an unshed reference, all against the fault-free
 * baselines. PL, latency and the full stream.fault.* ledger are
 * golden-pinned; the round-conservation invariant is printed per row.
 */

#include "engine/scenarios.hh"

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/scenario.hh"
#include "sim/experiment.hh"
#include "stream/stream_sim.hh"

namespace nisqpp {
namespace scenarios {

namespace {

/** One streaming run: a recovery policy under one fault operating point. */
struct FaultCell
{
    std::string policy;
    std::string decoder; ///< family name, or "tiered" for the deadline tier
    double rate = 0.0;   ///< headline fault rate (0 = fault-free)
    StreamConfig config;
};

/** Escalation backend and confidence threshold of the deadline cells. */
constexpr const char *kExactFamily = "union_find";
constexpr double kDeadlineThreshold = 0.9;
/** Default per-round decode budget of the deadline policy (virtual ns). */
constexpr double kDefaultDeadlineNs = 600.0;
/** Backlog threshold of the shedding policies (rounds). */
constexpr std::uint64_t kShedThreshold = 16;

/** The scenario's fault mix at headline rate r (0 disables all). */
faults::FaultSpec
specAtRate(double r)
{
    faults::FaultSpec spec;
    spec.dropRate = r;
    spec.corruptRate = r;
    spec.delayRate = r;
    spec.stallRate = r;
    spec.duplicateRate = r / 2.0;
    spec.decodeFailRate = r / 4.0;
    return spec;
}

std::vector<StreamingResult>
runFaultCells(ScenarioContext &ctx, const SurfaceLattice &lattice,
              const std::vector<FaultCell> &cells)
{
    std::vector<StreamingResult> results(cells.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(cells.size());
    // --batch / NISQPP_BATCH engages the batched streaming consumer on
    // eligible decoders; fault-struck rounds always replay scalar, so
    // every row is byte-identical at any lane count.
    const std::size_t batchLanes = ctx.engine().options().batchLanes;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        jobs.push_back([&cells, &results, &lattice, batchLanes, i] {
            const FaultCell &cell = cells[i];
            StreamConfig config = cell.config;
            config.lattice = &lattice;
            config.batchLanes = batchLanes;
            std::unique_ptr<Decoder> decoder;
            if (cell.decoder == "tiered")
                decoder = tieredDecoderFactory(
                    MeshConfig::finalDesign(), kExactFamily,
                    kDeadlineThreshold)(lattice, ErrorType::Z);
            else
                decoder =
                    decoderFamilies()[decoderFamilyIndex(cell.decoder)]
                        .factory(lattice, ErrorType::Z);
            results[i] = runStream(config, *decoder);
        });
    }
    ctx.engine().runJobs(std::move(jobs));
    // Fixed cell order: every job is a deterministic function of its
    // cell, so the metric fold is thread-count-invariant.
    for (const StreamingResult &r : results)
        ctx.metrics().merge(r.metrics);
    return results;
}

} // namespace

void
faultSweep(ScenarioContext &ctx)
{
    ctx.note("=== fault_sweep: transport faults, decode deadlines and "
             "graceful degradation ===");
    ctx.note("(d = 5, dephasing p = 5%, 400 ns cycle; every policy row "
             "replays the same seeded fault plan and noise stream at "
             "each rate, so row differences are pure recovery policy; "
             "shed policies run on MWPM, whose f > 1 backlog actually "
             "crosses the threshold, against an unshed MWPM "
             "reference)\n");

    const int distance = 5;
    const std::size_t rounds =
        ctx.scaled({2000, 2000, 1u << 30}).maxTrials;
    const std::uint64_t streamSeed = ctx.seed(0xfa117ULL);
    const double deadlineNs = ctx.deadlineNs() > 0.0
                                  ? ctx.deadlineNs()
                                  : kDefaultDeadlineNs;

    // --fault-* / NISQPP_STREAM_FAULTS pin a single operating point;
    // the default grid sweeps the headline rate.
    std::vector<double> rates{0.01, 0.05, 0.2};
    const faults::FaultSpec *pinned = ctx.faultOverride();
    if (pinned)
        rates = {-1.0}; // sentinel: one pinned point

    SurfaceLattice lattice(distance);

    StreamConfig base;
    base.physicalRate = 0.05;
    base.syndromeCycleNs = 400.0;
    base.rounds = rounds;
    base.seed = streamSeed;

    auto cellFor = [&](const std::string &policy,
                       const std::string &decoder, double rate,
                       const faults::FaultSpec &spec,
                       const faults::RecoveryPolicy &recovery) {
        FaultCell cell;
        cell.policy = policy;
        cell.decoder = decoder;
        cell.rate = rate;
        cell.config = base;
        cell.config.latency =
            decoder == "tiered"
                ? StreamLatencyModel::tiered(kExactFamily, distance)
                : StreamLatencyModel::forFamily(decoder, distance);
        cell.config.faults = spec;
        cell.config.recovery = recovery;
        return cell;
    };

    std::vector<FaultCell> cells;
    const faults::RecoveryPolicy none;
    // Fault-free baselines, one per decoder the policies run on.
    cells.push_back(
        cellFor("baseline", "union_find", 0.0, specAtRate(0.0), none));
    cells.push_back(
        cellFor("baseline", "tiered", 0.0, specAtRate(0.0), none));
    cells.push_back(
        cellFor("baseline", "mwpm", 0.0, specAtRate(0.0), none));

    for (double rate : rates) {
        const faults::FaultSpec spec =
            pinned ? *pinned : specAtRate(rate);
        const double shownRate = pinned ? -1.0 : rate;

        cells.push_back(
            cellFor("unprotected", "union_find", shownRate, spec, none));

        faults::RecoveryPolicy retransmit;
        retransmit.parityRetransmit = true;
        retransmit.maxRetransmits = 3;
        cells.push_back(cellFor("retransmit", "union_find", shownRate,
                                spec, retransmit));

        faults::RecoveryPolicy carry;
        carry.carryForward = true;
        cells.push_back(cellFor("carry_forward", "union_find",
                                shownRate, spec, carry));

        faults::RecoveryPolicy deadline;
        deadline.deadlineNs = deadlineNs;
        cells.push_back(
            cellFor("deadline", "tiered", shownRate, spec, deadline));

        faults::RecoveryPolicy shedDrop;
        shedDrop.shedThreshold = kShedThreshold;
        shedDrop.shedMode = faults::ShedMode::DropOldest;
        cells.push_back(
            cellFor("shed_drop", "mwpm", shownRate, spec, shedDrop));

        faults::RecoveryPolicy shedMerge;
        shedMerge.shedThreshold = kShedThreshold;
        shedMerge.shedMode = faults::ShedMode::XorMerge;
        cells.push_back(
            cellFor("shed_merge", "mwpm", shownRate, spec, shedMerge));

        cells.push_back(
            cellFor("unshed", "mwpm", shownRate, spec, none));
    }

    const std::vector<StreamingResult> results =
        runFaultCells(ctx, lattice, cells);

    auto rateLabel = [&](double rate) {
        return rate < 0.0 ? std::string("pinned")
                          : TablePrinter::num(rate, 3);
    };

    TablePrinter env({"key", "value"});
    env.addRow({"rounds per cell", std::to_string(rounds)});
    env.addRow({"deadline (ns)", TablePrinter::num(deadlineNs, 4)});
    env.addRow({"shed threshold (rounds)",
                std::to_string(kShedThreshold)});
    ctx.table("fault_env", env);

    TablePrinter table({"policy", "decoder", "rate", "PL", "failures",
                        "svc p99", "sojourn mean (us)", "max backlog",
                        "drain (us)", "conserved"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const FaultCell &cell = cells[i];
        const StreamingResult &r = results[i];
        const faults::FaultCounts &fc = r.faults;
        const bool faultless = !cell.config.faults.any() &&
                               !cell.config.recovery.active();
        // rounds == decoded + carried + lost + shed + merged; the
        // fault-free path never fills the ledger, so it conserves by
        // construction (decodedRounds stays zero there).
        const std::uint64_t accounted =
            fc.decodedRounds + fc.carriedForward + fc.lostRounds +
            fc.shedRounds + fc.mergedRounds;
        const bool conserved =
            faultless ||
            (accounted == static_cast<std::uint64_t>(r.rounds) &&
             r.clockMonotone);
        table.addRow({cell.policy, cell.decoder, rateLabel(cell.rate),
                      TablePrinter::num(r.logicalErrorRate, 3),
                      std::to_string(r.failures),
                      TablePrinter::num(r.servicePercentiles.p99, 4),
                      TablePrinter::num(r.sojournNs.mean() / 1e3, 4),
                      std::to_string(r.maxBacklogRounds),
                      TablePrinter::num(r.drainNs / 1e3, 4),
                      conserved ? "ok" : "VIOLATED"});
    }
    ctx.table("fault_sweep", table);

    TablePrinter ledger({"policy", "rate", "drops", "corrupt", "dup",
                         "delay", "stall", "fail", "retrans", "carried",
                         "lost", "corrupt_dec", "ddl_commit",
                         "ddl_clamp", "shed", "merged", "dedup",
                         "decoded"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const FaultCell &cell = cells[i];
        const faults::FaultCounts &fc = results[i].faults;
        ledger.addRow({cell.policy + "/" + cell.decoder,
                       rateLabel(cell.rate), std::to_string(fc.drops),
                       std::to_string(fc.corruptions),
                       std::to_string(fc.duplicates),
                       std::to_string(fc.delays),
                       std::to_string(fc.stalls),
                       std::to_string(fc.decodeFailures),
                       std::to_string(fc.retransmits),
                       std::to_string(fc.carriedForward),
                       std::to_string(fc.lostRounds),
                       std::to_string(fc.corruptDecodes),
                       std::to_string(fc.deadlineCommits),
                       std::to_string(fc.deadlineClamps),
                       std::to_string(fc.shedRounds),
                       std::to_string(fc.mergedRounds),
                       std::to_string(fc.dedupRounds),
                       std::to_string(fc.decodedRounds)});
    }
    ctx.table("fault_ledger", ledger);

    ctx.note("\nretransmit recovers transport losses at a bounded "
             "virtual-ns cost; carry-forward trades accuracy for "
             "availability on unrecoverable rounds; the deadline "
             "policy commits the provisional mesh answer when the "
             "escalated exact tier would blow the budget; shedding "
             "bounds MWPM's otherwise unbounded backlog at the "
             "threshold.");
}

} // namespace scenarios
} // namespace nisqpp
