#include "engine/thread_pool.hh"

#include <chrono>

#include "common/logging.hh"

namespace nisqpp {

ThreadPool::ThreadPool(int threads)
{
    if (threads < 0)
        fatal("ThreadPool: negative thread count");
    std::size_t count = static_cast<std::size_t>(threads);
    if (count == 0) {
        count = std::thread::hardware_concurrency();
        if (count == 0)
            count = 1;
    }
    queues_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        queues_.push_back(std::make_unique<WorkQueue>());
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    shutdown_.store(true, std::memory_order_release);
    workReady_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(Task task)
{
    require(static_cast<bool>(task), "ThreadPool: empty task");
    const std::size_t slot =
        nextQueue_.fetch_add(1, std::memory_order_relaxed) %
        queues_.size();
    {
        // Count the task before publishing it: a worker may pop and
        // finish it the instant it hits the queue, and the decrement
        // must never observe a counter the increment hasn't reached.
        std::lock_guard<std::mutex> lock(stateMutex_);
        ++inflight_;
    }
    {
        std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
        queues_[slot]->tasks.push_back(std::move(task));
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(stateMutex_);
    allDone_.wait(lock, [this] { return inflight_ == 0; });
}

bool
ThreadPool::tryAcquire(std::size_t self, Task &out)
{
    // Own queue: front. All tasks arrive by external submission in
    // submission order, and the engine's early-stop skip relies on
    // shards executing roughly index-ordered — LIFO draining would
    // run low-index shards last and defeat it.
    {
        auto &mine = *queues_[self];
        std::lock_guard<std::mutex> lock(mine.mutex);
        if (!mine.tasks.empty()) {
            out = std::move(mine.tasks.front());
            mine.tasks.pop_front();
            return true;
        }
    }
    // Steal: front of the next victims, oldest work first.
    for (std::size_t step = 1; step < queues_.size(); ++step) {
        auto &victim = *queues_[(self + step) % queues_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            stolen_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    while (true) {
        Task task;
        if (tryAcquire(self, task)) {
            task();
            executed_.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(stateMutex_);
            if (--inflight_ == 0)
                allDone_.notify_all();
            continue;
        }
        if (shutdown_.load(std::memory_order_acquire))
            return;
        // Timed wait sidesteps the submit/sleep race without spinning:
        // a missed notify costs at most one millisecond of latency.
        std::unique_lock<std::mutex> lock(stateMutex_);
        workReady_.wait_for(lock, std::chrono::milliseconds(1));
    }
}

} // namespace nisqpp
