/**
 * @file
 * Analytic scenario bodies: the paper reproductions that need no Monte
 * Carlo (SQV model, required-distance model, circuit characteristics
 * and SFQ synthesis). Ported from the original bench binaries so every
 * output is reachable by name through nisqpp_run. The backlog figures
 * (5 and 6) moved to scenarios_stream.cc: they now measure their
 * operating ratios on the streaming pipeline.
 */

#include "engine/scenarios.hh"

#include <string>
#include <vector>

#include "backlog/distance_model.hh"
#include "backlog/sqv.hh"
#include "circuits/benchmarks.hh"
#include "circuits/decompose.hh"
#include "engine/scenario.hh"
#include "sfq/cell_library.hh"
#include "sfq/decoder_circuits.hh"
#include "sfq/synthesis.hh"

namespace nisqpp {
namespace scenarios {

void
fig01Sqv(ScenarioContext &ctx)
{
    ctx.note("=== Figure 1: SQV boost from approximate QEC ===");
    ctx.note("machine: 1024 physical qubits, p = 1e-5, NISQ target "
             "SQV = 1e5\n");

    SqvMachine machine;
    TablePrinter table({"point", "d", "logical qubits", "PL/gate",
                        "gates/qubit", "SQV", "boost vs NISQ"});

    auto add_row = [&](const std::string &name, const SqvPoint &pt) {
        table.addRow({name, std::to_string(pt.distance),
                      std::to_string(pt.logicalQubits),
                      TablePrinter::sci(pt.logicalErrorRate, 2),
                      TablePrinter::sci(pt.gatesPerQubit, 2),
                      TablePrinter::sci(pt.sqv, 2),
                      TablePrinter::num(pt.boost, 5)});
    };

    // The paper's quoted design points (PL values from Section VIII).
    ScalingModel paper_model; // unused when overriding PL
    add_row("paper d=3", sqvPoint(machine, paper_model, 3, 2.94e-9));
    add_row("paper d=5", sqvPoint(machine, paper_model, 5, 8.96e-10));

    // Model-driven evaluation, PL = c1 (p/pth)^(c2 d) with the paper's
    // Table V coefficients.
    add_row("model d=3 (c2=0.650)",
            sqvPoint(machine, ScalingModel{0.03, 0.05, 0.650}, 3));
    add_row("model d=5 (c2=0.429)",
            sqvPoint(machine, ScalingModel{0.03, 0.05, 0.429}, 5));

    ctx.table("fig01_sqv", table);
    ctx.note("\npaper reports: boost 3,402 at d=3 and 11,163 at d=5 "
             "(Fig. 1, Section VIII)");
}

void
fig11Distance(ScenarioContext &ctx)
{
    ctx.note("=== Figure 11: required code distance (100 T gates) ===");
    ctx.note("(syndrome cycle 400 ns; '-' = no distance up to 2001 "
             "suffices)\n");

    const std::vector<DecoderProfile> profiles{
        DecoderProfile::sfqDecoder(), DecoderProfile::mwpm(),
        DecoderProfile::neuralNet(), DecoderProfile::unionFind(),
        DecoderProfile::mwpmNoBacklog()};

    const std::vector<double> rates{1e-5, 3e-5, 1e-4, 3e-4, 1e-3,
                                    3e-3, 1e-2, 3e-2};

    std::vector<std::string> header{"physical error rate"};
    for (const auto &prof : profiles)
        header.push_back(prof.name);
    TablePrinter table(header);

    for (double p : rates) {
        std::vector<std::string> row{TablePrinter::sci(p, 1)};
        for (const auto &prof : profiles) {
            DistanceQuery query;
            query.physicalErrorRate = p;
            const auto d = requiredDistance(prof, query);
            row.push_back(d ? std::to_string(*d) : std::string("-"));
        }
        table.addRow(row);
    }
    ctx.table("fig11_distance", table);

    // The headline ratio at a representative operating point.
    DistanceQuery query;
    query.physicalErrorRate = 1e-3;
    const auto d_sfq =
        requiredDistance(DecoderProfile::sfqDecoder(), query);
    const auto d_mwpm = requiredDistance(DecoderProfile::mwpm(), query);
    if (d_sfq && d_mwpm)
        ctx.note("\nat p = 1e-3: offline MWPM needs " +
                 std::to_string(*d_mwpm) + " vs SFQ " +
                 std::to_string(*d_sfq) + " (" +
                 TablePrinter::num(
                     static_cast<double>(*d_mwpm) / *d_sfq, 3) +
                 "x) - the paper reports ~10x smaller distances for "
                 "the online decoder");
    ctx.note("profile parameters are documented in EXPERIMENTS.md");
}

void
table1Circuits(ScenarioContext &ctx)
{
    ctx.note("=== Table I: benchmark characteristics ===\n");

    TablePrinter table({"benchmark", "# qubits", "# total gates (15g)",
                        "# total gates (17g, paper)", "# T gates",
                        "depth"});
    for (const QCircuit &qc : tableOneBenchmarks()) {
        table.addRow(
            {qc.name(), std::to_string(qc.numQubits()),
             std::to_string(decomposedGateCount(qc)),
             std::to_string(
                 decomposedGateCount(qc, kToffoliGatesPaper)),
             std::to_string(decomposedTCount(qc)),
             std::to_string(decomposeToffoli(qc).depth())});
    }
    ctx.table("table1_circuits", table);

    ctx.note("\npaper Table I totals: takahashi 740, barenco 1224, "
             "cnu 1156, cnx 629, cuccaro 821 (17-gate Toffoli)");
}

void
table2Cells(ScenarioContext &ctx)
{
    ctx.note("=== Table II: ERSFQ cell library ===\n");

    TablePrinter table(
        {"cell", "area (um^2)", "JJ count", "delay (ps)", "power (uW)"});
    for (CellKind kind : {CellKind::And2, CellKind::Or2, CellKind::Xor2,
                          CellKind::Not, CellKind::DroDff}) {
        const CellInfo &info = cellInfo(kind);
        table.addRow({info.name, TablePrinter::num(info.areaUm2, 6),
                      std::to_string(info.jjCount),
                      TablePrinter::num(info.delayPs, 3),
                      TablePrinter::num(info.powerUw, 3)});
    }
    ctx.table("table2_cells", table);
    ctx.note("\n(areas/JJ/delays are the paper's Table II values; "
             "per-cell power calibrated to Table III's 0.026 uW per "
             "logic gate)");
}

void
table3Synthesis(ScenarioContext &ctx)
{
    ctx.note("=== Table III: SFQ synthesis results ===\n");

    TablePrinter table({"circuit", "logical depth", "latency cell (ps)",
                        "latency clocked (ps)", "area (um^2)",
                        "power (uW)", "gates", "DFFs", "JJs"});

    auto add = [&](const SynthesisReport &rep) {
        table.addRow({rep.name, std::to_string(rep.logicalDepth),
                      TablePrinter::num(rep.latencyCellPs, 4),
                      TablePrinter::num(rep.latencyClockedPs, 5),
                      TablePrinter::num(rep.areaUm2, 7),
                      TablePrinter::num(rep.powerUw, 4),
                      std::to_string(rep.gateCount),
                      std::to_string(rep.dffCount),
                      std::to_string(rep.jjCount)});
    };

    add(synthesize(singleGateNetlist(CellKind::And2)));
    add(synthesize(singleGateNetlist(CellKind::Or2)));
    add(synthesize(orNNetlist(7)));
    add(synthesize(singleGateNetlist(CellKind::Not)));
    add(synthesize(pairGrantSubcircuit()));
    add(synthesize(pairSubcircuit()));
    add(synthesize(growPairReqSubcircuit()));
    add(synthesize(resetKeeperSubcircuit()));
    add(synthesize(fullDecoderModule()));
    ctx.table("table3_synthesis", table);

    const SynthesisReport full = synthesize(fullDecoderModule());
    const int d9_modules = 17 * 17; // one module per qubit at d=9
    ctx.note("\nfull mesh at d=9 (289 modules): area " +
             TablePrinter::num(full.areaUm2 * d9_modules / 1e6, 4) +
             " mm^2, power " +
             TablePrinter::num(full.powerUw * d9_modules / 1e3, 4) +
             " mW");
    ctx.note("paper Table III: full circuit depth 6, 162.72 ps, "
             "1.2793e6 um^2, 13.08 uW; d=9 mesh 369.72 mm^2 / 3.78 mW");
}

} // namespace scenarios
} // namespace nisqpp
