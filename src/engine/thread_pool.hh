/**
 * @file
 * Work-stealing thread pool backing the parallel experiment engine.
 * Each worker owns a task queue drained oldest-first, and steals from
 * the front of a victim's queue when idle, so execution stays roughly
 * in submission order (the engine's early-stop shard skip depends on
 * low-index shards running first). Submission round-robins across
 * queues so a burst of shards spreads before stealing even starts.
 */

#ifndef NISQPP_ENGINE_THREAD_POOL_HH
#define NISQPP_ENGINE_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nisqpp {

/**
 * Fixed-size pool of worker threads executing submitted tasks.
 * Tasks must not throw; experiment shards report through their own
 * result slots. wait() blocks the submitting thread until every task
 * submitted so far has finished, so the pool can be reused across
 * sweep phases.
 */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @param threads Worker count; 0 selects hardware concurrency. */
    explicit ThreadPool(int threads = 0);

    /** Drains remaining work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const
    {
        return static_cast<int>(workers_.size());
    }

    /** Enqueue one task; returns immediately. */
    void submit(Task task);

    /** Block until all tasks submitted so far have completed. */
    void wait();

    /** Tasks executed to completion over the pool's lifetime. */
    std::uint64_t taskCount() const
    {
        return executed_.load(std::memory_order_relaxed);
    }

    /**
     * Tasks a worker popped from another worker's queue. Zero on a
     * 1-thread pool (there is no victim to steal from); at N > 1
     * threads the count depends on scheduling races, so it is
     * reported under the masked `sched.*` metric namespace.
     */
    std::uint64_t stealCount() const
    {
        return stolen_.load(std::memory_order_relaxed);
    }

  private:
    /** One worker's deque; the mutex arbitrates owner vs thieves. */
    struct WorkQueue
    {
        std::deque<Task> tasks;
        std::mutex mutex;
    };

    void workerLoop(std::size_t self);
    bool tryAcquire(std::size_t self, Task &out);

    std::vector<std::unique_ptr<WorkQueue>> queues_;
    std::vector<std::thread> workers_;
    std::atomic<bool> shutdown_{false};
    std::atomic<std::size_t> nextQueue_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> stolen_{0};

    /** Tasks submitted but not yet finished (for wait()). */
    std::size_t inflight_ = 0;
    std::mutex stateMutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
};

} // namespace nisqpp

#endif // NISQPP_ENGINE_THREAD_POOL_HH
