/**
 * @file
 * Tiered-decoding scenario: the paper's thesis operationalized on the
 * streaming pipeline. The lane-packed mesh decodes every round (or
 * window) and commits provisionally; a confidence signal over its own
 * telemetry escalates the hard tail to an exact software decoder with
 * Pauli-frame repair on disagreement. Sweeping the confidence
 * threshold maps the full accuracy-vs-latency-vs-escalation-rate
 * frontier between the pure-mesh and pure-software operating points,
 * with both baselines measured on the same noise stream (identical
 * seed per table) so every difference is decoder policy, not sampling.
 */

#include "engine/scenarios.hh"

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "engine/scenario.hh"
#include "sim/experiment.hh"
#include "stream/stream_sim.hh"

namespace nisqpp {
namespace scenarios {

namespace {

/** One streaming run of the frontier: a policy plus its latency model. */
struct TieredCell
{
    std::string label;
    /** >= 0: tiered decoder at this confidence threshold. */
    double threshold = -1.0;
    /** Baseline decoder family when threshold < 0. */
    std::string family = "sfq_mesh";
    StreamConfig config;
};

/** Escalation backend of every tiered cell in this scenario. */
constexpr const char *kExactFamily = "union_find";

/**
 * Run every cell through the engine's job pool (results land in cell
 * order at any thread count) and fold each cell's deterministic
 * stream/decoder counters into the scenario sink in fixed cell order.
 */
std::vector<StreamingResult>
runTieredCells(ScenarioContext &ctx, const SurfaceLattice &lattice,
               const std::vector<TieredCell> &cells)
{
    std::vector<StreamingResult> results(cells.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        jobs.push_back([&cells, &results, &lattice, i] {
            const TieredCell &cell = cells[i];
            StreamConfig config = cell.config;
            config.lattice = &lattice;
            std::unique_ptr<Decoder> decoder;
            if (cell.threshold >= 0.0)
                decoder = tieredDecoderFactory(
                    MeshConfig::finalDesign(), kExactFamily,
                    cell.threshold)(lattice, ErrorType::Z);
            else
                decoder =
                    decoderFamilies()[decoderFamilyIndex(cell.family)]
                        .factory(lattice, ErrorType::Z);
            results[i] = runStream(config, *decoder);
        });
    }
    ctx.engine().runJobs(std::move(jobs));
    for (const StreamingResult &r : results)
        ctx.metrics().merge(r.metrics);
    return results;
}

/** The threshold grid: --escalate-threshold pins a single point. */
std::vector<double>
thresholdGrid(ScenarioContext &ctx)
{
    if (ctx.escalateThreshold() >= 0.0)
        return {ctx.escalateThreshold()};
    return {0.25, 0.50, 0.75, 0.90, 1.00};
}

/** Decodes that could have escalated: windows on windowed runs. */
std::size_t
decodeCount(const StreamingResult &r)
{
    return r.windows > 0 ? r.windows : r.rounds;
}

void
addResultRow(TablePrinter &table, const TieredCell &cell,
             const StreamingResult &r)
{
    const double decodes = static_cast<double>(decodeCount(r));
    table.addRow(
        {cell.label,
         cell.threshold >= 0.0 ? TablePrinter::num(cell.threshold, 3)
                               : std::string("-"),
         TablePrinter::num(r.logicalErrorRate, 3),
         std::to_string(r.escalations),
         TablePrinter::num(static_cast<double>(r.escalations) / decodes,
                           4),
         std::to_string(r.repairs),
         std::to_string(r.repairFrameFlips),
         TablePrinter::num(r.fEmpirical, 4),
         TablePrinter::num(r.serviceNs.mean(), 4),
         TablePrinter::num(r.servicePercentiles.p50, 4),
         TablePrinter::num(r.servicePercentiles.p99, 4),
         std::to_string(r.maxBacklogRounds),
         std::to_string(r.finalBacklogRounds)});
}

const std::vector<std::string> kColumns{
    "decoder",   "threshold",   "PL",       "escalated",
    "esc rate",  "repairs",     "frame flips", "f",
    "svc mean (ns)", "svc p50", "svc p99",  "max backlog",
    "final backlog"};

} // namespace

void
tieredDecode(ScenarioContext &ctx)
{
    ctx.note("=== tiered_decode: mesh-first decoding with "
             "confidence-based escalation ===");
    ctx.note("(every round is decoded by the SFQ mesh and committed "
             "provisionally; a confidence score over the mesh's own "
             "telemetry - cycles, resets, cap/quiescence exits - "
             "escalates low-confidence decodes to union-find, with "
             "Pauli-frame repair when the exact answer disagrees. "
             "Escalated rounds pay the mesh attempt plus the software "
             "latency on the virtual clock. All rows of a table share "
             "one noise stream, so differences are pure decoder "
             "policy.)\n");

    const std::vector<double> thresholds = thresholdGrid(ctx);

    // --- Frontier: per-round pipeline at the paper's operating point.
    const int d = 9;
    const std::size_t rounds =
        ctx.scaled({4000, 4000, 1u << 30}).maxTrials;
    Rng master(ctx.seed(0x71e4edULL));
    const std::uint64_t frontierSeed = master.split().next();
    const std::uint64_t windowedSeed = master.split().next();
    const SurfaceLattice lattice(d);

    std::vector<TieredCell> cells;
    auto baseConfig = [&](const std::string &latencyFamily) {
        StreamConfig config;
        config.physicalRate = 0.05;
        config.syndromeCycleNs = 400.0;
        config.rounds = rounds;
        config.seed = frontierSeed;
        config.latency = latencyFamily == "tiered"
                             ? StreamLatencyModel::tiered(kExactFamily, d)
                             : StreamLatencyModel::forFamily(
                                   latencyFamily, d);
        return config;
    };
    {
        TieredCell mesh;
        mesh.label = "sfq_mesh";
        mesh.config = baseConfig("sfq_mesh");
        cells.push_back(mesh);
    }
    for (double threshold : thresholds) {
        TieredCell cell;
        cell.label = "tiered";
        cell.threshold = threshold;
        cell.config = baseConfig("tiered");
        cells.push_back(cell);
    }
    {
        TieredCell uf;
        uf.label = kExactFamily;
        uf.family = kExactFamily;
        uf.config = baseConfig(kExactFamily);
        cells.push_back(uf);
    }
    const std::vector<StreamingResult> results =
        runTieredCells(ctx, lattice, cells);

    TablePrinter env({"key", "value"});
    env.addRow({"distance", std::to_string(d)});
    env.addRow({"physical error rate", "0.05"});
    env.addRow({"syndrome cycle (ns)", "400"});
    env.addRow({"rounds per cell", std::to_string(rounds)});
    env.addRow({"escalation backend", kExactFamily});
    ctx.table("tiered_env", env);

    TablePrinter frontier(kColumns);
    for (std::size_t i = 0; i < cells.size(); ++i)
        addResultRow(frontier, cells[i], results[i]);
    ctx.table("tiered_frontier_d9_400ns", frontier);

    // --- Windowed pipeline under faulty measurement: the mesh's
    // round-majority window decode escalates to union-find's true
    // spacetime matching.
    const int wd = 5;
    const std::size_t w = static_cast<std::size_t>(wd);
    std::size_t wrounds =
        ctx.scaled({2000, 2000, 1u << 30}).maxTrials;
    wrounds = std::max(w, wrounds - wrounds % w);
    const SurfaceLattice wlattice(wd);

    std::vector<TieredCell> wcells;
    auto windowConfig = [&](const std::string &latencyFamily) {
        StreamConfig config;
        config.physicalRate = 0.03;
        config.measurementFlipRate = 0.03;
        config.windowRounds = w;
        config.syndromeCycleNs = 400.0;
        config.rounds = wrounds;
        config.seed = windowedSeed;
        config.latency =
            latencyFamily == "tiered"
                ? StreamLatencyModel::tiered(kExactFamily, wd)
                : StreamLatencyModel::forFamily(latencyFamily, wd);
        return config;
    };
    {
        TieredCell mesh;
        mesh.label = "sfq_mesh (majority)";
        mesh.family = "sfq_mesh";
        mesh.config = windowConfig("sfq_mesh");
        wcells.push_back(mesh);
    }
    for (double threshold : thresholds) {
        TieredCell cell;
        cell.label = "tiered";
        cell.threshold = threshold;
        cell.config = windowConfig("tiered");
        wcells.push_back(cell);
    }
    {
        TieredCell uf;
        uf.label = std::string(kExactFamily) + " (spacetime)";
        uf.family = kExactFamily;
        uf.config = windowConfig(kExactFamily);
        wcells.push_back(uf);
    }
    const std::vector<StreamingResult> wresults =
        runTieredCells(ctx, wlattice, wcells);

    TablePrinter windowed(kColumns);
    for (std::size_t i = 0; i < wcells.size(); ++i)
        addResultRow(windowed, wcells[i], wresults[i]);
    ctx.table("tiered_windowed_d5_q3", windowed);

    ctx.note("\nreading the frontier: threshold 0 is pure mesh, 1.0 "
             "escalates everything the mesh didn't solve trivially; "
             "in between, PL tracks the exact baseline while the "
             "escalation rate (and with it the mean/p99 service time) "
             "stays a small fraction of the rounds - the rare hard "
             "windows buy exactness, the easy majority keeps the "
             "mesh's latency.");
}

} // namespace scenarios
} // namespace nisqpp
