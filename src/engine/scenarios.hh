/**
 * @file
 * Internal declarations of the scenario bodies (one per reproduced
 * figure/table); the registry in scenario.cc wires them to names.
 */

#ifndef NISQPP_ENGINE_SCENARIOS_HH
#define NISQPP_ENGINE_SCENARIOS_HH

namespace nisqpp {

class ScenarioContext;

namespace scenarios {

/** Analytic reproductions (no Monte Carlo). @{ */
void fig01Sqv(ScenarioContext &ctx);
void fig11Distance(ScenarioContext &ctx);
void table1Circuits(ScenarioContext &ctx);
void table2Cells(ScenarioContext &ctx);
void table3Synthesis(ScenarioContext &ctx);
/** @} */

/** Monte Carlo sweeps through the parallel engine. @{ */
void fig10Final(ScenarioContext &ctx);
void fig10Variants(ScenarioContext &ctx);
void fig10Cycles(ScenarioContext &ctx);
void table4Latency(ScenarioContext &ctx);
void table5Fit(ScenarioContext &ctx);
void microDecoders(ScenarioContext &ctx);
void microHotpath(ScenarioContext &ctx);
/** @} */

/** Streaming decode pipeline (scenarios_stream.cc). @{ */
void fig05Backlog(ScenarioContext &ctx);
void fig06Runtime(ScenarioContext &ctx);
void streamingBacklog(ScenarioContext &ctx);
/** @} */

/** Noise subsystem: faulty measurement + channel zoo
 * (scenarios_noise.cc). @{ */
void fig10Measurement(ScenarioContext &ctx);
void noiseZoo(ScenarioContext &ctx);
/** @} */

/** Tiered mesh-first decoding frontier (scenarios_tiered.cc). */
void tieredDecode(ScenarioContext &ctx);

/** Fault-injected streaming degradation (scenarios_faults.cc). */
void faultSweep(ScenarioContext &ctx);

} // namespace scenarios
} // namespace nisqpp

#endif // NISQPP_ENGINE_SCENARIOS_HH
