#include "engine/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "common/logging.hh"
#include "decoders/workspace.hh"
#include "engine/thread_pool.hh"
#include "obs/trace.hh"
#include "surface/lattice.hh"

namespace nisqpp {

std::size_t
batchLanesFromEnv(std::size_t fallback)
{
    const char *env = std::getenv("NISQPP_BATCH");
    if (!env || !*env)
        return fallback;
    // Validated like NISQPP_TRIALS: zero, negative, non-numeric,
    // fractional and absurdly large values all warn and keep the
    // previous setting (strtoull would silently wrap negatives and
    // accept "0" as a lane count).
    char *end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || (end && *end != '\0') || !std::isfinite(v) ||
        v < 1 || v > static_cast<double>(kMaxBatchLanes) ||
        v != std::floor(v)) {
        warn("NISQPP_BATCH='" + std::string(env) +
             "' is not an integer in [1, " +
             std::to_string(kMaxBatchLanes) +
             "]; keeping batch lanes = " + std::to_string(fallback));
        return fallback;
    }
    return static_cast<std::size_t>(v);
}

std::vector<double>
SweepConfig::logSpaced(double lo, double hi, int count)
{
    require(lo > 0 && hi > lo && count >= 2,
            "logSpaced: bad range");
    std::vector<double> out;
    out.reserve(count);
    const double step = (std::log(hi) - std::log(lo)) / (count - 1);
    for (int i = 0; i < count; ++i)
        out.push_back(std::exp(std::log(lo) + step * i));
    return out;
}

namespace {

/** Fixed trial budget and seed of one shard of a cell. */
struct Shard
{
    std::size_t trials;
    std::uint64_t seed;
};

/**
 * Split a cell's maxTrials budget into shardTrials-sized shards, each
 * with its own child stream off the cell seed. Depends only on (rule,
 * shardTrials, seed) — never on the thread count.
 */
std::vector<Shard>
planShards(const StopRule &rule, std::size_t shardTrials,
           std::uint64_t cellSeed)
{
    require(shardTrials > 0, "Engine: shardTrials must be positive");
    std::vector<Shard> shards;
    Rng cellRng(cellSeed);
    for (std::size_t done = 0; done < rule.maxTrials;
         done += shardTrials) {
        Shard shard;
        shard.trials = std::min(shardTrials, rule.maxTrials - done);
        Rng child = cellRng.split();
        shard.seed = child.next();
        shards.push_back(shard);
    }
    return shards;
}

/** Run one shard to completion: exactly shard.trials rounds. */
MonteCarloResult
runShard(const CellSpec &spec, const Shard &shard)
{
    // One trial workspace per worker thread, warm across every shard
    // (and cell) that thread ever runs: decoders borrow all scratch
    // from it, so steady-state decoding performs no heap allocation.
    static thread_local TrialWorkspace workspace;

    obs::TraceSpan span(obs::Stage::Shard);
    auto z_dec = (*spec.factory)(*spec.lattice, ErrorType::Z);
    std::unique_ptr<Decoder> x_dec;
    const std::unique_ptr<NoiseModel> model =
        makeNoiseModel(spec.noise, spec.physicalRate);
    if (model->producesX())
        x_dec = (*spec.factory)(*spec.lattice, ErrorType::X);
    LifetimeSimulator sim(*spec.lattice, *model, *z_dec, x_dec.get(),
                          shard.seed, spec.throughCircuits, &workspace);
    sim.setLifetimeMode(spec.lifetimeMode);
    sim.setBatchLanes(spec.batchLanes);
    sim.setMeasurementWindow(spec.windowRounds);
    StopRule fixed;
    fixed.minTrials = fixed.maxTrials = shard.trials;
    fixed.targetFailures = ~std::size_t{0};
    MonteCarloResult result = sim.run(fixed);

    // Attach this shard's deterministic work counters to the result:
    // they ride through the ordered prefix merge with it, so shards
    // discarded past the stop index drop their counters too and the
    // aggregate stays byte-identical at any thread count. The decoders
    // are shard-private, so their exported totals are exactly this
    // shard's work.
    result.metrics.add("engine.shards");
    result.metrics.add("engine.trials", result.trials);
    result.metrics.add("engine.failures", result.failures);
    z_dec->exportMetrics(result.metrics);
    if (x_dec)
        x_dec->exportMetrics(result.metrics);
    return result;
}

} // namespace

/**
 * Ordered-merge state of one in-flight cell. Shards complete in any
 * order; the holder of the mutex advances the merge frontier over the
 * contiguous prefix of finished shards, checking the stop rule after
 * each merge. Once the rule is satisfied at shard k the stop index is
 * published so not-yet-claimed shards past k are never run — they can
 * never affect the result, which is always the ordered prefix [0, k].
 *
 * Shards are claimed in index order through nextShard by a bounded set
 * of pump chains (the wave), so an early-stopped cell never pays
 * submit/queue churn for the rest of its trial budget.
 */
struct Engine::CellRun
{
    CellSpec spec;
    std::vector<Shard> shards;
    std::vector<std::unique_ptr<MonteCarloResult>> pending;
    MonteCarloResult acc;
    std::size_t frontier = 0; ///< first shard not yet merged
    std::size_t stop = 0;     ///< shards >= stop are never merged
    std::atomic<std::size_t> stopHint{0};
    std::atomic<std::size_t> nextShard{0}; ///< next index to claim
    std::mutex mutex;

    void onShardDone(std::size_t index, MonteCarloResult result)
    {
        std::lock_guard<std::mutex> lock(mutex);
        pending[index] =
            std::make_unique<MonteCarloResult>(std::move(result));
        while (frontier < stop && pending[frontier]) {
            acc.merge(*pending[frontier]);
            pending[frontier].reset();
            ++frontier;
            if (acc.trials >= spec.rule.minTrials &&
                acc.failures >= spec.rule.targetFailures) {
                stop = frontier;
                stopHint.store(frontier, std::memory_order_release);
                break;
            }
        }
    }
};

Engine::Engine(EngineOptions options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.threads))
{
    require(options_.shardTrials > 0,
            "Engine: shardTrials must be positive");
}

Engine::~Engine() = default;

int
Engine::threads() const
{
    return pool_->threadCount();
}

void
Engine::pumpCell(CellRun &run)
{
    pool_->submit([this, &run] {
        // Cooperative interruption: once a checkpointed run sees the
        // flag, chains stop claiming and the pool drains naturally;
        // executeInvocation then persists the drained state. Gated on
        // the policy so stray flags never affect plain runs.
        if (checkpointEnabled_ && ckpt::interruptRequested())
            return;
        // Claim the next unstarted shard. Claims are sequential, so
        // once the claim passes the published stop index every lower
        // shard is already running or done and this chain can die —
        // the remaining budget is never submitted at all.
        const std::size_t i =
            run.nextShard.fetch_add(1, std::memory_order_relaxed);
        if (i >= run.shards.size() ||
            i >= run.stopHint.load(std::memory_order_acquire))
            return;
        run.onShardDone(i, runShard(run.spec, run.shards[i]));
        maybeWriteCheckpoint();
        // Resubmitting before this task returns keeps the pool's
        // in-flight count nonzero, so wait() cannot wake early. The
        // chain dies once every shard below the (published) stop
        // index has been claimed; a stop racing in after this check
        // just makes the successor claim-and-exit.
        const std::size_t limit =
            std::min(run.shards.size(),
                     run.stopHint.load(std::memory_order_acquire));
        if (run.nextShard.load(std::memory_order_relaxed) < limit)
            pumpCell(run);
    });
}

void
Engine::prepareCell(const CellSpec &spec, CellRun &run)
{
    require(spec.lattice && spec.factory,
            "Engine: cell needs a lattice and a decoder factory");
    require(spec.batchLanes <= kMaxBatchLanes,
            "Engine: batchLanes exceeds kMaxBatchLanes");
    run.spec = spec;
    if (run.spec.batchLanes == 0)
        run.spec.batchLanes = options_.batchLanes;
    run.shards = planShards(spec.rule, options_.shardTrials, spec.seed);
    run.pending.resize(run.shards.size());
    run.stop = run.shards.size();
    run.stopHint.store(run.shards.size(), std::memory_order_release);
    run.nextShard.store(0, std::memory_order_release);
}

void
Engine::schedulePumps(CellRun &run)
{
    // Schedule the cell as a wave of claim chains instead of its whole
    // shard budget: enough chains to keep every worker busy (2x the
    // pool, so a finishing shard always finds a queued successor), but
    // never more than the cell still needs (a restored cell starts at
    // its frontier; a restored-stopped cell schedules nothing).
    const std::size_t start =
        run.nextShard.load(std::memory_order_relaxed);
    const std::size_t limit =
        std::min(run.shards.size(),
                 run.stopHint.load(std::memory_order_acquire));
    const std::size_t remaining = limit > start ? limit - start : 0;
    const std::size_t wave =
        std::min(remaining,
                 2 * static_cast<std::size_t>(pool_->threadCount()));
    for (std::size_t i = 0; i < wave; ++i)
        pumpCell(run);
}

MonteCarloResult
Engine::collectCell(CellRun &run)
{
    MonteCarloResult result = std::move(run.acc);
    result.metrics.add("engine.cells");
    result.finalize();
    // Fold in collect order, which is fixed (runSweep collects in grid
    // order, runCell immediately) — so engine totals inherit the
    // per-cell determinism.
    totals_.merge(result.metrics);
    return result;
}

void
Engine::runtimeMetricsInto(obs::MetricSet &out) const
{
    out.maxGauge("sched.pool.threads",
                 static_cast<std::uint64_t>(pool_->threadCount()));
    out.add("sched.pool.tasks", pool_->taskCount());
    out.add("sched.pool.steals", pool_->stealCount());
}

void
Engine::setCheckpointPolicy(const ckpt::CheckpointPolicy &policy)
{
    require(invocationIndex_ == 0,
            "Engine: set the checkpoint policy before running");
    require(!policy.enabled() || policy.intervalShards >= 1,
            "Engine: checkpoint interval must be >= 1 shard");
    ckpt_ = policy;
    checkpointEnabled_ = policy.enabled();
}

void
Engine::resumeFrom(ckpt::CheckpointLedger ledger)
{
    require(invocationIndex_ == 0,
            "Engine: resume before running");
    for (std::size_t i = 0; i + 1 < ledger.invocations.size(); ++i)
        if (!ledger.invocations[i].complete)
            throw ckpt::CheckpointError(
                "checkpoint malformed: invocation " + std::to_string(i) +
                " is incomplete but not last");
    restored_ = std::move(ledger);
    hasRestored_ = true;
}

namespace {

/**
 * Canonical one-line description of a cell: everything the result
 * depends on (and nothing it doesn't — thread count and batch lanes
 * are result-invariant by the engine's determinism contract, so a run
 * may legitimately resume with different values). Doubles are printed
 * as IEEE-754 bit patterns so the fingerprint is exact.
 */
std::string
describeCell(const CellSpec &spec, std::size_t shardCount)
{
    std::ostringstream os;
    os << "d=" << spec.lattice->distance()
       << " p=" << ckpt::hexBits(spec.physicalRate)
       << " noise=" << noiseKindName(spec.noise.kind)
       << " eta=" << ckpt::hexBits(spec.noise.eta)
       << " q=" << ckpt::hexBits(spec.noise.q)
       << " window=" << spec.windowRounds
       << " circuits=" << (spec.throughCircuits ? 1 : 0)
       << " lifetime=" << (spec.lifetimeMode ? 1 : 0)
       << " rule=" << spec.rule.minTrials << '/' << spec.rule.maxTrials
       << '/' << spec.rule.targetFailures << " seed=" << spec.seed
       << " shards=" << shardCount;
    return os.str();
}

std::int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

std::string
Engine::describeInvocation(
    const std::vector<std::unique_ptr<CellRun>> &runs) const
{
    std::ostringstream os;
    os << "shardTrials=" << options_.shardTrials
       << " cells=" << runs.size();
    for (const auto &run : runs)
        os << " | " << describeCell(run->spec, run->shards.size());
    return os.str();
}

ckpt::CellLedger
Engine::snapshotCell(CellRun &run)
{
    std::lock_guard<std::mutex> lock(run.mutex);
    ckpt::CellLedger cell;
    cell.frontier = run.frontier;
    // stop < shards.size() is only ever published with frontier ==
    // stop (the rule fires at merge time), so frontier >= stop is
    // exactly "nothing left to schedule".
    cell.stopped = run.frontier >= run.stop;
    cell.partial = run.acc;
    return cell;
}

ckpt::InvocationLedger
Engine::snapshotActive(bool complete)
{
    ckpt::InvocationLedger inv;
    inv.configText = activeConfig_;
    inv.complete = complete;
    inv.cells.reserve(activeRuns_.size());
    for (CellRun *run : activeRuns_)
        inv.cells.push_back(snapshotCell(*run));
    return inv;
}

void
Engine::writeLedgerLocked(const ckpt::InvocationLedger &active)
{
    ckpt::CheckpointLedger ledger;
    ledger.scope = ckpt_.scope;
    ledger.invocations = doneInvocations_;
    ledger.invocations.push_back(active);
    ckpt::writeCheckpoint(ckpt_.path, ledger);
    ckptWrites_.fetch_add(1, std::memory_order_relaxed);
    lastWriteNs_.store(steadyNowNs(), std::memory_order_relaxed);
}

void
Engine::maybeWriteCheckpoint()
{
    if (!checkpointEnabled_)
        return;
    const std::size_t n =
        ckptSinceWrite_.fetch_add(1, std::memory_order_relaxed) + 1;
    bool due = n >= ckpt_.intervalShards;
    if (!due && ckpt_.intervalSeconds > 0.0) {
        const std::int64_t last =
            lastWriteNs_.load(std::memory_order_relaxed);
        due = last != 0 &&
              static_cast<double>(steadyNowNs() - last) * 1e-9 >=
                  ckpt_.intervalSeconds;
    }
    if (!due)
        return;
    // One writer at a time; a contended worker just keeps computing —
    // the writer's snapshot already covers its shard.
    std::unique_lock<std::mutex> lock(ckptWriteMutex_,
                                      std::try_to_lock);
    if (!lock.owns_lock())
        return;
    ckptSinceWrite_.store(0, std::memory_order_relaxed);
    try {
        writeLedgerLocked(snapshotActive(false));
    } catch (const ckpt::CheckpointError &err) {
        // A failed periodic write must not kill hours of simulation;
        // the end-of-invocation write rethrows if the disk is truly
        // gone.
        warn(std::string("periodic checkpoint write failed: ") +
             err.what());
    }
}

void
Engine::executeInvocation(std::vector<std::unique_ptr<CellRun>> &runs)
{
    const std::size_t inv = invocationIndex_++;
    const bool tracked = checkpointEnabled_ || hasRestored_;
    if (!tracked) {
        for (auto &run : runs)
            schedulePumps(*run);
        pool_->wait();
        return;
    }

    activeConfig_ = describeInvocation(runs);
    if (hasRestored_ && inv < restored_.invocations.size()) {
        const ckpt::InvocationLedger &rinv = restored_.invocations[inv];
        if (rinv.configText != activeConfig_)
            throw ckpt::CheckpointError(
                "checkpoint config mismatch in invocation " +
                std::to_string(inv) +
                " — the checkpoint was written by a different "
                "configuration (grid, rates, seed, or shardTrials)\n"
                "  checkpoint: " + rinv.configText + "\n"
                "  this run:   " + activeConfig_);
        if (rinv.cells.size() != runs.size())
            throw ckpt::CheckpointError(
                "checkpoint cell count mismatch in invocation " +
                std::to_string(inv) + ": checkpoint has " +
                std::to_string(rinv.cells.size()) +
                ", this run plans " + std::to_string(runs.size()));
        for (std::size_t j = 0; j < runs.size(); ++j)
            applyRestoredCell(*runs[j], rinv.cells[j], inv, j);
        resumed_ = true;
        if (rinv.complete) {
            // Nothing to recompute and nothing new to persist.
            doneInvocations_.push_back(rinv);
            return;
        }
    }

    activeRuns_.clear();
    activeRuns_.reserve(runs.size());
    for (auto &run : runs)
        activeRuns_.push_back(run.get());
    for (auto &run : runs)
        schedulePumps(*run);
    pool_->wait();

    const bool interrupted =
        checkpointEnabled_ && ckpt::interruptRequested();
    if (checkpointEnabled_) {
        std::lock_guard<std::mutex> lock(ckptWriteMutex_);
        ckpt::InvocationLedger closing = snapshotActive(!interrupted);
        writeLedgerLocked(closing);
        ckptSinceWrite_.store(0, std::memory_order_relaxed);
        activeRuns_.clear();
        doneInvocations_.push_back(std::move(closing));
    } else {
        activeRuns_.clear();
    }
    if (interrupted)
        throw ckpt::InterruptedError(ckpt_.path);
}

void
Engine::applyRestoredCell(CellRun &run, const ckpt::CellLedger &cell,
                          std::size_t invocation, std::size_t index)
{
    if (cell.frontier > run.shards.size())
        throw ckpt::CheckpointError(
            "checkpoint frontier " + std::to_string(cell.frontier) +
            " exceeds the " + std::to_string(run.shards.size()) +
            "-shard plan of cell " + std::to_string(index) +
            " in invocation " + std::to_string(invocation));
    run.acc = cell.partial;
    run.frontier = cell.frontier;
    run.stop = cell.stopped ? cell.frontier : run.shards.size();
    run.stopHint.store(run.stop, std::memory_order_release);
    run.nextShard.store(cell.frontier, std::memory_order_release);
    restoredCells_ += 1;
    restoredShards_ += cell.frontier;
}

void
Engine::checkpointMetricsInto(obs::MetricSet &out) const
{
    if (!checkpointEnabled_ && !resumed_)
        return;
    out.add("ckpt.writes",
            ckptWrites_.load(std::memory_order_relaxed));
    out.add("ckpt.restored_cells", restoredCells_);
    out.add("ckpt.restored_shards", restoredShards_);
    out.maxGauge("ckpt.resumed", resumed_ ? 1 : 0);
    const std::int64_t last =
        lastWriteNs_.load(std::memory_order_relaxed);
    if (last != 0)
        out.maxGauge("ckpt.last_write_age_ms",
                     static_cast<std::uint64_t>(
                         (steadyNowNs() - last) / 1000000));
}

MonteCarloResult
Engine::runCell(const CellSpec &spec)
{
    std::vector<std::unique_ptr<CellRun>> runs;
    runs.push_back(std::make_unique<CellRun>());
    prepareCell(spec, *runs.front());
    executeInvocation(runs);
    return collectCell(*runs.front());
}

void
Engine::runJobs(std::vector<std::function<void()>> jobs)
{
    for (auto &job : jobs) {
        require(static_cast<bool>(job), "runJobs: empty job");
        pool_->submit(std::move(job));
    }
    pool_->wait();
}

SweepResult
Engine::runSweep(const SweepConfig &config, const DecoderFactory &factory)
{
    require(!config.physicalRates.empty(),
            "runSweep: no physical rates given");

    // Lattices are shared read-only across every shard of a distance.
    std::vector<std::unique_ptr<SurfaceLattice>> lattices;
    lattices.reserve(config.distances.size());
    for (int d : config.distances)
        lattices.push_back(std::make_unique<SurfaceLattice>(d));

    // Cell seeds are drawn in fixed grid order from the master stream,
    // mirroring the legacy serial sweep's per-cell split() sequence.
    Rng master(config.seed);
    const std::size_t cols = config.physicalRates.size();
    std::vector<std::unique_ptr<CellRun>> runs;
    runs.reserve(config.distances.size() * cols);
    for (std::size_t di = 0; di < config.distances.size(); ++di) {
        for (double p : config.physicalRates) {
            CellSpec spec;
            spec.lattice = lattices[di].get();
            spec.physicalRate = p;
            spec.noise = config.noise;
            spec.windowRounds = config.windowRounds;
            spec.throughCircuits = config.throughCircuits;
            spec.lifetimeMode = config.lifetimeMode;
            spec.rule = config.stopRule;
            Rng child = master.split();
            spec.seed = child.next();
            spec.factory = &factory;
            runs.push_back(std::make_unique<CellRun>());
            prepareCell(spec, *runs.back());
        }
    }
    executeInvocation(runs);

    SweepResult result;
    for (std::size_t di = 0; di < config.distances.size(); ++di) {
        ErrorRateCurve curve;
        curve.distance = config.distances[di];
        std::vector<MonteCarloResult> row;
        for (std::size_t pi = 0; pi < cols; ++pi) {
            MonteCarloResult mc = collectCell(*runs[di * cols + pi]);
            curve.p.push_back(config.physicalRates[pi]);
            curve.pl.push_back(mc.logicalErrorRate);
            row.push_back(std::move(mc));
        }
        result.curves.push_back(std::move(curve));
        result.cells.push_back(std::move(row));
    }
    return result;
}

} // namespace nisqpp
