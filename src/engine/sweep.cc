#include "engine/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <mutex>

#include "common/logging.hh"
#include "decoders/workspace.hh"
#include "engine/thread_pool.hh"
#include "obs/trace.hh"

namespace nisqpp {

std::size_t
batchLanesFromEnv(std::size_t fallback)
{
    const char *env = std::getenv("NISQPP_BATCH");
    if (!env || !*env)
        return fallback;
    // Validated like NISQPP_TRIALS: zero, negative, non-numeric,
    // fractional and absurdly large values all warn and keep the
    // previous setting (strtoull would silently wrap negatives and
    // accept "0" as a lane count).
    char *end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || (end && *end != '\0') || !std::isfinite(v) ||
        v < 1 || v > static_cast<double>(kMaxBatchLanes) ||
        v != std::floor(v)) {
        warn("NISQPP_BATCH='" + std::string(env) +
             "' is not an integer in [1, " +
             std::to_string(kMaxBatchLanes) +
             "]; keeping batch lanes = " + std::to_string(fallback));
        return fallback;
    }
    return static_cast<std::size_t>(v);
}

std::vector<double>
SweepConfig::logSpaced(double lo, double hi, int count)
{
    require(lo > 0 && hi > lo && count >= 2,
            "logSpaced: bad range");
    std::vector<double> out;
    out.reserve(count);
    const double step = (std::log(hi) - std::log(lo)) / (count - 1);
    for (int i = 0; i < count; ++i)
        out.push_back(std::exp(std::log(lo) + step * i));
    return out;
}

namespace {

/** Fixed trial budget and seed of one shard of a cell. */
struct Shard
{
    std::size_t trials;
    std::uint64_t seed;
};

/**
 * Split a cell's maxTrials budget into shardTrials-sized shards, each
 * with its own child stream off the cell seed. Depends only on (rule,
 * shardTrials, seed) — never on the thread count.
 */
std::vector<Shard>
planShards(const StopRule &rule, std::size_t shardTrials,
           std::uint64_t cellSeed)
{
    require(shardTrials > 0, "Engine: shardTrials must be positive");
    std::vector<Shard> shards;
    Rng cellRng(cellSeed);
    for (std::size_t done = 0; done < rule.maxTrials;
         done += shardTrials) {
        Shard shard;
        shard.trials = std::min(shardTrials, rule.maxTrials - done);
        Rng child = cellRng.split();
        shard.seed = child.next();
        shards.push_back(shard);
    }
    return shards;
}

/** Run one shard to completion: exactly shard.trials rounds. */
MonteCarloResult
runShard(const CellSpec &spec, const Shard &shard)
{
    // One trial workspace per worker thread, warm across every shard
    // (and cell) that thread ever runs: decoders borrow all scratch
    // from it, so steady-state decoding performs no heap allocation.
    static thread_local TrialWorkspace workspace;

    obs::TraceSpan span(obs::Stage::Shard);
    auto z_dec = (*spec.factory)(*spec.lattice, ErrorType::Z);
    std::unique_ptr<Decoder> x_dec;
    const std::unique_ptr<NoiseModel> model =
        makeNoiseModel(spec.noise, spec.physicalRate);
    if (model->producesX())
        x_dec = (*spec.factory)(*spec.lattice, ErrorType::X);
    LifetimeSimulator sim(*spec.lattice, *model, *z_dec, x_dec.get(),
                          shard.seed, spec.throughCircuits, &workspace);
    sim.setLifetimeMode(spec.lifetimeMode);
    sim.setBatchLanes(spec.batchLanes);
    sim.setMeasurementWindow(spec.windowRounds);
    StopRule fixed;
    fixed.minTrials = fixed.maxTrials = shard.trials;
    fixed.targetFailures = ~std::size_t{0};
    MonteCarloResult result = sim.run(fixed);

    // Attach this shard's deterministic work counters to the result:
    // they ride through the ordered prefix merge with it, so shards
    // discarded past the stop index drop their counters too and the
    // aggregate stays byte-identical at any thread count. The decoders
    // are shard-private, so their exported totals are exactly this
    // shard's work.
    result.metrics.add("engine.shards");
    result.metrics.add("engine.trials", result.trials);
    result.metrics.add("engine.failures", result.failures);
    z_dec->exportMetrics(result.metrics);
    if (x_dec)
        x_dec->exportMetrics(result.metrics);
    return result;
}

} // namespace

/**
 * Ordered-merge state of one in-flight cell. Shards complete in any
 * order; the holder of the mutex advances the merge frontier over the
 * contiguous prefix of finished shards, checking the stop rule after
 * each merge. Once the rule is satisfied at shard k the stop index is
 * published so not-yet-claimed shards past k are never run — they can
 * never affect the result, which is always the ordered prefix [0, k].
 *
 * Shards are claimed in index order through nextShard by a bounded set
 * of pump chains (the wave), so an early-stopped cell never pays
 * submit/queue churn for the rest of its trial budget.
 */
struct Engine::CellRun
{
    CellSpec spec;
    std::vector<Shard> shards;
    std::vector<std::unique_ptr<MonteCarloResult>> pending;
    MonteCarloResult acc;
    std::size_t frontier = 0; ///< first shard not yet merged
    std::size_t stop = 0;     ///< shards >= stop are never merged
    std::atomic<std::size_t> stopHint{0};
    std::atomic<std::size_t> nextShard{0}; ///< next index to claim
    std::mutex mutex;

    void onShardDone(std::size_t index, MonteCarloResult result)
    {
        std::lock_guard<std::mutex> lock(mutex);
        pending[index] =
            std::make_unique<MonteCarloResult>(std::move(result));
        while (frontier < stop && pending[frontier]) {
            acc.merge(*pending[frontier]);
            pending[frontier].reset();
            ++frontier;
            if (acc.trials >= spec.rule.minTrials &&
                acc.failures >= spec.rule.targetFailures) {
                stop = frontier;
                stopHint.store(frontier, std::memory_order_release);
                break;
            }
        }
    }
};

Engine::Engine(EngineOptions options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.threads))
{
    require(options_.shardTrials > 0,
            "Engine: shardTrials must be positive");
}

Engine::~Engine() = default;

int
Engine::threads() const
{
    return pool_->threadCount();
}

void
Engine::pumpCell(CellRun &run)
{
    pool_->submit([this, &run] {
        // Claim the next unstarted shard. Claims are sequential, so
        // once the claim passes the published stop index every lower
        // shard is already running or done and this chain can die —
        // the remaining budget is never submitted at all.
        const std::size_t i =
            run.nextShard.fetch_add(1, std::memory_order_relaxed);
        if (i >= run.shards.size() ||
            i >= run.stopHint.load(std::memory_order_acquire))
            return;
        run.onShardDone(i, runShard(run.spec, run.shards[i]));
        // Resubmitting before this task returns keeps the pool's
        // in-flight count nonzero, so wait() cannot wake early. The
        // chain dies once every shard below the (published) stop
        // index has been claimed; a stop racing in after this check
        // just makes the successor claim-and-exit.
        const std::size_t limit =
            std::min(run.shards.size(),
                     run.stopHint.load(std::memory_order_acquire));
        if (run.nextShard.load(std::memory_order_relaxed) < limit)
            pumpCell(run);
    });
}

void
Engine::scheduleCell(const CellSpec &spec, CellRun &run)
{
    require(spec.lattice && spec.factory,
            "Engine: cell needs a lattice and a decoder factory");
    require(spec.batchLanes <= kMaxBatchLanes,
            "Engine: batchLanes exceeds kMaxBatchLanes");
    run.spec = spec;
    if (run.spec.batchLanes == 0)
        run.spec.batchLanes = options_.batchLanes;
    run.shards = planShards(spec.rule, options_.shardTrials, spec.seed);
    run.pending.resize(run.shards.size());
    run.stop = run.shards.size();
    run.stopHint.store(run.shards.size(), std::memory_order_release);
    run.nextShard.store(0, std::memory_order_release);

    // Schedule the cell as a wave of claim chains instead of its whole
    // shard budget: enough chains to keep every worker busy (2x the
    // pool, so a finishing shard always finds a queued successor), but
    // never more than the cell could use.
    const std::size_t wave =
        std::min(run.shards.size(),
                 2 * static_cast<std::size_t>(pool_->threadCount()));
    for (std::size_t i = 0; i < wave; ++i)
        pumpCell(run);
}

MonteCarloResult
Engine::collectCell(CellRun &run)
{
    MonteCarloResult result = std::move(run.acc);
    result.metrics.add("engine.cells");
    result.finalize();
    // Fold in collect order, which is fixed (runSweep collects in grid
    // order, runCell immediately) — so engine totals inherit the
    // per-cell determinism.
    totals_.merge(result.metrics);
    return result;
}

void
Engine::runtimeMetricsInto(obs::MetricSet &out) const
{
    out.maxGauge("sched.pool.threads",
                 static_cast<std::uint64_t>(pool_->threadCount()));
    out.add("sched.pool.tasks", pool_->taskCount());
    out.add("sched.pool.steals", pool_->stealCount());
}

MonteCarloResult
Engine::runCell(const CellSpec &spec)
{
    CellRun run;
    scheduleCell(spec, run);
    pool_->wait();
    return collectCell(run);
}

void
Engine::runJobs(std::vector<std::function<void()>> jobs)
{
    for (auto &job : jobs) {
        require(static_cast<bool>(job), "runJobs: empty job");
        pool_->submit(std::move(job));
    }
    pool_->wait();
}

SweepResult
Engine::runSweep(const SweepConfig &config, const DecoderFactory &factory)
{
    require(!config.physicalRates.empty(),
            "runSweep: no physical rates given");

    // Lattices are shared read-only across every shard of a distance.
    std::vector<std::unique_ptr<SurfaceLattice>> lattices;
    lattices.reserve(config.distances.size());
    for (int d : config.distances)
        lattices.push_back(std::make_unique<SurfaceLattice>(d));

    // Cell seeds are drawn in fixed grid order from the master stream,
    // mirroring the legacy serial sweep's per-cell split() sequence.
    Rng master(config.seed);
    const std::size_t cols = config.physicalRates.size();
    std::vector<std::unique_ptr<CellRun>> runs;
    runs.reserve(config.distances.size() * cols);
    for (std::size_t di = 0; di < config.distances.size(); ++di) {
        for (double p : config.physicalRates) {
            CellSpec spec;
            spec.lattice = lattices[di].get();
            spec.physicalRate = p;
            spec.noise = config.noise;
            spec.windowRounds = config.windowRounds;
            spec.throughCircuits = config.throughCircuits;
            spec.lifetimeMode = config.lifetimeMode;
            spec.rule = config.stopRule;
            Rng child = master.split();
            spec.seed = child.next();
            spec.factory = &factory;
            runs.push_back(std::make_unique<CellRun>());
            scheduleCell(spec, *runs.back());
        }
    }
    pool_->wait();

    SweepResult result;
    for (std::size_t di = 0; di < config.distances.size(); ++di) {
        ErrorRateCurve curve;
        curve.distance = config.distances[di];
        std::vector<MonteCarloResult> row;
        for (std::size_t pi = 0; pi < cols; ++pi) {
            MonteCarloResult mc = collectCell(*runs[di * cols + pi]);
            curve.p.push_back(config.physicalRates[pi]);
            curve.pl.push_back(mc.logicalErrorRate);
            row.push_back(std::move(mc));
        }
        result.curves.push_back(std::move(curve));
        result.cells.push_back(std::move(row));
    }
    return result;
}

} // namespace nisqpp
