/**
 * @file
 * Streaming scenario bodies: the backlog/runtime paper claims measured
 * on the live streaming decode pipeline instead of (only) the Section
 * III closed forms. The streaming_backlog family sweeps decoder x
 * distance x cycle time through Engine::runJobs (one deterministic job
 * per cell, so aggregates are byte-identical at any thread count), and
 * fig05_backlog / fig06_runtime derive their operating ratios from
 * streaming measurements, keeping the closed-form model as cross-check.
 */

#include "engine/scenarios.hh"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "backlog/backlog_sim.hh"
#include "circuits/benchmarks.hh"
#include "circuits/decompose.hh"
#include "engine/scenario.hh"
#include "sim/experiment.hh"
#include "stream/stream_sim.hh"

namespace nisqpp {
namespace scenarios {

namespace {

/** Fully specified streaming cell: family index + run configuration. */
struct StreamCell
{
    std::size_t family = 0;
    int distance = 3;
    StreamConfig config;
};

/**
 * Build the cells of a families x distances x cycle-times streaming
 * grid at dephasing p = 5%, drawing per-cell seeds from @p masterSeed
 * in fixed grid order (so the grid is reproducible and thread-count
 * invariant). @p families holds decoderFamilies() indices.
 */
std::vector<StreamCell>
makeStreamCells(const std::vector<std::size_t> &families,
                const std::vector<int> &distances,
                const std::vector<double> &cycles, std::size_t rounds,
                std::uint64_t masterSeed)
{
    Rng master(masterSeed);
    std::vector<StreamCell> cells;
    for (std::size_t fi : families)
        for (int d : distances)
            for (double cycleNs : cycles) {
                StreamCell cell;
                cell.family = fi;
                cell.distance = d;
                cell.config.physicalRate = 0.05;
                cell.config.syndromeCycleNs = cycleNs;
                cell.config.rounds = rounds;
                cell.config.latency = StreamLatencyModel::forFamily(
                    decoderFamilies()[fi].name, d);
                Rng child = master.split();
                cell.config.seed = child.next();
                cells.push_back(cell);
            }
    return cells;
}

/** Indices of every registered decoder family. */
std::vector<std::size_t>
allFamilies()
{
    std::vector<std::size_t> indices(decoderFamilies().size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;
    return indices;
}

/**
 * Run every cell through the engine's job pool; results land in cell
 * order regardless of the thread count (each job is deterministic and
 * owns one slot). Lattices are built once per distance and shared
 * read-only across cells.
 */
std::vector<StreamingResult>
runStreamCells(ScenarioContext &ctx, const std::vector<StreamCell> &cells)
{
    std::vector<std::unique_ptr<SurfaceLattice>> lattices;
    std::vector<int> distances;
    for (const StreamCell &cell : cells)
        if (std::find(distances.begin(), distances.end(),
                      cell.distance) == distances.end()) {
            distances.push_back(cell.distance);
            lattices.push_back(
                std::make_unique<SurfaceLattice>(cell.distance));
        }

    std::vector<StreamingResult> results(cells.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(cells.size());
    // --batch / NISQPP_BATCH drives the batched streaming consumer the
    // same way it drives the engine's lane-packed trial batching;
    // results are byte-identical at any lane count.
    const std::size_t batchLanes = ctx.engine().options().batchLanes;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        jobs.push_back([&cells, &results, &lattices, &distances,
                        batchLanes, i] {
            const StreamCell &cell = cells[i];
            StreamConfig config = cell.config;
            config.batchLanes = batchLanes;
            for (std::size_t di = 0; di < distances.size(); ++di)
                if (distances[di] == cell.distance)
                    config.lattice = lattices[di].get();
            auto decoder = decoderFamilies()[cell.family].factory(
                *config.lattice, ErrorType::Z);
            results[i] = runStream(config, *decoder);
        });
    }
    ctx.engine().runJobs(std::move(jobs));
    // Fold each cell's deterministic stream.*/decoder.* counters into
    // the scenario sink in fixed cell order: every job is a
    // deterministic function of its cell config, so the fold is
    // thread-count-invariant.
    for (const StreamingResult &r : results)
        ctx.metrics().merge(r.metrics);
    return results;
}

std::string
us(double ns)
{
    return TablePrinter::num(ns / 1e3, 4);
}

} // namespace

void
streamingBacklog(ScenarioContext &ctx)
{
    ctx.note("=== streaming_backlog: live decode pipeline telemetry "
             "===");
    ctx.note("(dephasing p = 5%, lifetime protocol; per-round "
             "syndromes on a simulated wall clock feed each decoder "
             "through a bounded queue; decode latencies are modeled "
             "deterministically - mesh from its own simulated cycle "
             "count, software baselines from the Section III "
             "reference points)\n");

    const std::size_t rounds =
        ctx.scaled({4000, 4000, 1u << 30}).maxTrials;
    const std::vector<StreamCell> cells =
        makeStreamCells(allFamilies(), {3, 5, 7, 9}, {400.0, 1000.0},
                        rounds, ctx.seed(0x57e40ULL));
    const std::vector<StreamingResult> results =
        runStreamCells(ctx, cells);

    TablePrinter env({"key", "value"});
    env.addRow({"rounds per cell", std::to_string(rounds)});
    env.addRow({"queue capacity",
                std::to_string(StreamConfig{}.queueCapacity)});
    env.addRow({"physical error rate", "0.05"});
    ctx.table("streaming_env", env);

    TablePrinter table({"decoder", "d", "cycle (ns)", "PL", "f",
                        "svc mean (ns)", "svc p50", "svc p99",
                        "max depth", "overflow", "final backlog",
                        "growth/round", "model growth", "drain (us)"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const StreamCell &cell = cells[i];
        const StreamingResult &r = results[i];
        table.addRow(
            {decoderFamilies()[cell.family].name,
             std::to_string(cell.distance),
             TablePrinter::num(cell.config.syndromeCycleNs, 4),
             TablePrinter::num(r.logicalErrorRate, 3),
             TablePrinter::num(r.fEmpirical, 4),
             TablePrinter::num(r.serviceNs.mean(), 4),
             TablePrinter::num(r.servicePercentiles.p50, 4),
             TablePrinter::num(r.servicePercentiles.p99, 4),
             std::to_string(r.maxQueueDepth),
             std::to_string(r.overflowRounds),
             std::to_string(r.finalBacklogRounds),
             TablePrinter::num(r.backlogGrowthPerRound, 4),
             TablePrinter::num(backlogGrowthPerRound(r.fEmpirical), 4),
             us(r.drainNs)});
    }
    ctx.table("streaming_backlog", table);

    // Backlog trajectories at the paper's operating point (400 ns
    // cycle [27]), largest lattice: the mesh stays bounded while the
    // software baselines grow without bound (Section III).
    std::vector<std::string> header{"round"};
    std::vector<std::size_t> picks;
    for (std::size_t i = 0; i < cells.size(); ++i)
        if (cells[i].distance == 9 &&
            cells[i].config.syndromeCycleNs == 400.0) {
            picks.push_back(i);
            header.push_back(decoderFamilies()[cells[i].family].name);
        }
    TablePrinter trajectory(header);
    if (!picks.empty()) {
        const std::size_t samples =
            results[picks.front()].trajectory.size();
        for (std::size_t s = 0; s < samples; ++s) {
            std::vector<std::string> row{std::to_string(
                results[picks.front()].trajectory[s].round)};
            for (std::size_t pick : picks)
                row.push_back(std::to_string(
                    results[pick].trajectory[s].backlogRounds));
            trajectory.addRow(row);
        }
    }
    ctx.table("streaming_trajectory_d9_400ns", trajectory);

    ctx.note("\nthe mesh decoder's queue stays bounded (f << 1: it "
             "decodes within the syndrome cycle) while union-find and "
             "MWPM accumulate backlog without bound at the 400 ns "
             "operating point; measured growth/round matches the "
             "closed-form 1 - 1/f within sampling noise (cross-check "
             "column).");
}

void
fig05Backlog(ScenarioContext &ctx)
{
    ctx.note("=== Figure 5: wall clock vs compute time under backlog "
             "===");
    ctx.note("(operating ratio f measured on the streaming pipeline: "
             "union-find at d = 9, p = 5%, 400 ns cycle; closed-form "
             "f^k recurrence kept as cross-check)\n");

    const std::size_t rounds =
        ctx.scaled({2000, 2000, 1u << 30}).maxTrials;
    const std::vector<StreamCell> cells = makeStreamCells(
        {decoderFamilyIndex("union_find"),
         decoderFamilyIndex("sfq_mesh")},
        {9}, {400.0}, rounds, ctx.seed(0xf165ULL));
    const std::vector<StreamingResult> results =
        runStreamCells(ctx, cells);
    const StreamingResult &uf = results[0];
    const StreamingResult &mesh = results[1];

    // Measured backlog trajectory vs the closed-form growth rate.
    TablePrinter stream({"round", "union-find backlog",
                         "model backlog", "sfq mesh backlog"});
    const double ufGrowth = backlogGrowthPerRound(uf.fEmpirical);
    for (std::size_t s = 0; s < uf.trajectory.size(); ++s) {
        const BacklogSample &sample = uf.trajectory[s];
        const std::size_t meshBacklog =
            s < mesh.trajectory.size()
                ? mesh.trajectory[s].backlogRounds
                : 0;
        stream.addRow(
            {std::to_string(sample.round),
             std::to_string(sample.backlogRounds),
             TablePrinter::num(
                 ufGrowth * static_cast<double>(sample.round + 1), 4),
             std::to_string(meshBacklog)});
    }
    ctx.table("fig05_stream_backlog", stream);
    ctx.note("union-find measured f = " +
             TablePrinter::num(uf.fEmpirical, 4) +
             " (growth/round " +
             TablePrinter::num(uf.backlogGrowthPerRound, 4) +
             ", model " + TablePrinter::num(ufGrowth, 4) +
             "); mesh measured f = " +
             TablePrinter::num(mesh.fEmpirical, 4) +
             " (final backlog " +
             std::to_string(mesh.finalBacklogRounds) + ")\n");

    // The Fig. 5 staircase at the measured ratio: T gates synchronize
    // on the drained backlog, so the stall grows as f^k.
    QCircuit qc(2, "staircase");
    for (int i = 0; i < 10; ++i) {
        qc.h(0); // Clifford padding between synchronization points
        qc.cnot(0, 1);
        qc.t(0);
    }

    BacklogParams params;
    params.syndromeCycleNs = 400.0;
    params.decodeCycleNs = uf.fEmpirical * 400.0;
    const BacklogResult res = simulateBacklog(qc, params);

    TablePrinter table({"T gate", "compute time (us)", "wall clock (us)",
                        "stall (us)", "backlog (rounds)",
                        "stall ratio"});
    double prev_stall = 0;
    for (const auto &ev : res.tGates) {
        table.addRow(
            {std::to_string(ev.index),
             TablePrinter::num(ev.computeNs / 1e3, 4),
             TablePrinter::num(ev.wallNs / 1e3, 4),
             TablePrinter::num(ev.stallNs / 1e3, 4),
             TablePrinter::num(ev.backlogRounds, 4),
             prev_stall > 0
                 ? TablePrinter::num(ev.stallNs / prev_stall, 3)
                 : std::string("-")});
        prev_stall = ev.stallNs;
    }
    ctx.table("fig05_backlog", table);

    ctx.note("\ntotal: compute " +
             TablePrinter::num(res.computeNs / 1e3, 4) + " us, wall " +
             TablePrinter::num(res.wallNs / 1e3, 4) + " us, overhead " +
             TablePrinter::num(res.overhead(), 4) +
             "x; stall ratio converges to the measured f = " +
             TablePrinter::num(uf.fEmpirical, 4) +
             " (the f^k recurrence of Section III)");
}

void
fig06Runtime(ScenarioContext &ctx)
{
    ctx.note("=== Figure 6: running time vs decoding ratio ===");
    ctx.note("(syndrome cycle 400 ns; wall-clock seconds, log-scale "
             "in the paper; decoder ratios measured on the streaming "
             "pipeline at d = 9, p = 5%)\n");

    // Measure each decoder family's operating ratio on the pipeline.
    const std::size_t rounds =
        ctx.scaled({1000, 1000, 1u << 30}).maxTrials;
    const std::vector<StreamCell> cells = makeStreamCells(
        allFamilies(), {9}, {400.0}, rounds, ctx.seed(0xf166ULL));
    const std::vector<StreamingResult> results =
        runStreamCells(ctx, cells);

    TablePrinter measured({"decoder", "svc mean (ns)", "measured f",
                           "max backlog (rounds)"});
    std::vector<double> measuredRatios;
    for (std::size_t fi = 0; fi < cells.size(); ++fi) {
        const StreamingResult &r = results[fi];
        measured.addRow({decoderFamilies()[cells[fi].family].name,
                         TablePrinter::num(r.serviceNs.mean(), 4),
                         TablePrinter::num(r.fEmpirical, 4),
                         std::to_string(r.maxBacklogRounds)});
        measuredRatios.push_back(r.fEmpirical);
    }
    ctx.table("fig06_measured_f", measured);
    ctx.note("");

    // Running time of every benchmark at the *measured* ratios.
    std::vector<std::string> header{"benchmark (T count)"};
    for (std::size_t fi = 0; fi < cells.size(); ++fi)
        header.push_back(decoderFamilies()[cells[fi].family].name);
    TablePrinter measuredRuntime(header);
    for (const QCircuit &qc : tableOneBenchmarks()) {
        std::vector<std::string> row{
            qc.name() + " (" +
            std::to_string(decomposedTCount(qc)) + ")"};
        for (const auto &[f, wall_ns] :
             runningTimeVsRatio(qc, 400.0, measuredRatios))
            row.push_back(TablePrinter::sci(wall_ns * 1e-9, 2));
        measuredRuntime.addRow(row);
    }
    ctx.table("fig06_runtime_measured", measuredRuntime);

    // Closed-form ratio sweep kept as the cross-check grid.
    const std::vector<double> ratios{0.25, 0.5, 0.75, 1.0, 1.25,
                                     1.5,  1.75, 2.0, 2.5, 3.0};
    std::vector<std::string> gridHeader{"benchmark (T count)"};
    for (double f : ratios)
        gridHeader.push_back("f=" + TablePrinter::num(f, 3));
    TablePrinter table(gridHeader);
    for (const QCircuit &qc : tableOneBenchmarks()) {
        std::vector<std::string> row{
            qc.name() + " (" +
            std::to_string(decomposedTCount(qc)) + ")"};
        for (const auto &[f, wall_ns] :
             runningTimeVsRatio(qc, 400.0, ratios))
            row.push_back(TablePrinter::sci(wall_ns * 1e-9, 2));
        table.addRow(row);
    }
    ctx.table("fig06_runtime", table);

    ctx.note("\nreference points (Section III): NN decoder ~800 ns -> "
             "f ~ 2; SFQ decoder <= 20 ns -> f << 1.");
    ctx.note("paper's example: 686 T gates at f = 2 -> ~1e196 s; "
             "saturation caps our doubles at 1e250 ns.");
}

} // namespace scenarios
} // namespace nisqpp
