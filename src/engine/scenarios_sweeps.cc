/**
 * @file
 * Monte Carlo scenario bodies: the sweep-driven figure/table
 * reproductions, all dispatched through the sharded parallel engine so
 * --threads N scales them across cores while keeping aggregates
 * byte-identical to a single-threaded run of the same seed.
 */

#include "engine/scenarios.hh"

#include <chrono>
#include <string>
#include <vector>

#include "engine/scenario.hh"
#include "sim/experiment.hh"

namespace nisqpp {
namespace scenarios {

namespace {

/** PL grid of one sweep as a "p x distance" table. */
TablePrinter
sweepTable(const SweepResult &result, const std::vector<double> &ps)
{
    std::vector<std::string> header{"p (%)"};
    for (const auto &curve : result.curves)
        header.push_back("PL d=" + std::to_string(curve.distance));
    TablePrinter table(header);
    for (std::size_t i = 0; i < ps.size(); ++i) {
        std::vector<std::string> row{TablePrinter::num(100 * ps[i], 3)};
        for (const auto &curve : result.curves)
            row.push_back(TablePrinter::num(100 * curve.pl[i], 3));
        table.addRow(row);
    }
    return table;
}

double
elapsedMs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

void
fig10Final(ScenarioContext &ctx)
{
    ctx.note("=== Figure 10 (a): final design error rate scaling ===");
    ctx.note("(dephasing channel, lifetime protocol)\n");

    SweepConfig config;
    config.distances = {3, 5, 7, 9};
    config.physicalRates = SweepConfig::logSpaced(0.01, 0.12, 10);
    config.lifetimeMode = true;
    config.stopRule = ctx.scaled({4000, 4000, 1u << 30});
    config.seed = ctx.seed(config.seed);

    const auto factory = meshDecoderFactory(MeshConfig::finalDesign());
    const SweepResult result = ctx.engine().runSweep(config, factory);
    ctx.table("fig10a_scaling",
              sweepTable(result, config.physicalRates));

    // Threshold metrics (Section VII).
    ctx.note("\npseudo-thresholds (PL = p):");
    TablePrinter thresholds({"d", "pseudo-threshold (%)"});
    for (const auto &curve : result.curves)
    {
        const auto pseudo = pseudoThreshold(curve);
        thresholds.addRow(
            {std::to_string(curve.distance),
             pseudo ? TablePrinter::num(100 * *pseudo, 3)
                    : std::string("not crossed in range")});
    }
    ctx.table("fig10a_pseudothresholds", thresholds);
    if (const auto pth = accuracyThreshold(result.curves))
        ctx.note("accuracy threshold (curve crossings): " +
                 TablePrinter::num(100 * *pth, 3) + "%");
    ctx.note("paper: accuracy threshold ~5%, pseudo-thresholds "
             "~3.5%-5%, anomalous d=3 (boundary-dominated)");

    ctx.note("\n=== Figure 10 (b): zoom near threshold ===\n");
    SweepConfig zoom = config;
    zoom.physicalRates = SweepConfig::logSpaced(0.045, 0.062, 6);
    ctx.table("fig10b_zoom",
              sweepTable(ctx.engine().runSweep(zoom, factory),
                         zoom.physicalRates));
}

void
fig10Variants(ScenarioContext &ctx)
{
    ctx.note("=== Figure 10 (top row): incremental design steps ===");
    ctx.note("(logical error rate, dephasing channel, lifetime "
             "protocol)");

    SweepConfig config;
    config.distances = {3, 5, 7, 9};
    config.physicalRates = SweepConfig::logSpaced(0.01, 0.12, 8);
    config.lifetimeMode = true;
    config.stopRule = ctx.scaled({2000, 2000, 1u << 30});
    config.seed = ctx.seed(config.seed);

    for (const MeshConfig &variant :
         {MeshConfig::baseline(), MeshConfig::withReset(),
          MeshConfig::withResetAndBoundary()}) {
        ctx.note("\n--- design: " + variant.label() + " ---");
        const SweepResult result =
            ctx.engine().runSweep(config, meshDecoderFactory(variant));
        ctx.table("fig10_top_" + variant.label(),
                  sweepTable(result, config.physicalRates));
    }

    ctx.note("\npaper: baseline shows no threshold behavior; resets "
             "and boundaries progressively restore error suppression "
             "(our unarbitrated boundary variant trades differently - "
             "see EXPERIMENTS.md).");
}

void
fig10Cycles(ScenarioContext &ctx)
{
    ctx.note("=== Figure 10 (c): cycles-to-solution densities ===");
    ctx.note("(dephasing p = 5%, final design; probability mass per "
             "cycle count)\n");

    SweepConfig config;
    config.distances = {3, 5, 7, 9};
    config.physicalRates = {0.05};
    config.stopRule = ctx.scaled({4000, 4000, 1u << 30});
    config.seed = ctx.seed(0xf16cULL);

    const SweepResult result = ctx.engine().runSweep(
        config, meshDecoderFactory(MeshConfig::finalDesign()));

    std::vector<std::string> header{"cycles"};
    for (int d : config.distances)
        header.push_back("d=" + std::to_string(d));
    TablePrinter table(header);
    for (int cyc = 0; cyc <= 20; ++cyc) {
        std::vector<std::string> row{std::to_string(cyc)};
        for (const auto &dist_row : result.cells)
            row.push_back(TablePrinter::num(
                dist_row[0].cycleHistogram.density(cyc), 3));
        table.addRow(row);
    }
    ctx.table("fig10c_densities", table);

    ctx.note("\ntail beyond the 20-cycle window:");
    TablePrinter tail({"d", "tail mass", "max cycles"});
    for (std::size_t i = 0; i < config.distances.size(); ++i) {
        const Histogram &hist = result.cells[i][0].cycleHistogram;
        double mass = 0;
        for (std::size_t b = 21; b < hist.numBins(); ++b)
            mass += hist.density(b);
        tail.addRow({std::to_string(config.distances[i]),
                     TablePrinter::num(mass, 3),
                     std::to_string(hist.lastNonzero())});
    }
    ctx.table("fig10c_tail", tail);
    ctx.note("paper: densities peak near 0, 5, 9, 14 cycles for "
             "d = 3, 5, 7, 9");
}

void
table4Latency(ScenarioContext &ctx)
{
    ctx.note("=== Table IV: decoder execution time (ns) ===");
    ctx.note("(dephasing, p swept 1%-12%, final design)\n");

    SweepConfig config;
    config.distances = {3, 5, 7, 9};
    config.physicalRates = {0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12};
    config.stopRule = ctx.scaled({1500, 1500, 1u << 30});
    config.seed = ctx.seed(0xab1eULL);

    const SweepResult result = ctx.engine().runSweep(
        config, meshDecoderFactory(MeshConfig::finalDesign()));

    const double period_ps = MeshConfig{}.cyclePeriodPs;
    TablePrinter table({"code distance", "max (ns)", "average (ns)",
                        "std dev (ns)", "max (cycles)"});
    std::vector<double> ds, max_cycles;
    for (std::size_t di = 0; di < config.distances.size(); ++di) {
        RunningStats stats;
        for (const MonteCarloResult &cell : result.cells[di])
            stats.merge(cell.cycles);
        const double to_ns = period_ps * 1e-3;
        table.addRow({std::to_string(config.distances[di]),
                      TablePrinter::num(stats.max() * to_ns, 3),
                      TablePrinter::num(stats.mean() * to_ns, 3),
                      TablePrinter::num(stats.stddev() * to_ns, 3),
                      TablePrinter::num(stats.max(), 4)});
        ds.push_back(config.distances[di]);
        max_cycles.push_back(stats.max());
    }
    ctx.table("table4_latency", table);

    const LinearFit fit = fitLinear(ds, max_cycles);
    ctx.note("\nmax-cycles linear fit: " +
             TablePrinter::num(fit.slope, 4) + " * d + " +
             TablePrinter::num(fit.intercept, 4) +
             " (paper: leading coefficient ~15.75)");
    ctx.note("paper Table IV (ns): d=3 3.74/0.28/0.58, d=5 "
             "9.28/0.72/1.09, d=7 14.2/2.00/1.99, d=9 "
             "19.2/3.81/3.11; max <= ~20 ns (online, f < 1)");
}

void
table5Fit(ScenarioContext &ctx)
{
    ctx.note("=== Table V: empirical scaling-model fit ===");
    ctx.note("(PL ~= c1 (p/pth)^(c2 d), pth = 5%, dephasing, lifetime "
             "protocol)\n");

    SweepConfig config;
    config.distances = {3, 5, 7, 9};
    config.physicalRates = {0.01, 0.015, 0.02, 0.03, 0.04};
    config.lifetimeMode = true;
    config.stopRule = ctx.scaled({6000, 6000, 1u << 30});
    config.seed = ctx.seed(config.seed);

    const SweepResult result = ctx.engine().runSweep(
        config, meshDecoderFactory(MeshConfig::finalDesign()));
    const auto fits = fitSweep(result, 0.05, 0.045);

    TablePrinter table({"code distance", "c2", "c1", "fit R^2"});
    for (std::size_t i = 0; i < fits.size(); ++i)
        table.addRow({std::to_string(result.curves[i].distance),
                      TablePrinter::num(fits[i].c2, 3),
                      TablePrinter::num(fits[i].c1, 3),
                      TablePrinter::num(fits[i].r2, 3)});
    ctx.table("table5_fit", table);

    ctx.note("\npaper Table V: c2 = 0.650, 0.429, 0.306, 0.323 for "
             "d = 3, 5, 7, 9 (c2 < 1 is the accuracy price of the "
             "approximate decoder)");
}

void
microHotpath(ScenarioContext &ctx)
{
    ctx.note("=== micro_hotpath: per-trial hot-path throughput ===");
    ctx.note("(dephasing p = 5%, per-round protocol, fixed trial "
             "budget, one cell per decoder x distance; identical "
             "error streams per distance via shared cell seeds; "
             "sfq_mesh_batch = the same mesh decoder through the "
             "lane-packed decodeBatch path, PL identical by "
             "construction)\n");

    const std::vector<DecoderFamily> &families = decoderFamilies();
    const std::vector<int> distances{3, 5, 7, 9};

    /**
     * Round-group size of the forced-batch rows: one full shard
     * (EngineOptions::shardTrials), which also fills the widest
     * (512-bit) union-find lane engine so every shared bit-plane
     * sweep is amortized over a whole word of lanes.
     */
    constexpr std::size_t kBatchRows = 512;

    // Fixed budgets, no early stop: wall time divides cleanly into
    // per-decode cost. Every family at one distance reuses the same
    // cell seed, so all decoders face identical syndrome streams.
    const StopRule rule = ctx.scaled({4000, 4000, ~std::size_t{0}});
    StopRule warmupRule;
    warmupRule.minTrials = warmupRule.maxTrials =
        std::min<std::size_t>(256, rule.maxTrials);
    warmupRule.targetFailures = ~std::size_t{0};

    std::vector<std::unique_ptr<SurfaceLattice>> lattices;
    std::vector<std::uint64_t> cellSeeds;
    Rng master(ctx.seed(0x407b47ULL));
    for (int d : distances) {
        lattices.push_back(std::make_unique<SurfaceLattice>(d));
        Rng child = master.split();
        cellSeeds.push_back(child.next());
    }

    TablePrinter env({"key", "value"});
    env.addRow({"threads", std::to_string(ctx.engine().threads())});
    env.addRow({"shard_trials",
                std::to_string(ctx.engine().options().shardTrials)});
    env.addRow({"trials_per_cell", std::to_string(rule.maxTrials)});
    env.addRow({"batch_lanes",
                std::to_string(ctx.engine().options().batchLanes)});
    env.addRow({"batch_rows_lanes", std::to_string(kBatchRows)});
#ifdef NDEBUG
    env.addRow({"assertions", "off"});
#else
    env.addRow({"assertions", "on"});
#endif
    ctx.table("hotpath_env", env);

    TablePrinter table({"decoder", "d", "trials", "PL", "host ms",
                        "trials/s", "ns/decode"});
    const auto addRows = [&](const std::string &name,
                             const DecoderFactory &factory,
                             std::size_t batch_lanes) {
        for (std::size_t di = 0; di < distances.size(); ++di) {
            CellSpec spec;
            spec.lattice = lattices[di].get();
            spec.physicalRate = 0.05;
            spec.seed = cellSeeds[di];
            spec.factory = &factory;
            spec.batchLanes = batch_lanes;

            spec.rule = warmupRule;
            ctx.engine().runCell(spec); // fault in caches/buffers

            // Best-of-N wall time: the minimum is the least-disturbed
            // run, which is what a tracked benchmark should record on
            // shared/noisy hosts. Results are seed-deterministic, so
            // every repetition produces the same aggregates.
            constexpr int kReps = 3;
            spec.rule = rule;
            MonteCarloResult cell;
            double ms = 0.0;
            for (int rep = 0; rep < kReps; ++rep) {
                const auto start = std::chrono::steady_clock::now();
                cell = ctx.engine().runCell(spec);
                const double rep_ms = elapsedMs(start);
                if (rep == 0 || rep_ms < ms)
                    ms = rep_ms;
            }

            // Dephasing runs exactly one decode per trial.
            const double per_decode_ns =
                cell.trials ? ms * 1e6 / cell.trials : 0.0;
            table.addRow(
                {name, std::to_string(distances[di]),
                 std::to_string(cell.trials),
                 TablePrinter::num(cell.logicalErrorRate, 4),
                 TablePrinter::num(ms, 4),
                 TablePrinter::num(cell.trials / (ms / 1e3), 4),
                 TablePrinter::num(per_decode_ns, 4)});
        }
    };
    for (const DecoderFamily &family : families)
        addRows(family.name, family.factory, 0 /* engine default */);
    // The mesh decoder again, forced through the lane-packed batch
    // path: same cells, same seeds, so any PL deviation from the
    // sfq_mesh rows is a lane-equivalence bug (bench_compare checks).
    addRows("sfq_mesh_batch",
            families[decoderFamilyIndex("sfq_mesh")].factory,
            kBatchRows);
    // Union-find through its lane-packed batch engine (bit-plane
    // support counters, shared word-parallel edge sweeps): same cells,
    // same seeds as the union_find rows, so any PL deviation is a
    // lane-equivalence bug (bench_compare checks). The trials/s ratio
    // against union_find is the tracked speedup of this substrate.
    addRows("union_find_batch",
            families[decoderFamilyIndex("union_find")].factory,
            kBatchRows);
    ctx.table("hotpath", table);

    ctx.note("\nrefresh the tracked snapshot with: ./build/"
             "micro_hotpath --threads 1 --format json > "
             "BENCH_hotpath.json; compare against bench/"
             "BENCH_hotpath_baseline.json with ./build/bench_compare "
             "(PL columns must match byte for byte)");
}

void
microDecoders(ScenarioContext &ctx)
{
    ctx.note("=== micro_decoders: sharded engine throughput ===");
    ctx.note("(dephasing p = 5%, per-round protocol; identical error "
             "streams per decoder family via the shared master seed)\n");

    const std::vector<DecoderFamily> &families = decoderFamilies();

    SweepConfig config;
    config.distances = {3, 5, 7, 9};
    config.physicalRates = {0.05};
    config.stopRule = ctx.scaled({1000, 1000, 1u << 30});
    config.seed = ctx.seed(0xbe4cULL);

    TablePrinter table({"decoder", "d", "trials", "PL", "host ms",
                        "trials/s"});
    const auto total_start = std::chrono::steady_clock::now();
    for (const DecoderFamily &family : families) {
        const auto start = std::chrono::steady_clock::now();
        const SweepResult result =
            ctx.engine().runSweep(config, family.factory);
        const double ms = elapsedMs(start);
        std::size_t trials = 0;
        for (const auto &row : result.cells)
            for (const auto &cell : row)
                trials += cell.trials;
        for (std::size_t di = 0; di < config.distances.size(); ++di) {
            const MonteCarloResult &cell = result.cells[di][0];
            table.addRow(
                {family.name,
                 std::to_string(config.distances[di]),
                 std::to_string(cell.trials),
                 TablePrinter::num(cell.logicalErrorRate, 3),
                 "", ""});
        }
        table.addRow({family.name, "all",
                      std::to_string(trials), "-",
                      TablePrinter::num(ms, 4),
                      TablePrinter::num(trials / (ms / 1e3), 4)});
    }
    ctx.table("micro_decoders", table);

    ctx.note("\ntotal wall-clock: " +
             TablePrinter::num(elapsedMs(total_start), 4) + " ms at " +
             std::to_string(ctx.engine().threads()) +
             " thread(s), shard size " +
             std::to_string(ctx.engine().options().shardTrials) +
             "; rerun with --threads N to scale across cores "
             "(aggregates stay byte-identical for a fixed --seed)");
}

} // namespace scenarios
} // namespace nisqpp
