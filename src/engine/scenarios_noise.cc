/**
 * @file
 * Noise-subsystem scenario bodies: the faulty-measurement windowed
 * regime (fig10_measurement) and the channel x decoder compatibility
 * grid (noise_zoo). Both dispatch through the sharded parallel engine,
 * so aggregates are byte-identical at any thread count and the golden
 * net pins them like every other scenario.
 */

#include "engine/scenarios.hh"

#include <memory>
#include <string>
#include <vector>

#include "engine/scenario.hh"
#include "sim/experiment.hh"

namespace nisqpp {
namespace scenarios {

void
fig10Measurement(ScenarioContext &ctx)
{
    ctx.note("=== fig10_measurement: PL vs p under faulty "
             "measurement (q = p) ===");
    ctx.note("(dephasing + readout flips, d-round windows + perfect "
             "commit round,\n spacetime decodeWindow; phenomenological "
             "threshold ~3%)\n");

    const std::vector<int> distances{3, 5, 9};
    const std::vector<double> rates =
        SweepConfig::logSpaced(0.004, 0.03, 6);
    const std::vector<std::string> families{"mwpm", "union_find"};

    for (const std::string &family : families) {
        ctx.note("--- decoder: " + family + " (spacetime "
                 "decodeWindow) ---");
        const DecoderFactory &factory =
            decoderFamilies()[decoderFamilyIndex(family)].factory;
        std::vector<std::string> header{"p = q (%)"};
        for (int d : distances)
            header.push_back("PL d=" + std::to_string(d));
        TablePrinter table(header);

        // One sweep per rate: q tracks the sweep axis, so each p is
        // its own single-rate sweep with noise.q = p.
        for (double p : rates) {
            SweepConfig config;
            config.distances = distances;
            config.physicalRates = {p};
            config.noise = NoiseSpec::dephasing().withQ(p);
            config.stopRule = ctx.scaled({800, 800, 1u << 30});
            config.seed = ctx.seed(0x3ea5ULL);
            // Window length scales with distance: runSweep applies
            // windowRounds uniformly, so sweep each distance alone.
            std::vector<std::string> row{
                TablePrinter::num(100 * p, 3)};
            for (std::size_t di = 0; di < distances.size(); ++di) {
                SweepConfig cell = config;
                cell.distances = {distances[di]};
                cell.windowRounds = distances[di];
                const SweepResult result =
                    ctx.engine().runSweep(cell, factory);
                const double pl = result.curves[0].pl[0];
                row.push_back(TablePrinter::num(100 * pl, 3));
            }
            table.addRow(row);
        }
        ctx.table("fig10_measurement_" + family, table);
    }

    ctx.note("\nbelow threshold the windowed spacetime decoders "
             "restore error suppression with distance — PL(d=9) < "
             "PL(d=5) < PL(d=3) — which single-round decoding cannot "
             "achieve once measurements lie; near p = q ~ 3% the "
             "curves cross (accuracy threshold of the "
             "phenomenological model).");
}

void
noiseZoo(ScenarioContext &ctx)
{
    ctx.note("=== noise_zoo: every channel x every decoder ===");
    ctx.note("(d = 5, p = 5%, per-round protocol, perfect "
             "measurement; X-producing channels decode both "
             "families)\n");

    const std::vector<DecoderFamily> &families = decoderFamilies();
    TablePrinter table({"channel", "decoder", "windowed", "trials",
                        "PL"});

    SurfaceLattice lattice(5);
    // The decodeWindow strategy is a per-family constant; probe each
    // family once instead of per channel row.
    std::vector<std::string> windowStrategy;
    for (const DecoderFamily &family : families)
        windowStrategy.push_back(
            family.factory(lattice, ErrorType::Z)->windowAware()
                ? "spacetime"
                : "majority");

    Rng master(ctx.seed(0x2009ULL));
    for (NoiseKind kind : noiseKindRegistry()) {
        // One cell seed per channel: every decoder family faces the
        // identical error stream for that channel.
        Rng child = master.split();
        const std::uint64_t cellSeed = child.next();
        NoiseSpec spec;
        spec.kind = kind;
        for (std::size_t fi = 0; fi < families.size(); ++fi) {
            const DecoderFamily &family = families[fi];
            CellSpec cell;
            cell.lattice = &lattice;
            cell.physicalRate = 0.05;
            cell.noise = spec;
            cell.rule = ctx.scaled({1000, 1000, 1u << 30});
            cell.seed = cellSeed;
            cell.factory = &family.factory;
            const MonteCarloResult r = ctx.engine().runCell(cell);

            table.addRow({noiseKindName(kind), family.name,
                          windowStrategy[fi],
                          std::to_string(r.trials),
                          TablePrinter::num(r.logicalErrorRate, 4)});
        }
    }
    ctx.table("noise_zoo", table);

    ctx.note("\nthe 'windowed' column reports each decoder's "
             "decodeWindow strategy (spacetime matching vs "
             "round-majority fallback); biased noise (eta = 10) "
             "behaves between dephasing and depolarizing, and the "
             "erasure channel marks erased qubits for future "
             "erasure-aware decoding.");
}

} // namespace scenarios
} // namespace nisqpp
