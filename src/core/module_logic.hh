/**
 * @file
 * Combinational building blocks of the decoder module microarchitecture
 * (paper Fig. 9), shared between the vectorized mesh simulator (which
 * evaluates them one 64-bit row at a time) and the SFQ netlist generator
 * (which instantiates them gate-by-gate).
 *
 * Signals are identified by their *travel* direction. A signal traveling
 * East is received on a module's west port; the paper's "receives grow
 * signals from up and left" therefore corresponds to travel directions
 * {South, East}.
 */

#ifndef NISQPP_CORE_MODULE_LOGIC_HH
#define NISQPP_CORE_MODULE_LOGIC_HH

#include <array>
#include <cstdint>

namespace nisqpp {

/** Travel direction of a mesh signal. */
enum class Dir : unsigned char
{
    N = 0, ///< toward decreasing row
    E = 1, ///< toward increasing column
    S = 2, ///< toward increasing row
    W = 3, ///< toward decreasing column
};

constexpr int kNumDirs = 4;

/** Opposite travel direction. */
constexpr Dir
reverseDir(Dir d)
{
    switch (d) {
      case Dir::N: return Dir::S;
      case Dir::E: return Dir::W;
      case Dir::S: return Dir::N;
      case Dir::W: return Dir::E;
    }
    return Dir::N;
}

/** Signals of one kind on one row, indexed by travel direction. */
template <typename Word>
using DirRow = std::array<Word, kNumDirs>;

/**
 * Meeting detection and back-emission (the Pair_Req and Pair subcircuit
 * cores). A module where signals of two distinct travel directions
 * coincide emits responses along both reversed directions. The hardwired
 * effectiveness priority resolves the two candidate corner modules of a
 * diagonal arrangement: effective pairs, in priority order, are
 * {E,W}, {N,S}, {S,E}, {S,W}; pairs {N,W} and {N,E} are ineffective
 * (the paper's "up and left effective / down and right ineffective"
 * hardwiring, extended to all arrangements — see DESIGN.md).
 *
 * @param in    Incoming signal planes by travel direction.
 * @param allow Mask of modules permitted to act as intermediates
 *              (non-hot interior modules).
 * @param out   Accumulates emissions by travel direction (ORed in).
 */
template <typename Word>
void
emitFromMeets(const DirRow<Word> &in, Word allow, DirRow<Word> &out)
{
    const auto n = static_cast<int>(Dir::N);
    const auto e = static_cast<int>(Dir::E);
    const auto s = static_cast<int>(Dir::S);
    const auto w = static_cast<int>(Dir::W);

    const Word m_ew = in[e] & in[w] & allow;
    const Word m_ns = in[n] & in[s] & allow & ~m_ew;
    const Word m_se = in[s] & in[e] & allow & ~m_ew & ~m_ns;
    const Word m_sw = in[s] & in[w] & allow & ~m_ew & ~m_ns & ~m_se;

    // A meet of travel pair (d1, d2) emits along rev(d1) and rev(d2).
    out[w] |= m_ew | m_se;
    out[e] |= m_ew | m_sw;
    out[n] |= m_ns | m_se | m_sw;
    out[s] |= m_ns;
}

/**
 * Grant-latch arbitration at hot modules (Pair_Grant subcircuit):
 * of the incoming pair-request directions, a free hot module latches
 * exactly one grant, emitted along the reversed travel direction.
 * Request priority (travel direction of the request): W, E, S, N.
 *
 * @param rq    Incoming pair-request planes by travel direction.
 * @param hot   Hot-syndrome latches.
 * @param latch Grant latches by *grant* travel direction (updated).
 */
template <typename Word>
void
updateGrantLatch(const DirRow<Word> &rq, Word hot, DirRow<Word> &latch)
{
    const auto n = static_cast<int>(Dir::N);
    const auto e = static_cast<int>(Dir::E);
    const auto s = static_cast<int>(Dir::S);
    const auto w = static_cast<int>(Dir::W);

    Word free = hot & ~(latch[n] | latch[e] | latch[s] | latch[w]);
    const Word c1 = free & rq[w]; // request from the east -> grant East
    latch[e] |= c1;
    free &= ~c1;
    const Word c2 = free & rq[e];
    latch[w] |= c2;
    free &= ~c2;
    const Word c3 = free & rq[s]; // request from the north -> grant North
    latch[n] |= c3;
    free &= ~c3;
    const Word c4 = free & rq[n];
    latch[s] |= c4;
}

} // namespace nisqpp

#endif // NISQPP_CORE_MODULE_LOGIC_HH
