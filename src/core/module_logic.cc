#include "core/module_logic.hh"

// All module-logic primitives are header-only templates shared by the
// mesh simulator and the netlist generator; explicit instantiations for
// the word type used by the simulator keep the template honest under
// separate compilation.

namespace nisqpp {

template void emitFromMeets<std::uint64_t>(
    const DirRow<std::uint64_t> &, std::uint64_t,
    DirRow<std::uint64_t> &);

template void updateGrantLatch<std::uint64_t>(
    const DirRow<std::uint64_t> &, std::uint64_t,
    DirRow<std::uint64_t> &);

} // namespace nisqpp
