/**
 * @file
 * Cycle-level simulator of the SFQ mesh decoder — the paper's core
 * contribution (Sections V and VI). One decoder module per lattice site
 * plus a ring of boundary modules; grow, pair-request, pair-grant and
 * pair signals propagate one module per cycle as persistent pulse trains.
 *
 * Protocol (final design):
 *  1. hot modules emit grow rays in all four directions;
 *  2. modules where two rays meet emit pair-requests back along both
 *     reversed directions;
 *  3. a hot module grants exactly one request (latched);
 *  4. where two grant trains meet, single pair pulses are emitted toward
 *     both endpoints, marking every traversed module as chain member;
 *  5. a pair pulse reaching a hot module clears its latch and fires the
 *     global reset (pair signals are exempt so the farther leg finishes);
 *  6. boundary modules answer grow with pair-request and grant with pair.
 *
 * The mesh state is bit-packed one row per machine word, so each cycle
 * is a handful of bitwise operations per row. A row spans only
 * 2d + 1 <= 19 columns for the distances the experiments run, so most
 * of every word is dead weight in a single-trial decode; the batch
 * entry point reclaims it by *lane packing*: decodeBatch() simulates L
 * independent Monte Carlo trials per word, each in its own span-wide
 * lane. The batch word is a 4 x 64-bit SIMD-friendly vector (GNU
 * vector extension, lowered to SSE/AVX or plain scalar pairs by the
 * compiler), giving 64/span sub-lanes per element: 12 lanes at d = 9,
 * 16 at d = 7, 20 at d = 5 and 32 (capped) at d = 3. The per-cycle
 * shift/AND/OR/XOR plane updates are shared across lanes — lane-guard
 * masks drop each lane's edge column before an east/west shift,
 * exactly the bits the valid mask would kill after a scalar shift —
 * while reset countdowns, quiescence windows, the cycle cap and
 * completion are tracked per lane, so diverging trials freeze
 * independently. Because every piece of per-lane control state is
 * relative to the lane's own start cycle, a lane that freezes is
 * immediately *refilled* with the next pending trial of the batch:
 * lanes never idle waiting for a slow sibling, and the amortized cost
 * per trial is one L-th of a mesh step per cycle. Every lane's
 * corrections and telemetry are bit-identical to a scalar decode of
 * the same syndrome; the scalar decode() runs the same stepping core
 * with a single lane in a plain 64-bit word.
 */

#ifndef NISQPP_CORE_MESH_DECODER_HH
#define NISQPP_CORE_MESH_DECODER_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/logging.hh"
#include "common/simd.hh"
#include "core/mesh_config.hh"
#include "core/mesh_stats.hh"
#include "core/module_logic.hh"
#include "decoders/decoder.hh"

namespace nisqpp {

/**
 * The SFQ mesh decoder. Implements the Decoder interface so the Monte
 * Carlo harness can drive it interchangeably with the software baselines.
 */
class MeshDecoder : public Decoder
{
  public:
    /** Largest lane count any batch geometry uses (v512 at d = 3). */
    static constexpr int kMaxLanes = 64;

    /**
     * Historical name of the 256-bit batch word; the batch engine now
     * dispatches at runtime between simd::W64/W256/W512 (the width is
     * latched from simd::activeWidth() at construction), and every
     * lane's corrections and telemetry are bit-identical across
     * widths — only throughput moves.
     */
    using BatchWord = simd::W256;

    MeshDecoder(const SurfaceLattice &lattice, ErrorType type,
                const MeshConfig &config = MeshConfig::finalDesign());

    Correction decode(const Syndrome &syndrome) override;
    void decode(const Syndrome &syndrome, TrialWorkspace &ws) override;

    /**
     * Lane-packed batch decode: up to batchLanes() syndromes advance
     * through the mesh planes together, one lane each, and every
     * freed lane is refilled from the remaining batch, so @p count
     * may (and for throughput should) exceed batchLanes().
     * Corrections land in ws.laneCorrections[0..count), per-lane
     * telemetry in meshStats(lane) — both bit-identical to scalar
     * decodes of the same syndromes.
     */
    void decodeBatch(const Syndrome *const *syndromes, std::size_t count,
                     TrialWorkspace &ws) override;

    const MeshDecodeStats *meshStats(std::size_t lane = 0) const override;

    /**
     * Emit `decoder.mesh.*` work counters accumulated since
     * construction: decode counts, total mesh cycles/pairings/resets,
     * and the cap (`decoder.mesh.cycles_capped`) and quiescence exit
     * counts. Scalar and batched decodes accumulate identically.
     */
    void exportMetrics(obs::MetricSet &out) const override;

    std::string name() const override
    {
        return "sfq-mesh[" + config_.label() + "]";
    }

    const MeshConfig &config() const { return config_; }

    /** Telemetry of the most recent decode (lane 0 of a batch). */
    const MeshDecodeStats &lastStats() const { return batchStats_[0]; }

    /**
     * Trials the batch engine steps concurrently: elements(lane word)
     * x (64 / span), capped at kMaxLanes.
     */
    int batchLanes() const { return batchLanes_; }

    /** Lane word width the batch engine was latched to (telemetry). */
    simd::Width batchWidth() const { return width_; }

    /** Hard cap on simulated cycles per decode. */
    int cycleCap() const { return cycleCap_; }

    /** No-progress window before declaring quiescence. */
    int quiescenceWindow() const { return quiescence_; }

    /**
     * Override the cycle cap and quiescence window (tests only: forces
     * the cap/quiescence exits on tame syndromes so lane freezing can
     * be exercised deterministically). Applies to scalar and batched
     * decodes alike. Both limits must be positive: a non-positive cap
     * or window would make every decode exit instantly, which is
     * indistinguishable from (and has been mistaken for) a configured
     * quiescence test — so it hard-errors even in release builds.
     */
    void
    setLimitsForTest(int cycle_cap, int quiescence_window)
    {
        NISQPP_DCHECK(cycle_cap > 0 && quiescence_window > 0,
                      "MeshDecoder::setLimitsForTest: limits must be "
                      "positive");
        require(cycle_cap > 0 && quiescence_window > 0,
                "MeshDecoder::setLimitsForTest: cycle cap and "
                "quiescence window must be positive");
        cycleCap_ = cycle_cap;
        quiescence_ = quiescence_window;
    }

    /**
     * Optional per-cycle trace sink for protocol debugging; prints
     * in-flight signal summaries each cycle when non-null (scalar
     * decodes only — batched lanes are not traced).
     */
    std::ostream *trace = nullptr;

  private:
    /**
     * Everything the stepping core needs for one lane layout: the lane
     * geometry (masks replicated into every lane of every element,
     * shift guards), the mesh planes, per-step scratch and the
     * per-lane control state. Two engines exist — LaneEngine<uint64_t>
     * serves scalar decode() with a single lane (bit layout identical
     * to the historical scalar decoder) and LaneEngine<BatchWord>
     * packs batchLanes() trials — and both run the exact same
     * (templated) stepping code. All per-lane control state is
     * *relative* to the lane's own start cycle, which is what lets
     * decodeLanes() refill a freed lane with the next pending trial
     * mid-flight.
     */
    template <typename W>
    struct LaneEngine
    {
        using Planes = DirRow<std::vector<W>>;

        int lanes = 1;
        int perElem = 1; ///< sub-lanes per 64-bit element (64 / span)
        W guardE{};      ///< cleared before << 1 (per element)
        W guardW{};      ///< cleared before >> 1
        std::vector<W> interior, bnd, valid; ///< replicated row masks
        std::array<W, kMaxLanes> laneMask{};
        /** Lane address: element index + sub-lane mask/base inside it. */
        std::array<int, kMaxLanes> laneElem{};
        std::array<std::uint64_t, kMaxLanes> laneSub{};
        std::array<int, kMaxLanes> laneBase{};

        // Per-decode mesh state, shared by every lane. The signal
        // planes are double-buffered *outputs*: `g`/`rq`/`gr`/`pr`
        // hold the previous cycle's emissions (each cycle derives its
        // shifted inputs from them on the fly), `gOut`... collect this
        // cycle's and the buffers swap at the end of the step.
        Planes g, rq, gr, pr;       ///< last cycle's emitted signals
        Planes gOut, rqOut, grOut, prOut; ///< this cycle's (scratch)
        Planes grantLatch;          ///< hot modules' grant choice
        std::vector<W> formed; ///< sticky "this module formed a pair"
        std::vector<W> fired;  ///< cleared endpoints still absorbing
        std::vector<W> hot;
        std::vector<W> chain;
        std::vector<W> fire; ///< per-step scratch (no allocation)

        // Per-lane control state: diverging lanes freeze independently.
        std::array<int, kMaxLanes> resetCountdown{};
        std::array<int, kMaxLanes> lastFire{};
        std::array<int, kMaxLanes> hotCount{};
        std::array<bool, kMaxLanes> active{};
        int cycle = 0;
        W prOcc{}; ///< pair-plane occupancy after the last step
    };

    template <typename W>
    void buildEngine(LaneEngine<W> &e, int max_lanes) const;
    template <typename W>
    void stepLanes(LaneEngine<W> &e, MeshDecodeStats *const *laneStats);
    template <typename W>
    void finishLane(LaneEngine<W> &e, int lane, Correction &out,
                    MeshDecodeStats &stats);
    template <typename W>
    void decodeLanes(LaneEngine<W> &e,
                     const Syndrome *const *syndromes, int count,
                     Correction *const *outs, MeshDecodeStats *stats);

    MeshConfig config_;
    int span_;      ///< grid size + 2 (boundary ring included)
    int cycleCap_;
    int quiescence_;

    /** Dispatch width latched at construction (simd::activeWidth). */
    simd::Width width_;

    LaneEngine<std::uint64_t> scalar_; ///< one lane: decode()
    /** Packed-lane engines; only the latched width's is built. @{ */
    LaneEngine<simd::W64> batch64_;
    LaneEngine<simd::W256> batch256_;
    LaneEngine<simd::W512> batch512_;
    /** @} */

    /** Lane count of the latched batch engine. */
    int batchLanes_ = 1;

    /** Telemetry of the last decode, one entry per lane decoded. */
    std::vector<MeshDecodeStats> batchStats_{1};

    /** Deterministic work counters (see exportMetrics). @{ */
    std::uint64_t decodes_ = 0;
    std::uint64_t cyclesTotal_ = 0;
    std::uint64_t pairingsTotal_ = 0;
    std::uint64_t resetsTotal_ = 0;
    std::uint64_t cappedTotal_ = 0;
    std::uint64_t quiescedTotal_ = 0;
    /** @} */

    /** decodeBatch() per-trial output pointers (reused, no alloc). */
    std::vector<Correction *> outScratch_;
};

} // namespace nisqpp

#endif // NISQPP_CORE_MESH_DECODER_HH
