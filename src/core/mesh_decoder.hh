/**
 * @file
 * Cycle-level simulator of the SFQ mesh decoder — the paper's core
 * contribution (Sections V and VI). One decoder module per lattice site
 * plus a ring of boundary modules; grow, pair-request, pair-grant and
 * pair signals propagate one module per cycle as persistent pulse trains.
 *
 * Protocol (final design):
 *  1. hot modules emit grow rays in all four directions;
 *  2. modules where two rays meet emit pair-requests back along both
 *     reversed directions;
 *  3. a hot module grants exactly one request (latched);
 *  4. where two grant trains meet, single pair pulses are emitted toward
 *     both endpoints, marking every traversed module as chain member;
 *  5. a pair pulse reaching a hot module clears its latch and fires the
 *     global reset (pair signals are exempt so the farther leg finishes);
 *  6. boundary modules answer grow with pair-request and grant with pair.
 *
 * The mesh state is bit-packed one row per 64-bit word, so each cycle is
 * a handful of bitwise operations per row; decoding a d=9 lattice takes
 * microseconds of host time.
 */

#ifndef NISQPP_CORE_MESH_DECODER_HH
#define NISQPP_CORE_MESH_DECODER_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/mesh_config.hh"
#include "core/module_logic.hh"
#include "decoders/decoder.hh"

namespace nisqpp {

/** Telemetry from one mesh decode. */
struct MeshDecodeStats
{
    int cycles = 0;            ///< total mesh cycles to completion
    int pairings = 0;          ///< hot-latch clears (chain endpoints)
    int resets = 0;            ///< global resets fired
    int remainingHot = 0;      ///< unresolved syndromes at exit
    bool quiesced = false;     ///< exited via no-progress window
    bool timedOut = false;     ///< exited via hard cycle cap

    /** Wall-clock nanoseconds at @p period_ps per cycle. */
    double
    nanoseconds(double period_ps) const
    {
        return cycles * period_ps * 1e-3;
    }
};

/**
 * The SFQ mesh decoder. Implements the Decoder interface so the Monte
 * Carlo harness can drive it interchangeably with the software baselines.
 */
class MeshDecoder : public Decoder
{
  public:
    MeshDecoder(const SurfaceLattice &lattice, ErrorType type,
                const MeshConfig &config = MeshConfig::finalDesign());

    Correction decode(const Syndrome &syndrome) override;
    void decode(const Syndrome &syndrome, TrialWorkspace &ws) override;

    std::string name() const override
    {
        return "sfq-mesh[" + config_.label() + "]";
    }

    const MeshConfig &config() const { return config_; }

    /** Telemetry of the most recent decode. */
    const MeshDecodeStats &lastStats() const { return stats_; }

    /** Hard cap on simulated cycles per decode. */
    int cycleCap() const { return cycleCap_; }

    /** No-progress window before declaring quiescence. */
    int quiescenceWindow() const { return quiescence_; }

    /**
     * Optional per-cycle trace sink for protocol debugging; prints
     * in-flight signal summaries each cycle when non-null.
     */
    std::ostream *trace = nullptr;

  private:
    using Word = std::uint64_t;
    using Planes = DirRow<std::vector<Word>>;

    void clearPlanes(Planes &planes);
    bool planesEmpty(const Planes &planes) const;
    void shiftPlanes(const Planes &out, Planes &in) const;
    void step();
    void decodeImpl(const Syndrome &syndrome, Correction &out);

    MeshConfig config_;
    int span_;      ///< grid size + 2 (boundary ring included)
    int cycleCap_;
    int quiescence_;

    std::vector<Word> interior_; ///< interior module mask per row
    std::vector<Word> bnd_;      ///< enabled boundary-ring mask per row
    std::vector<Word> valid_;    ///< interior | bnd

    // Per-decode state.
    Planes g_, rq_, gr_, pr_;       ///< in-flight signals (current inputs)
    Planes grantLatch_;             ///< hot modules' grant choice
    std::vector<Word> formed_;      ///< sticky "this module formed a pair"
    std::vector<Word> fired_;       ///< cleared endpoints still absorbing
    std::vector<Word> hot_;
    std::vector<Word> chain_;
    int resetCountdown_ = 0;
    int lastFire_ = 0;
    int cycle_ = 0;
    MeshDecodeStats stats_;
};

} // namespace nisqpp

#endif // NISQPP_CORE_MESH_DECODER_HH
