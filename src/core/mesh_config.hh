/**
 * @file
 * Configuration of the SFQ mesh decoder's incremental design mechanisms
 * (paper Section V-C and Fig. 10 top row): the baseline grow/pair
 * protocol, the global reset mechanism, the boundary modules, and the
 * request-grant equidistant arbitration of the final design.
 */

#ifndef NISQPP_CORE_MESH_CONFIG_HH
#define NISQPP_CORE_MESH_CONFIG_HH

#include <string>

namespace nisqpp {

/** Feature flags and timing parameters of one mesh decoder instance. */
struct MeshConfig
{
    /** Global reset after each completed pairing (Fig. 8(a) fix). */
    bool resetMechanism = true;

    /** Boundary modules ringing the lattice (Fig. 8(b) fix). */
    bool boundaryMechanism = true;

    /** Request-grant arbitration for equidistant sets (Fig. 8(c) fix). */
    bool equidistantMechanism = true;

    /**
     * Cycles the global reset blocks grow/request/grant inputs; the
     * paper's synthesized circuit depth is 5 (Section VI-B).
     */
    int resetCycles = 5;

    /**
     * Mesh clock period in picoseconds; the paper's synthesized full
     * circuit latency (Table III).
     */
    double cyclePeriodPs = 162.72;

    /** The paper's incremental designs. @{ */
    static MeshConfig baseline();
    static MeshConfig withReset();
    static MeshConfig withResetAndBoundary();
    static MeshConfig finalDesign();
    /** @} */

    /** Short label used in experiment tables. */
    std::string label() const;
};

inline MeshConfig
MeshConfig::baseline()
{
    MeshConfig c;
    c.resetMechanism = false;
    c.boundaryMechanism = false;
    c.equidistantMechanism = false;
    return c;
}

inline MeshConfig
MeshConfig::withReset()
{
    MeshConfig c = baseline();
    c.resetMechanism = true;
    return c;
}

inline MeshConfig
MeshConfig::withResetAndBoundary()
{
    MeshConfig c = withReset();
    c.boundaryMechanism = true;
    return c;
}

inline MeshConfig
MeshConfig::finalDesign()
{
    return MeshConfig{};
}

inline std::string
MeshConfig::label() const
{
    if (!resetMechanism && !boundaryMechanism && !equidistantMechanism)
        return "baseline";
    if (!boundaryMechanism && !equidistantMechanism)
        return "reset";
    if (!equidistantMechanism)
        return "reset+boundary";
    return "final";
}

} // namespace nisqpp

#endif // NISQPP_CORE_MESH_CONFIG_HH
