/**
 * @file
 * Telemetry of one SFQ mesh decode. Lives apart from the decoder so the
 * generic Decoder interface can expose mesh telemetry (per decode and
 * per batch lane) without depending on the mesh implementation — the
 * streaming latency model and the Monte Carlo harness consume these
 * through the virtual Decoder::meshStats() hook.
 */

#ifndef NISQPP_CORE_MESH_STATS_HH
#define NISQPP_CORE_MESH_STATS_HH

namespace nisqpp {

/** Telemetry from one mesh decode (one lane of a batched decode). */
struct MeshDecodeStats
{
    int cycles = 0;            ///< total mesh cycles to completion
    int pairings = 0;          ///< hot-latch clears (chain endpoints)
    int resets = 0;            ///< global resets fired
    int remainingHot = 0;      ///< unresolved syndromes at exit
    bool quiesced = false;     ///< exited via no-progress window
    bool timedOut = false;     ///< exited via hard cycle cap

    /** Wall-clock nanoseconds at @p period_ps per cycle. */
    double
    nanoseconds(double period_ps) const
    {
        return cycles * period_ps * 1e-3;
    }

    bool operator==(const MeshDecodeStats &o) const = default;
};

} // namespace nisqpp

#endif // NISQPP_CORE_MESH_STATS_HH
