/**
 * @file
 * Decode-confidence extraction from SFQ mesh telemetry, the signal
 * driving tiered escalation (the paper's thesis operationalized: the
 * mesh decodes everything, and the rare windows it struggled with are
 * routed to an exact software decoder). The mesh already reports how
 * hard each decode was — cycles to completion, global resets, and the
 * exit path (clean completion vs cycle cap vs quiescence window) — so
 * confidence is a pure function of MeshDecodeStats, costs nothing on
 * the hot path, and is byte-deterministic like every other counter.
 */

#ifndef NISQPP_CORE_CONFIDENCE_HH
#define NISQPP_CORE_CONFIDENCE_HH

#include <vector>

#include "core/mesh_stats.hh"

namespace nisqpp {

/**
 * Per-decode telemetry of one tiered decode (one lane of a batch):
 * the confidence the mesh's answer earned, whether it was escalated
 * to the exact backend, and the Pauli-frame repair the exact decoder
 * demanded when it disagreed with the provisional commit.
 */
struct TieredDecodeStats
{
    /** Mesh confidence in [0, 1]; 1 = trivially clean decode. */
    double confidence = 1.0;
    /** Confidence fell below the threshold; exact decoder consulted. */
    bool escalated = false;
    /** Exact decoder disagreed; a frame repair was emitted. */
    bool repaired = false;
    /**
     * Data-qubit flips turning the provisional (mesh) correction into
     * the exact one — XOR of the two flip sets, sorted, duplicates
     * cancelled mod 2. Empty when not escalated or when the exact
     * decoder agreed.
     */
    std::vector<int> repairFlips;

    void
    reset()
    {
        confidence = 1.0;
        escalated = false;
        repaired = false;
        repairFlips.clear();
    }
};

/**
 * Confidence signal over one mesh decode's telemetry. Hard exits are
 * unambiguous: a decode that hit the cycle cap, quiesced with work
 * outstanding, or left hot syndromes unresolved earns zero confidence
 * — those are exactly the "ambiguous window" failure modes the mesh
 * cannot distinguish from success on its own. Clean completions earn
 *
 *     quiescenceWindow / (quiescenceWindow + cycles
 *                         + resetPenaltyCycles * resets)
 *
 * which is 1.0 for an empty syndrome (0 cycles), decays smoothly with
 * decode effort, and normalizes by the quiescence window so the same
 * threshold means the same relative effort at every distance. Resets
 * are penalized extra: each global reset marks a pairing conflict the
 * mesh resolved greedily, the situation where its approximation is
 * most likely to differ from the exact matching.
 */
struct MeshConfidence
{
    /** Mesh no-progress window (MeshDecoder::quiescenceWindow()). */
    int quiescenceWindow = 1;
    /** Extra effort charged per global reset. */
    int resetPenaltyCycles = 8;

    double
    score(const MeshDecodeStats &stats) const
    {
        if (stats.timedOut || stats.quiesced || stats.remainingHot > 0)
            return 0.0;
        const double window =
            quiescenceWindow > 0 ? quiescenceWindow : 1;
        const double effort =
            stats.cycles +
            static_cast<double>(resetPenaltyCycles) * stats.resets;
        return window / (window + effort);
    }
};

} // namespace nisqpp

#endif // NISQPP_CORE_CONFIDENCE_HH
