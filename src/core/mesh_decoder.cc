#include "core/mesh_decoder.hh"

#include <algorithm>
#include <bit>
#include <ostream>
#include <type_traits>

#include "common/logging.hh"
#include "decoders/workspace.hh"
#include "obs/metrics.hh"

namespace nisqpp {

namespace {

constexpr int dN = static_cast<int>(Dir::N);
constexpr int dE = static_cast<int>(Dir::E);
constexpr int dS = static_cast<int>(Dir::S);
constexpr int dW = static_cast<int>(Dir::W);

/// kRev[d] = index of the reversed travel direction.
constexpr int kRev[kNumDirs] = {dS, dW, dN, dE};

// Element accessors bridging the lane word types live in common/simd.hh
// so the union-find batch engine shares them.
using simd::anyW;
using simd::elementsOf;
using simd::elemOf;
using simd::orElem;

} // namespace

template <typename W>
void
MeshDecoder::buildEngine(LaneEngine<W> &e, int max_lanes) const
{
    const int n = lattice().gridSize();
    constexpr int elements = elementsOf<W>();
    const int per_elem =
        std::max(1, std::min(max_lanes, 64 / span_));
    e.perElem = per_elem;
    e.lanes = std::min(max_lanes, per_elem * elements);

    // Lane addresses: lanes fill element 0's sub-lanes first, then
    // element 1's, ... so the lanes of one element are contiguous.
    for (int l = 0; l < e.lanes; ++l) {
        e.laneElem[l] = l / per_elem;
        e.laneBase[l] = (l % per_elem) * span_;
        const std::uint64_t low = span_ >= 64
                                      ? ~std::uint64_t{0}
                                      : (std::uint64_t{1} << span_) - 1;
        e.laneSub[l] = low << e.laneBase[l];
        e.laneMask[l] = W{};
        orElem(e.laneMask[l], e.laneElem[l], e.laneSub[l]);
    }

    // Single-lane row masks, then replicated into every lane.
    std::vector<std::uint64_t> interior(span_, 0), bnd(span_, 0);
    for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c)
            interior[r + 1] |= std::uint64_t{1} << (c + 1);

    if (config_.boundaryMechanism) {
        // Without the request-grant arbitration both rings would
        // answer the same grow rays with pair pulses, composing two
        // boundary chains into a full crossing; the non-arbitrated
        // variant therefore hardwires a single responding side (the
        // final design lets the grant pick either side).
        const bool both_sides = config_.equidistantMechanism;
        if (type() == ErrorType::Z) {
            // Z-error chains terminate west/east; ring modules sit next
            // to the boundary data qubits (even interior rows).
            for (int r = 0; r < n; r += 2) {
                bnd[r + 1] |= std::uint64_t{1} << 0;
                if (both_sides)
                    bnd[r + 1] |= std::uint64_t{1} << (n + 1);
            }
        } else {
            for (int c = 0; c < n; c += 2) {
                bnd[0] |= std::uint64_t{1} << (c + 1);
                if (both_sides)
                    bnd[span_ - 1] |= std::uint64_t{1} << (c + 1);
            }
        }
    }

    e.interior.assign(span_, W{});
    e.bnd.assign(span_, W{});
    e.valid.assign(span_, W{});
    W edgeE{}, edgeW{};
    for (int l = 0; l < e.lanes; ++l) {
        const int el = e.laneElem[l];
        const int base = e.laneBase[l];
        for (int r = 0; r < span_; ++r) {
            orElem(e.interior[r], el, interior[r] << base);
            orElem(e.bnd[r], el, bnd[r] << base);
        }
        // Shift guards: drop each lane's edge column before an
        // east/west shift — exactly the bits the valid mask would kill
        // after an unguarded scalar shift, so guarded shifts are
        // trajectory-neutral while keeping lanes isolated.
        orElem(edgeE, el, std::uint64_t{1} << (base + span_ - 1));
        orElem(edgeW, el, std::uint64_t{1} << base);
    }
    for (int r = 0; r < span_; ++r)
        e.valid[r] = e.interior[r] | e.bnd[r];
    e.guardE = ~edgeE;
    e.guardW = ~edgeW;

    for (auto *planes : {&e.g, &e.rq, &e.gr, &e.pr, &e.grantLatch,
                         &e.gOut, &e.rqOut, &e.grOut, &e.prOut})
        for (auto &plane : *planes)
            plane.assign(span_, W{});
    e.formed.assign(span_, W{});
    e.fired.assign(span_, W{});
    e.hot.assign(span_, W{});
    e.chain.assign(span_, W{});
    e.fire.assign(span_, W{});
}

MeshDecoder::MeshDecoder(const SurfaceLattice &lattice, ErrorType type,
                         const MeshConfig &config)
    : Decoder(lattice, type), config_(config),
      span_(lattice.gridSize() + 2), width_(simd::activeWidth())
{
    require(span_ <= 62, "MeshDecoder: lattice too wide for 64-bit rows");
    cycleCap_ = 128 * span_;
    quiescence_ = 3 * span_ + 10;
    buildEngine(scalar_, 1);
    // Build only the latched width's batch engine: lane results are
    // indexed by trial and identical across widths, so the choice only
    // moves throughput (and the memory of the unbuilt engines).
    switch (width_) {
      case simd::Width::Scalar:
        buildEngine(batch64_, kMaxLanes);
        batchLanes_ = batch64_.lanes;
        break;
      case simd::Width::V256:
        buildEngine(batch256_, kMaxLanes);
        batchLanes_ = batch256_.lanes;
        break;
      case simd::Width::V512:
        buildEngine(batch512_, kMaxLanes);
        batchLanes_ = batch512_.lanes;
        break;
    }
}

template <typename W>
void
MeshDecoder::stepLanes(LaneEngine<W> &e,
                       MeshDecodeStats *const *laneStats)
{
    // Lanes inside their reset window at cycle entry: grow emission is
    // blocked there, and grow/request/grant outputs are cleared again
    // below unless the lane fires this very cycle.
    W inReset{};
    for (int l = 0; l < e.lanes; ++l)
        if (e.resetCountdown[l] > 0)
            orElem(inReset, e.laneElem[l], e.laneSub[l]);

    W fire_any{};
    const W guardE = e.guardE, guardW = e.guardW;

    // The planes hold last cycle's *emissions*; each row derives the
    // shifted inputs on the fly (a signal traveling East into row r is
    // last cycle's East emission of the same row, one column over),
    // saving a full materialization pass per plane per cycle.
    const auto inE = [&](const std::vector<W> &out, int r) {
        return ((out[r] & guardE) << 1) & e.valid[r];
    };
    const auto inW = [&](const std::vector<W> &out, int r) {
        return ((out[r] & guardW) >> 1) & e.valid[r];
    };
    const auto inN = [&](const std::vector<W> &out, int r) {
        return (r + 1 < span_ ? out[r + 1] : W{}) & e.valid[r];
    };
    const auto inS = [&](const std::vector<W> &out, int r) {
        return (r > 0 ? out[r - 1] : W{}) & e.valid[r];
    };

    for (int r = 0; r < span_; ++r) {
        const W hot = e.hot[r];
        DirRow<W> pr_in{inN(e.pr[dN], r), inE(e.pr[dE], r),
                        inS(e.pr[dS], r), inW(e.pr[dW], r)};
        const W pr_in_any =
            pr_in[dN] | pr_in[dE] | pr_in[dS] | pr_in[dW];

        // Pair pulses reaching a hot module complete a pairing.
        e.fire[r] = pr_in_any & hot;
        fire_any |= e.fire[r];

        // Grow: hot modules emit in all directions (blocked during
        // reset); interior modules pass. In the variants without the
        // equidistant mechanism the meets happen on grow trains, so a
        // formed module consumes them.
        DirRow<W> grow_in{inN(e.g[dN], r), inE(e.g[dE], r),
                          inS(e.g[dS], r), inW(e.g[dW], r)};
        const W met_grow =
            config_.equidistantMechanism ? W{} : e.formed[r];
        for (int d = 0; d < kNumDirs; ++d)
            e.gOut[d][r] = (grow_in[d] & e.interior[r] & ~met_grow) |
                           (hot & ~inReset);

        // Meets of grow rays: requests in the final design, pair pulses
        // directly in the variants without the equidistant mechanism.
        //
        // A module that formed a pair latches `formed` (sticky until
        // the global reset) and consumes the trains that met there: it
        // emits exactly one pair pulse per leg and stops passing the
        // met trains, both this cycle (met_now) and afterwards.
        // Without this, the overlap region of two persistent trains
        // keeps expanding and excess pair pulses leak through the
        // cleared endpoints (see DESIGN.md).
        const W formed = e.formed[r];
        const W form_allow = e.interior[r] & ~hot & ~formed;
        DirRow<W> pr_raw{W{}, W{}, W{}, W{}};
        if (config_.equidistantMechanism) {
            DirRow<W> rq_emit{W{}, W{}, W{}, W{}};
            emitFromMeets(grow_in, e.interior[r] & ~hot, rq_emit);
            DirRow<W> rq_in{inN(e.rq[dN], r), inE(e.rq[dE], r),
                            inS(e.rq[dS], r), inW(e.rq[dW], r)};
            for (int d = 0; d < kNumDirs; ++d) {
                e.rqOut[d][r] = (rq_in[d] & e.interior[r] & ~hot) |
                                rq_emit[d];
                // Boundary modules answer grow with a request.
                e.rqOut[d][r] |= grow_in[kRev[d]] & e.bnd[r];
            }

            // Hot modules latch exactly one grant.
            DirRow<W> latch{e.grantLatch[dN][r], e.grantLatch[dE][r],
                            e.grantLatch[dS][r], e.grantLatch[dW][r]};
            updateGrantLatch(rq_in, hot, latch);
            DirRow<W> gr_in{inN(e.gr[dN], r), inE(e.gr[dE], r),
                            inS(e.gr[dS], r), inW(e.gr[dW], r)};
            for (int d = 0; d < kNumDirs; ++d) {
                e.grantLatch[d][r] = latch[d];
                // Hot modules do not pass foreign grant trains (they
                // emit their own); a passed-through train would form
                // spurious meets beyond the endpoint.
                e.grOut[d][r] =
                    (gr_in[d] & e.interior[r] & ~hot & ~formed) |
                    (latch[d] & hot);
            }

            // Pair pulses form where grant trains meet, and at boundary
            // modules that received a grant.
            emitFromMeets(gr_in, form_allow, pr_raw);
            for (int d = 0; d < kNumDirs; ++d)
                pr_raw[d] |= gr_in[kRev[d]] & e.bnd[r] & ~formed;
            const W met_now =
                pr_raw[dN] | pr_raw[dE] | pr_raw[dS] | pr_raw[dW];
            for (int d = 0; d < kNumDirs; ++d)
                e.grOut[d][r] &= ~met_now | (e.grantLatch[d][r] & hot);
            e.formed[r] = formed | met_now;
        } else {
            emitFromMeets(grow_in, form_allow, pr_raw);
            for (int d = 0; d < kNumDirs; ++d)
                pr_raw[d] |= grow_in[kRev[d]] & e.bnd[r] & ~formed;
            const W met_now =
                pr_raw[dN] | pr_raw[dE] | pr_raw[dS] | pr_raw[dW];
            for (int d = 0; d < kNumDirs; ++d)
                e.gOut[d][r] &= ~met_now | hot;
            e.formed[r] = formed | met_now;
        }

        // Emission is one pulse per formation (formed gating above);
        // non-hot interior modules pass, hot modules absorb. An
        // endpoint cleared this round keeps absorbing until the
        // round's pair pulses have drained: otherwise a second pulse
        // aimed at it (a competing pairing, or the second boundary
        // ring answering the same grow rays in the variants without
        // request-grant arbitration) leaks through and paints a bogus
        // crossing chain.
        const W absorb = hot | e.fired[r];
        for (int d = 0; d < kNumDirs; ++d)
            e.prOut[d][r] =
                (pr_in[d] & e.interior[r] & ~absorb) | pr_raw[d];

        // Chain membership: everything a pair pulse touches, including
        // the emitting module and the absorbing endpoints. Touches
        // TOGGLE membership (XOR): chains from successive pairing
        // rounds that cross the same data qubit must cancel, exactly
        // as destructive-read DRO error outputs drained after every
        // pairing would accumulate in the control layer's Pauli frame.
        e.chain[r] ^= e.prOut[dN][r] | e.prOut[dE][r] |
                      e.prOut[dS][r] | e.prOut[dW][r] | e.fire[r];
    }

    // Complete pairings: clear latches; maybe fire the per-lane global
    // reset. `resetNow` marks lanes whose reset fires this cycle,
    // `clearHeld` the lanes mid-reset-window without a fire — the two
    // lane sets whose grow/request/grant outputs are suppressed.
    W resetNow{};
    W fireLanes{};
    if (anyW(fire_any)) {
        for (int r = 0; r < span_; ++r) {
            const W fire = e.fire[r];
            if (!anyW(fire))
                continue;
            for (int el = 0; el < elementsOf<W>(); ++el) {
                const std::uint64_t f = elemOf(fire, el);
                if (!f)
                    continue;
                const int first = el * e.perElem;
                const int last = std::min(first + e.perElem, e.lanes);
                for (int l = first; l < last; ++l) {
                    const int cleared =
                        std::popcount(f & e.laneSub[l]);
                    laneStats[l]->pairings += cleared;
                    e.hotCount[l] -= cleared;
                }
            }
            e.hot[r] &= ~fire;
            e.fired[r] |= fire;
            for (int d = 0; d < kNumDirs; ++d)
                e.grantLatch[d][r] &= ~fire;
        }
        for (int l = 0; l < e.lanes; ++l) {
            if (!(elemOf(fire_any, e.laneElem[l]) & e.laneSub[l]))
                continue;
            orElem(fireLanes, e.laneElem[l], e.laneSub[l]);
            e.lastFire[l] = e.cycle;
            if (config_.resetMechanism) {
                ++laneStats[l]->resets;
                e.resetCountdown[l] = config_.resetCycles;
                orElem(resetNow, e.laneElem[l], e.laneSub[l]);
            }
        }
    }
    const W clearHeld = inReset & ~fireLanes;
    const W clear_out = resetNow | clearHeld;
    if (anyW(clear_out)) {
        const W keep = ~clear_out;
        for (int r = 0; r < span_; ++r)
            for (int d = 0; d < kNumDirs; ++d) {
                e.gOut[d][r] &= keep;
                e.rqOut[d][r] &= keep;
                e.grOut[d][r] &= keep;
            }
    }
    if (anyW(resetNow)) {
        const W keep = ~resetNow;
        for (int r = 0; r < span_; ++r) {
            // In the final design in-flight pair pulses are exempt so
            // the farther chain leg completes (Section VI-B); the
            // paper ties that exemption to the request-grant design,
            // so the intermediate variants clear them too.
            if (!config_.equidistantMechanism)
                for (int d = 0; d < kNumDirs; ++d)
                    e.prOut[d][r] &= keep;
            e.formed[r] &= keep;
            for (int d = 0; d < kNumDirs; ++d)
                e.grantLatch[d][r] &= keep;
        }
    }

    // End of a lane's reset window: its cleared endpoints resume
    // passing (spurious same-round pulses are gone by now in the final
    // design; the variants without the pair exemption cleared them at
    // the reset itself).
    W windowOver{};
    for (int l = 0; l < e.lanes; ++l) {
        if (e.resetCountdown[l] > 0 && --e.resetCountdown[l] == 0)
            orElem(windowOver, e.laneElem[l], e.laneSub[l]);
    }
    if (anyW(windowOver))
        for (int r = 0; r < span_; ++r)
            e.fired[r] &= ~windowOver;

    // The pairing round is over once a lane's pair pulses have all
    // drained: occupancy of next cycle's (shifted) pair inputs,
    // derived without materializing them.
    W pr_occ{};
    for (int r = 0; r < span_; ++r)
        pr_occ |= inN(e.prOut[dN], r) | inE(e.prOut[dE], r) |
                  inS(e.prOut[dS], r) | inW(e.prOut[dW], r);
    e.prOcc = pr_occ;
    W drained{};
    for (int l = 0; l < e.lanes; ++l)
        if (!(elemOf(pr_occ, e.laneElem[l]) & e.laneSub[l]))
            orElem(drained, e.laneElem[l], e.laneSub[l]);
    if (anyW(drained))
        for (int r = 0; r < span_; ++r)
            e.fired[r] &= ~drained;

    if constexpr (std::is_same_v<W, std::uint64_t>) {
        if (trace && e.lanes == 1) {
            // Print next cycle's in-flight signals (the shifted
            // inputs), matching the historical scalar trace format.
            auto plane_cells =
                [&](const typename LaneEngine<W>::Planes &out,
                    const char *tag) {
                    for (int d = 0; d < kNumDirs; ++d)
                        for (int r = 0; r < span_; ++r) {
                            W w = d == dN   ? inN(out[dN], r)
                                  : d == dE ? inE(out[dE], r)
                                  : d == dS ? inS(out[dS], r)
                                            : inW(out[dW], r);
                            while (w) {
                                const int bit = std::countr_zero(w);
                                w &= w - 1;
                                *trace << ' ' << tag << "NESW"[d]
                                       << '(' << r - 1 << ','
                                       << bit - 1 << ')';
                            }
                        }
                };
            *trace << "cycle " << e.cycle << " reset="
                   << e.resetCountdown[0] << " |";
            plane_cells(e.prOut, "pr");
            plane_cells(e.grOut, "gr");
            *trace << '\n';
        }
    }

    // Publish this cycle's emissions as next cycle's inputs-to-derive.
    std::swap(e.g, e.gOut);
    if (config_.equidistantMechanism) {
        std::swap(e.rq, e.rqOut);
        std::swap(e.gr, e.grOut);
    }
    std::swap(e.pr, e.prOut);
    ++e.cycle;
}

Correction
MeshDecoder::decode(const Syndrome &syndrome)
{
    Correction corr;
    const Syndrome *syn = &syndrome;
    Correction *out = &corr;
    batchStats_.resize(1);
    decodeLanes(scalar_, &syn, 1, &out, batchStats_.data());
    return corr;
}

void
MeshDecoder::decode(const Syndrome &syndrome, TrialWorkspace &ws)
{
    ws.correction.clear();
    const Syndrome *syn = &syndrome;
    Correction *out = &ws.correction;
    batchStats_.resize(1);
    decodeLanes(scalar_, &syn, 1, &out, batchStats_.data());
}

void
MeshDecoder::decodeBatch(const Syndrome *const *syndromes,
                         std::size_t count, TrialWorkspace &ws)
{
    if (count == 0)
        return;
    if (ws.laneCorrections.size() < count)
        ws.laneCorrections.resize(count);
    batchStats_.resize(count);
    outScratch_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        ws.laneCorrections[i].clear();
        outScratch_[i] = &ws.laneCorrections[i];
    }
    switch (width_) {
      case simd::Width::Scalar:
        decodeLanes(batch64_, syndromes, static_cast<int>(count),
                    outScratch_.data(), batchStats_.data());
        break;
      case simd::Width::V256:
        decodeLanes(batch256_, syndromes, static_cast<int>(count),
                    outScratch_.data(), batchStats_.data());
        break;
      case simd::Width::V512:
        decodeLanes(batch512_, syndromes, static_cast<int>(count),
                    outScratch_.data(), batchStats_.data());
        break;
    }
}

const MeshDecodeStats *
MeshDecoder::meshStats(std::size_t lane) const
{
    return lane < batchStats_.size() ? &batchStats_[lane] : nullptr;
}

void
MeshDecoder::exportMetrics(obs::MetricSet &out) const
{
    if (decodes_ == 0)
        return;
    out.add("decoder.mesh.decodes", decodes_);
    out.add("decoder.mesh.cycles", cyclesTotal_);
    out.add("decoder.mesh.pairings", pairingsTotal_);
    out.add("decoder.mesh.resets", resetsTotal_);
    out.add("decoder.mesh.cycles_capped", cappedTotal_);
    out.add("decoder.mesh.quiesced", quiescedTotal_);
}

template <typename W>
void
MeshDecoder::finishLane(LaneEngine<W> &e, int lane, Correction &out,
                        MeshDecodeStats &stats)
{
    stats.remainingHot = e.hotCount[lane];

    // Every completed trial — scalar or batched — retires through
    // here exactly once, so this is the single accumulation point for
    // the deterministic work counters (stats.cycles and the exit
    // flags are final by now; pairings/resets latched in stepLanes).
    ++decodes_;
    cyclesTotal_ += static_cast<std::uint64_t>(stats.cycles);
    pairingsTotal_ += static_cast<std::uint64_t>(stats.pairings);
    resetsTotal_ += static_cast<std::uint64_t>(stats.resets);
    if (stats.timedOut)
        ++cappedTotal_;
    if (stats.quiesced)
        ++quiescedTotal_;

    // Harvest this lane's chain bits into data-qubit flips (ascending
    // row, then column — identical to the scalar readout order).
    const int el = e.laneElem[lane];
    const int base = e.laneBase[lane];
    const int n = lattice().gridSize();
    for (int r = 0; r < n; ++r) {
        std::uint64_t row = elemOf(e.chain[r + 1], el) &
                            elemOf(e.interior[r + 1], el) &
                            e.laneSub[lane];
        while (row) {
            const int bit = std::countr_zero(row);
            row &= row - 1;
            const Coord rc{r, bit - base - 1};
            if (lattice().role(rc) == SiteRole::Data)
                out.dataFlips.push_back(lattice().dataIndex(rc));
        }
    }

    // Zero the lane everywhere: once freed it contributes no signals,
    // no firings and no stats, and the next trial injected into it
    // starts from clean planes.
    const W keep = ~e.laneMask[lane];
    for (auto *planes : {&e.g, &e.rq, &e.gr, &e.pr, &e.grantLatch})
        for (auto &plane : *planes)
            for (W &w : plane)
                w &= keep;
    for (auto *rows : {&e.formed, &e.fired, &e.hot, &e.chain})
        for (W &w : *rows)
            w &= keep;
    e.resetCountdown[lane] = 0;
    e.hotCount[lane] = 0;
    e.active[lane] = false;
    e.prOcc &= keep; // the lane's pair pulses are gone with it
}

template <typename W>
void
MeshDecoder::decodeLanes(LaneEngine<W> &e,
                         const Syndrome *const *syndromes, int count,
                         Correction *const *outs, MeshDecodeStats *stats)
{
    for (auto *planes : {&e.g, &e.rq, &e.gr, &e.pr, &e.grantLatch})
        for (auto &plane : *planes)
            std::fill(plane.begin(), plane.end(), W{});
    for (auto *rows : {&e.formed, &e.fired, &e.hot, &e.chain})
        std::fill(rows->begin(), rows->end(), W{});
    e.cycle = 0;
    e.prOcc = W{};

    // Per-lane trial bookkeeping. Every comparison against the global
    // cycle counter is relative to the lane's start cycle, so a trial
    // injected mid-flight behaves exactly as if it were decoded alone
    // from cycle 0.
    MeshDecodeStats dummy;
    std::array<MeshDecodeStats *, kMaxLanes> laneStats;
    std::array<Correction *, kMaxLanes> laneOut{};
    std::array<int, kMaxLanes> start{};
    for (int l = 0; l < e.lanes; ++l) {
        laneStats[l] = &dummy;
        e.active[l] = false;
        e.resetCountdown[l] = 0;
        e.lastFire[l] = 0;
        e.hotCount[l] = 0;
    }

    int next = 0; ///< next trial to inject
    int done = 0; ///< trials finished
    while (done < count) {
        for (int l = 0; l < e.lanes; ++l) {
            // Retire-and-refill loop: a lane may complete an injected
            // empty syndrome instantly and take another in the same
            // cycle.
            for (;;) {
                if (!e.active[l]) {
                    if (next >= count)
                        break;
                    const Syndrome &syn = *syndromes[next];
                    require(syn.type() == type(),
                            "MeshDecoder: syndrome type mismatch");
                    stats[next] = MeshDecodeStats{};
                    laneStats[l] = &stats[next];
                    laneOut[l] = outs[next];
                    start[l] = e.cycle;
                    e.lastFire[l] = e.cycle;
                    e.hotCount[l] = syn.weight();
                    e.active[l] = true;
                    const int el = e.laneElem[l];
                    const int base = e.laneBase[l];
                    syn.forEachHot([&](int a) {
                        const Coord rc =
                            lattice().ancillaCoord(type(), a);
                        orElem(e.hot[rc.row + 1], el,
                               std::uint64_t{1}
                                   << (base + rc.col + 1));
                    });
                    ++next;
                }
                const bool pr_empty =
                    !(elemOf(e.prOcc, e.laneElem[l]) & e.laneSub[l]);
                if (e.hotCount[l] == 0 && pr_empty) {
                    // completed
                } else if (e.cycle - start[l] >= cycleCap_) {
                    laneStats[l]->timedOut = true;
                } else if (e.cycle - e.lastFire[l] > quiescence_) {
                    laneStats[l]->quiesced = true;
                } else {
                    break; // still stepping
                }
                laneStats[l]->cycles = e.cycle - start[l];
                finishLane(e, l, *laneOut[l], *laneStats[l]);
                laneStats[l] = &dummy;
                ++done;
            }
        }
        if (done >= count)
            break;
        stepLanes(e, laneStats.data());
    }
}

} // namespace nisqpp
