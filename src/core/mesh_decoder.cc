#include "core/mesh_decoder.hh"

#include <bit>
#include <ostream>

#include "common/logging.hh"
#include "decoders/workspace.hh"

namespace nisqpp {

namespace {

constexpr int dN = static_cast<int>(Dir::N);
constexpr int dE = static_cast<int>(Dir::E);
constexpr int dS = static_cast<int>(Dir::S);
constexpr int dW = static_cast<int>(Dir::W);

/// kRev[d] = index of the reversed travel direction.
constexpr int kRev[kNumDirs] = {dS, dW, dN, dE};

} // namespace

MeshDecoder::MeshDecoder(const SurfaceLattice &lattice, ErrorType type,
                         const MeshConfig &config)
    : Decoder(lattice, type), config_(config),
      span_(lattice.gridSize() + 2)
{
    require(span_ <= 62, "MeshDecoder: lattice too wide for 64-bit rows");
    const int n = lattice.gridSize();
    cycleCap_ = 128 * span_;
    quiescence_ = 3 * span_ + 10;

    interior_.assign(span_, 0);
    bnd_.assign(span_, 0);
    for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c)
            interior_[r + 1] |= Word{1} << (c + 1);

    if (config_.boundaryMechanism) {
        // Without the request-grant arbitration both rings would
        // answer the same grow rays with pair pulses, composing two
        // boundary chains into a full crossing; the non-arbitrated
        // variant therefore hardwires a single responding side (the
        // final design lets the grant pick either side).
        const bool both_sides = config_.equidistantMechanism;
        if (type == ErrorType::Z) {
            // Z-error chains terminate west/east; ring modules sit next
            // to the boundary data qubits (even interior rows).
            for (int r = 0; r < n; r += 2) {
                bnd_[r + 1] |= Word{1} << 0;
                if (both_sides)
                    bnd_[r + 1] |= Word{1} << (n + 1);
            }
        } else {
            for (int c = 0; c < n; c += 2) {
                bnd_[0] |= Word{1} << (c + 1);
                if (both_sides)
                    bnd_[span_ - 1] |= Word{1} << (c + 1);
            }
        }
    }

    valid_.assign(span_, 0);
    for (int r = 0; r < span_; ++r)
        valid_[r] = interior_[r] | bnd_[r];

    for (auto *planes : {&g_, &rq_, &gr_, &pr_, &grantLatch_})
        for (auto &plane : *planes)
            plane.assign(span_, 0);
    formed_.assign(span_, 0);
    fired_.assign(span_, 0);
    hot_.assign(span_, 0);
    chain_.assign(span_, 0);
}

void
MeshDecoder::clearPlanes(Planes &planes)
{
    for (auto &plane : planes)
        std::fill(plane.begin(), plane.end(), Word{0});
}

bool
MeshDecoder::planesEmpty(const Planes &planes) const
{
    for (const auto &plane : planes)
        for (Word w : plane)
            if (w)
                return false;
    return true;
}

void
MeshDecoder::shiftPlanes(const Planes &out, Planes &in) const
{
    for (int r = 0; r < span_; ++r) {
        in[dE][r] = (out[dE][r] << 1) & valid_[r];
        in[dW][r] = (out[dW][r] >> 1) & valid_[r];
        in[dN][r] = (r + 1 < span_ ? out[dN][r + 1] : Word{0}) & valid_[r];
        in[dS][r] = (r > 0 ? out[dS][r - 1] : Word{0}) & valid_[r];
    }
}

void
MeshDecoder::step()
{
    const bool in_reset = resetCountdown_ > 0;

    Planes g_out, rq_out, gr_out, pr_out;
    for (auto *planes : {&g_out, &rq_out, &gr_out, &pr_out})
        for (auto &plane : *planes)
            plane.assign(span_, 0);

    Word fire_any = 0;
    std::vector<Word> fire(span_, 0);

    for (int r = 0; r < span_; ++r) {
        const Word hot = hot_[r];
        const Word pr_in_any =
            pr_[dN][r] | pr_[dE][r] | pr_[dS][r] | pr_[dW][r];

        // Pair pulses reaching a hot module complete a pairing.
        fire[r] = pr_in_any & hot;
        fire_any |= fire[r];

        // Grow: hot modules emit in all directions (blocked during
        // reset); interior modules pass. In the variants without the
        // equidistant mechanism the meets happen on grow trains, so a
        // formed module consumes them.
        const Word met_grow =
            config_.equidistantMechanism ? Word{0} : formed_[r];
        for (int d = 0; d < kNumDirs; ++d) {
            g_out[d][r] = g_[d][r] & interior_[r] & ~met_grow;
            if (!in_reset)
                g_out[d][r] |= hot;
        }

        // Meets of grow rays: requests in the final design, pair pulses
        // directly in the variants without the equidistant mechanism.
        //
        // A module that formed a pair latches `formed` (sticky until
        // the global reset) and consumes the trains that met there: it
        // emits exactly one pair pulse per leg and stops passing the
        // met trains, both this cycle (met_now) and afterwards.
        // Without this, the overlap region of two persistent trains
        // keeps expanding and excess pair pulses leak through the
        // cleared endpoints (see DESIGN.md).
        DirRow<Word> grow_in{g_[dN][r], g_[dE][r], g_[dS][r], g_[dW][r]};
        const Word formed = formed_[r];
        const Word form_allow = interior_[r] & ~hot & ~formed;
        DirRow<Word> pr_raw{0, 0, 0, 0};
        if (config_.equidistantMechanism) {
            DirRow<Word> rq_emit{0, 0, 0, 0};
            emitFromMeets(grow_in, interior_[r] & ~hot, rq_emit);
            for (int d = 0; d < kNumDirs; ++d) {
                rq_out[d][r] = (rq_[d][r] & interior_[r] & ~hot) |
                               rq_emit[d];
                // Boundary modules answer grow with a request.
                rq_out[d][r] |= g_[kRev[d]][r] & bnd_[r];
            }

            // Hot modules latch exactly one grant.
            DirRow<Word> rq_in{rq_[dN][r], rq_[dE][r], rq_[dS][r],
                               rq_[dW][r]};
            DirRow<Word> latch{grantLatch_[dN][r], grantLatch_[dE][r],
                               grantLatch_[dS][r], grantLatch_[dW][r]};
            updateGrantLatch(rq_in, hot, latch);
            for (int d = 0; d < kNumDirs; ++d) {
                grantLatch_[d][r] = latch[d];
                // Hot modules do not pass foreign grant trains (they
                // emit their own); a passed-through train would form
                // spurious meets beyond the endpoint.
                gr_out[d][r] =
                    (gr_[d][r] & interior_[r] & ~hot & ~formed) |
                    (latch[d] & hot);
            }

            // Pair pulses form where grant trains meet, and at boundary
            // modules that received a grant.
            DirRow<Word> gr_in{gr_[dN][r], gr_[dE][r], gr_[dS][r],
                               gr_[dW][r]};
            emitFromMeets(gr_in, form_allow, pr_raw);
            for (int d = 0; d < kNumDirs; ++d)
                pr_raw[d] |= gr_[kRev[d]][r] & bnd_[r] & ~formed;
            const Word met_now =
                pr_raw[dN] | pr_raw[dE] | pr_raw[dS] | pr_raw[dW];
            for (int d = 0; d < kNumDirs; ++d)
                gr_out[d][r] &= ~met_now | (grantLatch_[d][r] & hot);
            formed_[r] = formed | met_now;
        } else {
            emitFromMeets(grow_in, form_allow, pr_raw);
            for (int d = 0; d < kNumDirs; ++d)
                pr_raw[d] |= g_[kRev[d]][r] & bnd_[r] & ~formed;
            const Word met_now =
                pr_raw[dN] | pr_raw[dE] | pr_raw[dS] | pr_raw[dW];
            for (int d = 0; d < kNumDirs; ++d)
                g_out[d][r] &= ~met_now | hot;
            formed_[r] = formed | met_now;
        }

        // Emission is one pulse per formation (formed gating above);
        // non-hot interior modules pass, hot modules absorb. An
        // endpoint cleared this round keeps absorbing until the
        // round's pair pulses have drained: otherwise a second pulse
        // aimed at it (a competing pairing, or the second boundary
        // ring answering the same grow rays in the variants without
        // request-grant arbitration) leaks through and paints a bogus
        // crossing chain.
        const Word absorb = hot | fired_[r];
        for (int d = 0; d < kNumDirs; ++d)
            pr_out[d][r] =
                (pr_[d][r] & interior_[r] & ~absorb) | pr_raw[d];

        // Chain membership: everything a pair pulse touches, including
        // the emitting module and the absorbing endpoints. Touches
        // TOGGLE membership (XOR): chains from successive pairing
        // rounds that cross the same data qubit must cancel, exactly
        // as destructive-read DRO error outputs drained after every
        // pairing would accumulate in the control layer's Pauli frame.
        chain_[r] ^= pr_out[dN][r] | pr_out[dE][r] | pr_out[dS][r] |
                     pr_out[dW][r] | fire[r];
    }

    // Complete pairings: clear latches; maybe fire the global reset.
    if (fire_any) {
        for (int r = 0; r < span_; ++r) {
            stats_.pairings += std::popcount(fire[r]);
            hot_[r] &= ~fire[r];
            fired_[r] |= fire[r];
            for (int d = 0; d < kNumDirs; ++d)
                grantLatch_[d][r] &= ~fire[r];
        }
        lastFire_ = cycle_;
        if (config_.resetMechanism) {
            ++stats_.resets;
            resetCountdown_ = config_.resetCycles;
            clearPlanes(g_out);
            clearPlanes(rq_out);
            clearPlanes(gr_out);
            // In the final design in-flight pair pulses are exempt so
            // the farther chain leg completes (Section VI-B); the
            // paper ties that exemption to the request-grant design,
            // so the intermediate variants clear them too.
            if (!config_.equidistantMechanism)
                clearPlanes(pr_out);
            for (int r = 0; r < span_; ++r) {
                formed_[r] = 0;
                for (int d = 0; d < kNumDirs; ++d)
                    grantLatch_[d][r] = 0;
            }
        }
    } else if (in_reset) {
        clearPlanes(g_out);
        clearPlanes(rq_out);
        clearPlanes(gr_out);
    }
    if (resetCountdown_ > 0) {
        --resetCountdown_;
        // End of the reset window: cleared endpoints resume passing
        // (spurious same-round pulses are gone by now in the final
        // design; the variants without the pair exemption cleared
        // them at the reset itself).
        if (resetCountdown_ == 0)
            std::fill(fired_.begin(), fired_.end(), Word{0});
    }

    shiftPlanes(g_out, g_);
    shiftPlanes(rq_out, rq_);
    shiftPlanes(gr_out, gr_);
    shiftPlanes(pr_out, pr_);

    // The pairing round is over once every pair pulse has drained;
    // cleared endpoints stop absorbing and may serve later chains.
    if (planesEmpty(pr_))
        std::fill(fired_.begin(), fired_.end(), Word{0});

    if (trace) {
        auto plane_cells = [&](const Planes &planes, const char *tag) {
            for (int d = 0; d < kNumDirs; ++d)
                for (int r = 0; r < span_; ++r) {
                    Word w = planes[d][r];
                    while (w) {
                        const int bit = std::countr_zero(w);
                        w &= w - 1;
                        *trace << ' ' << tag << "NESW"[d] << '('
                               << r - 1 << ',' << bit - 1 << ')';
                    }
                }
        };
        *trace << "cycle " << cycle_ << " reset=" << resetCountdown_
               << " |";
        plane_cells(pr_, "pr");
        plane_cells(gr_, "gr");
        *trace << '\n';
    }
    ++cycle_;
}

Correction
MeshDecoder::decode(const Syndrome &syndrome)
{
    Correction corr;
    decodeImpl(syndrome, corr);
    return corr;
}

void
MeshDecoder::decode(const Syndrome &syndrome, TrialWorkspace &ws)
{
    ws.correction.clear();
    decodeImpl(syndrome, ws.correction);
}

void
MeshDecoder::decodeImpl(const Syndrome &syndrome, Correction &out)
{
    require(syndrome.type() == type(), "MeshDecoder: syndrome type "
                                       "mismatch");
    stats_ = MeshDecodeStats{};
    clearPlanes(g_);
    clearPlanes(rq_);
    clearPlanes(gr_);
    clearPlanes(pr_);
    clearPlanes(grantLatch_);
    std::fill(formed_.begin(), formed_.end(), Word{0});
    std::fill(fired_.begin(), fired_.end(), Word{0});
    std::fill(hot_.begin(), hot_.end(), Word{0});
    std::fill(chain_.begin(), chain_.end(), Word{0});
    resetCountdown_ = 0;
    lastFire_ = 0;
    cycle_ = 0;

    syndrome.forEachHot([&](int a) {
        const Coord rc = lattice().ancillaCoord(type(), a);
        hot_[rc.row + 1] |= Word{1} << (rc.col + 1);
    });

    auto hot_remaining = [&] {
        int count = 0;
        for (Word w : hot_)
            count += std::popcount(w);
        return count;
    };

    while (hot_remaining() > 0 || !planesEmpty(pr_)) {
        if (cycle_ >= cycleCap_) {
            stats_.timedOut = true;
            break;
        }
        if (cycle_ - lastFire_ > quiescence_) {
            stats_.quiesced = true;
            break;
        }
        step();
    }

    stats_.cycles = cycle_;
    stats_.remainingHot = hot_remaining();

    const int n = lattice().gridSize();
    for (int r = 0; r < n; ++r) {
        Word row = chain_[r + 1] & interior_[r + 1];
        while (row) {
            const int bit = std::countr_zero(row);
            row &= row - 1;
            const Coord rc{r, bit - 1};
            if (lattice().role(rc) == SiteRole::Data)
                out.dataFlips.push_back(lattice().dataIndex(rc));
        }
    }
}

} // namespace nisqpp
