#include "pauli/pauli.hh"

namespace nisqpp {

std::string
toString(Pauli p)
{
    switch (p) {
      case Pauli::I: return "I";
      case Pauli::X: return "X";
      case Pauli::Z: return "Z";
      case Pauli::Y: return "Y";
    }
    return "?";
}

} // namespace nisqpp
