/**
 * @file
 * Pauli-frame simulator for Clifford circuits.
 *
 * The stabilizer circuits of paper Fig. 3 are Clifford circuits; Pauli
 * errors injected anywhere propagate through them by conjugation. Tracking
 * only the Pauli frame (one X bit and one Z bit per qubit, word-packed)
 * reproduces the measurement-outcome *flips* relative to the noiseless
 * run, which is all the error-correction substrate needs, in O(1) per
 * gate — and lets mask-based consumers (the stabilizer circuit's
 * measurement gather) reduce whole planes with AND/popcount.
 */

#ifndef NISQPP_PAULI_PAULI_FRAME_HH
#define NISQPP_PAULI_PAULI_FRAME_HH

#include <cstddef>

#include "common/packed_bits.hh"
#include "pauli/pauli.hh"

namespace nisqpp {

/**
 * Tracks a Pauli error frame across an n-qubit Clifford circuit.
 *
 * Conjugation rules implemented (phase-free):
 *  - H:    X <-> Z
 *  - S:    X -> Y (i.e. X gains a Z component)
 *  - CNOT: X on control copies to target, Z on target copies to control
 *  - CZ:   X on one qubit adds Z on the other
 */
class PauliFrame
{
  public:
    /** @param num_qubits Number of qubits tracked by the frame. */
    explicit PauliFrame(std::size_t num_qubits);

    std::size_t numQubits() const { return x_.size(); }

    /** Reset the whole frame to identity. */
    void clear();

    /** Reset one qubit's frame (e.g. after ancilla re-initialization). */
    void reset(std::size_t q);

    /** Multiply @p p into qubit @p q's frame (error injection). */
    void inject(std::size_t q, Pauli p);

    /** Current frame on qubit @p q. */
    Pauli frame(std::size_t q) const;

    /** Whether the frame on @p q has an X component. */
    bool xBit(std::size_t q) const { return x_.get(q); }

    /** Whether the frame on @p q has a Z component. */
    bool zBit(std::size_t q) const { return z_.get(q); }

    /** Word-packed planes, for mask-based gathers. @{ */
    const PackedBits &xPlane() const { return x_; }
    const PackedBits &zPlane() const { return z_; }
    /** @} */

    /** Clear both components on every qubit set in @p mask. */
    void
    clearMasked(const PackedBits &mask)
    {
        x_.andNotWith(mask);
        z_.andNotWith(mask);
    }

    /** @name Clifford gate conjugations @{ */
    void applyH(std::size_t q);
    void applyS(std::size_t q);
    void applyCnot(std::size_t control, std::size_t target);
    void applyCz(std::size_t a, std::size_t b);
    /** @} */

    /**
     * Measure qubit @p q in the Z basis.
     *
     * @return true when the outcome is flipped relative to the noiseless
     *         circuit, i.e. when the frame has an X component on @p q.
     *         Measurement collapses the frame's X part on @p q (the Z
     *         part is unobservable afterwards and is also cleared).
     */
    bool measureZ(std::size_t q);

  private:
    void
    checkIndex(std::size_t q) const
    {
        NISQPP_DCHECK(q < x_.size(),
                      "PauliFrame: qubit index out of range");
    }

    PackedBits x_;
    PackedBits z_;
};

} // namespace nisqpp

#endif // NISQPP_PAULI_PAULI_FRAME_HH
