#include "pauli/pauli_frame.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nisqpp {

PauliFrame::PauliFrame(std::size_t num_qubits)
    : x_(num_qubits, 0), z_(num_qubits, 0)
{
}

void
PauliFrame::clear()
{
    std::fill(x_.begin(), x_.end(), 0);
    std::fill(z_.begin(), z_.end(), 0);
}

void
PauliFrame::reset(std::size_t q)
{
    checkIndex(q);
    x_[q] = 0;
    z_[q] = 0;
}

void
PauliFrame::inject(std::size_t q, Pauli p)
{
    checkIndex(q);
    x_[q] ^= static_cast<char>(hasX(p));
    z_[q] ^= static_cast<char>(hasZ(p));
}

Pauli
PauliFrame::frame(std::size_t q) const
{
    checkIndex(q);
    return fromXZ(x_[q], z_[q]);
}

void
PauliFrame::applyH(std::size_t q)
{
    checkIndex(q);
    std::swap(x_[q], z_[q]);
}

void
PauliFrame::applyS(std::size_t q)
{
    checkIndex(q);
    // S X S^dag = Y: an X component gains a Z component.
    z_[q] ^= x_[q];
}

void
PauliFrame::applyCnot(std::size_t control, std::size_t target)
{
    checkIndex(control);
    checkIndex(target);
    require(control != target, "applyCnot: control == target");
    x_[target] ^= x_[control];
    z_[control] ^= z_[target];
}

void
PauliFrame::applyCz(std::size_t a, std::size_t b)
{
    checkIndex(a);
    checkIndex(b);
    require(a != b, "applyCz: identical operands");
    z_[b] ^= x_[a];
    z_[a] ^= x_[b];
}

bool
PauliFrame::measureZ(std::size_t q)
{
    checkIndex(q);
    const bool flipped = x_[q];
    x_[q] = 0;
    z_[q] = 0;
    return flipped;
}

void
PauliFrame::checkIndex(std::size_t q) const
{
    require(q < x_.size(), "PauliFrame: qubit index out of range");
}

} // namespace nisqpp
