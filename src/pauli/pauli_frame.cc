#include "pauli/pauli_frame.hh"

#include "common/logging.hh"

namespace nisqpp {

PauliFrame::PauliFrame(std::size_t num_qubits)
    : x_(num_qubits), z_(num_qubits)
{
}

void
PauliFrame::clear()
{
    x_.clear();
    z_.clear();
}

void
PauliFrame::reset(std::size_t q)
{
    checkIndex(q);
    x_.set(q, false);
    z_.set(q, false);
}

void
PauliFrame::inject(std::size_t q, Pauli p)
{
    checkIndex(q);
    if (hasX(p))
        x_.flip(q);
    if (hasZ(p))
        z_.flip(q);
}

Pauli
PauliFrame::frame(std::size_t q) const
{
    checkIndex(q);
    return fromXZ(x_.get(q), z_.get(q));
}

void
PauliFrame::applyH(std::size_t q)
{
    checkIndex(q);
    const bool x = x_.get(q);
    x_.set(q, z_.get(q));
    z_.set(q, x);
}

void
PauliFrame::applyS(std::size_t q)
{
    checkIndex(q);
    // S X S^dag = Y: an X component gains a Z component.
    if (x_.get(q))
        z_.flip(q);
}

void
PauliFrame::applyCnot(std::size_t control, std::size_t target)
{
    checkIndex(control);
    checkIndex(target);
    NISQPP_DCHECK(control != target, "applyCnot: control == target");
    if (x_.get(control))
        x_.flip(target);
    if (z_.get(target))
        z_.flip(control);
}

void
PauliFrame::applyCz(std::size_t a, std::size_t b)
{
    checkIndex(a);
    checkIndex(b);
    NISQPP_DCHECK(a != b, "applyCz: identical operands");
    if (x_.get(a))
        z_.flip(b);
    if (x_.get(b))
        z_.flip(a);
}

bool
PauliFrame::measureZ(std::size_t q)
{
    checkIndex(q);
    const bool flipped = x_.get(q);
    x_.set(q, false);
    z_.set(q, false);
    return flipped;
}

} // namespace nisqpp
