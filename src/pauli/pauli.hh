/**
 * @file
 * Single-qubit Pauli operators and their group algebra (phase-free).
 * The surface code discretizes continuous qubit errors into exactly this
 * set {I, X, Y, Z} (paper Section II-C), so the whole Monte Carlo substrate
 * works over these symbols.
 */

#ifndef NISQPP_PAULI_PAULI_HH
#define NISQPP_PAULI_PAULI_HH

#include <cstdint>
#include <string>

namespace nisqpp {

/**
 * A single-qubit Pauli, encoded in two bits: bit0 = X component,
 * bit1 = Z component. Y = X * Z (phase discarded — error analysis only
 * needs the group modulo phase).
 */
enum class Pauli : std::uint8_t
{
    I = 0, ///< identity
    X = 1, ///< bit-flip
    Z = 2, ///< phase-flip
    Y = 3, ///< simultaneous bit- and phase-flip
};

/** True when the operator has an X component (X or Y). */
inline bool
hasX(Pauli p)
{
    return static_cast<std::uint8_t>(p) & 1u;
}

/** True when the operator has a Z component (Z or Y). */
inline bool
hasZ(Pauli p)
{
    return static_cast<std::uint8_t>(p) & 2u;
}

/** Group product modulo phase: XY = Z etc. (abelian mod phase). */
inline Pauli
mul(Pauli a, Pauli b)
{
    return static_cast<Pauli>(static_cast<std::uint8_t>(a) ^
                              static_cast<std::uint8_t>(b));
}

/**
 * Whether two single-qubit Paulis commute. I commutes with everything;
 * distinct non-identity Paulis anticommute.
 */
inline bool
commutes(Pauli a, Pauli b)
{
    // Symplectic form: a_x*b_z + a_z*b_x mod 2.
    const auto ax = static_cast<std::uint8_t>(hasX(a));
    const auto az = static_cast<std::uint8_t>(hasZ(a));
    const auto bx = static_cast<std::uint8_t>(hasX(b));
    const auto bz = static_cast<std::uint8_t>(hasZ(b));
    return ((ax & bz) ^ (az & bx)) == 0;
}

/** Build a Pauli from its X/Z component bits. */
inline Pauli
fromXZ(bool x, bool z)
{
    return static_cast<Pauli>((x ? 1u : 0u) | (z ? 2u : 0u));
}

/** One-letter name, e.g. "X". */
std::string toString(Pauli p);

} // namespace nisqpp

#endif // NISQPP_PAULI_PAULI_HH
