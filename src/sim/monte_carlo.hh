/**
 * @file
 * Monte Carlo lifetime simulation (paper Section VII, "Simulation
 * Techniques"): each cycle injects stochastic errors on the data qubits,
 * extracts the error syndrome (directly or through the Fig. 3 stabilizer
 * circuits), hands it to the decoder under test, applies the returned
 * correction, and classifies the residual. The ratio of logical errors
 * to cycles is the logical error rate PL.
 */

#ifndef NISQPP_SIM_MONTE_CARLO_HH
#define NISQPP_SIM_MONTE_CARLO_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "decoders/decoder.hh"
#include "obs/metrics.hh"
#include "surface/error_model.hh"
#include "surface/logical.hh"
#include "surface/stabilizer_circuit.hh"
#include "surface/syndrome_window.hh"

namespace nisqpp {

/**
 * Largest accepted trial-budget multiplier (NISQPP_TRIALS,
 * --trials-scale); larger values are almost certainly typos and would
 * schedule practically unbounded runs.
 */
inline constexpr double kMaxTrialsMultiplier = 1e6;

/** Stopping rule for adaptive sampling. */
struct StopRule
{
    std::size_t minTrials = 1000;
    std::size_t maxTrials = 20000;
    std::size_t targetFailures = 100; ///< stop early once this many seen

    /**
     * Scale min/max trial counts by @p mult (> 0); the failure target
     * is left alone so early stopping keeps its meaning.
     */
    StopRule scaled(double mult) const;

    /**
     * Scale trial counts by the NISQPP_TRIALS environment variable
     * (a multiplier, default 1.0) so benches can be re-run at higher
     * statistical resolution without recompiling. Malformed values
     * (non-numeric, non-positive, NaN/inf, above
     * kMaxTrialsMultiplier) are rejected with a warning and leave
     * the rule unchanged.
     */
    StopRule scaledByEnv() const;
};

/** Aggregate result of one (lattice, p, decoder) Monte Carlo run. */
struct MonteCarloResult
{
    std::size_t trials = 0;
    std::size_t failures = 0;
    std::size_t syndromeResidualFailures = 0; ///< subset: residual syndrome
    double logicalErrorRate = 0.0;
    WilsonInterval ci{0.0, 1.0};

    /** Mesh decoder execution cycles per round (when applicable). */
    RunningStats cycles;
    /** Distribution of cycles (Fig. 10(c)); sized in the simulator. */
    Histogram cycleHistogram{0};

    /**
     * Deterministic work counters attached to this run (filled by the
     * engine's shard runner: engine.* trial counts plus the decoders'
     * exported decoder.* counters). Riding inside the result means
     * metrics inherit the engine's ordered prefix merge — shards past
     * the stop point are discarded together with their counters, so
     * aggregates are byte-identical at any thread count.
     */
    obs::MetricSet metrics;

    /**
     * Fold another accumulator into this one (parallel shard
     * reduction); call finalize() afterwards to refresh the derived
     * rate and confidence interval. An empty accumulator adopts the
     * other's histogram binning.
     */
    void merge(const MonteCarloResult &other);

    /** Recompute logicalErrorRate and ci from trials/failures. */
    void finalize();
};

class TrialWorkspace;

/**
 * Per-round, code-capacity lifetime simulator for one error type.
 * Dephasing noise exercises the Z-error path the paper evaluates; the
 * depolarizing channel runs both families through two decoders.
 *
 * The per-round hot path is allocation-free: syndromes are extracted
 * into member scratch, decoders borrow buffers from a TrialWorkspace
 * (the engine shares one per worker thread across shards; a simulator
 * without one owns a private workspace).
 */
class LifetimeSimulator
{
  public:
    /**
     * @param lattice  Lattice under test.
     * @param model    Error channel sampled each round.
     * @param zDecoder Decoder for Z data errors (X-ancilla syndromes).
     * @param xDecoder Decoder for X data errors; may be null when the
     *                 channel produces no X component (pure dephasing).
     * @param seed     Master RNG seed (deterministic reproduction).
     * @param throughCircuits Extract syndromes by running the Fig. 3
     *                 stabilizer circuits instead of direct parity.
     * @param workspace Scratch shared with other simulators on the
     *                 same thread; null = allocate a private one.
     */
    LifetimeSimulator(const SurfaceLattice &lattice,
                      const ErrorModel &model, Decoder &zDecoder,
                      Decoder *xDecoder, std::uint64_t seed,
                      bool throughCircuits = false,
                      TrialWorkspace *workspace = nullptr);

    ~LifetimeSimulator();

    /**
     * Select the Monte Carlo protocol. Per-round mode (default off)
     * clears the state each cycle and counts a failure when the
     * residual has a nonzero syndrome or flips the crossing logical.
     * Lifetime mode — the paper's protocol — keeps the residual across
     * cycles (imperfectly corrected errors are re-decoded next round)
     * and counts one logical error whenever the crossing parity of the
     * post-correction state flips.
     */
    void setLifetimeMode(bool lifetime) { lifetimeMode_ = lifetime; }
    bool lifetimeMode() const { return lifetimeMode_; }

    /**
     * Group up to @p lanes rounds per Decoder::decodeBatch call in
     * per-round mode, feeding the mesh decoder's lane-packed substrate
     * (software decoders fall back to a scalar loop). Error sampling,
     * syndrome extraction and classification run batched too, in the
     * exact per-round order of the scalar loop, so every aggregate —
     * counters, cycle statistics, histograms — is byte-identical to
     * lanes = 1 for the same seed. Ignored in lifetime mode, where
     * round k + 1's state depends on round k's correction.
     */
    void setBatchLanes(std::size_t lanes);
    std::size_t batchLanes() const { return batchLanes_; }

    /**
     * Faulty-measurement windowed protocol: each trial clears the
     * state, runs @p rounds noisy measurement rounds (data errors
     * sampled per round, measured syndromes corrupted by the model's
     * flip rate q) plus one perfect commit round, hands the
     * accumulated SyndromeWindow to Decoder::decodeWindow, commits
     * the returned correction at the window boundary and classifies
     * the residual. 0 (the default) keeps the single-round protocols.
     * Windowed trials run batched through decodeWindowBatch when
     * batch lanes are configured, with byte-identical aggregates.
     * Mutually exclusive with lifetime mode (the streaming pipeline
     * owns the persistent-state windowed regime); mesh cycle
     * telemetry is not collected in windowed mode.
     */
    void setMeasurementWindow(int rounds);
    int measurementWindow() const { return windowRounds_; }

    /** Run @p rule-governed rounds and aggregate. */
    MonteCarloResult run(const StopRule &rule);

    /** Run exactly one round; returns whether it failed. */
    bool runRound(MonteCarloResult &acc);

    /** Run exactly one windowed trial; returns whether it failed. */
    bool runWindowTrial(MonteCarloResult &acc);

  private:
    bool decodeFamily(ErrorType type, Decoder &decoder,
                      ErrorState &state, MonteCarloResult &acc);
    void decodeLifetime(ErrorType type, Decoder &decoder,
                        MonteCarloResult &acc);
    void recordMeshStats(const MeshDecodeStats *stats,
                         MonteCarloResult &acc) const;
    bool runBatch(std::size_t count, MonteCarloResult &acc,
                  const StopRule &rule);
    bool runWindowBatch(std::size_t count, MonteCarloResult &acc,
                        const StopRule &rule);
    void fillWindows(ErrorState &state, SyndromeWindow &winZ,
                     SyndromeWindow *winX);
    bool classifyWindowTrial(ErrorState &state, MonteCarloResult &acc);

    Syndrome &scratchSyndrome(ErrorType type);
    void extractInto(const ErrorState &state, ErrorType type,
                     Syndrome &out);

    const SurfaceLattice &lattice_;
    const ErrorModel &model_;
    Decoder &zDecoder_;
    Decoder *xDecoder_;
    Rng rng_;
    bool throughCircuits_;
    bool lifetimeMode_ = false;
    /** model_.measurementFlipRate() > 0, cached off the hot path. */
    bool noisyReadout_ = false;
    /** Built only for circuit-based extraction (it is not cheap). */
    std::unique_ptr<StabilizerCircuit> circuit_;
    ErrorState state_;
    Syndrome synZ_; ///< extraction scratch, Z-error family
    Syndrome synX_; ///< extraction scratch, X-error family
    std::size_t batchLanes_ = 1;
    int windowRounds_ = 0; ///< noisy rounds per window; 0 = off
    /** Windowed-protocol scratch (built on first windowed run). @{ */
    std::unique_ptr<SyndromeWindow> winZ_, winX_;
    std::vector<SyndromeWindow> batchWinZ_, batchWinX_;
    std::vector<const SyndromeWindow *> winPtrs_;
    /** @} */
    /** Batched-round scratch, grown to the lane-group high-water mark. */
    std::vector<ErrorState> batchStates_;
    std::vector<Syndrome> batchSynZ_, batchSynX_;
    std::vector<const Syndrome *> synPtrs_;
    TrialWorkspace *ws_;                 ///< borrowed (or owned_)
    std::unique_ptr<TrialWorkspace> owned_;
    bool zParity_ = false; ///< lifetime-mode crossing parity trackers
    bool xParity_ = false;
};

} // namespace nisqpp

#endif // NISQPP_SIM_MONTE_CARLO_HH
