#include "sim/threshold.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace nisqpp {

namespace {

/**
 * Find the root of f(p) = 0 between samples by linear interpolation in
 * log(p), where fs holds f at each sample and sign changes mark roots.
 */
std::optional<double>
interpolateRoot(const std::vector<double> &ps, const std::vector<double> &fs)
{
    for (std::size_t i = 0; i + 1 < ps.size(); ++i) {
        const double f0 = fs[i];
        const double f1 = fs[i + 1];
        if (f0 == 0.0)
            return ps[i];
        if (f0 * f1 < 0.0) {
            const double x0 = std::log(ps[i]);
            const double x1 = std::log(ps[i + 1]);
            const double t = f0 / (f0 - f1);
            return std::exp(x0 + t * (x1 - x0));
        }
    }
    return std::nullopt;
}

} // namespace

std::optional<double>
pseudoThreshold(const ErrorRateCurve &curve)
{
    require(curve.p.size() == curve.pl.size(),
            "pseudoThreshold: size mismatch");
    std::vector<double> fs;
    fs.reserve(curve.p.size());
    // Work on log(PL) - log(p); skip leading zero-PL samples (below the
    // measurable floor they are unambiguously "PL < p").
    std::vector<double> ps;
    for (std::size_t i = 0; i < curve.p.size(); ++i) {
        if (curve.pl[i] <= 0.0)
            continue;
        ps.push_back(curve.p[i]);
        fs.push_back(std::log(curve.pl[i]) - std::log(curve.p[i]));
    }
    if (ps.size() < 2)
        return std::nullopt;
    return interpolateRoot(ps, fs);
}

std::optional<double>
curveCrossing(const ErrorRateCurve &a, const ErrorRateCurve &b)
{
    require(a.p == b.p, "curveCrossing: curves must share p samples");
    std::vector<double> ps, fs;
    for (std::size_t i = 0; i < a.p.size(); ++i) {
        if (a.pl[i] <= 0.0 || b.pl[i] <= 0.0)
            continue;
        ps.push_back(a.p[i]);
        fs.push_back(std::log(a.pl[i]) - std::log(b.pl[i]));
    }
    if (ps.size() < 2)
        return std::nullopt;
    return interpolateRoot(ps, fs);
}

std::optional<double>
accuracyThreshold(const std::vector<ErrorRateCurve> &curves)
{
    std::vector<double> crossings;
    for (std::size_t i = 0; i + 1 < curves.size(); ++i)
        if (auto x = curveCrossing(curves[i], curves[i + 1]))
            crossings.push_back(*x);
    if (crossings.empty())
        return std::nullopt;
    std::sort(crossings.begin(), crossings.end());
    return crossings[crossings.size() / 2];
}

} // namespace nisqpp
