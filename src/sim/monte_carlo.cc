#include "sim/monte_carlo.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "decoders/workspace.hh"
#include "obs/trace.hh"

namespace nisqpp {

namespace {

/** Scale a trial count, clamping instead of overflowing size_t. */
std::size_t
scaleTrials(std::size_t n, double mult)
{
    // Largest double guaranteed below SIZE_MAX on 64-bit targets.
    constexpr double cap = 9.0e18;
    const double scaled = static_cast<double>(n) * mult;
    if (scaled >= cap)
        return static_cast<std::size_t>(cap);
    const auto result = static_cast<std::size_t>(scaled);
    // Never scale a nonzero budget down to nothing: a zero-trial run
    // is indistinguishable from a genuine zero-failure result.
    if (result == 0 && n > 0)
        return 1;
    return result;
}

} // namespace

StopRule
StopRule::scaled(double mult) const
{
    StopRule out = *this;
    if (!std::isfinite(mult) || mult <= 0)
        return out;
    out.minTrials = scaleTrials(out.minTrials, mult);
    out.maxTrials = scaleTrials(out.maxTrials, mult);
    return out;
}

StopRule
StopRule::scaledByEnv() const
{
    const char *env = std::getenv("NISQPP_TRIALS");
    if (!env || !*env)
        return *this;
    char *end = nullptr;
    const double mult = std::strtod(env, &end);
    if (end == env || (end && *end != '\0') || !std::isfinite(mult) ||
        mult <= 0 || mult > kMaxTrialsMultiplier) {
        warn("NISQPP_TRIALS='" + std::string(env) +
             "' is not a positive multiplier <= 1e6; using 1.0");
        return *this;
    }
    return scaled(mult);
}

void
MonteCarloResult::merge(const MonteCarloResult &other)
{
    trials += other.trials;
    failures += other.failures;
    syndromeResidualFailures += other.syndromeResidualFailures;
    cycles.merge(other.cycles);
    cycleHistogram.merge(other.cycleHistogram);
    metrics.merge(other.metrics);
}

void
MonteCarloResult::finalize()
{
    logicalErrorRate =
        trials ? static_cast<double>(failures) /
                     static_cast<double>(trials)
               : 0.0;
    ci = wilson95(failures, trials);
}

LifetimeSimulator::LifetimeSimulator(const SurfaceLattice &lattice,
                                     const ErrorModel &model,
                                     Decoder &zDecoder, Decoder *xDecoder,
                                     std::uint64_t seed,
                                     bool throughCircuits,
                                     TrialWorkspace *workspace)
    : lattice_(lattice), model_(model), zDecoder_(zDecoder),
      xDecoder_(xDecoder), rng_(seed), throughCircuits_(throughCircuits),
      noisyReadout_(model.measurementFlipRate() > 0.0),
      state_(lattice),
      synZ_(lattice, ErrorType::Z), synX_(lattice, ErrorType::X),
      ws_(workspace)
{
    if (throughCircuits_)
        circuit_ = std::make_unique<StabilizerCircuit>(lattice);
    require(zDecoder.type() == ErrorType::Z,
            "LifetimeSimulator: zDecoder must decode Z errors");
    if (xDecoder_)
        require(xDecoder_->type() == ErrorType::X,
                "LifetimeSimulator: xDecoder must decode X errors");
    if (!ws_) {
        owned_ = std::make_unique<TrialWorkspace>();
        ws_ = owned_.get();
    }
}

LifetimeSimulator::~LifetimeSimulator() = default;

void
LifetimeSimulator::setBatchLanes(std::size_t lanes)
{
    batchLanes_ = std::max<std::size_t>(1, lanes);
}

void
LifetimeSimulator::setMeasurementWindow(int rounds)
{
    require(rounds >= 0,
            "LifetimeSimulator: window rounds must be >= 0");
    windowRounds_ = rounds;
}

void
LifetimeSimulator::recordMeshStats(const MeshDecodeStats *stats,
                                   MonteCarloResult &acc) const
{
    if (!stats)
        return;
    acc.cycles.add(stats->cycles);
    if (acc.cycleHistogram.numBins() > 1)
        acc.cycleHistogram.add(static_cast<std::size_t>(stats->cycles));
}

Syndrome &
LifetimeSimulator::scratchSyndrome(ErrorType type)
{
    return type == ErrorType::Z ? synZ_ : synX_;
}

void
LifetimeSimulator::extractInto(const ErrorState &state, ErrorType type,
                               Syndrome &out)
{
    if (throughCircuits_)
        circuit_->extractInto(state, type, out);
    else
        extractSyndromeInto(state, type, out);
}

/**
 * Run one window's measurement rounds on @p state: windowRounds_ noisy
 * rounds (sample data errors; extract; corrupt with the model's
 * measurement-flip rate) plus one perfect commit round. RNG draw order
 * per round is data sample, Z flips, X flips — the scalar and batched
 * paths share this routine, so their streams are identical.
 */
void
LifetimeSimulator::fillWindows(ErrorState &state, SyndromeWindow &winZ,
                               SyndromeWindow *winX)
{
    state.clear();
    winZ.reset();
    if (winX)
        winX->reset();
    for (int t = 0; t < windowRounds_; ++t) {
        model_.sample(rng_, state);
        extractInto(state, ErrorType::Z, synZ_);
        model_.flipMeasurements(rng_, synZ_);
        winZ.recordRound(t, synZ_);
        if (winX) {
            extractInto(state, ErrorType::X, synX_);
            model_.flipMeasurements(rng_, synX_);
            winX->recordRound(t, synX_);
        }
    }
    extractInto(state, ErrorType::Z, synZ_);
    winZ.recordRound(windowRounds_, synZ_);
    if (winX) {
        extractInto(state, ErrorType::X, synX_);
        winX->recordRound(windowRounds_, synX_);
    }
}

/** Classify the post-commit residual of one windowed trial. */
bool
LifetimeSimulator::classifyWindowTrial(ErrorState &state,
                                       MonteCarloResult &acc)
{
    const FailureReport z_report =
        classifyResidual(state, ErrorType::Z);
    if (z_report.syndromeNonzero)
        ++acc.syndromeResidualFailures;
    bool failed = z_report.failed();
    if (xDecoder_) {
        const FailureReport x_report =
            classifyResidual(state, ErrorType::X);
        if (x_report.syndromeNonzero)
            ++acc.syndromeResidualFailures;
        failed |= x_report.failed();
    } else {
        require(state.weight(ErrorType::X) == 0,
                "LifetimeSimulator: X errors present but no X decoder");
    }
    ++acc.trials;
    if (failed)
        ++acc.failures;
    return failed;
}

bool
LifetimeSimulator::runWindowTrial(MonteCarloResult &acc)
{
    const int total = windowRounds_ + 1;
    if (!winZ_ || winZ_->rounds() != total)
        winZ_ = std::make_unique<SyndromeWindow>(lattice_, ErrorType::Z,
                                                 total);
    if (xDecoder_ && (!winX_ || winX_->rounds() != total))
        winX_ = std::make_unique<SyndromeWindow>(lattice_, ErrorType::X,
                                                 total);

    {
        obs::TraceSpan span(obs::Stage::Sample);
        fillWindows(state_, *winZ_, xDecoder_ ? winX_.get() : nullptr);
    }
    {
        obs::TraceSpan span(obs::Stage::Decode);
        zDecoder_.decodeWindow(*winZ_, *ws_);
    }
    ws_->correction.applyTo(state_, ErrorType::Z);
    if (xDecoder_) {
        {
            obs::TraceSpan span(obs::Stage::Decode);
            xDecoder_->decodeWindow(*winX_, *ws_);
        }
        ws_->correction.applyTo(state_, ErrorType::X);
    }
    obs::TraceSpan span(obs::Stage::Classify);
    return classifyWindowTrial(state_, acc);
}

bool
LifetimeSimulator::runWindowBatch(std::size_t count,
                                  MonteCarloResult &acc,
                                  const StopRule &rule)
{
    const int total = windowRounds_ + 1;
    while (batchStates_.size() < count)
        batchStates_.emplace_back(lattice_);
    if (!batchWinZ_.empty() && batchWinZ_[0].rounds() != total) {
        batchWinZ_.clear();
        batchWinX_.clear();
    }
    while (batchWinZ_.size() < count)
        batchWinZ_.emplace_back(lattice_, ErrorType::Z, total);
    if (xDecoder_)
        while (batchWinX_.size() < count)
            batchWinX_.emplace_back(lattice_, ErrorType::X, total);
    winPtrs_.resize(count);

    // Fill every lane's window up front — lane l's draw sequence is
    // exactly what scalar trial l would have drawn.
    {
        obs::TraceSpan span(obs::Stage::Sample);
        for (std::size_t l = 0; l < count; ++l)
            fillWindows(batchStates_[l], batchWinZ_[l],
                        xDecoder_ ? &batchWinX_[l] : nullptr);
    }

    for (std::size_t l = 0; l < count; ++l)
        winPtrs_[l] = &batchWinZ_[l];
    {
        obs::TraceSpan span(obs::Stage::Decode);
        zDecoder_.decodeWindowBatch(winPtrs_.data(), count, *ws_);
    }
    for (std::size_t l = 0; l < count; ++l)
        ws_->laneCorrections[l].applyTo(batchStates_[l], ErrorType::Z);

    if (xDecoder_) {
        for (std::size_t l = 0; l < count; ++l)
            winPtrs_[l] = &batchWinX_[l];
        {
            obs::TraceSpan span(obs::Stage::Decode);
            xDecoder_->decodeWindowBatch(winPtrs_.data(), count, *ws_);
        }
        for (std::size_t l = 0; l < count; ++l)
            ws_->laneCorrections[l].applyTo(batchStates_[l],
                                            ErrorType::X);
    }

    obs::TraceSpan classifySpan(obs::Stage::Classify);
    for (std::size_t l = 0; l < count; ++l) {
        classifyWindowTrial(batchStates_[l], acc);
        // Stop-rule hit mid-group: drop the remaining lanes, exactly
        // as the scalar loop would never have run those trials.
        if (acc.trials >= rule.minTrials &&
            acc.failures >= rule.targetFailures)
            return true;
    }
    return false;
}

void
LifetimeSimulator::decodeLifetime(ErrorType type, Decoder &decoder,
                                  MonteCarloResult &acc)
{
    Syndrome &syn = scratchSyndrome(type);
    {
        obs::TraceSpan span(obs::Stage::Extract);
        extractInto(state_, type, syn);
    }
    {
        obs::TraceSpan span(obs::Stage::Decode);
        decoder.decode(syn, *ws_);
    }
    ws_->correction.applyTo(state_, type);
    recordMeshStats(decoder.meshStats(), acc);
}

bool
LifetimeSimulator::decodeFamily(ErrorType type, Decoder &decoder,
                                ErrorState &state, MonteCarloResult &acc)
{
    Syndrome &syn = scratchSyndrome(type);
    {
        obs::TraceSpan span(obs::Stage::Extract);
        extractInto(state, type, syn);
    }
    {
        obs::TraceSpan span(obs::Stage::Decode);
        decoder.decode(syn, *ws_);
    }
    ws_->correction.applyTo(state, type);
    recordMeshStats(decoder.meshStats(), acc);

    obs::TraceSpan span(obs::Stage::Classify);
    const FailureReport report = classifyResidual(state, type);
    if (report.syndromeNonzero)
        ++acc.syndromeResidualFailures;
    return report.failed();
}

bool
LifetimeSimulator::runRound(MonteCarloResult &acc)
{
    // Single-round protocols never call flipMeasurements: a noisy-
    // readout model here would silently simulate q = 0 (guarded at
    // every public entry point, not just run()).
    require(!noisyReadout_,
            "LifetimeSimulator: measurement noise (q > 0) requires a "
            "decode window (setMeasurementWindow)");
    if (!lifetimeMode_)
        state_.clear();
    {
        obs::TraceSpan span(obs::Stage::Sample);
        model_.sample(rng_, state_);
    }

    bool failed = false;
    if (lifetimeMode_) {
        decodeLifetime(ErrorType::Z, zDecoder_, acc);
        const bool z_parity = crossingParity(state_, ErrorType::Z);
        failed |= z_parity != zParity_;
        zParity_ = z_parity;
        if (xDecoder_) {
            decodeLifetime(ErrorType::X, *xDecoder_, acc);
            const bool x_parity = crossingParity(state_, ErrorType::X);
            failed |= x_parity != xParity_;
            xParity_ = x_parity;
        } else {
            require(state_.weight(ErrorType::X) == 0,
                    "LifetimeSimulator: X errors present but no X "
                    "decoder");
        }
    } else {
        failed = decodeFamily(ErrorType::Z, zDecoder_, state_, acc);
        if (xDecoder_)
            failed |=
                decodeFamily(ErrorType::X, *xDecoder_, state_, acc);
        else
            require(state_.weight(ErrorType::X) == 0,
                    "LifetimeSimulator: X errors present but no X "
                    "decoder");
    }

    ++acc.trials;
    if (failed)
        ++acc.failures;
    return failed;
}

bool
LifetimeSimulator::runBatch(std::size_t count, MonteCarloResult &acc,
                            const StopRule &rule)
{
    while (batchStates_.size() < count)
        batchStates_.emplace_back(lattice_);
    while (batchSynZ_.size() < count)
        batchSynZ_.emplace_back(lattice_, ErrorType::Z);
    if (xDecoder_)
        while (batchSynX_.size() < count)
            batchSynX_.emplace_back(lattice_, ErrorType::X);
    synPtrs_.resize(count);

    // Sample every round of the group up front — the exact RNG draw
    // sequence of `count` scalar rounds. Batched paths take one
    // coarse span per phase rather than one per lane.
    {
        obs::TraceSpan span(obs::Stage::Sample);
        for (std::size_t l = 0; l < count; ++l) {
            batchStates_[l].clear();
            model_.sample(rng_, batchStates_[l]);
        }
    }

    // Z family: extract all, decode the lane group, apply.
    {
        obs::TraceSpan span(obs::Stage::Extract);
        for (std::size_t l = 0; l < count; ++l) {
            extractInto(batchStates_[l], ErrorType::Z, batchSynZ_[l]);
            synPtrs_[l] = &batchSynZ_[l];
        }
    }
    {
        obs::TraceSpan span(obs::Stage::Decode);
        zDecoder_.decodeBatch(synPtrs_.data(), count, *ws_);
    }
    for (std::size_t l = 0; l < count; ++l)
        ws_->laneCorrections[l].applyTo(batchStates_[l], ErrorType::Z);

    // X family (depolarizing runs); X corrections touch only the X
    // planes, so classifying Z afterwards sees the same residual the
    // scalar loop classifies between the two decodes.
    if (xDecoder_) {
        {
            obs::TraceSpan span(obs::Stage::Extract);
            for (std::size_t l = 0; l < count; ++l) {
                extractInto(batchStates_[l], ErrorType::X,
                            batchSynX_[l]);
                synPtrs_[l] = &batchSynX_[l];
            }
        }
        {
            obs::TraceSpan span(obs::Stage::Decode);
            xDecoder_->decodeBatch(synPtrs_.data(), count, *ws_);
        }
        for (std::size_t l = 0; l < count; ++l)
            ws_->laneCorrections[l].applyTo(batchStates_[l],
                                            ErrorType::X);
    }

    // Classify and aggregate in round order: telemetry and counter
    // updates interleave exactly as the scalar loop's (decoders retain
    // per-lane stats, so Z and X stats of round l are recorded
    // back-to-back even though the decodes ran family-batched).
    obs::TraceSpan classifySpan(obs::Stage::Classify);
    for (std::size_t l = 0; l < count; ++l) {
        recordMeshStats(zDecoder_.meshStats(l), acc);
        const FailureReport z_report =
            classifyResidual(batchStates_[l], ErrorType::Z);
        if (z_report.syndromeNonzero)
            ++acc.syndromeResidualFailures;
        bool failed = z_report.failed();
        if (xDecoder_) {
            recordMeshStats(xDecoder_->meshStats(l), acc);
            const FailureReport x_report =
                classifyResidual(batchStates_[l], ErrorType::X);
            if (x_report.syndromeNonzero)
                ++acc.syndromeResidualFailures;
            failed |= x_report.failed();
        } else {
            require(batchStates_[l].weight(ErrorType::X) == 0,
                    "LifetimeSimulator: X errors present but no X "
                    "decoder");
        }
        ++acc.trials;
        if (failed)
            ++acc.failures;
        // Stop-rule hit mid-group: drop the remaining lanes, exactly
        // as the scalar loop would never have run those rounds.
        if (acc.trials >= rule.minTrials &&
            acc.failures >= rule.targetFailures)
            return true;
    }
    return false;
}

MonteCarloResult
LifetimeSimulator::run(const StopRule &rule)
{
    MonteCarloResult acc;
    acc.cycleHistogram =
        Histogram(static_cast<std::size_t>(128 * (lattice_.gridSize()
                                                  + 2)));
    // Single-round protocols never call flipMeasurements: running a
    // noisy-readout model without a window would silently simulate
    // q = 0 while reporting a q > 0 configuration. (runRound repeats
    // the check for callers driving trials directly.)
    require(windowRounds_ > 0 || !noisyReadout_,
            "LifetimeSimulator: measurement noise (q > 0) requires a "
            "decode window (setMeasurementWindow)");
    if (windowRounds_ > 0) {
        require(!lifetimeMode_,
                "LifetimeSimulator: windowed decoding and lifetime "
                "mode are mutually exclusive (use the streaming "
                "pipeline for persistent windowed runs)");
        if (batchLanes_ > 1) {
            while (acc.trials < rule.maxTrials) {
                const std::size_t group = std::min(
                    batchLanes_, rule.maxTrials - acc.trials);
                if (runWindowBatch(group, acc, rule))
                    break;
            }
        } else {
            while (acc.trials < rule.maxTrials) {
                runWindowTrial(acc);
                if (acc.trials >= rule.minTrials &&
                    acc.failures >= rule.targetFailures)
                    break;
            }
        }
        acc.finalize();
        return acc;
    }
    if (batchLanes_ > 1 && !lifetimeMode_) {
        while (acc.trials < rule.maxTrials) {
            const std::size_t group = std::min(
                batchLanes_, rule.maxTrials - acc.trials);
            if (runBatch(group, acc, rule))
                break;
        }
    } else {
        while (acc.trials < rule.maxTrials) {
            runRound(acc);
            if (acc.trials >= rule.minTrials &&
                acc.failures >= rule.targetFailures)
                break;
        }
    }
    acc.finalize();
    return acc;
}

} // namespace nisqpp
