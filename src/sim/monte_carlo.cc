#include "sim/monte_carlo.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace nisqpp {

StopRule
StopRule::scaledByEnv() const
{
    StopRule scaled = *this;
    if (const char *env = std::getenv("NISQPP_TRIALS")) {
        const double mult = std::atof(env);
        if (mult > 0) {
            scaled.minTrials =
                static_cast<std::size_t>(scaled.minTrials * mult);
            scaled.maxTrials =
                static_cast<std::size_t>(scaled.maxTrials * mult);
        }
    }
    return scaled;
}

LifetimeSimulator::LifetimeSimulator(const SurfaceLattice &lattice,
                                     const ErrorModel &model,
                                     Decoder &zDecoder, Decoder *xDecoder,
                                     std::uint64_t seed,
                                     bool throughCircuits)
    : lattice_(lattice), model_(model), zDecoder_(zDecoder),
      xDecoder_(xDecoder), rng_(seed), throughCircuits_(throughCircuits),
      circuit_(lattice), state_(lattice)
{
    require(zDecoder.type() == ErrorType::Z,
            "LifetimeSimulator: zDecoder must decode Z errors");
    if (xDecoder_)
        require(xDecoder_->type() == ErrorType::X,
                "LifetimeSimulator: xDecoder must decode X errors");
}

void
LifetimeSimulator::decodeLifetime(ErrorType type, Decoder &decoder,
                                  MonteCarloResult &acc)
{
    const Syndrome syn = throughCircuits_
                             ? circuit_.extract(state_, type)
                             : extractSyndrome(state_, type);
    const Correction corr = decoder.decode(syn);
    corr.applyTo(state_, type);
    if (auto *mesh = dynamic_cast<MeshDecoder *>(&decoder)) {
        const auto &stats = mesh->lastStats();
        acc.cycles.add(stats.cycles);
        if (acc.cycleHistogram.numBins() > 1)
            acc.cycleHistogram.add(
                static_cast<std::size_t>(stats.cycles));
    }
}

bool
LifetimeSimulator::decodeFamily(ErrorType type, Decoder &decoder,
                                ErrorState &state, MonteCarloResult &acc)
{
    const Syndrome syn = throughCircuits_
                             ? circuit_.extract(state, type)
                             : extractSyndrome(state, type);
    const Correction corr = decoder.decode(syn);
    corr.applyTo(state, type);

    if (auto *mesh = dynamic_cast<MeshDecoder *>(&decoder)) {
        const auto &stats = mesh->lastStats();
        acc.cycles.add(stats.cycles);
        if (acc.cycleHistogram.numBins() > 1)
            acc.cycleHistogram.add(
                static_cast<std::size_t>(stats.cycles));
    }

    const FailureReport report = classifyResidual(state, type);
    if (report.syndromeNonzero)
        ++acc.syndromeResidualFailures;
    return report.failed();
}

bool
LifetimeSimulator::runRound(MonteCarloResult &acc)
{
    if (!lifetimeMode_)
        state_.clear();
    model_.sample(rng_, state_);

    bool failed = false;
    if (lifetimeMode_) {
        decodeLifetime(ErrorType::Z, zDecoder_, acc);
        const bool z_parity = crossingParity(state_, ErrorType::Z);
        failed |= z_parity != zParity_;
        zParity_ = z_parity;
        if (xDecoder_) {
            decodeLifetime(ErrorType::X, *xDecoder_, acc);
            const bool x_parity = crossingParity(state_, ErrorType::X);
            failed |= x_parity != xParity_;
            xParity_ = x_parity;
        } else {
            require(state_.weight(ErrorType::X) == 0,
                    "LifetimeSimulator: X errors present but no X "
                    "decoder");
        }
    } else {
        failed = decodeFamily(ErrorType::Z, zDecoder_, state_, acc);
        if (xDecoder_)
            failed |=
                decodeFamily(ErrorType::X, *xDecoder_, state_, acc);
        else
            require(state_.weight(ErrorType::X) == 0,
                    "LifetimeSimulator: X errors present but no X "
                    "decoder");
    }

    ++acc.trials;
    if (failed)
        ++acc.failures;
    return failed;
}

MonteCarloResult
LifetimeSimulator::run(const StopRule &rule)
{
    MonteCarloResult acc;
    acc.cycleHistogram =
        Histogram(static_cast<std::size_t>(128 * (lattice_.gridSize()
                                                  + 2)));
    while (acc.trials < rule.maxTrials) {
        runRound(acc);
        if (acc.trials >= rule.minTrials &&
            acc.failures >= rule.targetFailures)
            break;
    }
    acc.logicalErrorRate =
        acc.trials ? static_cast<double>(acc.failures) /
                         static_cast<double>(acc.trials)
                   : 0.0;
    acc.ci = wilson95(acc.failures, acc.trials);
    return acc;
}

} // namespace nisqpp
