/**
 * @file
 * Experiment driver shared by the bench binaries: sweeps (code distance,
 * physical error rate) grids for a decoder family, collecting logical
 * error rate curves, decoder cycle statistics and fitted scaling
 * parameters. Factored here so every figure/table bench stays a thin
 * printer.
 */

#ifndef NISQPP_SIM_EXPERIMENT_HH
#define NISQPP_SIM_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/fit.hh"
#include "sim/monte_carlo.hh"
#include "sim/threshold.hh"

namespace nisqpp {

/** Builds a decoder for a lattice/type; lets sweeps construct per-d. */
using DecoderFactory = std::function<std::unique_ptr<Decoder>(
    const SurfaceLattice &, ErrorType)>;

/** Configuration of one logical-error-rate sweep. */
struct SweepConfig
{
    std::vector<int> distances{3, 5, 7, 9};
    std::vector<double> physicalRates;
    bool depolarizing = false; ///< default: pure dephasing (paper)
    bool throughCircuits = false;
    bool lifetimeMode = false; ///< the paper's persistent-state protocol
    StopRule stopRule{};
    std::uint64_t seed = 0x5150f00dULL;

    /** Log-spaced physical error rates between @p lo and @p hi. */
    static std::vector<double> logSpaced(double lo, double hi, int count);
};

/** Results of one sweep: a curve per distance + per-point telemetry. */
struct SweepResult
{
    std::vector<ErrorRateCurve> curves;
    /** cellStats[di][pi] = full Monte Carlo result for that grid point. */
    std::vector<std::vector<MonteCarloResult>> cells;
};

/** Run a logical-error-rate sweep for @p factory decoders. */
SweepResult sweepLogicalError(const SweepConfig &config,
                              const DecoderFactory &factory);

/** Mesh decoder factory for a given design variant. */
DecoderFactory meshDecoderFactory(const MeshConfig &config);

/** Factories for the software baselines. @{ */
DecoderFactory mwpmDecoderFactory();
DecoderFactory unionFindDecoderFactory();
DecoderFactory greedyDecoderFactory();
/** @} */

/**
 * Fit the paper's scaling model to each curve of a sweep below the
 * given threshold (Table V).
 */
std::vector<ScalingFit> fitSweep(const SweepResult &result, double pth,
                                 double max_p);

} // namespace nisqpp

#endif // NISQPP_SIM_EXPERIMENT_HH
