/**
 * @file
 * Experiment driver shared by the bench binaries: sweeps (code distance,
 * physical error rate) grids for a decoder family, collecting logical
 * error rate curves, decoder cycle statistics and fitted scaling
 * parameters. The sweep types and the sharded executor live in
 * engine/sweep.hh; this header keeps the decoder factories, the fitting
 * helper and a serial-equivalent convenience wrapper.
 */

#ifndef NISQPP_SIM_EXPERIMENT_HH
#define NISQPP_SIM_EXPERIMENT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/fit.hh"
#include "core/mesh_config.hh"
#include "engine/sweep.hh"
#include "sim/threshold.hh"

namespace nisqpp {

/**
 * Run a logical-error-rate sweep for @p factory decoders on a
 * single-threaded engine (NISQPP_TRIALS-scaled). Produces the same
 * aggregates as Engine::runSweep at any thread count for the same
 * seed; use an Engine directly to parallelize.
 */
SweepResult sweepLogicalError(const SweepConfig &config,
                              const DecoderFactory &factory);

/** Mesh decoder factory for a given design variant. */
DecoderFactory meshDecoderFactory(const MeshConfig &config);

/** Factories for the software baselines. @{ */
DecoderFactory mwpmDecoderFactory();
DecoderFactory unionFindDecoderFactory();
DecoderFactory greedyDecoderFactory();
/** @} */

/**
 * Tiered decoder factory: a mesh first tier built from @p meshConfig
 * with an exact escalation backend (@p exactFamily is a software
 * family name: "union_find", "mwpm" or "greedy"); decodes whose mesh
 * confidence falls below @p threshold escalate. Deliberately *not*
 * part of decoderFamilies(): the tiered decoder is an operating mode
 * composed from those families (the tiered_decode scenario and the
 * determinism tests build it explicitly), not a fifth baseline, and
 * adding it to the registry would sweep it through every
 * all-families scenario and golden.
 */
DecoderFactory tieredDecoderFactory(const MeshConfig &meshConfig,
                                    const std::string &exactFamily,
                                    double threshold);

/** One named decoder family for cross-decoder comparison scenarios. */
struct DecoderFamily
{
    std::string name;
    DecoderFactory factory;
};

/**
 * The canonical decoder-family list (mesh final design + the software
 * baselines), in presentation order. Every scenario or test that
 * compares "all decoders" iterates this registry so adding a family
 * is a one-place change; the names double as
 * StreamLatencyModel::forFamily keys.
 */
const std::vector<DecoderFamily> &decoderFamilies();

/** Index of @p name in decoderFamilies(); fatal when unknown. */
std::size_t decoderFamilyIndex(const std::string &name);

/**
 * Fit the paper's scaling model to each curve of a sweep below the
 * given threshold (Table V).
 */
std::vector<ScalingFit> fitSweep(const SweepResult &result, double pth,
                                 double max_p);

} // namespace nisqpp

#endif // NISQPP_SIM_EXPERIMENT_HH
