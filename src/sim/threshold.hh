/**
 * @file
 * Threshold metrics (paper Section VII, "Evaluation Performance
 * Metrics"): the pseudo-threshold of a single code distance is the
 * physical error rate where PL = p; the accuracy threshold is where the
 * PL curves of successive code distances cross (below it, larger d means
 * lower PL). Both are estimated from sampled curves by log-log
 * interpolation.
 */

#ifndef NISQPP_SIM_THRESHOLD_HH
#define NISQPP_SIM_THRESHOLD_HH

#include <optional>
#include <vector>

namespace nisqpp {

/** One sampled logical-error-rate curve. */
struct ErrorRateCurve
{
    int distance = 0;
    std::vector<double> p;  ///< physical error rates, ascending
    std::vector<double> pl; ///< logical error rates (0 allowed)
};

/**
 * Pseudo-threshold: the p where the curve crosses PL = p, found by
 * log-log linear interpolation between the bracketing samples.
 *
 * @return std::nullopt when the curve never crosses in the sampled range.
 */
std::optional<double> pseudoThreshold(const ErrorRateCurve &curve);

/**
 * Crossing point of two curves (accuracy-threshold estimate between two
 * code distances), by log-log interpolation.
 */
std::optional<double> curveCrossing(const ErrorRateCurve &a,
                                    const ErrorRateCurve &b);

/**
 * Accuracy threshold over a family of curves: the median of pairwise
 * crossings between successive distances (robust to sampling noise).
 */
std::optional<double>
accuracyThreshold(const std::vector<ErrorRateCurve> &curves);

} // namespace nisqpp

#endif // NISQPP_SIM_THRESHOLD_HH
