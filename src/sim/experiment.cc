#include "sim/experiment.hh"

#include <cmath>

#include "common/logging.hh"
#include "decoders/greedy_decoder.hh"
#include "decoders/mwpm_decoder.hh"
#include "decoders/union_find_decoder.hh"

namespace nisqpp {

std::vector<double>
SweepConfig::logSpaced(double lo, double hi, int count)
{
    require(lo > 0 && hi > lo && count >= 2,
            "logSpaced: bad range");
    std::vector<double> out;
    out.reserve(count);
    const double step = (std::log(hi) - std::log(lo)) / (count - 1);
    for (int i = 0; i < count; ++i)
        out.push_back(std::exp(std::log(lo) + step * i));
    return out;
}

SweepResult
sweepLogicalError(const SweepConfig &config, const DecoderFactory &factory)
{
    require(!config.physicalRates.empty(),
            "sweepLogicalError: no physical rates given");
    SweepResult result;
    const StopRule rule = config.stopRule.scaledByEnv();

    Rng master(config.seed);
    for (int d : config.distances) {
        SurfaceLattice lattice(d);
        ErrorRateCurve curve;
        curve.distance = d;
        std::vector<MonteCarloResult> row;
        for (double p : config.physicalRates) {
            auto z_dec = factory(lattice, ErrorType::Z);
            std::unique_ptr<Decoder> x_dec;
            std::unique_ptr<ErrorModel> model;
            if (config.depolarizing) {
                model = std::make_unique<DepolarizingModel>(p);
                x_dec = factory(lattice, ErrorType::X);
            } else {
                model = std::make_unique<DephasingModel>(p);
            }
            Rng child = master.split();
            LifetimeSimulator sim(lattice, *model, *z_dec, x_dec.get(),
                                  child.next(), config.throughCircuits);
            sim.setLifetimeMode(config.lifetimeMode);
            MonteCarloResult mc = sim.run(rule);
            curve.p.push_back(p);
            curve.pl.push_back(mc.logicalErrorRate);
            row.push_back(std::move(mc));
        }
        result.curves.push_back(std::move(curve));
        result.cells.push_back(std::move(row));
    }
    return result;
}

DecoderFactory
meshDecoderFactory(const MeshConfig &config)
{
    return [config](const SurfaceLattice &lat, ErrorType type) {
        return std::make_unique<MeshDecoder>(lat, type, config);
    };
}

DecoderFactory
mwpmDecoderFactory()
{
    return [](const SurfaceLattice &lat, ErrorType type) {
        return std::make_unique<MwpmDecoder>(lat, type);
    };
}

DecoderFactory
unionFindDecoderFactory()
{
    return [](const SurfaceLattice &lat, ErrorType type) {
        return std::make_unique<UnionFindDecoder>(lat, type);
    };
}

DecoderFactory
greedyDecoderFactory()
{
    return [](const SurfaceLattice &lat, ErrorType type) {
        return std::make_unique<GreedyDecoder>(lat, type);
    };
}

std::vector<ScalingFit>
fitSweep(const SweepResult &result, double pth, double max_p)
{
    std::vector<ScalingFit> fits;
    for (const auto &curve : result.curves) {
        std::vector<double> ps, pls;
        for (std::size_t i = 0; i < curve.p.size(); ++i) {
            if (curve.p[i] <= max_p && curve.pl[i] > 0) {
                ps.push_back(curve.p[i]);
                pls.push_back(curve.pl[i]);
            }
        }
        fits.push_back(fitScalingModel(ps, pls, pth, curve.distance));
    }
    return fits;
}

} // namespace nisqpp
