#include "sim/experiment.hh"

#include "common/logging.hh"
#include "core/mesh_decoder.hh"
#include "decoders/greedy_decoder.hh"
#include "decoders/mwpm_decoder.hh"
#include "decoders/tiered_decoder.hh"
#include "decoders/union_find_decoder.hh"

namespace nisqpp {

SweepResult
sweepLogicalError(const SweepConfig &config, const DecoderFactory &factory)
{
    SweepConfig scaled = config;
    scaled.stopRule = config.stopRule.scaledByEnv();
    Engine engine{EngineOptions{}}; // one thread: serial reference run
    return engine.runSweep(scaled, factory);
}

DecoderFactory
meshDecoderFactory(const MeshConfig &config)
{
    return [config](const SurfaceLattice &lat, ErrorType type) {
        return std::make_unique<MeshDecoder>(lat, type, config);
    };
}

DecoderFactory
mwpmDecoderFactory()
{
    return [](const SurfaceLattice &lat, ErrorType type) {
        return std::make_unique<MwpmDecoder>(lat, type);
    };
}

DecoderFactory
unionFindDecoderFactory()
{
    return [](const SurfaceLattice &lat, ErrorType type) {
        return std::make_unique<UnionFindDecoder>(lat, type);
    };
}

DecoderFactory
greedyDecoderFactory()
{
    return [](const SurfaceLattice &lat, ErrorType type) {
        return std::make_unique<GreedyDecoder>(lat, type);
    };
}

DecoderFactory
tieredDecoderFactory(const MeshConfig &meshConfig,
                     const std::string &exactFamily, double threshold)
{
    DecoderFactory exact;
    if (exactFamily == "union_find")
        exact = unionFindDecoderFactory();
    else if (exactFamily == "mwpm")
        exact = mwpmDecoderFactory();
    else if (exactFamily == "greedy")
        exact = greedyDecoderFactory();
    else
        fatal("tieredDecoderFactory: unknown escalation family '" +
              exactFamily + "' (expected union_find, mwpm or greedy)");
    return [meshConfig, exact, threshold](const SurfaceLattice &lat,
                                          ErrorType type) {
        return std::make_unique<TieredDecoder>(
            lat, type,
            std::make_unique<MeshDecoder>(lat, type, meshConfig),
            exact(lat, type), threshold);
    };
}

const std::vector<DecoderFamily> &
decoderFamilies()
{
    static const std::vector<DecoderFamily> families{
        {"sfq_mesh", meshDecoderFactory(MeshConfig::finalDesign())},
        {"union_find", unionFindDecoderFactory()},
        {"mwpm", mwpmDecoderFactory()},
        {"greedy", greedyDecoderFactory()},
    };
    return families;
}

std::size_t
decoderFamilyIndex(const std::string &name)
{
    const auto &families = decoderFamilies();
    for (std::size_t i = 0; i < families.size(); ++i)
        if (families[i].name == name)
            return i;
    fatal("unknown decoder family '" + name + "'");
}

std::vector<ScalingFit>
fitSweep(const SweepResult &result, double pth, double max_p)
{
    std::vector<ScalingFit> fits;
    for (const auto &curve : result.curves) {
        std::vector<double> ps, pls;
        for (std::size_t i = 0; i < curve.p.size(); ++i) {
            if (curve.p[i] <= max_p && curve.pl[i] > 0) {
                ps.push_back(curve.p[i]);
                pls.push_back(curve.pl[i]);
            }
        }
        fits.push_back(fitScalingModel(ps, pls, pth, curve.distance));
    }
    return fits;
}

} // namespace nisqpp
