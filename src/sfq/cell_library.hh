/**
 * @file
 * The ERSFQ standard-cell library of paper Table II: four clocked logic
 * gates plus the Destructive Read-Out D-flip-flop used for path
 * balancing. Area, Josephson-junction count and intrinsic delay are the
 * paper's numbers; per-cell power is calibrated so a logic gate
 * dissipates the 0.026 uW reported in Table III.
 */

#ifndef NISQPP_SFQ_CELL_LIBRARY_HH
#define NISQPP_SFQ_CELL_LIBRARY_HH

#include <string>

namespace nisqpp {

/** SFQ cell types available to the synthesis flow. */
enum class CellKind : unsigned char
{
    Input,  ///< primary input pseudo-cell (no cost)
    And2,
    Or2,
    Xor2,
    Not,
    DroDff, ///< path-balancing / state-holding flip-flop
};

/** Static characteristics of one cell. */
struct CellInfo
{
    std::string name;
    double areaUm2;
    int jjCount;
    double delayPs;
    double powerUw;
};

/** Lookup the Table II characteristics of @p kind. */
const CellInfo &cellInfo(CellKind kind);

/** Number of data inputs of @p kind (clock not counted). */
int cellArity(CellKind kind);

/**
 * Evaluate the cell's boolean function.
 *
 * @param a First input.
 * @param b Second input (ignored for unary cells).
 */
bool evalCell(CellKind kind, bool a, bool b = false);

} // namespace nisqpp

#endif // NISQPP_SFQ_CELL_LIBRARY_HH
