#include "sfq/cell_library.hh"

#include "common/logging.hh"

namespace nisqpp {

const CellInfo &
cellInfo(CellKind kind)
{
    // Area / JJ / delay from paper Table II. Logic-gate power matches
    // the 0.026 uW per gate of Table III; the DFF is scaled by its
    // area ratio (3360/4200).
    static const CellInfo kInput{"INPUT", 0.0, 0, 0.0, 0.0};
    static const CellInfo kAnd{"AND2", 4200.0, 17, 9.2, 0.026};
    static const CellInfo kOr{"OR2", 4200.0, 12, 7.2, 0.026};
    static const CellInfo kXor{"XOR2", 4200.0, 12, 5.7, 0.026};
    static const CellInfo kNot{"NOT", 4200.0, 13, 9.2, 0.026};
    static const CellInfo kDff{"DRO_DFF", 3360.0, 10, 5.0, 0.0208};
    switch (kind) {
      case CellKind::Input: return kInput;
      case CellKind::And2: return kAnd;
      case CellKind::Or2: return kOr;
      case CellKind::Xor2: return kXor;
      case CellKind::Not: return kNot;
      case CellKind::DroDff: return kDff;
    }
    panic("cellInfo: unknown cell kind");
}

int
cellArity(CellKind kind)
{
    switch (kind) {
      case CellKind::Input: return 0;
      case CellKind::Not:
      case CellKind::DroDff: return 1;
      default: return 2;
    }
}

bool
evalCell(CellKind kind, bool a, bool b)
{
    switch (kind) {
      case CellKind::Input:
        panic("evalCell: inputs have no function");
      case CellKind::And2: return a && b;
      case CellKind::Or2: return a || b;
      case CellKind::Xor2: return a != b;
      case CellKind::Not: return !a;
      case CellKind::DroDff: return a;
    }
    panic("evalCell: unknown cell kind");
}

} // namespace nisqpp
