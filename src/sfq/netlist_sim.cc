#include "sfq/netlist_sim.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nisqpp {

NetlistSim::NetlistSim(const Netlist &netlist)
    : netlist_(&netlist),
      state_(netlist.numNodes(), 0),
      next_(netlist.numNodes(), 0)
{
    for (NodeId id : netlist.inputs())
        inputIndex_[netlist.node(id).name] = id;
    for (const auto &[id, name] : netlist.outputs())
        outputIndex_[name] = id;
    // Validate connectivity up front (also catches open state DFFs).
    for (NodeId v = 0; v < static_cast<NodeId>(netlist.numNodes()); ++v) {
        const auto &node = netlist.node(v);
        if (node.kind != CellKind::Input)
            require(static_cast<int>(node.fanin.size()) ==
                        cellArity(node.kind),
                    "NetlistSim: node with unconnected fanin");
    }
}

void
NetlistSim::reset()
{
    std::fill(state_.begin(), state_.end(), 0);
    std::fill(next_.begin(), next_.end(), 0);
}

void
NetlistSim::setInput(const std::string &name, bool value)
{
    const auto it = inputIndex_.find(name);
    require(it != inputIndex_.end(), "NetlistSim: unknown input " + name);
    state_[it->second] = value;
}

void
NetlistSim::clock()
{
    const auto n = static_cast<NodeId>(netlist_->numNodes());
    for (NodeId v = 0; v < n; ++v) {
        const auto &node = netlist_->node(v);
        if (node.kind == CellKind::Input) {
            next_[v] = state_[v]; // inputs are held externally
            continue;
        }
        const bool a = state_[node.fanin[0]];
        const bool b =
            node.fanin.size() > 1 ? state_[node.fanin[1]] : false;
        next_[v] = evalCell(node.kind, a, b);
    }
    std::swap(state_, next_);
}

void
NetlistSim::run(int cycles)
{
    for (int i = 0; i < cycles; ++i)
        clock();
}

bool
NetlistSim::output(const std::string &name) const
{
    const auto it = outputIndex_.find(name);
    require(it != outputIndex_.end(),
            "NetlistSim: unknown output " + name);
    return state_[it->second];
}

} // namespace nisqpp
