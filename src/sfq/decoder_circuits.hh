/**
 * @file
 * Gate-level netlist constructions of the decoder module subcircuits
 * (paper Fig. 9 and Table III): the combined Pair_Req/Grow subcircuit,
 * the Pair_Grant subcircuit (with its one-hot grant latch), the Pair
 * subcircuit (grant meets, chain marking and the reset trigger), and the
 * Reset keeper (five cascaded buffers ORed with the global wire — the
 * 7-input OR of Table III). The boolean equations are the ones the mesh
 * simulator evaluates row-parallel; the netlist simulator proves the two
 * agree (tests/sfq/test_decoder_circuits.cc).
 *
 * Signal naming: directions are travel directions n/e/s/w; inputs are
 * "g_n", "rq_e", "gr_s", "pr_w", plus "hot", "reset", "boundary".
 */

#ifndef NISQPP_SFQ_DECODER_CIRCUITS_HH
#define NISQPP_SFQ_DECODER_CIRCUITS_HH

#include "sfq/netlist.hh"

namespace nisqpp {

/** Direction suffixes in netlist port names, travel-direction order. */
extern const char *const kDirName[4];

/**
 * Grow + Pair_Req subcircuit: grow pass/emit with reset gating, grow
 * meets with effectiveness priority, request emission and pass.
 * Outputs: grow_<d>, rq_<d>.
 */
Netlist growPairReqSubcircuit();

/**
 * Pair_Grant subcircuit: one-hot grant latch with fixed request
 * priority, grant emission and pass. Outputs: gr_<d>.
 */
Netlist pairGrantSubcircuit();

/**
 * Pair subcircuit: grant meets -> single pair pulses (rising-edge DROs),
 * boundary conversion, pair pass, pairing-completion trigger and the
 * error (chain membership) latch. Outputs: pr_<d>, fire, error.
 */
Netlist pairSubcircuit();

/**
 * Reset keeper: five cascaded buffers hold the reset for the circuit
 * depth; block = OR7(global, trigger, b1..b5). Output: block.
 */
Netlist resetKeeperSubcircuit();

/** The full decoder module: all subcircuits with shared ports. */
Netlist fullDecoderModule();

/** One bare cell as a netlist (Table III single-gate rows). */
Netlist singleGateNetlist(CellKind kind);

/** n-input OR tree (Table III "OR GATE 7 INPUTS" row uses n=7). */
Netlist orNNetlist(int n);

} // namespace nisqpp

#endif // NISQPP_SFQ_DECODER_CIRCUITS_HH
