/**
 * @file
 * Synthesis reporting (paper Table III): given a netlist, path balance
 * it and characterize logical depth, latency, area, Josephson-junction
 * count and power from the Table II cell library.
 *
 * Two latency figures are reported: the sum over pipeline stages of the
 * slowest cell delay in each stage (pure cell delay), and the clocked
 * latency depth x 27.12 ps — the stage period implied by the paper's
 * full-circuit figure (162.72 ps at depth 6), which budgets clock
 * distribution and interconnect on top of cell delay.
 */

#ifndef NISQPP_SFQ_SYNTHESIS_HH
#define NISQPP_SFQ_SYNTHESIS_HH

#include <string>

#include "sfq/path_balance.hh"

namespace nisqpp {

/** Stage period implied by Table III (162.72 ps / depth 6). */
constexpr double kStagePeriodPs = 27.12;

/** Characterization of one synthesized circuit. */
struct SynthesisReport
{
    std::string name;
    int logicalDepth = 0;
    double latencyCellPs = 0.0;    ///< sum of per-stage max cell delays
    double latencyClockedPs = 0.0; ///< depth x kStagePeriodPs
    double areaUm2 = 0.0;
    int jjCount = 0;
    double powerUw = 0.0;
    std::size_t gateCount = 0; ///< logic cells (AND/OR/XOR/NOT)
    std::size_t dffCount = 0;  ///< DRO DFFs incl. balancing insertions
};

/** Path balance @p netlist and report its characteristics. */
SynthesisReport synthesize(const Netlist &netlist);

/** Report of an already balanced netlist (no re-balancing). */
SynthesisReport characterize(const BalancedNetlist &balanced);

} // namespace nisqpp

#endif // NISQPP_SFQ_SYNTHESIS_HH
