#include "sfq/netlist.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nisqpp {

Netlist::Netlist(std::string name)
    : name_(std::move(name))
{
}

NodeId
Netlist::addNode(Node node)
{
    nodes_.push_back(std::move(node));
    return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId
Netlist::addInput(const std::string &name)
{
    const NodeId id = addNode({CellKind::Input, {}, name, false});
    inputs_.push_back(id);
    return id;
}

NodeId
Netlist::addGate(CellKind kind, const std::vector<NodeId> &fanin,
                 const std::string &name)
{
    require(kind != CellKind::Input, "addGate: use addInput");
    require(static_cast<int>(fanin.size()) == cellArity(kind),
            "addGate: arity mismatch");
    for (NodeId f : fanin)
        require(f >= 0 && f < static_cast<NodeId>(nodes_.size()),
                "addGate: dangling fanin");
    return addNode({kind, fanin, name, false});
}

NodeId
Netlist::addStateDff(const std::string &name)
{
    Node node{CellKind::DroDff, {}, name, true};
    return addNode(std::move(node));
}

void
Netlist::connectFeedback(NodeId dff, NodeId source)
{
    require(dff >= 0 && dff < static_cast<NodeId>(nodes_.size()),
            "connectFeedback: bad dff");
    require(nodes_[dff].stateFeedback && nodes_[dff].fanin.empty(),
            "connectFeedback: node is not an open state DFF");
    require(source >= 0 && source < static_cast<NodeId>(nodes_.size()),
            "connectFeedback: bad source");
    nodes_[dff].fanin.push_back(source);
}

void
Netlist::markOutput(NodeId node, const std::string &name)
{
    require(node >= 0 && node < static_cast<NodeId>(nodes_.size()),
            "markOutput: bad node");
    outputs_.emplace_back(node, name);
}

NodeId
Netlist::orTree(std::vector<NodeId> inputs)
{
    require(!inputs.empty(), "orTree: empty input set");
    while (inputs.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < inputs.size(); i += 2)
            next.push_back(orGate(inputs[i], inputs[i + 1]));
        if (inputs.size() % 2 == 1)
            next.push_back(inputs.back());
        inputs = std::move(next);
    }
    return inputs[0];
}

NodeId
Netlist::andTree(std::vector<NodeId> inputs)
{
    require(!inputs.empty(), "andTree: empty input set");
    while (inputs.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < inputs.size(); i += 2)
            next.push_back(andGate(inputs[i], inputs[i + 1]));
        if (inputs.size() % 2 == 1)
            next.push_back(inputs.back());
        inputs = std::move(next);
    }
    return inputs[0];
}

std::vector<NodeId>
Netlist::topoOrder() const
{
    const auto n = static_cast<NodeId>(nodes_.size());
    std::vector<int> indegree(n, 0);
    std::vector<std::vector<NodeId>> fanout(n);
    for (NodeId v = 0; v < n; ++v) {
        if (nodes_[v].stateFeedback)
            continue; // feedback edge is a sequential boundary
        for (NodeId u : nodes_[v].fanin) {
            ++indegree[v];
            fanout[u].push_back(v);
        }
    }
    std::vector<NodeId> order;
    order.reserve(n);
    for (NodeId v = 0; v < n; ++v)
        if (indegree[v] == 0)
            order.push_back(v);
    for (std::size_t head = 0; head < order.size(); ++head) {
        for (NodeId w : fanout[order[head]])
            if (--indegree[w] == 0)
                order.push_back(w);
    }
    require(order.size() == nodes_.size(),
            "topoOrder: combinational cycle detected");
    return order;
}

std::size_t
Netlist::countKind(CellKind kind) const
{
    return static_cast<std::size_t>(
        std::count_if(nodes_.begin(), nodes_.end(),
                      [kind](const Node &n) { return n.kind == kind; }));
}

} // namespace nisqpp
