/**
 * @file
 * Full path balancing for dc-biased SFQ netlists (paper Section VII;
 * PBMap [46], SFQmap [47]). Every path from any primary input to any
 * primary output must traverse the same number of clocked cells; shorter
 * paths receive DRO DFFs. Level assignment minimizes the inserted DFF
 * count by a slack-redistribution pass (each node moves to the end of
 * its slack window that locally minimizes fanin+fanout padding),
 * matching the objective of the paper's dynamic-programming mapper.
 */

#ifndef NISQPP_SFQ_PATH_BALANCE_HH
#define NISQPP_SFQ_PATH_BALANCE_HH

#include <vector>

#include "sfq/netlist.hh"

namespace nisqpp {

/** Result of balancing: the padded netlist plus level bookkeeping. */
struct BalancedNetlist
{
    Netlist netlist;           ///< with DFF chains materialized
    std::vector<int> level;    ///< per node of the *balanced* netlist
    int depth = 0;             ///< logical depth (output level)
    std::size_t insertedDffs = 0;
};

/**
 * Compute per-node levels of @p netlist (inputs at 0) with the DFF-count
 * minimizing slack assignment; levels of state-feedback DFFs are pinned
 * to 1 (they launch at the clock boundary).
 */
std::vector<int> assignLevels(const Netlist &netlist);

/**
 * Fully path balance @p netlist: insert DFF chains on every edge whose
 * endpoints differ by more than one level and pad all primary outputs to
 * the common depth.
 */
BalancedNetlist pathBalance(const Netlist &netlist);

/**
 * Verify the full path-balancing property: every input-to-output path
 * has the same clocked length. Returns the common depth, or -1 when the
 * property is violated (used by tests).
 */
int checkBalanced(const Netlist &netlist);

} // namespace nisqpp

#endif // NISQPP_SFQ_PATH_BALANCE_HH
