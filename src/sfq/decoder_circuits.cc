#include "sfq/decoder_circuits.hh"

#include <array>
#include <string>

#include "common/logging.hh"

namespace nisqpp {

const char *const kDirName[4] = {"n", "e", "s", "w"};

namespace {

constexpr int dN = 0;
constexpr int dE = 1;
constexpr int dS = 2;
constexpr int dW = 3;
constexpr int kRev[4] = {dS, dW, dN, dE};

using Ports = std::array<NodeId, 4>;

Ports
addDirInputs(Netlist &net, const std::string &prefix)
{
    Ports ports;
    for (int d = 0; d < 4; ++d)
        ports[d] = net.addInput(prefix + "_" + kDirName[d]);
    return ports;
}

/**
 * Meet detection with the effectiveness priority {E,W} > {N,S} >
 * {S,E} > {S,W}; emissions along reversed travel directions are ORed
 * into @p emit. Logically identical to emitFromMeets() in
 * core/module_logic.hh, restructured into flat AND/OR trees so the
 * synthesized depth stays near the paper's: under the allow gate,
 * excluding the higher-priority *gated* meets is equivalent to
 * excluding the raw pair conditions.
 */
void
buildMeets(Netlist &net, const Ports &in, NodeId allow, Ports &emit)
{
    const NodeId p_ew = net.andGate(in[dE], in[dW]);
    const NodeId p_ns = net.andGate(in[dN], in[dS]);
    const NodeId p_se = net.andGate(in[dS], in[dE]);
    const NodeId p_sw = net.andGate(in[dS], in[dW]);
    const NodeId no_ew = net.notGate(p_ew);
    const NodeId no_ns = net.notGate(p_ns);
    const NodeId no_se = net.notGate(p_se);

    const NodeId m_ew = net.andGate(p_ew, allow);
    const NodeId m_ns = net.andTree({p_ns, no_ew, allow});
    const NodeId m_se = net.andTree({p_se, no_ew, no_ns, allow});
    const NodeId m_sw =
        net.andTree({p_sw, no_ew, no_ns, no_se, allow});

    emit[dW] = net.orGate(m_ew, m_se);
    emit[dE] = net.orGate(m_ew, m_sw);
    emit[dN] = net.orTree({m_ns, m_se, m_sw});
    emit[dS] = m_ns;
}

} // namespace

Netlist
growPairReqSubcircuit()
{
    Netlist net("pair_req_grow");
    const NodeId hot = net.addInput("hot");
    const NodeId reset = net.addInput("reset");
    const Ports g = addDirInputs(net, "g");
    const Ports rq = addDirInputs(net, "rq");

    const NodeId not_reset = net.notGate(reset);
    const NodeId not_hot = net.notGate(hot);
    const NodeId allow = net.andGate(not_hot, not_reset);

    for (int d = 0; d < 4; ++d) {
        const NodeId out = net.andGate(not_reset,
                                       net.orGate(g[d], hot));
        net.markOutput(out, std::string("grow_") + kDirName[d]);
    }

    Ports emit{-1, -1, -1, -1};
    buildMeets(net, g, allow, emit);
    for (int d = 0; d < 4; ++d) {
        const NodeId pass = net.andGate(rq[d], allow);
        net.markOutput(net.orGate(pass, emit[d]),
                       std::string("rq_") + kDirName[d]);
    }
    return net;
}

Netlist
pairGrantSubcircuit()
{
    Netlist net("pair_grant");
    const NodeId hot = net.addInput("hot");
    const NodeId reset = net.addInput("reset");
    const NodeId formed = net.addInput("formed");
    const Ports rq = addDirInputs(net, "rq");
    const Ports gr = addDirInputs(net, "gr");

    const NodeId not_reset = net.notGate(reset);
    const NodeId pass_ok = net.andGate(
        net.andGate(net.notGate(hot), net.notGate(formed)), not_reset);

    Ports latch;
    for (int d = 0; d < 4; ++d)
        latch[d] =
            net.addStateDff(std::string("latch_") + kDirName[d]);

    const NodeId any_latch = net.orTree(
        {latch[dN], latch[dE], latch[dS], latch[dW]});
    NodeId free = net.andGate(hot, net.notGate(any_latch));

    // Fixed request priority W, E, S, N (travel direction of the
    // incoming request); the grant travels the reversed direction.
    // Flat priority: request i is chosen iff free and no
    // higher-priority request is present.
    const int rq_priority[4] = {dW, dE, dS, dN};
    Ports chosen;
    for (int i = 0; i < 4; ++i) {
        const int rq_dir = rq_priority[i];
        std::vector<NodeId> terms{free, rq[rq_dir]};
        for (int j = 0; j < i; ++j)
            terms.push_back(net.notGate(rq[rq_priority[j]]));
        chosen[kRev[rq_dir]] = net.andTree(terms);
    }
    for (int d = 0; d < 4; ++d) {
        const NodeId next = net.andGate(
            net.orGate(latch[d], chosen[d]), not_reset);
        net.connectFeedback(latch[d], next);
        // Hot or already-formed modules do not pass foreign trains.
        const NodeId out = net.orGate(net.andGate(latch[d], hot),
                                      net.andGate(gr[d], pass_ok));
        net.markOutput(out, std::string("gr_") + kDirName[d]);
    }
    return net;
}

Netlist
pairSubcircuit()
{
    Netlist net("pair");
    const NodeId hot = net.addInput("hot");
    const NodeId reset = net.addInput("reset");
    const NodeId boundary = net.addInput("boundary");
    const Ports gr = addDirInputs(net, "gr");
    const Ports pr = addDirInputs(net, "pr");

    const NodeId not_hot = net.notGate(hot);
    const NodeId not_reset = net.notGate(reset);

    // Sticky pair-formation latch: one emission per module per round.
    const NodeId formed = net.addStateDff("formed_state");
    const NodeId allow = net.andTree(
        {not_hot, net.notGate(boundary), not_reset,
         net.notGate(formed)});

    Ports emit{-1, -1, -1, -1};
    buildMeets(net, gr, allow, emit);

    Ports raw;
    for (int d = 0; d < 4; ++d)
        raw[d] = net.orGate(
            emit[d], net.andTree({boundary, gr[kRev[d]],
                                  net.notGate(formed)}));
    const NodeId met_now =
        net.orTree({raw[dN], raw[dE], raw[dS], raw[dW]});
    net.connectFeedback(
        formed, net.andGate(net.orGate(formed, met_now), not_reset));
    net.markOutput(met_now, "formed_now");

    // Pairing completion + endpoint absorption: a fired endpoint keeps
    // absorbing pair pulses while the reset window holds (the `fired`
    // latch clears when the reset block deasserts).
    const NodeId pr_any =
        net.orTree({pr[dN], pr[dE], pr[dS], pr[dW]});
    const NodeId fire = net.andGate(pr_any, hot);
    net.markOutput(fire, "fire");
    const NodeId fired = net.addStateDff("fired_state");
    net.connectFeedback(fired,
                        net.andGate(net.orGate(fired, fire), reset));
    const NodeId pass_ok =
        net.notGate(net.orGate(hot, fired));

    Ports pr_out;
    for (int d = 0; d < 4; ++d) {
        pr_out[d] = net.orGate(net.andGate(pr[d], pass_ok), raw[d]);
        net.markOutput(pr_out[d], std::string("pr_") + kDirName[d]);
    }

    // Error (chain membership) state: touches TOGGLE membership so
    // chains of successive rounds compose by XOR (destructive-read
    // accumulation in the control layer).
    const NodeId err = net.addStateDff("err_state");
    const NodeId touch = net.orTree(
        {pr_out[dN], pr_out[dE], pr_out[dS], pr_out[dW], fire});
    net.connectFeedback(err, net.xorGate(err, touch));
    net.markOutput(err, "error");
    return net;
}

Netlist
resetKeeperSubcircuit()
{
    Netlist net("reset_keeper");
    const NodeId global = net.addInput("global_reset");
    const NodeId trigger = net.addInput("trigger");

    // Five cascaded buffers (DROs) keep the reset asserted for the
    // circuit depth; the 7-input OR matches Table III. The buffers are
    // state cells (level-0 sequential state): their stagger is the
    // function, so they are exempt from path balancing, matching how
    // the paper's depth-6 full circuit accounts for them.
    std::vector<NodeId> taps{global, trigger};
    NodeId prev = net.addStateDff("b1");
    net.connectFeedback(prev, net.orGate(global, trigger));
    taps.push_back(prev);
    for (int i = 2; i <= 5; ++i) {
        const NodeId next = net.addStateDff("b" + std::to_string(i));
        net.connectFeedback(next, prev);
        prev = next;
        taps.push_back(prev);
    }
    net.markOutput(net.orTree(taps), "block");
    return net;
}

Netlist
fullDecoderModule()
{
    Netlist net("decoder_module");
    const NodeId hot = net.addInput("hot");
    const NodeId global = net.addInput("global_reset");
    const NodeId trigger_in = net.addInput("trigger");
    const NodeId boundary = net.addInput("boundary");
    const Ports g = addDirInputs(net, "g");
    const Ports rq = addDirInputs(net, "rq");
    const Ports gr = addDirInputs(net, "gr");
    const Ports pr = addDirInputs(net, "pr");

    // Reset keeper (state buffers; see resetKeeperSubcircuit()).
    std::vector<NodeId> taps{global, trigger_in};
    NodeId prev = net.addStateDff("b1");
    net.connectFeedback(prev, net.orGate(global, trigger_in));
    taps.push_back(prev);
    for (int i = 2; i <= 5; ++i) {
        const NodeId next = net.addStateDff("b" + std::to_string(i));
        net.connectFeedback(next, prev);
        prev = next;
        taps.push_back(prev);
    }
    const NodeId reset = net.orTree(taps);
    const NodeId not_reset = net.notGate(reset);
    const NodeId not_hot = net.notGate(hot);

    // Grow + Pair_Req.
    const NodeId allow_rq = net.andGate(not_hot, not_reset);
    for (int d = 0; d < 4; ++d)
        net.markOutput(net.andGate(not_reset, net.orGate(g[d], hot)),
                       std::string("grow_") + kDirName[d]);
    Ports rq_emit{-1, -1, -1, -1};
    buildMeets(net, g, allow_rq, rq_emit);
    for (int d = 0; d < 4; ++d)
        net.markOutput(net.orGate(net.andGate(rq[d], allow_rq),
                                  rq_emit[d]),
                       std::string("rq_") + kDirName[d]);

    // Pair_Grant.
    Ports latch;
    for (int d = 0; d < 4; ++d)
        latch[d] =
            net.addStateDff(std::string("latch_") + kDirName[d]);
    const NodeId any_latch = net.orTree(
        {latch[dN], latch[dE], latch[dS], latch[dW]});
    NodeId free = net.andGate(hot, net.notGate(any_latch));
    // Flat priority: request i is chosen iff free and no
    // higher-priority request is present.
    const int rq_priority[4] = {dW, dE, dS, dN};
    Ports chosen;
    for (int i = 0; i < 4; ++i) {
        const int rq_dir = rq_priority[i];
        std::vector<NodeId> terms{free, rq[rq_dir]};
        for (int j = 0; j < i; ++j)
            terms.push_back(net.notGate(rq[rq_priority[j]]));
        chosen[kRev[rq_dir]] = net.andTree(terms);
    }

    // Pair (built before the grant outputs so the formed latch can
    // gate grant passing, as in the behavioral model).
    const NodeId formed = net.addStateDff("formed_state");
    const NodeId allow_pr = net.andTree(
        {not_hot, net.notGate(boundary), not_reset,
         net.notGate(formed)});
    Ports pr_emit{-1, -1, -1, -1};
    buildMeets(net, gr, allow_pr, pr_emit);
    Ports raw;
    for (int d = 0; d < 4; ++d)
        raw[d] = net.orGate(
            pr_emit[d], net.andTree({boundary, gr[kRev[d]],
                                     net.notGate(formed)}));
    const NodeId met_now =
        net.orTree({raw[dN], raw[dE], raw[dS], raw[dW]});
    net.connectFeedback(
        formed, net.andGate(net.orGate(formed, met_now), not_reset));

    const NodeId gr_pass_ok = net.andTree(
        {not_hot, net.notGate(formed), not_reset,
         net.notGate(met_now)});
    for (int d = 0; d < 4; ++d) {
        net.connectFeedback(latch[d],
                            net.andGate(net.orGate(latch[d], chosen[d]),
                                        not_reset));
        net.markOutput(net.orGate(net.andGate(latch[d], hot),
                                  net.andGate(gr[d], gr_pass_ok)),
                       std::string("gr_") + kDirName[d]);
    }

    const NodeId pr_any =
        net.orTree({pr[dN], pr[dE], pr[dS], pr[dW]});
    const NodeId fire = net.andGate(pr_any, hot);
    net.markOutput(fire, "fire");
    const NodeId fired = net.addStateDff("fired_state");
    net.connectFeedback(fired,
                        net.andGate(net.orGate(fired, fire), reset));
    const NodeId pr_pass_ok =
        net.notGate(net.orGate(hot, fired));
    Ports pr_out;
    for (int d = 0; d < 4; ++d) {
        pr_out[d] =
            net.orGate(net.andGate(pr[d], pr_pass_ok), raw[d]);
        net.markOutput(pr_out[d], std::string("pr_") + kDirName[d]);
    }
    const NodeId err = net.addStateDff("err_state");
    net.connectFeedback(
        err, net.xorGate(err, net.orTree({pr_out[dN], pr_out[dE],
                                          pr_out[dS], pr_out[dW],
                                          fire})));
    net.markOutput(err, "error");
    return net;
}

Netlist
singleGateNetlist(CellKind kind)
{
    Netlist net(cellInfo(kind).name);
    const int arity = cellArity(kind);
    require(arity >= 1, "singleGateNetlist: need a logic cell");
    std::vector<NodeId> fanin;
    for (int i = 0; i < arity; ++i)
        fanin.push_back(net.addInput("in" + std::to_string(i)));
    net.markOutput(net.addGate(kind, fanin), "out");
    return net;
}

Netlist
orNNetlist(int n)
{
    require(n >= 2, "orNNetlist: need n >= 2");
    Netlist net("OR GATE " + std::to_string(n) + " INPUTS");
    std::vector<NodeId> inputs;
    for (int i = 0; i < n; ++i)
        inputs.push_back(net.addInput("in" + std::to_string(i)));
    net.markOutput(net.orTree(inputs), "out");
    return net;
}

} // namespace nisqpp
