/**
 * @file
 * Gate-level netlist IR for the SFQ synthesis flow (paper Section VII,
 * "Single Flux Quantum Circuit Synthesis"). dc-biased SFQ gates are all
 * clocked, so a netlist is a synchronous DAG of cells; feedback is only
 * legal through DRO DFF state cells. Wide gates are built as balanced
 * 2-input trees by the builder helpers.
 */

#ifndef NISQPP_SFQ_NETLIST_HH
#define NISQPP_SFQ_NETLIST_HH

#include <string>
#include <vector>

#include "sfq/cell_library.hh"

namespace nisqpp {

/** A node id within a netlist. */
using NodeId = int;

/** Gate-level netlist with named primary inputs and outputs. */
class Netlist
{
  public:
    struct Node
    {
        CellKind kind;
        std::vector<NodeId> fanin;
        std::string name;     ///< non-empty for inputs / named nodes
        bool stateFeedback = false; ///< DFF whose input closes a loop
    };

    explicit Netlist(std::string name);

    const std::string &name() const { return name_; }

    /** Add a primary input. */
    NodeId addInput(const std::string &name);

    /** Add a gate; fanin arity must match the cell kind. */
    NodeId addGate(CellKind kind, const std::vector<NodeId> &fanin,
                   const std::string &name = "");

    /**
     * Add a DFF whose fanin is connected later via connectFeedback()
     * (state-holding loops, e.g. the grant latch).
     */
    NodeId addStateDff(const std::string &name);

    /** Close a state loop: drive state DFF @p dff from @p source. */
    void connectFeedback(NodeId dff, NodeId source);

    /** Mark @p node as a primary output. */
    void markOutput(NodeId node, const std::string &name);

    /** @name Convenience tree builders @{ */
    NodeId andGate(NodeId a, NodeId b) { return addGate(CellKind::And2, {a, b}); }
    NodeId orGate(NodeId a, NodeId b) { return addGate(CellKind::Or2, {a, b}); }
    NodeId xorGate(NodeId a, NodeId b) { return addGate(CellKind::Xor2, {a, b}); }
    NodeId notGate(NodeId a) { return addGate(CellKind::Not, {a}); }

    /** Balanced OR tree over any number of inputs. */
    NodeId orTree(std::vector<NodeId> inputs);

    /** Balanced AND tree over any number of inputs. */
    NodeId andTree(std::vector<NodeId> inputs);
    /** @} */

    std::size_t numNodes() const { return nodes_.size(); }
    const Node &node(NodeId id) const { return nodes_.at(id); }
    const std::vector<NodeId> &inputs() const { return inputs_; }
    const std::vector<std::pair<NodeId, std::string>> &
    outputs() const
    {
        return outputs_;
    }

    /**
     * Topological order over combinational edges (state-DFF feedback
     * edges are sequential boundaries and excluded). Panics on a
     * combinational cycle.
     */
    std::vector<NodeId> topoOrder() const;

    /** Count of cells of @p kind. */
    std::size_t countKind(CellKind kind) const;

  private:
    NodeId addNode(Node node);

    std::string name_;
    std::vector<Node> nodes_;
    std::vector<NodeId> inputs_;
    std::vector<std::pair<NodeId, std::string>> outputs_;
};

} // namespace nisqpp

#endif // NISQPP_SFQ_NETLIST_HH
