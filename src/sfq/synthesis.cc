#include "sfq/synthesis.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nisqpp {

SynthesisReport
characterize(const BalancedNetlist &balanced)
{
    const Netlist &net = balanced.netlist;
    SynthesisReport report;
    report.name = net.name();
    report.logicalDepth = balanced.depth;
    report.latencyClockedPs = balanced.depth * kStagePeriodPs;

    std::vector<double> stage_delay(balanced.depth + 1, 0.0);
    for (NodeId v = 0; v < static_cast<NodeId>(net.numNodes()); ++v) {
        const auto &node = net.node(v);
        const CellInfo &info = cellInfo(node.kind);
        if (node.kind == CellKind::Input)
            continue;
        report.areaUm2 += info.areaUm2;
        report.jjCount += info.jjCount;
        report.powerUw += info.powerUw;
        if (node.kind == CellKind::DroDff)
            ++report.dffCount;
        else
            ++report.gateCount;
        const int lvl = balanced.level.at(v);
        if (lvl >= 0 && lvl < static_cast<int>(stage_delay.size()))
            stage_delay[lvl] =
                std::max(stage_delay[lvl], info.delayPs);
    }
    for (double d : stage_delay)
        report.latencyCellPs += d;
    return report;
}

SynthesisReport
synthesize(const Netlist &netlist)
{
    const BalancedNetlist balanced = pathBalance(netlist);
    require(checkBalanced(balanced.netlist) == balanced.depth,
            "synthesize: balancing postcondition failed");
    return characterize(balanced);
}

} // namespace nisqpp
