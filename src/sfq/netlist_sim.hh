/**
 * @file
 * Clocked functional simulation of SFQ netlists — the repository's
 * stand-in for the JSIM verification step of paper Section VII. Every
 * cell (gate or DFF) registers its output each clock, matching the
 * "signals advance one gate per cycle" behavior of clocked dc-biased
 * SFQ logic; a fully path-balanced pipeline of depth D therefore
 * reproduces its combinational function with D cycles of latency, which
 * the equivalence tests against the behavioral module logic exploit.
 */

#ifndef NISQPP_SFQ_NETLIST_SIM_HH
#define NISQPP_SFQ_NETLIST_SIM_HH

#include <map>
#include <string>
#include <vector>

#include "sfq/netlist.hh"

namespace nisqpp {

/** Cycle-accurate two-phase simulator for one netlist. */
class NetlistSim
{
  public:
    explicit NetlistSim(const Netlist &netlist);

    const Netlist &netlist() const { return *netlist_; }

    /** Reset all registers to 0. */
    void reset();

    /** Set a primary input (held until changed). */
    void setInput(const std::string &name, bool value);

    /** Advance one clock: every cell latches its new output. */
    void clock();

    /** Convenience: run @p cycles clocks. */
    void run(int cycles);

    /** Current registered value of primary output @p name. */
    bool output(const std::string &name) const;

    /** Current registered value of any node (for debugging/tests). */
    bool value(NodeId id) const { return state_.at(id); }

  private:
    const Netlist *netlist_;
    std::vector<char> state_;
    std::vector<char> next_;
    std::map<std::string, NodeId> inputIndex_;
    std::map<std::string, NodeId> outputIndex_;
};

} // namespace nisqpp

#endif // NISQPP_SFQ_NETLIST_SIM_HH
