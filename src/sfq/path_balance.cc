#include "sfq/path_balance.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace nisqpp {

std::vector<int>
assignLevels(const Netlist &netlist)
{
    const auto n = static_cast<NodeId>(netlist.numNodes());
    const std::vector<NodeId> order = netlist.topoOrder();

    auto is_source = [&](NodeId v) {
        return netlist.node(v).kind == CellKind::Input ||
               netlist.node(v).stateFeedback;
    };

    // ASAP levels.
    std::vector<int> asap(n, 0);
    for (NodeId v : order) {
        if (is_source(v))
            continue;
        int lvl = 0;
        for (NodeId u : netlist.node(v).fanin)
            lvl = std::max(lvl, asap[u] + 1);
        asap[v] = lvl;
    }
    int depth = 0;
    for (NodeId v = 0; v < n; ++v)
        depth = std::max(depth, asap[v]);

    // Combinational fanout lists (feedback edges excluded).
    std::vector<std::vector<NodeId>> fanout(n);
    for (NodeId v = 0; v < n; ++v) {
        if (netlist.node(v).stateFeedback)
            continue;
        for (NodeId u : netlist.node(v).fanin)
            fanout[u].push_back(v);
    }

    // ALAP levels within the ASAP depth.
    std::vector<int> alap(n, depth);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const NodeId v = *it;
        if (!fanout[v].empty()) {
            int lvl = depth;
            for (NodeId w : fanout[v])
                lvl = std::min(lvl, alap[w] - 1);
            alap[v] = lvl;
        }
        if (is_source(v))
            alap[v] = 0;
    }

    // Slack redistribution: each node slides to the end of its window
    // that minimizes local DFF padding (linear cost in its level).
    std::vector<int> level = asap;
    for (int pass = 0; pass < 20; ++pass) {
        bool changed = false;
        for (NodeId v : order) {
            if (is_source(v))
                continue;
            int lo = 0;
            for (NodeId u : netlist.node(v).fanin)
                lo = std::max(lo, level[u] + 1);
            int hi = alap[v];
            for (NodeId w : fanout[v])
                hi = std::min(hi, level[w] - 1);
            hi = std::max(hi, lo);
            const int indeg =
                static_cast<int>(netlist.node(v).fanin.size());
            const int outdeg = static_cast<int>(fanout[v].size());
            int target = level[v];
            if (indeg > outdeg)
                target = lo;
            else if (outdeg > indeg)
                target = hi;
            target = std::clamp(target, lo, hi);
            if (target != level[v]) {
                level[v] = target;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    return level;
}

BalancedNetlist
pathBalance(const Netlist &netlist)
{
    const std::vector<int> level = assignLevels(netlist);
    const std::vector<NodeId> order = netlist.topoOrder();
    const auto n = static_cast<NodeId>(netlist.numNodes());

    int depth = 0;
    for (const auto &[node, name] : netlist.outputs())
        depth = std::max(depth, level[node]);

    BalancedNetlist result{Netlist(netlist.name() + "+balanced"), {}, 0,
                           0};
    Netlist &out = result.netlist;

    std::vector<NodeId> remap(n, -1);
    // Shared delay chains: chains[u][k] = u delayed by k+1 clocks.
    std::vector<std::vector<NodeId>> chains(n);
    std::vector<int> out_level; // level per node of the new netlist

    auto delayed = [&](NodeId old_u, int clocks) -> NodeId {
        require(clocks >= 0, "pathBalance: negative delay");
        if (clocks == 0)
            return remap[old_u];
        auto &chain = chains[old_u];
        while (static_cast<int>(chain.size()) < clocks) {
            const NodeId prev = chain.empty()
                                    ? remap[old_u]
                                    : chain.back();
            const NodeId dff =
                out.addGate(CellKind::DroDff, {prev});
            out_level.push_back(
                out_level[prev] + 1);
            ++result.insertedDffs;
            chain.push_back(dff);
        }
        return chain[clocks - 1];
    };

    std::vector<std::pair<NodeId, NodeId>> feedback; // (new dff, old src)
    for (NodeId v : order) {
        const auto &node = netlist.node(v);
        if (node.kind == CellKind::Input) {
            remap[v] = out.addInput(node.name);
            out_level.push_back(0);
            continue;
        }
        if (node.stateFeedback) {
            remap[v] = out.addStateDff(node.name);
            out_level.push_back(0);
            require(node.fanin.size() == 1,
                    "pathBalance: unconnected state DFF");
            feedback.emplace_back(remap[v], node.fanin[0]);
            continue;
        }
        std::vector<NodeId> fanin;
        fanin.reserve(node.fanin.size());
        for (NodeId u : node.fanin) {
            const int gap = level[v] - level[u] - 1;
            fanin.push_back(delayed(u, gap));
        }
        remap[v] = out.addGate(node.kind, fanin, node.name);
        out_level.push_back(level[v]);
    }
    for (auto &[dff, old_src] : feedback)
        out.connectFeedback(dff, remap[old_src]);

    for (const auto &[node, name] : netlist.outputs()) {
        const int gap = depth - level[node];
        out.markOutput(delayed(node, gap), name);
    }

    result.level = std::move(out_level);
    result.depth = depth;
    return result;
}

int
checkBalanced(const Netlist &netlist)
{
    const std::vector<NodeId> order = netlist.topoOrder();
    std::vector<int> len(netlist.numNodes(), 0);
    for (NodeId v : order) {
        const auto &node = netlist.node(v);
        if (node.kind == CellKind::Input || node.stateFeedback) {
            len[v] = 0;
            continue;
        }
        int common = -2;
        for (NodeId u : node.fanin) {
            if (common == -2)
                common = len[u];
            else if (len[u] != common)
                return -1;
        }
        len[v] = common + 1;
    }
    int depth = -2;
    for (const auto &[node, name] : netlist.outputs()) {
        if (depth == -2)
            depth = len[node];
        else if (len[node] != depth)
            return -1;
    }
    return depth < 0 ? 0 : depth;
}

} // namespace nisqpp
