#include "ckpt/checkpoint.hh"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <mutex>
#include <sstream>

#include "common/fault_env.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"

namespace nisqpp::ckpt {

std::uint64_t
fnv64(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t
fnv64(const std::string &text, std::uint64_t seed)
{
    return fnv64(text.data(), text.size(), seed);
}

std::string
hexBits(double v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(v)));
    return buf;
}

namespace {

/** Parse-time size caps: a checksummed file never exceeds these, so a
 * value above them is corruption the checksum happened to miss (or a
 * handcrafted file) — reject before allocating. */
constexpr std::size_t kMaxInvocations = 1u << 16;
constexpr std::size_t kMaxCells = 1u << 20;
constexpr std::size_t kMaxHistBins = 1u << 26;

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

[[noreturn]] void
malformed(std::size_t lineNo, const std::string &what)
{
    throw CheckpointError("checkpoint malformed at line " +
                          std::to_string(lineNo) + ": " + what);
}

[[noreturn]] void
truncated(std::size_t lineNo, const std::string &expected)
{
    throw CheckpointError(
        "checkpoint truncated: unexpected end of file at line " +
        std::to_string(lineNo) + " (expected " + expected + ")");
}

double
parseDoubleBits(const std::string &tok, std::size_t lineNo)
{
    if (tok.size() != 16 ||
        tok.find_first_not_of("0123456789abcdef") != std::string::npos)
        malformed(lineNo, "bad double bit pattern '" + tok + "'");
    const std::uint64_t bits = std::strtoull(tok.c_str(), nullptr, 16);
    return std::bit_cast<double>(bits);
}

/** "<numbins> <overflow> [i:c ...]" from the rest of @p in. */
void
parseHistTail(std::istringstream &in, std::size_t lineNo,
              std::vector<std::size_t> &bins, std::size_t &overflow)
{
    std::size_t numBins = 0;
    if (!(in >> numBins >> overflow))
        malformed(lineNo, "bad histogram header");
    if (numBins == 0 || numBins > kMaxHistBins)
        malformed(lineNo, "histogram bin count " +
                              std::to_string(numBins) +
                              " out of range [1, " +
                              std::to_string(kMaxHistBins) + "]");
    bins.assign(numBins, 0);
    std::string tok;
    while (in >> tok) {
        const std::size_t colon = tok.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == tok.size())
            malformed(lineNo, "bad histogram bin token '" + tok + "'");
        char *end = nullptr;
        const unsigned long long i =
            std::strtoull(tok.c_str(), &end, 10);
        if (!end || *end != ':' || i >= numBins)
            malformed(lineNo, "histogram bin index out of range in '" +
                                  tok + "'");
        const char *cstr = tok.c_str() + colon + 1;
        const unsigned long long c = std::strtoull(cstr, &end, 10);
        if (!end || *end != '\0')
            malformed(lineNo, "bad histogram bin count in '" + tok + "'");
        bins[static_cast<std::size_t>(i)] =
            static_cast<std::size_t>(c);
    }
}

void
writeHistTail(std::ostream &os, const Histogram &h)
{
    os << h.numBins() << ' ' << h.overflow();
    for (std::size_t i = 0; i < h.numBins(); ++i)
        if (h.bin(i) != 0)
            os << ' ' << i << ':' << h.bin(i);
}

void
serializeCell(std::ostream &os, std::size_t index,
              const CellLedger &cell)
{
    os << "cell " << index << " frontier " << cell.frontier
       << " stopped " << (cell.stopped ? 1 : 0) << '\n';
    const MonteCarloResult &r = cell.partial;
    // logicalErrorRate and ci are derived; finalize() recomputes them
    // from the integers after restore.
    os << "r " << r.trials << ' ' << r.failures << ' '
       << r.syndromeResidualFailures << '\n';
    const RunningStatsRaw s = r.cycles.raw();
    os << "s " << s.n << ' ' << hexBits(s.mean) << ' ' << hexBits(s.m2)
       << ' ' << hexBits(s.min) << ' ' << hexBits(s.max) << '\n';
    os << "h ";
    writeHistTail(os, r.cycleHistogram);
    os << '\n';
    r.metrics.forEachScalar([&](const std::string &name, bool isGauge,
                                std::uint64_t value) {
        if (obs::maskedName(name))
            return;
        require(name.find_first_of(" \n") == std::string::npos,
                "checkpoint: metric name with whitespace: " + name);
        os << (isGauge ? "mg " : "mc ") << name << ' ' << value << '\n';
    });
    r.metrics.forEachHistogram(
        [&](const std::string &name,
            const obs::MetricSet::HistogramEntry &entry) {
            if (obs::maskedName(name))
                return;
            require(name.find_first_of(" \n") == std::string::npos,
                    "checkpoint: metric name with whitespace: " + name);
            os << "mh " << name << ' ' << entry.sum << ' ';
            writeHistTail(os, entry.hist);
            os << '\n';
        });
    os << "endcell\n";
}

CellLedger
parseCell(const std::vector<std::string> &lines, std::size_t &idx,
          std::size_t expectIndex)
{
    const auto need = [&](const char *what) -> const std::string & {
        if (idx >= lines.size())
            truncated(lines.size() + 1, what);
        return lines[idx];
    };

    CellLedger cell;
    {
        std::istringstream in(need("cell header"));
        std::string kw, kwFrontier, kwStopped;
        std::size_t index = 0;
        int stopped = -1;
        if (!(in >> kw >> index >> kwFrontier >> cell.frontier >>
              kwStopped >> stopped) ||
            kw != "cell" || kwFrontier != "frontier" ||
            kwStopped != "stopped" || (stopped != 0 && stopped != 1))
            malformed(idx + 1, "bad cell header '" + lines[idx] + "'");
        if (index != expectIndex)
            malformed(idx + 1, "cell index " + std::to_string(index) +
                                   " out of order (expected " +
                                   std::to_string(expectIndex) + ")");
        cell.stopped = stopped == 1;
        ++idx;
    }
    {
        std::istringstream in(need("trial counts"));
        std::string kw;
        if (!(in >> kw >> cell.partial.trials >> cell.partial.failures >>
              cell.partial.syndromeResidualFailures) ||
            kw != "r")
            malformed(idx + 1, "bad trial-count line");
        ++idx;
    }
    {
        std::istringstream in(need("cycle statistics"));
        std::string kw, mean, m2, mn, mx;
        RunningStatsRaw raw;
        if (!(in >> kw >> raw.n >> mean >> m2 >> mn >> mx) || kw != "s")
            malformed(idx + 1, "bad cycle-statistics line");
        raw.mean = parseDoubleBits(mean, idx + 1);
        raw.m2 = parseDoubleBits(m2, idx + 1);
        raw.min = parseDoubleBits(mn, idx + 1);
        raw.max = parseDoubleBits(mx, idx + 1);
        cell.partial.cycles = RunningStats::fromRaw(raw);
        ++idx;
    }
    {
        std::istringstream in(need("cycle histogram"));
        std::string kw;
        if (!(in >> kw) || kw != "h")
            malformed(idx + 1, "bad cycle-histogram line");
        std::vector<std::size_t> bins;
        std::size_t overflow = 0;
        parseHistTail(in, idx + 1, bins, overflow);
        cell.partial.cycleHistogram =
            Histogram::fromParts(std::move(bins), overflow);
        ++idx;
    }
    while (need("metric line or endcell") != "endcell") {
        std::istringstream in(lines[idx]);
        std::string kw, name;
        if (!(in >> kw >> name))
            malformed(idx + 1, "bad metric line '" + lines[idx] + "'");
        if (kw == "mc" || kw == "mg") {
            std::uint64_t value = 0;
            std::string extra;
            if (!(in >> value) || (in >> extra))
                malformed(idx + 1, "bad metric value on '" + name + "'");
            if (kw == "mc")
                cell.partial.metrics.add(name, value);
            else
                cell.partial.metrics.maxGauge(name, value);
        } else if (kw == "mh") {
            std::uint64_t sum = 0;
            if (!(in >> sum))
                malformed(idx + 1, "bad metric histogram sum on '" +
                                       name + "'");
            std::vector<std::size_t> bins;
            std::size_t overflow = 0;
            parseHistTail(in, idx + 1, bins, overflow);
            cell.partial.metrics.mergeHistogram(
                name, Histogram::fromParts(std::move(bins), overflow),
                sum);
        } else {
            malformed(idx + 1,
                      "unknown cell record '" + kw + "'");
        }
        ++idx;
    }
    ++idx; // endcell
    cell.partial.finalize();
    return cell;
}

std::uint64_t
hashLines(const std::vector<std::string> &lines, std::size_t beg,
          std::size_t end)
{
    std::uint64_t h = kFnvBasis;
    for (std::size_t i = beg; i < end; ++i) {
        h = fnv64(lines[i].data(), lines[i].size(), h);
        h = fnv64("\n", 1, h);
    }
    return h;
}

/** @name Fault injection + write bookkeeping (process-global) @{ */

using faultenv::WriteFaultMode;
using faultenv::WriteFaultPlan;

std::mutex g_writeMutex;
std::uint64_t g_writeCount = 0;
bool g_faultParsed = false;
WriteFaultPlan g_faultPlan;
std::function<void(std::uint64_t)> g_observer;

/** Cached plan (env is read once per process; resetFaultState clears). */
const WriteFaultPlan &
faultPlan()
{
    if (!g_faultParsed) {
        g_faultPlan = faultenv::writeFaultPlanFromEnv();
        g_faultParsed = true;
    }
    return g_faultPlan;
}

void
writeAll(int fd, const char *data, std::size_t len,
         const std::string &path)
{
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::write(fd, data + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            ::close(fd);
            throw CheckpointError("cannot write checkpoint '" + path +
                                  "': write: " + std::strerror(err));
        }
        off += static_cast<std::size_t>(n);
    }
}

/** Best-effort fsync of @p path's directory so the rename is durable. */
void
fsyncParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

/** @} */

std::atomic<bool> g_interrupt{false};

extern "C" void
handleTerminationSignal(int sig)
{
    // Async-signal-safe: set the flag and restore the default
    // disposition so a second signal kills a wedged process.
    g_interrupt.store(true, std::memory_order_relaxed);
    std::signal(sig, SIG_DFL);
}

} // namespace

void
serializeLedger(std::ostream &os, const CheckpointLedger &ledger)
{
    require(ledger.scope.find('\n') == std::string::npos,
            "checkpoint: scope with newline");
    std::ostringstream head;
    head << "nisqpp-ckpt " << kCheckpointVersion << '\n'
         << "scope " << ledger.scope << '\n'
         << "invocations " << ledger.invocations.size() << '\n';
    os << head.str() << "check " << hex16(fnv64(head.str())) << '\n';
    for (std::size_t i = 0; i < ledger.invocations.size(); ++i) {
        const InvocationLedger &inv = ledger.invocations[i];
        require(inv.configText.find('\n') == std::string::npos,
                "checkpoint: config text with newline");
        std::ostringstream body;
        body << "inv " << i << " complete " << (inv.complete ? 1 : 0)
             << " cells " << inv.cells.size() << '\n'
             << "config " << inv.configText << '\n';
        for (std::size_t j = 0; j < inv.cells.size(); ++j)
            serializeCell(body, j, inv.cells[j]);
        os << body.str() << "endinv " << hex16(fnv64(body.str()))
           << '\n';
    }
    os << "end " << ledger.invocations.size() << '\n';
}

CheckpointLedger
deserializeLedger(std::istream &is)
{
    std::vector<std::string> lines;
    for (std::string line; std::getline(is, line);)
        lines.push_back(std::move(line));
    if (lines.empty())
        truncated(1, "checkpoint header");

    // Version gate first: a future-format file should say "unsupported
    // version", not "checksum mismatch".
    {
        std::istringstream in(lines[0]);
        std::string magic;
        long long version = -1;
        if (!(in >> magic >> version) || magic != "nisqpp-ckpt")
            malformed(1, "not a nisqpp checkpoint (bad magic '" +
                             lines[0] + "')");
        if (version != kCheckpointVersion)
            throw CheckpointError(
                "unsupported checkpoint version " +
                std::to_string(version) + " (this build reads version " +
                std::to_string(kCheckpointVersion) + ")");
    }
    if (lines.size() < 4)
        truncated(lines.size() + 1, "checkpoint header");

    CheckpointLedger ledger;
    if (lines[1].rfind("scope ", 0) != 0)
        malformed(2, "expected 'scope <name>'");
    ledger.scope = lines[1].substr(std::strlen("scope "));

    std::size_t invocations = 0;
    {
        std::istringstream in(lines[2]);
        std::string kw;
        if (!(in >> kw >> invocations) || kw != "invocations" ||
            invocations > kMaxInvocations)
            malformed(3, "bad invocation count '" + lines[2] + "'");
    }
    {
        std::istringstream in(lines[3]);
        std::string kw, sum;
        if (!(in >> kw >> sum) || kw != "check")
            malformed(4, "expected 'check <fnv64>'");
        if (sum != hex16(hashLines(lines, 0, 3)))
            throw CheckpointError("checkpoint header checksum mismatch "
                                  "(flipped or torn bytes)");
    }

    std::size_t idx = 4;
    for (std::size_t i = 0; i < invocations; ++i) {
        // Locate and verify the whole section before trusting any of
        // its size fields.
        const std::size_t beg = idx;
        std::size_t end = beg;
        while (end < lines.size() && lines[end].rfind("endinv ", 0) != 0)
            ++end;
        if (end == lines.size())
            truncated(lines.size() + 1,
                      "endinv of invocation " + std::to_string(i));
        {
            std::istringstream in(lines[end]);
            std::string kw, sum;
            in >> kw >> sum;
            if (sum != hex16(hashLines(lines, beg, end)))
                throw CheckpointError(
                    "checkpoint section checksum mismatch in "
                    "invocation " +
                    std::to_string(i) + " (flipped or torn bytes)");
        }

        InvocationLedger inv;
        std::size_t cells = 0;
        {
            std::istringstream in(lines[idx]);
            std::string kw, kwComplete, kwCells;
            std::size_t index = 0;
            int complete = -1;
            if (!(in >> kw >> index >> kwComplete >> complete >>
                  kwCells >> cells) ||
                kw != "inv" || kwComplete != "complete" ||
                kwCells != "cells" || index != i ||
                (complete != 0 && complete != 1) || cells > kMaxCells)
                malformed(idx + 1,
                          "bad invocation header '" + lines[idx] + "'");
            inv.complete = complete == 1;
            ++idx;
        }
        if (idx >= lines.size())
            truncated(lines.size() + 1, "config line");
        if (lines[idx].rfind("config ", 0) != 0)
            malformed(idx + 1, "expected 'config <text>'");
        inv.configText = lines[idx].substr(std::strlen("config "));
        ++idx;
        inv.cells.reserve(cells);
        for (std::size_t j = 0; j < cells; ++j)
            inv.cells.push_back(parseCell(lines, idx, j));
        if (idx != end)
            malformed(idx + 1, "trailing content before endinv");
        ++idx; // endinv
        ledger.invocations.push_back(std::move(inv));
    }

    if (idx >= lines.size())
        truncated(lines.size() + 1, "end trailer");
    {
        std::istringstream in(lines[idx]);
        std::string kw;
        std::size_t count = 0;
        if (!(in >> kw >> count) || kw != "end" || count != invocations)
            malformed(idx + 1, "bad end trailer '" + lines[idx] + "'");
    }
    return ledger;
}

void
writeCheckpoint(const std::string &path, const CheckpointLedger &ledger)
{
    std::ostringstream buf;
    serializeLedger(buf, ledger);
    const std::string payload = buf.str();
    const std::string tmp = path + ".tmp";

    std::lock_guard<std::mutex> lock(g_writeMutex);
    const std::uint64_t index = ++g_writeCount;
    const WriteFaultPlan &fault = faultPlan();
    // ">= N", not "== N": the counter is process-global and may have
    // advanced before a death-test fork, and the injector must still
    // fire exactly once.
    const bool fire = fault.mode != WriteFaultMode::None &&
                      index >= fault.afterWrites;
    const bool tear = fire && fault.mode == WriteFaultMode::Tear;

    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throw CheckpointError("cannot write checkpoint '" + path +
                              "': open '" + tmp +
                              "': " + std::strerror(errno));
    // A torn write dies mid-payload with no rename: the previous good
    // checkpoint at `path` must survive (the atomicity guarantee the
    // torture harness leans on).
    writeAll(fd, payload.data(), tear ? payload.size() / 2 :
                                        payload.size(), path);
    if (::fsync(fd) != 0) {
        const int err = errno;
        ::close(fd);
        throw CheckpointError("cannot write checkpoint '" + path +
                              "': fsync: " + std::strerror(err));
    }
    ::close(fd);
    if (tear)
        ::_exit(kExitFaultInjected);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw CheckpointError("cannot write checkpoint '" + path +
                              "': rename: " + std::strerror(errno));
    fsyncParentDir(path);
    if (fire)
        ::_exit(kExitFaultInjected);
    if (g_observer)
        g_observer(index);
}

CheckpointLedger
loadCheckpoint(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw CheckpointError("cannot open checkpoint '" + path +
                              "': " + std::strerror(errno));
    return deserializeLedger(in);
}

std::size_t
checkpointIntervalFromEnv(std::size_t fallback)
{
    const char *env = std::getenv("NISQPP_CKPT_INTERVAL");
    if (!env || !*env)
        return fallback;
    // Validated like NISQPP_TRIALS/NISQPP_BATCH: zero, negative,
    // non-numeric, fractional and absurdly large values all warn and
    // keep the previous setting.
    char *end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || (end && *end != '\0') || !std::isfinite(v) ||
        v < 1 || v > static_cast<double>(kMaxCheckpointInterval) ||
        v != std::floor(v)) {
        warn("NISQPP_CKPT_INTERVAL='" + std::string(env) +
             "' is not an integer in [1, " +
             std::to_string(kMaxCheckpointInterval) +
             "]; keeping checkpoint interval = " +
             std::to_string(fallback));
        return fallback;
    }
    return static_cast<std::size_t>(v);
}

void
installSignalHandlers()
{
    std::signal(SIGINT, handleTerminationSignal);
    std::signal(SIGTERM, handleTerminationSignal);
}

bool
interruptRequested()
{
    return g_interrupt.load(std::memory_order_relaxed);
}

void
requestInterrupt()
{
    g_interrupt.store(true, std::memory_order_relaxed);
}

void
clearInterrupt()
{
    g_interrupt.store(false, std::memory_order_relaxed);
}

void
setWriteObserver(std::function<void(std::uint64_t)> observer)
{
    std::lock_guard<std::mutex> lock(g_writeMutex);
    g_observer = std::move(observer);
}

void
resetFaultState()
{
    std::lock_guard<std::mutex> lock(g_writeMutex);
    g_writeCount = 0;
    g_faultParsed = false;
}

} // namespace nisqpp::ckpt
