/**
 * @file
 * Crash-safe checkpoint/resume for deep-tail Monte Carlo sweeps.
 *
 * Production logical-error-rate claims live at PL = 1e-8..1e-10, which
 * means billions of trials per grid cell — runs that take hours to
 * days and *will* be interrupted. The engine's determinism contract
 * makes resume honest: shard results merge in shard-index order from
 * seeds derived only from (cell seed, shard index), so the complete
 * state of a sweep is its *shard ledger* — per cell, the completed
 * ordered-prefix high-water mark plus the partial merge of
 * `MonteCarloResult` up to it. A sweep resumed from that ledger is
 * byte-identical to an uninterrupted one at any thread count.
 *
 * Format: a versioned line-oriented text document with an FNV-64
 * checksum per section (header + each engine invocation). Doubles are
 * serialized as raw IEEE-754 bit patterns, so restored accumulators
 * (Welford cycle statistics, histogram bins, metric counters) are
 * bit-exact. The masked `timing.*`/`sched.*`/`ckpt.*` metric
 * namespaces are excluded by design: they are host-dependent and sit
 * outside the determinism contract.
 *
 * Writes are atomic: serialize to `<path>.tmp`, fsync, rename. A crash
 * mid-write (the fault injector's "tear" mode simulates one) leaves
 * the previous good checkpoint untouched.
 *
 * Fault injection (NISQPP_FAULT_INJECT=kill-after=N | tear-after=N)
 * deterministically kills the process at the Nth checkpoint write —
 * after the rename for "kill", mid-payload with no rename for "tear" —
 * so `tools/ckpt_torture` can prove the kill→resume→compare loop
 * converges with zero byte drift.
 */

#ifndef NISQPP_CKPT_CHECKPOINT_HH
#define NISQPP_CKPT_CHECKPOINT_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/monte_carlo.hh"

namespace nisqpp::ckpt {

/** Format version written into (and required from) every file. */
inline constexpr int kCheckpointVersion = 1;

/**
 * Exit code of a run interrupted by SIGINT/SIGTERM after writing its
 * final checkpoint (EX_TEMPFAIL: retry with --resume). Distinct from
 * 0 (done) and 1 (error) so drivers can tell "resume me" apart from
 * "I failed".
 */
inline constexpr int kExitInterrupted = 75;

/** Exit code of a deterministic fault-injection kill (see above). */
inline constexpr int kExitFaultInjected = 87;

/** Default checkpoint cadence: shard completions between writes. */
inline constexpr std::size_t kDefaultCheckpointInterval = 32;

/** Largest accepted --checkpoint-interval / NISQPP_CKPT_INTERVAL. */
inline constexpr std::size_t kMaxCheckpointInterval = 1000000000;

/** A checkpoint could not be written, read, or applied. */
class CheckpointError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Thrown by the engine when a run stops on SIGINT/SIGTERM after
 * persisting its final checkpoint; carries the checkpoint path so the
 * CLI can print the --resume hint and exit with kExitInterrupted.
 */
class InterruptedError : public std::runtime_error
{
  public:
    explicit InterruptedError(std::string path)
        : std::runtime_error("interrupted; checkpoint written to '" +
                             path + "'"),
          path_(std::move(path))
    {
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/**
 * Ledger of one Monte Carlo grid cell: the contiguous completed-shard
 * prefix [0, frontier) and its ordered merge. `stopped` records that
 * the stop rule was satisfied at the frontier (or every shard ran), so
 * resume schedules nothing past it.
 */
struct CellLedger
{
    std::size_t frontier = 0;
    bool stopped = false;
    MonteCarloResult partial;
};

/**
 * Ledger of one engine invocation (one runSweep/runCell call). The
 * config text is the canonical cell-grid description whose FNV-64 is
 * the invocation's config fingerprint; resume refuses to apply a
 * ledger whose fingerprint differs from the run it is fed into.
 */
struct InvocationLedger
{
    std::string configText;
    bool complete = false;
    std::vector<CellLedger> cells;
};

/**
 * Whole-file ledger: the scope tag (the scenario name at the CLI) plus
 * every engine invocation in sequence order. Only the last invocation
 * may be incomplete.
 */
struct CheckpointLedger
{
    std::string scope;
    std::vector<InvocationLedger> invocations;
};

/** When and where the engine checkpoints. */
struct CheckpointPolicy
{
    /** Ledger file; empty disables checkpointing. */
    std::string path;
    /** Write after this many shard completions (>= 1). */
    std::size_t intervalShards = kDefaultCheckpointInterval;
    /**
     * Also write when this much wall time passed since the last write
     * (checked at shard completion); 0 disables the time trigger.
     */
    double intervalSeconds = 0.0;
    /**
     * Caller tag folded into the file (the scenario name at the CLI);
     * resume refuses a file written under a different scope.
     */
    std::string scope;

    bool enabled() const { return !path.empty(); }
};

/** @name FNV-64 (the per-section checksum and fingerprint hash) @{ */
inline constexpr std::uint64_t kFnvBasis = 14695981039346656037ULL;
std::uint64_t fnv64(const void *data, std::size_t len,
                    std::uint64_t seed = kFnvBasis);
std::uint64_t fnv64(const std::string &text,
                    std::uint64_t seed = kFnvBasis);
/** @} */

/** Raw IEEE-754 bits of @p v as 16 lowercase hex digits (bit-exact). */
std::string hexBits(double v);

/** Serialize @p ledger (checksummed sections) onto @p os. */
void serializeLedger(std::ostream &os, const CheckpointLedger &ledger);

/**
 * Parse a ledger; throws CheckpointError with a distinct, actionable
 * message for truncation, checksum mismatch (flipped/torn bytes),
 * unsupported version, and malformed content. Never writes anything.
 */
CheckpointLedger deserializeLedger(std::istream &is);

/**
 * Atomically persist @p ledger to @p path: serialize to `<path>.tmp`,
 * fsync, rename over @p path. Applies the NISQPP_FAULT_INJECT hook
 * (which may terminate the process by design) and then the test write
 * observer. Throws CheckpointError on I/O failure.
 */
void writeCheckpoint(const std::string &path,
                     const CheckpointLedger &ledger);

/** Load and validate @p path; throws CheckpointError (read-only). */
CheckpointLedger loadCheckpoint(const std::string &path);

/**
 * Checkpoint interval from NISQPP_CKPT_INTERVAL (shard completions
 * between writes), or @p fallback when unset. Malformed values — zero,
 * negative, non-numeric, fractional, above kMaxCheckpointInterval —
 * warn and keep the fallback, exactly like NISQPP_TRIALS/NISQPP_BATCH.
 */
std::size_t checkpointIntervalFromEnv(
    std::size_t fallback = kDefaultCheckpointInterval);

/** @name Cooperative interruption (SIGINT/SIGTERM → drain + save) @{ */

/**
 * Install SIGINT/SIGTERM handlers that set the interrupt flag (the
 * engine drains in-flight shards, writes a final checkpoint and
 * throws InterruptedError). A second signal restores the default
 * disposition, so repeated Ctrl-C still kills a wedged process.
 */
void installSignalHandlers();

/** True once an interrupt was requested (signal or programmatic). */
bool interruptRequested();

/** Set the interrupt flag programmatically (tests, embedders). */
void requestInterrupt();

/** Clear the flag (tests; a real run exits instead). */
void clearInterrupt();

/** @} */

/** @name Test hooks @{ */

/**
 * Observer invoked after every successful checkpoint write with the
 * process-lifetime write count. Called with engine internals locked:
 * keep it trivial (set a flag; never call back into the engine).
 * Pass nullptr to clear.
 */
void setWriteObserver(std::function<void(std::uint64_t)> observer);

/** Reset the process-lifetime write counter the fault injector uses. */
void resetFaultState();

/** @} */

} // namespace nisqpp::ckpt

#endif // NISQPP_CKPT_CHECKPOINT_HH
