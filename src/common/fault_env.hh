/**
 * @file
 * Shared parsing helpers for fault-injection environment variables.
 * Two subsystems read fault directives from the environment — the
 * checkpoint writer (NISQPP_FAULT_INJECT=kill-after=N|tear-after=N)
 * and the streaming fault layer (NISQPP_STREAM_FAULTS=drop=0.01,...)
 * — and both follow the repository's env contract: a malformed value
 * warns once, names the variable and the offending token, and leaves
 * the configuration unchanged (warn-and-ignore), while the equivalent
 * CLI flags fail hard. The directive splitting and the strict numeric
 * parses live here so the two layers cannot drift apart.
 */

#ifndef NISQPP_COMMON_FAULT_ENV_HH
#define NISQPP_COMMON_FAULT_ENV_HH

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace nisqpp {
namespace faultenv {

/** One "key=value" fault directive. */
struct Directive
{
    std::string key;
    std::string value;
};

/**
 * Split a comma-separated "k1=v1,k2=v2" directive list. Returns false
 * (leaving @p out untouched beyond partial work) on any token without
 * exactly one '=' between two non-empty sides; callers then apply the
 * warn-and-ignore contract to the whole variable.
 */
inline bool
splitDirectives(const std::string &text, std::vector<Directive> &out)
{
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string token = text.substr(start, comma - start);
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == token.size() ||
            token.find('=', eq + 1) != std::string::npos)
            return false;
        out.push_back({token.substr(0, eq), token.substr(eq + 1)});
        start = comma + 1;
    }
    return true;
}

/** Strict positive-integer parse: the whole token must be digits. */
inline bool
parseCount(const std::string &text, std::uint64_t &out)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        return false;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (!end || *end != '\0' || v < 1)
        return false;
    out = v;
    return true;
}

/** Strict fraction parse: a finite double in [0, 1], no trailing junk. */
inline bool
parseRate(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (!end || end == text.c_str() || *end != '\0')
        return false;
    if (!(v >= 0.0) || !(v <= 1.0)) // NaN fails both comparisons
        return false;
    out = v;
    return true;
}

/** Checkpoint-write fault modes (see src/ckpt/checkpoint.hh). */
enum class WriteFaultMode
{
    None, ///< no fault injection
    Kill, ///< finish the Nth write, then exit
    Tear  ///< die mid-payload of the Nth write (no rename)
};

/** Parsed NISQPP_FAULT_INJECT plan. */
struct WriteFaultPlan
{
    WriteFaultMode mode = WriteFaultMode::None;
    std::uint64_t afterWrites = 0;
};

/**
 * Parse @p var (default NISQPP_FAULT_INJECT) as
 * "kill-after=N | tear-after=N". Warn-and-ignore: any malformed value
 * warns and returns a disabled plan.
 */
inline WriteFaultPlan
writeFaultPlanFromEnv(const char *var = "NISQPP_FAULT_INJECT")
{
    const char *env = std::getenv(var);
    if (!env || !*env)
        return {};
    const std::string s(env);
    WriteFaultPlan plan;
    std::string count;
    if (s.rfind("kill-after=", 0) == 0) {
        plan.mode = WriteFaultMode::Kill;
        count = s.substr(std::strlen("kill-after="));
    } else if (s.rfind("tear-after=", 0) == 0) {
        plan.mode = WriteFaultMode::Tear;
        count = s.substr(std::strlen("tear-after="));
    } else {
        warn(std::string(var) + "='" + s +
             "' not understood (want kill-after=N or tear-after=N); "
             "fault injection disabled");
        return {};
    }
    if (!parseCount(count, plan.afterWrites)) {
        warn(std::string(var) + "='" + s +
             "' needs a positive integer write count; "
             "fault injection disabled");
        return {};
    }
    return plan;
}

} // namespace faultenv
} // namespace nisqpp

#endif // NISQPP_COMMON_FAULT_ENV_HH
