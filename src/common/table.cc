#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace nisqpp {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    require(cells.size() == header_.size(),
            "TablePrinter: row arity mismatch");
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    return buf;
}

std::string
TablePrinter::sci(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
    return buf;
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

void
TablePrinter::printJson(std::ostream &os) const
{
    auto quote = [&](const std::string &s) {
        os << '"';
        for (char ch : s) {
            if (ch == '"' || ch == '\\')
                os << '\\';
            os << ch;
        }
        os << '"';
    };
    auto emit = [&](const std::vector<std::string> &row) {
        os << '[';
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            quote(row[c]);
        }
        os << ']';
    };
    os << "{\"header\":";
    emit(header_);
    os << ",\"rows\":[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (r)
            os << ',';
        emit(rows_[r]);
    }
    os << "]}";
}

} // namespace nisqpp
