#include "common/fit.hh"

#include <cmath>

#include "common/logging.hh"

namespace nisqpp {

LinearFit
fitLinear(const std::vector<double> &xs, const std::vector<double> &ys)
{
    require(xs.size() == ys.size(), "fitLinear: length mismatch");
    require(xs.size() >= 2, "fitLinear: need at least two points");

    const double n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
        syy += ys[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    require(denom != 0.0, "fitLinear: degenerate x values");
    LinearFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    const double ss_tot = syy - sy * sy / n;
    double ss_res = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double r = ys[i] - (fit.intercept + fit.slope * xs[i]);
        ss_res += r * r;
    }
    fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

ScalingFit
fitScalingModel(const std::vector<double> &ps,
                const std::vector<double> &pls, double pth, int d)
{
    require(ps.size() == pls.size(), "fitScalingModel: length mismatch");
    std::vector<double> xs, ys;
    for (std::size_t i = 0; i < ps.size(); ++i) {
        if (pls[i] <= 0.0 || ps[i] <= 0.0)
            continue;
        xs.push_back(std::log(ps[i] / pth));
        ys.push_back(std::log(pls[i]));
    }
    require(xs.size() >= 2, "fitScalingModel: not enough nonzero samples");
    const LinearFit lin = fitLinear(xs, ys);
    ScalingFit fit;
    fit.c1 = std::exp(lin.intercept);
    fit.c2 = lin.slope / static_cast<double>(d);
    fit.r2 = lin.r2;
    return fit;
}

} // namespace nisqpp
