/**
 * @file
 * Streaming statistics and histogram helpers used across the Monte Carlo
 * harness (Table IV latency statistics, Fig. 10(c) cycle distributions).
 */

#ifndef NISQPP_COMMON_STATS_HH
#define NISQPP_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace nisqpp {

/**
 * Welford-style running mean/variance with min/max tracking. Numerically
 * stable for the long accumulations produced by lifetime simulation.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const RunningStats &other);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance (paper reports population-style spreads). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bin integer histogram; bin i counts observations equal to i, with
 * a final overflow bin. Used for cycles-to-solution densities.
 */
class Histogram
{
  public:
    /** @param max_value Largest value tracked exactly; larger overflow. */
    explicit Histogram(std::size_t max_value);

    void add(std::size_t value);

    /**
     * Merge another histogram into this one (parallel reduction).
     * Binnings must match; as a convenience an empty accumulator
     * adopts the binning of the incoming histogram so
     * default-constructed results can absorb sized shard results.
     */
    void merge(const Histogram &other);

    std::size_t total() const { return total_; }
    std::size_t bin(std::size_t i) const { return bins_.at(i); }
    std::size_t numBins() const { return bins_.size(); }
    std::size_t overflow() const { return overflow_; }

    /** Probability mass of bin i (0 when empty). */
    double density(std::size_t i) const;

    /** Smallest value with nonzero count, or numBins() when empty. */
    std::size_t firstNonzero() const;

    /** Largest tracked value with nonzero count, or 0 when empty. */
    std::size_t lastNonzero() const;

  private:
    std::vector<std::size_t> bins_;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

/**
 * Wilson score interval for a binomial proportion; used to report
 * logical-error-rate confidence bounds in experiment output.
 */
struct WilsonInterval
{
    double lo;
    double hi;
};

/** 95% Wilson interval for k successes out of n trials. */
WilsonInterval wilson95(std::size_t k, std::size_t n);

} // namespace nisqpp

#endif // NISQPP_COMMON_STATS_HH
