/**
 * @file
 * Streaming statistics and histogram helpers used across the Monte Carlo
 * harness (Table IV latency statistics, Fig. 10(c) cycle distributions).
 */

#ifndef NISQPP_COMMON_STATS_HH
#define NISQPP_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace nisqpp {

/**
 * The raw internal state of a RunningStats accumulator, exposed for
 * bit-exact serialization (checkpoint/resume). A restored accumulator
 * must continue the exact Welford sequence of the original, so the
 * doubles here are round-tripped as IEEE-754 bit patterns, never as
 * decimal text.
 */
struct RunningStatsRaw
{
    std::size_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/**
 * Welford-style running mean/variance with min/max tracking. Numerically
 * stable for the long accumulations produced by lifetime simulation.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const RunningStats &other);

    /** Snapshot the internal state for bit-exact serialization. */
    RunningStatsRaw raw() const { return {n_, mean_, m2_, min_, max_}; }

    /** Rebuild an accumulator from a raw() snapshot. */
    static RunningStats fromRaw(const RunningStatsRaw &raw);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance (paper reports population-style spreads). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bin integer histogram; bin i counts observations equal to i, with
 * a final overflow bin. Used for cycles-to-solution densities.
 */
class Histogram
{
  public:
    /** @param max_value Largest value tracked exactly; larger overflow. */
    explicit Histogram(std::size_t max_value);

    void add(std::size_t value);

    /**
     * Merge another histogram into this one (parallel reduction).
     * Binnings must match; as a convenience an empty accumulator
     * adopts the binning of the incoming histogram so
     * default-constructed results can absorb sized shard results.
     */
    void merge(const Histogram &other);

    /**
     * Rebuild a histogram from serialized parts (checkpoint restore):
     * @p bins must be non-empty (a histogram always has at least the
     * zero bin); the total is recomputed as sum(bins) + overflow.
     */
    static Histogram fromParts(std::vector<std::size_t> bins,
                               std::size_t overflow);

    std::size_t total() const { return total_; }
    std::size_t bin(std::size_t i) const { return bins_.at(i); }
    std::size_t numBins() const { return bins_.size(); }
    std::size_t overflow() const { return overflow_; }

    /** Probability mass of bin i (0 when empty). */
    double density(std::size_t i) const;

    /** Smallest value with nonzero count, or numBins() when empty. */
    std::size_t firstNonzero() const;

    /** Largest tracked value with nonzero count, or 0 when empty. */
    std::size_t lastNonzero() const;

  private:
    std::vector<std::size_t> bins_;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

/**
 * Wilson score interval for a binomial proportion; used to report
 * logical-error-rate confidence bounds in experiment output.
 */
struct WilsonInterval
{
    double lo;
    double hi;
};

/** 95% Wilson interval for k successes out of n trials. */
WilsonInterval wilson95(std::size_t k, std::size_t n);

} // namespace nisqpp

#endif // NISQPP_COMMON_STATS_HH
