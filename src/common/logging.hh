/**
 * @file
 * Minimal logging and error-exit helpers, following the gem5 convention:
 * fatal() is for user error (bad configuration), panic() is for internal
 * invariant violations (a bug in this library).
 */

#ifndef NISQPP_COMMON_LOGGING_HH
#define NISQPP_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace nisqpp {

/** Print "fatal: <msg>" to stderr and exit(1). User-caused conditions. */
[[noreturn]] void fatal(const std::string &msg);

/** Print "panic: <msg>" to stderr and abort(). Internal bugs only. */
[[noreturn]] void panic(const std::string &msg);

/** Print "warn: <msg>" to stderr and continue. */
void warn(const std::string &msg);

/** Print "info: <msg>" to stderr and continue. */
void inform(const std::string &msg);

/**
 * Check an internal invariant; panics with location info when violated.
 *
 * @param cond The invariant that must hold.
 * @param msg  Description of the violated invariant.
 */
inline void
require(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace nisqpp

#endif // NISQPP_COMMON_LOGGING_HH
