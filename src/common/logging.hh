/**
 * @file
 * Minimal logging and error-exit helpers, following the gem5 convention:
 * fatal() is for user error (bad configuration), panic() is for internal
 * invariant violations (a bug in this library).
 */

#ifndef NISQPP_COMMON_LOGGING_HH
#define NISQPP_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace nisqpp {

/** Print "fatal: <msg>" to stderr and exit(1). User-caused conditions. */
[[noreturn]] void fatal(const std::string &msg);

/** Print "panic: <msg>" to stderr and abort(). Internal bugs only. */
[[noreturn]] void panic(const std::string &msg);

/** Print "warn: <msg>" to stderr and continue. */
void warn(const std::string &msg);

/** Print "info: <msg>" to stderr and continue. */
void inform(const std::string &msg);

/**
 * Check an internal invariant; panics with location info when violated.
 *
 * @param cond The invariant that must hold.
 * @param msg  Description of the violated invariant.
 */
inline void
require(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace nisqpp

/**
 * Debug-only invariant check for hot-path accessors: compiles to
 * nothing in release builds (NDEBUG), panics with the message in debug
 * builds. Use require() instead on user-facing/CLI paths, where the
 * check must survive into release binaries.
 */
#ifdef NDEBUG
// Reference the operands without evaluating them so parameters used
// only in checks do not trip -Wunused-parameter in release builds.
#define NISQPP_DCHECK(cond, msg)                                      \
    (true ? (void)0 : ((void)(cond), (void)(msg)))
#else
#define NISQPP_DCHECK(cond, msg) ::nisqpp::require((cond), (msg))
#endif

#endif // NISQPP_COMMON_LOGGING_HH
