/**
 * @file
 * Runtime SIMD width dispatch for the lane-packed batch decoders. The
 * mesh and union-find batch engines are templated on a lane word type;
 * this header provides the three word candidates — a plain 64-bit word
 * and GNU-vector 256/512-bit words — plus a process-wide active width,
 * chosen once at startup from CPUID and overridable by the validated
 * `NISQPP_SIMD` env knob or the hard-failing `--simd` CLI flag.
 *
 * The vector types deliberately compile WITHOUT -mavx2/-mavx512f:
 * GNU vector extensions lower to whatever the baseline ISA offers
 * (SSE2 pairs, or plain scalar words), so selecting a wider word on
 * older hardware is safe — it just packs more lanes per loop without
 * the single-instruction step. CPUID therefore only picks the default
 * that is *fastest*, not the widest that is *legal*, and tests can pin
 * any width on any machine.
 *
 * Decoders latch the active width at construction (and build only that
 * engine), so changing the width mid-run never mixes engines. Lane
 * results are indexed by trial, not by lane geometry, and every
 * exported counter is an order-independent per-trial sum — so decodes
 * are bit-identical across widths and the golden net never sees which
 * word stepped them.
 */

#ifndef NISQPP_COMMON_SIMD_HH
#define NISQPP_COMMON_SIMD_HH

#include <cstdint>
#include <string>

namespace nisqpp {
namespace simd {

/** Lane word widths the batch engines can step. */
enum class Width
{
    Scalar, ///< one 64-bit word per step
    V256,   ///< 4 x 64-bit GNU vector (AVX2-sized)
    V512    ///< 8 x 64-bit GNU vector (AVX-512-sized)
};

/** 64-bit lane word (the scalar dispatch target). */
using W64 = std::uint64_t;

#if defined(__GNUC__) || defined(__clang__)
/** 256-bit lane word: four 64-bit elements stepped elementwise. */
using W256 __attribute__((vector_size(32))) = std::uint64_t;
/** 512-bit lane word: eight 64-bit elements stepped elementwise. */
using W512 __attribute__((vector_size(64))) = std::uint64_t;
#else
using W256 = std::uint64_t;
using W512 = std::uint64_t;
#endif

/** CPUID probe: the widest width with native SIMD backing. */
Width detectWidth();

/**
 * The process-wide dispatch width. Defaults to detectWidth() on first
 * use; batch decoders latch it at construction.
 */
Width activeWidth();

/** Override the dispatch width (CLI/env plumbing and tests). */
void setActiveWidth(Width w);

/** Canonical token of @p w: "scalar", "v256" or "v512". */
const char *widthName(Width w);

/**
 * Parse a width token ("scalar" | "v256" | "v512") into @p out.
 * Returns false (out untouched) on anything else; the `--simd` flag
 * turns that into a hard fatal(), the env twin into warn-and-ignore.
 */
bool parseWidth(const std::string &text, Width &out);

/**
 * Apply the NISQPP_SIMD env twin of --simd: returns the parsed width,
 * or @p fallback when the variable is unset. Malformed values warn
 * once and keep @p fallback, matching the NISQPP_BATCH contract. Read
 * only on the CLI path so in-process runs never see the environment.
 */
Width widthFromEnv(Width fallback, const char *var = "NISQPP_SIMD");

/**
 * Element accessors bridging the lane word types: a plain uint64_t and
 * the multi-element vectors. Batch stepping code is written against
 * these, so one templated implementation serves every width.
 * @{
 */
template <typename W>
constexpr int
elementsOf()
{
    return static_cast<int>(sizeof(W) / sizeof(std::uint64_t));
}

template <typename W>
inline std::uint64_t
elemOf(const W &w, int el)
{
    if constexpr (sizeof(W) == sizeof(std::uint64_t)) {
        (void)el;
        return w;
    } else {
        return w[el];
    }
}

template <typename W>
inline void
orElem(W &w, int el, std::uint64_t v)
{
    if constexpr (sizeof(W) == sizeof(std::uint64_t)) {
        (void)el;
        w |= v;
    } else {
        w[el] |= v;
    }
}

template <typename W>
inline bool
anyW(const W &w)
{
    if constexpr (sizeof(W) == sizeof(std::uint64_t))
        return w != 0;
    else {
        std::uint64_t acc = 0;
        for (int el = 0; el < elementsOf<W>(); ++el)
            acc |= w[el];
        return acc != 0;
    }
}
/** @} */

} // namespace simd
} // namespace nisqpp

#endif // NISQPP_COMMON_SIMD_HH
