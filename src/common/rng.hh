/**
 * @file
 * Deterministic, fast pseudo-random number generation for Monte Carlo
 * simulation. Implements xoshiro256** seeded via SplitMix64 so every
 * experiment in the repository is exactly reproducible from a 64-bit seed.
 */

#ifndef NISQPP_COMMON_RNG_HH
#define NISQPP_COMMON_RNG_HH

#include <cstdint>

namespace nisqpp {

/**
 * xoshiro256** generator (Blackman & Vigna). Deterministic across
 * platforms, much faster than std::mt19937_64, and of ample quality for
 * error-injection sampling.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; state expanded with SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) without modulo bias (Lemire). */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Integer threshold such that coin(threshold(p)) makes exactly
     * the same decision as `uniform() < p` from the same draw, with
     * no int-to-double conversion on the hot path. Only meaningful
     * for p in (0, 1); callers must special-case p <= 0 / p >= 1
     * themselves, because bernoulli() consumes no draw there.
     */
    static std::uint64_t threshold(double p);

    /** Bernoulli trial against a precomputed threshold (one draw). */
    bool
    coin(std::uint64_t thresh)
    {
        return (next() >> 11) < thresh;
    }

    /**
     * Derive an independent child generator; used to give each Monte
     * Carlo worker / lattice size its own stream from one master seed.
     */
    Rng split();

  private:
    std::uint64_t s_[4];
};

} // namespace nisqpp

#endif // NISQPP_COMMON_RNG_HH
