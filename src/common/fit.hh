/**
 * @file
 * Least-squares fitting utilities. The paper fits the exponential scaling
 * model PL ~= c1 * (p / pth)^(c2 * d) (Table V); in log space that is an
 * ordinary linear regression, implemented here.
 */

#ifndef NISQPP_COMMON_FIT_HH
#define NISQPP_COMMON_FIT_HH

#include <vector>

namespace nisqpp {

/** Result of a simple linear regression y = a + b x. */
struct LinearFit
{
    double intercept; ///< a
    double slope;     ///< b
    double r2;        ///< coefficient of determination
};

/**
 * Ordinary least squares on (x, y) pairs.
 *
 * @pre xs.size() == ys.size() and at least two distinct x values.
 */
LinearFit fitLinear(const std::vector<double> &xs,
                    const std::vector<double> &ys);

/** Fitted parameters of PL = c1 * (p/pth)^(c2 * d) for one code distance. */
struct ScalingFit
{
    double c1;
    double c2;
    double r2;
};

/**
 * Fit the paper's scaling model for a single code distance d from
 * (physical error rate, logical error rate) samples taken below threshold.
 * Zero-PL samples are skipped (they carry no log-space information).
 *
 * @param ps  Physical error rates.
 * @param pls Measured logical error rates (same length as @p ps).
 * @param pth Accuracy threshold used to normalize p.
 * @param d   Code distance (enters the exponent as c2 * d).
 */
ScalingFit fitScalingModel(const std::vector<double> &ps,
                           const std::vector<double> &pls,
                           double pth, int d);

} // namespace nisqpp

#endif // NISQPP_COMMON_FIT_HH
