/**
 * @file
 * Aligned plain-text table printer used by every bench binary so the
 * regenerated tables/figures read like the paper's.
 */

#ifndef NISQPP_COMMON_TABLE_HH
#define NISQPP_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace nisqpp {

/**
 * Collects rows of string cells and prints them column-aligned.
 * Numeric convenience overloads format with sensible precision.
 */
class TablePrinter
{
  public:
    /** Set the header row. */
    explicit TablePrinter(std::vector<std::string> header);

    /** Append one row (must match header arity). */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision significant digits. */
    static std::string num(double v, int precision = 4);

    /** Format a double in scientific notation. */
    static std::string sci(double v, int precision = 3);

    /** Render the aligned table to @p os. */
    void print(std::ostream &os) const;

    /** Render as comma-separated values (for plotting scripts). */
    void printCsv(std::ostream &os) const;

    /**
     * Render as a JSON object {"header": [...], "rows": [[...]]};
     * cells stay strings so formatting matches the other renderers.
     */
    void printJson(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace nisqpp

#endif // NISQPP_COMMON_TABLE_HH
