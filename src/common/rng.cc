#include "common/rng.hh"

#include <cmath>

namespace nisqpp {

namespace {

/** SplitMix64 step used for seed expansion. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed; avoid the all-zero state (splitmix can't produce
    // four zero outputs from any seed, but stay defensive).
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::threshold(double p)
{
    if (p <= 0.0)
        return 0;
    if (p >= 1.0)
        return std::uint64_t{1} << 53;
    // uniform() < p  <=>  (next() >> 11) < ceil(p * 2^53): the draw
    // is k * 2^-53 for an integer k, and scaling by a power of two is
    // exact, so the ceil is the exact integer decision boundary.
    return static_cast<std::uint64_t>(std::ceil(p * 0x1p53));
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace nisqpp
