/**
 * @file
 * Word-packed bitset shared by every per-trial hot path: error states,
 * Pauli frames and syndromes all store one bit per qubit/ancilla in
 * uint64_t words, so composition is a word-wise XOR, weights are
 * popcounts and stabilizer parities are AND + popcount against
 * precomputed masks — the same row-per-word trick the mesh simulator
 * uses (`src/core/mesh_decoder.hh`), lifted into a reusable type.
 *
 * Invariant: bits at positions >= size() are always zero, so whole-word
 * reductions (popcount, parity, equality) never see garbage and
 * operator== is plain word comparison.
 */

#ifndef NISQPP_COMMON_PACKED_BITS_HH
#define NISQPP_COMMON_PACKED_BITS_HH

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace nisqpp {

/** Fixed-size bitset packed 64 bits per word. */
class PackedBits
{
  public:
    using Word = std::uint64_t;
    static constexpr std::size_t kWordBits = 64;

    PackedBits() = default;

    /** All-zero bitset of @p size bits. */
    explicit PackedBits(std::size_t size) { resize(size); }

    /** Resize to @p size bits; all bits reset to zero. */
    void
    resize(std::size_t size)
    {
        size_ = size;
        words_.assign((size + kWordBits - 1) / kWordBits, 0);
    }

    std::size_t size() const { return size_; }
    std::size_t numWords() const { return words_.size(); }

    /** Zero every bit, keeping the size. */
    void
    clear()
    {
        std::fill(words_.begin(), words_.end(), Word{0});
    }

    /** Unchecked bit read (debug-asserted). */
    bool
    get(std::size_t i) const
    {
        NISQPP_DCHECK(i < size_, "PackedBits::get: index out of range");
        return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
    }

    /** Bounds-checked bit read for user-facing paths. */
    bool
    test(std::size_t i) const
    {
        require(i < size_, "PackedBits::test: index out of range");
        return get(i);
    }

    /** Unchecked bit write (debug-asserted). */
    void
    set(std::size_t i, bool v)
    {
        NISQPP_DCHECK(i < size_, "PackedBits::set: index out of range");
        const Word mask = Word{1} << (i % kWordBits);
        if (v)
            words_[i / kWordBits] |= mask;
        else
            words_[i / kWordBits] &= ~mask;
    }

    /** Unchecked bit toggle (debug-asserted). */
    void
    flip(std::size_t i)
    {
        NISQPP_DCHECK(i < size_, "PackedBits::flip: index out of range");
        words_[i / kWordBits] ^= Word{1} << (i % kWordBits);
    }

    /** XOR-compose @p other into this bitset (sizes must match). */
    void
    xorWith(const PackedBits &other)
    {
        NISQPP_DCHECK(other.size_ == size_,
                      "PackedBits::xorWith: size mismatch");
        for (std::size_t w = 0; w < words_.size(); ++w)
            words_[w] ^= other.words_[w];
    }

    /** Clear every bit set in @p mask (sizes must match). */
    void
    andNotWith(const PackedBits &mask)
    {
        NISQPP_DCHECK(mask.size_ == size_,
                      "PackedBits::andNotWith: size mismatch");
        for (std::size_t w = 0; w < words_.size(); ++w)
            words_[w] &= ~mask.words_[w];
    }

    /** Number of set bits. */
    int
    popcount() const
    {
        int count = 0;
        for (Word w : words_)
            count += std::popcount(w);
        return count;
    }

    /** Number of set bits in the intersection with @p mask. */
    int
    popcountAnd(const PackedBits &mask) const
    {
        NISQPP_DCHECK(mask.size_ == size_,
                      "PackedBits::popcountAnd: size mismatch");
        int count = 0;
        for (std::size_t w = 0; w < words_.size(); ++w)
            count += std::popcount(words_[w] & mask.words_[w]);
        return count;
    }

    /** Parity of the intersection with @p mask: the stabilizer check. */
    bool
    parityAnd(const PackedBits &mask) const
    {
        NISQPP_DCHECK(mask.size_ == size_,
                      "PackedBits::parityAnd: size mismatch");
        Word acc = 0;
        for (std::size_t w = 0; w < words_.size(); ++w)
            acc ^= words_[w] & mask.words_[w];
        return std::popcount(acc) & 1;
    }

    /** Number of set bits in the union of @p a and @p b. */
    static int
    popcountOr(const PackedBits &a, const PackedBits &b)
    {
        NISQPP_DCHECK(a.size_ == b.size_,
                      "PackedBits::popcountOr: size mismatch");
        int count = 0;
        for (std::size_t w = 0; w < a.words_.size(); ++w)
            count += std::popcount(a.words_[w] | b.words_[w]);
        return count;
    }

    bool
    any() const
    {
        for (Word w : words_)
            if (w)
                return true;
        return false;
    }

    /** Invoke @p f(int index) on every set bit, ascending. */
    template <typename F>
    void
    forEachSet(F &&f) const
    {
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            Word w = words_[wi];
            while (w) {
                const int bit = std::countr_zero(w);
                w &= w - 1;
                f(static_cast<int>(wi * kWordBits) + bit);
            }
        }
    }

    /** Read-only word view for tight reduction loops. */
    const Word *words() const { return words_.data(); }

    bool operator==(const PackedBits &other) const = default;

  private:
    std::size_t size_ = 0;
    std::vector<Word> words_;
};

} // namespace nisqpp

#endif // NISQPP_COMMON_PACKED_BITS_HH
