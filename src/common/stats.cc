#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace nisqpp {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

RunningStats
RunningStats::fromRaw(const RunningStatsRaw &raw)
{
    RunningStats s;
    s.n_ = raw.n;
    s.mean_ = raw.mean;
    s.m2_ = raw.m2;
    s.min_ = raw.min;
    s.max_ = raw.max;
    return s;
}

double
RunningStats::variance() const
{
    if (n_ == 0)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(std::size_t max_value)
    : bins_(max_value + 1, 0)
{
}

void
Histogram::add(std::size_t value)
{
    if (value < bins_.size())
        ++bins_[value];
    else
        ++overflow_;
    ++total_;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.total_ == 0 && other.overflow_ == 0)
        return;
    if (total_ == 0 && overflow_ == 0 &&
        bins_.size() != other.bins_.size()) {
        *this = other;
        return;
    }
    require(bins_.size() == other.bins_.size(),
            "Histogram::merge: incompatible binning");
    for (std::size_t i = 0; i < bins_.size(); ++i)
        bins_[i] += other.bins_[i];
    overflow_ += other.overflow_;
    total_ += other.total_;
}

Histogram
Histogram::fromParts(std::vector<std::size_t> bins, std::size_t overflow)
{
    require(!bins.empty(), "Histogram::fromParts: empty bin vector");
    Histogram h(bins.size() - 1);
    h.bins_ = std::move(bins);
    h.overflow_ = overflow;
    h.total_ = overflow;
    for (std::size_t c : h.bins_)
        h.total_ += c;
    return h;
}

double
Histogram::density(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(bins_.at(i)) / static_cast<double>(total_);
}

std::size_t
Histogram::firstNonzero() const
{
    for (std::size_t i = 0; i < bins_.size(); ++i)
        if (bins_[i] > 0)
            return i;
    return bins_.size();
}

std::size_t
Histogram::lastNonzero() const
{
    for (std::size_t i = bins_.size(); i-- > 0;)
        if (bins_[i] > 0)
            return i;
    return 0;
}

WilsonInterval
wilson95(std::size_t k, std::size_t n)
{
    if (n == 0)
        return {0.0, 1.0};
    const double z = 1.959963984540054;
    const double nn = static_cast<double>(n);
    const double p = static_cast<double>(k) / nn;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / nn;
    const double center = p + z2 / (2.0 * nn);
    const double margin =
        z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
    return {std::max(0.0, (center - margin) / denom),
            std::min(1.0, (center + margin) / denom)};
}

} // namespace nisqpp
