#include "common/simd.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace nisqpp {
namespace simd {

namespace {

Width &
activeSlot()
{
    static Width w = detectWidth();
    return w;
}

} // namespace

Width
detectWidth()
{
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
    if (__builtin_cpu_supports("avx512f"))
        return Width::V512;
    if (__builtin_cpu_supports("avx2"))
        return Width::V256;
    return Width::Scalar;
#else
    // Non-x86 (or non-GNU) builds: the vector types still compile but
    // there is no cheap probe for native backing; default to the
    // 256-bit word, which lowers to NEON / scalar pairs acceptably.
    return Width::V256;
#endif
}

Width
activeWidth()
{
    return activeSlot();
}

void
setActiveWidth(Width w)
{
    activeSlot() = w;
}

const char *
widthName(Width w)
{
    switch (w) {
      case Width::Scalar:
        return "scalar";
      case Width::V256:
        return "v256";
      case Width::V512:
        return "v512";
    }
    return "scalar";
}

bool
parseWidth(const std::string &text, Width &out)
{
    if (text == "scalar")
        out = Width::Scalar;
    else if (text == "v256")
        out = Width::V256;
    else if (text == "v512")
        out = Width::V512;
    else
        return false;
    return true;
}

Width
widthFromEnv(Width fallback, const char *var)
{
    const char *env = std::getenv(var);
    if (!env || !*env)
        return fallback;
    Width w;
    if (!parseWidth(env, w)) {
        warn(std::string(var) + "='" + env +
             "' is not one of scalar|v256|v512; keeping simd width = " +
             widthName(fallback));
        return fallback;
    }
    return w;
}

} // namespace simd
} // namespace nisqpp
