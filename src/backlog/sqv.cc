#include "backlog/sqv.hh"

#include <cmath>

#include "common/logging.hh"

namespace nisqpp {

double
ScalingModel::logicalErrorRate(int d, double p) const
{
    require(d >= 1 && p > 0, "logicalErrorRate: bad arguments");
    return c1 * std::pow(p / pth, c2 * d);
}

SqvPoint
sqvPoint(const SqvMachine &machine, const ScalingModel &model, int d,
         double pl_override)
{
    SqvPoint point;
    point.distance = d;
    point.logicalQubits =
        machine.physicalQubits / SqvMachine::tileQubits(d);
    point.logicalErrorRate =
        pl_override > 0
            ? pl_override
            : model.logicalErrorRate(d, machine.physicalErrorRate);
    point.sqv = 1.0 / point.logicalErrorRate;
    point.gatesPerQubit =
        point.logicalQubits > 0 ? point.sqv / point.logicalQubits : 0.0;
    point.boost = point.sqv / machine.nisqTargetSqv;
    return point;
}

} // namespace nisqpp
