/**
 * @file
 * Simple Quantum Volume model (paper Fig. 1 and Section VIII, "Effect on
 * SQV"). SQV = (number of computational qubits) x (gates per qubit
 * executable before an error). With AQEC the machine trades physical
 * qubits for fidelity: the total gate budget becomes 1/PL(d) where
 * PL(d) = c1 (p/pth)^(c2 d) is the per-gate logical error rate.
 */

#ifndef NISQPP_BACKLOG_SQV_HH
#define NISQPP_BACKLOG_SQV_HH

namespace nisqpp {

/** Parameters of the logical-error scaling model. */
struct ScalingModel
{
    double c1 = 0.03;  ///< prefactor (paper references [20])
    double pth = 0.05; ///< accuracy threshold of the decoder
    double c2 = 1.0;   ///< effective-distance coefficient (Table V)

    /** Per-gate logical error rate at distance @p d, physical rate @p p. */
    double logicalErrorRate(int d, double p) const;
};

/** One Fig. 1 design point. */
struct SqvPoint
{
    int distance = 0;
    int logicalQubits = 0;     ///< physical budget / tile footprint
    double logicalErrorRate = 0.0;
    double gatesPerQubit = 0.0;
    double sqv = 0.0;          ///< 1 / PL: total gate budget
    double boost = 0.0;        ///< vs. the NISQ target SQV
};

/** Machine assumptions behind Fig. 1. */
struct SqvMachine
{
    int physicalQubits = 1024;
    double physicalErrorRate = 1e-5;
    double nisqTargetSqv = 1e5;

    /** Data-qubit footprint of one distance-d logical tile. */
    static int tileQubits(int d) { return d * d + (d - 1) * (d - 1); }
};

/**
 * Evaluate the AQEC design point at distance @p d under @p model.
 * Uses @p pl_override (> 0) instead of the model when given, which lets
 * the bench reproduce the paper's quoted PL values exactly.
 */
SqvPoint sqvPoint(const SqvMachine &machine, const ScalingModel &model,
                  int d, double pl_override = -1.0);

} // namespace nisqpp

#endif // NISQPP_BACKLOG_SQV_HH
