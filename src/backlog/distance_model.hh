/**
 * @file
 * Required-code-distance comparison across decoders (paper Fig. 11).
 * For an algorithm with k T gates, a decoder with threshold pth,
 * effective-distance coefficient c2 and per-round decode time t_dec(d)
 * must pick the smallest d such that the total logical failure over the
 * backlog-inflated execution stays below a budget. When
 * f = t_dec / t_syn > 1, the number of effective gate-equivalents grows
 * as sum_i f^i — exponentially in k — which is what forces offline
 * decoders to ~10x larger code distances.
 */

#ifndef NISQPP_BACKLOG_DISTANCE_MODEL_HH
#define NISQPP_BACKLOG_DISTANCE_MODEL_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "backlog/sqv.hh"

namespace nisqpp {

/** Accuracy + latency profile of one decoder family. */
struct DecoderProfile
{
    std::string name;
    ScalingModel scaling;
    /** Decode time for one round at distance d, in ns. */
    std::function<double(int)> decodeNs;

    /** The five Fig. 11 profiles (parameters listed in EXPERIMENTS.md). */
    static DecoderProfile sfqDecoder();
    static DecoderProfile mwpm();
    static DecoderProfile neuralNet();
    static DecoderProfile unionFind();
    static DecoderProfile mwpmNoBacklog();
};

/** Inputs of the Fig. 11 sweep. */
struct DistanceQuery
{
    double physicalErrorRate;
    int tGates = 100;
    double syndromeCycleNs = 400.0;
    double failureBudget = 0.5; ///< acceptable whole-algorithm failure
    int maxDistance = 2001;
};

/**
 * Smallest odd distance meeting the failure budget under the backlog
 * model, or nullopt when no distance up to maxDistance suffices
 * (e.g. p >= pth).
 */
std::optional<int> requiredDistance(const DecoderProfile &profile,
                                    const DistanceQuery &query);

/**
 * Natural log of the number of effective gate-equivalents after backlog
 * inflation: k for f <= 1, ln(sum_{i=1..k} f^i) otherwise. Exposed for
 * tests.
 */
double logEffectiveGates(double f, int k);

} // namespace nisqpp

#endif // NISQPP_BACKLOG_DISTANCE_MODEL_HH
