/**
 * @file
 * Discrete-event model of the decoding-backlog problem (paper Section
 * III and Fig. 5, after Terhal [57]). Syndrome data is generated at rate
 * rgen and decoded at rate rproc; T gates cannot execute until every
 * syndrome generated before them is decoded. With f = rgen/rproc > 1 the
 * stall before the k-th T gate grows as f^k — the exponential overhead
 * the SFQ decoder is built to avoid.
 */

#ifndef NISQPP_BACKLOG_BACKLOG_SIM_HH
#define NISQPP_BACKLOG_BACKLOG_SIM_HH

#include <vector>

#include "circuits/circuit.hh"

namespace nisqpp {

/** Timing parameters of the execution-time simulation. */
struct BacklogParams
{
    double syndromeCycleNs = 400.0; ///< per [27]; rgen = 1/this
    double decodeCycleNs = 400.0;   ///< time to decode one round
    int roundsPerGate = 1;          ///< syndrome rounds per logical gate

    double f() const { return decodeCycleNs / syndromeCycleNs; }
};

/** Wall-clock trace entry at one T gate (the Fig. 5 staircase). */
struct TGateEvent
{
    int index;           ///< which T gate (0-based)
    double computeNs;    ///< ideal time at this gate (no backlog)
    double wallNs;       ///< actual wall-clock when it executed
    double stallNs;      ///< idle time spent draining the backlog
    double backlogRounds;///< rounds outstanding when the gate was reached
};

/** Result of executing one circuit against a decoder rate. */
struct BacklogResult
{
    double computeNs = 0.0; ///< ideal execution time
    double wallNs = 0.0;    ///< with decode synchronization
    double idleNs = 0.0;    ///< total stall
    std::vector<TGateEvent> tGates;

    double overhead() const
    {
        return computeNs > 0 ? wallNs / computeNs : 1.0;
    }
};

/**
 * Execute @p circuit (Toffolis are expanded implicitly; every T/Tdg is
 * a synchronization point) under @p params.
 */
BacklogResult simulateBacklog(const QCircuit &circuit,
                              const BacklogParams &params);

/**
 * Closed-form check of the backlog recurrence: the stall before the
 * k-th T gate scales as f^k x (initial backlog). Exposed for tests and
 * the Fig. 5 bench.
 */
double analyticBacklogRounds(double f, int k, double initial_rounds);

/**
 * Closed-form steady-state backlog growth per generated round for a
 * saturated decoder with processing ratio f = t_dec / t_syn: the
 * producer adds one round per cycle while the consumer retires 1/f, so
 * the backlog grows by 1 - 1/f rounds per round for f > 1 and drains
 * to zero otherwise. The streaming pipeline's measured growth rate is
 * pinned against this prediction in tests/stream.
 */
double backlogGrowthPerRound(double f);

/**
 * Running time of @p circuit as a function of the syndrome data
 * processing ratio f = rgen/rproc (the Fig. 6 sweep).
 */
std::vector<std::pair<double, double>>
runningTimeVsRatio(const QCircuit &circuit, double syndrome_cycle_ns,
                   const std::vector<double> &ratios);

} // namespace nisqpp

#endif // NISQPP_BACKLOG_BACKLOG_SIM_HH
