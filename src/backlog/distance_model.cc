#include "backlog/distance_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace nisqpp {

DecoderProfile
DecoderProfile::sfqDecoder()
{
    DecoderProfile p;
    p.name = "SFQ decoder";
    // Accuracy threshold ~5% (Fig. 10); c2 is the mid-range Table V
    // coefficient. Decode time follows the measured max-cycle scaling
    // ~15.75 d cycles at 162.72 ps (Table IV).
    p.scaling = {0.03, 0.05, 0.42};
    p.decodeNs = [](int d) { return 15.75 * d * 0.16272; };
    return p;
}

DecoderProfile
DecoderProfile::mwpm()
{
    DecoderProfile p;
    p.name = "MWPM";
    // Threshold 10.3% [20]; ideal scaling PL = 0.03 (p/pth)^d. Software
    // matching runs offline at ~1 us per round.
    p.scaling = {0.03, 0.103, 1.0};
    p.decodeNs = [](int) { return 1000.0; };
    return p;
}

DecoderProfile
DecoderProfile::neuralNet()
{
    DecoderProfile p;
    p.name = "NNet";
    // Inference in ~800 ns [6]; accuracy slightly below MWPM.
    p.scaling = {0.03, 0.095, 0.8};
    p.decodeNs = [](int) { return 800.0; };
    return p;
}

DecoderProfile
DecoderProfile::unionFind()
{
    DecoderProfile p;
    p.name = "Union Find";
    // Threshold 0.4% below MWPM (Section VIII); decoding time > 2x the
    // syndrome generation time.
    p.scaling = {0.03, 0.099, 1.0};
    p.decodeNs = [](int) { return 850.0; };
    return p;
}

DecoderProfile
DecoderProfile::mwpmNoBacklog()
{
    DecoderProfile p;
    p.name = "MWPM w/o backlog";
    p.scaling = {0.03, 0.103, 1.0};
    p.decodeNs = [](int) { return 0.0; };
    return p;
}

double
logEffectiveGates(double f, int k)
{
    require(k >= 1, "logEffectiveGates: need k >= 1");
    if (f <= 1.0)
        return std::log(static_cast<double>(k));
    // sum_{i=1..k} f^i = f (f^k - 1)/(f - 1); in log space for large k:
    // ~ k ln f + ln(f/(f-1)).
    const double lf = std::log(f);
    const double direct = k * lf + std::log(f / (f - 1.0));
    // For f barely above 1 the closed form loses accuracy; fall back to
    // the exact sum when it is small enough to evaluate.
    if (k * lf < 200.0) {
        double sum = 0.0;
        double term = 1.0;
        for (int i = 1; i <= k; ++i) {
            term *= f;
            sum += term;
        }
        return std::log(sum);
    }
    return direct;
}

std::optional<int>
requiredDistance(const DecoderProfile &profile, const DistanceQuery &query)
{
    const double p = query.physicalErrorRate;
    if (p >= profile.scaling.pth)
        return std::nullopt;

    for (int d = 3; d <= query.maxDistance; d += 2) {
        const double f =
            profile.decodeNs(d) / query.syndromeCycleNs;
        const double log_gates = logEffectiveGates(f, query.tGates);
        const double log_pl =
            std::log(profile.scaling.c1) +
            profile.scaling.c2 * d * std::log(p / profile.scaling.pth);
        if (log_gates + log_pl <= std::log(query.failureBudget))
            return d;
    }
    return std::nullopt;
}

} // namespace nisqpp
