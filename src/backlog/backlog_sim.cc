#include "backlog/backlog_sim.hh"

#include <cmath>

#include "circuits/decompose.hh"
#include "common/logging.hh"

namespace nisqpp {

BacklogResult
simulateBacklog(const QCircuit &circuit, const BacklogParams &params)
{
    require(params.syndromeCycleNs > 0 && params.decodeCycleNs > 0,
            "simulateBacklog: cycle times must be positive");
    const QCircuit expanded = decomposeToffoli(circuit);

    const double rgen = 1.0 / params.syndromeCycleNs;  // rounds per ns
    const double rproc = 1.0 / params.decodeCycleNs;
    const double gate_ns =
        params.roundsPerGate * params.syndromeCycleNs;

    BacklogResult result;
    double backlog = 0.0; // undecoded rounds
    int t_index = 0;

    for (const Gate &g : expanded.gates()) {
        // The gate executes: syndromes accumulate while the decoder
        // drains what it can.
        result.computeNs += gate_ns;
        result.wallNs += gate_ns;
        backlog += gate_ns * rgen;
        backlog = std::max(0.0, backlog - gate_ns * rproc);

        if (!isTGate(g.kind))
            continue;

        // T gates synchronize: drain everything generated so far. The
        // machine idles while draining, generating fresh backlog.
        const double stall = backlog / rproc;
        const double fresh = stall * rgen;
        result.wallNs += stall;
        result.idleNs += stall;
        result.tGates.push_back({t_index++, result.computeNs,
                                 result.wallNs, stall, backlog});
        // Saturate instead of overflowing to inf: the exponential blowup
        // for f > 1 exceeds double range for deep circuits.
        backlog = std::min(fresh, 1e250);
        result.wallNs = std::min(result.wallNs, 1e250);
        result.idleNs = std::min(result.idleNs, 1e250);
    }
    return result;
}

double
analyticBacklogRounds(double f, int k, double initial_rounds)
{
    require(k >= 0, "analyticBacklogRounds: negative k");
    return initial_rounds * std::pow(f, k);
}

double
backlogGrowthPerRound(double f)
{
    require(f > 0, "backlogGrowthPerRound: ratio must be positive");
    return f <= 1.0 ? 0.0 : 1.0 - 1.0 / f;
}

std::vector<std::pair<double, double>>
runningTimeVsRatio(const QCircuit &circuit, double syndrome_cycle_ns,
                   const std::vector<double> &ratios)
{
    std::vector<std::pair<double, double>> series;
    series.reserve(ratios.size());
    for (double f : ratios) {
        BacklogParams params;
        params.syndromeCycleNs = syndrome_cycle_ns;
        params.decodeCycleNs = f * syndrome_cycle_ns;
        series.emplace_back(f, simulateBacklog(circuit, params).wallNs);
    }
    return series;
}

} // namespace nisqpp
