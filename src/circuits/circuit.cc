#include "circuits/circuit.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nisqpp {

bool
isTGate(GateKind kind)
{
    return kind == GateKind::T || kind == GateKind::Tdg;
}

int
gateArity(GateKind kind)
{
    switch (kind) {
      case GateKind::Cnot:
        return 2;
      case GateKind::Toffoli:
        return 3;
      default:
        return 1;
    }
}

std::string
gateName(GateKind kind)
{
    switch (kind) {
      case GateKind::X: return "x";
      case GateKind::H: return "h";
      case GateKind::S: return "s";
      case GateKind::Sdg: return "sdg";
      case GateKind::T: return "t";
      case GateKind::Tdg: return "tdg";
      case GateKind::Cnot: return "cx";
      case GateKind::Toffoli: return "ccx";
    }
    return "?";
}

QCircuit::QCircuit(int num_qubits, std::string name)
    : numQubits_(num_qubits), name_(std::move(name))
{
    require(num_qubits > 0, "QCircuit: need at least one qubit");
}

void
QCircuit::add(GateKind kind, int a, int b, int c)
{
    const Gate gate{kind, {a, b, c}};
    const int arity = gate.arity();
    for (int i = 0; i < arity; ++i) {
        const int q = gate.qubits[i];
        require(q >= 0 && q < numQubits_, "QCircuit: operand out of range");
        for (int j = i + 1; j < arity; ++j)
            require(q != gate.qubits[j],
                    "QCircuit: repeated operand in one gate");
    }
    gates_.push_back(gate);
}

std::size_t
QCircuit::countKind(GateKind kind) const
{
    return static_cast<std::size_t>(
        std::count_if(gates_.begin(), gates_.end(),
                      [kind](const Gate &g) { return g.kind == kind; }));
}

std::size_t
QCircuit::tCount() const
{
    return static_cast<std::size_t>(
        std::count_if(gates_.begin(), gates_.end(),
                      [](const Gate &g) { return isTGate(g.kind); }));
}

int
QCircuit::depth() const
{
    std::vector<int> level(numQubits_, 0);
    int depth = 0;
    for (const Gate &g : gates_) {
        int start = 0;
        for (int i = 0; i < g.arity(); ++i)
            start = std::max(start, level[g.qubits[i]]);
        for (int i = 0; i < g.arity(); ++i)
            level[g.qubits[i]] = start + 1;
        depth = std::max(depth, start + 1);
    }
    return depth;
}

void
QCircuit::append(const QCircuit &other)
{
    require(other.numQubits_ <= numQubits_,
            "QCircuit::append: register too small");
    gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
}

} // namespace nisqpp
