/**
 * @file
 * Generators for the five benchmark circuits of paper Table I. The
 * parameter choices below reproduce the paper's qubit and T-gate counts
 * exactly:
 *
 *  - Takahashi adder, n=20: 40 qubits, 38 Toffolis -> 266 T.
 *  - Barenco half-dirty Toffoli, k=20 controls: 39 qubits, 72 Toffolis
 *    -> 504 T.
 *  - CnU half-borrowed, k=19 controls: 37 qubits, 68 Toffolis -> 476 T.
 *  - CnX log-depth, k=19 controls: 39 qubits, 37 Toffolis -> 259 T.
 *  - Cuccaro adder, n=20: 42 qubits, 40 Toffolis -> 280 T.
 *
 * All constructions follow Barenco et al. [2], Cuccaro et al., and
 * Takahashi et al. [53].
 */

#ifndef NISQPP_CIRCUITS_BENCHMARKS_HH
#define NISQPP_CIRCUITS_BENCHMARKS_HH

#include <vector>

#include "circuits/circuit.hh"

namespace nisqpp {

/**
 * Cuccaro ripple-carry adder a + b on two n-bit registers with carry-in
 * and carry-out (2n + 2 qubits). MAJ = 2 CNOT + Toffoli; UMA is the
 * 3-CNOT variant (3 CNOT + 2 X + Toffoli).
 */
QCircuit cuccaroAdder(int n);

/**
 * Takahashi-Tani-Kunihiro adder on 2n qubits (no ancilla), linear
 * depth, 2(n-1) Toffolis.
 */
QCircuit takahashiAdder(int n);

/**
 * Barenco et al. multi-control Toffoli on k controls using k-2 dirty
 * ancillas (Lemma 7.2 V-chain), 4(k-2) Toffolis, 2k-1 qubits.
 */
QCircuit barencoHalfDirtyToffoli(int k);

/**
 * Multi-control-U with k controls and k-2 borrowed (dirty) ancillas;
 * same V-chain network as the Barenco construction with the k'th
 * control folded in, 4(k-2) Toffolis on 2k-1 qubits.
 */
QCircuit cnuHalfBorrowed(int k);

/**
 * Logarithmic-depth CnX on k controls with k-1 clean tree ancillas and
 * one spare ancilla prepared in |1> (not counted as gates), 2(k-1)+1
 * Toffolis on 2k+1 qubits.
 */
QCircuit cnxLogDepth(int k);

/** The Table I benchmark suite at the paper's parameters. */
std::vector<QCircuit> tableOneBenchmarks();

} // namespace nisqpp

#endif // NISQPP_CIRCUITS_BENCHMARKS_HH
