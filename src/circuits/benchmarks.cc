#include "circuits/benchmarks.hh"

#include "common/logging.hh"

namespace nisqpp {

QCircuit
cuccaroAdder(int n)
{
    require(n >= 1, "cuccaroAdder: need n >= 1");
    // Register layout: cin | a0 b0 | a1 b1 | ... | a_{n-1} b_{n-1} | cout.
    QCircuit qc(2 * n + 2, "cuccaro_adder");
    auto a = [&](int i) { return 1 + 2 * i; };
    auto b = [&](int i) { return 2 + 2 * i; };
    const int cin = 0;
    const int cout = 2 * n + 1;

    auto maj = [&](int c, int bq, int aq) {
        qc.cnot(aq, bq);
        qc.cnot(aq, c);
        qc.toffoli(c, bq, aq);
    };
    // 3-CNOT UMA variant (Cuccaro et al., Fig. 3): restores the carry
    // chain while writing the sum, 3 CNOT + 2 X per bit.
    auto uma = [&](int c, int bq, int aq) {
        qc.x(bq);
        qc.cnot(c, bq);
        qc.toffoli(c, bq, aq);
        qc.x(bq);
        qc.cnot(aq, c);
        qc.cnot(aq, bq);
    };

    maj(cin, b(0), a(0));
    for (int i = 1; i < n; ++i)
        maj(a(i - 1), b(i), a(i));
    qc.cnot(a(n - 1), cout);
    for (int i = n - 1; i >= 1; --i)
        uma(a(i - 1), b(i), a(i));
    uma(cin, b(0), a(0));
    return qc;
}

QCircuit
takahashiAdder(int n)
{
    require(n >= 2, "takahashiAdder: need n >= 2");
    // Register layout: a0 b0 | a1 b1 | ...; the sum lands in b.
    QCircuit qc(2 * n, "takahashi_adder");
    auto a = [&](int i) { return 2 * i; };
    auto b = [&](int i) { return 2 * i + 1; };

    for (int i = 1; i < n; ++i)
        qc.cnot(a(i), b(i));
    for (int i = n - 2; i >= 1; --i)
        qc.cnot(a(i), a(i + 1));
    for (int i = 0; i < n - 1; ++i)
        qc.toffoli(a(i), b(i), a(i + 1));
    for (int i = n - 1; i >= 1; --i) {
        qc.cnot(a(i), b(i));
        qc.toffoli(a(i - 1), b(i - 1), a(i));
    }
    for (int i = 1; i < n - 1; ++i)
        qc.cnot(a(i), a(i + 1));
    for (int i = 0; i < n; ++i)
        qc.cnot(a(i), b(i));
    return qc;
}

namespace {

/**
 * The Lemma 7.2 V-chain network shared by the Barenco and half-borrowed
 * constructions: 4(k-2) Toffolis computing C^k X onto @p target with
 * k-2 dirty ancillas.
 */
QCircuit
vChainNetwork(int k, const char *name)
{
    require(k >= 3, "vChainNetwork: need k >= 3 controls");
    // Layout: controls c0..c_{k-1}, ancillas a0..a_{k-3}, target t.
    QCircuit qc(2 * k - 1, name);
    auto ctrl = [&](int i) { return i; };
    auto anc = [&](int i) { return k + i; };
    const int target = 2 * k - 2;

    // G0 couples the top control and top ancilla into the target; Gj
    // walks the chain down; the last gate couples the two bottom
    // controls into the bottom ancilla.
    auto gate = [&](int j) {
        if (j == 0)
            qc.toffoli(ctrl(k - 1), anc(k - 3), target);
        else if (j == k - 2)
            qc.toffoli(ctrl(0), ctrl(1), anc(0));
        else
            qc.toffoli(ctrl(k - 1 - j), anc(k - 3 - j), anc(k - 2 - j));
    };

    for (int round = 0; round < 2; ++round) {
        for (int j = 0; j <= k - 2; ++j)
            gate(j);
        for (int j = k - 3; j >= 1; --j)
            gate(j);
    }
    return qc;
}

} // namespace

QCircuit
barencoHalfDirtyToffoli(int k)
{
    return vChainNetwork(k, "barenco_half_dirty_toffoli");
}

QCircuit
cnuHalfBorrowed(int k)
{
    return vChainNetwork(k, "cnu_half_borrowed");
}

QCircuit
cnxLogDepth(int k)
{
    require(k >= 2, "cnxLogDepth: need k >= 2 controls");
    // Layout: controls c0..c_{k-1}, tree ancillas t0..t_{k-2}, spare
    // ancilla prepared |1>, target.
    QCircuit qc(2 * k + 1, "cnx_log_depth");
    const int spare = 2 * k - 1;
    const int target = 2 * k;

    // Binary AND-reduction: each Toffoli merges two live signals into a
    // fresh ancilla; k-1 merges reduce k controls to one signal in
    // ceil(log2 k) layers.
    std::vector<int> live;
    for (int i = 0; i < k; ++i)
        live.push_back(i);
    int next_anc = k;
    std::vector<Gate> merges;
    while (live.size() > 1) {
        std::vector<int> next_live;
        for (std::size_t i = 0; i + 1 < live.size(); i += 2) {
            const int out = next_anc++;
            qc.toffoli(live[i], live[i + 1], out);
            merges.push_back({GateKind::Toffoli,
                              {live[i], live[i + 1], out}});
            next_live.push_back(out);
        }
        if (live.size() % 2 == 1)
            next_live.push_back(live.back());
        live = std::move(next_live);
    }
    require(next_anc == 2 * k - 1, "cnxLogDepth: ancilla accounting");

    // Apply through the spare (|1>) control, then uncompute the tree.
    qc.toffoli(live[0], spare, target);
    for (std::size_t i = merges.size(); i-- > 0;) {
        const Gate &g = merges[i];
        qc.toffoli(g.qubits[0], g.qubits[1], g.qubits[2]);
    }
    return qc;
}

std::vector<QCircuit>
tableOneBenchmarks()
{
    std::vector<QCircuit> suite;
    suite.push_back(takahashiAdder(20));
    suite.push_back(barencoHalfDirtyToffoli(20));
    suite.push_back(cnuHalfBorrowed(19));
    suite.push_back(cnxLogDepth(19));
    suite.push_back(cuccaroAdder(20));
    return suite;
}

} // namespace nisqpp
