/**
 * @file
 * Clifford+T decomposition. The benchmarks of Table I are Toffoli
 * networks; fault-tolerant execution expands each Toffoli into the
 * textbook 7-T circuit (2 H, 6 CNOT, 7 T/Tdg — 15 gates). The paper's
 * "total gates" column is consistent with a 17-gate Toffoli expansion
 * (two extra phase-fix gates); the bench reports both budgets and the
 * T counts match exactly (see EXPERIMENTS.md).
 */

#ifndef NISQPP_CIRCUITS_DECOMPOSE_HH
#define NISQPP_CIRCUITS_DECOMPOSE_HH

#include "circuits/circuit.hh"

namespace nisqpp {

/** Gates emitted per Toffoli by the textbook 7-T decomposition. */
constexpr int kToffoliGates = 15;

/** Gate budget per Toffoli implied by the paper's Table I totals. */
constexpr int kToffoliGatesPaper = 17;

/** T gates per Toffoli. */
constexpr int kToffoliTCount = 7;

/**
 * Expand every Toffoli of @p circuit into Clifford+T.
 *
 * @return A new circuit on the same register with no Toffoli gates.
 */
QCircuit decomposeToffoli(const QCircuit &circuit);

/**
 * T count of @p circuit after decomposition, without materializing it.
 */
std::size_t decomposedTCount(const QCircuit &circuit);

/** Total gate count after decomposition under a per-Toffoli budget. */
std::size_t decomposedGateCount(const QCircuit &circuit,
                                int toffoli_budget = kToffoliGates);

} // namespace nisqpp

#endif // NISQPP_CIRCUITS_DECOMPOSE_HH
