/**
 * @file
 * Minimal quantum circuit IR used to reproduce Table I and to drive the
 * backlog execution-time model (paper Section III): gate lists with
 * enough structure to count qubits, total gates, T gates and circuit
 * depth for the benchmark programs.
 */

#ifndef NISQPP_CIRCUITS_CIRCUIT_HH
#define NISQPP_CIRCUITS_CIRCUIT_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace nisqpp {

/** Gate alphabet: Cliffords, T, and the composite Toffoli. */
enum class GateKind : unsigned char
{
    X,
    H,
    S,
    Sdg,
    T,
    Tdg,
    Cnot,
    Toffoli,
};

/** True for the non-Clifford gates that require decoder synchronization. */
bool isTGate(GateKind kind);

/** Number of qubit operands of @p kind. */
int gateArity(GateKind kind);

/** Human-readable mnemonic. */
std::string gateName(GateKind kind);

/** One gate instance. */
struct Gate
{
    GateKind kind;
    std::array<int, 3> qubits; ///< unused operands = -1

    int arity() const { return gateArity(kind); }
};

/** A gate-list quantum circuit on a fixed register. */
class QCircuit
{
  public:
    QCircuit(int num_qubits, std::string name);

    int numQubits() const { return numQubits_; }
    const std::string &name() const { return name_; }
    const std::vector<Gate> &gates() const { return gates_; }
    std::size_t size() const { return gates_.size(); }

    /** @name Gate emitters @{ */
    void x(int q) { add(GateKind::X, q); }
    void h(int q) { add(GateKind::H, q); }
    void s(int q) { add(GateKind::S, q); }
    void sdg(int q) { add(GateKind::Sdg, q); }
    void t(int q) { add(GateKind::T, q); }
    void tdg(int q) { add(GateKind::Tdg, q); }
    void cnot(int c, int t) { add(GateKind::Cnot, c, t); }
    void toffoli(int a, int b, int t) { add(GateKind::Toffoli, a, b, t); }
    /** @} */

    /** Count of gates of one kind. */
    std::size_t countKind(GateKind kind) const;

    /** Count of T/Tdg gates (after decomposition these gate the decoder). */
    std::size_t tCount() const;

    /** Circuit depth: longest chain of operand-sharing gates. */
    int depth() const;

    /** Append all gates of @p other (register sizes must match). */
    void append(const QCircuit &other);

  private:
    void add(GateKind kind, int a, int b = -1, int c = -1);

    int numQubits_;
    std::string name_;
    std::vector<Gate> gates_;
};

} // namespace nisqpp

#endif // NISQPP_CIRCUITS_CIRCUIT_HH
