#include "circuits/decompose.hh"

namespace nisqpp {

QCircuit
decomposeToffoli(const QCircuit &circuit)
{
    QCircuit out(circuit.numQubits(), circuit.name() + "+decomposed");
    for (const Gate &g : circuit.gates()) {
        if (g.kind != GateKind::Toffoli) {
            switch (g.kind) {
              case GateKind::X: out.x(g.qubits[0]); break;
              case GateKind::H: out.h(g.qubits[0]); break;
              case GateKind::S: out.s(g.qubits[0]); break;
              case GateKind::Sdg: out.sdg(g.qubits[0]); break;
              case GateKind::T: out.t(g.qubits[0]); break;
              case GateKind::Tdg: out.tdg(g.qubits[0]); break;
              case GateKind::Cnot:
                out.cnot(g.qubits[0], g.qubits[1]);
                break;
              default: break;
            }
            continue;
        }
        const int a = g.qubits[0];
        const int b = g.qubits[1];
        const int t = g.qubits[2];
        // Textbook 7-T Toffoli (Nielsen & Chuang Fig. 4.9).
        out.h(t);
        out.cnot(b, t);
        out.tdg(t);
        out.cnot(a, t);
        out.t(t);
        out.cnot(b, t);
        out.tdg(t);
        out.cnot(a, t);
        out.t(b);
        out.t(t);
        out.h(t);
        out.cnot(a, b);
        out.t(a);
        out.tdg(b);
        out.cnot(a, b);
    }
    return out;
}

std::size_t
decomposedTCount(const QCircuit &circuit)
{
    return circuit.tCount() +
           kToffoliTCount * circuit.countKind(GateKind::Toffoli);
}

std::size_t
decomposedGateCount(const QCircuit &circuit, int toffoli_budget)
{
    const std::size_t toffolis = circuit.countKind(GateKind::Toffoli);
    return circuit.size() - toffolis +
           static_cast<std::size_t>(toffoli_budget) * toffolis;
}

} // namespace nisqpp
