#include "faults/fault_plan.hh"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/fault_env.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace nisqpp {
namespace faults {

namespace {

void
requireRate(double value, const char *name)
{
    require(value >= 0.0 && value <= 1.0,
            std::string("FaultSpec.") + name + " must lie in [0, 1]");
}

/** SplitMix64 finalizer — mixes (seed, round) into one stream seed. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t round)
{
    std::uint64_t z = seed ^ (round + 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

void
FaultSpec::validate() const
{
    requireRate(dropRate, "dropRate");
    requireRate(corruptRate, "corruptRate");
    requireRate(duplicateRate, "duplicateRate");
    requireRate(delayRate, "delayRate");
    requireRate(stallRate, "stallRate");
    requireRate(decodeFailRate, "decodeFailRate");
    require(delayCycles >= 1, "FaultSpec.delayCycles must be >= 1");
    require(stallFactor >= 1.0, "FaultSpec.stallFactor must be >= 1");
}

void
RecoveryPolicy::validate() const
{
    require(maxRetransmits >= 0,
            "RecoveryPolicy.maxRetransmits must be >= 0");
    require(retransmitNs >= 0.0,
            "RecoveryPolicy.retransmitNs must be >= 0");
    require(deadlineNs >= 0.0, "RecoveryPolicy.deadlineNs must be >= 0");
    require(mergeNs >= 0.0, "RecoveryPolicy.mergeNs must be >= 0");
}

FaultPlan::FaultPlan(const FaultSpec &spec, std::uint32_t ancillaCount)
    : spec_(spec), ancillaCount_(ancillaCount)
{
    spec_.validate();
    require(ancillaCount > 0, "FaultPlan needs a non-empty syndrome");
}

RoundFaults
FaultPlan::eventFor(std::uint64_t round) const
{
    // A fresh generator per round keeps the plan random-access: shards
    // can evaluate any round without replaying the ones before it. The
    // draw order below is part of the determinism contract — changing
    // it changes every golden that pins a faulty run.
    Rng rng(mixSeed(spec_.seed, round));
    RoundFaults f;

    f.dropped = spec_.dropRate > 0.0 && rng.bernoulli(spec_.dropRate);
    const bool corrupt =
        spec_.corruptRate > 0.0 && rng.bernoulli(spec_.corruptRate);
    if (corrupt && !f.dropped) {
        f.corruptBits =
            1 + static_cast<int>(rng.uniformInt(kMaxCorruptBits));
        for (int i = 0; i < f.corruptBits; ++i)
            f.corruptAncilla[static_cast<std::size_t>(i)] =
                static_cast<std::uint32_t>(rng.uniformInt(ancillaCount_));
    }
    f.duplicated =
        spec_.duplicateRate > 0.0 && rng.bernoulli(spec_.duplicateRate);
    if (spec_.delayRate > 0.0 && rng.bernoulli(spec_.delayRate))
        f.delayCycles = spec_.delayCycles;
    if (spec_.stallRate > 0.0 && rng.bernoulli(spec_.stallRate))
        f.stallFactor = spec_.stallFactor;
    f.decodeFailed =
        spec_.decodeFailRate > 0.0 && rng.bernoulli(spec_.decodeFailRate);

    // Retransmit attempts see the same lossy channel as the original
    // delivery: each re-request independently fails with the combined
    // drop+corrupt probability, capped so recovery is always bounded.
    if (f.transportFault()) {
        const double loss =
            std::min(0.9, spec_.dropRate + spec_.corruptRate);
        while (f.retransmitsNeeded < kRetryCap &&
               rng.bernoulli(loss))
            ++f.retransmitsNeeded;
    }
    return f;
}

bool
streamFaultsFromEnv(FaultSpec &spec, const char *var)
{
    const char *env = std::getenv(var);
    if (!env || !*env)
        return false;
    const std::string text(env);
    std::vector<faultenv::Directive> directives;
    if (!faultenv::splitDirectives(text, directives)) {
        warn(std::string(var) + "='" + text +
             "' is not a k=v,k=v directive list; stream faults "
             "disabled");
        return false;
    }
    // Two-phase apply: validate every directive before touching spec
    // so a half-good variable never half-applies.
    FaultSpec updated = spec;
    for (const faultenv::Directive &d : directives) {
        bool ok = false;
        if (d.key == "drop")
            ok = faultenv::parseRate(d.value, updated.dropRate);
        else if (d.key == "corrupt")
            ok = faultenv::parseRate(d.value, updated.corruptRate);
        else if (d.key == "dup")
            ok = faultenv::parseRate(d.value, updated.duplicateRate);
        else if (d.key == "delay")
            ok = faultenv::parseRate(d.value, updated.delayRate);
        else if (d.key == "stall")
            ok = faultenv::parseRate(d.value, updated.stallRate);
        else if (d.key == "fail")
            ok = faultenv::parseRate(d.value, updated.decodeFailRate);
        else if (d.key == "delay-cycles") {
            std::uint64_t n = 0;
            ok = faultenv::parseCount(d.value, n) && n <= 1024;
            if (ok)
                updated.delayCycles = static_cast<int>(n);
        } else if (d.key == "stall-factor") {
            char *end = nullptr;
            const double v = std::strtod(d.value.c_str(), &end);
            ok = end && end != d.value.c_str() && *end == '\0' &&
                 v >= 1.0 && v <= 1e6;
            if (ok)
                updated.stallFactor = v;
        } else if (d.key == "seed") {
            ok = faultenv::parseCount(d.value, updated.seed);
        }
        if (!ok) {
            warn(std::string(var) + ": bad directive '" + d.key + "=" +
                 d.value + "'; stream faults disabled");
            return false;
        }
    }
    spec = updated;
    return true;
}

} // namespace faults
} // namespace nisqpp
