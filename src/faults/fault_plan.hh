/**
 * @file
 * Deterministic fault injection for the streaming decode pipeline.
 *
 * NISQ+'s decoder sits inside a real-time control loop between 4K SFQ
 * hardware and room-temperature software. That loop has failure modes
 * the happy-path simulation ignores: the syndrome transport can drop,
 * corrupt, duplicate, or delay a round; the consumer can stall or
 * transiently fail a decode. A FaultPlan is a seeded, pure function
 * from round index to the faults that strike it, so a faulty run is
 * exactly reproducible from (spec, round) at any thread count — the
 * faults are replayed on the stream's virtual clock, never the host's.
 *
 * RecoveryPolicy describes what runStream does about them: parity-
 * checked transport with bounded re-request paid in virtual ns,
 * last-frame carry-forward for unrecoverable rounds, a per-round
 * decode deadline that commits the tiered decoder's provisional mesh
 * answer instead of blocking on the exact tier, and load shedding
 * (drop-oldest or XOR-merge) when backlog crosses a threshold.
 * FaultCounts is the deterministic ledger behind the stream.fault.*
 * metrics and the round-conservation invariant:
 *   rounds == decoded + carriedForward + lostRounds + shed + merged.
 */

#ifndef NISQPP_FAULTS_FAULT_PLAN_HH
#define NISQPP_FAULTS_FAULT_PLAN_HH

#include <array>
#include <cstdint>

namespace nisqpp {
namespace faults {

/** Per-channel fault probabilities and shape parameters (all seeded). */
struct FaultSpec
{
    double dropRate = 0.0;      ///< round lost in transport
    double corruptRate = 0.0;   ///< 1-3 ancilla bits flipped in transit
    double duplicateRate = 0.0; ///< round delivered twice
    double delayRate = 0.0;     ///< round arrives delayCycles late
    int delayCycles = 3;        ///< transport delay, in syndrome cycles
    double stallRate = 0.0;     ///< decoder service time inflated
    double stallFactor = 4.0;   ///< multiplier applied on a stall
    double decodeFailRate = 0.0; ///< decode runs but result is discarded
    std::uint64_t seed = 0x0f1a7u; ///< fault stream seed (own stream)

    /** True when any fault channel can fire. */
    bool any() const
    {
        return dropRate > 0.0 || corruptRate > 0.0 ||
               duplicateRate > 0.0 || delayRate > 0.0 ||
               stallRate > 0.0 || decodeFailRate > 0.0;
    }

    /** Panics on out-of-range rates or non-positive shape params. */
    void validate() const;
};

/** Maximum ancilla bits flipped by one corruption event. */
inline constexpr int kMaxCorruptBits = 3;

/** Retransmit attempts sampled per round (cap on the loss geometric). */
inline constexpr int kRetryCap = 6;

/** The faults striking one round, fully determined by (spec, round). */
struct RoundFaults
{
    bool dropped = false;
    int corruptBits = 0; ///< 0 = clean; else 1..kMaxCorruptBits
    std::array<std::uint32_t, kMaxCorruptBits> corruptAncilla{};
    bool duplicated = false;
    int delayCycles = 0;
    /**
     * Transport attempts that also fail if the consumer re-requests
     * this round (parity recovery): attempt i of a re-request sequence
     * succeeds iff i > retransmitsNeeded. Capped at kRetryCap.
     */
    int retransmitsNeeded = 0;
    double stallFactor = 1.0; ///< 1.0 = no stall
    bool decodeFailed = false;

    bool transportFault() const { return dropped || corruptBits > 0; }
    bool anyFault() const
    {
        return transportFault() || duplicated || delayCycles > 0 ||
               stallFactor != 1.0 || decodeFailed;
    }
};

/**
 * Seeded pure mapping round -> RoundFaults. eventFor(k) derives a
 * fresh generator from (spec.seed, k) and draws the channels in a
 * fixed order, so the plan is random-access (no per-round state to
 * thread through shards) and identical at any thread count.
 */
class FaultPlan
{
  public:
    /** @param ancillaCount syndrome width, for corrupt-bit targets. */
    FaultPlan(const FaultSpec &spec, std::uint32_t ancillaCount);

    const FaultSpec &spec() const { return spec_; }

    /** Faults striking round @p round; pure in (spec, round). */
    RoundFaults eventFor(std::uint64_t round) const;

  private:
    FaultSpec spec_;
    std::uint32_t ancillaCount_;
};

/** What runStream sheds when backlog crosses the policy threshold. */
enum class ShedMode
{
    DropOldest, ///< skip the round's decode entirely
    XorMerge    ///< fold the round into the next decode (XOR surcharge)
};

/** Graceful-degradation knobs; all costs are virtual nanoseconds. */
struct RecoveryPolicy
{
    /** Re-request dropped/corrupted rounds detected by parity. */
    bool parityRetransmit = false;
    int maxRetransmits = 2;      ///< bounded re-request budget per round
    double retransmitNs = 120.0; ///< linear backoff: attempt i costs i*this

    /** Decode the last clean round again when a round is unrecoverable. */
    bool carryForward = false;

    /**
     * Per-round decode budget. When an escalated tiered decode misses
     * it, the provisional mesh answer is committed (Pauli-frame repair
     * is skipped) and the round's service time is clamped to the
     * deadline. 0 = no deadline.
     */
    double deadlineNs = 0.0;

    /** Backlog (rounds) at which shedding starts. 0 = never shed. */
    std::uint64_t shedThreshold = 0;
    ShedMode shedMode = ShedMode::DropOldest;
    double mergeNs = 20.0; ///< XOR-merge surcharge per merged round

    /** True when any recovery/degradation mechanism is enabled. */
    bool active() const
    {
        return parityRetransmit || carryForward || deadlineNs > 0.0 ||
               shedThreshold > 0;
    }

    /** Panics on negative costs/budgets. */
    void validate() const;
};

/**
 * Apply the NISQPP_STREAM_FAULTS env twin of the --fault-* flags to
 * @p spec: a comma-separated directive list
 * "drop=X,corrupt=X,dup=X,delay=X,delay-cycles=N,stall=X,
 * stall-factor=X,fail=X,seed=S". Returns true when the variable was
 * present and well-formed (spec updated). Warn-and-ignore: any
 * malformed token warns once and leaves @p spec untouched, matching
 * the NISQPP_FAULT_INJECT contract; the CLI flags fail hard instead.
 * Read only on the CLI path so in-process runs never see the env.
 */
bool streamFaultsFromEnv(FaultSpec &spec,
                         const char *var = "NISQPP_STREAM_FAULTS");

/** Deterministic ledger of fault events and recovery outcomes. */
struct FaultCounts
{
    // Injected events (what the plan threw at the pipeline).
    std::uint64_t drops = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t delays = 0;
    std::uint64_t stalls = 0;
    std::uint64_t decodeFailures = 0;

    // Recovery outcomes (what the policy did about them).
    std::uint64_t retransmits = 0;     ///< successful re-request attempts
    std::uint64_t carriedForward = 0;  ///< rounds decoded from last frame
    std::uint64_t lostRounds = 0;      ///< unrecoverable, no carry-forward
    std::uint64_t corruptDecodes = 0;  ///< corrupted syndrome decoded as-is
    std::uint64_t deadlineCommits = 0; ///< provisional committed at deadline
    std::uint64_t deadlineClamps = 0;  ///< service clamped, commit unchanged
    std::uint64_t shedRounds = 0;      ///< dropped-oldest under backlog
    std::uint64_t mergedRounds = 0;    ///< XOR-merged under backlog
    std::uint64_t dedupRounds = 0;     ///< duplicate deliveries discarded
    std::uint64_t decodedRounds = 0;   ///< rounds that ran a real decode

    bool anyEvent() const
    {
        return drops || corruptions || duplicates || delays || stalls ||
               decodeFailures || shedRounds || mergedRounds ||
               dedupRounds;
    }
};

} // namespace faults
} // namespace nisqpp

#endif // NISQPP_FAULTS_FAULT_PLAN_HH
