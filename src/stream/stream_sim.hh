/**
 * @file
 * Streaming decode pipeline (paper Section III, Figs. 5-6 measured):
 * a SyndromeStream producer emits per-round syndromes on a simulated
 * wall clock, a bounded StreamQueue buffers them, and a decoder
 * consumer drains them in FIFO order at the rate its latency model
 * allows. Decode *results* are computed round-synchronously (so
 * streaming corrections are bit-identical to batch Decoder::decode on
 * the same syndromes and the lifetime-protocol physics stays closed);
 * decode *timing* is replayed against the virtual clock, producing
 * queue-depth, latency-percentile and backlog-trajectory telemetry.
 * Everything is a deterministic function of the configuration and seed.
 */

#ifndef NISQPP_STREAM_STREAM_SIM_HH
#define NISQPP_STREAM_STREAM_SIM_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "decoders/decoder.hh"
#include "faults/fault_plan.hh"
#include "obs/metrics.hh"
#include "stream/latency_model.hh"
#include "stream/telemetry.hh"
#include "surface/lattice.hh"

namespace nisqpp {

class TrialWorkspace;

/** Configuration of one streaming decode run. */
struct StreamConfig
{
    const SurfaceLattice *lattice = nullptr;
    double physicalRate = 0.05;   ///< dephasing channel parameter
    /** Measurement flip rate q; > 0 forces windowed decoding. */
    double measurementFlipRate = 0.0;
    /**
     * Noisy rounds per decode window; 0 decodes every round
     * immediately (perfect-measurement pipeline). When set, the
     * consumer accumulates w measured rounds plus a perfect commit
     * round, decodes the window through Decoder::decodeWindow, and
     * commits the correction at the window boundary; rounds must be
     * a multiple of w.
     */
    std::size_t windowRounds = 0;
    double syndromeCycleNs = 400.0; ///< generation cycle (paper [27])
    std::size_t rounds = 4000;    ///< production horizon
    std::size_t queueCapacity = 64; ///< fast-ring slots before spill
    std::uint64_t seed = 0x57e40ULL;
    StreamLatencyModel latency;
    /** Backlog trajectory sample count over the horizon (>= 2). */
    std::size_t trajectorySamples = 32;

    /**
     * Seeded fault injection striking transport and consumer (all-zero
     * = fault-free), and the recovery/degradation policy answering it.
     * Both default-inactive; a run with neither active takes exactly
     * the fault-free code path (no extra RNG draws, no fault metrics),
     * so existing goldens are untouched. Fault injection requires the
     * per-round pipeline (windowRounds == 0). @{
     */
    faults::FaultSpec faults;
    faults::RecoveryPolicy recovery;
    /** @} */

    /**
     * Rounds drained per decodeBatch group (--batch, NISQPP_BATCH):
     * 1 decodes every round scalar; larger values let the consumer
     * gather up to this many produced rounds and decode them through
     * the decoder's lane-packed decodeBatch in one call, replaying the
     * virtual-clock timeline round by round afterwards. The batched
     * consumer engages only when it is provably equivalent — per-round
     * pipeline, a decoder whose corrections annihilate their syndrome
     * (correctionClearsSyndrome), no tiered escalation and no load
     * shedding — and falls back to the scalar path otherwise; rounds
     * struck by injected faults always run scalar. Every result field
     * and metric is byte-identical either way.
     */
    std::size_t batchLanes = 1;
};

/** Aggregates and telemetry of one streaming run. */
struct StreamingResult
{
    std::size_t rounds = 0;
    /** Windows committed (windowed runs; 0 on per-round runs). */
    std::size_t windows = 0;
    std::size_t failures = 0; ///< lifetime-protocol logical flips

    /**
     * Tiered-decoder telemetry (zero for non-tiered decoders): decodes
     * escalated to the exact tier, escalations whose exact answer
     * disagreed with the provisional mesh commit (a Pauli-frame repair
     * was applied), and repairs that flipped the committed logical
     * frame. @{
     */
    std::size_t escalations = 0;
    std::size_t repairs = 0;
    std::size_t repairFrameFlips = 0;
    /** @} */

    /**
     * failures / rounds — or failures / windows on windowed runs —
     * the streaming counterpart of PL.
     */
    double logicalErrorRate = 0.0;

    /**
     * Modeled decode service time per *decode* (ns): one observation
     * per round on the per-round pipeline, one per committed window on
     * windowed runs. Non-closing windowed rounds cost no decode work
     * and are excluded, so the percentiles below describe actual
     * decode latency on both paths.
     */
    RunningStats serviceNs;
    /** Arrival-to-completion sojourn per round (ns; includes queueing). */
    RunningStats sojournNs;
    /** Service-time percentiles from exact 1 ns bins. */
    LatencyPercentiles servicePercentiles;

    std::size_t maxQueueDepth = 0;   ///< fast-ring high-water mark
    std::size_t maxBacklogRounds = 0; ///< produced - completed peak
    std::size_t overflowRounds = 0;  ///< rounds spilled past the ring

    /** Rounds still undecoded the instant production stops. */
    std::size_t finalBacklogRounds = 0;
    /** finalBacklogRounds / rounds: measured growth per produced round. */
    double backlogGrowthPerRound = 0.0;
    /** Simulated time past end-of-production to drain the backlog. */
    double drainNs = 0.0;
    /**
     * Total decode service time / total production time: the measured
     * operating ratio f (normalized per produced round, so windowed
     * runs amortize each window's decode over its rounds).
     */
    double fEmpirical = 0.0;

    std::vector<BacklogSample> trajectory;

    /**
     * Fault/recovery ledger (all-zero on fault-free runs). The
     * conservation invariant the torture harness asserts:
     * rounds == decodedRounds + carriedForward + lostRounds +
     * shedRounds + mergedRounds, with dedupRounds == duplicates.
     */
    faults::FaultCounts faults;
    /**
     * Virtual-clock sanity: completion times never ran backwards.
     * Always true by construction; asserted per completion so the
     * torture harness pins the property rather than assuming it.
     */
    bool clockMonotone = true;

    /**
     * Deterministic stream.* counters (rounds, windows, failures,
     * queue spills, backlog peaks) plus the decoder's exported
     * decoder.* work counters — everything here is a function of
     * (config, seed) only, so scenario-folded metric aggregates stay
     * thread-count-invariant.
     */
    obs::MetricSet metrics;
};

/**
 * Per-round observer: invoked after each round's decode with the
 * emitted syndrome and the correction the decoder returned for it
 * (used by the batch-equivalence tests and explorers). On windowed
 * runs non-commit rounds report an empty correction; the commit round
 * reports the whole window's committed correction.
 */
using StreamObserver = std::function<void(
    std::size_t round, const Syndrome &syndrome, const Correction &)>;

/**
 * Run one streaming trial of @p decoder (which must decode the
 * dephasing family, ErrorType::Z) under @p config.
 *
 * @param workspace Scratch shared with other work on this thread;
 *                  null = allocate a private workspace.
 * @param observer  Optional per-round hook; pass nullptr when unused.
 */
StreamingResult runStream(const StreamConfig &config, Decoder &decoder,
                          TrialWorkspace *workspace = nullptr,
                          const StreamObserver *observer = nullptr);

} // namespace nisqpp

#endif // NISQPP_STREAM_STREAM_SIM_HH
