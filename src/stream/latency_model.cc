#include "stream/latency_model.hh"

#include "backlog/distance_model.hh"
#include "common/logging.hh"
#include "core/mesh_stats.hh"

namespace nisqpp {

double
StreamLatencyModel::decodeNs(const MeshDecodeStats *stats,
                             int hotWeight) const
{
    if (meshCycles) {
        require(stats != nullptr,
                "StreamLatencyModel: meshCycles set but the decoder "
                "reports no mesh telemetry");
        return stats->cycles * meshPeriodPs * 1e-3;
    }
    return baseNs + perHotNs * hotWeight;
}

StreamLatencyModel
StreamLatencyModel::mesh(double periodPs)
{
    StreamLatencyModel m;
    m.name = "mesh-cycles";
    m.meshCycles = true;
    m.meshPeriodPs = periodPs;
    return m;
}

StreamLatencyModel
StreamLatencyModel::constant(const std::string &name, double ns)
{
    StreamLatencyModel m;
    m.name = name;
    m.baseNs = ns;
    return m;
}

StreamLatencyModel
StreamLatencyModel::forFamily(const std::string &family, int distance)
{
    if (family == "sfq_mesh")
        return mesh();
    if (family == "mwpm")
        return constant(family,
                        DecoderProfile::mwpm().decodeNs(distance));
    if (family == "union_find")
        return constant(family,
                        DecoderProfile::unionFind().decodeNs(distance));
    if (family == "greedy")
        return constant(family, 600.0);
    fatal("StreamLatencyModel: unknown decoder family '" + family +
          "' (expected sfq_mesh, mwpm, union_find or greedy)");
}

StreamLatencyModel
StreamLatencyModel::tiered(const std::string &exactFamily, int distance)
{
    StreamLatencyModel m = mesh();
    m.name = "tiered-" + exactFamily;
    m.escalateNs = forFamily(exactFamily, distance).baseNs;
    return m;
}

} // namespace nisqpp
