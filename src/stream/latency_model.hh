/**
 * @file
 * Deterministic per-round decode latency models for the streaming
 * pipeline. The SFQ mesh decoder reports its own simulated cycle count
 * per decode (Table IV), so its latency is a measurement; the software
 * baselines get the paper's Section III / Fig. 11 reference latencies
 * (MWPM ~1 us, union-find ~850 ns, neural-net ~800 ns) with an optional
 * per-hot-syndrome term. Latencies are functions of the decoder and the
 * syndrome only — never of host wall time — so streaming telemetry is
 * byte-reproducible at any thread count.
 */

#ifndef NISQPP_STREAM_LATENCY_MODEL_HH
#define NISQPP_STREAM_LATENCY_MODEL_HH

#include <string>

namespace nisqpp {

struct MeshDecodeStats;

/** Modeled decode time of one syndrome round, in nanoseconds. */
struct StreamLatencyModel
{
    std::string name = "constant";

    /** Fixed cost per round (software pipeline overhead). */
    double baseNs = 0.0;

    /** Additional cost per hot ancilla in the round's syndrome. */
    double perHotNs = 0.0;

    /**
     * Take the latency from the mesh decoder's simulated cycle count
     * instead of the base/perHot terms (requires a decoder exposing
     * mesh telemetry through Decoder::meshStats()).
     */
    bool meshCycles = false;

    /** Mesh clock period when meshCycles is set (Table III). */
    double meshPeriodPs = 162.72;

    /**
     * Extra cost charged when the round's decode escalated to the
     * exact software tier (tiered decoding): the streaming pipeline
     * adds this on top of decodeNs() for rounds whose
     * Decoder::tieredStats() reports an escalation. Zero for
     * non-tiered models.
     */
    double escalateNs = 0.0;

    /**
     * Latency of the round just decoded. @p stats is the decoder's
     * Decoder::meshStats() telemetry (null for software decoders);
     * @p hotWeight is the decoded syndrome's hot-ancilla count.
     */
    double decodeNs(const MeshDecodeStats *stats, int hotWeight) const;

    /** The SFQ mesh: measured cycles x clock period. */
    static StreamLatencyModel mesh(double periodPs = 162.72);

    /** Fixed latency (the closed-form backlog model's assumption). */
    static StreamLatencyModel constant(const std::string &name,
                                       double ns);

    /**
     * Preset for a decoder family name as used by the experiment
     * scenarios: "sfq_mesh", "mwpm", "union_find" or "greedy". The
     * software presets mirror DecoderProfile's Fig. 11 latencies;
     * greedy (not profiled in the paper) is modeled at 600 ns.
     */
    static StreamLatencyModel forFamily(const std::string &family,
                                        int distance);

    /**
     * Tiered preset: mesh-cycle latency for the first tier plus
     * @p exactFamily's reference latency as the escalation surcharge
     * (the escalated window pays the mesh attempt *and* the software
     * decode — the pipeline model assumes no overlap).
     */
    static StreamLatencyModel tiered(const std::string &exactFamily,
                                     int distance);
};

} // namespace nisqpp

#endif // NISQPP_STREAM_LATENCY_MODEL_HH
