#include "stream/syndrome_stream.hh"

#include "common/logging.hh"

namespace nisqpp {

SyndromeStream::SyndromeStream(const SurfaceLattice &lattice,
                               const ErrorModel &model, ErrorType type,
                               std::uint64_t seed, double cycleNs)
    : lattice_(lattice), model_(model), type_(type), rng_(seed),
      cycleNs_(cycleNs), state_(lattice), syndrome_(lattice, type)
{
    require(cycleNs > 0,
            "SyndromeStream: syndrome cycle time must be positive");
}

const Syndrome &
SyndromeStream::emit()
{
    model_.sample(rng_, state_);
    extractSyndromeInto(state_, type_, syndrome_);
    model_.flipMeasurements(rng_, syndrome_);
    ++rounds_;
    return syndrome_;
}

void
SyndromeStream::extractPerfectInto(Syndrome &out) const
{
    extractSyndromeInto(state_, type_, out);
}

} // namespace nisqpp
