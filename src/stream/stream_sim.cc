#include "stream/stream_sim.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.hh"
#include "decoders/workspace.hh"
#include "stream/stream_queue.hh"
#include "stream/syndrome_stream.hh"
#include "surface/error_model.hh"
#include "surface/logical.hh"

namespace nisqpp {

namespace {

/** Service times are binned at 1 ns for exact percentile telemetry. */
constexpr std::size_t kLatencyBinMaxNs = 8191;

} // namespace

StreamingResult
runStream(const StreamConfig &config, Decoder &decoder,
          TrialWorkspace *workspace, const StreamObserver *observer)
{
    require(config.lattice != nullptr, "runStream: lattice required");
    require(config.rounds > 0, "runStream: rounds must be positive");
    require(config.syndromeCycleNs > 0,
            "runStream: syndrome cycle must be positive");
    require(decoder.type() == ErrorType::Z,
            "runStream: streaming decodes the dephasing (Z) family");

    std::unique_ptr<TrialWorkspace> owned;
    if (!workspace) {
        owned = std::make_unique<TrialWorkspace>();
        workspace = owned.get();
    }
    if (config.latency.meshCycles)
        require(decoder.meshStats() != nullptr,
                "runStream: mesh-cycle latency model needs a decoder "
                "with mesh telemetry");

    const DephasingModel model(config.physicalRate);
    SyndromeStream stream(*config.lattice, model, ErrorType::Z,
                          config.seed, config.syndromeCycleNs);
    StreamQueue queue(config.queueCapacity);
    Histogram serviceHist(kLatencyBinMaxNs);

    StreamingResult result;
    const double cycle = config.syndromeCycleNs;
    const double endOfProduction =
        static_cast<double>(config.rounds) * cycle;
    const std::size_t stride = std::max<std::size_t>(
        1, config.rounds / std::max<std::size_t>(
               1, config.trajectorySamples > 1
                      ? config.trajectorySamples - 1
                      : 1));

    double consumerFreeNs = 0.0;
    std::size_t completed = 0;
    std::size_t completedByEnd = 0;
    bool parity = false;

    auto completeFront = [&]() {
        const StreamRound &entry = queue.front();
        const double start = std::max(consumerFreeNs, entry.arriveNs);
        const double done = start + entry.serviceNs;
        consumerFreeNs = done;
        result.sojournNs.add(done - entry.arriveNs);
        if (done <= endOfProduction)
            ++completedByEnd;
        ++completed;
        queue.pop();
        return done;
    };

    for (std::size_t k = 0; k < config.rounds; ++k) {
        const double tArrive = static_cast<double>(k) * cycle;

        // The consumer retires every round it finishes before this
        // arrival; peeking the completion time keeps FIFO exactness.
        while (!queue.empty()) {
            const StreamRound &entry = queue.front();
            const double done =
                std::max(consumerFreeNs, entry.arriveNs) +
                entry.serviceNs;
            if (done > tArrive)
                break;
            completeFront();
        }

        // Produce and decode round k. The decode result is computed
        // round-synchronously (closed-loop lifetime physics); only its
        // cost is replayed against the virtual clock below.
        const Syndrome &syndrome = stream.emit();
        decoder.decode(syndrome, *workspace);
        workspace->correction.applyTo(stream.state(), ErrorType::Z);
        const bool nowParity =
            crossingParity(stream.state(), ErrorType::Z);
        if (nowParity != parity)
            ++result.failures;
        parity = nowParity;
        if (observer && *observer)
            (*observer)(k, syndrome, workspace->correction);

        const double serviceNs =
            config.latency.decodeNs(decoder.meshStats(),
                                    syndrome.weight());
        result.serviceNs.add(serviceNs);
        serviceHist.add(
            static_cast<std::size_t>(std::llround(serviceNs)));

        queue.push({k, tArrive, serviceNs});
        ++result.rounds;

        const std::size_t backlog = (k + 1) - completed;
        result.maxBacklogRounds =
            std::max(result.maxBacklogRounds, backlog);
        result.maxQueueDepth =
            std::max(result.maxQueueDepth, queue.fastDepth());
        if (k % stride == 0 || k + 1 == config.rounds)
            result.trajectory.push_back(
                {k, backlog, queue.fastDepth()});
    }

    // Production is over; drain whatever is still pending.
    double lastDone = consumerFreeNs;
    while (!queue.empty())
        lastDone = completeFront();

    result.overflowRounds = queue.overflowCount();
    result.finalBacklogRounds = result.rounds - completedByEnd;
    result.backlogGrowthPerRound =
        static_cast<double>(result.finalBacklogRounds) /
        static_cast<double>(result.rounds);
    result.drainNs = std::max(0.0, lastDone - endOfProduction);
    result.fEmpirical = result.serviceNs.mean() / cycle;
    result.logicalErrorRate =
        static_cast<double>(result.failures) /
        static_cast<double>(result.rounds);
    result.servicePercentiles.p50 =
        percentileFromHistogram(serviceHist, 0.50);
    result.servicePercentiles.p90 =
        percentileFromHistogram(serviceHist, 0.90);
    result.servicePercentiles.p99 =
        percentileFromHistogram(serviceHist, 0.99);
    result.servicePercentiles.max = result.serviceNs.max();
    return result;
}

} // namespace nisqpp
