#include "stream/stream_sim.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.hh"
#include "decoders/workspace.hh"
#include "noise/noise_model.hh"
#include "obs/trace.hh"
#include "stream/stream_queue.hh"
#include "stream/syndrome_stream.hh"
#include "surface/logical.hh"
#include "surface/syndrome_window.hh"

namespace nisqpp {

namespace {

/** Service times are binned at 1 ns for exact percentile telemetry. */
constexpr std::size_t kLatencyBinMaxNs = 8191;

} // namespace

StreamingResult
runStream(const StreamConfig &config, Decoder &decoder,
          TrialWorkspace *workspace, const StreamObserver *observer)
{
    require(config.lattice != nullptr, "runStream: lattice required");
    require(config.rounds > 0, "runStream: rounds must be positive");
    require(config.syndromeCycleNs > 0,
            "runStream: syndrome cycle must be positive");
    require(decoder.type() == ErrorType::Z,
            "runStream: streaming decodes the dephasing (Z) family");

    std::unique_ptr<TrialWorkspace> owned;
    if (!workspace) {
        owned = std::make_unique<TrialWorkspace>();
        workspace = owned.get();
    }
    if (config.latency.meshCycles)
        require(decoder.meshStats() != nullptr,
                "runStream: mesh-cycle latency model needs a decoder "
                "with mesh telemetry");

    const std::size_t w = config.windowRounds;
    if (w > 0)
        require(config.rounds % w == 0,
                "runStream: rounds must be a multiple of windowRounds");
    else
        require(config.measurementFlipRate == 0.0,
                "runStream: measurement noise requires windowRounds "
                "> 0 (per-round decoding cannot see readout flips)");

    // Fault injection and recovery are a strict superset of the fault-
    // free pipeline: when neither is active the code below takes
    // exactly the pre-fault path (no extra RNG draws, no stream.fault.*
    // metric keys), keeping fault-free runs byte-identical to the
    // goldens that predate this layer.
    const bool faultsActive =
        config.faults.any() || config.recovery.active();
    std::unique_ptr<faults::FaultPlan> plan;
    std::unique_ptr<Syndrome> corruptScratch;
    std::unique_ptr<Syndrome> lastGood;
    bool lastGoodValid = false;
    double pendingMergeNs = 0.0;
    if (faultsActive) {
        require(w == 0,
                "runStream: fault injection and recovery policies "
                "require the per-round pipeline (windowRounds == 0)");
        config.recovery.validate();
        plan = std::make_unique<faults::FaultPlan>(
            config.faults,
            static_cast<std::uint32_t>(
                config.lattice->numAncilla(ErrorType::Z)));
        corruptScratch =
            std::make_unique<Syndrome>(*config.lattice, ErrorType::Z);
        lastGood =
            std::make_unique<Syndrome>(*config.lattice, ErrorType::Z);
    }

    const NoiseModel model = NoiseModel::dephasing(
        config.physicalRate, config.measurementFlipRate);
    SyndromeStream stream(*config.lattice, model, ErrorType::Z,
                          config.seed, config.syndromeCycleNs);
    StreamQueue queue(config.queueCapacity);
    Histogram serviceHist(kLatencyBinMaxNs);

    StreamingResult result;
    const double cycle = config.syndromeCycleNs;
    const double endOfProduction =
        static_cast<double>(config.rounds) * cycle;
    const std::size_t stride = std::max<std::size_t>(
        1, config.rounds / std::max<std::size_t>(
               1, config.trajectorySamples > 1
                      ? config.trajectorySamples - 1
                      : 1));

    double consumerFreeNs = 0.0;
    std::size_t completed = 0;
    std::size_t completedByEnd = 0;
    bool parity = false;

    // Windowed-consumer state: w measured rounds accumulate, then a
    // perfect commit round closes the window, the decode happens once
    // and its correction is committed at the boundary.
    std::unique_ptr<SyndromeWindow> window;
    std::unique_ptr<Syndrome> commitSyn;
    if (w > 0) {
        window = std::make_unique<SyndromeWindow>(
            *config.lattice, ErrorType::Z, static_cast<int>(w) + 1);
        commitSyn =
            std::make_unique<Syndrome>(*config.lattice, ErrorType::Z);
    }
    const Correction emptyCorrection; ///< observer arg between commits

    // Commit the decode's correction and return the resulting crossing
    // parity. A tiered decode that was repaired commits in two steps —
    // the provisional (mesh) frame is final XOR repair, so the repair
    // is pre-applied, the final correction lands the state on the
    // provisional frame, and the repair is then applied on top — and
    // the tiered escalation/repair/frame-flip counters accrue here.
    // With @p provisionalOnly (a decode deadline fired) the commit
    // stops on the provisional frame: the exact tier's repair is
    // abandoned, so the repair counters do not accrue.
    auto commitCorrection = [&](bool provisionalOnly) {
        const TieredDecodeStats *ts = decoder.tieredStats();
        if (ts && ts->escalated)
            ++result.escalations;
        if (!ts || !ts->repaired) {
            workspace->correction.applyTo(stream.state(), ErrorType::Z);
            return crossingParity(stream.state(), ErrorType::Z);
        }
        for (int d : ts->repairFlips)
            stream.state().flip(ErrorType::Z, d);
        workspace->correction.applyTo(stream.state(), ErrorType::Z);
        const bool provisionalParity =
            crossingParity(stream.state(), ErrorType::Z);
        if (provisionalOnly)
            return provisionalParity;
        for (int d : ts->repairFlips)
            stream.state().flip(ErrorType::Z, d);
        const bool repairedParity =
            crossingParity(stream.state(), ErrorType::Z);
        ++result.repairs;
        if (repairedParity != provisionalParity)
            ++result.repairFrameFlips;
        return repairedParity;
    };

    // Escalated decodes pay the mesh attempt plus the software tier.
    auto withEscalation = [&](double ns) {
        const TieredDecodeStats *ts = decoder.tieredStats();
        return ts && ts->escalated ? ns + config.latency.escalateNs
                                   : ns;
    };

    auto completeFront = [&]() {
        const StreamRound &entry = queue.front();
        const double start = std::max(consumerFreeNs, entry.arriveNs);
        const double done = start + entry.serviceNs;
        if (done < consumerFreeNs)
            result.clockMonotone = false;
        consumerFreeNs = done;
        if (entry.duplicate) {
            // Second delivery of a round already handled: discarded by
            // sequence number, so it completes nothing and its queue
            // residence is not a sojourn.
            ++result.faults.dedupRounds;
        } else {
            result.sojournNs.add(done - entry.arriveNs);
            if (done <= endOfProduction)
                ++completedByEnd;
            ++completed;
        }
        queue.pop();
        return done;
    };

    // The consumer retires every round it finishes before @p tArrive;
    // peeking the completion time keeps FIFO exactness.
    auto retireBefore = [&](double tArrive) {
        while (!queue.empty()) {
            const StreamRound &entry = queue.front();
            const double done =
                std::max(consumerFreeNs, entry.arriveNs) +
                entry.serviceNs;
            if (done > tArrive)
                break;
            completeFront();
        }
    };

    // Post-decode accounting shared by the scalar and batched
    // consumers: service statistics, the queue push and the backlog /
    // trajectory telemetry of round @p k.
    auto accountRound = [&](std::size_t k, double arriveNs,
                            double serviceNs, bool decoded,
                            bool duplicated) {
        // Only rounds that actually ran a decode enter the service
        // statistics: non-closing windowed rounds cost no decode work,
        // and their zero "services" would dilute the percentiles
        // relative to the per-round path. (They still pass through the
        // queue with zero service so arrival accounting is unchanged.)
        if (decoded) {
            result.serviceNs.add(serviceNs);
            serviceHist.add(
                static_cast<std::size_t>(std::llround(serviceNs)));
        }

        queue.push({k, arriveNs, serviceNs, false});
        if (duplicated)
            queue.push({k, arriveNs, 0.0, true});
        ++result.rounds;

        const std::size_t backlog = (k + 1) - completed;
        result.maxBacklogRounds =
            std::max(result.maxBacklogRounds, backlog);
        result.maxQueueDepth =
            std::max(result.maxQueueDepth, queue.fastDepth());
        if (k % stride == 0 || k + 1 == config.rounds)
            result.trajectory.push_back(
                {k, backlog, queue.fastDepth()});
    };

    auto processRound = [&](std::size_t k) {
        const double tArrive = static_cast<double>(k) * cycle;
        retireBefore(tArrive);

        // Produce and decode round k. The decode result is computed
        // round-synchronously (closed-loop lifetime physics); only its
        // cost is replayed against the virtual clock below.
        const Syndrome *produced;
        {
            obs::TraceSpan produceSpan(obs::Stage::StreamProduce);
            produced = &stream.emit();
        }
        const Syndrome &syndrome = *produced;
        double serviceNs = 0.0;
        double arriveNs = tArrive;
        bool decoded = false;
        bool duplicated = false;
        if (w == 0 && faultsActive) {
            const faults::RoundFaults rf = plan->eventFor(k);
            const faults::RecoveryPolicy &policy = config.recovery;
            faults::FaultCounts &fc = result.faults;

            if (rf.delayCycles > 0) {
                ++fc.delays;
                arriveNs += static_cast<double>(rf.delayCycles) * cycle;
            }

            // Transport outcome for round k's delivery.
            bool carried = false;   // decode the last clean frame
            bool lost = false;      // no decode at all
            bool corrupted = false; // decode the corrupted copy
            if (rf.transportFault()) {
                if (rf.dropped)
                    ++fc.drops;
                else
                    ++fc.corruptions;
                const int attempts = rf.retransmitsNeeded + 1;
                if (policy.parityRetransmit &&
                    attempts <= policy.maxRetransmits) {
                    // Parity caught the fault; bounded re-requests are
                    // paid in virtual ns with linear backoff (attempt
                    // i costs i * retransmitNs), then the clean round
                    // arrives.
                    obs::TraceSpan span(obs::Stage::StreamRecover);
                    fc.retransmits +=
                        static_cast<std::uint64_t>(attempts);
                    for (int i = 1; i <= attempts; ++i)
                        arriveNs += static_cast<double>(i) *
                                    policy.retransmitNs;
                } else if (rf.dropped || policy.parityRetransmit) {
                    // A drop, or a corruption parity caught but could
                    // not recover within the re-request budget.
                    if (policy.carryForward && lastGoodValid)
                        carried = true;
                    else
                        lost = true;
                } else {
                    // No parity protection: the corruption is silent
                    // and the consumer decodes the corrupted round.
                    corrupted = true;
                }
            }
            // Only delivered rounds can arrive twice.
            duplicated = rf.duplicated && !lost && !carried;
            if (duplicated)
                ++fc.duplicates;

            // Load shedding: above the backlog threshold the consumer
            // refuses the decode. The lifetime syndrome is cumulative,
            // so the next decoded round supersedes a shed one's
            // information — DropOldest discards it outright, XorMerge
            // folds it into the next decode for a small surcharge.
            bool shed = false;
            bool mergedRound = false;
            if (!lost && policy.shedThreshold > 0 &&
                queue.depth() >= policy.shedThreshold) {
                if (policy.shedMode == faults::ShedMode::DropOldest) {
                    shed = true;
                    ++fc.shedRounds;
                } else {
                    mergedRound = true;
                    ++fc.mergedRounds;
                    pendingMergeNs += policy.mergeNs;
                }
            }

            if (lost) {
                ++fc.lostRounds;
                if (observer && *observer)
                    (*observer)(k, syndrome, emptyCorrection);
            } else if (shed || mergedRound) {
                if (observer && *observer)
                    (*observer)(k, syndrome, emptyCorrection);
            } else {
                const Syndrome *toDecode = &syndrome;
                if (carried) {
                    obs::TraceSpan span(obs::Stage::StreamRecover);
                    toDecode = lastGood.get();
                    ++fc.carriedForward;
                } else {
                    if (corrupted) {
                        *corruptScratch = syndrome;
                        for (int i = 0; i < rf.corruptBits; ++i)
                            corruptScratch->flip(static_cast<int>(
                                rf.corruptAncilla
                                    [static_cast<std::size_t>(i)]));
                        toDecode = corruptScratch.get();
                        ++fc.corruptDecodes;
                    } else if (policy.carryForward) {
                        *lastGood = syndrome;
                        lastGoodValid = true;
                    }
                    ++fc.decodedRounds;
                }
                {
                    obs::TraceSpan decodeSpan(obs::Stage::StreamDecode);
                    decoder.decode(*toDecode, *workspace);
                }
                serviceNs = withEscalation(config.latency.decodeNs(
                    decoder.meshStats(), toDecode->weight()));
                if (pendingMergeNs > 0.0) {
                    serviceNs += pendingMergeNs;
                    pendingMergeNs = 0.0;
                }
                if (rf.stallFactor != 1.0) {
                    ++fc.stalls;
                    serviceNs *= rf.stallFactor;
                }
                bool provisionalOnly = false;
                if (policy.deadlineNs > 0.0 &&
                    serviceNs > policy.deadlineNs) {
                    // Deadline miss: an escalated tiered decode
                    // commits its provisional mesh answer instead of
                    // waiting out the exact tier; anything else just
                    // has its modeled service clamped to the budget.
                    const TieredDecodeStats *ts = decoder.tieredStats();
                    if (ts && ts->escalated) {
                        provisionalOnly = true;
                        ++fc.deadlineCommits;
                    } else {
                        ++fc.deadlineClamps;
                    }
                    serviceNs = policy.deadlineNs;
                }
                if (rf.decodeFailed) {
                    // Transient decode failure: the service time is
                    // paid but no correction lands; the residual
                    // errors stay for the next round's decode.
                    ++fc.decodeFailures;
                    if (observer && *observer)
                        (*observer)(k, syndrome, emptyCorrection);
                } else {
                    bool nowParity;
                    {
                        obs::TraceSpan commitSpan(
                            obs::Stage::StreamCommit);
                        nowParity = commitCorrection(provisionalOnly);
                    }
                    if (nowParity != parity)
                        ++result.failures;
                    parity = nowParity;
                    if (observer && *observer)
                        (*observer)(k, syndrome, workspace->correction);
                }
                decoded = true;
            }
        } else if (w == 0) {
            {
                obs::TraceSpan decodeSpan(obs::Stage::StreamDecode);
                decoder.decode(syndrome, *workspace);
            }
            bool nowParity;
            {
                obs::TraceSpan commitSpan(obs::Stage::StreamCommit);
                nowParity = commitCorrection(false);
            }
            if (nowParity != parity)
                ++result.failures;
            parity = nowParity;
            if (observer && *observer)
                (*observer)(k, syndrome, workspace->correction);
            serviceNs = withEscalation(config.latency.decodeNs(
                decoder.meshStats(), syndrome.weight()));
            decoded = true;
        } else {
            const int t = static_cast<int>(k % w);
            window->recordRound(t, syndrome);
            if (t + 1 == static_cast<int>(w)) {
                // Close the window with a perfect commit round,
                // decode it as one spacetime problem, commit.
                stream.extractPerfectInto(*commitSyn);
                window->recordRound(static_cast<int>(w), *commitSyn);
                {
                    obs::TraceSpan decodeSpan(
                        obs::Stage::StreamDecode);
                    decoder.decodeWindow(*window, *workspace);
                }
                bool nowParity;
                {
                    obs::TraceSpan commitSpan(
                        obs::Stage::StreamCommit);
                    ++result.windows;
                    nowParity = commitCorrection(false);
                }
                if (nowParity != parity)
                    ++result.failures;
                parity = nowParity;
                if (observer && *observer)
                    (*observer)(k, syndrome, workspace->correction);
                serviceNs = withEscalation(config.latency.decodeNs(
                    decoder.meshStats(), window->eventWeight()));
                decoded = true;
                // Re-arm: the next window's round-0 events are
                // measured against the post-commit perfect frame.
                stream.extractPerfectInto(*commitSyn);
                window->reset();
                window->setBaseline(*commitSyn);
            } else if (observer && *observer) {
                (*observer)(k, syndrome, emptyCorrection);
            }
        }
        accountRound(k, arriveNs, serviceNs, decoded, duplicated);
    };

    // The batched consumer gathers up to batchLanes produced rounds
    // and decodes them through the decoder's lane-packed decodeBatch
    // in one call. This is possible because the decode loop is
    // *round-synchronous*: the only coupling between consecutive
    // decodes is the committed correction, and for a decoder whose
    // correction annihilates its syndrome the uncorrected (raw)
    // syndromes telescope — S_eff[j] = S_raw[j] XOR S_raw[j-1] is
    // exactly the syndrome the scalar loop would have emitted after
    // round j-1's commit. Crossing parities recorded at emit time
    // supply the per-round failure accounting (the replayed state is
    // missing rounds j+1.. of the group's errors, whose parity
    // contribution is emitParity[last] XOR emitParity[j]), and the
    // virtual-clock timeline is then replayed round by round, so every
    // result field, metric and observer callback is byte-identical to
    // the scalar consumer. Rounds struck by injected faults (and any
    // configuration the equivalence argument does not cover) run
    // through the untouched scalar path.
    const bool batchedConsumer =
        config.batchLanes > 1 && w == 0 &&
        decoder.correctionClearsSyndrome() &&
        decoder.tieredStats() == nullptr &&
        config.recovery.shedThreshold == 0;

    if (!batchedConsumer) {
        for (std::size_t k = 0; k < config.rounds; ++k)
            processRound(k);
    } else {
        std::vector<Syndrome> lanes(
            config.batchLanes, Syndrome(*config.lattice, ErrorType::Z));
        std::vector<char> emitParity(config.batchLanes, 0);
        std::vector<const Syndrome *> ptrs(config.batchLanes, nullptr);
        std::size_t k = 0;
        while (k < config.rounds) {
            if (faultsActive && plan->eventFor(k).anyFault()) {
                processRound(k);
                ++k;
                continue;
            }
            std::size_t n = 1;
            while (k + n < config.rounds && n < config.batchLanes &&
                   !(faultsActive && plan->eventFor(k + n).anyFault()))
                ++n;

            // Phase 1: emit the group's raw (uncorrected) syndromes in
            // production order — the producer's RNG draw sequence is
            // untouched — recording each round's crossing parity.
            for (std::size_t i = 0; i < n; ++i) {
                {
                    obs::TraceSpan produceSpan(
                        obs::Stage::StreamProduce);
                    lanes[i] = stream.emit();
                }
                emitParity[i] =
                    crossingParity(stream.state(), ErrorType::Z) ? 1
                                                                 : 0;
            }

            // Phase 2: telescope raw -> effective syndromes in place
            // (backwards, so each XOR still sees its raw predecessor)
            // and decode the whole group lane-parallel.
            for (std::size_t i = n; i-- > 1;)
                lanes[i].xorMask(lanes[i - 1].bits());
            for (std::size_t i = 0; i < n; ++i)
                ptrs[i] = &lanes[i];
            {
                obs::TraceSpan decodeSpan(obs::Stage::StreamDecode);
                decoder.decodeBatch(ptrs.data(), n, *workspace);
            }

            // Phase 3: replay the virtual-clock timeline round by
            // round, committing each lane's correction in order.
            const bool groupEndParity = emitParity[n - 1] != 0;
            for (std::size_t i = 0; i < n; ++i) {
                const std::size_t kk = k + i;
                const double tArrive =
                    static_cast<double>(kk) * cycle;
                retireBefore(tArrive);
                if (faultsActive) {
                    // Fault-free rounds under an active fault plan
                    // still maintain the recovery bookkeeping the next
                    // (scalar) fault round may consume.
                    if (config.recovery.carryForward) {
                        *lastGood = lanes[i];
                        lastGoodValid = true;
                    }
                    ++result.faults.decodedRounds;
                }
                double serviceNs = config.latency.decodeNs(
                    decoder.meshStats(i), lanes[i].weight());
                if (faultsActive && config.recovery.deadlineNs > 0.0 &&
                    serviceNs > config.recovery.deadlineNs) {
                    ++result.faults.deadlineClamps;
                    serviceNs = config.recovery.deadlineNs;
                }
                bool nowParity;
                {
                    obs::TraceSpan commitSpan(obs::Stage::StreamCommit);
                    workspace->laneCorrections[i].applyTo(
                        stream.state(), ErrorType::Z);
                    const bool futureParity =
                        (emitParity[i] != 0) != groupEndParity;
                    nowParity =
                        crossingParity(stream.state(), ErrorType::Z) !=
                        futureParity;
                }
                if (nowParity != parity)
                    ++result.failures;
                parity = nowParity;
                if (observer && *observer)
                    (*observer)(kk, lanes[i],
                                workspace->laneCorrections[i]);
                accountRound(kk, tArrive, serviceNs, true, false);
            }
            k += n;
        }
    }

    // Production is over; drain whatever is still pending.
    double lastDone = consumerFreeNs;
    while (!queue.empty())
        lastDone = completeFront();

    result.overflowRounds = queue.overflowCount();
    result.finalBacklogRounds = result.rounds - completedByEnd;
    result.backlogGrowthPerRound =
        static_cast<double>(result.finalBacklogRounds) /
        static_cast<double>(result.rounds);
    result.drainNs = std::max(0.0, lastDone - endOfProduction);
    // f is normalized per *produced round* (total service over total
    // production time), so windowed runs amortize each window's single
    // decode over its rounds and stay comparable to the w == 0 path.
    result.fEmpirical =
        result.serviceNs.mean() *
        static_cast<double>(result.serviceNs.count()) /
        (static_cast<double>(result.rounds) * cycle);
    result.logicalErrorRate =
        static_cast<double>(result.failures) /
        static_cast<double>(w > 0 ? result.windows : result.rounds);
    result.servicePercentiles.p50 =
        percentileFromHistogram(serviceHist, 0.50);
    result.servicePercentiles.p90 =
        percentileFromHistogram(serviceHist, 0.90);
    result.servicePercentiles.p99 =
        percentileFromHistogram(serviceHist, 0.99);
    result.servicePercentiles.max = result.serviceNs.max();

    // Deterministic stream.* counters: everything below is a function
    // of (config, seed) alone, so scenario-level metric folds stay
    // thread-count-invariant. The decoder is owned by this run's cell,
    // so its exported work counters are exactly this run's work.
    result.metrics.add("stream.rounds", result.rounds);
    result.metrics.add("stream.windows", result.windows);
    result.metrics.add("stream.failures", result.failures);
    result.metrics.add("stream.queue.spills", result.overflowRounds);
    result.metrics.add("stream.backlog.final_rounds",
                       result.finalBacklogRounds);
    result.metrics.maxGauge("stream.queue.max_fast_depth",
                            result.maxQueueDepth);
    result.metrics.maxGauge("stream.backlog.max_rounds",
                            result.maxBacklogRounds);
    if (decoder.tieredStats()) {
        result.metrics.add("stream.tiered.escalations",
                           result.escalations);
        result.metrics.add("stream.tiered.repairs", result.repairs);
        result.metrics.add("stream.tiered.frame_flips",
                           result.repairFrameFlips);
    }
    // stream.fault.* keys exist only on fault/recovery-active runs so
    // fault-free metric reports (and every pre-fault golden) keep
    // their exact key set.
    if (faultsActive) {
        const faults::FaultCounts &fc = result.faults;
        result.metrics.add("stream.fault.drops", fc.drops);
        result.metrics.add("stream.fault.corruptions", fc.corruptions);
        result.metrics.add("stream.fault.duplicates", fc.duplicates);
        result.metrics.add("stream.fault.delays", fc.delays);
        result.metrics.add("stream.fault.stalls", fc.stalls);
        result.metrics.add("stream.fault.decode_failures",
                           fc.decodeFailures);
        result.metrics.add("stream.fault.retransmits", fc.retransmits);
        result.metrics.add("stream.fault.carried_forward",
                           fc.carriedForward);
        result.metrics.add("stream.fault.lost_rounds", fc.lostRounds);
        result.metrics.add("stream.fault.corrupt_decodes",
                           fc.corruptDecodes);
        result.metrics.add("stream.fault.deadline_commits",
                           fc.deadlineCommits);
        result.metrics.add("stream.fault.deadline_clamps",
                           fc.deadlineClamps);
        result.metrics.add("stream.fault.shed_rounds", fc.shedRounds);
        result.metrics.add("stream.fault.merged_rounds",
                           fc.mergedRounds);
        result.metrics.add("stream.fault.dedup_rounds", fc.dedupRounds);
        result.metrics.add("stream.fault.decoded_rounds",
                           fc.decodedRounds);
    }
    decoder.exportMetrics(result.metrics);
    return result;
}

} // namespace nisqpp
