/**
 * @file
 * Telemetry of the streaming decode pipeline: deterministic latency
 * percentiles from an integer-binned histogram, and backlog/queue-depth
 * trajectory samples (the measured counterpart of the paper's Fig. 5
 * backlog staircase and Fig. 6 runtime blowup).
 */

#ifndef NISQPP_STREAM_TELEMETRY_HH
#define NISQPP_STREAM_TELEMETRY_HH

#include <cstddef>

#include "common/stats.hh"

namespace nisqpp {

/** Latency distribution summary (nanoseconds). */
struct LatencyPercentiles
{
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/**
 * Value below which a fraction >= @p q of the histogram's mass lies,
 * from its 1-unit integer bins. Observations in the overflow bin are
 * treated as numBins() (a lower bound), so percentiles of heavy-tailed
 * distributions saturate instead of inventing data.
 */
double percentileFromHistogram(const Histogram &hist, double q);

/** One sampled point of the backlog/queue-depth trajectory. */
struct BacklogSample
{
    std::size_t round = 0;       ///< producer round index
    std::size_t backlogRounds = 0; ///< produced - completed at sample
    std::size_t queueDepth = 0;  ///< fast-ring depth at sample
};

} // namespace nisqpp

#endif // NISQPP_STREAM_TELEMETRY_HH
