#include "stream/telemetry.hh"

#include "common/logging.hh"

namespace nisqpp {

double
percentileFromHistogram(const Histogram &hist, double q)
{
    require(q >= 0.0 && q <= 1.0,
            "percentileFromHistogram: q outside [0, 1]");
    const std::size_t total = hist.total();
    if (total == 0)
        return 0.0;
    // Smallest value v with P(X <= v) >= q, walking the exact bins.
    const double target = q * static_cast<double>(total);
    std::size_t cumulative = 0;
    for (std::size_t i = 0; i < hist.numBins(); ++i) {
        cumulative += hist.bin(i);
        if (static_cast<double>(cumulative) >= target)
            return static_cast<double>(i);
    }
    return static_cast<double>(hist.numBins());
}

} // namespace nisqpp
