/**
 * @file
 * Bounded-capacity syndrome round queue of the streaming pipeline
 * (paper Section III): the producer emits one round per syndrome cycle,
 * the decoder consumer drains rounds in FIFO order at whatever rate its
 * latency model allows. The fast ring models the decoder's finite
 * on-chip buffering; rounds arriving while it is full spill to an
 * unbounded overflow ledger (slow memory in a real system) and are
 * counted, so backlog accounting stays exact while the fast queue's
 * depth stays bounded.
 */

#ifndef NISQPP_STREAM_STREAM_QUEUE_HH
#define NISQPP_STREAM_STREAM_QUEUE_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace nisqpp {

/** Timing record of one produced syndrome round awaiting decode. */
struct StreamRound
{
    std::size_t round = 0;  ///< producer round index (FIFO key)
    double arriveNs = 0.0;  ///< simulated clock at production
    double serviceNs = 0.0; ///< modeled decode time for this round
    /**
     * Second delivery of an already-queued round (fault injection):
     * the consumer discards it by sequence number, so it occupies a
     * queue slot but contributes no completion or sojourn statistics.
     */
    bool duplicate = false;
};

/**
 * FIFO of pending syndrome rounds: a fixed-capacity ring (the fast
 * queue) backed by a spill ledger. push() never fails; rounds that do
 * not fit the ring are spilled and promoted back into the ring as
 * earlier rounds are popped, so pop order is always global round order.
 */
class StreamQueue
{
  public:
    explicit StreamQueue(std::size_t capacity)
        : ring_(capacity ? capacity : 1), capacity_(ring_.size())
    {}

    bool empty() const { return count_ == 0 && spillCount() == 0; }

    /** Rounds currently held in the bounded fast ring. */
    std::size_t fastDepth() const { return count_; }

    /** Rounds currently spilled past the ring's capacity. */
    std::size_t spillDepth() const { return spillCount(); }

    /** Total pending rounds (fast + spilled). */
    std::size_t depth() const { return count_ + spillCount(); }

    std::size_t capacity() const { return capacity_; }

    /** Rounds that ever overflowed the fast ring. */
    std::size_t overflowCount() const { return overflow_; }

    /** Enqueue one produced round (spills when the ring is full). */
    void
    push(const StreamRound &entry)
    {
        if (spillCount() == 0 && count_ < capacity_) {
            ring_[(head_ + count_) % capacity_] = entry;
            ++count_;
            return;
        }
        ++overflow_;
        spill_.push_back(entry);
    }

    /** Oldest pending round; queue must be non-empty. */
    const StreamRound &
    front() const
    {
        require(!empty(), "StreamQueue::front on empty queue");
        // Spilled rounds only exist while the ring is full, so a
        // non-empty queue always has its oldest round in the ring; a
        // violation would silently read a stale ring slot.
        NISQPP_DCHECK(count_ > 0,
                      "StreamQueue::front: spill held rounds while the "
                      "fast ring was empty");
        return ring_[head_];
    }

    /** Drop the oldest round, promoting one spilled round if any. */
    void
    pop()
    {
        require(!empty(), "StreamQueue::pop on empty queue");
        NISQPP_DCHECK(count_ > 0,
                      "StreamQueue::pop: spill held rounds while the "
                      "fast ring was empty");
        head_ = (head_ + 1) % capacity_;
        --count_;
        if (spillCount() > 0) {
            ring_[(head_ + count_) % capacity_] = spill_[spillHead_];
            ++count_;
            ++spillHead_;
            // Reclaim the consumed prefix once it dominates the buffer
            // so long too-slow-decoder runs do not hold dead memory.
            if (spillHead_ > 1024 && spillHead_ * 2 > spill_.size()) {
                spill_.erase(spill_.begin(),
                             spill_.begin() +
                                 static_cast<std::ptrdiff_t>(spillHead_));
                spillHead_ = 0;
            }
        }
    }

  private:
    std::size_t spillCount() const { return spill_.size() - spillHead_; }

    std::vector<StreamRound> ring_;
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::vector<StreamRound> spill_;
    std::size_t spillHead_ = 0;
    std::size_t overflow_ = 0;
};

} // namespace nisqpp

#endif // NISQPP_STREAM_STREAM_QUEUE_HH
