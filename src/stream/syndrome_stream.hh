/**
 * @file
 * Syndrome producer of the streaming pipeline: emits one error-syndrome
 * round per syndrome cycle on a simulated wall clock, running the
 * paper's lifetime protocol physics (persistent error state, stochastic
 * injection each round). Extraction is perfect for models with
 * measurement flip rate q = 0 and noisy otherwise: each emitted round
 * is corrupted through ErrorModel::flipMeasurements, which is what
 * forces the windowed multi-round decoding regime the paper's
 * continuous-stream argument is about. The producer never waits for
 * the decoder — syndrome generation is a property of the quantum
 * hardware — which is exactly what creates backlog when the consumer
 * is too slow (paper Section III).
 */

#ifndef NISQPP_STREAM_SYNDROME_STREAM_HH
#define NISQPP_STREAM_SYNDROME_STREAM_HH

#include <cstdint>

#include "common/rng.hh"
#include "surface/error_model.hh"
#include "surface/error_state.hh"
#include "surface/syndrome.hh"

namespace nisqpp {

/**
 * Deterministic per-round syndrome source for one error family.
 * Successive emit() calls advance the simulated clock by one syndrome
 * cycle; the emitted syndrome reflects every error injected so far
 * composed with every correction applied to state() so far (the
 * lifetime protocol's closed loop).
 */
class SyndromeStream
{
  public:
    /**
     * @param lattice Lattice under test (shared, read-only).
     * @param model   Error channel sampled once per round.
     * @param type    Error family whose syndromes are streamed.
     * @param seed    Master seed; streams are exactly reproducible.
     * @param cycleNs Simulated syndrome generation cycle time.
     */
    SyndromeStream(const SurfaceLattice &lattice, const ErrorModel &model,
                   ErrorType type, std::uint64_t seed, double cycleNs);

    /**
     * Inject one round of errors and extract its *measured* syndrome
     * (readout flips applied at the model's rate q; none drawn when
     * q = 0). The returned reference stays valid until the next
     * emit().
     */
    const Syndrome &emit();

    /**
     * Extract the perfect (noise-free) syndrome of the current state
     * into @p out without advancing the stream: the commit/baseline
     * rounds of the windowed consumer.
     */
    void extractPerfectInto(Syndrome &out) const;

    /** Rounds emitted so far. */
    std::size_t roundsEmitted() const { return rounds_; }

    /** Simulated clock of the most recent emission. */
    double
    lastEmitNs() const
    {
        return rounds_ == 0 ? 0.0
                            : static_cast<double>(rounds_ - 1) * cycleNs_;
    }

    double cycleNs() const { return cycleNs_; }
    ErrorType type() const { return type_; }

    /**
     * The persistent error state; the consumer applies corrections
     * here so residuals are re-decoded next round.
     */
    ErrorState &state() { return state_; }
    const ErrorState &state() const { return state_; }

    const SurfaceLattice &lattice() const { return lattice_; }

  private:
    const SurfaceLattice &lattice_;
    const ErrorModel &model_;
    ErrorType type_;
    Rng rng_;
    double cycleNs_;
    ErrorState state_;
    Syndrome syndrome_;
    std::size_t rounds_ = 0;
};

} // namespace nisqpp

#endif // NISQPP_STREAM_SYNDROME_STREAM_HH
