/**
 * @file
 * Deterministic metric registry: named counters, max-gauges, and
 * integer-binned histograms with hierarchical dotted names
 * (`engine.trials`, `decoder.uf.growth_rounds`, `stream.queue.spills`).
 *
 * A MetricSet is a value type with merge semantics mirroring
 * MonteCarloResult::merge: counters add, gauges take the max, and
 * histograms add bin-wise. All three operations are commutative and
 * associative, so per-shard metric sets folded through the engine's
 * ordered prefix merge produce byte-identical aggregates at any
 * thread count. The only non-deterministic metrics are the ones in
 * the masked namespaces (`timing.*` wall-clock spans, `sched.*`
 * thread-pool/scheduler counters, and `ckpt.*` checkpoint bookkeeping,
 * which depends on when the run was interrupted); maskedName() is the
 * single authority on that split, and run reports emit masked names in
 * a separate section that goldens and determinism checks ignore.
 */

#ifndef NISQPP_OBS_METRICS_HH
#define NISQPP_OBS_METRICS_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>

#include "common/stats.hh"

namespace nisqpp::obs {

/**
 * True when @p name belongs to a namespace excluded from the
 * deterministic counter contract: `timing.*` (derived from the host
 * wall clock), `sched.*` (thread-pool scheduling events such as
 * steals, which legitimately vary run to run at N > 1 threads), and
 * `ckpt.*` (checkpoint bookkeeping, which depends on when and how
 * often the run was interrupted).
 */
bool maskedName(const std::string &name);

/**
 * A mergeable bag of named metrics. Not thread-safe: each shard owns
 * its set and the engine folds them on the collecting thread, exactly
 * like MonteCarloResult.
 */
class MetricSet
{
  public:
    /** Distribution metric: an integer histogram plus the raw sum. */
    struct HistogramEntry
    {
        Histogram hist{0};
        std::uint64_t sum = 0;
    };

    /** Bump counter @p name by @p delta (creates it at zero). */
    void add(const std::string &name, std::uint64_t delta = 1);

    /** Raise gauge @p name to @p value if larger (creates at 0). */
    void maxGauge(const std::string &name, std::uint64_t value);

    /**
     * Record one observation into histogram @p name. The histogram is
     * created on first use with bins [0, maxValue] plus an overflow
     * bin; later calls must pass the same @p maxValue.
     */
    void record(const std::string &name, std::size_t value,
                std::size_t maxValue);

    /**
     * Fold an externally accumulated histogram (plus its raw sum of
     * observations) into histogram @p name — the bulk counterpart of
     * record() used by decoders flushing per-shard work histograms.
     */
    void mergeHistogram(const std::string &name, const Histogram &hist,
                        std::uint64_t sum);

    /** Fold @p other in: counters add, gauges max, histograms add. */
    void merge(const MetricSet &other);

    /** Counter or gauge value; 0 when absent. */
    std::uint64_t value(const std::string &name) const;

    /** Histogram entry, or nullptr when absent. */
    const HistogramEntry *histogram(const std::string &name) const;

    bool empty() const
    {
        return scalars_.empty() && histograms_.empty();
    }

    /**
     * Emit the counters and gauges whose maskedName() equals
     * @p masked as one flat JSON object, keys in sorted order: the
     * run report's "counters" (masked == false) and "timing"
     * (masked == true) sections.
     */
    void writeScalarsJson(std::ostream &os, bool masked) const;

    /**
     * Emit every non-masked histogram as a JSON object keyed by
     * metric name, each with count/sum/overflow and sparse bins.
     */
    void writeHistogramsJson(std::ostream &os) const;

    /**
     * Visit every counter and gauge in sorted-name order (the
     * checkpoint serializer; masked names are the caller's problem).
     */
    void forEachScalar(
        const std::function<void(const std::string &name, bool isGauge,
                                 std::uint64_t value)> &fn) const;

    /** Visit every histogram entry in sorted-name order. */
    void forEachHistogram(
        const std::function<void(const std::string &name,
                                 const HistogramEntry &entry)> &fn) const;

  private:
    enum class Kind { Counter, Gauge };

    struct Scalar
    {
        Kind kind = Kind::Counter;
        std::uint64_t value = 0;
    };

    std::map<std::string, Scalar> scalars_;
    std::map<std::string, HistogramEntry> histograms_;
};

} // namespace nisqpp::obs

#endif // NISQPP_OBS_METRICS_HH
