/**
 * @file
 * Machine-readable run report: one versioned JSON document per
 * `nisqpp_run --metrics-out FILE` invocation, carrying the scenario
 * name, the effective run configuration, the deterministic counter
 * section (byte-identical across thread counts for a fixed seed —
 * the contract bench_compare pins in CI), the deterministic
 * histograms, and a separately-tagged "timing" section holding the
 * masked wall-clock/scheduler metrics.
 */

#ifndef NISQPP_OBS_REPORT_HH
#define NISQPP_OBS_REPORT_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace nisqpp::obs {

class MetricSet;

/** Document schema identifier and version written into every report. */
inline constexpr const char *kRunReportSchema = "nisqpp.run-report";
inline constexpr int kRunReportVersion = 1;

/** Effective configuration echoed into the report's "config" block. */
struct RunReportConfig
{
    std::string scenario;
    int threads = 1;
    std::size_t shardTrials = 512;
    double trialsScale = 1.0;
    std::uint64_t seed = 0;
    bool seedSet = false;
    std::size_t batchLanes = 1;
};

/**
 * Write the full report. Deterministic scalars land in "counters",
 * deterministic histograms in "histograms", and masked (timing.* /
 * sched.* / ckpt.*) scalars in "timing". Returns false when the
 * stream is bad after the final write + flush (ENOSPC, closed pipe):
 * callers must treat that as a failed — possibly truncated — report,
 * not silently accept it.
 */
[[nodiscard]] bool writeRunReport(std::ostream &os,
                                  const RunReportConfig &config,
                                  const MetricSet &metrics);

} // namespace nisqpp::obs

#endif // NISQPP_OBS_REPORT_HH
