#include "obs/report.hh"

#include <cstdio>
#include <ostream>

#include "obs/metrics.hh"

namespace nisqpp::obs {

namespace {

/** Shortest round-trippable decimal text for a double. */
std::string
doubleText(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

bool
writeRunReport(std::ostream &os, const RunReportConfig &config,
               const MetricSet &metrics)
{
    os << "{\"schema\":\"" << kRunReportSchema
       << "\",\"version\":" << kRunReportVersion
       << ",\"scenario\":\"" << config.scenario << '"';
    os << ",\"config\":{\"threads\":" << config.threads
       << ",\"shard_trials\":" << config.shardTrials
       << ",\"trials_scale\":" << doubleText(config.trialsScale)
       << ",\"seed\":" << config.seed
       << ",\"seed_set\":" << (config.seedSet ? "true" : "false")
       << ",\"batch_lanes\":" << config.batchLanes << '}';
    os << ",\"counters\":";
    metrics.writeScalarsJson(os, /*masked=*/false);
    os << ",\"histograms\":";
    metrics.writeHistogramsJson(os);
    os << ",\"timing\":";
    metrics.writeScalarsJson(os, /*masked=*/true);
    os << "}\n";
    // Flush and verify: a full disk or closed pipe surfaces here, not
    // at open time, and a truncated JSON report must not pass for a
    // successful run.
    os.flush();
    return static_cast<bool>(os);
}

} // namespace nisqpp::obs
