#include "obs/trace.hh"

#include <chrono>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/metrics.hh"

namespace nisqpp::obs {

namespace detail {
std::atomic<bool> g_timing{false};
std::atomic<bool> g_trace{false};
} // namespace detail

namespace {

constexpr int kStageCount = static_cast<int>(Stage::Count);

/** log2(ns) bins: bin b holds durations in [2^b, 2^(b+1)) ns. */
constexpr int kLogBins = 40;

struct StageAgg
{
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> totalNs{0};
    std::atomic<std::uint64_t> maxNs{0};
    std::atomic<std::uint64_t> bins[kLogBins]{};
};

StageAgg g_agg[kStageCount];

struct TraceEvent
{
    Stage stage;
    std::uint64_t startNs;
    std::uint64_t durNs;
    int tid;
};

constexpr std::size_t kMaxTraceEvents = 1u << 20;

std::mutex g_traceMutex;
std::vector<TraceEvent> g_events;
std::size_t g_dropped = 0;

std::atomic<int> g_nextTid{0};

int
traceTid()
{
    thread_local int tid = g_nextTid.fetch_add(1);
    return tid;
}

int
log2Bin(std::uint64_t ns)
{
    int bin = 0;
    while (ns > 1 && bin < kLogBins - 1) {
        ns >>= 1;
        ++bin;
    }
    return bin;
}

void
atomicMax(std::atomic<std::uint64_t> &slot, std::uint64_t value)
{
    std::uint64_t seen = slot.load(std::memory_order_relaxed);
    while (seen < value &&
           !slot.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed))
        ;
}

/** Upper bound of the first bin whose cumulative mass reaches q. */
std::uint64_t
percentileUpperBound(const StageAgg &agg, double q)
{
    const std::uint64_t total =
        agg.count.load(std::memory_order_relaxed);
    if (total == 0)
        return 0;
    const double target = q * static_cast<double>(total);
    std::uint64_t cumulative = 0;
    for (int b = 0; b < kLogBins; ++b) {
        cumulative += agg.bins[b].load(std::memory_order_relaxed);
        if (static_cast<double>(cumulative) >= target)
            return std::uint64_t{1} << (b + 1);
    }
    return agg.maxNs.load(std::memory_order_relaxed);
}

} // namespace

namespace detail {

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
recordSpan(Stage stage, std::uint64_t startNs, std::uint64_t endNs)
{
    const std::uint64_t dur = endNs > startNs ? endNs - startNs : 0;
    if (g_timing.load(std::memory_order_relaxed)) {
        StageAgg &agg = g_agg[static_cast<int>(stage)];
        agg.count.fetch_add(1, std::memory_order_relaxed);
        agg.totalNs.fetch_add(dur, std::memory_order_relaxed);
        atomicMax(agg.maxNs, dur);
        agg.bins[log2Bin(dur)].fetch_add(1,
                                         std::memory_order_relaxed);
    }
    if (g_trace.load(std::memory_order_relaxed)) {
        const int tid = traceTid();
        std::lock_guard<std::mutex> lock(g_traceMutex);
        if (g_events.size() < kMaxTraceEvents)
            g_events.push_back(TraceEvent{stage, startNs, dur, tid});
        else
            ++g_dropped;
    }
}

} // namespace detail

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Sample: return "sample";
      case Stage::Extract: return "extract";
      case Stage::Decode: return "decode";
      case Stage::Classify: return "classify";
      case Stage::Shard: return "shard";
      case Stage::StreamProduce: return "stream_produce";
      case Stage::StreamDecode: return "stream_decode";
      case Stage::StreamCommit: return "stream_commit";
      case Stage::StreamRecover: return "stream_recover";
      case Stage::Count: break;
    }
    return "unknown";
}

void
setTimingCollection(bool enabled)
{
    detail::g_timing.store(enabled, std::memory_order_relaxed);
}

bool
timingCollection()
{
    return detail::g_timing.load(std::memory_order_relaxed);
}

void
setTraceCapture(bool enabled)
{
    detail::g_trace.store(enabled, std::memory_order_relaxed);
}

bool
traceCapture()
{
    return detail::g_trace.load(std::memory_order_relaxed);
}

void
resetStageTimes()
{
    for (StageAgg &agg : g_agg) {
        agg.count.store(0, std::memory_order_relaxed);
        agg.totalNs.store(0, std::memory_order_relaxed);
        agg.maxNs.store(0, std::memory_order_relaxed);
        for (auto &bin : agg.bins)
            bin.store(0, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(g_traceMutex);
    g_events.clear();
    g_dropped = 0;
}

StageTiming
stageTiming(Stage stage)
{
    const StageAgg &agg = g_agg[static_cast<int>(stage)];
    StageTiming out;
    out.count = agg.count.load(std::memory_order_relaxed);
    out.totalNs = agg.totalNs.load(std::memory_order_relaxed);
    out.maxNs = agg.maxNs.load(std::memory_order_relaxed);
    out.p50Ns = percentileUpperBound(agg, 0.50);
    out.p99Ns = percentileUpperBound(agg, 0.99);
    return out;
}

void
stageTimingInto(MetricSet &out)
{
    for (int s = 0; s < kStageCount; ++s) {
        const StageTiming t = stageTiming(static_cast<Stage>(s));
        if (t.count == 0)
            continue;
        const std::string prefix =
            std::string("timing.span.") +
            stageName(static_cast<Stage>(s));
        out.add(prefix + ".count", t.count);
        out.add(prefix + ".total_ns", t.totalNs);
        out.maxGauge(prefix + ".max_ns", t.maxNs);
        out.maxGauge(prefix + ".p50_ns", t.p50Ns);
        out.maxGauge(prefix + ".p99_ns", t.p99Ns);
    }
}

std::size_t
traceEventCount()
{
    std::lock_guard<std::mutex> lock(g_traceMutex);
    return g_events.size();
}

std::size_t
traceDroppedCount()
{
    std::lock_guard<std::mutex> lock(g_traceMutex);
    return g_dropped;
}

bool
writeChromeTrace(std::ostream &os)
{
    std::lock_guard<std::mutex> lock(g_traceMutex);
    // Timestamps are steady-clock nanoseconds; rebase to the first
    // captured event so the microsecond values stay small enough to
    // print with sub-µs detail.
    std::uint64_t base = ~std::uint64_t{0};
    for (const TraceEvent &e : g_events)
        base = e.startNs < base ? e.startNs : base;
    const std::ios_base::fmtflags flags = os.flags();
    const std::streamsize precision = os.precision();
    os << std::fixed << std::setprecision(3);
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &e : g_events) {
        if (!first)
            os << ',';
        first = false;
        // chrome://tracing expects microseconds; keep sub-µs detail
        // by emitting fractional values.
        os << "{\"name\":\"" << stageName(e.stage)
           << "\",\"ph\":\"X\",\"ts\":"
           << static_cast<double>(e.startNs - base) / 1000.0
           << ",\"dur\":" << static_cast<double>(e.durNs) / 1000.0
           << ",\"pid\":0,\"tid\":" << e.tid << '}';
    }
    os << "],\"displayTimeUnit\":\"ns\"";
    if (g_dropped)
        os << ",\"nisqppDroppedEvents\":" << g_dropped;
    os << "}\n";
    os.flags(flags);
    os.precision(precision);
    os.flush();
    return static_cast<bool>(os);
}

} // namespace nisqpp::obs
