/**
 * @file
 * Scoped stage timers for the hot pipeline stages plus an optional
 * chrome://tracing event capture. TraceSpan costs one relaxed atomic
 * load and a predictable branch when collection is disabled, so the
 * instrumentation can stay compiled into the hot paths permanently.
 *
 * Aggregation is process-global: each stage keeps atomic count /
 * total-ns / max-ns plus log2(ns) bins, and stageTimingInto() renders
 * the aggregate into `timing.span.*` metrics — a masked namespace,
 * because everything here is host wall clock. The chrome trace buffer
 * is bounded; events past the cap are counted and dropped.
 */

#ifndef NISQPP_OBS_TRACE_HH
#define NISQPP_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>

namespace nisqpp::obs {

class MetricSet;

/** Pipeline stages wrapped by TraceSpan across the codebase. */
enum class Stage : int {
    Sample,        ///< noise-model sampling (LifetimeSimulator)
    Extract,       ///< syndrome extraction
    Decode,        ///< decoder invocation
    Classify,      ///< residual-error classification
    Shard,         ///< whole-shard execution in the engine
    StreamProduce, ///< syndrome emission in runStream
    StreamDecode,  ///< decode call in runStream
    StreamCommit,  ///< correction apply + parity in runStream
    StreamRecover, ///< transport-fault recovery in runStream
    Count
};

/** Stable lowercase name used in metric names and trace events. */
const char *stageName(Stage stage);

/** Master switch for span aggregation (off by default). */
void setTimingCollection(bool enabled);
bool timingCollection();

/** Switch for chrome trace event capture (off by default). */
void setTraceCapture(bool enabled);
bool traceCapture();

/** Clear every stage aggregate and the trace event buffer. */
void resetStageTimes();

namespace detail {
extern std::atomic<bool> g_timing;
extern std::atomic<bool> g_trace;
void recordSpan(Stage stage, std::uint64_t startNs,
                std::uint64_t endNs);
std::uint64_t nowNs();
} // namespace detail

/**
 * RAII stage timer. Construct at stage entry; the destructor folds
 * the elapsed time into the stage aggregate and, when trace capture
 * is on, appends a chrome trace event.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(Stage stage) : stage_(stage)
    {
        if (detail::g_timing.load(std::memory_order_relaxed) ||
            detail::g_trace.load(std::memory_order_relaxed))
            startNs_ = detail::nowNs();
    }

    ~TraceSpan()
    {
        if (startNs_)
            detail::recordSpan(stage_, startNs_, detail::nowNs());
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    Stage stage_;
    std::uint64_t startNs_ = 0;
};

/** One stage's aggregate since the last resetStageTimes(). */
struct StageTiming
{
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t maxNs = 0;
    std::uint64_t p50Ns = 0; ///< upper bound of the median log2 bin
    std::uint64_t p99Ns = 0; ///< upper bound of the p99 log2 bin
};

StageTiming stageTiming(Stage stage);

/**
 * Render every nonzero stage aggregate into @p out as
 * `timing.span.<stage>.{count,total_ns,max_ns,p50_ns,p99_ns}`.
 */
void stageTimingInto(MetricSet &out);

/** Number of captured (resp. dropped past the cap) trace events. */
std::size_t traceEventCount();
std::size_t traceDroppedCount();

/**
 * Write the captured events as a chrome://tracing JSON document
 * (load via chrome://tracing or https://ui.perfetto.dev). Returns
 * false when the stream is bad after the final write + flush (ENOSPC,
 * short write): the dump is truncated and the caller must report it.
 */
[[nodiscard]] bool writeChromeTrace(std::ostream &os);

} // namespace nisqpp::obs

#endif // NISQPP_OBS_TRACE_HH
