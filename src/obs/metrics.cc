#include "obs/metrics.hh"

#include <ostream>

#include "common/logging.hh"

namespace nisqpp::obs {

bool
maskedName(const std::string &name)
{
    return name.rfind("timing.", 0) == 0 ||
           name.rfind("sched.", 0) == 0 ||
           name.rfind("ckpt.", 0) == 0;
}

void
MetricSet::add(const std::string &name, std::uint64_t delta)
{
    Scalar &s = scalars_[name];
    require(s.kind == Kind::Counter,
            "MetricSet: counter/gauge kind clash on " + name);
    s.value += delta;
}

void
MetricSet::maxGauge(const std::string &name, std::uint64_t value)
{
    auto [it, inserted] = scalars_.emplace(name, Scalar{});
    Scalar &s = it->second;
    if (inserted) {
        s.kind = Kind::Gauge;
        s.value = value;
        return;
    }
    require(s.kind == Kind::Gauge,
            "MetricSet: counter/gauge kind clash on " + name);
    if (value > s.value)
        s.value = value;
}

void
MetricSet::record(const std::string &name, std::size_t value,
                  std::size_t maxValue)
{
    auto [it, inserted] = histograms_.emplace(name, HistogramEntry{});
    HistogramEntry &entry = it->second;
    if (inserted)
        entry.hist = Histogram(maxValue);
    entry.hist.add(value);
    entry.sum += static_cast<std::uint64_t>(value);
}

void
MetricSet::mergeHistogram(const std::string &name,
                          const Histogram &hist, std::uint64_t sum)
{
    auto [it, inserted] = histograms_.emplace(name, HistogramEntry{});
    if (inserted)
        it->second.hist = hist;
    else
        it->second.hist.merge(hist);
    it->second.sum += sum;
}

void
MetricSet::merge(const MetricSet &other)
{
    for (const auto &[name, theirs] : other.scalars_) {
        auto [it, inserted] = scalars_.emplace(name, theirs);
        if (inserted)
            continue;
        Scalar &mine = it->second;
        require(mine.kind == theirs.kind,
                "MetricSet: counter/gauge kind clash on " + name);
        if (mine.kind == Kind::Counter)
            mine.value += theirs.value;
        else if (theirs.value > mine.value)
            mine.value = theirs.value;
    }
    for (const auto &[name, theirs] : other.histograms_) {
        auto [it, inserted] = histograms_.emplace(name, theirs);
        if (inserted)
            continue;
        it->second.hist.merge(theirs.hist);
        it->second.sum += theirs.sum;
    }
}

std::uint64_t
MetricSet::value(const std::string &name) const
{
    const auto it = scalars_.find(name);
    return it == scalars_.end() ? 0 : it->second.value;
}

const MetricSet::HistogramEntry *
MetricSet::histogram(const std::string &name) const
{
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
MetricSet::forEachScalar(
    const std::function<void(const std::string &, bool, std::uint64_t)>
        &fn) const
{
    for (const auto &[name, scalar] : scalars_)
        fn(name, scalar.kind == Kind::Gauge, scalar.value);
}

void
MetricSet::forEachHistogram(
    const std::function<void(const std::string &, const HistogramEntry &)>
        &fn) const
{
    for (const auto &[name, entry] : histograms_)
        fn(name, entry);
}

void
MetricSet::writeScalarsJson(std::ostream &os, bool masked) const
{
    os << '{';
    bool first = true;
    for (const auto &[name, scalar] : scalars_) {
        if (maskedName(name) != masked)
            continue;
        if (!first)
            os << ',';
        first = false;
        os << '"' << name << "\":" << scalar.value;
    }
    os << '}';
}

void
MetricSet::writeHistogramsJson(std::ostream &os) const
{
    os << '{';
    bool first = true;
    for (const auto &[name, entry] : histograms_) {
        if (maskedName(name))
            continue;
        if (!first)
            os << ',';
        first = false;
        os << '"' << name << "\":{\"count\":" << entry.hist.total()
           << ",\"sum\":" << entry.sum
           << ",\"overflow\":" << entry.hist.overflow()
           << ",\"bins\":{";
        bool firstBin = true;
        for (std::size_t b = 0; b < entry.hist.numBins(); ++b) {
            if (entry.hist.bin(b) == 0)
                continue;
            if (!firstBin)
                os << ',';
            firstBin = false;
            os << '"' << b << "\":" << entry.hist.bin(b);
        }
        os << "}}";
    }
    os << '}';
}

} // namespace nisqpp::obs
