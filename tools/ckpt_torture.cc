/**
 * @file
 * Kill→resume→compare torture loop for the checkpoint subsystem: the
 * executable proof that a sweep interrupted at an arbitrary write —
 * including a torn, half-flushed write — resumes to output
 * byte-identical with a run that was never interrupted.
 *
 *   ckpt_torture --run BIN --scenario NAME --dir DIR [--threads N]
 *                [--seed S] [--trials-scale X] [--shard-trials N]
 *                [--interval N] [--max-iters N]
 *
 * The harness first records a golden run (single-threaded, no
 * checkpointing): the CSV stdout and the --metrics-out run report.
 * It then loops a checkpointed run of the same scenario at --threads N
 * under NISQPP_FAULT_INJECT, iteration i dying at write i+1 (every
 * third iteration tears the write mid-stream instead of completing
 * it), resuming from the surviving checkpoint each time, until one
 * resume runs to completion. Because end-of-invocation writes always
 * happen and kill mode finishes its write before exiting, the frontier
 * the checkpoint records grows monotonically with i, so the loop
 * terminates.
 *
 * Hard failures: any exit status other than 0 (done) or 87 (fault
 * fired); a loop that completes without a single injected fault; any
 * byte difference between the golden CSV and the final resumed CSV;
 * any byte difference between the deterministic counters/histograms
 * sections of the golden and final run reports. Exit 0 = survived.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#ifndef _WIN32
#include <sys/wait.h>
#endif

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " --run BIN --scenario NAME --dir DIR [--threads N]"
                 " [--seed S] [--trials-scale X] [--shard-trials N]"
                 " [--interval N] [--max-iters N]\n";
    std::exit(2);
}

[[noreturn]] void
fail(const std::string &what)
{
    std::cerr << "ckpt_torture: FAIL: " << what << "\n";
    std::exit(1);
}

/**
 * Strict positive-integer flag parse: the whole token must be digits
 * (atoi-style partial parses silently turned "4abc" into 4 and "abc"
 * into 0, making typos indistinguishable from real settings).
 */
int
positiveIntValue(const std::string &flag, const std::string &text)
{
    char *end = nullptr;
    errno = 0;
    const long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        v < 1 || v > 1000000)
        fail(flag + ": expected a positive integer, got '" + text +
             "'");
    return static_cast<int>(v);
}

/** Single-quote @p s for POSIX sh. */
std::string
shellQuote(const std::string &s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

/**
 * Run @p command through the shell; returns the child's exit status,
 * failing hard when it died to an unexpected signal.
 */
int
runCommand(const std::string &command)
{
    const int raw = std::system(command.c_str());
    if (raw == -1)
        fail("system() failed for: " + command);
#ifdef _WIN32
    return raw;
#else
    if (WIFSIGNALED(raw))
        fail("child killed by signal " +
             std::to_string(WTERMSIG(raw)) + ": " + command);
    if (!WIFEXITED(raw))
        fail("child did not exit normally: " + command);
    return WEXITSTATUS(raw);
#endif
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        fail("cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/**
 * The deterministic slice of a --metrics-out run report: everything
 * from the "counters" object through the start of the masked "timing"
 * section. The masked tail (wall-clock spans, pool scheduling,
 * checkpoint bookkeeping) legitimately differs between a golden run
 * and a torn-and-resumed one, so it is excluded from the comparison.
 */
std::string
deterministicSlice(const std::string &report, const std::string &path)
{
    const std::string from = "\"counters\":";
    const std::string to = ",\"timing\":";
    const std::size_t begin = report.find(from);
    const std::size_t end = report.find(to);
    if (begin == std::string::npos || end == std::string::npos ||
        end <= begin)
        fail(path + " is not a run report (no counters/timing "
                    "sections)");
    return report.substr(begin, end - begin);
}

struct Options
{
    std::string runBinary;
    std::string scenario;
    std::string dir;
    int threads = 2;
    std::string seed;        ///< forwarded verbatim when non-empty
    std::string trialsScale; ///< forwarded verbatim when non-empty
    std::string shardTrials; ///< forwarded verbatim when non-empty
    int interval = 4;
    int maxIters = 200;
};

Options
parseOptions(int argc, char **argv)
{
    Options opt;
    auto value = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--run")
            opt.runBinary = value(i);
        else if (arg == "--scenario")
            opt.scenario = value(i);
        else if (arg == "--dir")
            opt.dir = value(i);
        else if (arg == "--threads")
            opt.threads = positiveIntValue(arg, value(i));
        else if (arg == "--seed")
            opt.seed = value(i);
        else if (arg == "--trials-scale")
            opt.trialsScale = value(i);
        else if (arg == "--shard-trials")
            opt.shardTrials = value(i);
        else if (arg == "--interval")
            opt.interval = positiveIntValue(arg, value(i));
        else if (arg == "--max-iters")
            opt.maxIters = positiveIntValue(arg, value(i));
        else
            usage(argv[0]);
    }
    if (opt.runBinary.empty() || opt.scenario.empty() ||
        opt.dir.empty() || opt.threads < 1 || opt.interval < 1 ||
        opt.maxIters < 1)
        usage(argv[0]);
    return opt;
}

/** Shared flag tail: scenario, determinism knobs, CSV output. */
std::string
commonArgs(const Options &opt)
{
    std::string args = shellQuote(opt.scenario) + " --format csv";
    if (!opt.seed.empty())
        args += " --seed " + shellQuote(opt.seed);
    if (!opt.trialsScale.empty())
        args += " --trials-scale " + shellQuote(opt.trialsScale);
    if (!opt.shardTrials.empty())
        args += " --shard-trials " + shellQuote(opt.shardTrials);
    return args;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseOptions(argc, argv);

    const std::string bin = shellQuote(opt.runBinary);
    const std::string ckptPath = opt.dir + "/torture.ckpt";
    const std::string goldenCsv = opt.dir + "/golden.csv";
    const std::string goldenReport = opt.dir + "/golden.json";
    const std::string iterCsv = opt.dir + "/iter.csv";
    const std::string iterReport = opt.dir + "/iter.json";
    const std::string iterErr = opt.dir + "/iter.err";

    std::remove(ckptPath.c_str());
    std::remove((ckptPath + ".tmp").c_str());

    // Golden reference: single-threaded, never checkpointed, never
    // interrupted. Everything the torture loop produces must converge
    // to these bytes.
    const std::string goldenCmd =
        bin + " " + commonArgs(opt) + " --threads 1 --metrics-out " +
        shellQuote(goldenReport) + " > " + shellQuote(goldenCsv) +
        " 2> " + shellQuote(opt.dir + "/golden.err");
    std::cout << "ckpt_torture: recording golden run ("
              << opt.scenario << ", 1 thread)\n";
    if (const int rc = runCommand(goldenCmd); rc != 0)
        fail("golden run exited " + std::to_string(rc) + "; see " +
             opt.dir + "/golden.err");

    int kills = 0;
    int tears = 0;
    bool done = false;
    for (int iter = 0; iter < opt.maxIters && !done; ++iter) {
        // Iteration i dies at the (i+1)-th checkpoint write; every
        // third iteration tears that write mid-stream instead of
        // completing it. Both modes exit 87.
        const bool tear = iter % 3 == 2;
        const std::string plan =
            (tear ? std::string("tear-after=")
                  : std::string("kill-after=")) +
            std::to_string(iter + 1);

        std::string cmd = "NISQPP_FAULT_INJECT=" + shellQuote(plan) +
                          " " + bin + " " + commonArgs(opt) +
                          " --threads " + std::to_string(opt.threads) +
                          " --checkpoint-interval " +
                          std::to_string(opt.interval);
        std::ifstream probe(ckptPath);
        if (probe.good())
            cmd += " --resume " + shellQuote(ckptPath);
        else
            cmd += " --checkpoint " + shellQuote(ckptPath);
        cmd += " --metrics-out " + shellQuote(iterReport) + " > " +
               shellQuote(iterCsv) + " 2> " + shellQuote(iterErr);

        const int rc = runCommand(cmd);
        if (rc == 0) {
            done = true;
            std::cout << "ckpt_torture: iteration " << iter << " ("
                      << plan << ") ran to completion\n";
        } else if (rc == 87) {
            tear ? ++tears : ++kills;
            std::cout << "ckpt_torture: iteration " << iter << " ("
                      << plan << ") killed as planned\n";
        } else {
            fail("iteration " + std::to_string(iter) + " (" + plan +
                 ") exited " + std::to_string(rc) +
                 " (want 0 or 87); see " + iterErr);
        }
    }

    if (!done)
        fail("no iteration ran to completion within " +
             std::to_string(opt.maxIters) + " attempts");
    if (kills + tears == 0)
        fail("the run completed before any fault fired; the torture "
             "loop proved nothing (shrink --interval or grow the "
             "trial budget)");

    const std::string golden = readFile(goldenCsv);
    const std::string resumed = readFile(iterCsv);
    if (golden != resumed)
        fail("resumed CSV differs from the golden run: diff " +
             goldenCsv + " " + iterCsv);

    const std::string goldenDet =
        deterministicSlice(readFile(goldenReport), goldenReport);
    const std::string resumedDet =
        deterministicSlice(readFile(iterReport), iterReport);
    if (goldenDet != resumedDet)
        fail("resumed run report counters/histograms differ from the "
             "golden run: diff " + goldenReport + " " + iterReport);

    std::cout << "ckpt_torture: PASS — survived " << kills
              << " kill(s) and " << tears
              << " torn write(s); resumed output byte-identical to "
                 "the golden run.\n";
    return 0;
}
