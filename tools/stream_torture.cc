/**
 * @file
 * Randomized fault-plan torture harness for the streaming pipeline:
 * the executable proof that fault injection plus every recovery policy
 * combination preserves the pipeline's core invariants.
 *
 *   stream_torture [--plans N] [--seed S]
 *
 * Each plan draws a random operating point (distance, cycle time,
 * horizon, fault mix, recovery policy combo, decoder — including the
 * tiered decoder under a decode deadline) from a seeded generator and
 * runs it through runStream twice, asserting per plan:
 *
 *   1. completion — the run returns (a deadlock would hang the
 *      harness into the ctest timeout);
 *   2. conservation — every produced round is accounted for exactly
 *      once: rounds == decoded + carried + lost + shed + merged, and
 *      dedupRounds == duplicates injected;
 *   3. monotone virtual clock — no completion time ran backwards, and
 *      the drain time is non-negative;
 *   4. determinism — the second run's full result fingerprint
 *      (counters and exact double bit patterns) is byte-identical.
 *
 * A final cross-check runs the fault_sweep scenario at --threads 1 and
 * --threads 4 and requires byte-identical CSV output, pinning the
 * thread-count invariance of the whole scenario fold. Exit 0 = all
 * plans survived; any violation prints the offending plan's parameters
 * and exits 1.
 */

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/rng.hh"
#include "core/mesh_config.hh"
#include "decoders/decoder.hh"
#include "engine/scenario.hh"
#include "faults/fault_plan.hh"
#include "sim/experiment.hh"
#include "stream/stream_sim.hh"
#include "surface/lattice.hh"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0 << " [--plans N] [--seed S]\n";
    std::exit(2);
}

[[noreturn]] void
fail(const std::string &what)
{
    std::cerr << "stream_torture: FAIL: " << what << "\n";
    std::exit(1);
}

/** Strict whole-token unsigned parse (no atoi partial-parse traps). */
std::uint64_t
unsignedValue(const std::string &flag, const std::string &text)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        fail(flag + ": expected an unsigned integer, got '" + text +
             "'");
    return static_cast<std::uint64_t>(v);
}

/** One randomized operating point: everything runStream consumes. */
struct Plan
{
    int distance = 3;
    std::string decoder; ///< family name, or "tiered"
    nisqpp::StreamConfig config;
};

/** Draw a random fault spec + recovery policy combo from @p rng. */
Plan
drawPlan(nisqpp::Rng &rng)
{
    using nisqpp::faults::RecoveryPolicy;
    using nisqpp::faults::ShedMode;

    Plan plan;
    plan.distance = rng.bernoulli(0.5) ? 3 : 5;

    const char *decoders[] = {"union_find", "greedy", "mwpm", "tiered"};
    plan.decoder = decoders[rng.uniformInt(4)];

    nisqpp::StreamConfig &config = plan.config;
    config.physicalRate = 0.02 + 0.06 * rng.uniform();
    config.syndromeCycleNs = rng.bernoulli(0.5) ? 400.0 : 1000.0;
    config.rounds = 400 + rng.uniformInt(401);
    config.seed = rng.next();
    config.latency =
        plan.decoder == "tiered"
            ? nisqpp::StreamLatencyModel::tiered("union_find",
                                                 plan.distance)
            : nisqpp::StreamLatencyModel::forFamily(plan.decoder,
                                                    plan.distance);

    nisqpp::faults::FaultSpec &spec = config.faults;
    spec.dropRate = 0.25 * rng.uniform();
    spec.corruptRate = 0.25 * rng.uniform();
    spec.duplicateRate = 0.2 * rng.uniform();
    spec.delayRate = 0.25 * rng.uniform();
    spec.delayCycles = 1 + rng.uniformInt(8);
    spec.stallRate = 0.25 * rng.uniform();
    spec.stallFactor = 1.0 + 7.0 * rng.uniform();
    spec.decodeFailRate = 0.1 * rng.uniform();
    spec.seed = rng.next();

    RecoveryPolicy &policy = config.recovery;
    policy.parityRetransmit = rng.bernoulli(0.5);
    policy.maxRetransmits = 1 + rng.uniformInt(4);
    policy.retransmitNs = 50.0 + 200.0 * rng.uniform();
    policy.carryForward = rng.bernoulli(0.5);
    // The deadline policy only bites on the tiered decoder (it commits
    // the provisional mesh answer), but must be harmless on any.
    if (rng.bernoulli(0.5))
        policy.deadlineNs = 300.0 + 1200.0 * rng.uniform();
    if (rng.bernoulli(0.5)) {
        policy.shedThreshold = 4 + rng.uniformInt(29);
        policy.shedMode = rng.bernoulli(0.5) ? ShedMode::DropOldest
                                             : ShedMode::XorMerge;
        policy.mergeNs = 10.0 + 40.0 * rng.uniform();
    }
    return plan;
}

std::string
describe(const Plan &plan)
{
    const nisqpp::StreamConfig &c = plan.config;
    std::ostringstream os;
    os << "d=" << plan.distance << " decoder=" << plan.decoder
       << " rounds=" << c.rounds << " seed=" << c.seed
       << " fault-seed=" << c.faults.seed
       << " drop=" << c.faults.dropRate
       << " corrupt=" << c.faults.corruptRate
       << " dup=" << c.faults.duplicateRate
       << " delay=" << c.faults.delayRate
       << " stall=" << c.faults.stallRate
       << " fail=" << c.faults.decodeFailRate
       << " retransmit=" << c.recovery.parityRetransmit
       << " carry=" << c.recovery.carryForward
       << " deadline=" << c.recovery.deadlineNs
       << " shed=" << c.recovery.shedThreshold;
    return os.str();
}

/** Exact (bit-level) textual fingerprint of a streaming result. */
std::string
fingerprint(const nisqpp::StreamingResult &r)
{
    const nisqpp::faults::FaultCounts &fc = r.faults;
    char buf[128];
    std::ostringstream os;
    auto hexDouble = [&](double v) {
        std::snprintf(buf, sizeof buf, "%a", v);
        os << buf << '\n';
    };
    os << r.rounds << '\n' << r.failures << '\n';
    hexDouble(r.logicalErrorRate);
    hexDouble(r.serviceNs.mean());
    hexDouble(r.sojournNs.mean());
    hexDouble(r.servicePercentiles.p99);
    hexDouble(r.drainNs);
    hexDouble(r.fEmpirical);
    os << r.maxQueueDepth << '\n'
       << r.maxBacklogRounds << '\n'
       << r.overflowRounds << '\n'
       << r.escalations << '\n'
       << r.repairs << '\n';
    os << fc.drops << ' ' << fc.corruptions << ' ' << fc.duplicates
       << ' ' << fc.delays << ' ' << fc.stalls << ' '
       << fc.decodeFailures << ' ' << fc.retransmits << ' '
       << fc.carriedForward << ' ' << fc.lostRounds << ' '
       << fc.corruptDecodes << ' ' << fc.deadlineCommits << ' '
       << fc.deadlineClamps << ' ' << fc.shedRounds << ' '
       << fc.mergedRounds << ' ' << fc.dedupRounds << ' '
       << fc.decodedRounds << '\n';
    return os.str();
}

nisqpp::StreamingResult
runPlan(const Plan &plan)
{
    // Fresh lattice + decoder per run: determinism must hold from
    // construction, not from reused warm state.
    nisqpp::SurfaceLattice lattice(plan.distance);
    nisqpp::StreamConfig config = plan.config;
    config.lattice = &lattice;
    std::unique_ptr<nisqpp::Decoder> decoder;
    if (plan.decoder == "tiered")
        decoder = nisqpp::tieredDecoderFactory(
            nisqpp::MeshConfig::finalDesign(), "union_find",
            0.9)(lattice, nisqpp::ErrorType::Z);
    else
        decoder = nisqpp::decoderFamilies()
                      [nisqpp::decoderFamilyIndex(plan.decoder)]
                          .factory(lattice, nisqpp::ErrorType::Z);
    return nisqpp::runStream(config, *decoder);
}

void
checkInvariants(const Plan &plan, const nisqpp::StreamingResult &r)
{
    const nisqpp::faults::FaultCounts &fc = r.faults;
    const std::uint64_t accounted = fc.decodedRounds +
                                    fc.carriedForward + fc.lostRounds +
                                    fc.shedRounds + fc.mergedRounds;
    if (accounted != static_cast<std::uint64_t>(r.rounds))
        fail("round conservation violated (" +
             std::to_string(accounted) + " accounted of " +
             std::to_string(r.rounds) + "): " + describe(plan));
    if (fc.dedupRounds != fc.duplicates)
        fail("duplicate ledger mismatch (dedup=" +
             std::to_string(fc.dedupRounds) +
             " injected=" + std::to_string(fc.duplicates) +
             "): " + describe(plan));
    if (!r.clockMonotone)
        fail("virtual clock ran backwards: " + describe(plan));
    if (!(r.drainNs >= 0.0))
        fail("negative drain time: " + describe(plan));
}

/** fault_sweep CSV at a given thread count (tiny trial scale). */
std::string
scenarioCsv(int threads)
{
    nisqpp::RunOptions options;
    options.format = nisqpp::OutputFormat::Csv;
    options.trialsScale = 0.05;
    options.seedSet = true;
    options.seed = 0x57a6eULL;
    options.threads = threads;
    std::ostringstream os;
    if (nisqpp::runScenario("fault_sweep", options, os) != 0)
        fail("fault_sweep scenario run failed at --threads " +
             std::to_string(threads));
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t plans = 25;
    std::uint64_t seed = 0x70a7eULL;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (i + 1 >= argc)
            usage(argv[0]);
        const std::string value = argv[++i];
        if (arg == "--plans") {
            plans = unsignedValue(arg, value);
            if (plans < 1 || plans > 100000)
                fail("--plans: expected 1..100000, got '" + value +
                     "'");
        } else if (arg == "--seed") {
            seed = unsignedValue(arg, value);
        } else {
            usage(argv[0]);
        }
    }

    nisqpp::Rng rng(seed);
    for (std::uint64_t i = 0; i < plans; ++i) {
        const Plan plan = drawPlan(rng);
        const nisqpp::StreamingResult first = runPlan(plan);
        checkInvariants(plan, first);
        const nisqpp::StreamingResult second = runPlan(plan);
        if (fingerprint(first) != fingerprint(second))
            fail("replay diverged: " + describe(plan));
        std::cout << "stream_torture: plan " << (i + 1) << "/" << plans
                  << " ok (" << describe(plan) << ")\n";
    }

    const std::string one = scenarioCsv(1);
    const std::string four = scenarioCsv(4);
    if (one != four)
        fail("fault_sweep CSV differs between --threads 1 and 4");
    std::cout << "stream_torture: fault_sweep thread-invariance ok\n";
    std::cout << "stream_torture: PASS (" << plans << " plans)\n";
    return 0;
}
