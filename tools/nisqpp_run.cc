/**
 * @file Unified experiment runner: dispatches any registered scenario
 * (every reproduced paper figure/table plus the decoder
 * microbenchmarks) through the sharded parallel engine.
 *
 *   nisqpp_run --list
 *   nisqpp_run --scenario fig10_final --threads 4 --seed 42
 *   nisqpp_run --scenario micro_decoders --threads 2 --format json
 */

#include "engine/scenario.hh"

int
main(int argc, char **argv)
{
    return nisqpp::nisqppRunMain(argc, argv);
}
