/**
 * @file
 * Guardrail for the tracked hot-path benchmark: diff two micro_hotpath
 * JSON artifacts (e.g. BENCH_hotpath.json against
 * bench/BENCH_hotpath_baseline.json, or a batching-on run against a
 * batching-off run).
 *
 *   bench_compare BASELINE.json CURRENT.json
 *
 * Physics columns are compared exactly: any PL or trial-count
 * difference on a (decoder, d) row present in both artifacts is a
 * hard failure — throughput work must never change trajectories.
 * Rows that exist only in the current artifact are reported as new;
 * rows that disappeared fail. As an internal consistency check, each
 * forced-batch row family of an artifact (sfq_mesh_batch,
 * union_find_batch) must carry byte-identical PL to that artifact's
 * scalar rows of the same decoder (the lane-packed paths re-decode
 * the same cells). Throughput columns are reported as speedup ratios,
 * never compared: they are host-dependent by nature.
 *
 * When both inputs are nisqpp.run-report documents (--metrics-out
 * output), the deterministic sections are diffed instead: every
 * "counters" entry and "histograms" entry must match byte for byte in
 * both directions (a missing, added or changed counter is drift). The
 * masked "timing" section is host-dependent and never compared.
 * Mixing a run report with a hotpath artifact is an input error.
 *
 * Exit code 0 = no drift; 1 = drift or malformed input.
 */

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace {

/** Minimal JSON document model (enough for scenario artifacts). */
struct JsonValue;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;
using JsonObject =
    std::vector<std::pair<std::string, std::shared_ptr<JsonValue>>>;

struct JsonValue
{
    std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
                 JsonObject>
        value;
    /**
     * Source text of a number token: counter diffs compare this, so
     * 64-bit counts never round-trip through double precision.
     */
    std::string raw{};

    const JsonValue *
    field(const std::string &key) const
    {
        if (const auto *obj = std::get_if<JsonObject>(&value))
            for (const auto &[k, v] : *obj)
                if (k == key)
                    return v.get();
        return nullptr;
    }
};

/** Recursive-descent JSON parser; throws std::runtime_error. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing content");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON error at byte " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue{parseString()};
          case 't': return parseLiteral("true", JsonValue{true});
          case 'f': return parseLiteral("false", JsonValue{false});
          case 'n': return parseLiteral("null", JsonValue{nullptr});
          default: return parseNumber();
        }
    }

    JsonValue
    parseLiteral(const std::string &word, JsonValue v)
    {
        if (text_.compare(pos_, word.size(), word) != 0)
            fail("bad literal");
        pos_ += word.size();
        return v;
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a number");
        const std::string raw = text_.substr(start, pos_ - start);
        return JsonValue{std::stod(raw), raw};
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("bad escape");
                const char esc = text_[pos_++];
                switch (esc) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case '"': case '\\': case '/': out += esc; break;
                  default: fail("unsupported escape");
                }
            } else {
                out += c;
            }
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonArray items;
        if (peek() == ']') {
            ++pos_;
            return JsonValue{std::move(items)};
        }
        while (true) {
            items.push_back(
                std::make_shared<JsonValue>(parseValue()));
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return JsonValue{std::move(items)};
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonObject fields;
        if (peek() == '}') {
            ++pos_;
            return JsonValue{std::move(fields)};
        }
        while (true) {
            std::string key = parseString();
            expect(':');
            fields.emplace_back(
                std::move(key),
                std::make_shared<JsonValue>(parseValue()));
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return JsonValue{std::move(fields)};
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** One row of the hotpath table, keyed by (decoder, d). */
struct HotpathRow
{
    std::string trials;
    std::string pl;
    double trialsPerSec = 0.0;
};

using RowKey = std::pair<std::string, std::string>;

/** Read and parse one JSON artifact. */
JsonValue
parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in.good())
        throw std::runtime_error("cannot read " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    return JsonParser(text).parse();
}

/** Extract the "hotpath" table of one artifact into keyed rows. */
std::map<RowKey, HotpathRow>
loadHotpath(const std::string &path, const JsonValue &doc)
{
    const JsonValue *tables = doc.field("tables");
    const auto *list =
        tables ? std::get_if<JsonArray>(&tables->value) : nullptr;
    if (!list)
        throw std::runtime_error(path + ": no tables array");

    for (const auto &entry : *list) {
        const JsonValue *id = entry->field("id");
        const auto *name =
            id ? std::get_if<std::string>(&id->value) : nullptr;
        if (!name || *name != "hotpath")
            continue;
        const JsonValue *table = entry->field("table");
        const JsonValue *header =
            table ? table->field("header") : nullptr;
        const JsonValue *rows = table ? table->field("rows") : nullptr;
        const auto *headerCells =
            header ? std::get_if<JsonArray>(&header->value) : nullptr;
        const auto *rowList =
            rows ? std::get_if<JsonArray>(&rows->value) : nullptr;
        if (!headerCells || !rowList)
            throw std::runtime_error(path + ": malformed hotpath "
                                            "table");

        auto column = [&](const std::string &want) {
            for (std::size_t c = 0; c < headerCells->size(); ++c) {
                const auto *cell = std::get_if<std::string>(
                    &(*headerCells)[c]->value);
                if (cell && *cell == want)
                    return static_cast<int>(c);
            }
            throw std::runtime_error(path + ": hotpath table has no '" +
                                     want + "' column");
        };
        const int decoderCol = column("decoder");
        const int dCol = column("d");
        const int trialsCol = column("trials");
        const int plCol = column("PL");
        const int tpsCol = column("trials/s");

        std::map<RowKey, HotpathRow> out;
        for (const auto &rowVal : *rowList) {
            const auto *cells = std::get_if<JsonArray>(&rowVal->value);
            if (!cells)
                continue;
            auto text = [&](int c) -> std::string {
                if (c < 0 || c >= static_cast<int>(cells->size()))
                    return {};
                const auto *s = std::get_if<std::string>(
                    &(*cells)[static_cast<std::size_t>(c)]->value);
                return s ? *s : std::string();
            };
            HotpathRow row;
            row.trials = text(trialsCol);
            row.pl = text(plCol);
            try {
                row.trialsPerSec = std::stod(text(tpsCol));
            } catch (...) {
                row.trialsPerSec = 0.0;
            }
            out[{text(decoderCol), text(dCol)}] = row;
        }
        return out;
    }
    throw std::runtime_error(path + ": no table with id 'hotpath'");
}

/**
 * Forced-batch rows must mirror their scalar family's PL within one
 * artifact: the lane-packed paths re-decode the very same cells, so
 * any deviation is a lane-equivalence bug, not a measurement effect.
 */
int
checkInternalBatchParity(const std::map<RowKey, HotpathRow> &rows,
                         const std::string &label)
{
    static const std::pair<const char *, const char *> kPairs[] = {
        {"sfq_mesh_batch", "sfq_mesh"},
        {"union_find_batch", "union_find"},
    };
    int drift = 0;
    for (const auto &[batchName, scalarName] : kPairs) {
        for (const auto &[key, row] : rows) {
            if (key.first != batchName)
                continue;
            const auto scalarIt = rows.find({scalarName, key.second});
            if (scalarIt == rows.end())
                continue;
            if (row.pl != scalarIt->second.pl ||
                row.trials != scalarIt->second.trials) {
                std::cerr << "FAIL " << label << ": " << batchName
                          << " d=" << key.second << " PL=" << row.pl
                          << " trials=" << row.trials << " != "
                          << scalarName
                          << " PL=" << scalarIt->second.pl
                          << " trials=" << scalarIt->second.trials
                          << " (lane-equivalence drift)\n";
                ++drift;
            }
        }
    }
    return drift;
}

/** True when @p doc is a --metrics-out run report. */
bool
isRunReport(const JsonValue &doc)
{
    const JsonValue *schema = doc.field("schema");
    const auto *text =
        schema ? std::get_if<std::string>(&schema->value) : nullptr;
    return text && *text == "nisqpp.run-report";
}

/** Structural equality; numbers compare by source text (exact). */
bool
jsonEqual(const JsonValue &a, const JsonValue &b)
{
    if (a.value.index() != b.value.index())
        return false;
    if (std::holds_alternative<double>(a.value))
        return a.raw == b.raw;
    if (const auto *arr = std::get_if<JsonArray>(&a.value)) {
        const auto &other = std::get<JsonArray>(b.value);
        if (arr->size() != other.size())
            return false;
        for (std::size_t i = 0; i < arr->size(); ++i)
            if (!jsonEqual(*(*arr)[i], *other[i]))
                return false;
        return true;
    }
    if (const auto *obj = std::get_if<JsonObject>(&a.value)) {
        const auto &other = std::get<JsonObject>(b.value);
        if (obj->size() != other.size())
            return false;
        for (std::size_t i = 0; i < obj->size(); ++i)
            if ((*obj)[i].first != other[i].first ||
                !jsonEqual(*(*obj)[i].second, *other[i].second))
                return false;
        return true;
    }
    return a.value == b.value;
}

/** Short rendering of a leaf value for drift messages. */
std::string
jsonText(const JsonValue &v)
{
    if (!v.raw.empty())
        return v.raw;
    if (const auto *s = std::get_if<std::string>(&v.value))
        return *s;
    if (const auto *b = std::get_if<bool>(&v.value))
        return *b ? "true" : "false";
    return "<non-scalar>";
}

/**
 * Exact two-way diff of one deterministic section ("counters" or
 * "histograms") of two run reports. Every key must exist in both
 * documents with a byte-identical value; each violation is one drift.
 */
int
diffSection(const JsonValue &baseline, const JsonValue &current,
            const std::string &section)
{
    const JsonValue *baseVal = baseline.field(section);
    const JsonValue *curVal = current.field(section);
    const auto *base =
        baseVal ? std::get_if<JsonObject>(&baseVal->value) : nullptr;
    const auto *cur =
        curVal ? std::get_if<JsonObject>(&curVal->value) : nullptr;
    if (!base || !cur)
        throw std::runtime_error("run report lacks a '" + section +
                                 "' object");
    int drift = 0;
    for (const auto &[key, value] : *base) {
        const JsonValue *other = curVal->field(key);
        if (!other) {
            std::cerr << "FAIL: " << section << "." << key
                      << " missing from current report (counter "
                         "drift)\n";
            ++drift;
        } else if (!jsonEqual(*value, *other)) {
            std::cerr << "FAIL: " << section << "." << key
                      << " drift: " << jsonText(*value) << " -> "
                      << jsonText(*other) << "\n";
            ++drift;
        }
    }
    for (const auto &[key, value] : *cur)
        if (!baseVal->field(key)) {
            std::cerr << "FAIL: " << section << "." << key
                      << " only in current report (counter drift)\n";
            ++drift;
        }
    return drift;
}

/** Compare the deterministic sections of two run reports. */
int
compareRunReports(const JsonValue &baseline, const JsonValue &current)
{
    int drift = diffSection(baseline, current, "counters");
    drift += diffSection(baseline, current, "histograms");
    if (drift) {
        std::cerr << drift << " drifting deterministic metric(s); "
                             "counters must match byte for byte.\n";
        return 1;
    }
    std::puts("deterministic counters identical; no drift.");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::cerr << "usage: bench_compare BASELINE.json CURRENT.json\n";
        return 1;
    }
    try {
        const std::string baselinePath = argv[1];
        const std::string currentPath = argv[2];
        const JsonValue baselineDoc = parseFile(baselinePath);
        const JsonValue currentDoc = parseFile(currentPath);

        const bool baseReport = isRunReport(baselineDoc);
        const bool curReport = isRunReport(currentDoc);
        if (baseReport != curReport)
            throw std::runtime_error(
                "cannot compare a run report against a hotpath "
                "artifact (one input has schema nisqpp.run-report, "
                "the other does not)");
        if (baseReport)
            return compareRunReports(baselineDoc, currentDoc);

        const auto baseline = loadHotpath(baselinePath, baselineDoc);
        const auto current = loadHotpath(currentPath, currentDoc);

        int drift = 0;
        drift += checkInternalBatchParity(baseline, baselinePath);
        drift += checkInternalBatchParity(current, currentPath);

        std::printf("%-16s %-3s %12s %12s %9s  %s\n", "decoder", "d",
                    "base tr/s", "curr tr/s", "speedup", "PL");
        for (const auto &[key, base] : baseline) {
            const auto it = current.find(key);
            if (it == current.end()) {
                std::cerr << "FAIL: row (" << key.first << ", d="
                          << key.second
                          << ") missing from " << currentPath << "\n";
                ++drift;
                continue;
            }
            const HotpathRow &cur = it->second;
            const bool plMatch =
                base.pl == cur.pl && base.trials == cur.trials;
            if (!plMatch) {
                std::cerr << "FAIL: (" << key.first << ", d="
                          << key.second << ") PL/trials drift: "
                          << base.pl << "/" << base.trials << " -> "
                          << cur.pl << "/" << cur.trials << "\n";
                ++drift;
            }
            const double speedup =
                base.trialsPerSec > 0
                    ? cur.trialsPerSec / base.trialsPerSec
                    : 0.0;
            std::printf("%-16s %-3s %12.4g %12.4g %8.2fx  %s\n",
                        key.first.c_str(), key.second.c_str(),
                        base.trialsPerSec, cur.trialsPerSec, speedup,
                        plMatch ? "ok" : "DRIFT");
        }
        for (const auto &[key, cur] : current)
            if (!baseline.count(key))
                std::printf("%-16s %-3s %12s %12.4g %9s  new row\n",
                            key.first.c_str(), key.second.c_str(), "-",
                            cur.trialsPerSec, "-");

        if (drift) {
            std::cerr << drift << " drifting row(s); physics columns "
                                  "must match byte for byte.\n";
            return 1;
        }
        std::puts("PL columns identical; no physics drift.");
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "bench_compare: " << e.what() << "\n";
        return 1;
    }
}
