/**
 * @file
 * Guardrail for the tracked hot-path benchmark: diff two micro_hotpath
 * JSON artifacts (e.g. BENCH_hotpath.json against
 * bench/BENCH_hotpath_baseline.json, or a batching-on run against a
 * batching-off run).
 *
 *   bench_compare BASELINE.json CURRENT.json
 *
 * Physics columns are compared exactly: any PL or trial-count
 * difference on a (decoder, d) row present in both artifacts is a
 * hard failure — throughput work must never change trajectories.
 * Rows that exist only in the current artifact are reported as new;
 * rows that disappeared fail. As an internal consistency check, the
 * sfq_mesh_batch rows of each artifact must carry byte-identical PL
 * to that artifact's sfq_mesh rows (the lane-packed path re-decodes
 * the same cells). Throughput columns are reported as speedup ratios,
 * never compared: they are host-dependent by nature.
 *
 * Exit code 0 = no drift; 1 = drift or malformed input.
 */

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace {

/** Minimal JSON document model (enough for scenario artifacts). */
struct JsonValue;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;
using JsonObject =
    std::vector<std::pair<std::string, std::shared_ptr<JsonValue>>>;

struct JsonValue
{
    std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
                 JsonObject>
        value;

    const JsonValue *
    field(const std::string &key) const
    {
        if (const auto *obj = std::get_if<JsonObject>(&value))
            for (const auto &[k, v] : *obj)
                if (k == key)
                    return v.get();
        return nullptr;
    }
};

/** Recursive-descent JSON parser; throws std::runtime_error. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing content");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON error at byte " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue{parseString()};
          case 't': return parseLiteral("true", JsonValue{true});
          case 'f': return parseLiteral("false", JsonValue{false});
          case 'n': return parseLiteral("null", JsonValue{nullptr});
          default: return parseNumber();
        }
    }

    JsonValue
    parseLiteral(const std::string &word, JsonValue v)
    {
        if (text_.compare(pos_, word.size(), word) != 0)
            fail("bad literal");
        pos_ += word.size();
        return v;
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a number");
        return JsonValue{std::stod(text_.substr(start, pos_ - start))};
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("bad escape");
                const char esc = text_[pos_++];
                switch (esc) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case '"': case '\\': case '/': out += esc; break;
                  default: fail("unsupported escape");
                }
            } else {
                out += c;
            }
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonArray items;
        if (peek() == ']') {
            ++pos_;
            return JsonValue{std::move(items)};
        }
        while (true) {
            items.push_back(
                std::make_shared<JsonValue>(parseValue()));
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return JsonValue{std::move(items)};
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonObject fields;
        if (peek() == '}') {
            ++pos_;
            return JsonValue{std::move(fields)};
        }
        while (true) {
            std::string key = parseString();
            expect(':');
            fields.emplace_back(
                std::move(key),
                std::make_shared<JsonValue>(parseValue()));
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return JsonValue{std::move(fields)};
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** One row of the hotpath table, keyed by (decoder, d). */
struct HotpathRow
{
    std::string trials;
    std::string pl;
    double trialsPerSec = 0.0;
};

using RowKey = std::pair<std::string, std::string>;

/** Extract the "hotpath" table of one artifact into keyed rows. */
std::map<RowKey, HotpathRow>
loadHotpath(const std::string &path)
{
    std::ifstream in(path);
    if (!in.good())
        throw std::runtime_error("cannot read " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const JsonValue doc = JsonParser(buffer.str()).parse();

    const JsonValue *tables = doc.field("tables");
    const auto *list =
        tables ? std::get_if<JsonArray>(&tables->value) : nullptr;
    if (!list)
        throw std::runtime_error(path + ": no tables array");

    for (const auto &entry : *list) {
        const JsonValue *id = entry->field("id");
        const auto *name =
            id ? std::get_if<std::string>(&id->value) : nullptr;
        if (!name || *name != "hotpath")
            continue;
        const JsonValue *table = entry->field("table");
        const JsonValue *header =
            table ? table->field("header") : nullptr;
        const JsonValue *rows = table ? table->field("rows") : nullptr;
        const auto *headerCells =
            header ? std::get_if<JsonArray>(&header->value) : nullptr;
        const auto *rowList =
            rows ? std::get_if<JsonArray>(&rows->value) : nullptr;
        if (!headerCells || !rowList)
            throw std::runtime_error(path + ": malformed hotpath "
                                            "table");

        auto column = [&](const std::string &want) {
            for (std::size_t c = 0; c < headerCells->size(); ++c) {
                const auto *cell = std::get_if<std::string>(
                    &(*headerCells)[c]->value);
                if (cell && *cell == want)
                    return static_cast<int>(c);
            }
            throw std::runtime_error(path + ": hotpath table has no '" +
                                     want + "' column");
        };
        const int decoderCol = column("decoder");
        const int dCol = column("d");
        const int trialsCol = column("trials");
        const int plCol = column("PL");
        const int tpsCol = column("trials/s");

        std::map<RowKey, HotpathRow> out;
        for (const auto &rowVal : *rowList) {
            const auto *cells = std::get_if<JsonArray>(&rowVal->value);
            if (!cells)
                continue;
            auto text = [&](int c) -> std::string {
                if (c < 0 || c >= static_cast<int>(cells->size()))
                    return {};
                const auto *s = std::get_if<std::string>(
                    &(*cells)[static_cast<std::size_t>(c)]->value);
                return s ? *s : std::string();
            };
            HotpathRow row;
            row.trials = text(trialsCol);
            row.pl = text(plCol);
            try {
                row.trialsPerSec = std::stod(text(tpsCol));
            } catch (...) {
                row.trialsPerSec = 0.0;
            }
            out[{text(decoderCol), text(dCol)}] = row;
        }
        return out;
    }
    throw std::runtime_error(path + ": no table with id 'hotpath'");
}

/** sfq_mesh_batch rows must mirror sfq_mesh PL within one artifact. */
int
checkInternalBatchParity(const std::map<RowKey, HotpathRow> &rows,
                         const std::string &label)
{
    int drift = 0;
    for (const auto &[key, row] : rows) {
        if (key.first != "sfq_mesh_batch")
            continue;
        const auto scalarIt = rows.find({"sfq_mesh", key.second});
        if (scalarIt == rows.end())
            continue;
        if (row.pl != scalarIt->second.pl ||
            row.trials != scalarIt->second.trials) {
            std::cerr << "FAIL " << label << ": sfq_mesh_batch d="
                      << key.second << " PL=" << row.pl << " trials="
                      << row.trials << " != sfq_mesh PL="
                      << scalarIt->second.pl << " trials="
                      << scalarIt->second.trials
                      << " (lane-equivalence drift)\n";
            ++drift;
        }
    }
    return drift;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::cerr << "usage: bench_compare BASELINE.json CURRENT.json\n";
        return 1;
    }
    try {
        const std::string baselinePath = argv[1];
        const std::string currentPath = argv[2];
        const auto baseline = loadHotpath(baselinePath);
        const auto current = loadHotpath(currentPath);

        int drift = 0;
        drift += checkInternalBatchParity(baseline, baselinePath);
        drift += checkInternalBatchParity(current, currentPath);

        std::printf("%-16s %-3s %12s %12s %9s  %s\n", "decoder", "d",
                    "base tr/s", "curr tr/s", "speedup", "PL");
        for (const auto &[key, base] : baseline) {
            const auto it = current.find(key);
            if (it == current.end()) {
                std::cerr << "FAIL: row (" << key.first << ", d="
                          << key.second
                          << ") missing from " << currentPath << "\n";
                ++drift;
                continue;
            }
            const HotpathRow &cur = it->second;
            const bool plMatch =
                base.pl == cur.pl && base.trials == cur.trials;
            if (!plMatch) {
                std::cerr << "FAIL: (" << key.first << ", d="
                          << key.second << ") PL/trials drift: "
                          << base.pl << "/" << base.trials << " -> "
                          << cur.pl << "/" << cur.trials << "\n";
                ++drift;
            }
            const double speedup =
                base.trialsPerSec > 0
                    ? cur.trialsPerSec / base.trialsPerSec
                    : 0.0;
            std::printf("%-16s %-3s %12.4g %12.4g %8.2fx  %s\n",
                        key.first.c_str(), key.second.c_str(),
                        base.trialsPerSec, cur.trialsPerSec, speedup,
                        plMatch ? "ok" : "DRIFT");
        }
        for (const auto &[key, cur] : current)
            if (!baseline.count(key))
                std::printf("%-16s %-3s %12s %12.4g %9s  new row\n",
                            key.first.c_str(), key.second.c_str(), "-",
                            cur.trialsPerSec, "-");

        if (drift) {
            std::cerr << drift << " drifting row(s); physics columns "
                                  "must match byte for byte.\n";
            return 1;
        }
        std::puts("PL columns identical; no physics drift.");
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "bench_compare: " << e.what() << "\n";
        return 1;
    }
}
