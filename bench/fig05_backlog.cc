/**
 * @file Regenerates paper Fig. 5: the wall-clock staircase produced by
 * decode-backlog stalls at T gates when f = rgen/rproc > 1, and the
 * exponential growth of the per-gate stall.
 */

#include <iostream>

#include "backlog/backlog_sim.hh"
#include "common/table.hh"

int
main()
{
    using namespace nisqpp;

    std::cout << "=== Figure 5: wall clock vs compute time under "
                 "backlog ===\n"
              << "(synthetic 10-T-gate program, syndrome cycle 400 ns, "
                 "f = 1.5)\n\n";

    QCircuit qc(2, "staircase");
    for (int i = 0; i < 10; ++i) {
        qc.h(0); // Clifford padding between synchronization points
        qc.cnot(0, 1);
        qc.t(0);
    }

    BacklogParams params;
    params.syndromeCycleNs = 400.0;
    params.decodeCycleNs = 600.0; // f = 1.5
    const BacklogResult res = simulateBacklog(qc, params);

    TablePrinter table({"T gate", "compute time (us)", "wall clock (us)",
                        "stall (us)", "backlog (rounds)",
                        "stall ratio"});
    double prev_stall = 0;
    for (const auto &ev : res.tGates) {
        table.addRow(
            {std::to_string(ev.index),
             TablePrinter::num(ev.computeNs / 1e3, 4),
             TablePrinter::num(ev.wallNs / 1e3, 4),
             TablePrinter::num(ev.stallNs / 1e3, 4),
             TablePrinter::num(ev.backlogRounds, 4),
             prev_stall > 0
                 ? TablePrinter::num(ev.stallNs / prev_stall, 3)
                 : std::string("-")});
        prev_stall = ev.stallNs;
    }
    table.print(std::cout);

    std::cout << "\ntotal: compute "
              << TablePrinter::num(res.computeNs / 1e3, 4)
              << " us, wall " << TablePrinter::num(res.wallNs / 1e3, 4)
              << " us, overhead "
              << TablePrinter::num(res.overhead(), 4)
              << "x; stall ratio converges to f = 1.5 (the f^k "
                 "recurrence of Section III)\n";
    return 0;
}
