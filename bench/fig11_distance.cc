/**
 * @file Regenerates paper Fig. 11: the code distance each decoder needs
 * to run a 100-T-gate algorithm, as a function of the physical error
 * rate, once the decoding backlog is accounted for. Offline decoders
 * (f > 1) pay the f^k gate-equivalent inflation; the online SFQ
 * decoder does not.
 */

#include <iostream>

#include "backlog/distance_model.hh"
#include "common/table.hh"

int
main()
{
    using namespace nisqpp;

    std::cout << "=== Figure 11: required code distance (100 T gates) "
                 "===\n(syndrome cycle 400 ns; '-' = no distance up to "
                 "2001 suffices)\n\n";

    const std::vector<DecoderProfile> profiles{
        DecoderProfile::sfqDecoder(), DecoderProfile::mwpm(),
        DecoderProfile::neuralNet(), DecoderProfile::unionFind(),
        DecoderProfile::mwpmNoBacklog()};

    const std::vector<double> rates{1e-5, 3e-5, 1e-4, 3e-4, 1e-3,
                                    3e-3, 1e-2, 3e-2};

    std::vector<std::string> header{"physical error rate"};
    for (const auto &prof : profiles)
        header.push_back(prof.name);
    TablePrinter table(header);

    for (double p : rates) {
        std::vector<std::string> row{TablePrinter::sci(p, 1)};
        for (const auto &prof : profiles) {
            DistanceQuery query;
            query.physicalErrorRate = p;
            const auto d = requiredDistance(prof, query);
            row.push_back(d ? std::to_string(*d) : std::string("-"));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    // The headline ratio at a representative operating point.
    DistanceQuery query;
    query.physicalErrorRate = 1e-3;
    const auto d_sfq =
        requiredDistance(DecoderProfile::sfqDecoder(), query);
    const auto d_mwpm = requiredDistance(DecoderProfile::mwpm(), query);
    if (d_sfq && d_mwpm)
        std::cout << "\nat p = 1e-3: offline MWPM needs "
                  << *d_mwpm << " vs SFQ " << *d_sfq << " ("
                  << TablePrinter::num(
                         static_cast<double>(*d_mwpm) / *d_sfq, 3)
                  << "x) — the paper reports ~10x smaller distances "
                     "for the online decoder\n";
    std::cout << "profile parameters are documented in "
                 "EXPERIMENTS.md\n";
    return 0;
}
