/**
 * @file Regenerates paper Table IV: decoder execution time in
 * nanoseconds (max / average / standard deviation) per code distance,
 * across all simulated error rates, at the paper's 162.72 ps mesh
 * cycle. Also reports the max-cycle linear scaling the paper quotes
 * (~15.75 coefficient).
 */

#include <iostream>

#include "common/fit.hh"
#include "common/table.hh"
#include "sim/monte_carlo.hh"

int
main()
{
    using namespace nisqpp;

    std::cout << "=== Table IV: decoder execution time (ns) ===\n"
              << "(dephasing, p swept 1%-12%, final design)\n\n";

    const std::vector<int> distances{3, 5, 7, 9};
    const std::vector<double> rates{0.01, 0.02, 0.04, 0.06, 0.08,
                                    0.10, 0.12};
    const double period_ps = MeshConfig{}.cyclePeriodPs;

    TablePrinter table({"code distance", "max (ns)", "average (ns)",
                        "std dev (ns)", "max (cycles)"});
    std::vector<double> ds, max_cycles;

    StopRule rule{1500, 1500, 1u << 30};
    rule = rule.scaledByEnv();
    for (int d : distances) {
        SurfaceLattice lat(d);
        MeshDecoder dec(lat, ErrorType::Z);
        RunningStats stats;
        for (double p : rates) {
            DephasingModel model(p);
            LifetimeSimulator sim(lat, model, dec, nullptr,
                                  0xab1e + d);
            const MonteCarloResult res = sim.run(rule);
            stats.merge(res.cycles);
        }
        const double to_ns = period_ps * 1e-3;
        table.addRow({std::to_string(d),
                      TablePrinter::num(stats.max() * to_ns, 3),
                      TablePrinter::num(stats.mean() * to_ns, 3),
                      TablePrinter::num(stats.stddev() * to_ns, 3),
                      TablePrinter::num(stats.max(), 4)});
        ds.push_back(d);
        max_cycles.push_back(stats.max());
    }
    table.print(std::cout);

    const LinearFit fit = fitLinear(ds, max_cycles);
    std::cout << "\nmax-cycles linear fit: " << TablePrinter::num(
                     fit.slope, 4)
              << " * d + " << TablePrinter::num(fit.intercept, 4)
              << " (paper: leading coefficient ~15.75)\n"
              << "paper Table IV (ns): d=3 3.74/0.28/0.58, d=5 "
                 "9.28/0.72/1.09, d=7 14.2/2.00/1.99, d=9 "
                 "19.2/3.81/3.11; max <= ~20 ns (online, f < 1)\n";
    return 0;
}
