/**
 * @file Thin wrapper over the 'table4_latency' scenario: dispatches through the
 * parallel engine and accepts the shared flags (--threads,
 * --trials-scale, --seed, --format, --shard-trials).
 */

#include "engine/scenario.hh"

int
main(int argc, char **argv)
{
    return nisqpp::scenarioMain("table4_latency", argc, argv);
}
