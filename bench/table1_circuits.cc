/**
 * @file Thin wrapper over the 'table1_circuits' scenario: dispatches through the
 * parallel engine and accepts the shared flags (--threads,
 * --trials-scale, --seed, --format, --shard-trials).
 */

#include "engine/scenario.hh"

int
main(int argc, char **argv)
{
    return nisqpp::scenarioMain("table1_circuits", argc, argv);
}
