/**
 * @file Regenerates paper Table I: characteristics of the simulated
 * benchmarks. Qubit and T counts match the paper exactly; "total gates"
 * is shown both under our textbook 15-gate Toffoli expansion and the
 * 17-gate budget the paper's totals imply (see EXPERIMENTS.md).
 */

#include <iostream>

#include "circuits/benchmarks.hh"
#include "circuits/decompose.hh"
#include "common/table.hh"

int
main()
{
    using namespace nisqpp;

    std::cout << "=== Table I: benchmark characteristics ===\n\n";

    TablePrinter table({"benchmark", "# qubits", "# total gates (15g)",
                        "# total gates (17g, paper)", "# T gates",
                        "depth"});
    for (const QCircuit &qc : tableOneBenchmarks()) {
        table.addRow(
            {qc.name(), std::to_string(qc.numQubits()),
             std::to_string(decomposedGateCount(qc)),
             std::to_string(
                 decomposedGateCount(qc, kToffoliGatesPaper)),
             std::to_string(decomposedTCount(qc)),
             std::to_string(decomposeToffoli(qc).depth())});
    }
    table.print(std::cout);

    std::cout << "\npaper Table I totals: takahashi 740, barenco 1224, "
                 "cnu 1156, cnx 629, cuccaro 821 (17-gate Toffoli)\n";
    return 0;
}
