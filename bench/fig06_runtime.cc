/**
 * @file Regenerates paper Fig. 6: running time of the five Table I
 * benchmarks as a function of the syndrome data processing ratio
 * f = rgen/rproc. Left of 1 the decoder keeps up; right of 1 the
 * T-gate backlog makes execution time exponential.
 */

#include <iostream>

#include "backlog/backlog_sim.hh"
#include "circuits/benchmarks.hh"
#include "circuits/decompose.hh"
#include "common/table.hh"

int
main()
{
    using namespace nisqpp;

    std::cout << "=== Figure 6: running time vs decoding ratio ===\n"
              << "(syndrome cycle 400 ns; entries are wall-clock "
                 "seconds, log-scale in the paper)\n\n";

    const std::vector<double> ratios{0.25, 0.5, 0.75, 1.0, 1.25,
                                     1.5,  1.75, 2.0, 2.5, 3.0};

    std::vector<std::string> header{"benchmark (T count)"};
    for (double f : ratios)
        header.push_back("f=" + TablePrinter::num(f, 3));
    TablePrinter table(header);

    for (const QCircuit &qc : tableOneBenchmarks()) {
        std::vector<std::string> row{
            qc.name() + " (" +
            std::to_string(decomposedTCount(qc)) + ")"};
        for (const auto &[f, wall_ns] :
             runningTimeVsRatio(qc, 400.0, ratios))
            row.push_back(TablePrinter::sci(wall_ns * 1e-9, 2));
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nreference points (Section III): NN decoder ~800 ns "
                 "-> f ~ 2; SFQ decoder <= 20 ns -> f << 1.\n"
              << "paper's example: 686 T gates at f = 2 -> ~1e196 s; "
                 "saturation caps our doubles at 1e250 ns.\n";
    return 0;
}
