/**
 * @file Regenerates paper Table III: synthesis results for the SFQ
 * decoder module and its subcircuits — logical depth, latency, area and
 * power from the Table II cell library after full path balancing.
 */

#include <iostream>

#include "common/table.hh"
#include "sfq/decoder_circuits.hh"
#include "sfq/synthesis.hh"

int
main()
{
    using namespace nisqpp;

    std::cout << "=== Table III: SFQ synthesis results ===\n\n";

    TablePrinter table({"circuit", "logical depth", "latency cell (ps)",
                        "latency clocked (ps)", "area (um^2)",
                        "power (uW)", "gates", "DFFs", "JJs"});

    auto add = [&](const SynthesisReport &rep) {
        table.addRow({rep.name, std::to_string(rep.logicalDepth),
                      TablePrinter::num(rep.latencyCellPs, 4),
                      TablePrinter::num(rep.latencyClockedPs, 5),
                      TablePrinter::num(rep.areaUm2, 7),
                      TablePrinter::num(rep.powerUw, 4),
                      std::to_string(rep.gateCount),
                      std::to_string(rep.dffCount),
                      std::to_string(rep.jjCount)});
    };

    add(synthesize(singleGateNetlist(CellKind::And2)));
    add(synthesize(singleGateNetlist(CellKind::Or2)));
    add(synthesize(orNNetlist(7)));
    add(synthesize(singleGateNetlist(CellKind::Not)));
    add(synthesize(pairGrantSubcircuit()));
    add(synthesize(pairSubcircuit()));
    add(synthesize(growPairReqSubcircuit()));
    add(synthesize(resetKeeperSubcircuit()));
    add(synthesize(fullDecoderModule()));
    table.print(std::cout);

    const SynthesisReport full = synthesize(fullDecoderModule());
    const int d9_modules = 17 * 17; // one module per qubit at d=9
    std::cout << "\nfull mesh at d=9 (289 modules): area "
              << TablePrinter::num(full.areaUm2 * d9_modules / 1e6, 4)
              << " mm^2, power "
              << TablePrinter::num(full.powerUw * d9_modules / 1e3, 4)
              << " mW\n"
              << "paper Table III: full circuit depth 6, 162.72 ps, "
                 "1.2793e6 um^2, 13.08 uW; d=9 mesh 369.72 mm^2 / "
                 "3.78 mW\n";
    return 0;
}
