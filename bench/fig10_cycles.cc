/**
 * @file Regenerates paper Fig. 10 (c): truncated probability densities
 * of the execution cycles required per decode, for each code distance
 * (window up to 20 cycles, as in the paper).
 */

#include <iostream>

#include "common/table.hh"
#include "sim/monte_carlo.hh"

int
main()
{
    using namespace nisqpp;

    std::cout << "=== Figure 10 (c): cycles-to-solution densities ===\n"
              << "(dephasing p = 5%, final design; probability mass "
                 "per cycle count)\n\n";

    const std::vector<int> distances{3, 5, 7, 9};
    std::vector<Histogram> histograms;

    StopRule rule{4000, 4000, 1u << 30};
    rule = rule.scaledByEnv();
    for (int d : distances) {
        SurfaceLattice lat(d);
        MeshDecoder dec(lat, ErrorType::Z);
        DephasingModel model(0.05);
        LifetimeSimulator sim(lat, model, dec, nullptr, 0xf16c + d);
        const MonteCarloResult res = sim.run(rule);
        histograms.push_back(res.cycleHistogram);
    }

    std::vector<std::string> header{"cycles"};
    for (int d : distances)
        header.push_back("d=" + std::to_string(d));
    TablePrinter table(header);
    for (int cyc = 0; cyc <= 20; ++cyc) {
        std::vector<std::string> row{std::to_string(cyc)};
        for (const auto &hist : histograms)
            row.push_back(TablePrinter::num(hist.density(cyc), 3));
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\ntail beyond the 20-cycle window:\n";
    for (std::size_t i = 0; i < distances.size(); ++i) {
        double tail = 0;
        for (std::size_t b = 21; b < histograms[i].numBins(); ++b)
            tail += histograms[i].density(b);
        std::cout << "  d=" << distances[i] << ": mass "
                  << TablePrinter::num(tail, 3) << ", max "
                  << histograms[i].lastNonzero() << " cycles\n";
    }
    std::cout << "paper: densities peak near 0, 5, 9, 14 cycles for "
                 "d = 3, 5, 7, 9\n";
    return 0;
}
