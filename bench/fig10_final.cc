/**
 * @file Regenerates paper Fig. 10 (a)/(b): logical vs physical error
 * rate for the final SFQ mesh decoder design across code distances
 * 3-9, including the zoomed window around the ~5% accuracy threshold,
 * plus the estimated pseudo-thresholds and accuracy threshold.
 * NISQPP_TRIALS (multiplier) raises statistical resolution.
 */

#include <iostream>

#include "common/table.hh"
#include "sim/experiment.hh"

namespace {

void
printSweep(const nisqpp::SweepResult &result,
           const std::vector<double> &ps)
{
    using nisqpp::TablePrinter;
    std::vector<std::string> header{"p (%)"};
    for (const auto &curve : result.curves)
        header.push_back("PL d=" + std::to_string(curve.distance));
    header.emplace_back("physical");
    TablePrinter table(header);
    for (std::size_t i = 0; i < ps.size(); ++i) {
        std::vector<std::string> row{TablePrinter::num(100 * ps[i], 3)};
        for (const auto &curve : result.curves)
            row.push_back(TablePrinter::num(100 * curve.pl[i], 3));
        row.push_back(TablePrinter::num(100 * ps[i], 3));
        table.addRow(row);
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    using namespace nisqpp;

    std::cout << "=== Figure 10 (a): final design error rate scaling "
                 "===\n(dephasing channel, lifetime protocol)\n\n";

    SweepConfig config;
    config.distances = {3, 5, 7, 9};
    config.physicalRates = SweepConfig::logSpaced(0.01, 0.12, 10);
    config.lifetimeMode = true;
    config.stopRule = {4000, 4000, 1u << 30};

    const auto factory = meshDecoderFactory(MeshConfig::finalDesign());
    const SweepResult result = sweepLogicalError(config, factory);
    printSweep(result, config.physicalRates);

    // Threshold metrics (Section VII).
    std::cout << "\npseudo-thresholds (PL = p):\n";
    for (const auto &curve : result.curves) {
        const auto pseudo = pseudoThreshold(curve);
        std::cout << "  d=" << curve.distance << ": "
                  << (pseudo ? TablePrinter::num(100 * *pseudo, 3) + "%"
                             : std::string("not crossed in range"))
                  << "\n";
    }
    if (const auto pth = accuracyThreshold(result.curves))
        std::cout << "accuracy threshold (curve crossings): "
                  << TablePrinter::num(100 * *pth, 3) << "%\n";
    std::cout << "paper: accuracy threshold ~5%, pseudo-thresholds "
                 "~3.5%-5%, anomalous d=3 (boundary-dominated)\n";

    std::cout << "\n=== Figure 10 (b): zoom near threshold ===\n\n";
    SweepConfig zoom = config;
    zoom.physicalRates = SweepConfig::logSpaced(0.045, 0.062, 6);
    zoom.stopRule = {4000, 4000, 1u << 30};
    printSweep(sweepLogicalError(zoom, factory), zoom.physicalRates);
    return 0;
}
