/**
 * @file google-benchmark microbenchmarks: host-side decode throughput
 * of the mesh decoder (cycle-level simulation) against the software
 * baselines, plus the mesh's simulated-hardware latency counters.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "decoders/greedy_decoder.hh"
#include "decoders/mwpm_decoder.hh"
#include "decoders/union_find_decoder.hh"
#include "core/mesh_decoder.hh"
#include "surface/error_model.hh"

namespace {

using namespace nisqpp;

/** Pre-sampled syndrome workload shared across decoder benchmarks. */
std::vector<Syndrome>
workload(const SurfaceLattice &lat, double p, int count)
{
    DephasingModel model(p);
    Rng rng(0xbe4c);
    std::vector<Syndrome> syndromes;
    syndromes.reserve(count);
    for (int i = 0; i < count; ++i) {
        ErrorState st(lat);
        model.sample(rng, st);
        syndromes.push_back(extractSyndrome(st, ErrorType::Z));
    }
    return syndromes;
}

template <typename DecoderT>
void
decodeBench(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    SurfaceLattice lat(d);
    DecoderT dec(lat, ErrorType::Z);
    const auto syndromes = workload(lat, 0.05, 256);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dec.decode(syndromes[i++ % syndromes.size()]));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_MeshDecoder(benchmark::State &state)
{
    decodeBench<MeshDecoder>(state);
}

void
BM_Mwpm(benchmark::State &state)
{
    decodeBench<MwpmDecoder>(state);
}

void
BM_UnionFind(benchmark::State &state)
{
    decodeBench<UnionFindDecoder>(state);
}

void
BM_Greedy(benchmark::State &state)
{
    decodeBench<GreedyDecoder>(state);
}

/** Simulated hardware latency (mesh cycles), not host time. */
void
BM_MeshSimulatedNs(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    SurfaceLattice lat(d);
    MeshDecoder dec(lat, ErrorType::Z);
    const auto syndromes = workload(lat, 0.05, 256);
    std::size_t i = 0;
    double total_ns = 0;
    std::size_t n = 0;
    for (auto _ : state) {
        dec.decode(syndromes[i++ % syndromes.size()]);
        total_ns += dec.lastStats().nanoseconds(
            dec.config().cyclePeriodPs);
        ++n;
    }
    state.counters["sim_ns_per_decode"] =
        n ? total_ns / static_cast<double>(n) : 0.0;
}

} // namespace

BENCHMARK(BM_MeshDecoder)->Arg(3)->Arg(5)->Arg(7)->Arg(9);
BENCHMARK(BM_Mwpm)->Arg(3)->Arg(5)->Arg(7)->Arg(9);
BENCHMARK(BM_UnionFind)->Arg(3)->Arg(5)->Arg(7)->Arg(9);
BENCHMARK(BM_Greedy)->Arg(3)->Arg(5)->Arg(7)->Arg(9);
BENCHMARK(BM_MeshSimulatedNs)->Arg(3)->Arg(9);

BENCHMARK_MAIN();
