/**
 * @file Regenerates paper Table II: the ERSFQ cell library used for
 * synthesizing the decoder into SFQ hardware.
 */

#include <iostream>

#include "common/table.hh"
#include "sfq/cell_library.hh"

int
main()
{
    using namespace nisqpp;

    std::cout << "=== Table II: ERSFQ cell library ===\n\n";

    TablePrinter table(
        {"cell", "area (um^2)", "JJ count", "delay (ps)", "power (uW)"});
    for (CellKind kind : {CellKind::And2, CellKind::Or2, CellKind::Xor2,
                          CellKind::Not, CellKind::DroDff}) {
        const CellInfo &info = cellInfo(kind);
        table.addRow({info.name, TablePrinter::num(info.areaUm2, 6),
                      std::to_string(info.jjCount),
                      TablePrinter::num(info.delayPs, 3),
                      TablePrinter::num(info.powerUw, 3)});
    }
    table.print(std::cout);
    std::cout << "\n(areas/JJ/delays are the paper's Table II values; "
                 "per-cell power calibrated to Table III's 0.026 uW "
                 "per logic gate)\n";
    return 0;
}
