/**
 * @file Thin wrapper over the 'table2_cells' scenario: dispatches through the
 * parallel engine and accepts the shared flags (--threads,
 * --trials-scale, --seed, --format, --shard-trials).
 */

#include "engine/scenario.hh"

int
main(int argc, char **argv)
{
    return nisqpp::scenarioMain("table2_cells", argc, argv);
}
