/**
 * @file Thin wrapper over the 'fault_sweep' scenario: dispatches
 * through the parallel engine and accepts the shared flags (--threads,
 * --trials-scale, --seed, --format, --fault-*, --deadline-ns).
 */

#include "engine/scenario.hh"

int
main(int argc, char **argv)
{
    return nisqpp::scenarioMain("fault_sweep", argc, argv);
}
