/**
 * @file Regenerates paper Fig. 10 top row: logical error rate of each
 * incremental design step (baseline, +reset, +reset+boundary) under the
 * pure dephasing channel and the lifetime Monte Carlo protocol.
 * NISQPP_TRIALS (multiplier) raises statistical resolution.
 */

#include <iostream>

#include "common/table.hh"
#include "sim/experiment.hh"

int
main()
{
    using namespace nisqpp;

    std::cout << "=== Figure 10 (top row): incremental design steps "
                 "===\n(logical error rate, dephasing channel, "
                 "lifetime protocol)\n";

    SweepConfig config;
    config.distances = {3, 5, 7, 9};
    config.physicalRates = SweepConfig::logSpaced(0.01, 0.12, 8);
    config.lifetimeMode = true;
    config.stopRule = {2000, 2000, 1u << 30};

    for (const MeshConfig &variant :
         {MeshConfig::baseline(), MeshConfig::withReset(),
          MeshConfig::withResetAndBoundary()}) {
        std::cout << "\n--- design: " << variant.label() << " ---\n";
        const SweepResult result =
            sweepLogicalError(config, meshDecoderFactory(variant));

        std::vector<std::string> header{"p (%)"};
        for (const auto &curve : result.curves)
            header.push_back("PL d=" + std::to_string(curve.distance));
        TablePrinter table(header);
        for (std::size_t i = 0; i < config.physicalRates.size(); ++i) {
            std::vector<std::string> row{
                TablePrinter::num(100 * config.physicalRates[i], 3)};
            for (const auto &curve : result.curves)
                row.push_back(TablePrinter::num(100 * curve.pl[i], 3));
            table.addRow(row);
        }
        table.print(std::cout);
    }

    std::cout << "\npaper: baseline shows no threshold behavior; "
                 "resets and boundaries progressively restore error "
                 "suppression (our unarbitrated boundary variant "
                 "trades differently — see EXPERIMENTS.md).\n";
    return 0;
}
