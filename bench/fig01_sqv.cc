/**
 * @file Regenerates paper Fig. 1: the Simple Quantum Volume boost of a
 * 1,024-physical-qubit machine (p = 1e-5) when AQEC trades qubits for
 * fidelity at d = 3 and d = 5. Prints both the paper-quoted PL points
 * (exact reproduction of the quoted factors 3,402 / 11,163) and the
 * pure scaling-model evaluation with Table V coefficients.
 */

#include <iostream>

#include "backlog/sqv.hh"
#include "common/table.hh"

int
main()
{
    using namespace nisqpp;

    std::cout << "=== Figure 1: SQV boost from approximate QEC ===\n"
              << "machine: 1024 physical qubits, p = 1e-5, NISQ target "
                 "SQV = 1e5\n\n";

    SqvMachine machine;

    TablePrinter table({"point", "d", "logical qubits", "PL/gate",
                        "gates/qubit", "SQV", "boost vs NISQ"});

    auto add_row = [&](const std::string &name, const SqvPoint &pt) {
        table.addRow({name, std::to_string(pt.distance),
                      std::to_string(pt.logicalQubits),
                      TablePrinter::sci(pt.logicalErrorRate, 2),
                      TablePrinter::sci(pt.gatesPerQubit, 2),
                      TablePrinter::sci(pt.sqv, 2),
                      TablePrinter::num(pt.boost, 5)});
    };

    // The paper's quoted design points (PL values from Section VIII).
    ScalingModel paper_model; // unused when overriding PL
    add_row("paper d=3", sqvPoint(machine, paper_model, 3, 2.94e-9));
    add_row("paper d=5", sqvPoint(machine, paper_model, 5, 8.96e-10));

    // Model-driven evaluation, PL = c1 (p/pth)^(c2 d) with the paper's
    // Table V coefficients.
    add_row("model d=3 (c2=0.650)",
            sqvPoint(machine, ScalingModel{0.03, 0.05, 0.650}, 3));
    add_row("model d=5 (c2=0.429)",
            sqvPoint(machine, ScalingModel{0.03, 0.05, 0.429}, 5));

    table.print(std::cout);

    std::cout << "\npaper reports: boost 3,402 at d=3 and 11,163 at "
                 "d=5 (Fig. 1, Section VIII)\n";
    return 0;
}
