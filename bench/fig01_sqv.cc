/**
 * @file Thin wrapper over the 'fig01_sqv' scenario: dispatches through the
 * parallel engine and accepts the shared flags (--threads,
 * --trials-scale, --seed, --format, --shard-trials).
 */

#include "engine/scenario.hh"

int
main(int argc, char **argv)
{
    return nisqpp::scenarioMain("fig01_sqv", argc, argv);
}
