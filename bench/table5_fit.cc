/**
 * @file Thin wrapper over the 'table5_fit' scenario: dispatches through the
 * parallel engine and accepts the shared flags (--threads,
 * --trials-scale, --seed, --format, --shard-trials).
 */

#include "engine/scenario.hh"

int
main(int argc, char **argv)
{
    return nisqpp::scenarioMain("table5_fit", argc, argv);
}
