/**
 * @file Regenerates paper Table V: fitted c2 coefficients of the
 * scaling model PL ~= c1 (p/pth)^(c2 d) per code distance, using
 * below-threshold samples of the final design (the effective-distance
 * / approximation factor of the decoder).
 */

#include <iostream>

#include "common/table.hh"
#include "sim/experiment.hh"

int
main()
{
    using namespace nisqpp;

    std::cout << "=== Table V: empirical scaling-model fit ===\n"
              << "(PL ~= c1 (p/pth)^(c2 d), pth = 5%, dephasing, "
                 "lifetime protocol)\n\n";

    SweepConfig config;
    config.distances = {3, 5, 7, 9};
    config.physicalRates = {0.01, 0.015, 0.02, 0.03, 0.04};
    config.lifetimeMode = true;
    config.stopRule = {6000, 6000, 1u << 30};

    const SweepResult result = sweepLogicalError(
        config, meshDecoderFactory(MeshConfig::finalDesign()));
    const auto fits = fitSweep(result, 0.05, 0.045);

    TablePrinter table({"code distance", "c2", "c1", "fit R^2"});
    for (std::size_t i = 0; i < fits.size(); ++i)
        table.addRow({std::to_string(result.curves[i].distance),
                      TablePrinter::num(fits[i].c2, 3),
                      TablePrinter::num(fits[i].c1, 3),
                      TablePrinter::num(fits[i].r2, 3)});
    table.print(std::cout);

    std::cout << "\npaper Table V: c2 = 0.650, 0.429, 0.306, 0.323 for "
                 "d = 3, 5, 7, 9 (c2 < 1 is the accuracy price of the "
                 "approximate decoder)\n";
    return 0;
}
