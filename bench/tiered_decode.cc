/**
 * @file Thin wrapper over the 'tiered_decode' scenario: dispatches
 * through the parallel engine and accepts the shared flags (--threads,
 * --trials-scale, --seed, --format, --shard-trials,
 * --escalate-threshold).
 */

#include "engine/scenario.hh"

int
main(int argc, char **argv)
{
    return nisqpp::scenarioMain("tiered_decode", argc, argv);
}
