/**
 * @file Thin wrapper over the 'noise_zoo' scenario: dispatches through
 * the parallel engine and accepts the shared flags (--threads,
 * --trials-scale, --seed, --format, --shard-trials).
 */

#include "engine/scenario.hh"

int
main(int argc, char **argv)
{
    return nisqpp::scenarioMain("noise_zoo", argc, argv);
}
