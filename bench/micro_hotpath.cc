/**
 * @file Thin wrapper over the 'micro_hotpath' scenario: the tracked
 * per-trial hot-path benchmark behind BENCH_hotpath.json. Accepts the
 * shared flags (--threads, --trials-scale, --seed, --format,
 * --shard-trials).
 */

#include "engine/scenario.hh"

int
main(int argc, char **argv)
{
    return nisqpp::scenarioMain("micro_hotpath", argc, argv);
}
