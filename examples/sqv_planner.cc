/**
 * @file SQV planner: given a machine size and physical error rate,
 * evaluate the AQEC design points (code distance, logical qubit count,
 * gate budget, SQV boost) the way Section VIII sizes Fig. 1.
 */

#include <cstdlib>
#include <iostream>

#include "backlog/sqv.hh"
#include "common/table.hh"

int
main(int argc, char **argv)
{
    using namespace nisqpp;

    SqvMachine machine;
    machine.physicalQubits = argc > 1 ? std::atoi(argv[1]) : 1024;
    machine.physicalErrorRate = argc > 2 ? std::atof(argv[2]) : 1e-5;

    std::cout << "SQV planner: " << machine.physicalQubits
              << " physical qubits, p = "
              << machine.physicalErrorRate << ", NISQ target SQV = "
              << TablePrinter::sci(machine.nisqTargetSqv, 1) << "\n\n";

    // Effective-distance coefficients measured for the SFQ decoder
    // (paper Table V).
    const double c2_by_d[] = {0.650, 0.429, 0.306, 0.323};
    const int ds[] = {3, 5, 7, 9};

    TablePrinter table({"d", "tile qubits", "logical qubits", "PL/gate",
                        "gates/qubit", "SQV", "boost"});
    for (int i = 0; i < 4; ++i) {
        const ScalingModel model{0.03, 0.05, c2_by_d[i]};
        const SqvPoint pt = sqvPoint(machine, model, ds[i]);
        if (pt.logicalQubits < 1)
            break;
        table.addRow({std::to_string(pt.distance),
                      std::to_string(SqvMachine::tileQubits(ds[i])),
                      std::to_string(pt.logicalQubits),
                      TablePrinter::sci(pt.logicalErrorRate, 2),
                      TablePrinter::sci(pt.gatesPerQubit, 2),
                      TablePrinter::sci(pt.sqv, 2),
                      TablePrinter::num(pt.boost, 5)});
    }
    table.print(std::cout);

    std::cout << "\nPick the distance maximizing SQV subject to the "
                 "qubit budget; the paper highlights d=3 (x3,402) and "
                 "d=5 (x11,163) for this machine.\n";
    return 0;
}
