/**
 * @file Logical memory experiment: run the paper's lifetime Monte
 * Carlo protocol on one lattice through the parallel engine and report
 * the logical error rate and the decoder's real-time execution
 * statistics — the workload behind Fig. 10 and Table IV.
 *
 * usage: logical_memory [d] [p] [rounds] [threads]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace nisqpp;

    const int d = argc > 1 ? std::atoi(argv[1]) : 7;
    const double p = argc > 2 ? std::atof(argv[2]) : 0.02;
    const int rounds = argc > 3 ? std::atoi(argv[3]) : 20000;
    const int threads = argc > 4 ? std::atoi(argv[4]) : 1;

    std::cout << "logical memory: d=" << d << ", dephasing p=" << p
              << ", " << rounds << " syndrome cycles, " << threads
              << " thread(s)\n"
              << "(engine shards the run into independent memory "
                 "segments of 512 cycles)\n";

    SurfaceLattice lattice(d);
    const DecoderFactory factory =
        meshDecoderFactory(MeshConfig::finalDesign());

    EngineOptions options;
    options.threads = threads;
    Engine engine(options);

    CellSpec cell;
    cell.lattice = &lattice;
    cell.physicalRate = p;
    cell.lifetimeMode = true;
    cell.rule.minTrials = cell.rule.maxTrials =
        static_cast<std::size_t>(rounds);
    cell.rule.targetFailures = 1u << 30;
    cell.rule = cell.rule.scaledByEnv();
    cell.seed = 2026;
    cell.factory = &factory;
    const MonteCarloResult res = engine.runCell(cell);

    std::cout << "logical errors: " << res.failures << " / "
              << res.trials
              << " cycles -> PL = " << res.logicalErrorRate << "  (95% CI ["
              << TablePrinter::num(res.ci.lo, 3) << ", "
              << TablePrinter::num(res.ci.hi, 3) << "])\n";

    const double period = MeshConfig{}.cyclePeriodPs;
    std::cout << "decoder timing: avg "
              << TablePrinter::num(res.cycles.mean() * period * 1e-3, 3)
              << " ns, max "
              << TablePrinter::num(res.cycles.max() * period * 1e-3, 3)
              << " ns over " << res.cycles.count() << " decodes\n"
              << "(syndrome generation is ~400 ns/cycle: the decoder "
                 "runs online, f << 1)\n";
    return 0;
}
