/**
 * @file Logical memory experiment: run the paper's lifetime Monte
 * Carlo protocol on one lattice and report the logical error rate and
 * the decoder's real-time execution statistics — the workload behind
 * Fig. 10 and Table IV.
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "sim/monte_carlo.hh"

int
main(int argc, char **argv)
{
    using namespace nisqpp;

    const int d = argc > 1 ? std::atoi(argv[1]) : 7;
    const double p = argc > 2 ? std::atof(argv[2]) : 0.02;
    const int rounds = argc > 3 ? std::atoi(argv[3]) : 20000;

    std::cout << "logical memory: d=" << d << ", dephasing p=" << p
              << ", " << rounds << " syndrome cycles\n";

    SurfaceLattice lattice(d);
    MeshDecoder decoder(lattice, ErrorType::Z);
    DephasingModel model(p);
    LifetimeSimulator sim(lattice, model, decoder, nullptr, 2026);
    sim.setLifetimeMode(true);

    StopRule rule;
    rule.minTrials = rule.maxTrials = static_cast<std::size_t>(rounds);
    rule.targetFailures = 1u << 30;
    const MonteCarloResult res = sim.run(rule);

    std::cout << "logical errors: " << res.failures << " / "
              << res.trials
              << " cycles -> PL = " << res.logicalErrorRate << "  (95% CI ["
              << TablePrinter::num(res.ci.lo, 3) << ", "
              << TablePrinter::num(res.ci.hi, 3) << "])\n";

    const double period = decoder.config().cyclePeriodPs;
    std::cout << "decoder timing: avg "
              << TablePrinter::num(res.cycles.mean() * period * 1e-3, 3)
              << " ns, max "
              << TablePrinter::num(res.cycles.max() * period * 1e-3, 3)
              << " ns over " << res.cycles.count() << " decodes\n"
              << "(syndrome generation is ~400 ns/cycle: the decoder "
                 "runs online, f << 1)\n";
    return 0;
}
