/**
 * @file Quickstart: build a distance-5 surface code, inject a couple of
 * Z errors, extract the syndrome, decode it on the SFQ mesh decoder,
 * and verify the correction — the minimal end-to-end use of the
 * library's public API.
 */

#include <iostream>

#include "core/mesh_decoder.hh"
#include "surface/logical.hh"

int
main()
{
    using namespace nisqpp;

    // 1. A distance-5 planar surface code lattice.
    SurfaceLattice lattice(5);
    std::cout << "lattice: d=" << lattice.distance() << ", "
              << lattice.numData() << " data qubits, "
              << lattice.numXAncilla() << "+" << lattice.numZAncilla()
              << " ancillas on a " << lattice.gridSize() << "x"
              << lattice.gridSize() << " grid\n";

    // 2. Inject a short Z error chain.
    ErrorState errors(lattice);
    errors.inject(lattice.dataIndex({4, 4}), Pauli::Z);
    errors.inject(lattice.dataIndex({5, 5}), Pauli::Z);
    std::cout << "injected Z errors at (4,4) and (5,5)\n";

    // 3. Extract the error syndrome (hot X-ancillas).
    const Syndrome syndrome = extractSyndrome(errors, ErrorType::Z);
    std::cout << "syndrome: " << syndrome.weight()
              << " hot ancillas:";
    for (int a : syndrome.hotList()) {
        const Coord c = lattice.ancillaCoord(ErrorType::Z, a);
        std::cout << " (" << c.row << "," << c.col << ")";
    }
    std::cout << "\n";

    // 4. Decode on the SFQ mesh (the paper's final design).
    MeshDecoder decoder(lattice, ErrorType::Z);
    const Correction correction = decoder.decode(syndrome);
    std::cout << decoder.name() << " corrected "
              << correction.dataFlips.size() << " qubits in "
              << decoder.lastStats().cycles << " mesh cycles ("
              << decoder.lastStats().nanoseconds(
                     decoder.config().cyclePeriodPs)
              << " ns at the synthesized clock)\n";

    // 5. Verify: residual must be stabilizer-trivial.
    correction.applyTo(errors, ErrorType::Z);
    const FailureReport report = classifyResidual(errors, ErrorType::Z);
    std::cout << "residual syndrome nonzero: "
              << (report.syndromeNonzero ? "yes" : "no")
              << ", logical flip: "
              << (report.logicalFlip ? "yes" : "no") << " -> "
              << (report.failed() ? "FAILED" : "corrected") << "\n";
    return report.failed() ? 1 : 0;
}
