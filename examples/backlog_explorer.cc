/**
 * @file Backlog explorer: execute one of the Table I benchmarks under a
 * chosen decoder speed and watch the T-gate synchronization stalls —
 * the Section III effect that motivates the hardware decoder.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "backlog/backlog_sim.hh"
#include "circuits/benchmarks.hh"
#include "circuits/decompose.hh"
#include "common/table.hh"

int
main(int argc, char **argv)
{
    using namespace nisqpp;

    const double f = argc > 1 ? std::atof(argv[1]) : 1.5;
    const std::string which = argc > 2 ? argv[2] : "takahashi_adder";

    QCircuit circuit(1, "none");
    bool found = false;
    for (QCircuit &qc : tableOneBenchmarks()) {
        if (qc.name() == which) {
            circuit = qc;
            found = true;
        }
    }
    if (!found) {
        std::cerr << "unknown benchmark '" << which
                  << "'; options: takahashi_adder, "
                     "barenco_half_dirty_toffoli, cnu_half_borrowed, "
                     "cnx_log_depth, cuccaro_adder\n";
        return 1;
    }

    BacklogParams params;
    params.decodeCycleNs = f * params.syndromeCycleNs;

    std::cout << "backlog explorer: " << circuit.name() << " ("
              << decomposedTCount(circuit) << " T gates), f = " << f
              << "\n\n";
    const BacklogResult res = simulateBacklog(circuit, params);

    TablePrinter table({"T gate", "stall (us)", "backlog (rounds)"});
    const std::size_t n = res.tGates.size();
    for (std::size_t i = 0; i < n;
         i += std::max<std::size_t>(1, n / 12)) {
        const auto &ev = res.tGates[i];
        table.addRow({std::to_string(ev.index),
                      TablePrinter::num(ev.stallNs / 1e3, 4),
                      TablePrinter::sci(ev.backlogRounds, 2)});
    }
    table.print(std::cout);

    std::cout << "\ncompute " << TablePrinter::sci(res.computeNs, 3)
              << " ns, wall " << TablePrinter::sci(res.wallNs, 3)
              << " ns, overhead "
              << TablePrinter::sci(res.overhead(), 3)
              << "x\nTry f = 0.05 (the SFQ decoder: 20 ns / 400 ns) "
                 "versus f = 2 (an 800 ns offline decoder).\n";
    return 0;
}
