/**
 * @file Decoder shoot-out: accuracy of the SFQ mesh decoder against the
 * exact MWPM, union-find and software-greedy baselines on identical
 * error streams, with the mesh's simulated hardware latency alongside.
 * Each family runs through the parallel engine from the same master
 * seed, so every decoder sees exactly the same shard error streams.
 *
 * usage: decoder_comparison [threads]
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace nisqpp;

    const int d = 5;
    const double p = 0.03;
    const std::size_t rounds = 5000;
    const int threads = argc > 1 ? std::atoi(argv[1]) : 1;
    SurfaceLattice lattice(d);

    std::cout << "decoder comparison: d=" << d << ", dephasing p=" << p
              << ", " << rounds << " lifetime cycles each, " << threads
              << " thread(s)\n\n";

    struct Family
    {
        std::string label;
        DecoderFactory factory;
    };
    const std::vector<Family> families{
        {"mesh", meshDecoderFactory(MeshConfig::finalDesign())},
        {"mwpm", mwpmDecoderFactory()},
        {"union_find", unionFindDecoderFactory()},
        {"greedy", greedyDecoderFactory()},
    };

    EngineOptions options;
    options.threads = threads;
    Engine engine(options);

    TablePrinter table({"decoder", "logical errors", "PL",
                        "avg decode (sim ns)", "max decode (sim ns)"});
    for (const Family &family : families) {
        CellSpec cell;
        cell.lattice = &lattice;
        cell.physicalRate = p;
        cell.lifetimeMode = true;
        cell.rule = StopRule{rounds, rounds, 1u << 30}.scaledByEnv();
        cell.seed = 777; // same stream for every decoder family
        cell.factory = &family.factory;
        const MonteCarloResult res = engine.runCell(cell);

        const bool mesh = res.cycles.count() > 0;
        const double period = MeshConfig{}.cyclePeriodPs * 1e-3;
        table.addRow(
            {family.label, std::to_string(res.failures),
             TablePrinter::num(res.logicalErrorRate, 3),
             mesh ? TablePrinter::num(res.cycles.mean() * period, 3)
                  : std::string("offline"),
             mesh ? TablePrinter::num(res.cycles.max() * period, 3)
                  : std::string("offline")});
    }
    table.print(std::cout);

    std::cout << "\nThe mesh decoder trades accuracy for online "
                 "operation: it loses a constant factor to MWPM but "
                 "answers within the ~400 ns syndrome cycle, avoiding "
                 "the exponential backlog (Sections III and VIII).\n";
    return 0;
}
