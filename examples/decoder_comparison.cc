/**
 * @file Decoder shoot-out: accuracy of the SFQ mesh decoder against the
 * exact MWPM, union-find and software-greedy baselines on identical
 * error streams, with the mesh's simulated hardware latency alongside.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "common/table.hh"
#include "decoders/greedy_decoder.hh"
#include "decoders/mwpm_decoder.hh"
#include "decoders/union_find_decoder.hh"
#include "sim/monte_carlo.hh"

int
main()
{
    using namespace nisqpp;

    const int d = 5;
    const double p = 0.03;
    const int rounds = 5000;
    SurfaceLattice lattice(d);

    std::cout << "decoder comparison: d=" << d << ", dephasing p=" << p
              << ", " << rounds << " lifetime cycles each\n\n";

    std::vector<std::unique_ptr<Decoder>> decoders;
    decoders.push_back(std::make_unique<MeshDecoder>(
        lattice, ErrorType::Z, MeshConfig::finalDesign()));
    decoders.push_back(
        std::make_unique<MwpmDecoder>(lattice, ErrorType::Z));
    decoders.push_back(
        std::make_unique<UnionFindDecoder>(lattice, ErrorType::Z));
    decoders.push_back(
        std::make_unique<GreedyDecoder>(lattice, ErrorType::Z));

    TablePrinter table({"decoder", "logical errors", "PL",
                        "avg decode (sim ns)", "max decode (sim ns)"});
    DephasingModel model(p);
    for (auto &dec : decoders) {
        LifetimeSimulator sim(lattice, model, *dec, nullptr, 777);
        sim.setLifetimeMode(true);
        StopRule rule{static_cast<std::size_t>(rounds),
                      static_cast<std::size_t>(rounds), 1u << 30};
        const MonteCarloResult res = sim.run(rule);
        const bool mesh = res.cycles.count() > 0;
        const double period = MeshConfig{}.cyclePeriodPs * 1e-3;
        table.addRow(
            {dec->name(), std::to_string(res.failures),
             TablePrinter::num(res.logicalErrorRate, 3),
             mesh ? TablePrinter::num(res.cycles.mean() * period, 3)
                  : std::string("offline"),
             mesh ? TablePrinter::num(res.cycles.max() * period, 3)
                  : std::string("offline")});
    }
    table.print(std::cout);

    std::cout << "\nThe mesh decoder trades accuracy for online "
                 "operation: it loses a constant factor to MWPM but "
                 "answers within the ~400 ns syndrome cycle, avoiding "
                 "the exponential backlog (Sections III and VIII).\n";
    return 0;
}
