/** @file Statistical contract of every noise channel, old and new:
 * empirical X/Y/Z (and measurement-flip) marginals over >= 1e5
 * samples must sit inside a 5-sigma binomial band of the configured
 * rates. Seeds are fixed, so these never flake; a channel whose
 * sampling drifts by more than 5 sigma is a real bug. */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "noise/noise_model.hh"
#include "surface/error_model.hh"
#include "surface/syndrome.hh"

namespace nisqpp {
namespace {

struct PauliCounts
{
    long long x = 0, y = 0, z = 0;
    long long samples = 0;
};

/** Per-round i.i.d. marginals: fresh state each round. */
PauliCounts
sampleMarginals(const ErrorModel &model, const SurfaceLattice &lat,
                long long minSamples, std::uint64_t seed)
{
    Rng rng(seed);
    ErrorState state(lat);
    PauliCounts counts;
    while (counts.samples < minSamples) {
        state.clear();
        model.sample(rng, state);
        for (int q = 0; q < lat.numData(); ++q) {
            switch (state.at(q)) {
              case Pauli::X: ++counts.x; break;
              case Pauli::Y: ++counts.y; break;
              case Pauli::Z: ++counts.z; break;
              default: break;
            }
        }
        counts.samples += lat.numData();
    }
    return counts;
}

/** |empirical - expected| <= 5 sigma of the binomial proportion. */
void
expectWithinFiveSigma(long long hits, long long samples,
                      double expected, const char *label)
{
    const double n = static_cast<double>(samples);
    const double empirical = static_cast<double>(hits) / n;
    const double sigma =
        std::sqrt(std::max(expected * (1.0 - expected), 1e-12) / n);
    EXPECT_LE(std::abs(empirical - expected), 5.0 * sigma)
        << label << ": empirical " << empirical << " vs expected "
        << expected << " (5 sigma = " << 5.0 * sigma << ", n = "
        << samples << ")";
}

constexpr long long kMinSamples = 100000;

TEST(ChannelStats, DephasingChannel)
{
    SurfaceLattice lat(5);
    const double p = 0.07;
    const NoiseModel model = NoiseModel::dephasing(p);
    const PauliCounts c =
        sampleMarginals(model, lat, kMinSamples, 0xd0);
    ASSERT_GE(c.samples, kMinSamples);
    expectWithinFiveSigma(c.z, c.samples, p, "dephasing Z");
    EXPECT_EQ(c.x, 0);
    EXPECT_EQ(c.y, 0);
}

TEST(ChannelStats, DepolarizingChannel)
{
    SurfaceLattice lat(5);
    const double p = 0.09;
    const NoiseModel model = NoiseModel::depolarizing(p);
    const PauliCounts c =
        sampleMarginals(model, lat, kMinSamples, 0xd1);
    expectWithinFiveSigma(c.x, c.samples, p / 3, "depolarizing X");
    expectWithinFiveSigma(c.y, c.samples, p / 3, "depolarizing Y");
    expectWithinFiveSigma(c.z, c.samples, p / 3, "depolarizing Z");
}

TEST(ChannelStats, BiasedEtaChannel)
{
    SurfaceLattice lat(5);
    const double p = 0.08, eta = 4.0;
    const NoiseModel model = NoiseModel::biased(p, eta);
    const PauliCounts c =
        sampleMarginals(model, lat, kMinSamples, 0xd2);
    const double pz = p * eta / (1.0 + eta);
    const double px = p / (2.0 * (1.0 + eta));
    expectWithinFiveSigma(c.z, c.samples, pz, "biased Z");
    expectWithinFiveSigma(c.x, c.samples, px, "biased X");
    expectWithinFiveSigma(c.y, c.samples, px, "biased Y");
}

TEST(ChannelStats, BiasedEtaLimitsRecoverKnownChannels)
{
    // eta = 1/2 splits evenly (depolarizing); huge eta is dephasing.
    SurfaceLattice lat(5);
    const double p = 0.09;
    const NoiseModel depol = NoiseModel::biased(p, 0.5);
    PauliCounts c = sampleMarginals(depol, lat, kMinSamples, 0xd3);
    expectWithinFiveSigma(c.x, c.samples, p / 3, "eta=1/2 X");
    expectWithinFiveSigma(c.z, c.samples, p / 3, "eta=1/2 Z");

    const NoiseModel deph = NoiseModel::biased(p, 1e9);
    c = sampleMarginals(deph, lat, kMinSamples, 0xd4);
    expectWithinFiveSigma(c.z, c.samples, p, "eta=inf Z");
}

TEST(ChannelStats, ErasureChannel)
{
    SurfaceLattice lat(5);
    const double p = 0.06;
    const NoiseModel model = NoiseModel::erasure(p);
    const auto *channel =
        dynamic_cast<const ErasureChannel *>(&model.channel(0));
    ASSERT_NE(channel, nullptr);

    // Marginals: an erased qubit lands on each Pauli (including I)
    // with probability p/4.
    const PauliCounts c =
        sampleMarginals(model, lat, kMinSamples, 0xd5);
    expectWithinFiveSigma(c.x, c.samples, p / 4, "erasure X");
    expectWithinFiveSigma(c.y, c.samples, p / 4, "erasure Y");
    expectWithinFiveSigma(c.z, c.samples, p / 4, "erasure Z");

    // Mark rate: every erased qubit is flagged, Pauli or not.
    Rng rng(0xd6);
    ErrorState state(lat);
    long long marks = 0, samples = 0;
    while (samples < kMinSamples) {
        state.clear();
        channel->clearMarks();
        model.sample(rng, state);
        marks += channel->marks().popcount();
        samples += lat.numData();
    }
    expectWithinFiveSigma(marks, samples, p, "erasure marks");
}

TEST(ChannelStats, MeasurementFlipChannel)
{
    SurfaceLattice lat(5);
    const double q = 0.05;
    const NoiseModel model = NoiseModel::dephasing(0.0, q);
    Rng rng(0xd7);
    Syndrome syn(lat, ErrorType::Z);
    long long flips = 0, samples = 0;
    while (samples < kMinSamples) {
        syn.clear();
        model.flipMeasurements(rng, syn);
        flips += syn.weight();
        samples += syn.size();
    }
    ASSERT_GE(samples, kMinSamples);
    expectWithinFiveSigma(flips, samples, q, "measurement flips");
}

TEST(ChannelStats, PerfectMeasurementDrawsNothing)
{
    // q = 0 must not advance the RNG: the draw-sequence guarantee
    // behind byte-identical perfect-measurement goldens.
    SurfaceLattice lat(3);
    const NoiseModel model = NoiseModel::dephasing(0.1, 0.0);
    Rng a(42), b(42);
    Syndrome syn(lat, ErrorType::Z);
    model.flipMeasurements(a, syn);
    EXPECT_EQ(syn.weight(), 0);
    EXPECT_EQ(a.next(), b.next());
}

TEST(ChannelStats, LegacyShimsMatchNewChannels)
{
    // The q = 0 compatibility shims must produce the exact draw
    // sequence of the composed channels (bit-identical states from
    // the same seed).
    SurfaceLattice lat(5);
    const DephasingModel legacyDeph(0.08);
    const NoiseModel newDeph = NoiseModel::dephasing(0.08);
    Rng r1(7), r2(7);
    ErrorState s1(lat), s2(lat);
    for (int round = 0; round < 200; ++round) {
        legacyDeph.sample(r1, s1);
        newDeph.sample(r2, s2);
    }
    EXPECT_EQ(s1.bits(ErrorType::Z), s2.bits(ErrorType::Z));
    EXPECT_EQ(s1.bits(ErrorType::X), s2.bits(ErrorType::X));

    const DepolarizingModel legacyDepol(0.08);
    const NoiseModel newDepol = NoiseModel::depolarizing(0.08);
    Rng r3(9), r4(9);
    ErrorState s3(lat), s4(lat);
    for (int round = 0; round < 200; ++round) {
        legacyDepol.sample(r3, s3);
        newDepol.sample(r4, s4);
    }
    EXPECT_EQ(s3.bits(ErrorType::Z), s4.bits(ErrorType::Z));
    EXPECT_EQ(s3.bits(ErrorType::X), s4.bits(ErrorType::X));
}

TEST(ChannelStats, LegacyShimStatisticalContract)
{
    // The old names keep their statistical contract too (the
    // pre-subsystem tests sampled these classes directly).
    SurfaceLattice lat(5);
    const DephasingModel deph(0.1);
    PauliCounts c = sampleMarginals(deph, lat, kMinSamples, 0xd8);
    expectWithinFiveSigma(c.z, c.samples, 0.1, "legacy dephasing Z");
    EXPECT_EQ(c.x + c.y, 0);

    const DepolarizingModel depol(0.12);
    c = sampleMarginals(depol, lat, kMinSamples, 0xd9);
    expectWithinFiveSigma(c.x, c.samples, 0.04, "legacy depol X");
    expectWithinFiveSigma(c.y, c.samples, 0.04, "legacy depol Y");
    expectWithinFiveSigma(c.z, c.samples, 0.04, "legacy depol Z");
}

} // namespace
} // namespace nisqpp
