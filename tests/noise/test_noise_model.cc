/** @file NoiseModel composition, NoiseSpec dispatch, and the
 * subsystem's interface semantics. */

#include <gtest/gtest.h>

#include <memory>

#include "noise/noise_model.hh"

namespace nisqpp {
namespace {

TEST(NoiseModel, FactoriesReportRatesAndNames)
{
    EXPECT_DOUBLE_EQ(NoiseModel::dephasing(0.05).physicalRate(), 0.05);
    EXPECT_EQ(NoiseModel::dephasing(0.05).name(), "dephasing");
    EXPECT_EQ(NoiseModel::depolarizing(0.05).name(), "depolarizing");
    EXPECT_DOUBLE_EQ(
        NoiseModel::biased(0.03, 10.0).physicalRate(), 0.03);
    EXPECT_EQ(NoiseModel::erasure(0.02).name(), "erasure");
    // q > 0 is carried in the name (telemetry provenance).
    EXPECT_NE(NoiseModel::dephasing(0.05, 0.01).name().find("meas"),
              std::string::npos);
}

TEST(NoiseModel, MeasurementFlipRateIsExposed)
{
    EXPECT_DOUBLE_EQ(
        NoiseModel::dephasing(0.05).measurementFlipRate(), 0.0);
    EXPECT_DOUBLE_EQ(
        NoiseModel::dephasing(0.05, 0.02).measurementFlipRate(), 0.02);
}

TEST(NoiseModel, ProducesXFollowsChannels)
{
    EXPECT_FALSE(NoiseModel::dephasing(0.05).producesX());
    EXPECT_TRUE(NoiseModel::depolarizing(0.05).producesX());
    EXPECT_TRUE(NoiseModel::biased(0.05, 10.0).producesX());
    EXPECT_TRUE(NoiseModel::erasure(0.05).producesX());
}

TEST(NoiseModel, ComposedChannelsSampleInOrder)
{
    // Composition: dephasing + depolarizing draws the dephasing loop
    // first, then the depolarizing loop — the same bits as running
    // two single-channel models back to back on one RNG.
    SurfaceLattice lat(5);
    NoiseModel composite;
    composite.add(std::make_unique<DephasingChannel>(0.1))
        .add(std::make_unique<DepolarizingChannel>(0.05));
    EXPECT_DOUBLE_EQ(composite.physicalRate(), 0.15);
    EXPECT_EQ(composite.name(), "dephasing+depolarizing");
    EXPECT_EQ(composite.numChannels(), 2u);

    Rng r1(11), r2(11);
    ErrorState s1(lat), s2(lat);
    composite.sample(r1, s1);
    NoiseModel::dephasing(0.1).sample(r2, s2);
    NoiseModel::depolarizing(0.05).sample(r2, s2);
    EXPECT_EQ(s1.bits(ErrorType::Z), s2.bits(ErrorType::Z));
    EXPECT_EQ(s1.bits(ErrorType::X), s2.bits(ErrorType::X));
}

TEST(NoiseSpec, FromSpecDispatchesEveryKind)
{
    for (NoiseKind kind : noiseKindRegistry()) {
        NoiseSpec spec;
        spec.kind = kind;
        const NoiseModel model = NoiseModel::fromSpec(spec, 0.04);
        EXPECT_DOUBLE_EQ(model.physicalRate(), 0.04)
            << noiseKindName(kind);
        // Only the pure-dephasing kind is X-free (the channel
        // overrides are the single source of truth).
        EXPECT_EQ(model.producesX(), kind != NoiseKind::Dephasing)
            << noiseKindName(kind);
    }
}

TEST(NoiseSpec, RegistryNamesAreUniqueAndNonEmpty)
{
    const auto &kinds = noiseKindRegistry();
    EXPECT_EQ(kinds.size(), 4u);
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        EXPECT_FALSE(noiseKindName(kinds[i]).empty());
        for (std::size_t j = i + 1; j < kinds.size(); ++j)
            EXPECT_NE(noiseKindName(kinds[i]),
                      noiseKindName(kinds[j]));
    }
}

TEST(NoiseSpec, CarriesMeasurementRateIntoModels)
{
    const NoiseSpec spec = NoiseSpec::biased(8.0).withQ(0.015);
    const NoiseModel model = NoiseModel::fromSpec(spec, 0.02);
    EXPECT_DOUBLE_EQ(model.measurementFlipRate(), 0.015);
    const auto heap = makeNoiseModel(spec, 0.02);
    EXPECT_DOUBLE_EQ(heap->measurementFlipRate(), 0.015);
    EXPECT_DOUBLE_EQ(heap->physicalRate(), 0.02);
}

TEST(NoiseModelDeath, RejectsBadRates)
{
    EXPECT_DEATH(NoiseModel::dephasing(-0.1), "p out of");
    EXPECT_DEATH(NoiseModel::depolarizing(1.5), "p out of");
    EXPECT_DEATH(NoiseModel::biased(0.1, -1.0), "eta");
    EXPECT_DEATH(NoiseModel::erasure(2.0), "p out of");
    EXPECT_DEATH(NoiseModel::dephasing(0.1, -0.5), "q out of");
}

} // namespace
} // namespace nisqpp
