/**
 * @file Netlist-vs-behavioral equivalence for the decoder subcircuits —
 * the repository's stand-in for the paper's JSIM functional
 * verification. The gate-level Pair_Req/Grow subcircuit is compared
 * exhaustively against the emitFromMeets() template the mesh simulator
 * evaluates; the stateful subcircuits are checked on protocol
 * scenarios.
 */

#include <gtest/gtest.h>

#include "core/module_logic.hh"
#include "sfq/decoder_circuits.hh"
#include "sfq/netlist_sim.hh"
#include "sfq/path_balance.hh"

namespace nisqpp {
namespace {

constexpr int dN = 0;
constexpr int dE = 1;
constexpr int dS = 2;
constexpr int dW = 3;

TEST(DecoderCircuits, GrowPairReqMatchesBehavioralExhaustively)
{
    // 4 grow bits x 4 rq bits x hot x reset = 1024 input combinations;
    // hold each on the pipelined netlist for `depth` cycles and compare
    // with the behavioral equations.
    const Netlist net = growPairReqSubcircuit();
    const BalancedNetlist bal = pathBalance(net);
    NetlistSim sim(bal.netlist);

    for (unsigned v = 0; v < 1024; ++v) {
        const bool hot = v & 1;
        const bool reset = v & 2;
        DirRow<unsigned> g{(v >> 2) & 1u, (v >> 3) & 1u, (v >> 4) & 1u,
                           (v >> 5) & 1u};
        DirRow<unsigned> rq{(v >> 6) & 1u, (v >> 7) & 1u,
                            (v >> 8) & 1u, (v >> 9) & 1u};

        sim.reset();
        sim.setInput("hot", hot);
        sim.setInput("reset", reset);
        for (int d = 0; d < 4; ++d) {
            sim.setInput(std::string("g_") + kDirName[d], g[d]);
            sim.setInput(std::string("rq_") + kDirName[d], rq[d]);
        }
        sim.run(bal.depth);

        // Behavioral reference (the mesh simulator's equations).
        const unsigned allow = (!hot && !reset) ? 1u : 0u;
        DirRow<unsigned> rq_emit{0, 0, 0, 0};
        emitFromMeets(g, allow, rq_emit);
        for (int d = 0; d < 4; ++d) {
            const bool grow_expect = !reset && (g[d] || hot);
            const bool rq_expect = (rq[d] && allow) || rq_emit[d];
            ASSERT_EQ(sim.output(std::string("grow_") + kDirName[d]),
                      grow_expect)
                << "v=" << v << " dir=" << d;
            ASSERT_EQ(sim.output(std::string("rq_") + kDirName[d]),
                      rq_expect)
                << "v=" << v << " dir=" << d;
        }
    }
}

TEST(DecoderCircuits, PairGrantLatchesOneGrant)
{
    const Netlist net = pairGrantSubcircuit();
    const BalancedNetlist bal = pathBalance(net);
    NetlistSim sim(bal.netlist);

    sim.setInput("hot", true);
    sim.setInput("reset", false);
    sim.setInput("formed", false);
    for (int d = 0; d < 4; ++d) {
        sim.setInput(std::string("rq_") + kDirName[d], false);
        sim.setInput(std::string("gr_") + kDirName[d], false);
    }
    // Request traveling W arrives: grant must go E and hold after the
    // request disappears. The latch loop spans the combinational depth,
    // so allow a few round trips for state to settle.
    sim.setInput("rq_w", true);
    sim.run(3 * bal.depth);
    EXPECT_TRUE(sim.output("gr_e"));
    sim.setInput("rq_w", false);
    sim.run(3 * bal.depth);
    EXPECT_TRUE(sim.output("gr_e"));
    // A later request from another side must not add a second grant.
    sim.setInput("rq_e", true);
    sim.run(3 * bal.depth);
    EXPECT_TRUE(sim.output("gr_e"));
    EXPECT_FALSE(sim.output("gr_w"));
    // Reset clears the latch.
    sim.setInput("reset", true);
    sim.setInput("rq_e", false);
    sim.run(3 * bal.depth);
    sim.setInput("reset", false);
    sim.run(3 * bal.depth);
    EXPECT_FALSE(sim.output("gr_e"));
}

TEST(DecoderCircuits, PairGrantPassBlockedWhenHot)
{
    const Netlist net = pairGrantSubcircuit();
    const BalancedNetlist bal = pathBalance(net);
    NetlistSim sim(bal.netlist);
    for (int d = 0; d < 4; ++d) {
        sim.setInput(std::string("rq_") + kDirName[d], false);
        sim.setInput(std::string("gr_") + kDirName[d], false);
    }
    sim.setInput("reset", false);
    sim.setInput("formed", false);
    sim.setInput("gr_n", true);

    sim.setInput("hot", false);
    sim.run(bal.depth + 1);
    EXPECT_TRUE(sim.output("gr_n")); // passes when cold

    sim.setInput("hot", true);
    sim.run(bal.depth + 1);
    EXPECT_FALSE(sim.output("gr_n")); // absorbed when hot
}

TEST(DecoderCircuits, PairSubcircuitFormsOnce)
{
    const Netlist net = pairSubcircuit();
    const BalancedNetlist bal = pathBalance(net);
    NetlistSim sim(bal.netlist);
    for (int d = 0; d < 4; ++d) {
        sim.setInput(std::string("gr_") + kDirName[d], false);
        sim.setInput(std::string("pr_") + kDirName[d], false);
    }
    sim.setInput("hot", false);
    sim.setInput("reset", false);
    sim.setInput("boundary", false);

    // Grant trains meet head-on (E and W). The behavioral mesh model
    // treats the formed latch as instantaneous; in the gate-level
    // pipeline the latch takes up to `depth` clocks to gate the
    // emission, so the formation signal is a bounded burst rather than
    // a single pulse (a microarchitectural refinement noted in
    // EXPERIMENTS.md). It must assert, and it must stop.
    sim.setInput("gr_e", true);
    sim.setInput("gr_w", true);
    int formation_cycles = 0;
    for (int i = 0; i < 4 * bal.depth; ++i) {
        sim.clock();
        formation_cycles += sim.output("formed_now");
    }
    EXPECT_GE(formation_cycles, 1);
    EXPECT_LE(formation_cycles, 2 * bal.depth)
        << "formation burst must be bounded by the latch loop latency";
}

TEST(DecoderCircuits, PairFireOnHotEndpoint)
{
    const Netlist net = pairSubcircuit();
    const BalancedNetlist bal = pathBalance(net);
    NetlistSim sim(bal.netlist);
    for (int d = 0; d < 4; ++d) {
        sim.setInput(std::string("gr_") + kDirName[d], false);
        sim.setInput(std::string("pr_") + kDirName[d], false);
    }
    sim.setInput("hot", true);
    sim.setInput("reset", false);
    sim.setInput("boundary", false);
    sim.setInput("pr_n", true);
    sim.run(bal.depth);
    EXPECT_TRUE(sim.output("fire"));
    EXPECT_FALSE(sim.output("pr_n")); // absorbed, not passed
}

TEST(DecoderCircuits, BoundaryConvertsGrantToPair)
{
    const Netlist net = pairSubcircuit();
    const BalancedNetlist bal = pathBalance(net);
    NetlistSim sim(bal.netlist);
    for (int d = 0; d < 4; ++d) {
        sim.setInput(std::string("gr_") + kDirName[d], false);
        sim.setInput(std::string("pr_") + kDirName[d], false);
    }
    sim.setInput("hot", false);
    sim.setInput("reset", false);
    sim.setInput("boundary", true);
    // Grant traveling W arrives at a west boundary module: it answers
    // with a pair pulse traveling E.
    sim.setInput("gr_w", true);
    bool saw_pair = false;
    for (int i = 0; i < bal.depth + 4; ++i) {
        sim.clock();
        saw_pair |= sim.output("pr_e");
    }
    EXPECT_TRUE(saw_pair);
}

TEST(DecoderCircuits, ResetKeeperHoldsFiveCycles)
{
    // The keeper is deliberately NOT path balanced: the staggered
    // buffer taps are what stretch a one-cycle trigger into a
    // multi-cycle block (Section VI-A). Simulate it raw.
    const Netlist net = resetKeeperSubcircuit();
    NetlistSim sim(net);
    sim.setInput("global_reset", false);
    sim.setInput("trigger", false);
    sim.run(12);
    EXPECT_FALSE(sim.output("block"));

    // One-cycle trigger pulse.
    sim.setInput("trigger", true);
    sim.clock();
    sim.setInput("trigger", false);
    // The block must assert for >= 5 cycles in total.
    int held = 0;
    for (int i = 0; i < 16; ++i) {
        sim.clock();
        held += sim.output("block");
    }
    EXPECT_GE(held, 5);
    EXPECT_LE(held, 9);
    sim.run(8);
    EXPECT_FALSE(sim.output("block"));
}

TEST(DecoderCircuits, FullModuleSynthesizes)
{
    const Netlist net = fullDecoderModule();
    const BalancedNetlist bal = pathBalance(net);
    EXPECT_EQ(checkBalanced(bal.netlist), bal.depth);
    EXPECT_GT(net.countKind(CellKind::And2), 20u);
    EXPECT_GT(net.countKind(CellKind::Or2), 15u);
}

} // namespace
} // namespace nisqpp
