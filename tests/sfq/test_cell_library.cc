/** @file Tests for the ERSFQ cell library (paper Table II). */

#include <gtest/gtest.h>

#include "sfq/cell_library.hh"

namespace nisqpp {
namespace {

TEST(CellLibrary, TableTwoNumbers)
{
    EXPECT_DOUBLE_EQ(cellInfo(CellKind::And2).areaUm2, 4200.0);
    EXPECT_EQ(cellInfo(CellKind::And2).jjCount, 17);
    EXPECT_DOUBLE_EQ(cellInfo(CellKind::And2).delayPs, 9.2);
    EXPECT_DOUBLE_EQ(cellInfo(CellKind::Or2).delayPs, 7.2);
    EXPECT_EQ(cellInfo(CellKind::Or2).jjCount, 12);
    EXPECT_DOUBLE_EQ(cellInfo(CellKind::Xor2).delayPs, 5.7);
    EXPECT_DOUBLE_EQ(cellInfo(CellKind::Not).delayPs, 9.2);
    EXPECT_EQ(cellInfo(CellKind::Not).jjCount, 13);
    EXPECT_DOUBLE_EQ(cellInfo(CellKind::DroDff).areaUm2, 3360.0);
    EXPECT_EQ(cellInfo(CellKind::DroDff).jjCount, 10);
    EXPECT_DOUBLE_EQ(cellInfo(CellKind::DroDff).delayPs, 5.0);
}

TEST(CellLibrary, LogicGatePowerMatchesTableThree)
{
    EXPECT_DOUBLE_EQ(cellInfo(CellKind::And2).powerUw, 0.026);
    EXPECT_DOUBLE_EQ(cellInfo(CellKind::Or2).powerUw, 0.026);
    EXPECT_DOUBLE_EQ(cellInfo(CellKind::Not).powerUw, 0.026);
}

TEST(CellLibrary, Arity)
{
    EXPECT_EQ(cellArity(CellKind::And2), 2);
    EXPECT_EQ(cellArity(CellKind::Or2), 2);
    EXPECT_EQ(cellArity(CellKind::Xor2), 2);
    EXPECT_EQ(cellArity(CellKind::Not), 1);
    EXPECT_EQ(cellArity(CellKind::DroDff), 1);
    EXPECT_EQ(cellArity(CellKind::Input), 0);
}

TEST(CellLibrary, BooleanFunctions)
{
    EXPECT_TRUE(evalCell(CellKind::And2, true, true));
    EXPECT_FALSE(evalCell(CellKind::And2, true, false));
    EXPECT_TRUE(evalCell(CellKind::Or2, false, true));
    EXPECT_FALSE(evalCell(CellKind::Or2, false, false));
    EXPECT_TRUE(evalCell(CellKind::Xor2, true, false));
    EXPECT_FALSE(evalCell(CellKind::Xor2, true, true));
    EXPECT_TRUE(evalCell(CellKind::Not, false));
    EXPECT_FALSE(evalCell(CellKind::Not, true));
    EXPECT_TRUE(evalCell(CellKind::DroDff, true));
}

} // namespace
} // namespace nisqpp
