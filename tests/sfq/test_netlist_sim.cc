/** @file Tests for the clocked netlist functional simulator. */

#include <gtest/gtest.h>

#include "sfq/netlist_sim.hh"
#include "sfq/path_balance.hh"

namespace nisqpp {
namespace {

TEST(NetlistSim, SingleGatePipelines)
{
    Netlist net("t");
    const NodeId a = net.addInput("a");
    const NodeId b = net.addInput("b");
    net.markOutput(net.andGate(a, b), "o");
    NetlistSim sim(net);
    sim.setInput("a", true);
    sim.setInput("b", true);
    EXPECT_FALSE(sim.output("o"));
    sim.clock();
    EXPECT_TRUE(sim.output("o"));
    sim.setInput("b", false);
    sim.clock();
    EXPECT_FALSE(sim.output("o"));
}

TEST(NetlistSim, BalancedPipelineLatencyEqualsDepth)
{
    // After full balancing, a change at the inputs reaches every
    // output after exactly `depth` clocks.
    Netlist net("t");
    const NodeId a = net.addInput("a");
    const NodeId b = net.addInput("b");
    const NodeId c = net.addInput("c");
    net.markOutput(net.orGate(net.andGate(a, b), c), "o");
    const BalancedNetlist bal = pathBalance(net);
    NetlistSim sim(bal.netlist);
    sim.setInput("a", true);
    sim.setInput("b", true);
    sim.setInput("c", false);
    for (int i = 0; i < bal.depth - 1; ++i) {
        sim.clock();
        EXPECT_FALSE(sim.output("o")) << "cycle " << i;
    }
    sim.clock();
    EXPECT_TRUE(sim.output("o"));
}

TEST(NetlistSim, DffChainDelays)
{
    Netlist net("t");
    const NodeId a = net.addInput("a");
    const NodeId d1 = net.addGate(CellKind::DroDff, {a});
    const NodeId d2 = net.addGate(CellKind::DroDff, {d1});
    net.markOutput(d2, "o");
    NetlistSim sim(net);
    sim.setInput("a", true);
    sim.clock();
    EXPECT_FALSE(sim.output("o"));
    sim.clock();
    EXPECT_TRUE(sim.output("o"));
}

TEST(NetlistSim, StateFeedbackLatchHolds)
{
    // latch_next = latch OR in: a set-once latch.
    Netlist net("t");
    const NodeId in = net.addInput("in");
    const NodeId latch = net.addStateDff("latch");
    net.connectFeedback(latch, net.orGate(latch, in));
    net.markOutput(latch, "o");
    NetlistSim sim(net);
    sim.setInput("in", false);
    sim.run(3);
    EXPECT_FALSE(sim.output("o"));
    sim.setInput("in", true);
    sim.run(2);
    EXPECT_TRUE(sim.output("o"));
    sim.setInput("in", false);
    sim.run(5);
    EXPECT_TRUE(sim.output("o")); // held
}

TEST(NetlistSim, ResetClearsState)
{
    NetlistSim *p = nullptr;
    Netlist net("t");
    const NodeId in = net.addInput("in");
    net.markOutput(net.notGate(in), "o");
    NetlistSim sim(net);
    p = &sim;
    p->setInput("in", false);
    p->clock();
    EXPECT_TRUE(p->output("o"));
    p->reset();
    EXPECT_FALSE(p->output("o"));
}

TEST(NetlistSim, UnknownPortsRejected)
{
    Netlist net("t");
    const NodeId a = net.addInput("a");
    net.markOutput(net.notGate(a), "o");
    NetlistSim sim(net);
    EXPECT_DEATH(sim.setInput("nope", true), "unknown input");
    EXPECT_DEATH(sim.output("nope"), "unknown output");
}

} // namespace
} // namespace nisqpp
