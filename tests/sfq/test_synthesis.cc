/** @file Tests for synthesis characterization (paper Table III). */

#include <gtest/gtest.h>

#include "sfq/decoder_circuits.hh"
#include "sfq/synthesis.hh"

namespace nisqpp {
namespace {

TEST(Synthesis, SingleGateRowsMatchTableThree)
{
    // Table III: single AND/OR/NOT gates: depth 1, their cell delay,
    // area 4200, power 0.026.
    for (CellKind kind :
         {CellKind::And2, CellKind::Or2, CellKind::Not}) {
        const SynthesisReport rep =
            synthesize(singleGateNetlist(kind));
        EXPECT_EQ(rep.logicalDepth, 1);
        EXPECT_DOUBLE_EQ(rep.areaUm2, 4200.0);
        EXPECT_DOUBLE_EQ(rep.powerUw, 0.026);
        EXPECT_DOUBLE_EQ(rep.latencyCellPs,
                         cellInfo(kind).delayPs);
        EXPECT_EQ(rep.gateCount, 1u);
        EXPECT_EQ(rep.dffCount, 0u);
    }
}

TEST(Synthesis, Or7MatchesTableThreeShape)
{
    // Table III "OR GATE 7 INPUTS": logical depth 3, latency 21.6 ps
    // (3 OR2 stages).
    const SynthesisReport rep = synthesize(orNNetlist(7));
    EXPECT_EQ(rep.logicalDepth, 3);
    EXPECT_DOUBLE_EQ(rep.latencyCellPs, 3 * 7.2);
    EXPECT_EQ(rep.gateCount, 6u); // n-1 OR2 cells
    // Balancing pads the odd input with DFFs.
    EXPECT_GE(rep.dffCount, 1u);
}

TEST(Synthesis, SubcircuitDepthsNearPaper)
{
    // The paper's subcircuits synthesize to depth 5; ours land a few
    // levels deeper because the corrected protocol needs the formed /
    // fired state (see EXPERIMENTS.md). Require the same small-depth
    // regime and comparable areas.
    for (const Netlist &net :
         {growPairReqSubcircuit(), pairGrantSubcircuit(),
          pairSubcircuit()}) {
        const SynthesisReport rep = synthesize(net);
        EXPECT_GE(rep.logicalDepth, 4) << net.name();
        EXPECT_LE(rep.logicalDepth, 10) << net.name();
        EXPECT_GT(rep.areaUm2, 1e5) << net.name();
        EXPECT_LT(rep.areaUm2, 1.2e6) << net.name();
    }
}

TEST(Synthesis, ResetKeeperUsesFiveBuffers)
{
    const SynthesisReport rep = synthesize(resetKeeperSubcircuit());
    EXPECT_GE(rep.dffCount, 5u);
    EXPECT_GE(rep.gateCount, 6u); // 7-input OR tree
}

TEST(Synthesis, FullModuleWithinPaperRegime)
{
    // Table III full circuit: area 1.28 mm^2, power ~13 uW, depth 6.
    // Our module is deeper (the train-consumption and endpoint
    // absorption logic the corrected protocol needs sits on the
    // critical path; see EXPERIMENTS.md) but must stay within a small
    // constant factor on every figure.
    const SynthesisReport rep = synthesize(fullDecoderModule());
    EXPECT_GE(rep.logicalDepth, 5);
    EXPECT_LE(rep.logicalDepth, 20);
    EXPECT_GT(rep.areaUm2, 0.5e6);
    EXPECT_LT(rep.areaUm2, 3.2e6);
    EXPECT_GT(rep.powerUw, 5.0);
    EXPECT_LT(rep.powerUw, 32.0);
    EXPECT_GT(rep.jjCount, 1000);
}

TEST(Synthesis, AreaIsSumOfCells)
{
    Netlist net("t");
    const NodeId a = net.addInput("a");
    const NodeId b = net.addInput("b");
    net.markOutput(net.andGate(net.notGate(a), net.notGate(b)), "o");
    const SynthesisReport rep = synthesize(net);
    EXPECT_DOUBLE_EQ(rep.areaUm2, 3 * 4200.0);
    EXPECT_EQ(rep.jjCount, 13 + 13 + 17);
}

TEST(Synthesis, ClockedLatencyUsesStagePeriod)
{
    const SynthesisReport rep = synthesize(orNNetlist(4));
    EXPECT_DOUBLE_EQ(rep.latencyClockedPs,
                     rep.logicalDepth * kStagePeriodPs);
}

} // namespace
} // namespace nisqpp
