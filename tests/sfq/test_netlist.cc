/** @file Tests for the netlist IR. */

#include <gtest/gtest.h>

#include "sfq/netlist.hh"

namespace nisqpp {
namespace {

TEST(Netlist, BuildAndQuery)
{
    Netlist net("t");
    const NodeId a = net.addInput("a");
    const NodeId b = net.addInput("b");
    const NodeId g = net.andGate(a, b);
    net.markOutput(g, "out");
    EXPECT_EQ(net.numNodes(), 3u);
    EXPECT_EQ(net.inputs().size(), 2u);
    EXPECT_EQ(net.outputs().size(), 1u);
    EXPECT_EQ(net.countKind(CellKind::And2), 1u);
}

TEST(Netlist, TopoOrderRespectsEdges)
{
    Netlist net("t");
    const NodeId a = net.addInput("a");
    const NodeId b = net.notGate(a);
    const NodeId c = net.notGate(b);
    net.markOutput(c, "o");
    const auto order = net.topoOrder();
    std::vector<int> pos(net.numNodes());
    for (std::size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = static_cast<int>(i);
    EXPECT_LT(pos[a], pos[b]);
    EXPECT_LT(pos[b], pos[c]);
}

TEST(Netlist, StateFeedbackBreaksCycles)
{
    Netlist net("t");
    const NodeId in = net.addInput("in");
    const NodeId latch = net.addStateDff("latch");
    const NodeId next = net.orGate(latch, in);
    net.connectFeedback(latch, next);
    net.markOutput(latch, "o");
    EXPECT_NO_THROW(net.topoOrder());
    EXPECT_EQ(net.topoOrder().size(), net.numNodes());
}

TEST(Netlist, OrTreeCounts)
{
    Netlist net("t");
    std::vector<NodeId> ins;
    for (int i = 0; i < 7; ++i)
        ins.push_back(net.addInput("i" + std::to_string(i)));
    net.markOutput(net.orTree(ins), "o");
    // n-input OR tree uses n-1 two-input gates.
    EXPECT_EQ(net.countKind(CellKind::Or2), 6u);
}

TEST(Netlist, AndTreeSingleInputPassthrough)
{
    Netlist net("t");
    const NodeId a = net.addInput("a");
    EXPECT_EQ(net.andTree({a}), a);
    EXPECT_EQ(net.countKind(CellKind::And2), 0u);
}

TEST(Netlist, ArityChecked)
{
    Netlist net("t");
    const NodeId a = net.addInput("a");
    EXPECT_DEATH(net.addGate(CellKind::And2, {a}), "arity");
}

} // namespace
} // namespace nisqpp
