/** @file Tests for full path balancing (PBMap-style DFF insertion). */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sfq/path_balance.hh"

namespace nisqpp {
namespace {

TEST(PathBalance, AlreadyBalancedUnchanged)
{
    Netlist net("t");
    const NodeId a = net.addInput("a");
    const NodeId b = net.addInput("b");
    net.markOutput(net.andGate(a, b), "o");
    const BalancedNetlist bal = pathBalance(net);
    EXPECT_EQ(bal.insertedDffs, 0u);
    EXPECT_EQ(bal.depth, 1);
    EXPECT_EQ(checkBalanced(bal.netlist), 1);
}

TEST(PathBalance, ShortPathGetsDff)
{
    // o = a AND (NOT b): the a-input path skips a level.
    Netlist net("t");
    const NodeId a = net.addInput("a");
    const NodeId b = net.addInput("b");
    net.markOutput(net.andGate(a, net.notGate(b)), "o");
    const BalancedNetlist bal = pathBalance(net);
    EXPECT_EQ(bal.insertedDffs, 1u);
    EXPECT_EQ(bal.depth, 2);
    EXPECT_EQ(checkBalanced(bal.netlist), 2);
}

TEST(PathBalance, OutputsPaddedToCommonDepth)
{
    Netlist net("t");
    const NodeId a = net.addInput("a");
    const NodeId b = net.addInput("b");
    net.markOutput(net.notGate(a), "short");
    net.markOutput(net.notGate(net.notGate(b)), "long");
    const BalancedNetlist bal = pathBalance(net);
    EXPECT_EQ(bal.depth, 2);
    EXPECT_EQ(checkBalanced(bal.netlist), 2);
}

TEST(PathBalance, SharedChainsReduceDffs)
{
    // One source fans out to consumers at levels 2 and 3: the delay
    // chain must be shared (2 DFFs, not 3).
    Netlist net("t");
    const NodeId a = net.addInput("a");
    const NodeId b = net.addInput("b");
    const NodeId n1 = net.notGate(b);
    const NodeId n2 = net.notGate(n1);
    // Consumers of `a` at depth 2 and 3.
    net.markOutput(net.andGate(a, n1), "o1");
    net.markOutput(net.andGate(a, n2), "o2");
    const BalancedNetlist bal = pathBalance(net);
    EXPECT_EQ(checkBalanced(bal.netlist), 3);
    // Naive insertion would use 1 (o1 path) + 2 (o2 path) + 1 (o1
    // output padding) = 4; sharing the a-chain plus slack assignment
    // must do better.
    EXPECT_LE(bal.insertedDffs, 3u);
}

TEST(PathBalance, CheckDetectsImbalance)
{
    Netlist net("t");
    const NodeId a = net.addInput("a");
    const NodeId b = net.addInput("b");
    net.markOutput(net.andGate(a, net.notGate(b)), "o");
    // Unbalanced as constructed.
    EXPECT_EQ(checkBalanced(net), -1);
}

TEST(PathBalance, RandomDagsBalance)
{
    // Property: pathBalance always yields a fully balanced netlist.
    Rng rng(0xba1a);
    for (int trial = 0; trial < 40; ++trial) {
        Netlist net("rand");
        std::vector<NodeId> pool;
        for (int i = 0; i < 4; ++i)
            pool.push_back(net.addInput("i" + std::to_string(i)));
        for (int g = 0; g < 15; ++g) {
            const NodeId x =
                pool[rng.uniformInt(pool.size())];
            const NodeId y =
                pool[rng.uniformInt(pool.size())];
            switch (rng.uniformInt(3)) {
              case 0:
                pool.push_back(net.notGate(x));
                break;
              case 1:
                if (x != y)
                    pool.push_back(net.andGate(x, y));
                break;
              default:
                if (x != y)
                    pool.push_back(net.orGate(x, y));
                break;
            }
        }
        net.markOutput(pool.back(), "o1");
        net.markOutput(pool[pool.size() / 2], "o2");
        const BalancedNetlist bal = pathBalance(net);
        ASSERT_EQ(checkBalanced(bal.netlist), bal.depth)
            << "trial " << trial;
    }
}

TEST(PathBalance, StateDffsExemptFromBalancing)
{
    Netlist net("t");
    const NodeId in = net.addInput("in");
    const NodeId latch = net.addStateDff("latch");
    const NodeId next = net.orGate(latch, in);
    net.connectFeedback(latch, next);
    net.markOutput(next, "o");
    const BalancedNetlist bal = pathBalance(net);
    EXPECT_EQ(checkBalanced(bal.netlist), bal.depth);
}

} // namespace
} // namespace nisqpp
