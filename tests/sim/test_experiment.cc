/** @file Integration tests for the experiment sweep driver. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/experiment.hh"

namespace nisqpp {
namespace {

TEST(Experiment, LogSpacedGrid)
{
    const auto ps = SweepConfig::logSpaced(0.01, 0.1, 5);
    ASSERT_EQ(ps.size(), 5u);
    EXPECT_NEAR(ps.front(), 0.01, 1e-12);
    EXPECT_NEAR(ps.back(), 0.1, 1e-12);
    for (std::size_t i = 1; i < ps.size(); ++i)
        EXPECT_NEAR(ps[i] / ps[i - 1], ps[1] / ps[0], 1e-9);
}

TEST(Experiment, SweepProducesCurves)
{
    SweepConfig config;
    config.distances = {3, 5};
    config.physicalRates = {0.02, 0.06};
    config.stopRule = {300, 300, 1u << 30};
    const SweepResult result =
        sweepLogicalError(config, meshDecoderFactory(
                                      MeshConfig::finalDesign()));
    ASSERT_EQ(result.curves.size(), 2u);
    EXPECT_EQ(result.curves[0].distance, 3);
    EXPECT_EQ(result.curves[1].distance, 5);
    ASSERT_EQ(result.curves[0].p.size(), 2u);
    // Higher physical rate -> higher logical rate.
    for (const auto &curve : result.curves)
        EXPECT_LE(curve.pl[0], curve.pl[1] + 0.05);
}

TEST(Experiment, SweepIsSeedDeterministic)
{
    SweepConfig config;
    config.distances = {3};
    config.physicalRates = {0.05};
    config.stopRule = {200, 200, 1u << 30};
    const auto factory = mwpmDecoderFactory();
    const auto r1 = sweepLogicalError(config, factory);
    const auto r2 = sweepLogicalError(config, factory);
    EXPECT_EQ(r1.curves[0].pl, r2.curves[0].pl);
}

TEST(Experiment, AllFactoriesProduceWorkingDecoders)
{
    SurfaceLattice lat(3);
    for (const auto &factory :
         {meshDecoderFactory(MeshConfig::finalDesign()),
          mwpmDecoderFactory(), unionFindDecoderFactory(),
          greedyDecoderFactory()}) {
        auto dec = factory(lat, ErrorType::Z);
        ASSERT_NE(dec, nullptr);
        ErrorState st(lat);
        st.flip(ErrorType::Z, 0);
        const Correction corr =
            dec->decode(extractSyndrome(st, ErrorType::Z));
        corr.applyTo(st, ErrorType::Z);
        EXPECT_EQ(extractSyndrome(st, ErrorType::Z).weight(), 0)
            << dec->name();
    }
}

TEST(Experiment, FitSweepReturnsPerDistanceFits)
{
    // Synthetic sweep with an exact scaling law.
    SweepResult result;
    for (int d : {3, 5}) {
        ErrorRateCurve curve;
        curve.distance = d;
        for (double p : {0.01, 0.02, 0.03}) {
            curve.p.push_back(p);
            curve.pl.push_back(0.03 *
                               std::pow(p / 0.05, 0.5 * d));
        }
        result.curves.push_back(curve);
    }
    const auto fits = fitSweep(result, 0.05, 0.04);
    ASSERT_EQ(fits.size(), 2u);
    EXPECT_NEAR(fits[0].c2, 0.5, 1e-9);
    EXPECT_NEAR(fits[1].c2, 0.5, 1e-9);
}

} // namespace
} // namespace nisqpp
