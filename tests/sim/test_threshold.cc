/** @file Tests for threshold estimation on analytic curves. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/threshold.hh"

namespace nisqpp {
namespace {

/** Build an analytic curve PL = c1 (p/pth)^(c2 d). */
ErrorRateCurve
analyticCurve(int d, double c1, double pth, double c2,
              const std::vector<double> &ps)
{
    ErrorRateCurve curve;
    curve.distance = d;
    curve.p = ps;
    for (double p : ps)
        curve.pl.push_back(c1 * std::pow(p / pth, c2 * d));
    return curve;
}

const std::vector<double> kPs{0.005, 0.01, 0.02, 0.03, 0.05, 0.08,
                              0.12};

TEST(Threshold, PseudoThresholdExactOnAnalyticCurve)
{
    // PL = p <=> c1 (p/pth)^(c2 d) = p; for c2 d = 1 the curve is
    // linear in p: PL = (c1/pth) p, crossing only if c1 = pth... use
    // c2 d = 2: PL = c1 p^2/pth^2 = p at p = pth^2/c1.
    const double c1 = 0.1, pth = 0.05;
    ErrorRateCurve curve = analyticCurve(1, c1, pth, 2.0, kPs);
    const auto cross = pseudoThreshold(curve);
    ASSERT_TRUE(cross.has_value());
    EXPECT_NEAR(*cross, pth * pth / c1, 2e-3);
}

TEST(Threshold, PseudoThresholdAbsentWhenAlwaysWorse)
{
    // PL > p everywhere: no pseudo-threshold.
    ErrorRateCurve curve;
    curve.p = kPs;
    for (double p : kPs)
        curve.pl.push_back(std::min(1.0, 10 * p));
    EXPECT_FALSE(pseudoThreshold(curve).has_value());
}

TEST(Threshold, CurveCrossingRecoversAccuracyThreshold)
{
    // Analytic family crossing exactly at pth.
    const auto c5 = analyticCurve(5, 0.03, 0.05, 0.5, kPs);
    const auto c7 = analyticCurve(7, 0.03, 0.05, 0.5, kPs);
    const auto cross = curveCrossing(c5, c7);
    ASSERT_TRUE(cross.has_value());
    EXPECT_NEAR(*cross, 0.05, 5e-3);
}

TEST(Threshold, AccuracyThresholdMedianOfCrossings)
{
    std::vector<ErrorRateCurve> curves;
    for (int d : {3, 5, 7, 9})
        curves.push_back(analyticCurve(d, 0.03, 0.05, 0.5, kPs));
    const auto pth = accuracyThreshold(curves);
    ASSERT_TRUE(pth.has_value());
    EXPECT_NEAR(*pth, 0.05, 5e-3);
}

TEST(Threshold, HandlesZeroSamples)
{
    ErrorRateCurve curve;
    curve.p = {0.01, 0.02, 0.04};
    curve.pl = {0.0, 0.0, 0.0};
    EXPECT_FALSE(pseudoThreshold(curve).has_value());
}

TEST(Threshold, MismatchedCurvesRejected)
{
    ErrorRateCurve a, b;
    a.p = {0.01, 0.02};
    a.pl = {0.1, 0.2};
    b.p = {0.01, 0.03};
    b.pl = {0.1, 0.2};
    EXPECT_DEATH(curveCrossing(a, b), "share p samples");
}

} // namespace
} // namespace nisqpp
