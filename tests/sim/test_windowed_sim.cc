/** @file Faulty-measurement windowed Monte Carlo protocol: batch-lane
 * equivalence, sub-threshold distance scaling, and mode guards. */

#include <gtest/gtest.h>

#include <memory>

#include "decoders/mwpm_decoder.hh"
#include "decoders/union_find_decoder.hh"
#include "noise/noise_model.hh"
#include "sim/monte_carlo.hh"

namespace nisqpp {
namespace {

MonteCarloResult
runWindowed(const SurfaceLattice &lat, const NoiseModel &model,
            Decoder &zDec, Decoder *xDec, int windowRounds,
            std::size_t lanes, std::size_t trials, std::uint64_t seed)
{
    LifetimeSimulator sim(lat, model, zDec, xDec, seed);
    sim.setMeasurementWindow(windowRounds);
    sim.setBatchLanes(lanes);
    StopRule rule;
    rule.minTrials = rule.maxTrials = trials;
    rule.targetFailures = ~std::size_t{0};
    return sim.run(rule);
}

TEST(WindowedSim, BatchLanesMatchScalarDephasing)
{
    SurfaceLattice lat(3);
    const NoiseModel model = NoiseModel::dephasing(0.03, 0.03);
    UnionFindDecoder scalarDec(lat, ErrorType::Z);
    UnionFindDecoder batchDec(lat, ErrorType::Z);

    const MonteCarloResult scalar =
        runWindowed(lat, model, scalarDec, nullptr, 3, 1, 400, 0xabc);
    const MonteCarloResult batched =
        runWindowed(lat, model, batchDec, nullptr, 3, 7, 400, 0xabc);

    EXPECT_EQ(scalar.trials, batched.trials);
    EXPECT_EQ(scalar.failures, batched.failures);
    EXPECT_EQ(scalar.syndromeResidualFailures,
              batched.syndromeResidualFailures);
    EXPECT_GT(scalar.trials, 0u);
}

TEST(WindowedSim, BatchLanesMatchScalarDepolarizing)
{
    // Depolarizing + q > 0 exercises both families' windows.
    SurfaceLattice lat(3);
    const NoiseModel model = NoiseModel::depolarizing(0.03, 0.02);
    MwpmDecoder scalarZ(lat, ErrorType::Z), scalarX(lat, ErrorType::X);
    MwpmDecoder batchZ(lat, ErrorType::Z), batchX(lat, ErrorType::X);

    const MonteCarloResult scalar = runWindowed(
        lat, model, scalarZ, &scalarX, 3, 1, 250, 0x77);
    const MonteCarloResult batched = runWindowed(
        lat, model, batchZ, &batchX, 3, 9, 250, 0x77);

    EXPECT_EQ(scalar.trials, batched.trials);
    EXPECT_EQ(scalar.failures, batched.failures);
    EXPECT_EQ(scalar.syndromeResidualFailures,
              batched.syndromeResidualFailures);
}

/**
 * The acceptance property of the faulty-measurement regime: below the
 * phenomenological threshold (~3% for p = q), windowed decoding over
 * d-round windows suppresses the logical error rate with distance for
 * both spacetime decoders. Seeds are fixed, so this is deterministic.
 */
template <typename DecoderT>
void
expectDistanceOrdering(double p, std::size_t trials)
{
    double last = 1.0;
    for (int d : {3, 5, 9}) {
        SurfaceLattice lat(d);
        const NoiseModel model = NoiseModel::dephasing(p, p);
        DecoderT dec(lat, ErrorType::Z);
        const MonteCarloResult r = runWindowed(
            lat, model, dec, nullptr, d, 1, trials, 0x5eed + d);
        EXPECT_LT(r.logicalErrorRate, last)
            << "PL failed to drop from the previous distance at d="
            << d;
        last = r.logicalErrorRate;
    }
}

TEST(WindowedSim, UnionFindSuppressesWithDistance)
{
    expectDistanceOrdering<UnionFindDecoder>(0.02, 1500);
}

TEST(WindowedSim, MwpmSuppressesWithDistance)
{
    expectDistanceOrdering<MwpmDecoder>(0.02, 700);
}

TEST(WindowedSim, PerfectMeasurementWindowStillCorrects)
{
    // q = 0 windows degenerate gracefully: every round repeats the
    // true syndrome and PL stays comparable to single-round decoding.
    SurfaceLattice lat(5);
    const NoiseModel model = NoiseModel::dephasing(0.02, 0.0);
    UnionFindDecoder dec(lat, ErrorType::Z);
    const MonteCarloResult r =
        runWindowed(lat, model, dec, nullptr, 5, 1, 500, 0x9);
    // A 5-round window accumulates ~5x the single-round error mass;
    // sub-threshold it must still decode nearly all windows.
    EXPECT_LT(r.logicalErrorRate, 0.2);
}

TEST(WindowedSimDeath, MeasurementNoiseWithoutWindowPanics)
{
    // q > 0 without a window would silently simulate q = 0 (the
    // single-round protocols never corrupt measurements).
    SurfaceLattice lat(3);
    const NoiseModel model = NoiseModel::dephasing(0.01, 0.01);
    UnionFindDecoder dec(lat, ErrorType::Z);
    LifetimeSimulator sim(lat, model, dec, nullptr, 1);
    StopRule rule{10, 10, ~std::size_t{0}};
    EXPECT_DEATH(sim.run(rule), "requires a decode window");
}

TEST(WindowedSimDeath, LifetimeModeIsMutuallyExclusive)
{
    SurfaceLattice lat(3);
    const NoiseModel model = NoiseModel::dephasing(0.01, 0.01);
    UnionFindDecoder dec(lat, ErrorType::Z);
    LifetimeSimulator sim(lat, model, dec, nullptr, 1);
    sim.setMeasurementWindow(3);
    sim.setLifetimeMode(true);
    StopRule rule{10, 10, ~std::size_t{0}};
    EXPECT_DEATH(sim.run(rule), "mutually exclusive");
}

} // namespace
} // namespace nisqpp
