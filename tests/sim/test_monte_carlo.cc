/** @file Tests for the Monte Carlo lifetime simulator. */

#include <gtest/gtest.h>

#include "decoders/mwpm_decoder.hh"
#include "sim/monte_carlo.hh"

namespace nisqpp {
namespace {

TEST(MonteCarlo, DeterministicForSeed)
{
    SurfaceLattice lat(3);
    DephasingModel model(0.05);
    MeshDecoder dec1(lat, ErrorType::Z), dec2(lat, ErrorType::Z);
    LifetimeSimulator sim1(lat, model, dec1, nullptr, 99);
    LifetimeSimulator sim2(lat, model, dec2, nullptr, 99);
    StopRule rule{500, 500, 1u << 30};
    const auto r1 = sim1.run(rule);
    const auto r2 = sim2.run(rule);
    EXPECT_EQ(r1.failures, r2.failures);
    EXPECT_EQ(r1.trials, r2.trials);
}

TEST(MonteCarlo, ZeroNoiseZeroFailures)
{
    SurfaceLattice lat(3);
    DephasingModel model(0.0);
    MeshDecoder dec(lat, ErrorType::Z);
    LifetimeSimulator sim(lat, model, dec, nullptr, 1);
    StopRule rule{200, 200, 1u << 30};
    const auto res = sim.run(rule);
    EXPECT_EQ(res.failures, 0u);
    EXPECT_DOUBLE_EQ(res.logicalErrorRate, 0.0);
}

TEST(MonteCarlo, EarlyStopOnTargetFailures)
{
    SurfaceLattice lat(3);
    DephasingModel model(0.2);
    MeshDecoder dec(lat, ErrorType::Z);
    LifetimeSimulator sim(lat, model, dec, nullptr, 5);
    StopRule rule{100, 100000, 50};
    const auto res = sim.run(rule);
    EXPECT_GE(res.failures, 50u);
    EXPECT_LT(res.trials, 5000u);
}

TEST(MonteCarlo, CollectsMeshCycleStats)
{
    SurfaceLattice lat(5);
    DephasingModel model(0.05);
    MeshDecoder dec(lat, ErrorType::Z);
    LifetimeSimulator sim(lat, model, dec, nullptr, 7);
    StopRule rule{300, 300, 1u << 30};
    const auto res = sim.run(rule);
    EXPECT_EQ(res.cycles.count(), res.trials);
    EXPECT_GT(res.cycles.max(), 0.0);
    EXPECT_GT(res.cycleHistogram.total(), 0u);
}

TEST(MonteCarlo, SoftwareDecoderHasNoCycleStats)
{
    SurfaceLattice lat(3);
    DephasingModel model(0.05);
    MwpmDecoder dec(lat, ErrorType::Z);
    LifetimeSimulator sim(lat, model, dec, nullptr, 7);
    StopRule rule{100, 100, 1u << 30};
    const auto res = sim.run(rule);
    EXPECT_EQ(res.cycles.count(), 0u);
}

TEST(MonteCarlo, DepolarizingNeedsXDecoder)
{
    SurfaceLattice lat(3);
    DepolarizingModel model(0.1);
    MeshDecoder dec(lat, ErrorType::Z);
    LifetimeSimulator sim(lat, model, dec, nullptr, 7);
    MonteCarloResult acc;
    EXPECT_DEATH(
        {
            for (int i = 0; i < 50; ++i)
                sim.runRound(acc);
        },
        "no X decoder");
}

TEST(MonteCarlo, DepolarizingWithBothDecoders)
{
    SurfaceLattice lat(3);
    DepolarizingModel model(0.05);
    MeshDecoder dz(lat, ErrorType::Z);
    MeshDecoder dx(lat, ErrorType::X);
    LifetimeSimulator sim(lat, model, dz, &dx, 7);
    StopRule rule{300, 300, 1u << 30};
    const auto res = sim.run(rule);
    EXPECT_EQ(res.trials, 300u);
}

TEST(MonteCarlo, CircuitExtractionMatchesDirect)
{
    // Same seeds, same decoder: syndrome extraction through the
    // stabilizer circuits must give identical Monte Carlo results.
    SurfaceLattice lat(3);
    DephasingModel model(0.08);
    MeshDecoder d1(lat, ErrorType::Z), d2(lat, ErrorType::Z);
    LifetimeSimulator direct(lat, model, d1, nullptr, 31, false);
    LifetimeSimulator circuit(lat, model, d2, nullptr, 31, true);
    StopRule rule{400, 400, 1u << 30};
    EXPECT_EQ(direct.run(rule).failures, circuit.run(rule).failures);
}

TEST(MonteCarlo, WilsonIntervalBracketsRate)
{
    SurfaceLattice lat(3);
    DephasingModel model(0.1);
    MeshDecoder dec(lat, ErrorType::Z);
    LifetimeSimulator sim(lat, model, dec, nullptr, 3);
    StopRule rule{1000, 1000, 1u << 30};
    const auto res = sim.run(rule);
    EXPECT_LE(res.ci.lo, res.logicalErrorRate);
    EXPECT_GE(res.ci.hi, res.logicalErrorRate);
}

} // namespace
} // namespace nisqpp
