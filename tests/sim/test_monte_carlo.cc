/** @file Tests for the Monte Carlo lifetime simulator. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/mesh_decoder.hh"
#include "decoders/mwpm_decoder.hh"
#include "sim/monte_carlo.hh"

namespace nisqpp {
namespace {

TEST(MonteCarlo, DeterministicForSeed)
{
    SurfaceLattice lat(3);
    DephasingModel model(0.05);
    MeshDecoder dec1(lat, ErrorType::Z), dec2(lat, ErrorType::Z);
    LifetimeSimulator sim1(lat, model, dec1, nullptr, 99);
    LifetimeSimulator sim2(lat, model, dec2, nullptr, 99);
    StopRule rule{500, 500, 1u << 30};
    const auto r1 = sim1.run(rule);
    const auto r2 = sim2.run(rule);
    EXPECT_EQ(r1.failures, r2.failures);
    EXPECT_EQ(r1.trials, r2.trials);
}

TEST(MonteCarlo, ZeroNoiseZeroFailures)
{
    SurfaceLattice lat(3);
    DephasingModel model(0.0);
    MeshDecoder dec(lat, ErrorType::Z);
    LifetimeSimulator sim(lat, model, dec, nullptr, 1);
    StopRule rule{200, 200, 1u << 30};
    const auto res = sim.run(rule);
    EXPECT_EQ(res.failures, 0u);
    EXPECT_DOUBLE_EQ(res.logicalErrorRate, 0.0);
}

TEST(MonteCarlo, EarlyStopOnTargetFailures)
{
    SurfaceLattice lat(3);
    DephasingModel model(0.2);
    MeshDecoder dec(lat, ErrorType::Z);
    LifetimeSimulator sim(lat, model, dec, nullptr, 5);
    StopRule rule{100, 100000, 50};
    const auto res = sim.run(rule);
    EXPECT_GE(res.failures, 50u);
    EXPECT_LT(res.trials, 5000u);
}

TEST(MonteCarlo, CollectsMeshCycleStats)
{
    SurfaceLattice lat(5);
    DephasingModel model(0.05);
    MeshDecoder dec(lat, ErrorType::Z);
    LifetimeSimulator sim(lat, model, dec, nullptr, 7);
    StopRule rule{300, 300, 1u << 30};
    const auto res = sim.run(rule);
    EXPECT_EQ(res.cycles.count(), res.trials);
    EXPECT_GT(res.cycles.max(), 0.0);
    EXPECT_GT(res.cycleHistogram.total(), 0u);
}

TEST(MonteCarlo, SoftwareDecoderHasNoCycleStats)
{
    SurfaceLattice lat(3);
    DephasingModel model(0.05);
    MwpmDecoder dec(lat, ErrorType::Z);
    LifetimeSimulator sim(lat, model, dec, nullptr, 7);
    StopRule rule{100, 100, 1u << 30};
    const auto res = sim.run(rule);
    EXPECT_EQ(res.cycles.count(), 0u);
}

TEST(MonteCarlo, DepolarizingNeedsXDecoder)
{
    SurfaceLattice lat(3);
    DepolarizingModel model(0.1);
    MeshDecoder dec(lat, ErrorType::Z);
    LifetimeSimulator sim(lat, model, dec, nullptr, 7);
    MonteCarloResult acc;
    EXPECT_DEATH(
        {
            for (int i = 0; i < 50; ++i)
                sim.runRound(acc);
        },
        "no X decoder");
}

TEST(MonteCarlo, DepolarizingWithBothDecoders)
{
    SurfaceLattice lat(3);
    DepolarizingModel model(0.05);
    MeshDecoder dz(lat, ErrorType::Z);
    MeshDecoder dx(lat, ErrorType::X);
    LifetimeSimulator sim(lat, model, dz, &dx, 7);
    StopRule rule{300, 300, 1u << 30};
    const auto res = sim.run(rule);
    EXPECT_EQ(res.trials, 300u);
}

TEST(MonteCarlo, CircuitExtractionMatchesDirect)
{
    // Same seeds, same decoder: syndrome extraction through the
    // stabilizer circuits must give identical Monte Carlo results.
    SurfaceLattice lat(3);
    DephasingModel model(0.08);
    MeshDecoder d1(lat, ErrorType::Z), d2(lat, ErrorType::Z);
    LifetimeSimulator direct(lat, model, d1, nullptr, 31, false);
    LifetimeSimulator circuit(lat, model, d2, nullptr, 31, true);
    StopRule rule{400, 400, 1u << 30};
    EXPECT_EQ(direct.run(rule).failures, circuit.run(rule).failures);
}

TEST(MonteCarlo, MergeMatchesOneLongRun)
{
    // Two half-length runs on distinct child streams, merged, must
    // aggregate exactly like running the same two shards into one
    // accumulator sequentially.
    SurfaceLattice lat(3);
    DephasingModel model(0.08);
    StopRule half{250, 250, 1u << 30};

    MeshDecoder d1(lat, ErrorType::Z), d2(lat, ErrorType::Z);
    LifetimeSimulator sim1(lat, model, d1, nullptr, 41);
    LifetimeSimulator sim2(lat, model, d2, nullptr, 42);
    MonteCarloResult a = sim1.run(half);
    const MonteCarloResult b = sim2.run(half);

    a.merge(b);
    a.finalize();
    EXPECT_EQ(a.trials, 500u);
    EXPECT_EQ(a.cycles.count(), 500u);
    EXPECT_EQ(a.cycleHistogram.total(), 500u);
    EXPECT_DOUBLE_EQ(a.logicalErrorRate,
                     static_cast<double>(a.failures) / 500.0);
    EXPECT_LE(a.ci.lo, a.logicalErrorRate);
    EXPECT_GE(a.ci.hi, a.logicalErrorRate);
}

TEST(MonteCarlo, MergeIntoDefaultAccumulator)
{
    SurfaceLattice lat(3);
    DephasingModel model(0.08);
    MeshDecoder dec(lat, ErrorType::Z);
    LifetimeSimulator sim(lat, model, dec, nullptr, 43);
    const MonteCarloResult shard = sim.run({100, 100, 1u << 30});

    MonteCarloResult acc; // default: unsized histogram, zero counts
    acc.merge(shard);
    acc.finalize();
    EXPECT_EQ(acc.trials, shard.trials);
    EXPECT_EQ(acc.failures, shard.failures);
    EXPECT_EQ(acc.cycleHistogram.numBins(),
              shard.cycleHistogram.numBins());
    EXPECT_EQ(acc.cycleHistogram.total(),
              shard.cycleHistogram.total());
}

TEST(MonteCarlo, StopRuleScaledMultipliesTrialBudgets)
{
    const StopRule rule{1000, 20000, 100};
    const StopRule doubled = rule.scaled(2.0);
    EXPECT_EQ(doubled.minTrials, 2000u);
    EXPECT_EQ(doubled.maxTrials, 40000u);
    EXPECT_EQ(doubled.targetFailures, 100u); // early stop untouched

    const StopRule ignored = rule.scaled(-3.0);
    EXPECT_EQ(ignored.minTrials, 1000u);
    EXPECT_EQ(ignored.maxTrials, 20000u);

    // Huge multipliers clamp instead of overflowing to zero budgets.
    const StopRule huge = rule.scaled(1e30);
    EXPECT_GT(huge.minTrials, rule.minTrials);
    EXPECT_GT(huge.maxTrials, rule.maxTrials);
    EXPECT_GE(huge.maxTrials, huge.minTrials);

    // Tiny multipliers keep at least one trial: a zero-trial run
    // would masquerade as a genuine zero-failure result.
    const StopRule tiny = rule.scaled(1e-9);
    EXPECT_EQ(tiny.minTrials, 1u);
    EXPECT_EQ(tiny.maxTrials, 1u);
}

TEST(MonteCarlo, ScaledByEnvRejectsMalformedValues)
{
    const StopRule rule{1000, 20000, 100};
    const char *bad[] = {"-2", "0",    "abc", "nan",
                         "inf", "1.5x", "",    "1e30"};
    for (const char *value : bad) {
        setenv("NISQPP_TRIALS", value, 1);
        const StopRule out = rule.scaledByEnv();
        EXPECT_EQ(out.minTrials, rule.minTrials) << value;
        EXPECT_EQ(out.maxTrials, rule.maxTrials) << value;
    }

    setenv("NISQPP_TRIALS", "2.5", 1);
    const StopRule scaled = rule.scaledByEnv();
    EXPECT_EQ(scaled.minTrials, 2500u);
    EXPECT_EQ(scaled.maxTrials, 50000u);

    unsetenv("NISQPP_TRIALS");
    const StopRule unscaled = rule.scaledByEnv();
    EXPECT_EQ(unscaled.minTrials, rule.minTrials);
}

TEST(MonteCarlo, WilsonIntervalBracketsRate)
{
    SurfaceLattice lat(3);
    DephasingModel model(0.1);
    MeshDecoder dec(lat, ErrorType::Z);
    LifetimeSimulator sim(lat, model, dec, nullptr, 3);
    StopRule rule{1000, 1000, 1u << 30};
    const auto res = sim.run(rule);
    EXPECT_LE(res.ci.lo, res.logicalErrorRate);
    EXPECT_GE(res.ci.hi, res.logicalErrorRate);
}

/** Every aggregate field, including FP accumulations, bit-for-bit. */
void
expectSameAggregates(const MonteCarloResult &a, const MonteCarloResult &b)
{
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.syndromeResidualFailures, b.syndromeResidualFailures);
    EXPECT_DOUBLE_EQ(a.logicalErrorRate, b.logicalErrorRate);
    EXPECT_EQ(a.cycles.count(), b.cycles.count());
    EXPECT_DOUBLE_EQ(a.cycles.mean(), b.cycles.mean());
    EXPECT_DOUBLE_EQ(a.cycles.variance(), b.cycles.variance());
    EXPECT_DOUBLE_EQ(a.cycles.max(), b.cycles.max());
    ASSERT_EQ(a.cycleHistogram.numBins(), b.cycleHistogram.numBins());
    EXPECT_EQ(a.cycleHistogram.total(), b.cycleHistogram.total());
    for (std::size_t bin = 0; bin < a.cycleHistogram.numBins(); ++bin)
        EXPECT_EQ(a.cycleHistogram.bin(bin), b.cycleHistogram.bin(bin));
}

TEST(MonteCarlo, BatchLanesPreserveAggregates)
{
    // The batched per-round protocol consumes the same RNG sequence
    // and records telemetry in the same round order as the scalar
    // loop, so every aggregate is byte-identical for any group size —
    // including odd ones that straddle run boundaries.
    SurfaceLattice lat(5);
    DephasingModel model(0.08);
    const StopRule rule{301, 301, ~std::size_t{0}};

    MeshDecoder scalar_dec(lat, ErrorType::Z);
    LifetimeSimulator scalar(lat, model, scalar_dec, nullptr, 1234);
    const MonteCarloResult reference = scalar.run(rule);

    for (std::size_t lanes : {2u, 7u, 64u}) {
        MeshDecoder dec(lat, ErrorType::Z);
        LifetimeSimulator batched(lat, model, dec, nullptr, 1234);
        batched.setBatchLanes(lanes);
        expectSameAggregates(reference, batched.run(rule));
    }
}

TEST(MonteCarlo, BatchedDepolarizingRunsBothFamilies)
{
    SurfaceLattice lat(3);
    DepolarizingModel model(0.06);
    const StopRule rule{250, 250, ~std::size_t{0}};

    MeshDecoder z1(lat, ErrorType::Z), x1(lat, ErrorType::X);
    LifetimeSimulator scalar(lat, model, z1, &x1, 777);
    const MonteCarloResult reference = scalar.run(rule);

    MeshDecoder z2(lat, ErrorType::Z), x2(lat, ErrorType::X);
    LifetimeSimulator batched(lat, model, z2, &x2, 777);
    batched.setBatchLanes(32);
    expectSameAggregates(reference, batched.run(rule));
}

TEST(MonteCarlo, BatchedEarlyStopMatchesScalar)
{
    // The stop rule can trip mid-group; the surplus lanes must be
    // discarded so counters match the scalar loop exactly.
    SurfaceLattice lat(3);
    DephasingModel model(0.15);
    const StopRule rule{10, 4000, 25};

    MeshDecoder d1(lat, ErrorType::Z);
    LifetimeSimulator scalar(lat, model, d1, nullptr, 42);
    const MonteCarloResult reference = scalar.run(rule);
    ASSERT_GE(reference.failures, 25u);
    ASSERT_LT(reference.trials, 4000u);

    MeshDecoder d2(lat, ErrorType::Z);
    LifetimeSimulator batched(lat, model, d2, nullptr, 42);
    batched.setBatchLanes(17);
    expectSameAggregates(reference, batched.run(rule));
}

TEST(MonteCarlo, BatchFallsBackToScalarInLifetimeMode)
{
    // Lifetime mode carries state across rounds, so the knob must be
    // a no-op there rather than a protocol change.
    SurfaceLattice lat(3);
    DephasingModel model(0.1);
    const StopRule rule{200, 200, ~std::size_t{0}};

    MeshDecoder d1(lat, ErrorType::Z);
    LifetimeSimulator scalar(lat, model, d1, nullptr, 9);
    scalar.setLifetimeMode(true);
    const MonteCarloResult reference = scalar.run(rule);

    MeshDecoder d2(lat, ErrorType::Z);
    LifetimeSimulator batched(lat, model, d2, nullptr, 9);
    batched.setLifetimeMode(true);
    batched.setBatchLanes(16);
    expectSameAggregates(reference, batched.run(rule));
}

TEST(MonteCarlo, BatchedSoftwareDecoderUsesFallbackLoop)
{
    SurfaceLattice lat(3);
    DephasingModel model(0.08);
    const StopRule rule{200, 200, ~std::size_t{0}};

    MwpmDecoder d1(lat, ErrorType::Z);
    LifetimeSimulator scalar(lat, model, d1, nullptr, 11);
    const MonteCarloResult reference = scalar.run(rule);

    MwpmDecoder d2(lat, ErrorType::Z);
    LifetimeSimulator batched(lat, model, d2, nullptr, 11);
    batched.setBatchLanes(8);
    expectSameAggregates(reference, batched.run(rule));
}

} // namespace
} // namespace nisqpp
