/**
 * @file The engine's headline guarantee: for one master seed and one
 * shard size, the merged aggregates of a sweep are byte-identical at
 * any thread count.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "sim/experiment.hh"

namespace nisqpp {
namespace {

SweepConfig
smallSweep()
{
    SweepConfig config;
    config.distances = {3, 5};
    config.physicalRates = {0.03, 0.08};
    config.lifetimeMode = true;
    config.stopRule = {600, 600, 1u << 30};
    config.seed = 0xfeedULL;
    return config;
}

void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t di = 0; di < a.cells.size(); ++di) {
        ASSERT_EQ(a.cells[di].size(), b.cells[di].size());
        for (std::size_t pi = 0; pi < a.cells[di].size(); ++pi) {
            const MonteCarloResult &ca = a.cells[di][pi];
            const MonteCarloResult &cb = b.cells[di][pi];
            EXPECT_EQ(ca.trials, cb.trials);
            EXPECT_EQ(ca.failures, cb.failures);
            EXPECT_EQ(ca.syndromeResidualFailures,
                      cb.syndromeResidualFailures);
            EXPECT_DOUBLE_EQ(ca.logicalErrorRate, cb.logicalErrorRate);
            // Cycle statistics merge in shard-index order, so even the
            // floating-point accumulations must agree bit-for-bit.
            EXPECT_EQ(ca.cycles.count(), cb.cycles.count());
            EXPECT_DOUBLE_EQ(ca.cycles.mean(), cb.cycles.mean());
            EXPECT_DOUBLE_EQ(ca.cycles.variance(),
                             cb.cycles.variance());
            EXPECT_DOUBLE_EQ(ca.cycles.max(), cb.cycles.max());
            ASSERT_EQ(ca.cycleHistogram.numBins(),
                      cb.cycleHistogram.numBins());
            EXPECT_EQ(ca.cycleHistogram.total(),
                      cb.cycleHistogram.total());
            EXPECT_EQ(ca.cycleHistogram.overflow(),
                      cb.cycleHistogram.overflow());
            for (std::size_t bin = 0;
                 bin < ca.cycleHistogram.numBins(); ++bin)
                EXPECT_EQ(ca.cycleHistogram.bin(bin),
                          cb.cycleHistogram.bin(bin));
        }
        EXPECT_EQ(a.curves[di].pl, b.curves[di].pl);
    }
}

TEST(EngineDeterminism, OneThreadEqualsFourThreads)
{
    const SweepConfig config = smallSweep();
    const auto factory = meshDecoderFactory(MeshConfig::finalDesign());

    EngineOptions one;
    one.threads = 1;
    one.shardTrials = 128; // several shards per cell
    EngineOptions four = one;
    four.threads = 4;

    Engine serial(one), parallel(four);
    expectIdentical(serial.runSweep(config, factory),
                    parallel.runSweep(config, factory));
}

TEST(EngineDeterminism, EarlyStopIsThreadCountInvariant)
{
    // targetFailures trips mid-sweep; the merged prefix must be the
    // same ordered set of shards regardless of completion order.
    SweepConfig config;
    config.distances = {3};
    config.physicalRates = {0.15};
    config.stopRule = {100, 4000, 40};
    config.seed = 0xdeadULL;
    const auto factory = mwpmDecoderFactory();

    EngineOptions one;
    one.threads = 1;
    one.shardTrials = 50;
    EngineOptions four = one;
    four.threads = 4;

    Engine serial(one), parallel(four);
    const auto a = serial.runSweep(config, factory);
    const auto b = parallel.runSweep(config, factory);
    EXPECT_EQ(a.cells[0][0].trials, b.cells[0][0].trials);
    EXPECT_EQ(a.cells[0][0].failures, b.cells[0][0].failures);
    EXPECT_GE(a.cells[0][0].failures, 40u);
    EXPECT_LT(a.cells[0][0].trials, 4000u);
}

TEST(EngineDeterminism, BatchedLanesMatchScalarAtAnyThreadCount)
{
    // The headline guarantee extended to the lane-packed batch path:
    // a 4-thread engine decoding 256-round groups produces the same
    // bytes as a 1-thread scalar engine, for the same seed and shard
    // size. Group boundaries (including odd sizes that straddle shard
    // remainders) never leak into the aggregates.
    SweepConfig config;
    config.distances = {3, 5};
    config.physicalRates = {0.05, 0.1};
    config.stopRule = {600, 600, 1u << 30};
    config.seed = 0xbeefULL;
    const auto factory = meshDecoderFactory(MeshConfig::finalDesign());

    EngineOptions scalar;
    scalar.threads = 1;
    scalar.shardTrials = 128;
    scalar.batchLanes = 1;
    EngineOptions batchedOdd = scalar;
    batchedOdd.batchLanes = 7;
    EngineOptions batchedMt = scalar;
    batchedMt.threads = 4;
    batchedMt.batchLanes = 256;

    Engine a(scalar), b(batchedOdd), c(batchedMt);
    const SweepResult reference = a.runSweep(config, factory);
    expectIdentical(reference, b.runSweep(config, factory));
    expectIdentical(reference, c.runSweep(config, factory));
}

TEST(EngineDeterminism, BatchedDepolarizingSweepMatchesScalar)
{
    // Depolarizing cells decode both families; the batched path
    // interleaves Z/X telemetry per round exactly like the scalar
    // loop, so even the Welford accumulations agree bit-for-bit.
    SweepConfig config;
    config.distances = {3};
    config.physicalRates = {0.06};
    config.noise = NoiseSpec::depolarizing();
    config.stopRule = {300, 300, 1u << 30};
    config.seed = 0xd0d0ULL;
    const auto factory = meshDecoderFactory(MeshConfig::finalDesign());

    EngineOptions scalar;
    scalar.threads = 1;
    scalar.shardTrials = 100;
    EngineOptions batched = scalar;
    batched.threads = 3;
    batched.batchLanes = 33;

    Engine a(scalar), b(batched);
    expectIdentical(a.runSweep(config, factory),
                    b.runSweep(config, factory));
}

TEST(EngineDeterminism, UnionFindLaneAndThreadGridIsInvariant)
{
    // The lane-packed union-find batch engine under the full grid of
    // batch lanes {1, 4, 64} x threads {1, 4}: every combination must
    // produce the same bytes as the scalar single-threaded reference,
    // including the bit-planed growth rounds folded into the cycle
    // statistics.
    SweepConfig config;
    config.distances = {3, 5};
    config.physicalRates = {0.04, 0.09};
    config.lifetimeMode = true;
    config.stopRule = {500, 500, 1u << 30};
    config.seed = 0x0f00dULL;
    const auto factory = unionFindDecoderFactory();

    EngineOptions reference;
    reference.threads = 1;
    reference.shardTrials = 96;
    reference.batchLanes = 1;
    Engine ref(reference);
    const SweepResult expected = ref.runSweep(config, factory);

    for (std::size_t lanes : {1u, 4u, 64u}) {
        for (int threads : {1, 4}) {
            EngineOptions options = reference;
            options.batchLanes = lanes;
            options.threads = threads;
            Engine engine(options);
            SCOPED_TRACE("lanes=" + std::to_string(lanes) +
                         " threads=" + std::to_string(threads));
            expectIdentical(expected, engine.runSweep(config, factory));
        }
    }
}

TEST(EngineDeterminism, WindowedSweepIsThreadAndLaneInvariant)
{
    // The faulty-measurement windowed protocol inherits the headline
    // guarantee: sharded windowed cells merge to the same bytes at
    // any thread count, batched or scalar.
    SweepConfig config;
    config.distances = {3};
    config.physicalRates = {0.02, 0.04};
    config.noise = NoiseSpec::dephasing().withQ(0.02); // q fixed
    config.windowRounds = 3;
    config.stopRule = {400, 400, 1u << 30};
    config.seed = 0x91ceULL;
    const auto factory = unionFindDecoderFactory();

    EngineOptions scalar;
    scalar.threads = 1;
    scalar.shardTrials = 64;
    EngineOptions batchedMt = scalar;
    batchedMt.threads = 4;
    batchedMt.batchLanes = 13;

    Engine a(scalar), b(batchedMt);
    expectIdentical(a.runSweep(config, factory),
                    b.runSweep(config, factory));
}

TEST(EngineDeterminism, CellSpecBatchLanesOverridesEngineDefault)
{
    SurfaceLattice lattice(3);
    const DecoderFactory factory =
        meshDecoderFactory(MeshConfig::finalDesign());
    CellSpec cell;
    cell.lattice = &lattice;
    cell.physicalRate = 0.08;
    cell.rule = {400, 400, 1u << 30};
    cell.seed = 7;
    cell.factory = &factory;

    EngineOptions scalarOptions; // engine default: scalar
    Engine engine(scalarOptions);
    const MonteCarloResult reference = engine.runCell(cell);
    cell.batchLanes = 64; // per-cell override onto the batch path
    const MonteCarloResult batched = engine.runCell(cell);
    EXPECT_EQ(reference.trials, batched.trials);
    EXPECT_EQ(reference.failures, batched.failures);
    EXPECT_DOUBLE_EQ(reference.cycles.mean(), batched.cycles.mean());
}

TEST(EngineDeterminism, RepeatedRunsIdentical)
{
    const SweepConfig config = smallSweep();
    const auto factory = meshDecoderFactory(MeshConfig::finalDesign());
    EngineOptions options;
    options.threads = 2;
    options.shardTrials = 128;
    Engine engine(options);
    expectIdentical(engine.runSweep(config, factory),
                    engine.runSweep(config, factory));
}

TEST(EngineDeterminism, RunCellFinalizesDerivedFields)
{
    SurfaceLattice lattice(3);
    const DecoderFactory factory = mwpmDecoderFactory();
    CellSpec cell;
    cell.lattice = &lattice;
    cell.physicalRate = 0.08;
    cell.rule = {400, 400, 1u << 30};
    cell.seed = 7;
    cell.factory = &factory;

    EngineOptions options;
    options.threads = 2;
    options.shardTrials = 100;
    Engine engine(options);
    const MonteCarloResult res = engine.runCell(cell);
    EXPECT_EQ(res.trials, 400u);
    EXPECT_DOUBLE_EQ(res.logicalErrorRate,
                     static_cast<double>(res.failures) / res.trials);
    EXPECT_LE(res.ci.lo, res.logicalErrorRate);
    EXPECT_GE(res.ci.hi, res.logicalErrorRate);
}

TEST(EngineDeterminism, LegacyWrapperMatchesEngine)
{
    // The wrapper applies NISQPP_TRIALS; neutralize the environment so
    // both sides see the same budgets, then restore it.
    const char *saved = std::getenv("NISQPP_TRIALS");
    const std::string savedValue = saved ? saved : "";
    unsetenv("NISQPP_TRIALS");

    const SweepConfig config = smallSweep();
    const auto factory = meshDecoderFactory(MeshConfig::finalDesign());
    EngineOptions options; // one thread, default shard size
    Engine engine(options);
    expectIdentical(sweepLogicalError(config, factory),
                    engine.runSweep(config, factory));

    if (saved)
        setenv("NISQPP_TRIALS", savedValue.c_str(), 1);
}

} // namespace
} // namespace nisqpp
