/**
 * @file Golden-value regression net over the whole scenario registry:
 * every registered scenario runs at a small pinned seed/budget and its
 * CSV output is compared against a checked-in golden file, so any
 * refactor that silently changes the physics fails CI. Host-timing
 * columns (wall-clock throughput) and build-type markers are masked
 * before comparison; numeric cells tolerate sub-0.2% formatting jitter
 * (libm/FMA last-ulp differences across toolchains) while integer
 * counts — trials, failures, backlog rounds — must match exactly.
 *
 * Regenerate after an intentional physics change with:
 *   NISQPP_UPDATE_GOLDEN=1 ctest --test-dir build -R Golden
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/scenario.hh"

#ifndef NISQPP_GOLDEN_DIR
#error "build must define NISQPP_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

namespace nisqpp {
namespace {

/** Columns whose values depend on the host's wall clock. */
const std::vector<std::string> kMaskedColumns{
    "host ms", "trials/s", "ns/decode"};

/** Row keys whose values depend on the build type, not the physics. */
const std::vector<std::string> kMaskedRowKeys{"assertions"};

std::filesystem::path
goldenPath(const std::string &scenario)
{
    return std::filesystem::path(NISQPP_GOLDEN_DIR) /
           (scenario + ".golden.csv");
}

std::vector<std::string>
splitCells(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream is(line);
    while (std::getline(is, cell, ','))
        cells.push_back(cell);
    if (!line.empty() && line.back() == ',')
        cells.push_back("");
    return cells;
}

std::string
joinCells(const std::vector<std::string> &cells)
{
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            line += ',';
        line += cells[i];
    }
    return line;
}

/**
 * Replace host-timing and build-marker cells with "-" so the golden
 * comparison only sees deterministic physics output.
 */
std::string
sanitize(const std::string &csv)
{
    std::istringstream is(csv);
    std::ostringstream os;
    std::string line;
    std::vector<std::size_t> masked; // column indices of current table
    bool expectHeader = false;
    while (std::getline(is, line)) {
        if (!line.empty() && line[0] == '#') {
            expectHeader = true; // next line is the table header
            masked.clear();
            os << line << '\n';
            continue;
        }
        std::vector<std::string> cells = splitCells(line);
        if (expectHeader) {
            expectHeader = false;
            for (std::size_t c = 0; c < cells.size(); ++c) {
                for (const std::string &name : kMaskedColumns)
                    if (cells[c] == name)
                        masked.push_back(c);
                // Whole masked metric namespaces: any column carrying
                // a timing.* span summary or sched.* pool counter is
                // host wall clock by definition and must never be
                // golden-compared.
                if (cells[c].rfind("timing.", 0) == 0 ||
                    cells[c].rfind("sched.", 0) == 0)
                    masked.push_back(c);
            }
            os << line << '\n';
            continue;
        }
        for (std::size_t c : masked)
            if (c < cells.size())
                cells[c] = "-";
        if (!cells.empty())
            for (const std::string &key : kMaskedRowKeys)
                if (cells[0] == key)
                    for (std::size_t c = 1; c < cells.size(); ++c)
                        cells[c] = "-";
        os << joinCells(cells) << '\n';
    }
    return os.str();
}

bool
parseNumber(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end && *end == '\0';
}

/** Digits only (optional sign): a count, pinned exactly. */
bool
isIntegerLiteral(const std::string &text)
{
    if (text.empty())
        return false;
    std::size_t i = (text[0] == '-' || text[0] == '+') ? 1 : 0;
    if (i == text.size())
        return false;
    for (; i < text.size(); ++i)
        if (text[i] < '0' || text[i] > '9')
            return false;
    return true;
}

/**
 * Cells match when the strings are equal, or when both are
 * *fractional* numbers within 0.2% (printing jitter from last-ulp
 * libm/FMA differences across toolchains). Integer literals — trials,
 * failures, backlog rounds, queue depths — get no tolerance: any
 * count drift is a physics change and must fail.
 */
bool
cellsMatch(const std::string &a, const std::string &b)
{
    if (a == b)
        return true;
    if (isIntegerLiteral(a) || isIntegerLiteral(b))
        return false;
    double va = 0.0, vb = 0.0;
    if (!parseNumber(a, va) || !parseNumber(b, vb))
        return false;
    const double scale = std::max(std::abs(va), std::abs(vb));
    return std::abs(va - vb) <= std::max(1e-9, 2e-3 * scale);
}

/** The pinned run configuration of every golden entry. */
RunOptions
goldenOptions()
{
    RunOptions options;
    options.threads = 1;
    options.shardTrials = 512;
    options.trialsScale = 0.02;
    options.seedSet = true;
    options.seed = 0x601dULL;
    options.format = OutputFormat::Csv;
    return options;
}

class GoldenEnv
{
  public:
    /** Neutralize NISQPP_TRIALS so budgets are exactly as pinned. */
    GoldenEnv()
    {
        const char *env = std::getenv("NISQPP_TRIALS");
        if (env) {
            saved_ = env;
            hadValue_ = true;
            unsetenv("NISQPP_TRIALS");
        }
    }
    ~GoldenEnv()
    {
        if (hadValue_)
            setenv("NISQPP_TRIALS", saved_.c_str(), 1);
    }

  private:
    std::string saved_;
    bool hadValue_ = false;
};

class ScenarioGolden : public ::testing::TestWithParam<std::string>
{};

TEST_P(ScenarioGolden, OutputMatchesGolden)
{
    const std::string name = GetParam();
    GoldenEnv env;

    std::ostringstream os;
    ASSERT_EQ(runScenario(name, goldenOptions(), os), 0);
    const std::string actual = sanitize(os.str());

    const std::filesystem::path path = goldenPath(name);
    if (std::getenv("NISQPP_UPDATE_GOLDEN")) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        SUCCEED() << "golden regenerated: " << path;
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "scenario '" << name << "' has no golden entry at " << path
        << "; every registered scenario must have one (regenerate "
           "with NISQPP_UPDATE_GOLDEN=1)";
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string expected = sanitize(buffer.str());

    std::istringstream as(actual), es(expected);
    std::string aline, eline;
    std::size_t lineNo = 0;
    while (true) {
        const bool aMore = static_cast<bool>(std::getline(as, aline));
        const bool eMore = static_cast<bool>(std::getline(es, eline));
        ++lineNo;
        ASSERT_EQ(aMore, eMore)
            << "line count diverges at line " << lineNo << " of "
            << path;
        if (!aMore)
            break;
        const auto aCells = splitCells(aline);
        const auto eCells = splitCells(eline);
        ASSERT_EQ(aCells.size(), eCells.size())
            << "arity diverges at line " << lineNo << "\n  golden: "
            << eline << "\n  actual: " << aline;
        for (std::size_t c = 0; c < aCells.size(); ++c)
            EXPECT_TRUE(cellsMatch(aCells[c], eCells[c]))
                << "cell " << c << " at line " << lineNo
                << "\n  golden: " << eline << "\n  actual: " << aline;
    }
}

std::vector<std::string>
registeredScenarioNames()
{
    std::vector<std::string> names;
    for (const Scenario &s : scenarioRegistry())
        names.push_back(s.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ScenarioGolden,
    ::testing::ValuesIn(registeredScenarioNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(ScenarioGoldenRegistry, EveryScenarioHasGoldenEntry)
{
    // A scenario registered without a golden file fails here even
    // before its parameterized comparison runs.
    for (const Scenario &s : scenarioRegistry())
        EXPECT_TRUE(std::filesystem::exists(goldenPath(s.name)))
            << "scenario '" << s.name
            << "' is registered but has no golden entry; run with "
               "NISQPP_UPDATE_GOLDEN=1 to create "
            << goldenPath(s.name);
}

TEST(ScenarioGoldenMasking, TimingNamespaceColumnsAreMasked)
{
    // A table that sneaks wall-clock metrics into its header must come
    // out of sanitize() with those cells blanked — otherwise the first
    // scenario to print a timing.* column would turn the golden net
    // flaky.
    const std::string csv =
        "# leaky\n"
        "decoder,timing.span.decode.total_ns,PL,sched.pool.steals\n"
        "union_find,123456,0.5,7\n";
    const std::string expected =
        "# leaky\n"
        "decoder,timing.span.decode.total_ns,PL,sched.pool.steals\n"
        "union_find,-,0.5,-\n";
    EXPECT_EQ(sanitize(csv), expected);
}

TEST(ScenarioGoldenMasking, GoldenFilesAreSanitizeFixedPoints)
{
    // Checked-in goldens are written from sanitized output, so every
    // masked cell is already "-". A golden that sanitize() would still
    // change carries an unmasked wall-clock field — committed by hand
    // or through a masking gap — and must be regenerated.
    for (const Scenario &s : scenarioRegistry()) {
        std::ifstream in(goldenPath(s.name));
        if (!in.good())
            continue; // missing entries fail EveryScenarioHasGoldenEntry
        std::stringstream buffer;
        buffer << in.rdbuf();
        EXPECT_EQ(sanitize(buffer.str()), buffer.str())
            << "golden for '" << s.name
            << "' contains unmasked host-timing cells";
    }
}

TEST(ScenarioGoldenMasking, SanitizedOutputIsRunToRunStable)
{
    // Leak detector: run every scenario twice and require the
    // sanitized outputs to match byte for byte. Any wall-clock or
    // scheduling value printed outside the masked columns differs
    // between the runs and fails here deterministically (instead of
    // intermittently against the golden).
    GoldenEnv env;
    for (const Scenario &s : scenarioRegistry()) {
        std::ostringstream first, second;
        ASSERT_EQ(runScenario(s.name, goldenOptions(), first), 0);
        ASSERT_EQ(runScenario(s.name, goldenOptions(), second), 0);
        EXPECT_EQ(sanitize(first.str()), sanitize(second.str()))
            << "scenario '" << s.name
            << "' leaks host-dependent values past the column masks";
    }
}

TEST(ScenarioGoldenRegistry, NoOrphanGoldenFiles)
{
    // Stale golden files (for renamed/removed scenarios) rot silently;
    // flag them so the net stays exactly the registry.
    for (const auto &entry : std::filesystem::directory_iterator(
             std::filesystem::path(NISQPP_GOLDEN_DIR))) {
        const std::string file = entry.path().filename().string();
        const std::string suffix = ".golden.csv";
        if (file.size() <= suffix.size() ||
            file.substr(file.size() - suffix.size()) != suffix)
            continue;
        const std::string name =
            file.substr(0, file.size() - suffix.size());
        EXPECT_NE(findScenario(name), nullptr)
            << "golden file " << file
            << " has no registered scenario; delete it or restore "
               "the scenario";
    }
}

} // namespace
} // namespace nisqpp
