/** @file Tests for the scenario registry and format-aware output. */

#include <gtest/gtest.h>

#include <sstream>

#include "engine/scenario.hh"

namespace nisqpp {
namespace {

TEST(ScenarioRegistry, ContainsEveryFigureAndTable)
{
    const char *expected[] = {
        "fig01_sqv",       "fig05_backlog",  "fig06_runtime",
        "fig10_variants",  "fig10_final",    "fig10_cycles",
        "fig11_distance",  "table1_circuits", "table2_cells",
        "table3_synthesis", "table4_latency", "table5_fit",
        "micro_decoders",  "micro_hotpath",  "streaming_backlog",
        "fig10_measurement", "noise_zoo",    "tiered_decode",
        "fault_sweep",
    };
    EXPECT_EQ(scenarioRegistry().size(), std::size(expected));
    for (const char *name : expected) {
        const Scenario *s = findScenario(name);
        ASSERT_NE(s, nullptr) << name;
        EXPECT_EQ(s->name, name);
        EXPECT_FALSE(s->description.empty());
    }
}

TEST(ScenarioRegistry, UnknownNameIsNull)
{
    EXPECT_EQ(findScenario("fig99_imaginary"), nullptr);
}

TEST(ScenarioRegistry, UnknownNameFailsRun)
{
    std::ostringstream os;
    EXPECT_NE(runScenario("fig99_imaginary", RunOptions{}, os), 0);
}

TEST(ScenarioRun, TableFormatProducesOutput)
{
    std::ostringstream os;
    ASSERT_EQ(runScenario("table2_cells", RunOptions{}, os), 0);
    EXPECT_NE(os.str().find("ERSFQ cell library"), std::string::npos);
    EXPECT_NE(os.str().find("AND2"), std::string::npos);
}

TEST(ScenarioRun, CsvFormatSuppressesProse)
{
    RunOptions options;
    options.format = OutputFormat::Csv;
    std::ostringstream os;
    ASSERT_EQ(runScenario("table2_cells", options, os), 0);
    EXPECT_EQ(os.str().find("==="), std::string::npos);
    EXPECT_NE(os.str().find("cell,area"), std::string::npos);
}

TEST(ScenarioRun, JsonFormatIsOneDocument)
{
    RunOptions options;
    options.format = OutputFormat::Json;
    std::ostringstream os;
    ASSERT_EQ(runScenario("table3_synthesis", options, os), 0);
    const std::string text = os.str();
    EXPECT_EQ(text.rfind("{\"tables\":[", 0), 0u);
    EXPECT_NE(text.find("\"id\":\"table3_synthesis\""),
              std::string::npos);
    EXPECT_EQ(text.substr(text.size() - 3), "]}\n");
}

TEST(ScenarioRun, StreamingBacklogIsThreadCountInvariant)
{
    // Acceptance: streaming_backlog aggregates are byte-identical for
    // 1 and 4 threads at a fixed seed (each grid cell is one
    // deterministic job; the merge order is the grid order).
    RunOptions one;
    one.trialsScale = 0.05;
    one.seedSet = true;
    one.seed = 42;
    one.threads = 1;
    RunOptions four = one;
    four.threads = 4;

    std::ostringstream out_one, out_four;
    ASSERT_EQ(runScenario("streaming_backlog", one, out_one), 0);
    ASSERT_EQ(runScenario("streaming_backlog", four, out_four), 0);
    EXPECT_EQ(out_one.str(), out_four.str());
    EXPECT_NE(out_one.str().find("streaming_backlog"),
              std::string::npos);
}

TEST(ScenarioRun, SeedOverrideChangesMonteCarloOutput)
{
    // A tiny sweep scenario run twice with different --seed values
    // must differ; the same seed must reproduce exactly.
    RunOptions a;
    a.trialsScale = 0.05;
    a.seedSet = true;
    a.seed = 1;
    RunOptions b = a;
    b.seed = 2;

    std::ostringstream out_a1, out_a2, out_b;
    ASSERT_EQ(runScenario("fig10_cycles", a, out_a1), 0);
    ASSERT_EQ(runScenario("fig10_cycles", a, out_a2), 0);
    ASSERT_EQ(runScenario("fig10_cycles", b, out_b), 0);
    EXPECT_EQ(out_a1.str(), out_a2.str());
    EXPECT_NE(out_a1.str(), out_b.str());
}

} // namespace
} // namespace nisqpp
