/** @file Tests for the work-stealing thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "engine/thread_pool.hh"

namespace nisqpp {
namespace {

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, SingleThreadStillCompletes)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.threadCount(), 1);
}

TEST(ThreadPool, WaitWithoutTasksReturns)
{
    ThreadPool pool(2);
    pool.wait(); // must not deadlock
    SUCCEED();
}

TEST(ThreadPool, ReusableAcrossWaves)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int wave = 0; wave < 5; ++wave) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 50 * (wave + 1));
    }
}

TEST(ThreadPool, UnevenTasksAllFinish)
{
    // A few long tasks mixed with many short ones: idle workers must
    // steal the short tasks queued behind the long ones.
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&count, i] {
            if (i % 16 == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            ++count;
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 64);
}

} // namespace
} // namespace nisqpp
