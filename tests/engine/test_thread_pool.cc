/** @file Tests for the work-stealing thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "engine/thread_pool.hh"

namespace nisqpp {
namespace {

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, SingleThreadStillCompletes)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.threadCount(), 1);
}

TEST(ThreadPool, WaitWithoutTasksReturns)
{
    ThreadPool pool(2);
    pool.wait(); // must not deadlock
    SUCCEED();
}

TEST(ThreadPool, ReusableAcrossWaves)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int wave = 0; wave < 5; ++wave) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 50 * (wave + 1));
    }
}

TEST(ThreadPool, CountsTasksAndNeverStealsOnOneThread)
{
    // A 1-thread pool has no victim to steal from: the steal counter
    // must stay exactly zero while the task counter tracks every
    // completed task (this backs the sched.pool.steals == 0 guarantee
    // that --threads 1 run reports advertise).
    ThreadPool pool(1);
    EXPECT_EQ(pool.taskCount(), 0u);
    EXPECT_EQ(pool.stealCount(), 0u);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(pool.taskCount(), 200u);
    EXPECT_EQ(pool.stealCount(), 0u);
}

TEST(ThreadPool, TaskCountAccumulatesAcrossWaves)
{
    ThreadPool pool(4);
    for (int wave = 1; wave <= 3; ++wave) {
        for (int i = 0; i < 40; ++i)
            pool.submit([] {});
        pool.wait();
        EXPECT_EQ(pool.taskCount(),
                  static_cast<std::uint64_t>(40 * wave));
    }
    // Steals are scheduling-dependent at 4 threads, but they are
    // bounded by the executed-task count.
    EXPECT_LE(pool.stealCount(), pool.taskCount());
}

TEST(ThreadPool, UnevenTasksAllFinish)
{
    // A few long tasks mixed with many short ones: idle workers must
    // steal the short tasks queued behind the long ones.
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&count, i] {
            if (i % 16 == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            ++count;
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 64);
}

} // namespace
} // namespace nisqpp
