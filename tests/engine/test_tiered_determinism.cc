/**
 * @file
 * Tiered-decoding determinism: the tiered_decode scenario's output and
 * its deterministic decoder.tiered.* counters must be byte-identical
 * at 1 vs 4 threads, and an engine Monte Carlo cell driving the tiered
 * decoder must produce identical aggregates and counters at any
 * batch-lane setting — including with mesh limits tightened through
 * setLimitsForTest so the escalation *and* frame-repair paths are both
 * exercised, not just the agree-with-the-mesh fast path.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "core/mesh_decoder.hh"
#include "decoders/tiered_decoder.hh"
#include "decoders/union_find_decoder.hh"
#include "engine/scenario.hh"
#include "engine/sweep.hh"
#include "obs/metrics.hh"
#include "sim/experiment.hh"

namespace nisqpp {
namespace {

/** Neutralize NISQPP_TRIALS/NISQPP_BATCH so budgets are as pinned. */
class TieredEnv : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        save("NISQPP_TRIALS", trials_);
        save("NISQPP_BATCH", batch_);
    }

    void TearDown() override
    {
        restore("NISQPP_TRIALS", trials_);
        restore("NISQPP_BATCH", batch_);
    }

  private:
    using Saved = std::pair<std::string, bool>;

    static void save(const char *name, Saved &slot)
    {
        const char *env = std::getenv(name);
        slot = env ? Saved{env, true} : Saved{{}, false};
        if (env)
            unsetenv(name);
    }

    static void restore(const char *name, const Saved &slot)
    {
        if (slot.second)
            setenv(name, slot.first.c_str(), 1);
    }

    Saved trials_;
    Saved batch_;
};

/** Run tiered_decode at @p threads; returns {stdout, report text}. */
std::pair<std::string, std::string>
runTiered(int threads)
{
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        ("nisqpp_tiered_t" + std::to_string(threads) + ".json");
    RunOptions options;
    options.threads = threads;
    options.trialsScale = 0.02;
    options.seedSet = true;
    options.seed = 0x71e4edULL;
    options.format = OutputFormat::Csv;
    options.metricsOut = path.string();
    std::ostringstream sink;
    EXPECT_EQ(runScenario("tiered_decode", options, sink), 0);
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "no report at " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::filesystem::remove(path);
    return {sink.str(), buffer.str()};
}

/** The deterministic slice of a run report (counters + histograms). */
std::string
deterministicSection(const std::string &report)
{
    const std::size_t begin = report.find("\"counters\":");
    const std::size_t end = report.rfind(",\"timing\":");
    EXPECT_NE(begin, std::string::npos);
    EXPECT_NE(end, std::string::npos);
    EXPECT_LT(begin, end);
    return report.substr(begin, end - begin);
}

TEST_F(TieredEnv, ScenarioIsThreadCountInvariant)
{
    const auto [out1, report1] = runTiered(1);
    const auto [out4, report4] = runTiered(4);
    EXPECT_FALSE(out1.empty());
    EXPECT_EQ(out1, out4);
    const std::string det1 = deterministicSection(report1);
    EXPECT_EQ(det1, deterministicSection(report4));
    // The tiered counters are present and real.
    EXPECT_NE(det1.find("decoder.tiered.decodes"), std::string::npos);
    EXPECT_NE(det1.find("decoder.tiered.escalations"),
              std::string::npos);
    EXPECT_NE(det1.find("stream.tiered.escalations"),
              std::string::npos);
}

/** Tiered factory with the mesh limits tightened after construction
 * so non-trivial syndromes time out and escalate (forcing repairs). */
DecoderFactory
starvedTieredFactory(double threshold)
{
    return [threshold](const SurfaceLattice &lat, ErrorType type)
               -> std::unique_ptr<Decoder> {
        auto mesh = std::make_unique<MeshDecoder>(lat, type);
        mesh->setLimitsForTest(2, 1);
        return std::make_unique<TieredDecoder>(
            lat, type, std::move(mesh),
            std::make_unique<UnionFindDecoder>(lat, type), threshold);
    };
}

/** Flatten a MetricSet's scalars for whole-set equality checks. */
std::map<std::string, std::uint64_t>
scalarMap(const obs::MetricSet &m)
{
    std::map<std::string, std::uint64_t> out;
    m.forEachScalar([&out](const std::string &name, bool,
                           std::uint64_t value) { out[name] = value; });
    return out;
}

/** One engine cell over the starved tiered decoder. */
std::pair<MonteCarloResult, std::map<std::string, std::uint64_t>>
runCellAt(int threads, std::size_t batchLanes)
{
    SurfaceLattice lattice(5);
    const DecoderFactory factory = starvedTieredFactory(0.5);
    CellSpec cell;
    cell.lattice = &lattice;
    cell.physicalRate = 0.08;
    cell.rule = {600, 600, 1u << 30};
    cell.seed = 0x7143ULL;
    cell.factory = &factory;

    EngineOptions options;
    options.threads = threads;
    options.shardTrials = 128;
    options.batchLanes = batchLanes;
    Engine engine(options);
    const MonteCarloResult result = engine.runCell(cell);
    return {result, scalarMap(engine.metrics())};
}

TEST_F(TieredEnv, EngineCellInvariantAcrossThreadsAndBatchLanes)
{
    const auto [scalar1, counters1] = runCellAt(1, 1);
    const auto [batch4, counters4] = runCellAt(4, 4);
    const auto [batch64, counters64] = runCellAt(2, 64);

    EXPECT_EQ(scalar1.trials, batch4.trials);
    EXPECT_EQ(scalar1.failures, batch4.failures);
    EXPECT_EQ(scalar1.failures, batch64.failures);
    EXPECT_EQ(counters1, counters4);
    EXPECT_EQ(counters1, counters64);

    // Both forced paths really ran: escalations, disagreements, and
    // the mesh's cap exits all have to show up in the counters.
    EXPECT_GT(counters1.at("decoder.tiered.escalations"), 0u);
    EXPECT_GT(counters1.at("decoder.tiered.repairs"), 0u);
    EXPECT_GT(counters1.at("decoder.mesh.cycles_capped"), 0u);
}

} // namespace
} // namespace nisqpp
