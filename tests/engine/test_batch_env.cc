/** @file NISQPP_BATCH environment validation: malformed lane counts
 * must warn and keep the previous setting, exactly like the
 * NISQPP_TRIALS multiplier. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "engine/sweep.hh"

namespace nisqpp {
namespace {

/** Scoped NISQPP_BATCH override restoring the prior value on exit. */
class BatchEnv
{
  public:
    explicit BatchEnv(const char *value)
    {
        const char *prior = std::getenv("NISQPP_BATCH");
        if (prior) {
            saved_ = prior;
            hadValue_ = true;
        }
        if (value)
            setenv("NISQPP_BATCH", value, 1);
        else
            unsetenv("NISQPP_BATCH");
    }
    ~BatchEnv()
    {
        if (hadValue_)
            setenv("NISQPP_BATCH", saved_.c_str(), 1);
        else
            unsetenv("NISQPP_BATCH");
    }

  private:
    std::string saved_;
    bool hadValue_ = false;
};

TEST(BatchEnv, UnsetKeepsFallback)
{
    BatchEnv env(nullptr);
    EXPECT_EQ(batchLanesFromEnv(1), 1u);
    EXPECT_EQ(batchLanesFromEnv(64), 64u);
}

TEST(BatchEnv, ValidValueIsUsed)
{
    BatchEnv env("256");
    EXPECT_EQ(batchLanesFromEnv(1), 256u);
}

TEST(BatchEnv, OneIsValid)
{
    BatchEnv env("1");
    EXPECT_EQ(batchLanesFromEnv(64), 1u);
}

TEST(BatchEnv, MaxIsValid)
{
    BatchEnv env(std::to_string(kMaxBatchLanes).c_str());
    EXPECT_EQ(batchLanesFromEnv(1), kMaxBatchLanes);
}

TEST(BatchEnv, ExponentNotationIsAcceptedWhenIntegral)
{
    // Parsed with strtod like NISQPP_TRIALS and the --batch flag, so
    // integral exponent notation is uniformly accepted across all
    // three entry points.
    BatchEnv env("1e2");
    EXPECT_EQ(batchLanesFromEnv(1), 100u);
}

TEST(BatchEnv, ZeroRejectedKeepsPrevious)
{
    BatchEnv env("0");
    EXPECT_EQ(batchLanesFromEnv(32), 32u);
}

TEST(BatchEnv, NegativeRejectedKeepsPrevious)
{
    BatchEnv env("-3");
    EXPECT_EQ(batchLanesFromEnv(32), 32u);
}

TEST(BatchEnv, NonNumericRejectedKeepsPrevious)
{
    BatchEnv env("lots");
    EXPECT_EQ(batchLanesFromEnv(32), 32u);
}

TEST(BatchEnv, TrailingGarbageRejectedKeepsPrevious)
{
    BatchEnv env("64x");
    EXPECT_EQ(batchLanesFromEnv(32), 32u);
}

TEST(BatchEnv, FractionalRejectedKeepsPrevious)
{
    BatchEnv env("3.5");
    EXPECT_EQ(batchLanesFromEnv(32), 32u);
}

TEST(BatchEnv, AbsurdRejectedKeepsPrevious)
{
    BatchEnv env("99999999");
    EXPECT_EQ(batchLanesFromEnv(32), 32u);
}

TEST(BatchEnv, InfinityRejectedKeepsPrevious)
{
    BatchEnv env("inf");
    EXPECT_EQ(batchLanesFromEnv(32), 32u);
}

} // namespace
} // namespace nisqpp
