/**
 * @file The checkpoint subsystem's headline guarantee, in process: a
 * sweep interrupted mid-flight and resumed in a fresh engine (at a
 * different thread count) produces aggregates byte-identical to a run
 * that was never interrupted, and a resumed engine refuses ledgers
 * from a different configuration.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "ckpt/checkpoint.hh"
#include "sim/experiment.hh"

namespace nisqpp {
namespace {

SweepConfig
smallSweep()
{
    SweepConfig config;
    config.distances = {3, 5};
    config.physicalRates = {0.03, 0.08};
    config.lifetimeMode = true;
    config.stopRule = {600, 600, 1u << 30};
    config.seed = 0xfeedULL;
    return config;
}

void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t di = 0; di < a.cells.size(); ++di) {
        ASSERT_EQ(a.cells[di].size(), b.cells[di].size());
        for (std::size_t pi = 0; pi < a.cells[di].size(); ++pi) {
            const MonteCarloResult &ca = a.cells[di][pi];
            const MonteCarloResult &cb = b.cells[di][pi];
            EXPECT_EQ(ca.trials, cb.trials);
            EXPECT_EQ(ca.failures, cb.failures);
            EXPECT_EQ(ca.syndromeResidualFailures,
                      cb.syndromeResidualFailures);
            EXPECT_DOUBLE_EQ(ca.logicalErrorRate, cb.logicalErrorRate);
            EXPECT_EQ(ca.cycles.count(), cb.cycles.count());
            EXPECT_DOUBLE_EQ(ca.cycles.mean(), cb.cycles.mean());
            EXPECT_DOUBLE_EQ(ca.cycles.variance(),
                             cb.cycles.variance());
            EXPECT_EQ(ca.cycleHistogram.total(),
                      cb.cycleHistogram.total());
            // Deterministic metrics ride the same ordered prefix
            // merge, so a restored partial must reproduce them too.
            EXPECT_EQ(ca.metrics.value("engine.trials"),
                      cb.metrics.value("engine.trials"));
        }
        EXPECT_EQ(a.curves[di].pl, b.curves[di].pl);
    }
}

std::string
ckptPath(const std::string &name)
{
    return testing::TempDir() + "resume_" + name;
}

/** RAII: clear interrupt flag, observer and fault cache on exit. */
struct CkptStateGuard
{
    ~CkptStateGuard()
    {
        ckpt::setWriteObserver(nullptr);
        ckpt::clearInterrupt();
        ckpt::resetFaultState();
    }
};

TEST(CheckpointResume, InterruptedSweepResumesByteIdentical)
{
    CkptStateGuard guard;
    const SweepConfig config = smallSweep();
    const auto factory = meshDecoderFactory(MeshConfig::finalDesign());

    EngineOptions base;
    base.threads = 4;
    base.shardTrials = 128; // 5 shards per cell, 20 total
    const SweepResult golden =
        Engine(base).runSweep(config, factory);

    const std::string path = ckptPath("interrupt.ckpt");
    std::remove(path.c_str());

    // Interrupt at the first write: with intervalShards = 1 the first
    // completed shard always triggers a periodic write while the
    // invocation is still active (contended later writes may be
    // skipped, so a higher trigger count would be racy). The engine
    // drains in-flight shards, persists a final ledger and throws.
    ckpt::CheckpointPolicy policy;
    policy.path = path;
    policy.intervalShards = 1;
    ckpt::setWriteObserver(
        [](std::uint64_t) { ckpt::requestInterrupt(); });
    Engine interrupted(base);
    interrupted.setCheckpointPolicy(policy);
    EXPECT_THROW(interrupted.runSweep(config, factory),
                 ckpt::InterruptedError);
    ckpt::setWriteObserver(nullptr);
    ckpt::clearInterrupt();

    // Resume in a fresh engine at a DIFFERENT thread count; the
    // result must match the uninterrupted golden run bit for bit.
    EngineOptions other = base;
    other.threads = 2;
    Engine resumed(other);
    resumed.setCheckpointPolicy(policy);
    resumed.resumeFrom(ckpt::loadCheckpoint(path));
    expectIdentical(golden, resumed.runSweep(config, factory));

    obs::MetricSet ckptMetrics;
    resumed.checkpointMetricsInto(ckptMetrics);
    EXPECT_EQ(ckptMetrics.value("ckpt.resumed"), 1u);
    EXPECT_GE(ckptMetrics.value("ckpt.writes"), 1u);
    std::remove(path.c_str());
}

TEST(CheckpointResume, CompletedCheckpointRestoresWithoutRecompute)
{
    CkptStateGuard guard;
    const SweepConfig config = smallSweep();
    const auto factory = meshDecoderFactory(MeshConfig::finalDesign());

    EngineOptions base;
    base.threads = 2;
    base.shardTrials = 128;

    const std::string path = ckptPath("complete.ckpt");
    std::remove(path.c_str());
    ckpt::CheckpointPolicy policy;
    policy.path = path;

    Engine first(base);
    first.setCheckpointPolicy(policy);
    const SweepResult golden = first.runSweep(config, factory);

    Engine second(base);
    second.resumeFrom(ckpt::loadCheckpoint(path));
    std::uint64_t writesDuringResume = 0;
    ckpt::setWriteObserver(
        [&](std::uint64_t) { ++writesDuringResume; });
    expectIdentical(golden, second.runSweep(config, factory));
    // Every invocation was restored complete: nothing is scheduled
    // and nothing is rewritten.
    EXPECT_EQ(writesDuringResume, 0u);

    obs::MetricSet ckptMetrics;
    second.checkpointMetricsInto(ckptMetrics);
    EXPECT_GE(ckptMetrics.value("ckpt.restored_shards"), 20u);
    std::remove(path.c_str());
}

TEST(CheckpointResume, ConfigMismatchIsAHardError)
{
    CkptStateGuard guard;
    const auto factory = meshDecoderFactory(MeshConfig::finalDesign());

    EngineOptions base;
    base.threads = 2;
    base.shardTrials = 128;

    const std::string path = ckptPath("mismatch.ckpt");
    std::remove(path.c_str());
    ckpt::CheckpointPolicy policy;
    policy.path = path;

    Engine writer(base);
    writer.setCheckpointPolicy(policy);
    writer.runSweep(smallSweep(), factory);

    SweepConfig different = smallSweep();
    different.seed = 0xbadfeedULL;
    Engine reader(base);
    reader.resumeFrom(ckpt::loadCheckpoint(path));
    try {
        reader.runSweep(different, factory);
        FAIL() << "mismatched checkpoint applied";
    } catch (const ckpt::CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find("config mismatch"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(CheckpointResume, IncompleteInvocationMustBeLast)
{
    CkptStateGuard guard;
    ckpt::CheckpointLedger ledger;
    ledger.scope = "unit";
    ledger.invocations.resize(2);
    ledger.invocations[0].configText = "a";
    ledger.invocations[0].complete = false;
    ledger.invocations[1].configText = "b";
    ledger.invocations[1].complete = true;

    Engine engine(EngineOptions{});
    try {
        engine.resumeFrom(std::move(ledger));
        FAIL() << "malformed ledger accepted";
    } catch (const ckpt::CheckpointError &e) {
        EXPECT_NE(
            std::string(e.what()).find("incomplete but not last"),
            std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace nisqpp
