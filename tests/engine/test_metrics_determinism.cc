/**
 * @file
 * Thread-count invariance of the metrics subsystem: the deterministic
 * sections of a --metrics-out run report ("counters" and "histograms")
 * must be byte-identical between a 1-thread and an N-thread run at a
 * fixed seed, because shard metric sets ride the engine's ordered
 * prefix merge exactly like the Monte Carlo aggregates. Also pins the
 * sched.pool.steals == 0 guarantee of 1-thread pools at the engine
 * level.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/scenario.hh"
#include "obs/metrics.hh"

namespace nisqpp {
namespace {

/** Neutralize NISQPP_TRIALS/NISQPP_BATCH so budgets are as pinned. */
class MetricsEnv : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        save("NISQPP_TRIALS", trials_);
        save("NISQPP_BATCH", batch_);
    }

    void TearDown() override
    {
        restore("NISQPP_TRIALS", trials_);
        restore("NISQPP_BATCH", batch_);
    }

  private:
    using Saved = std::pair<std::string, bool>;

    static void save(const char *name, Saved &slot)
    {
        const char *env = std::getenv(name);
        slot = env ? Saved{env, true} : Saved{{}, false};
        if (env)
            unsetenv(name);
    }

    static void restore(const char *name, const Saved &slot)
    {
        if (slot.second)
            setenv(name, slot.first.c_str(), 1);
    }

    Saved trials_;
    Saved batch_;
};

/** Run @p scenario with --metrics-out and return the report text. */
std::string
reportFor(const std::string &scenario, int threads)
{
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        ("nisqpp_metrics_" + scenario + "_t" +
         std::to_string(threads) + ".json");
    RunOptions options;
    options.threads = threads;
    options.shardTrials = 512;
    options.trialsScale = 0.02;
    options.seedSet = true;
    options.seed = 0x601dULL;
    options.format = OutputFormat::Csv;
    options.metricsOut = path.string();
    std::ostringstream sink;
    EXPECT_EQ(runScenario(scenario, options, sink), 0);
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "no report at " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::filesystem::remove(path);
    return buffer.str();
}

/**
 * The deterministic slice of a report: everything from the "counters"
 * key up to (excluding) the masked "timing" section. The preceding
 * "config" object legitimately differs (it records the thread count).
 */
std::string
deterministicSection(const std::string &report)
{
    const std::size_t begin = report.find("\"counters\":");
    const std::size_t end = report.rfind(",\"timing\":");
    EXPECT_NE(begin, std::string::npos);
    EXPECT_NE(end, std::string::npos);
    EXPECT_LT(begin, end);
    return report.substr(begin, end - begin);
}

TEST_F(MetricsEnv, EngineCountersAreThreadCountInvariant)
{
    // fig10_final drives full sharded Monte Carlo sweeps (mesh decoder
    // work counters, engine trial counters) through the report path.
    const std::string t1 = deterministicSection(reportFor(
        "fig10_final", 1));
    const std::string t4 = deterministicSection(reportFor(
        "fig10_final", 4));
    EXPECT_FALSE(t1.empty());
    EXPECT_EQ(t1, t4);
    // Real content, not an empty object.
    EXPECT_NE(t1.find("engine.trials"), std::string::npos);
    EXPECT_NE(t1.find("decoder.mesh.decodes"), std::string::npos);
}

TEST_F(MetricsEnv, StreamCountersAreThreadCountInvariant)
{
    // fig06_runtime folds per-cell streaming metrics (stream.* plus
    // the per-cell decoders' exports) through runJobs.
    const std::string t1 = deterministicSection(reportFor(
        "fig06_runtime", 1));
    const std::string t3 = deterministicSection(reportFor(
        "fig06_runtime", 3));
    EXPECT_EQ(t1, t3);
    EXPECT_NE(t1.find("stream.rounds"), std::string::npos);
    EXPECT_NE(t1.find("decoder.uf.decodes"), std::string::npos);
}

TEST_F(MetricsEnv, SingleThreadReportsZeroSteals)
{
    // The masked section still has a pinned invariant at one thread:
    // no victim exists, so the pool must report zero steals.
    Engine engine(EngineOptions{});
    ASSERT_EQ(engine.threads(), 1);
    obs::MetricSet runtime;
    engine.runtimeMetricsInto(runtime);
    EXPECT_EQ(runtime.value("sched.pool.steals"), 0u);
    EXPECT_EQ(runtime.value("sched.pool.threads"), 1u);
}

} // namespace
} // namespace nisqpp
