/** @file Registry/README drift guard: the README scenario table must
 * carry every registered scenario's name and exact one-line
 * description (the same strings `nisqpp_run --list` prints), so docs
 * cannot silently drift from the code. */

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/scenario.hh"

#ifndef NISQPP_README_PATH
#error "build must define NISQPP_README_PATH (see tests/CMakeLists.txt)"
#endif

namespace nisqpp {
namespace {

/** Collapse every whitespace run (including newlines) to one space. */
std::string
normalized(const std::string &text)
{
    std::string out;
    bool inSpace = false;
    for (char c : text) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!inSpace && !out.empty())
                out += ' ';
            inSpace = true;
        } else {
            out += c;
            inSpace = false;
        }
    }
    return out;
}

std::string
readmeText()
{
    std::ifstream in(NISQPP_README_PATH);
    EXPECT_TRUE(in.good()) << "cannot read " << NISQPP_README_PATH;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return normalized(buffer.str());
}

TEST(RegistryDocs, ReadmeTableCarriesEveryScenario)
{
    const std::string readme = readmeText();
    for (const Scenario &s : scenarioRegistry()) {
        // The markdown row "| `name` | description |", whitespace
        // normalized. Matching the full description string means a
        // reworded registry entry fails until the README follows.
        const std::string row = "| `" + s.name + "` | " +
                                normalized(s.description) + " |";
        EXPECT_NE(readme.find(row), std::string::npos)
            << "README scenario table is missing or outdated for '"
            << s.name << "'; expected row:\n  " << row;
    }
}

TEST(RegistryDocs, EveryScenarioHasDescription)
{
    // `nisqpp_run --list` prints these verbatim (CLI contract in
    // tests/cli/check_cli.cmake); an empty one would list a bare
    // name.
    for (const Scenario &s : scenarioRegistry())
        EXPECT_FALSE(s.description.empty()) << s.name;
}

} // namespace
} // namespace nisqpp
