/**
 * @file Fault injection + graceful degradation through runStream: the
 * zero-fault path stays metric- and byte-identical to the pre-fault
 * pipeline, every recovery policy does what its name says, and the
 * round-conservation ledger balances under any fault mix.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "faults/fault_plan.hh"
#include "sim/experiment.hh"
#include "stream/stream_sim.hh"
#include "surface/lattice.hh"

namespace nisqpp {
namespace {

constexpr std::size_t kRounds = 300;

StreamConfig
baseConfig(const SurfaceLattice &lattice, const std::string &family)
{
    StreamConfig config;
    config.lattice = &lattice;
    config.physicalRate = 0.05;
    config.rounds = kRounds;
    config.seed = 0xfeedULL;
    config.latency = StreamLatencyModel::forFamily(family, 3);
    return config;
}

std::unique_ptr<Decoder>
makeDecoder(const SurfaceLattice &lattice, const std::string &family)
{
    return decoderFamilies()[decoderFamilyIndex(family)].factory(
        lattice, ErrorType::Z);
}

StreamingResult
run(const StreamConfig &config, const std::string &family)
{
    // Fresh decoder per run: determinism must not rely on warm state.
    const auto decoder = makeDecoder(*config.lattice, family);
    return runStream(config, *decoder);
}

std::uint64_t
accountedRounds(const faults::FaultCounts &fc)
{
    return fc.decodedRounds + fc.carriedForward + fc.lostRounds +
           fc.shedRounds + fc.mergedRounds;
}

TEST(StreamFaults, ZeroFaultRunEmitsNoFaultMetricsOrCounts)
{
    SurfaceLattice lattice(3);
    const StreamingResult r =
        run(baseConfig(lattice, "union_find"), "union_find");
    EXPECT_FALSE(r.faults.anyEvent());
    EXPECT_EQ(r.faults.decodedRounds, 0u); // ledger untouched entirely
    EXPECT_TRUE(r.clockMonotone);
    r.metrics.forEachScalar([](const std::string &name, bool,
                               std::uint64_t) {
        EXPECT_NE(name.rfind("stream.fault.", 0), 0u) << name;
    });
}

TEST(StreamFaults, FaultyRunIsDeterministic)
{
    SurfaceLattice lattice(3);
    StreamConfig config = baseConfig(lattice, "union_find");
    config.faults.dropRate = 0.2;
    config.faults.corruptRate = 0.1;
    config.faults.duplicateRate = 0.1;
    config.faults.stallRate = 0.2;
    config.recovery.carryForward = true;

    const StreamingResult a = run(config, "union_find");
    const StreamingResult b = run(config, "union_find");
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.faults.drops, b.faults.drops);
    EXPECT_EQ(a.faults.carriedForward, b.faults.carriedForward);
    EXPECT_DOUBLE_EQ(a.sojournNs.mean(), b.sojournNs.mean());
    EXPECT_DOUBLE_EQ(a.drainNs, b.drainNs);
}

TEST(StreamFaults, UnprotectedDropsLoseRounds)
{
    SurfaceLattice lattice(3);
    StreamConfig config = baseConfig(lattice, "union_find");
    config.faults.dropRate = 0.3;

    const StreamingResult r = run(config, "union_find");
    EXPECT_GT(r.faults.drops, 0u);
    EXPECT_EQ(r.faults.lostRounds, r.faults.drops);
    EXPECT_EQ(r.faults.decodedRounds + r.faults.lostRounds, kRounds);
    EXPECT_EQ(r.metrics.value("stream.fault.lost_rounds"),
              r.faults.lostRounds);
    EXPECT_EQ(r.metrics.value("stream.fault.decoded_rounds"),
              r.faults.decodedRounds);
}

TEST(StreamFaults, GenerousRetransmitBudgetRecoversEveryRound)
{
    SurfaceLattice lattice(3);
    StreamConfig clean = baseConfig(lattice, "union_find");
    const StreamingResult baseline = run(clean, "union_find");

    StreamConfig config = clean;
    config.faults.dropRate = 0.2;
    config.faults.corruptRate = 0.1;
    config.recovery.parityRetransmit = true;
    // retransmitsNeeded is capped at kRetryCap, so a budget of
    // kRetryCap + 1 attempts recovers every transport fault.
    config.recovery.maxRetransmits = faults::kRetryCap + 1;

    const StreamingResult r = run(config, "union_find");
    EXPECT_GT(r.faults.retransmits, 0u);
    EXPECT_EQ(r.faults.lostRounds, 0u);
    EXPECT_EQ(r.faults.corruptDecodes, 0u);
    EXPECT_EQ(r.faults.decodedRounds, kRounds);
    // Recovered transport is *correct* transport: the decoded physics
    // matches the fault-free run exactly; only timing differs.
    EXPECT_EQ(r.failures, baseline.failures);
    EXPECT_EQ(r.logicalErrorRate, baseline.logicalErrorRate);
    EXPECT_EQ(r.metrics.value("stream.fault.retransmits"),
              r.faults.retransmits);
}

TEST(StreamFaults, CarryForwardTradesLossForStaleDecodes)
{
    SurfaceLattice lattice(3);
    StreamConfig config = baseConfig(lattice, "union_find");
    config.faults.dropRate = 0.3;
    config.recovery.carryForward = true;

    const StreamingResult r = run(config, "union_find");
    EXPECT_GT(r.faults.carriedForward, 0u);
    // Only drops before the first clean round can still be lost.
    EXPECT_LE(r.faults.lostRounds, r.faults.drops);
    EXPECT_EQ(accountedRounds(r.faults), kRounds);
}

TEST(StreamFaults, SilentCorruptionDecodesAsIs)
{
    SurfaceLattice lattice(3);
    StreamConfig config = baseConfig(lattice, "union_find");
    config.faults.corruptRate = 1.0;

    const StreamingResult r = run(config, "union_find");
    EXPECT_EQ(r.faults.corruptions, kRounds);
    EXPECT_EQ(r.faults.corruptDecodes, kRounds);
    EXPECT_EQ(r.faults.decodedRounds, kRounds);
    EXPECT_EQ(r.faults.lostRounds, 0u);
}

TEST(StreamFaults, DuplicatesAreDedupedExactly)
{
    SurfaceLattice lattice(3);
    StreamConfig config = baseConfig(lattice, "union_find");
    config.faults.duplicateRate = 1.0;

    const StreamingResult r = run(config, "union_find");
    EXPECT_EQ(r.faults.duplicates, kRounds);
    EXPECT_EQ(r.faults.dedupRounds, r.faults.duplicates);
    EXPECT_EQ(r.faults.decodedRounds, kRounds);
}

TEST(StreamFaults, StallsInflateServiceTime)
{
    SurfaceLattice lattice(3);
    StreamConfig clean = baseConfig(lattice, "union_find");
    const StreamingResult baseline = run(clean, "union_find");

    StreamConfig config = clean;
    config.faults.stallRate = 1.0;
    config.faults.stallFactor = 4.0;

    const StreamingResult r = run(config, "union_find");
    EXPECT_EQ(r.faults.stalls, kRounds);
    EXPECT_DOUBLE_EQ(r.serviceNs.mean(),
                     4.0 * baseline.serviceNs.mean());
}

TEST(StreamFaults, DecodeFailuresCommitNothing)
{
    SurfaceLattice lattice(3);
    StreamConfig config = baseConfig(lattice, "union_find");
    config.faults.decodeFailRate = 1.0;

    const StreamingResult r = run(config, "union_find");
    EXPECT_EQ(r.faults.decodeFailures, kRounds);
    // The round still ran (and paid for) a decode.
    EXPECT_EQ(r.faults.decodedRounds, kRounds);
}

TEST(StreamFaults, DeadlineClampsEveryServiceTime)
{
    SurfaceLattice lattice(3);
    StreamConfig config = baseConfig(lattice, "union_find");
    // union-find's reference latency is ~850 ns; a 500 ns budget must
    // clamp every round (no tiered decoder here, so no commits).
    config.recovery.deadlineNs = 500.0;

    const StreamingResult r = run(config, "union_find");
    EXPECT_EQ(r.faults.deadlineClamps, kRounds);
    EXPECT_EQ(r.faults.deadlineCommits, 0u);
    EXPECT_LE(r.servicePercentiles.p99, 500.0);
    EXPECT_DOUBLE_EQ(r.serviceNs.mean(), 500.0);
}

TEST(StreamFaults, DeadlineCommitsProvisionalOnEscalatedTieredDecodes)
{
    SurfaceLattice lattice(3);
    StreamConfig config = baseConfig(lattice, "union_find");
    config.latency = StreamLatencyModel::tiered("union_find", 3);
    config.physicalRate = 0.08; // hot syndromes force escalations
    config.recovery.deadlineNs = 400.0;

    const auto decoder = tieredDecoderFactory(
        MeshConfig::finalDesign(), "union_find", 0.9)(lattice,
                                                      ErrorType::Z);
    const StreamingResult r = runStream(config, *decoder);
    EXPECT_GT(r.escalations, 0u);
    // Escalated decodes blow a 400 ns budget (mesh attempt + ~850 ns
    // union-find surcharge) and commit the provisional mesh answer.
    EXPECT_GT(r.faults.deadlineCommits, 0u);
    EXPECT_LE(r.servicePercentiles.p99, 400.0);
    EXPECT_EQ(accountedRounds(r.faults), kRounds);
}

TEST(StreamFaults, DropOldestSheddingBoundsBacklog)
{
    SurfaceLattice lattice(3);
    // MWPM's f > 1 latency grows backlog without bound on this
    // horizon; shedding must cap it near the threshold.
    StreamConfig unshed = baseConfig(lattice, "mwpm");
    const StreamingResult reference = run(unshed, "mwpm");

    StreamConfig config = unshed;
    config.recovery.shedThreshold = 8;
    config.recovery.shedMode = faults::ShedMode::DropOldest;
    const StreamingResult r = run(config, "mwpm");

    EXPECT_GT(r.faults.shedRounds, 0u);
    EXPECT_LT(r.maxBacklogRounds, reference.maxBacklogRounds);
    EXPECT_EQ(accountedRounds(r.faults), kRounds);
    EXPECT_EQ(r.faults.decodedRounds + r.faults.shedRounds, kRounds);
}

TEST(StreamFaults, XorMergeShedsWithSurcharge)
{
    SurfaceLattice lattice(3);
    StreamConfig config = baseConfig(lattice, "mwpm");
    config.recovery.shedThreshold = 8;
    config.recovery.shedMode = faults::ShedMode::XorMerge;
    config.recovery.mergeNs = 25.0;

    const StreamingResult r = run(config, "mwpm");
    EXPECT_GT(r.faults.mergedRounds, 0u);
    EXPECT_EQ(r.faults.shedRounds, 0u);
    EXPECT_EQ(accountedRounds(r.faults), kRounds);
}

TEST(StreamFaults, ConservationHoldsUnderEverythingAtOnce)
{
    SurfaceLattice lattice(3);
    StreamConfig config = baseConfig(lattice, "union_find");
    config.faults.dropRate = 0.2;
    config.faults.corruptRate = 0.15;
    config.faults.duplicateRate = 0.2;
    config.faults.delayRate = 0.2;
    config.faults.stallRate = 0.2;
    config.faults.decodeFailRate = 0.1;
    config.recovery.parityRetransmit = true;
    config.recovery.maxRetransmits = 2;
    config.recovery.carryForward = true;
    config.recovery.deadlineNs = 900.0;
    config.recovery.shedThreshold = 12;
    config.recovery.shedMode = faults::ShedMode::XorMerge;

    const StreamingResult r = run(config, "union_find");
    EXPECT_EQ(accountedRounds(r.faults), kRounds);
    EXPECT_EQ(r.faults.dedupRounds, r.faults.duplicates);
    EXPECT_TRUE(r.clockMonotone);
    EXPECT_GE(r.drainNs, 0.0);
    EXPECT_EQ(r.metrics.value("stream.fault.decoded_rounds"),
              r.faults.decodedRounds);
}

TEST(StreamFaultsDeath, WindowedPipelineRejectsFaults)
{
    SurfaceLattice lattice(3);
    StreamConfig config = baseConfig(lattice, "union_find");
    config.measurementFlipRate = 0.01;
    config.windowRounds = 3;
    config.rounds = 300;
    config.faults.dropRate = 0.1;
    const auto decoder = makeDecoder(lattice, "union_find");
    EXPECT_DEATH(runStream(config, *decoder), "windowRounds");
}

} // namespace
} // namespace nisqpp
