/** @file Windowed streaming: the pipeline's committed corrections must
 * match direct batch decodeWindow on the same noisy rounds. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "decoders/mwpm_decoder.hh"
#include "decoders/union_find_decoder.hh"
#include "decoders/workspace.hh"
#include "noise/noise_model.hh"
#include "stream/stream_sim.hh"
#include "stream/syndrome_stream.hh"
#include "surface/logical.hh"
#include "surface/syndrome_window.hh"

namespace nisqpp {
namespace {

StreamConfig
windowedConfig(const SurfaceLattice &lat, std::size_t w,
               std::size_t rounds)
{
    StreamConfig config;
    config.lattice = &lat;
    config.physicalRate = 0.03;
    config.measurementFlipRate = 0.03;
    config.windowRounds = w;
    config.rounds = rounds;
    config.seed = 0x71d0ULL;
    config.latency = StreamLatencyModel::constant("uf", 850.0);
    return config;
}

template <typename DecoderT>
void
expectStreamMatchesBatchWindows()
{
    SurfaceLattice lat(5);
    const std::size_t w = 5, rounds = 200;
    StreamConfig config = windowedConfig(lat, w, rounds);

    // Pipeline run: capture the correction committed at each window
    // boundary (non-commit rounds observe an empty correction).
    DecoderT streamDec(lat, ErrorType::Z);
    std::vector<std::vector<int>> committed;
    StreamObserver observer = [&](std::size_t k, const Syndrome &,
                                  const Correction &c) {
        if ((k + 1) % w == 0)
            committed.push_back(c.dataFlips);
    };
    const StreamingResult result =
        runStream(config, streamDec, nullptr, &observer);
    ASSERT_EQ(result.windows, rounds / w);
    ASSERT_EQ(committed.size(), rounds / w);

    // Replay: regenerate the identical noisy rounds from the same
    // seed and hand them to decodeWindow directly.
    const NoiseModel model = NoiseModel::dephasing(
        config.physicalRate, config.measurementFlipRate);
    SyndromeStream stream(lat, model, ErrorType::Z, config.seed,
                          config.syndromeCycleNs);
    DecoderT batchDec(lat, ErrorType::Z);
    TrialWorkspace ws;
    SyndromeWindow window(lat, ErrorType::Z, static_cast<int>(w) + 1);
    Syndrome commitSyn(lat, ErrorType::Z);
    std::size_t failures = 0;
    bool parity = false;
    std::size_t wi = 0;
    for (std::size_t k = 0; k < rounds; ++k) {
        const Syndrome &syn = stream.emit();
        window.recordRound(static_cast<int>(k % w), syn);
        if ((k + 1) % w != 0)
            continue;
        stream.extractPerfectInto(commitSyn);
        window.recordRound(static_cast<int>(w), commitSyn);
        batchDec.decodeWindow(window, ws);
        EXPECT_EQ(ws.correction.dataFlips, committed[wi])
            << "window " << wi << " diverged from the pipeline";
        ws.correction.applyTo(stream.state(), ErrorType::Z);
        const bool now = crossingParity(stream.state(), ErrorType::Z);
        if (now != parity)
            ++failures;
        parity = now;
        stream.extractPerfectInto(commitSyn);
        window.reset();
        window.setBaseline(commitSyn);
        ++wi;
    }
    EXPECT_EQ(failures, result.failures);
}

TEST(StreamWindowed, UnionFindMatchesBatchDecodeWindow)
{
    expectStreamMatchesBatchWindows<UnionFindDecoder>();
}

TEST(StreamWindowed, MwpmMatchesBatchDecodeWindow)
{
    expectStreamMatchesBatchWindows<MwpmDecoder>();
}

TEST(StreamWindowed, DeterministicAcrossRuns)
{
    SurfaceLattice lat(3);
    StreamConfig config = windowedConfig(lat, 3, 120);
    UnionFindDecoder a(lat, ErrorType::Z), b(lat, ErrorType::Z);
    const StreamingResult r1 = runStream(config, a);
    const StreamingResult r2 = runStream(config, b);
    EXPECT_EQ(r1.windows, r2.windows);
    EXPECT_EQ(r1.failures, r2.failures);
    EXPECT_EQ(r1.rounds, r2.rounds);
    EXPECT_DOUBLE_EQ(r1.logicalErrorRate, r2.logicalErrorRate);
}

TEST(StreamWindowed, LogicalRateIsPerWindow)
{
    SurfaceLattice lat(3);
    StreamConfig config = windowedConfig(lat, 3, 120);
    UnionFindDecoder dec(lat, ErrorType::Z);
    const StreamingResult r = runStream(config, dec);
    EXPECT_EQ(r.windows, 40u);
    EXPECT_DOUBLE_EQ(r.logicalErrorRate,
                     static_cast<double>(r.failures) / 40.0);
}

TEST(StreamWindowedDeath, RoundsMustDivideIntoWindows)
{
    SurfaceLattice lat(3);
    StreamConfig config = windowedConfig(lat, 3, 100);
    UnionFindDecoder dec(lat, ErrorType::Z);
    EXPECT_DEATH(runStream(config, dec), "multiple of windowRounds");
}

TEST(StreamWindowedDeath, MeasurementNoiseNeedsWindow)
{
    SurfaceLattice lat(3);
    StreamConfig config = windowedConfig(lat, 3, 120);
    config.windowRounds = 0;
    UnionFindDecoder dec(lat, ErrorType::Z);
    EXPECT_DEATH(runStream(config, dec), "requires windowRounds");
}

} // namespace
} // namespace nisqpp
