/**
 * @file Cross-decoder streaming property tests: for identical seeded
 * syndrome streams, the streaming pipeline's per-round corrections are
 * bit-identical to batch Decoder::decode on the same syndromes, for
 * every decoder family at d in {3, 5, 7}; and the streaming failure
 * count reproduces the lifetime-protocol Monte Carlo simulator's.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/monte_carlo.hh"
#include "stream/stream_sim.hh"

namespace nisqpp {
namespace {

std::vector<int>
sorted(std::vector<int> v)
{
    std::sort(v.begin(), v.end());
    return v;
}

TEST(StreamEquivalence, CorrectionsMatchBatchDecode)
{
    constexpr std::size_t kRounds = 200;
    for (const DecoderFamily &family : decoderFamilies()) {
        for (int d : {3, 5, 7}) {
            SCOPED_TRACE(family.name + " d=" + std::to_string(d));
            SurfaceLattice lattice(d);

            StreamConfig config;
            config.lattice = &lattice;
            config.physicalRate = 0.05;
            config.rounds = kRounds;
            config.seed = 0xe0b5ULL + static_cast<std::uint64_t>(d);
            config.latency =
                StreamLatencyModel::forFamily(family.name, d);

            std::vector<Syndrome> syndromes;
            std::vector<std::vector<int>> corrections;
            const StreamObserver observer =
                [&](std::size_t, const Syndrome &syn,
                    const Correction &corr) {
                    syndromes.push_back(syn);
                    corrections.push_back(sorted(corr.dataFlips));
                };

            auto streaming = family.factory(lattice, ErrorType::Z);
            const StreamingResult result =
                runStream(config, *streaming, nullptr, &observer);
            ASSERT_EQ(result.rounds, kRounds);
            ASSERT_EQ(syndromes.size(), kRounds);

            // A fresh decoder instance replays every recorded
            // syndrome through the batch interface.
            auto batch = family.factory(lattice, ErrorType::Z);
            for (std::size_t k = 0; k < kRounds; ++k) {
                const Correction corr = batch->decode(syndromes[k]);
                ASSERT_EQ(sorted(corr.dataFlips), corrections[k])
                    << "round " << k;
            }
        }
    }
}

TEST(StreamEquivalence, FailuresMatchLifetimeSimulator)
{
    // Same seed, same physics order => the streaming pipeline and the
    // lifetime-mode Monte Carlo simulator must count identical
    // failures (the timing overlay never perturbs the physics).
    constexpr std::size_t kRounds = 400;
    constexpr std::uint64_t kSeed = 0x11f3ULL;
    for (const DecoderFamily &family : decoderFamilies()) {
        SCOPED_TRACE(family.name);
        SurfaceLattice lattice(5);

        StreamConfig config;
        config.lattice = &lattice;
        config.physicalRate = 0.05;
        config.rounds = kRounds;
        config.seed = kSeed;
        config.latency = StreamLatencyModel::forFamily(family.name, 5);
        auto streaming = family.factory(lattice, ErrorType::Z);
        const StreamingResult streamed =
            runStream(config, *streaming);

        DephasingModel model(0.05);
        auto batch = family.factory(lattice, ErrorType::Z);
        LifetimeSimulator sim(lattice, model, *batch, nullptr, kSeed);
        sim.setLifetimeMode(true);
        StopRule rule;
        rule.minTrials = rule.maxTrials = kRounds;
        rule.targetFailures = ~std::size_t{0};
        const MonteCarloResult reference = sim.run(rule);

        EXPECT_EQ(streamed.rounds, reference.trials);
        EXPECT_EQ(streamed.failures, reference.failures);
        EXPECT_DOUBLE_EQ(streamed.logicalErrorRate,
                         reference.logicalErrorRate);
    }
}

TEST(StreamEquivalence, SameSeedReproducesTelemetry)
{
    SurfaceLattice lattice(5);
    StreamConfig config;
    config.lattice = &lattice;
    config.rounds = 300;
    config.seed = 99;
    config.latency = StreamLatencyModel::forFamily("union_find", 5);

    const auto factory = unionFindDecoderFactory();
    auto a = factory(lattice, ErrorType::Z);
    auto b = factory(lattice, ErrorType::Z);
    const StreamingResult ra = runStream(config, *a);
    const StreamingResult rb = runStream(config, *b);
    EXPECT_EQ(ra.failures, rb.failures);
    EXPECT_EQ(ra.finalBacklogRounds, rb.finalBacklogRounds);
    EXPECT_EQ(ra.maxQueueDepth, rb.maxQueueDepth);
    EXPECT_DOUBLE_EQ(ra.serviceNs.mean(), rb.serviceNs.mean());
    ASSERT_EQ(ra.trajectory.size(), rb.trajectory.size());
    for (std::size_t i = 0; i < ra.trajectory.size(); ++i) {
        EXPECT_EQ(ra.trajectory[i].round, rb.trajectory[i].round);
        EXPECT_EQ(ra.trajectory[i].backlogRounds,
                  rb.trajectory[i].backlogRounds);
    }
}

} // namespace
} // namespace nisqpp
