/**
 * @file
 * Batched streaming consumer pinned byte-identical to the scalar
 * consumer: for every eligible decoder family, any batch lane count,
 * any fault/recovery mix and any seed, runStream with batchLanes > 1
 * must reproduce the scalar run's failures, telemetry, metrics and
 * per-round observer stream exactly — while actually draining rounds
 * through decodeBatch (engagement is asserted, not assumed).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "decoders/union_find_decoder.hh"
#include "decoders/workspace.hh"
#include "faults/fault_plan.hh"
#include "sim/experiment.hh"
#include "stream/stream_sim.hh"
#include "surface/lattice.hh"

namespace nisqpp {
namespace {

constexpr std::size_t kRounds = 300;

/** Everything one run emits, flattened for whole-run equality. */
struct RunRecord
{
    StreamingResult result;
    std::vector<std::size_t> observedRounds;
    std::vector<std::vector<bool>> observedSyndromes;
    std::vector<std::vector<int>> observedFlips;
    std::map<std::string, std::vector<std::uint64_t>> metrics;
};

RunRecord
record(const StreamConfig &config, Decoder &decoder)
{
    RunRecord rec;
    const StreamObserver observer = [&rec](std::size_t round,
                                           const Syndrome &syn,
                                           const Correction &corr) {
        rec.observedRounds.push_back(round);
        std::vector<bool> bits(static_cast<std::size_t>(syn.size()));
        for (int a = 0; a < syn.size(); ++a)
            bits[static_cast<std::size_t>(a)] = syn.hot(a);
        rec.observedSyndromes.push_back(std::move(bits));
        rec.observedFlips.push_back(corr.dataFlips);
    };
    rec.result = runStream(config, decoder, nullptr, &observer);
    rec.result.metrics.forEachScalar(
        [&rec](const std::string &name, bool, std::uint64_t value) {
            rec.metrics["scalar." + name] = {value};
        });
    rec.result.metrics.forEachHistogram(
        [&rec](const std::string &name,
               const obs::MetricSet::HistogramEntry &e) {
            std::vector<std::uint64_t> v = {e.sum, e.hist.overflow()};
            for (std::size_t i = 0; i < e.hist.numBins(); ++i)
                v.push_back(e.hist.bin(i));
            rec.metrics["hist." + name] = v;
        });
    return rec;
}

/** Assert batched @p got equals scalar @p want field for field. */
void
expectSameRun(const RunRecord &got, const RunRecord &want,
              const std::string &label)
{
    const StreamingResult &g = got.result;
    const StreamingResult &w = want.result;
    EXPECT_EQ(g.rounds, w.rounds) << label;
    EXPECT_EQ(g.failures, w.failures) << label;
    EXPECT_EQ(g.logicalErrorRate, w.logicalErrorRate) << label;
    EXPECT_EQ(g.serviceNs.count(), w.serviceNs.count()) << label;
    EXPECT_EQ(g.serviceNs.mean(), w.serviceNs.mean()) << label;
    EXPECT_EQ(g.serviceNs.max(), w.serviceNs.max()) << label;
    EXPECT_EQ(g.sojournNs.count(), w.sojournNs.count()) << label;
    EXPECT_EQ(g.sojournNs.mean(), w.sojournNs.mean()) << label;
    EXPECT_EQ(g.servicePercentiles.p50, w.servicePercentiles.p50)
        << label;
    EXPECT_EQ(g.servicePercentiles.p99, w.servicePercentiles.p99)
        << label;
    EXPECT_EQ(g.maxQueueDepth, w.maxQueueDepth) << label;
    EXPECT_EQ(g.maxBacklogRounds, w.maxBacklogRounds) << label;
    EXPECT_EQ(g.overflowRounds, w.overflowRounds) << label;
    EXPECT_EQ(g.finalBacklogRounds, w.finalBacklogRounds) << label;
    EXPECT_EQ(g.drainNs, w.drainNs) << label;
    EXPECT_EQ(g.fEmpirical, w.fEmpirical) << label;
    ASSERT_EQ(g.trajectory.size(), w.trajectory.size()) << label;
    for (std::size_t i = 0; i < g.trajectory.size(); ++i) {
        EXPECT_EQ(g.trajectory[i].round, w.trajectory[i].round);
        EXPECT_EQ(g.trajectory[i].backlogRounds,
                  w.trajectory[i].backlogRounds);
        EXPECT_EQ(g.trajectory[i].queueDepth,
                  w.trajectory[i].queueDepth);
    }
    const faults::FaultCounts &gf = g.faults;
    const faults::FaultCounts &wf = w.faults;
    EXPECT_EQ(gf.decodedRounds, wf.decodedRounds) << label;
    EXPECT_EQ(gf.carriedForward, wf.carriedForward) << label;
    EXPECT_EQ(gf.lostRounds, wf.lostRounds) << label;
    EXPECT_EQ(gf.corruptDecodes, wf.corruptDecodes) << label;
    EXPECT_EQ(gf.deadlineClamps, wf.deadlineClamps) << label;
    EXPECT_EQ(gf.dedupRounds, wf.dedupRounds) << label;
    EXPECT_TRUE(g.clockMonotone) << label;

    EXPECT_EQ(got.observedRounds, want.observedRounds) << label;
    EXPECT_EQ(got.observedSyndromes, want.observedSyndromes) << label;
    EXPECT_EQ(got.observedFlips, want.observedFlips) << label;
    EXPECT_EQ(got.metrics, want.metrics) << label;
}

/** Union-find instrumented to prove the batched consumer engaged. */
class CountingUnionFind : public UnionFindDecoder
{
  public:
    using UnionFindDecoder::UnionFindDecoder;

    void
    decodeBatch(const Syndrome *const *syndromes, std::size_t count,
                TrialWorkspace &ws) override
    {
        ++batchCalls;
        maxGroup = std::max(maxGroup, count);
        UnionFindDecoder::decodeBatch(syndromes, count, ws);
    }

    std::size_t batchCalls = 0;
    std::size_t maxGroup = 0;
};

TEST(StreamBatch, ConsumerMatchesScalarForEveryEligibleFamily)
{
    for (const DecoderFamily &family : decoderFamilies()) {
        for (int d : {3, 5}) {
            SurfaceLattice lattice(d);
            StreamConfig config;
            config.lattice = &lattice;
            config.physicalRate = 0.05;
            config.rounds = kRounds;
            config.seed = 0xbadc0deULL + static_cast<std::uint64_t>(d);
            config.latency =
                StreamLatencyModel::forFamily(family.name, d);

            auto scalarDec = family.factory(lattice, ErrorType::Z);
            const RunRecord scalar = record(config, *scalarDec);
            for (std::size_t lanes : {2u, 16u, 64u}) {
                config.batchLanes = lanes;
                auto batchDec = family.factory(lattice, ErrorType::Z);
                const RunRecord batched = record(config, *batchDec);
                expectSameRun(batched, scalar,
                              family.name + " d=" + std::to_string(d) +
                                  " lanes=" + std::to_string(lanes));
            }
            config.batchLanes = 1;
        }
    }
}

TEST(StreamBatch, BatchedConsumerActuallyEngages)
{
    // Byte-identity alone would also pass if the batched path never
    // ran; pin that eligible configurations really drain full groups
    // through decodeBatch.
    SurfaceLattice lattice(5);
    StreamConfig config;
    config.lattice = &lattice;
    config.physicalRate = 0.05;
    config.rounds = kRounds;
    config.seed = 0x7e57ULL;
    config.latency = StreamLatencyModel::forFamily("union_find", 5);

    CountingUnionFind scalarDec(lattice, ErrorType::Z);
    runStream(config, scalarDec);
    EXPECT_EQ(scalarDec.batchCalls, 0u);

    config.batchLanes = 16;
    CountingUnionFind batchDec(lattice, ErrorType::Z);
    runStream(config, batchDec);
    EXPECT_EQ(batchDec.batchCalls, kRounds / 16 + (kRounds % 16 != 0));
    EXPECT_EQ(batchDec.maxGroup, 16u);
}

TEST(StreamBatch, FaultStruckRoundsReplayScalarAndStayIdentical)
{
    // A dense fault mix (drops, corruptions, duplicates, delays,
    // stalls, decode failures) with carry-forward + retransmit +
    // deadline recovery: fault-struck rounds flush the group and run
    // the scalar path, and the whole run stays byte-identical.
    SurfaceLattice lattice(5);
    StreamConfig config;
    config.lattice = &lattice;
    config.physicalRate = 0.05;
    config.rounds = kRounds;
    config.seed = 0xfa117ULL;
    config.latency = StreamLatencyModel::forFamily("union_find", 5);
    config.faults.dropRate = 0.1;
    config.faults.corruptRate = 0.1;
    config.faults.duplicateRate = 0.05;
    config.faults.delayRate = 0.05;
    config.faults.stallRate = 0.1;
    config.faults.decodeFailRate = 0.05;
    config.recovery.parityRetransmit = true;
    config.recovery.carryForward = true;
    config.recovery.deadlineNs = 2500.0;

    for (const char *family : {"union_find", "mwpm"}) {
        config.latency = StreamLatencyModel::forFamily(family, 5);
        auto scalarDec = decoderFamilies()[decoderFamilyIndex(family)]
                             .factory(lattice, ErrorType::Z);
        config.batchLanes = 1;
        const RunRecord scalar = record(config, *scalarDec);
        for (std::size_t lanes : {4u, 32u}) {
            config.batchLanes = lanes;
            auto batchDec =
                decoderFamilies()[decoderFamilyIndex(family)].factory(
                    lattice, ErrorType::Z);
            const RunRecord batched = record(config, *batchDec);
            expectSameRun(batched, scalar,
                          std::string(family) + " faults lanes=" +
                              std::to_string(lanes));
        }
    }
}

TEST(StreamBatch, IneligibleConfigurationsFallBackScalar)
{
    SurfaceLattice lattice(3);
    StreamConfig config;
    config.lattice = &lattice;
    config.physicalRate = 0.05;
    config.rounds = 120;
    config.seed = 0x5ca1eULL;
    config.latency = StreamLatencyModel::forFamily("union_find", 3);
    config.batchLanes = 8;

    // Load shedding decides per round whether to decode at all, so the
    // batched consumer must stay out of the way.
    config.faults.dropRate = 0.1;
    config.recovery.shedThreshold = 4;
    CountingUnionFind shedDec(lattice, ErrorType::Z);
    runStream(config, shedDec);
    EXPECT_EQ(shedDec.batchCalls, 0u);

    // The windowed pipeline decodes whole spacetime windows; the
    // per-round batched consumer does not apply.
    StreamConfig windowed;
    windowed.lattice = &lattice;
    windowed.physicalRate = 0.05;
    windowed.rounds = 120;
    windowed.windowRounds = 4;
    windowed.seed = 0x5ca1eULL;
    windowed.latency = StreamLatencyModel::forFamily("union_find", 3);
    windowed.batchLanes = 8;
    CountingUnionFind windowDec(lattice, ErrorType::Z);
    const StreamingResult wr = runStream(windowed, windowDec);
    EXPECT_EQ(windowDec.batchCalls, 0u);
    EXPECT_EQ(wr.windows, 30u);
}

} // namespace
} // namespace nisqpp
