/**
 * @file Backlog model conformance: the streaming pipeline's measured
 * backlog growth rate must match the closed-form predictions the
 * src/backlog model (and paper Section III) are built on — growth of
 * 1 - 1/f rounds per round in the decoder-too-slow regime, and a
 * queue that drains to zero in the fast regime.
 */

#include <gtest/gtest.h>

#include "backlog/backlog_sim.hh"
#include "backlog/distance_model.hh"
#include "sim/experiment.hh"
#include "stream/stream_sim.hh"

namespace nisqpp {
namespace {

StreamConfig
baseConfig(const SurfaceLattice &lattice, std::size_t rounds)
{
    StreamConfig config;
    config.lattice = &lattice;
    config.physicalRate = 0.05;
    config.syndromeCycleNs = 400.0;
    config.rounds = rounds;
    config.queueCapacity = 32;
    config.seed = 0xc0f0ULL;
    return config;
}

TEST(BacklogConformance, TooSlowDecoderGrowsAtClosedFormRate)
{
    SurfaceLattice lattice(5);
    StreamConfig config = baseConfig(lattice, 3000);
    // The Fig. 11 union-find profile: 850 ns per round against the
    // 400 ns syndrome cycle, so f = 2.125.
    config.latency = StreamLatencyModel::forFamily("union_find", 5);
    const double f =
        DecoderProfile::unionFind().decodeNs(5) / 400.0;

    const auto factory = unionFindDecoderFactory();
    auto decoder = factory(lattice, ErrorType::Z);
    const StreamingResult result = runStream(config, *decoder);

    // Constant service time: the measured ratio is exact.
    EXPECT_DOUBLE_EQ(result.fEmpirical, f);

    // Growth per produced round matches 1 - 1/f up to the +-1 round
    // discretization of a finite horizon.
    const double predicted = backlogGrowthPerRound(f);
    EXPECT_GT(predicted, 0.0);
    EXPECT_NEAR(result.backlogGrowthPerRound, predicted, 0.01);

    // The fast ring saturates and spills; backlog never drains during
    // production.
    EXPECT_EQ(result.maxQueueDepth, config.queueCapacity);
    EXPECT_GT(result.overflowRounds, 0u);
    EXPECT_GT(result.finalBacklogRounds,
              static_cast<std::size_t>(0.9 * predicted * 3000));

    // Trajectory is monotonically non-decreasing in the slow regime.
    for (std::size_t i = 1; i < result.trajectory.size(); ++i)
        EXPECT_GE(result.trajectory[i].backlogRounds,
                  result.trajectory[i - 1].backlogRounds);
}

TEST(BacklogConformance, FastDecoderDrainsToZero)
{
    SurfaceLattice lattice(5);
    StreamConfig config = baseConfig(lattice, 2000);
    config.latency = StreamLatencyModel::forFamily("sfq_mesh", 5);

    const auto factory =
        meshDecoderFactory(MeshConfig::finalDesign());
    auto decoder = factory(lattice, ErrorType::Z);
    const StreamingResult result = runStream(config, *decoder);

    // The mesh decodes well inside one syndrome cycle (Table IV), so
    // every round retires before the next arrives.
    EXPECT_LT(result.fEmpirical, 1.0);
    EXPECT_DOUBLE_EQ(result.backlogGrowthPerRound, 0.0);
    EXPECT_EQ(result.finalBacklogRounds, 0u);
    EXPECT_EQ(result.overflowRounds, 0u);
    EXPECT_LE(result.maxQueueDepth, 2u);
    EXPECT_LT(result.drainNs, config.syndromeCycleNs);
    EXPECT_DOUBLE_EQ(
        backlogGrowthPerRound(result.fEmpirical), 0.0);
}

TEST(BacklogConformance, MarginalRatioNeitherGrowsNorStarves)
{
    // f exactly 1: the queue walks between 1 and 2 but the closed
    // form predicts zero asymptotic growth.
    SurfaceLattice lattice(3);
    StreamConfig config = baseConfig(lattice, 2000);
    config.latency =
        StreamLatencyModel::constant("marginal", 400.0);

    const auto factory = greedyDecoderFactory();
    auto decoder = factory(lattice, ErrorType::Z);
    const StreamingResult result = runStream(config, *decoder);

    EXPECT_DOUBLE_EQ(result.fEmpirical, 1.0);
    EXPECT_DOUBLE_EQ(backlogGrowthPerRound(1.0), 0.0);
    // At f = 1 each round finishes exactly when the next arrives: the
    // backlog stays at the single in-service round.
    EXPECT_LE(result.maxBacklogRounds, 2u);
    EXPECT_LE(result.finalBacklogRounds, 1u);
}

TEST(BacklogConformance, ClosedFormGrowthProperties)
{
    EXPECT_DOUBLE_EQ(backlogGrowthPerRound(0.25), 0.0);
    EXPECT_DOUBLE_EQ(backlogGrowthPerRound(1.0), 0.0);
    EXPECT_DOUBLE_EQ(backlogGrowthPerRound(2.0), 0.5);
    EXPECT_DOUBLE_EQ(backlogGrowthPerRound(4.0), 0.75);
    EXPECT_NEAR(backlogGrowthPerRound(2.125), 1.0 - 1.0 / 2.125,
                1e-12);
}

} // namespace
} // namespace nisqpp
