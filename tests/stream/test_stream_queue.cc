/**
 * @file Unit tests of the streaming pipeline's building blocks: the
 * bounded round queue (FIFO across ring + spill), the percentile
 * telemetry and the deterministic latency models.
 */

#include <gtest/gtest.h>

#include "stream/latency_model.hh"
#include "stream/stream_queue.hh"
#include "stream/telemetry.hh"

#include "backlog/distance_model.hh"

namespace nisqpp {
namespace {

TEST(StreamQueue, FifoWithinCapacity)
{
    StreamQueue q(4);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.capacity(), 4u);
    for (std::size_t k = 0; k < 3; ++k)
        q.push({k, static_cast<double>(k), 1.0});
    EXPECT_EQ(q.depth(), 3u);
    EXPECT_EQ(q.fastDepth(), 3u);
    EXPECT_EQ(q.overflowCount(), 0u);
    for (std::size_t k = 0; k < 3; ++k) {
        EXPECT_EQ(q.front().round, k);
        q.pop();
    }
    EXPECT_TRUE(q.empty());
}

TEST(StreamQueue, OverflowSpillsAndPreservesGlobalOrder)
{
    StreamQueue q(2);
    for (std::size_t k = 0; k < 7; ++k) {
        q.push({k, static_cast<double>(k), 1.0});
        EXPECT_LE(q.fastDepth(), 2u);
    }
    EXPECT_EQ(q.depth(), 7u);
    EXPECT_EQ(q.spillDepth(), 5u);
    EXPECT_EQ(q.overflowCount(), 5u);
    for (std::size_t k = 0; k < 7; ++k) {
        ASSERT_FALSE(q.empty());
        EXPECT_EQ(q.front().round, k);
        q.pop();
    }
    EXPECT_TRUE(q.empty());
    // Overflow is a lifetime counter, not a level.
    EXPECT_EQ(q.overflowCount(), 5u);
}

TEST(StreamQueue, InterleavedPushPopPromotesSpill)
{
    StreamQueue q(2);
    std::size_t next = 0, expect = 0;
    for (int step = 0; step < 50; ++step) {
        q.push({next++, 0.0, 1.0});
        q.push({next++, 0.0, 1.0});
        ASSERT_EQ(q.front().round, expect);
        q.pop();
        ++expect;
    }
    while (!q.empty()) {
        ASSERT_EQ(q.front().round, expect++);
        q.pop();
    }
    EXPECT_EQ(expect, next);
}

TEST(StreamQueue, SpillCompactionPreservesFifo)
{
    // Drive spillHead_ past the 1024-entry reclaim trigger: with 4000
    // spilled rounds, the consumed-prefix erase fires mid-drain (once
    // the consumed prefix dominates the buffer) and must not disturb
    // global round order or the depth/overflow accounting.
    StreamQueue q(2);
    const std::size_t total = 4002;
    for (std::size_t k = 0; k < total; ++k)
        q.push({k, static_cast<double>(k), 1.0});
    EXPECT_EQ(q.spillDepth(), total - 2);
    EXPECT_EQ(q.overflowCount(), total - 2);
    for (std::size_t k = 0; k < total; ++k) {
        ASSERT_FALSE(q.empty());
        ASSERT_EQ(q.front().round, k);
        ASSERT_DOUBLE_EQ(q.front().arriveNs, static_cast<double>(k));
        ASSERT_EQ(q.depth(), total - k);
        q.pop();
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.overflowCount(), total - 2);
}

TEST(StreamQueue, SpillCompactionSurvivesInterleavedTraffic)
{
    // Producer outruns the consumer 2:1 so the spill ledger keeps
    // growing while pops keep consuming its prefix; the reclaim branch
    // fires repeatedly at different ring offsets and FIFO must hold
    // through every firing and through the final drain.
    StreamQueue q(3);
    std::size_t next = 0, expect = 0;
    for (int step = 0; step < 3000; ++step) {
        q.push({next++, 0.0, 1.0});
        q.push({next++, 0.0, 1.0});
        ASSERT_EQ(q.front().round, expect);
        q.pop();
        ++expect;
    }
    while (!q.empty()) {
        ASSERT_EQ(q.front().round, expect++);
        q.pop();
    }
    EXPECT_EQ(expect, next);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(StreamTelemetry, PercentilesFromExactBins)
{
    Histogram hist(100);
    // 100 observations of value i for i in [0, 100).
    for (std::size_t i = 0; i < 100; ++i)
        hist.add(i);
    EXPECT_DOUBLE_EQ(percentileFromHistogram(hist, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentileFromHistogram(hist, 0.50), 49.0);
    EXPECT_DOUBLE_EQ(percentileFromHistogram(hist, 0.90), 89.0);
    EXPECT_DOUBLE_EQ(percentileFromHistogram(hist, 1.0), 99.0);
}

TEST(StreamTelemetry, EmptyHistogramGivesZero)
{
    Histogram hist(16);
    EXPECT_DOUBLE_EQ(percentileFromHistogram(hist, 0.5), 0.0);
}

TEST(StreamLatency, ConstantAndPerHotTerms)
{
    StreamLatencyModel m = StreamLatencyModel::constant("test", 500.0);
    EXPECT_DOUBLE_EQ(m.decodeNs(nullptr, 0), 500.0);
    EXPECT_DOUBLE_EQ(m.decodeNs(nullptr, 12), 500.0);
    m.perHotNs = 25.0;
    EXPECT_DOUBLE_EQ(m.decodeNs(nullptr, 4), 600.0);
}

TEST(StreamLatency, FamilyPresetsMatchDecoderProfiles)
{
    for (int d : {3, 5, 7, 9}) {
        EXPECT_DOUBLE_EQ(
            StreamLatencyModel::forFamily("mwpm", d).decodeNs(nullptr,
                                                              0),
            DecoderProfile::mwpm().decodeNs(d));
        EXPECT_DOUBLE_EQ(StreamLatencyModel::forFamily("union_find", d)
                             .decodeNs(nullptr, 0),
                         DecoderProfile::unionFind().decodeNs(d));
    }
    EXPECT_TRUE(
        StreamLatencyModel::forFamily("sfq_mesh", 9).meshCycles);
}

} // namespace
} // namespace nisqpp
